package ipa

import (
	"errors"
	"fmt"

	"ipa/internal/heap"
	"ipa/internal/txn"
)

// This file is the engine half of MVCC snapshot reads (the substrate — the
// commit-timestamp Oracle and the VersionCache — lives in internal/txn;
// see docs/DESIGN_MVCC.md). It routes reads through the version cache and
// garbage-collects the index entries that committed deletes and secondary
// moves leave behind for older snapshots.
//
// The heap slot always holds the newest bytes of a record; superseded
// committed versions live in the version cache keyed by packed RID. A
// reader therefore resolves the chain first and only touches the heap when
// the chain says the slot's bytes are the visible version. That heap fetch
// runs without any cache lock, fenced by a per-stripe sequence number:
// if the stripe changed while the page was read, the bytes may belong to a
// different version and the read retries (falling back to a fenced resolve
// that holds the stripe mutex across the fetch — stripe mutexes are leaves
// in front of the buffer pool's page latches, writers never hold a page
// latch while calling the cache, so the order is deadlock-free).

// seqRetries is how many optimistic resolve+fetch+validate rounds a read
// attempts before falling back to the fenced path.
const seqRetries = 8

// readVersion returns the tuple of rid visible at snapshot snap (selfTxn
// is the reading transaction's id, 0 for table-level reads — a transaction
// always sees its own writes). ok=false means the record does not exist at
// the snapshot.
func (t *Table) readVersion(rid heap.RID, snap, selfTxn uint64) (tuple []byte, ok bool, err error) {
	vc := t.db.txns.Versions()
	packed := rid.Pack()
	for i := 0; i < seqRetries; i++ {
		res, seq := vc.Resolve(packed, snap, selfTxn)
		switch res.Kind {
		case txn.ResAbsent:
			return nil, false, nil
		case txn.ResData:
			return append([]byte(nil), res.Data...), true, nil
		}
		b, err := t.heap.Get(rid)
		if err != nil {
			if errors.Is(err, heap.ErrNotFound) {
				if vc.Validate(packed, seq) {
					// The chain did not move: the slot is genuinely gone
					// with no version metadata — a non-transactional
					// delete, which MVCC does not cover. Absent.
					return nil, false, nil
				}
				continue
			}
			return nil, false, err
		}
		if vc.Validate(packed, seq) {
			return b, true, nil
		}
	}
	err = vc.ResolveFenced(packed, snap, selfTxn, func(res txn.Resolution) error {
		switch res.Kind {
		case txn.ResAbsent:
			return nil
		case txn.ResData:
			tuple, ok = append([]byte(nil), res.Data...), true
			return nil
		}
		b, ferr := t.heap.Get(rid)
		if ferr != nil {
			if errors.Is(ferr, heap.ErrNotFound) {
				return nil
			}
			return ferr
		}
		tuple, ok = b, true
		return nil
	})
	return tuple, ok, err
}

// getVisible is the snapshot read behind Tx.Get and Table.Get: primary-key
// lookup (no record lock) followed by version resolution.
func (t *Table) getVisible(key int64, snap, selfTxn uint64) ([]byte, error) {
	t.mu.RLock()
	v, ok := t.pk.Get(key)
	t.mu.RUnlock()
	if !ok {
		return nil, errKeyNotFound(t, key)
	}
	tuple, ok, err := t.readVersion(heap.Unpack(v), snap, selfTxn)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, errKeyNotFound(t, key)
	}
	return tuple, nil
}

// zombieEntry is one index entry a committed delete or secondary-key move
// left behind because an older snapshot still needed to resolve through
// it. It is dropped once no snapshot predates ts — after a liveness
// re-check, since the key or pair may have become live again in the
// meantime (insert-over-zombie, an A→B→A double move).
type zombieEntry struct {
	ts    uint64
	table *Table          // set: primary-key zombie
	sec   *SecondaryIndex // set: secondary-pair zombie
	key   int64
	rid   uint64 // packed RID the entry pointed at when it was parked
}

// enqueueZombie parks an index entry for deferred removal.
func (db *DB) enqueueZombie(z zombieEntry) {
	db.gcMu.Lock()
	db.zombies = append(db.zombies, z)
	db.gcMu.Unlock()
}

// ZombieEntries returns the number of index entries currently retained
// for old snapshots.
func (db *DB) zombieCount() int {
	db.gcMu.Lock()
	defer db.gcMu.Unlock()
	return len(db.zombies)
}

// maybeGC advances MVCC garbage collection: parked index entries whose
// retirement predates every active snapshot are dropped, then version
// chains superseded before the oldest snapshot are trimmed (entries go
// first so a retained entry always has its chain to justify it). Pure
// in-memory work — callable with or without the close gate. Called after
// commits and snapshot releases; cheap when there is nothing to do.
func (db *DB) maybeGC() {
	if db.closed.Load() {
		return
	}
	oldest := db.txns.Oracle().OldestActive()

	db.gcMu.Lock()
	var ready []zombieEntry
	if len(db.zombies) > 0 {
		keep := db.zombies[:0]
		for _, z := range db.zombies {
			if z.ts <= oldest {
				ready = append(ready, z)
			} else {
				keep = append(keep, z)
			}
		}
		db.zombies = keep
	}
	db.gcMu.Unlock()

	for _, z := range ready {
		if z.table != nil {
			z.table.dropPKZombie(z.key, z.rid)
		} else {
			z.sec.dropPairZombie(z.key, z.rid, z.ts)
		}
		db.zombiesReclaimed.Add(1)
	}
	db.txns.Versions().GC(oldest)
}

// dropPKZombie removes the volatile pk entry of a committed delete, unless
// the key was re-taken (the entry now points at a different, live RID).
// The persistent entry was already cleared at commit time.
func (t *Table) dropPKZombie(key int64, rid uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.pk.Get(key); ok && v == rid {
		t.pk.Delete(key)
	}
}

// dropPairZombie removes a retained volatile secondary pair, but only if
// its stale mark still carries the queuing retirement's timestamp ts: a
// re-add cleared the mark (the pair is live again), a later retirement
// re-stamped it (a younger queue entry owns the drop). Both checks happen
// under table.mu, so a drain racing a move-back can never drop a pair
// that just became current.
func (s *SecondaryIndex) dropPairZombie(key int64, rid uint64, ts uint64) {
	s.table.mu.Lock()
	if s.stale[secPair{key: key, rid: rid}] == ts {
		s.dropVolatileLocked(key, rid)
	}
	s.table.mu.Unlock()
}

// retirePK finishes a committed delete of key: the persistent index entry
// is cleared (recovery re-applies the deletion from the log anyway), while
// the volatile B-tree entry is retained for any snapshot older than the
// delete's commit timestamp and parked for GC. Runs after the commit
// record is durable and the record locks are released, so the key may
// already have been re-taken by a new insert — detected by the tuple being
// live again — in which case there is nothing to retire.
func (t *Table) retirePK(key int64, ts uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.pk.Get(key)
	if !ok {
		return
	}
	if _, err := t.heap.Get(heap.Unpack(v)); !errors.Is(err, heap.ErrNotFound) {
		// Live again (insert-over-zombie won the race), or unreadable
		// after an injected power cut — either way, leave it alone.
		return
	}
	// An error clearing the persistent entry (only an injected power cut
	// while tombstoning an entry page) must not fail the commit: the
	// commit record is durable and recovery re-applies the deletion.
	_ = t.idx.Delete(key)
	if t.db.txns.Oracle().NoActiveBefore(ts) {
		t.pk.Delete(key)
	} else {
		t.db.enqueueZombie(zombieEntry{ts: ts, table: t, key: key, rid: v})
	}
}

// retirePair finishes a committed secondary-entry removal (a delete or the
// old key of an update move): the persistent pair was already removed when
// the operation ran; the volatile pair is retained for older snapshots and
// parked for GC unless no such snapshot exists. Like retirePK this runs
// after lock release, so the pair may describe a live tuple again (A→B→A
// double move within the transaction, or a later writer) — then it stays.
func (s *SecondaryIndex) retirePair(key int64, rid uint64, ts uint64) {
	t := s.table
	t.mu.Lock()
	defer t.mu.Unlock()
	tuple, err := t.heap.Get(heap.Unpack(rid))
	if err == nil && s.extract(tuple) == key {
		// Live again: an A→B→A double move within the transaction, or a
		// later writer moved the tuple back. Nothing to retire.
		return
	}
	if err != nil && !errors.Is(err, heap.ErrNotFound) {
		return // unreadable (power cut): keep the pair, stay conservative
	}
	if t.db.txns.Oracle().NoActiveBefore(ts) {
		s.dropVolatileLocked(key, rid)
	} else {
		s.stale[secPair{key: key, rid: rid}] = ts
		t.db.enqueueZombie(zombieEntry{ts: ts, sec: s, key: key, rid: rid})
	}
}

// snapshotted runs fn under a freshly acquired statement snapshot,
// releasing it (and nudging GC) afterwards.
func (db *DB) snapshotted(fn func(snap uint64) error) error {
	ora := db.txns.Oracle()
	snap := ora.AcquireSnapshot()
	err := fn(snap)
	ora.ReleaseSnapshot(snap)
	db.maybeGC()
	return err
}

// errKeyNotFound builds the canonical not-found error.
func errKeyNotFound(t *Table, key int64) error {
	return fmt.Errorf("%w: %s key %d", ErrKeyNotFound, t.name, key)
}
