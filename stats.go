package ipa

import (
	"fmt"
	"strings"
	"time"

	"ipa/internal/storage"
)

// Stats aggregates the counters reported by the paper's experiments across
// all layers of the system: host I/O seen by the Flash translation layer,
// garbage-collection work, raw Flash operations, storage-manager eviction
// behaviour, buffer-pool efficiency and transactional throughput.
//
// All counters cover the window since the last ResetStats call (benchmarks
// reset after the load phase).
type Stats struct {
	// Configuration echo.
	Mode      WriteMode
	Scheme    Scheme
	FlashMode FlashMode

	// Host I/O (FTL level) — the "Host Reads/Writes" rows of Table 1.
	HostReads        uint64
	HostWrites       uint64 // full page writes
	HostWriteDeltas  uint64 // write_delta commands
	HostBytesRead    uint64
	HostBytesWritten uint64

	// Write-path outcome — the "Out-of-Place Writes vs In-Place Appends"
	// row of Table 1.
	InPlaceAppends   uint64
	OutOfPlaceWrites uint64
	Invalidations    uint64

	// Garbage collection — the "GC Page Migrations" / "GC Erases" rows.
	GCMigrations uint64
	GCErases     uint64
	GCRuns       uint64

	// Raw Flash operations.
	FlashPageReads     uint64
	FlashPagePrograms  uint64
	FlashDeltaPrograms uint64
	FlashBlockErases   uint64
	CorrectedBits      uint64
	UncorrectableReads uint64
	InterferenceBits   uint64

	// Storage-manager eviction behaviour (Figure 1).
	DirtyEvictions      uint64
	IPAAppendEvictions  uint64
	OutOfPlaceEvictions uint64
	AppendFallbacks     uint64
	DeltaRecordsWritten uint64
	DeltaBytesWritten   uint64
	NetChangedBytes     uint64
	EvictedBytes        uint64
	SmallEvictions      uint64
	// EvictionSizeHistogram buckets dirty evictions by net modified bytes;
	// EvictionHistogramBounds holds the inclusive upper bound of each
	// bucket (the last histogram entry counts larger evictions).
	EvictionSizeHistogram   []uint64
	EvictionHistogramBounds []int

	// Index maintenance (the index-page slice of the eviction counters
	// above, covering primary-key and secondary entry pages — both live in
	// KindIndex regions). Index entry pages absorb tiny slot edits, so
	// under IPA most index evictions become delta appends instead of full
	// page writes; IndexDeltaRecords / IndexOutOfPlaceWrites is the number
	// of delta appends amortised per full index-page rewrite (merge).
	IndexPageReads        uint64 // index entry pages loaded from Flash
	IndexPageWrites       uint64 // dirty index-page evictions
	IndexInPlaceAppends   uint64 // index evictions persisted as delta appends
	IndexOutOfPlaceWrites uint64 // index evictions written as whole pages
	IndexDeltaRecords     uint64 // delta records written for index pages
	IndexDeltaBytes       uint64 // delta bytes written for index pages
	SecondaryIndexes      int    // secondary indexes in the catalog (echo)

	// Buffer pool.
	BufferHits   uint64
	BufferMisses uint64

	// Transactions and logging.
	CommittedTxns uint64
	AbortedTxns   uint64
	WALBytes      uint64

	// Concurrency control. Readers run lock-free against MVCC snapshots;
	// only writers take record locks, so LockAcquisitions counts writer
	// lock grants and LockConflicts counts no-wait denials (ErrConflict).
	LockAcquisitions uint64
	LockConflicts    uint64

	// MVCC version chains. SnapshotReads counts version-cache resolutions;
	// VersionReads is how many of them were served from a superseded
	// version rather than the heap slot (reads that 2PL would have blocked
	// or answered dirtily). VersionsCreated / VersionsReclaimed track the
	// version-chain churn, VersionChainsLive and ZombieEntries are gauges
	// of retained MVCC state, and OldestSnapshotAge is how many commits the
	// oldest active snapshot lags behind the watermark (0 = no reader
	// pinning history).
	SnapshotReads     uint64
	VersionReads      uint64
	VersionsCreated   uint64
	VersionsReclaimed uint64
	VersionChainsLive uint64
	ZombieEntries     int
	ZombiesReclaimed  uint64
	ActiveSnapshots   int
	OldestSnapshotAge uint64
	// Group commit: physical log flushes, the commit requests they served
	// and the largest batch one flush absorbed. WALFlushedCommits /
	// WALFlushes is the average group-commit batch size.
	WALFlushes        uint64
	WALFlushedCommits uint64
	WALMaxCommitBatch uint64

	// Checkpointing and recovery. CheckpointLSN is the LSN of the last
	// fuzzy checkpoint (0 = never checkpointed), WALSegments counts the
	// live log segments after recycling, and WALBytesSinceCheckpoint is
	// the log volume accumulated since that checkpoint — the redo bound
	// for the next crash. RecoveryRedoRecords is how many log records the
	// last Reopen actually replayed (0 on a fresh Open) and
	// RecoveryParallelism is the configured redo worker count (1 = the
	// serial oracle).
	CheckpointLSN           uint64
	WALSegments             int
	WALBytesSinceCheckpoint uint64
	RecoveryRedoRecords     uint64
	RecoveryParallelism     int

	// BufferShards is the number of independently-latched buffer pool
	// partitions (a configuration echo, like Mode and Scheme).
	BufferShards int

	// Chips is the number of NAND chips; ChipStats breaks the Flash and
	// GC activity down per chip. The raw flash counters and the per-chip
	// Busy clocks accumulate over the device lifetime (like
	// TotalErasesEver, they are not affected by ResetStats), so their
	// spread shows how evenly the whole run striped load across the
	// chips; the per-chip GC counters follow ResetStats windows like the
	// global GC statistics.
	Chips     int
	ChipStats []ChipStat

	// Wear (longevity).
	TotalErasesEver uint64 // erases since device creation (not reset)
	MaxEraseCount   int
	EnduranceCycles int

	// Elapsed is the virtual time covered by this window.
	Elapsed time.Duration
}

// ChipStat is the per-chip slice of the device and FTL activity: raw Flash
// operations and Busy since device creation, GC work since the last
// ResetStats. On a well-striped workload the chips carry similar loads.
type ChipStat struct {
	Chip          int
	PageReads     uint64
	PagePrograms  uint64 // full page programs (includes partial/delta programs' chip ops)
	DeltaPrograms uint64 // partial (in-place append) programs
	BlockErases   uint64
	GCRuns        uint64
	GCMigrations  uint64
	GCErases      uint64
	FreeBlocks    int
	Busy          time.Duration // per-chip virtual clock
}

// Stats returns a snapshot of all counters since the last ResetStats call.
func (db *DB) Stats() Stats {
	fs := db.ftl.Stats()
	ds := db.dev.Stats()
	cs := db.dev.ChipStats()
	ss := db.store.Stats()
	ps := db.pool.Stats()
	gc := db.log.GroupCommitStats()

	committed := db.committed.Load()
	aborted := db.aborted.Load()
	base := time.Duration(db.timeBase.Load())
	vs := db.txns.Versions().Stats()
	ora := db.txns.Oracle()
	lockAcq, lockConf := db.txns.LockStats()

	perChip := db.dev.PerChipStats()
	clocks := db.dev.ChipClocks()
	ftlChips := db.ftl.ChipStats()
	chipStats := make([]ChipStat, len(perChip))
	for i := range perChip {
		chipStats[i] = ChipStat{
			Chip:          i,
			PageReads:     perChip[i].PageReads,
			PagePrograms:  perChip[i].PagePrograms,
			DeltaPrograms: perChip[i].PartialPrograms,
			BlockErases:   perChip[i].BlockErases,
			GCRuns:        ftlChips[i].GCRuns,
			GCMigrations:  ftlChips[i].GCMigrations,
			GCErases:      ftlChips[i].GCErases,
			FreeBlocks:    ftlChips[i].FreeBlocks,
			Busy:          clocks[i],
		}
	}

	return Stats{
		Mode:      db.cfg.WriteMode,
		Scheme:    db.cfg.Scheme,
		FlashMode: db.cfg.FlashMode,

		HostReads:        fs.HostReads,
		HostWrites:       fs.HostWrites,
		HostWriteDeltas:  fs.HostWriteDeltas,
		HostBytesRead:    fs.HostBytesRead,
		HostBytesWritten: fs.HostBytesWritten,

		InPlaceAppends:   fs.InPlaceAppends,
		OutOfPlaceWrites: fs.OutOfPlaceWrites,
		Invalidations:    fs.Invalidations,

		GCMigrations: fs.GCMigrations,
		GCErases:     fs.GCErases,
		GCRuns:       fs.GCRuns,

		FlashPageReads:     ds.PageReads,
		FlashPagePrograms:  ds.PagePrograms,
		FlashDeltaPrograms: ds.DeltaPrograms,
		FlashBlockErases:   ds.BlockErases,
		CorrectedBits:      ds.CorrectedBits,
		UncorrectableReads: ds.Uncorrectable,
		InterferenceBits:   cs.InterferenceBits,

		DirtyEvictions:          ss.DirtyEvictions,
		IPAAppendEvictions:      ss.IPAAppends,
		OutOfPlaceEvictions:     ss.OutOfPlaceWrites,
		AppendFallbacks:         ss.AppendFallbacks,
		DeltaRecordsWritten:     ss.DeltaRecordsWritten,
		DeltaBytesWritten:       ss.DeltaBytesWritten,
		NetChangedBytes:         ss.NetChangedBytes,
		EvictedBytes:            ss.EvictedBytes,
		SmallEvictions:          ss.SmallEvictions,
		EvictionSizeHistogram:   ss.EvictionSizeHistogram[:],
		EvictionHistogramBounds: storage.HistogramBucketBounds(),

		IndexPageReads:        ss.IndexPageLoads,
		IndexPageWrites:       ss.IndexDirtyEvictions,
		IndexInPlaceAppends:   ss.IndexIPAAppends,
		IndexOutOfPlaceWrites: ss.IndexOutOfPlaceWrites,
		IndexDeltaRecords:     ss.IndexDeltaRecords,
		IndexDeltaBytes:       ss.IndexDeltaBytes,
		SecondaryIndexes:      db.secondaryCount(),

		BufferHits:   ps.Hits,
		BufferMisses: ps.Misses,

		CommittedTxns:     committed,
		AbortedTxns:       aborted,
		WALBytes:          db.log.BytesWritten(),
		LockAcquisitions:  lockAcq,
		LockConflicts:     lockConf,
		SnapshotReads:     vs.SnapshotReads,
		VersionReads:      vs.VersionReads,
		VersionsCreated:   vs.VersionsCreated,
		VersionsReclaimed: vs.VersionsReclaimed,
		VersionChainsLive: vs.ChainsLive,
		ZombieEntries:     db.zombieCount(),
		ZombiesReclaimed:  db.zombiesReclaimed.Load(),
		ActiveSnapshots:   ora.ActiveSnapshots(),
		OldestSnapshotAge: ora.SnapshotAge(),
		WALFlushes:        gc.Flushes,
		WALFlushedCommits: gc.FlushedCommits,
		WALMaxCommitBatch: gc.MaxBatch,

		CheckpointLSN:           db.checkpointLSN.Load(),
		WALSegments:             db.log.Segments(),
		WALBytesSinceCheckpoint: db.log.BytesWritten() - db.walBytesAtCkpt.Load(),
		RecoveryRedoRecords:     db.recoveryRedo.Load(),
		RecoveryParallelism:     db.cfg.RecoveryParallelism,

		BufferShards: db.pool.Shards(),

		Chips:     len(chipStats),
		ChipStats: chipStats,

		TotalErasesEver: db.dev.TotalErases(),
		MaxEraseCount:   db.dev.MaxEraseCount(),
		EnduranceCycles: db.dev.EnduranceCycles(),

		Elapsed: db.dev.Now() - base,
	}
}

// TotalHostWrites returns full-page writes plus write_delta commands, the
// quantity the paper's "Host Writes" row reports.
func (s Stats) TotalHostWrites() uint64 { return s.HostWrites + s.HostWriteDeltas }

// MigrationsPerHostWrite returns GC page migrations per host write.
func (s Stats) MigrationsPerHostWrite() float64 {
	return ratio(s.GCMigrations, s.TotalHostWrites())
}

// ErasesPerHostWrite returns GC erases per host write.
func (s Stats) ErasesPerHostWrite() float64 {
	return ratio(s.GCErases, s.TotalHostWrites())
}

// InPlaceShare returns the fraction of host writes served as in-place
// appends.
func (s Stats) InPlaceShare() float64 {
	return ratio(s.InPlaceAppends, s.InPlaceAppends+s.OutOfPlaceWrites)
}

// IndexInPlaceShare returns the fraction of dirty index-page evictions
// persisted as in-place delta appends.
func (s Stats) IndexInPlaceShare() float64 {
	return ratio(s.IndexInPlaceAppends, s.IndexPageWrites)
}

// IndexDeltasPerMerge returns how many delta appends one full index-page
// rewrite (merge) amortises: delta records written per out-of-place index
// write.
func (s Stats) IndexDeltasPerMerge() float64 {
	return ratio(s.IndexDeltaRecords, s.IndexOutOfPlaceWrites)
}

// CommitsPerFlush returns the average number of commit requests served by
// one physical WAL flush — the group-commit batch size. Values above 1
// mean concurrent commits shared log-device writes.
func (s Stats) CommitsPerFlush() float64 {
	return ratio(s.WALFlushedCommits, s.WALFlushes)
}

// VersionChasedPerRead returns the fraction of snapshot reads that had to
// chase the version chain past the heap slot (served from a superseded
// version). 0 means every read saw the newest committed version.
func (s Stats) VersionChasedPerRead() float64 {
	return ratio(s.VersionReads, s.SnapshotReads)
}

// Throughput returns committed transactions per second of virtual time.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.CommittedTxns) / s.Elapsed.Seconds()
}

// DBMSWriteAmplification returns the ratio of bytes written by the DBMS to
// bytes actually modified (Figure 1), as seen at the host interface.
func (s Stats) DBMSWriteAmplification() float64 {
	if s.NetChangedBytes == 0 {
		return 0
	}
	return float64(s.HostBytesWritten) / float64(s.NetChangedBytes)
}

// SmallEvictionShare returns the fraction of dirty evictions with fewer
// than 100 net modified bytes (Figure 1).
func (s Stats) SmallEvictionShare() float64 {
	return ratio(s.SmallEvictions, s.DirtyEvictions)
}

// DeviceWriteAmplification returns physical page programs per host page
// write (on-device write amplification caused by garbage collection).
func (s Stats) DeviceWriteAmplification() float64 {
	host := s.TotalHostWrites()
	if host == 0 {
		return 0
	}
	return float64(s.FlashPagePrograms+s.FlashDeltaPrograms) / float64(host)
}

// LifetimeEstimate returns a relative longevity estimate: the number of
// host writes the device can absorb before the most-worn block reaches its
// endurance, normalised by the observed erase rate.
func (s Stats) LifetimeEstimate() float64 {
	e := s.ErasesPerHostWrite()
	if e == 0 {
		return 0
	}
	return float64(s.EnduranceCycles) / e
}

// ChipBalance returns the ratio of the least to the most busy chip clock
// (1.0 = perfectly even striping, 0 = one chip idle). It returns 1 for
// single-chip devices.
func (s Stats) ChipBalance() float64 {
	if len(s.ChipStats) <= 1 {
		return 1
	}
	min, max := s.ChipStats[0].Busy, s.ChipStats[0].Busy
	for _, c := range s.ChipStats[1:] {
		if c.Busy < min {
			min = c.Busy
		}
		if c.Busy > max {
			max = c.Busy
		}
	}
	if max <= 0 {
		return 1
	}
	return float64(min) / float64(max)
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// String renders the statistics as a small report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s scheme=%s flash=%s\n", s.Mode, s.Scheme, s.FlashMode)
	fmt.Fprintf(&b, "host: reads=%d writes=%d write_deltas=%d bytesWritten=%d\n",
		s.HostReads, s.HostWrites, s.HostWriteDeltas, s.HostBytesWritten)
	fmt.Fprintf(&b, "writes: in-place=%d out-of-place=%d invalidations=%d\n",
		s.InPlaceAppends, s.OutOfPlaceWrites, s.Invalidations)
	fmt.Fprintf(&b, "gc: migrations=%d erases=%d (%.4f migr/write, %.4f erases/write)\n",
		s.GCMigrations, s.GCErases, s.MigrationsPerHostWrite(), s.ErasesPerHostWrite())
	fmt.Fprintf(&b, "flash: reads=%d programs=%d deltaPrograms=%d erases=%d\n",
		s.FlashPageReads, s.FlashPagePrograms, s.FlashDeltaPrograms, s.FlashBlockErases)
	fmt.Fprintf(&b, "index: reads=%d writes=%d in-place=%d out-of-place=%d deltaRecords=%d secondaries=%d\n",
		s.IndexPageReads, s.IndexPageWrites, s.IndexInPlaceAppends, s.IndexOutOfPlaceWrites, s.IndexDeltaRecords, s.SecondaryIndexes)
	fmt.Fprintf(&b, "txn: committed=%d aborted=%d throughput=%.1f tps elapsed=%s\n",
		s.CommittedTxns, s.AbortedTxns, s.Throughput(), s.Elapsed)
	fmt.Fprintf(&b, "locks: acquired=%d conflicts=%d\n", s.LockAcquisitions, s.LockConflicts)
	fmt.Fprintf(&b, "mvcc: snapshotReads=%d versionReads=%d (%.4f chased/read) created=%d reclaimed=%d chains=%d zombies=%d reclaimedZombies=%d activeSnapshots=%d oldestSnapshotAge=%d\n",
		s.SnapshotReads, s.VersionReads, s.VersionChasedPerRead(), s.VersionsCreated, s.VersionsReclaimed,
		s.VersionChainsLive, s.ZombieEntries, s.ZombiesReclaimed, s.ActiveSnapshots, s.OldestSnapshotAge)
	fmt.Fprintf(&b, "wal: flushes=%d commits/flush=%.2f maxBatch=%d shards=%d\n",
		s.WALFlushes, s.CommitsPerFlush(), s.WALMaxCommitBatch, s.BufferShards)
	fmt.Fprintf(&b, "checkpoint: lsn=%d segments=%d bytesSince=%d redoRecords=%d redoWorkers=%d\n",
		s.CheckpointLSN, s.WALSegments, s.WALBytesSinceCheckpoint, s.RecoveryRedoRecords, s.RecoveryParallelism)
	if s.Chips > 1 {
		fmt.Fprintf(&b, "chips: %d balance=%.2f\n", s.Chips, s.ChipBalance())
		for _, c := range s.ChipStats {
			fmt.Fprintf(&b, "  chip %d: reads=%d programs=%d deltas=%d erases=%d gcRuns=%d busy=%s\n",
				c.Chip, c.PageReads, c.PagePrograms, c.DeltaPrograms, c.BlockErases, c.GCRuns, c.Busy.Round(time.Millisecond))
		}
	}
	return b.String()
}
