package ipa

import (
	"fmt"

	"ipa/internal/heap"
	"ipa/internal/page"
	"ipa/internal/txn"
)

// ErrConflict is returned when a transaction cannot acquire a record lock.
// OLTP drivers abort and retry the transaction.
var ErrConflict = txn.ErrConflict

// Tx is a database transaction. All updates are logged to the WAL before
// they touch the buffered page, and record locks are held until Commit or
// Abort (strict two-phase locking). In-Place Appends is entirely invisible
// at this level, exactly as the paper requires.
//
// Isolation: writes follow strict 2PL, but plain Get takes no record
// lock — concurrent transactions read at READ UNCOMMITTED and may observe
// updates that are later rolled back. Use GetForUpdate to read under the
// record lock when a transaction's logic depends on the value it read.
type Tx struct {
	db    *DB
	inner *txn.Txn
	done  bool
}

// Begin starts a new transaction. On a closed database the returned
// transaction is inert: every operation on it, including Commit, fails
// with ErrClosed.
func (db *DB) Begin() *Tx {
	return &Tx{db: db, inner: db.txns.Begin()}
}

// check rejects operations on finished transactions and on transactions
// whose database has been closed (even if it was begun before Close).
func (tx *Tx) check() error {
	if tx.done {
		return txn.ErrFinished
	}
	return tx.db.checkOpen()
}

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return tx.inner.ID() }

// Get returns a copy of the tuple stored under key in table t. It takes
// no record lock (READ UNCOMMITTED): a concurrent writer's uncommitted
// bytes may be visible. See GetForUpdate for locked reads.
func (tx *Tx) Get(t *Table, key int64) ([]byte, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	return t.Get(key)
}

// GetForUpdate returns a copy of the tuple stored under key in table t
// after acquiring its record lock, which is then held until Commit or
// Abort. The returned value is stable: no concurrent transaction can
// change or roll back the tuple while the lock is held.
func (tx *Tx) GetForUpdate(t *Table, key int64) ([]byte, error) {
	if tx.done {
		return nil, txn.ErrFinished
	}
	if err := tx.db.acquire(); err != nil {
		return nil, err
	}
	defer tx.db.release()
	rid, err := t.rid(key)
	if err != nil {
		return nil, err
	}
	if err := tx.inner.Lock(txn.LockKey{PageID: rid.PageID, Slot: rid.Slot}); err != nil {
		return nil, err
	}
	return t.heap.Get(rid)
}

// Insert stores a new tuple under key in table t.
func (tx *Tx) Insert(t *Table, key int64, tuple []byte) error {
	if tx.done {
		return txn.ErrFinished
	}
	if err := tx.db.acquire(); err != nil {
		return err
	}
	defer tx.db.release()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.pk.Get(key); ok {
		return fmt.Errorf("%w: %d", ErrDuplicateKey, key)
	}
	rid, err := t.heap.Insert(tuple)
	if err != nil {
		return err
	}
	if err := tx.inner.Lock(txn.LockKey{PageID: rid.PageID, Slot: rid.Slot}); err != nil {
		return err
	}
	if _, err := tx.inner.LogInsert(rid.PageID, rid.Slot, tuple); err != nil {
		return err
	}
	t.pk.Insert(key, rid.Pack())
	return nil
}

// UpdateAt overwrites len(data) bytes of the tuple stored under key in
// table t, starting at the tuple-relative offset. The before image is
// logged for rollback and recovery.
func (tx *Tx) UpdateAt(t *Table, key int64, offset int, data []byte) error {
	if err := tx.check(); err != nil {
		return err
	}
	rid, err := t.rid(key)
	if err != nil {
		return err
	}
	return tx.UpdateRIDAt(t, rid, offset, data)
}

// UpdateRIDAt is UpdateAt addressing the tuple directly by RID.
func (tx *Tx) UpdateRIDAt(t *Table, rid heap.RID, offset int, data []byte) error {
	if tx.done {
		return txn.ErrFinished
	}
	if err := tx.db.acquire(); err != nil {
		return err
	}
	defer tx.db.release()
	if err := tx.inner.Lock(txn.LockKey{PageID: rid.PageID, Slot: rid.Slot}); err != nil {
		return err
	}
	old, err := t.heap.Get(rid)
	if err != nil {
		return err
	}
	if offset < 0 || offset+len(data) > len(old) {
		return fmt.Errorf("ipa: update [%d,%d) outside tuple of %d bytes", offset, offset+len(data), len(old))
	}
	before := make([]byte, len(data))
	copy(before, old[offset:offset+len(data)])
	if _, err := tx.inner.LogUpdate(rid.PageID, rid.Slot, uint16(offset), before, data); err != nil {
		return err
	}
	return t.heap.UpdateAt(rid, offset, data)
}

// RIDFor returns the RID of key in table t (for drivers that cache RIDs).
func (tx *Tx) RIDFor(t *Table, key int64) (heap.RID, error) {
	return t.rid(key)
}

// Commit makes the transaction durable, charges the configured per-
// transaction CPU cost to the virtual clock and releases all locks. On a
// closed database Commit fails with ErrClosed; like Abort it still
// releases the record locks (the transaction stays a WAL loser, so
// recovery rolls its changes back).
func (tx *Tx) Commit() error {
	if tx.done {
		return txn.ErrFinished
	}
	// Commit runs under the close gate so it either completes before a
	// concurrent Close flushes, or observes the closed flag and fails —
	// a commit can never succeed after Close has returned.
	if err := tx.db.acquire(); err != nil {
		_ = tx.inner.Detach()
		tx.done = true
		tx.db.aborted.Add(1)
		return err
	}
	defer tx.db.release()
	if err := tx.inner.Commit(); err != nil {
		return err
	}
	tx.done = true
	tx.db.dev.AdvanceClock(tx.db.cfg.TxnCPUCost)
	tx.db.committed.Add(1)
	return nil
}

// Abort rolls the transaction back by restoring the before images of its
// updates and releases all locks. On a closed database the before images
// can no longer be applied to the flushed buffer pool; the record locks
// are still released (so shutdown never leaks them), no abort record is
// written, and the transaction remains a WAL loser, so Recover rolls its
// flushed updates back after a restart.
func (tx *Tx) Abort() error {
	if tx.done {
		return txn.ErrFinished
	}
	if err := tx.db.acquire(); err != nil {
		derr := tx.inner.Detach()
		tx.done = true
		tx.db.aborted.Add(1)
		return derr
	}
	defer tx.db.release()
	if err := tx.inner.Abort(pageUndoer{db: tx.db}); err != nil {
		return err
	}
	tx.done = true
	tx.db.aborted.Add(1)
	return nil
}

// pageUndoer applies before/after images directly to buffered pages; it is
// used both by transaction rollback and by WAL-based recovery.
type pageUndoer struct{ db *DB }

// ApplyUpdate installs image at the byte offset of the tuple in slot on
// page pid.
func (u pageUndoer) ApplyUpdate(pid uint64, slot uint16, offset uint16, image []byte) error {
	h, err := u.db.pool.Fetch(pid)
	if err != nil {
		return err
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return err
	}
	pg.SetRecorder(h.Tracker())
	if err := pg.UpdateTupleAt(int(slot), int(offset), image); err != nil {
		return err
	}
	h.MarkDirty()
	return nil
}

// Recover replays the write-ahead log against the current storage state:
// committed updates are redone and uncommitted ones undone. It is used by
// the recovery tests to demonstrate that IPA does not interfere with
// database recovery.
func (db *DB) Recover() error {
	analysis := db.log.Analyze()
	ap := pageUndoer{db: db}
	if err := db.log.Redo(analysis, ap); err != nil {
		return err
	}
	if err := db.log.Undo(analysis, ap); err != nil {
		return err
	}
	return db.pool.FlushAll()
}
