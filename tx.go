package ipa

import (
	"bytes"
	"errors"
	"fmt"

	"ipa/internal/core"
	"ipa/internal/ftl"
	"ipa/internal/heap"
	"ipa/internal/page"
	"ipa/internal/txn"
)

// ErrConflict is returned when a transaction cannot acquire a record lock.
// OLTP drivers abort and retry the transaction.
var ErrConflict = txn.ErrConflict

// Tx is a database transaction. All updates — tuple bytes and logical
// index operations alike — are logged to the WAL before they touch the
// buffered pages, and record locks are held until Commit or Abort (strict
// two-phase locking) for writer-writer isolation. In-Place Appends is
// entirely invisible at this level, exactly as the paper requires.
//
// Isolation is an MVCC+2PL hybrid. Reads — plain Get, Table.Scan/
// ScanRange, GetBySecondary, ScanSecondary — run lock-free against a
// snapshot: they see exactly the state committed at the snapshot's
// timestamp, never an uncommitted or later write. Tx.Get reads at a
// transaction-wide snapshot acquired lazily on the first read (repeatable
// read within one Tx); table-level reads use a fresh statement snapshot
// each. Snapshot reads do not lock, so a read-then-write cycle that must
// be stable against concurrent writers still needs GetForUpdate — the
// classic "snapshot reads + locked writes" discipline. See
// docs/DESIGN_MVCC.md for the visibility rule and version storage.
type Tx struct {
	db    *DB
	inner *txn.Txn
	done  bool
	// snap is the transaction's reader snapshot, acquired on first Get
	// and released (with a GC nudge) when the transaction finishes.
	snap    uint64
	hasSnap bool
	// pendingDeletes are keys this transaction deleted. Their pk entries
	// stay in place until Commit so the key remains reserved — a
	// concurrent insert of the same key must fail the duplicate check (or
	// conflict on the record lock), otherwise an abort of this
	// transaction could resurrect a tuple whose key was re-taken. Commit
	// retires the entries (retirePK keeps the volatile half alive while
	// older snapshots need it); Abort simply drops the list (the undo
	// pass restores the tuples and the entries were never touched).
	pendingDeletes []pendingDelete
	// pendingSecDrops are secondary pairs this transaction removed (a
	// delete, or the old key of an update move). The persistent entry is
	// gone already; the volatile pair is retained for snapshot readers
	// and retired at Commit (retirePair). Abort drops the list — the
	// logged undo restores the persistent entries, the volatile pairs
	// were never touched.
	pendingSecDrops []pendingSecDrop
}

// pendingDelete is one key deletion awaiting commit.
type pendingDelete struct {
	table *Table
	key   int64
}

// pendingSecDrop is one secondary-pair removal awaiting commit.
type pendingSecDrop struct {
	sec *SecondaryIndex
	key int64
	rid uint64
}

// snapshot returns the transaction's reader snapshot, acquiring it on
// first use.
func (tx *Tx) snapshot() uint64 {
	if !tx.hasSnap {
		tx.snap = tx.db.txns.Oracle().AcquireSnapshot()
		tx.hasSnap = true
	}
	return tx.snap
}

// releaseSnapshot returns the snapshot to the oracle and lets GC reclaim
// whatever only this snapshot was holding alive.
func (tx *Tx) releaseSnapshot() {
	if tx.hasSnap {
		tx.db.txns.Oracle().ReleaseSnapshot(tx.snap)
		tx.hasSnap = false
		tx.db.maybeGC()
	}
}

// Begin starts a new transaction. On a closed database the returned
// transaction is inert: every operation on it, including Commit, fails
// with ErrClosed.
func (db *DB) Begin() *Tx {
	return &Tx{db: db, inner: db.txns.Begin()}
}

// check rejects operations on finished transactions and on transactions
// whose database has been closed (even if it was begun before Close).
func (tx *Tx) check() error {
	if tx.done {
		return txn.ErrFinished
	}
	return tx.db.checkOpen()
}

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return tx.inner.ID() }

// Get returns a copy of the tuple stored under key in table t, read at
// the transaction's snapshot without taking any record lock: the first
// Get pins the snapshot, and every later Get repeats it (repeatable
// read). Uncommitted writes of other transactions are never visible; the
// transaction's own writes are. The value is not locked — a transaction
// whose logic depends on it staying put must use GetForUpdate.
func (tx *Tx) Get(t *Table, key int64) ([]byte, error) {
	if tx.done {
		return nil, txn.ErrFinished
	}
	if err := tx.db.acquire(); err != nil {
		return nil, err
	}
	defer tx.db.release()
	return t.getVisible(key, tx.snapshot(), tx.inner.ID())
}

// GetForUpdate returns a copy of the tuple stored under key in table t
// after acquiring its record lock, which is then held until Commit or
// Abort. The returned value is stable: no concurrent transaction can
// change or roll back the tuple while the lock is held.
func (tx *Tx) GetForUpdate(t *Table, key int64) ([]byte, error) {
	if tx.done {
		return nil, txn.ErrFinished
	}
	if err := tx.db.acquire(); err != nil {
		return nil, err
	}
	defer tx.db.release()
	rid, err := t.rid(key)
	if err != nil {
		return nil, err
	}
	if err := tx.inner.Lock(txn.LockKey{PageID: rid.PageID, Slot: rid.Slot}); err != nil {
		return nil, err
	}
	tuple, err := t.heap.Get(rid)
	if err != nil && errors.Is(err, heap.ErrNotFound) {
		// A zombie entry of a committed delete (retained for older
		// snapshots): under the lock the key reads as absent.
		return nil, fmt.Errorf("%w: %s key %d", ErrKeyNotFound, t.name, key)
	}
	return tuple, err
}

// Insert stores a new tuple under key in table t.
func (tx *Tx) Insert(t *Table, key int64, tuple []byte) error {
	if tx.done {
		return txn.ErrFinished
	}
	if err := tx.db.acquire(); err != nil {
		return err
	}
	defer tx.db.release()
	t.mu.Lock()
	defer t.mu.Unlock()
	// A pk entry left by a PENDING delete still blocks the key (the
	// deleter may abort and resurrect the tuple — the key-level analogue
	// of strict 2PL), but a zombie of a COMMITTED delete, retained only
	// for older snapshots, does not: the insert overwrites it in place.
	// Older snapshots then lose the key's old mapping — the documented
	// delete-then-reinsert anomaly (docs/DESIGN_MVCC.md).
	if v, ok := t.pk.Get(key); ok && !t.db.txns.Versions().CommittedDeleted(v) {
		return fmt.Errorf("%w: %d", ErrDuplicateKey, key)
	}
	rid, err := t.heap.Insert(tuple)
	if err != nil {
		return err
	}
	if err := tx.inner.Lock(txn.LockKey{PageID: rid.PageID, Slot: rid.Slot}); err != nil {
		return err
	}
	// Register the version chain before any reader can find the RID via
	// an index entry: the chain marks the tuple uncommitted-by-us, so
	// snapshot readers see the key as absent until we commit.
	t.db.txns.Versions().OnInsert(rid.Pack(), tx.inner.ID())
	if _, err := tx.inner.LogInsert(t.id, rid.PageID, rid.Slot, tuple); err != nil {
		return err
	}
	if _, err := tx.inner.LogIndexInsert(t.idxID, key, rid.Pack()); err != nil {
		return err
	}
	if err := t.indexSetLocked(key, rid.Pack()); err != nil {
		return err
	}
	for _, s := range t.secondaries {
		skey := s.extract(tuple)
		if _, err := tx.inner.LogIndexInsert(s.id, skey, rid.Pack()); err != nil {
			return err
		}
		if err := s.addLocked(skey, rid.Pack()); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the tuple stored under key in table t. The before image
// and the index entry are logged, so rollback and recovery can restore
// both the tuple and its primary-key mapping.
//
// The key stays reserved until Commit: the tuple is deleted immediately,
// but the pk entry is removed only when the transaction commits, so a
// concurrent Insert of the same key fails with ErrDuplicateKey instead of
// racing the uncommitted delete — the key-level analogue of strict 2PL.
// Deleting the same key twice (or reinserting it) within one transaction
// therefore also fails. Snapshot readers keep seeing the tuple's last
// committed version (through its version chain) until the delete commits
// and their snapshots move past it.
func (tx *Tx) Delete(t *Table, key int64) error {
	if tx.done {
		return txn.ErrFinished
	}
	if err := tx.db.acquire(); err != nil {
		return err
	}
	defer tx.db.release()
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.pk.Get(key)
	if !ok {
		return fmt.Errorf("%w: %s key %d", ErrKeyNotFound, t.name, key)
	}
	rid := heap.Unpack(v)
	if err := tx.inner.Lock(txn.LockKey{PageID: rid.PageID, Slot: rid.Slot}); err != nil {
		return err
	}
	old, err := t.heap.Get(rid)
	if err != nil {
		if errors.Is(err, heap.ErrNotFound) {
			// Our own pending delete, or the zombie of a committed one:
			// the tuple itself is already gone.
			return fmt.Errorf("%w: %s key %d", ErrKeyNotFound, t.name, key)
		}
		return err
	}
	if _, err := tx.inner.LogDelete(t.id, rid.PageID, rid.Slot, old); err != nil {
		return err
	}
	if _, err := tx.inner.LogIndexDelete(t.idxID, key, v); err != nil {
		return err
	}
	// Secondary entries: the persistent half is removed now (recovery
	// semantics unchanged), the volatile pair is retained so snapshot
	// readers can keep resolving the tuple under its secondary keys, and
	// retired at commit. Rollback restores the persistent entries through
	// the logged records.
	for _, s := range t.secondaries {
		skey := s.extract(old)
		if _, err := tx.inner.LogIndexDelete(s.id, skey, v); err != nil {
			return err
		}
		if err := s.removeDeferredLocked(skey, v); err != nil {
			return err
		}
		tx.pendingSecDrops = append(tx.pendingSecDrops, pendingSecDrop{sec: s, key: skey, rid: v})
	}
	// Push the committed pre-image into the version cache before the heap
	// slot goes away, then delete. Readers resolve the chain first, so
	// they never observe the slot's disappearance as a missing key.
	t.db.txns.Versions().OnWrite(v, tx.inner.ID(), old, true)
	if err := t.heap.Delete(rid); err != nil {
		return err
	}
	tx.pendingDeletes = append(tx.pendingDeletes, pendingDelete{table: t, key: key})
	return nil
}

// UpdateAt overwrites len(data) bytes of the tuple stored under key in
// table t, starting at the tuple-relative offset. The before image is
// logged for rollback and recovery.
func (tx *Tx) UpdateAt(t *Table, key int64, offset int, data []byte) error {
	if err := tx.check(); err != nil {
		return err
	}
	rid, err := t.rid(key)
	if err != nil {
		return err
	}
	return tx.UpdateRIDAt(t, rid, offset, data)
}

// UpdateRIDAt is UpdateAt addressing the tuple directly by RID.
func (tx *Tx) UpdateRIDAt(t *Table, rid heap.RID, offset int, data []byte) error {
	if tx.done {
		return txn.ErrFinished
	}
	if err := tx.db.acquire(); err != nil {
		return err
	}
	defer tx.db.release()
	if err := tx.inner.Lock(txn.LockKey{PageID: rid.PageID, Slot: rid.Slot}); err != nil {
		return err
	}
	old, err := t.heap.Get(rid)
	if err != nil {
		return err
	}
	if offset < 0 || offset+len(data) > len(old) {
		return fmt.Errorf("ipa: update [%d,%d) outside tuple of %d bytes", offset, offset+len(data), len(old))
	}
	before := make([]byte, len(data))
	copy(before, old[offset:offset+len(data)])
	if _, err := tx.inner.LogUpdate(rid.PageID, rid.Slot, uint16(offset), before, data); err != nil {
		return err
	}
	// Updates that change an extracted secondary key move the tuple's
	// entry under the new key: one logical delete + insert pair per
	// affected index, logged before the bytes change so rollback and
	// recovery reverse or replay the move with the tuple update.
	moves := secondaryMoves(t.secondarySnapshot(), old, offset, data)
	for _, mv := range moves {
		if _, err := tx.inner.LogIndexDelete(mv.sec.id, mv.oldKey, rid.Pack()); err != nil {
			return err
		}
		if _, err := tx.inner.LogIndexInsert(mv.sec.id, mv.newKey, rid.Pack()); err != nil {
			return err
		}
	}
	// Push the committed pre-image into the version cache before the heap
	// bytes change: snapshot readers that must not see this update keep
	// resolving to the pushed version.
	t.db.txns.Versions().OnWrite(rid.Pack(), tx.inner.ID(), old, false)
	if err := t.heap.UpdateAt(rid, offset, data); err != nil {
		return err
	}
	return tx.applyMoves(t, moves, rid.Pack())
}

// applyMoves relocates secondary entries for a transactional update: the
// new pair is added to both index halves, the old pair's persistent entry
// is removed, and its volatile half is retained for snapshot readers and
// retired at commit.
func (tx *Tx) applyMoves(t *Table, moves []secondaryMove, packed uint64) error {
	if len(moves) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, mv := range moves {
		if err := mv.sec.removeDeferredLocked(mv.oldKey, packed); err != nil {
			return err
		}
		tx.pendingSecDrops = append(tx.pendingSecDrops, pendingSecDrop{sec: mv.sec, key: mv.oldKey, rid: packed})
		if err := mv.sec.addLocked(mv.newKey, packed); err != nil {
			return err
		}
	}
	return nil
}

// RIDFor returns the RID of key in table t (for drivers that cache RIDs).
func (tx *Tx) RIDFor(t *Table, key int64) (heap.RID, error) {
	return t.rid(key)
}

// Commit makes the transaction durable, charges the configured per-
// transaction CPU cost to the virtual clock and releases all locks. On a
// closed database Commit fails with ErrClosed; like Abort it still
// releases the record locks (the transaction stays a WAL loser, so
// recovery rolls its changes back).
func (tx *Tx) Commit() error {
	if tx.done {
		return txn.ErrFinished
	}
	// Commit runs under the close gate so it either completes before a
	// concurrent Close flushes, or observes the closed flag and fails —
	// a commit can never succeed after Close has returned.
	if err := tx.db.acquire(); err != nil {
		_ = tx.inner.Detach()
		tx.releaseSnapshot()
		tx.done = true
		tx.db.aborted.Add(1)
		return err
	}
	defer tx.db.release()
	if err := tx.inner.Commit(); err != nil {
		if !errors.Is(err, txn.ErrFinished) {
			// The commit record never became durable (power cut during the
			// log flush): the transaction is finished as a loser — recovery
			// rolls its effects back after the restart.
			tx.releaseSnapshot()
			tx.done = true
			tx.db.aborted.Add(1)
		}
		return err
	}
	tx.done = true
	// The transaction is durable and its version chains are stamped with
	// the commit timestamp. Release our own snapshot first (so it cannot
	// keep our own retirements alive), then retire the index entries of
	// deleted keys and moved secondary pairs: the persistent halves go
	// now, the volatile halves survive until no snapshot predates the
	// commit (see retirePK/retirePair in mvcc.go).
	ts := tx.inner.CommitTS()
	tx.releaseSnapshot()
	for _, pd := range tx.pendingDeletes {
		pd.table.retirePK(pd.key, ts)
	}
	for _, sd := range tx.pendingSecDrops {
		sd.sec.retirePair(sd.key, sd.rid, ts)
	}
	// Only now — with the commit record durable AND the persistent index
	// entries of deleted keys retired — may the fuzzy checkpoint's
	// truncation cut advance past this transaction's records: nothing of
	// it can need the log any more.
	tx.db.txns.Deregister(tx.inner.ID())
	tx.db.dev.AdvanceClock(tx.db.cfg.TxnCPUCost)
	tx.db.committed.Add(1)
	return nil
}

// Abort rolls the transaction back by restoring the before images of its
// updates and releases all locks. On a closed database the before images
// can no longer be applied to the flushed buffer pool; the record locks
// are still released (so shutdown never leaks them), no abort record is
// written, and the transaction remains a WAL loser, so Recover rolls its
// flushed updates back after a restart.
func (tx *Tx) Abort() error {
	if tx.done {
		return txn.ErrFinished
	}
	if err := tx.db.acquire(); err != nil {
		derr := tx.inner.Detach()
		tx.releaseSnapshot()
		tx.done = true
		tx.db.aborted.Add(1)
		return derr
	}
	defer tx.db.release()
	if err := tx.inner.Abort(pageUndoer{db: tx.db, undo: true}); err != nil {
		return err
	}
	// The undo pass restored the tuples and persistent index entries, and
	// the version chains flipped back to their committed state; the
	// pending retirement lists are simply dropped.
	tx.releaseSnapshot()
	tx.done = true
	tx.db.aborted.Add(1)
	return nil
}

// pageUndoer applies before/after images directly to buffered pages; it is
// used both by transaction rollback and by WAL-based recovery. With undo
// set it tolerates pages that no longer exist — a loser transaction's page
// the crash took before its first flush needs no rollback.
type pageUndoer struct {
	db   *DB
	undo bool
}

// ApplyUpdate installs image at the byte offset of the tuple in slot on
// page pid.
func (u pageUndoer) ApplyUpdate(pid uint64, slot uint16, offset uint16, image []byte) error {
	h, err := u.db.pool.Fetch(pid)
	if err != nil {
		if u.undo && errors.Is(err, ftl.ErrUnmapped) {
			return nil
		}
		return err
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return err
	}
	pg.SetRecorder(h.Tracker())
	if err := pg.UpdateTupleAt(int(slot), int(offset), image); err != nil {
		return err
	}
	h.MarkDirty()
	return nil
}

// CompensateUpdate rolls back the flushed residue of an update whose
// transaction aborted before the crash, during the forward replay pass.
// The before image is installed only if the page bytes still equal the
// after image: a page flushed after the in-memory rollback (or rewritten
// by a later committed transaction) already carries the right bytes and
// must not be clobbered. This conditional form is what keeps replay
// correct when checkpoint truncation removed part of the transaction's
// records — whatever compensation records survive are safe to re-apply.
func (u pageUndoer) CompensateUpdate(pid uint64, slot uint16, offset uint16, old, new []byte) error {
	h, err := u.db.pool.Fetch(pid)
	if err != nil {
		if errors.Is(err, ftl.ErrUnmapped) {
			// The page never reached Flash: there is no residue.
			return nil
		}
		return err
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return err
	}
	pg.SetRecorder(h.Tracker())
	if int(slot) >= pg.SlotCount() {
		return nil
	}
	if deleted, err := pg.Deleted(int(slot)); err != nil || deleted {
		return err
	}
	cur, err := pg.Tuple(int(slot))
	if err != nil {
		return err
	}
	if int(offset)+len(new) > len(cur) || !bytes.Equal(cur[offset:int(offset)+len(new)], new) {
		return nil
	}
	if err := pg.UpdateTupleAt(int(slot), int(offset), old); err != nil {
		return err
	}
	h.MarkDirty()
	return nil
}

// RedoInsert rematerialises a committed insert: the page is recreated if
// the crash lost it before its first flush, missing slots are materialised
// in order (fixed-size tuples make the layout deterministic) and the tuple
// bytes are installed. It is idempotent.
func (u pageUndoer) RedoInsert(objectID uint32, pid uint64, slot uint16, tuple []byte) error {
	h, err := u.db.pool.Fetch(pid)
	if err != nil && errors.Is(err, ftl.ErrUnmapped) {
		h, err = u.db.pool.Create(pid, func(buf []byte) (*core.Tracker, error) {
			return u.db.store.InitPage(buf, pid, objectID)
		})
		if err == nil {
			u.db.store.EnsureAllocated(pid + 1)
			u.db.mu.Lock()
			if t := u.db.tablesByID[objectID]; t != nil {
				t.heap.AdoptPage(pid)
			}
			u.db.mu.Unlock()
		}
	}
	if err != nil {
		return err
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return err
	}
	pg.SetRecorder(h.Tracker())
	// Materialise any missing slots in front of this one. Each gap slot
	// belongs to another logged insert with a LOWER LSN — Tx.Insert holds
	// the table mutex across slot assignment and log append, so slot order
	// equals LSN order per page, and a commit flush covering this record
	// also made every lower-slot record durable. That insert will either
	// restore the gap slot (committed) or delete it (loser) in its own
	// turn, so no placeholder survives recovery.
	for pg.SlotCount() <= int(slot) {
		if _, err := pg.InsertTuple(make([]byte, len(tuple))); err != nil {
			return err
		}
	}
	if err := pg.RestoreTuple(int(slot), tuple); err != nil {
		return err
	}
	h.MarkDirty()
	return nil
}

// UndoInsert deletes the tuple a rolled-back insert left behind, if it is
// still present. It is idempotent; pages that never reached Flash are
// skipped. The primary-key entry is removed separately by the
// transaction's RecIndexInsert undo record.
func (u pageUndoer) UndoInsert(pid uint64, slot uint16) error {
	h, err := u.db.pool.Fetch(pid)
	if err != nil {
		if errors.Is(err, ftl.ErrUnmapped) {
			return nil
		}
		return err
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return err
	}
	pg.SetRecorder(h.Tracker())
	if int(slot) >= pg.SlotCount() {
		return nil
	}
	deleted, err := pg.Deleted(int(slot))
	if err != nil || deleted {
		return err
	}
	if err := pg.DeleteTuple(int(slot)); err != nil {
		return err
	}
	h.MarkDirty()
	if t := u.db.tableByID(pg.ObjectID()); t != nil {
		t.heap.NoteUndoneInsert()
	}
	return nil
}

// RedoDelete re-applies a committed tuple deletion. It is idempotent:
// slots that are already deleted, never reached Flash or never existed
// (non-transactional residue) are skipped.
func (u pageUndoer) RedoDelete(objectID uint32, pid uint64, slot uint16) error {
	h, err := u.db.pool.Fetch(pid)
	if err != nil {
		if errors.Is(err, ftl.ErrUnmapped) {
			return nil
		}
		return err
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return err
	}
	pg.SetRecorder(h.Tracker())
	if int(slot) >= pg.SlotCount() {
		return nil
	}
	deleted, err := pg.Deleted(int(slot))
	if err != nil || deleted {
		return err
	}
	if err := pg.DeleteTuple(int(slot)); err != nil {
		return err
	}
	h.MarkDirty()
	if t := u.db.tableByID(objectID); t != nil {
		t.heap.NoteUndoneInsert()
	}
	return nil
}

// UndoDelete restores the before image of a tuple a rolled-back delete
// removed, if the deletion reached the surviving state at all.
func (u pageUndoer) UndoDelete(objectID uint32, pid uint64, slot uint16, tuple []byte) error {
	h, err := u.db.pool.Fetch(pid)
	if err != nil {
		if u.undo && errors.Is(err, ftl.ErrUnmapped) {
			return nil
		}
		return err
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return err
	}
	pg.SetRecorder(h.Tracker())
	if int(slot) >= pg.SlotCount() {
		return nil
	}
	deleted, err := pg.Deleted(int(slot))
	if err != nil {
		return err
	}
	if !deleted {
		return nil
	}
	if err := pg.RestoreTuple(int(slot), tuple); err != nil {
		return err
	}
	h.MarkDirty()
	if t := u.db.tableByID(objectID); t != nil {
		t.heap.NoteRestoredTuple()
	}
	return nil
}

// RedoIndexInsert re-applies a committed logical index insertion: the key
// maps to the packed RID in both the volatile directory and the
// persistent entry file of the index named by objectID — the primary key
// of a table or one of its secondary indexes. Re-applying an existing
// mapping is idempotent (a pk remap rewrites the entry's value bytes in
// place; an existing secondary pair is a no-op).
func (u pageUndoer) RedoIndexInsert(objectID uint32, key int64, value uint64) error {
	if t := u.db.tableByIndexID(objectID); t != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.indexSetLocked(key, value)
	}
	if s := u.db.secondaryByObjID(objectID); s != nil {
		s.table.mu.Lock()
		defer s.table.mu.Unlock()
		return s.addLocked(key, value)
	}
	return fmt.Errorf("ipa: index record for unknown index object %d", objectID)
}

// RedoIndexDelete re-applies a committed logical index deletion
// (idempotent: deleting an absent entry is a no-op). The primary key is
// unique, so the key alone names the entry; a secondary index removes
// exactly the (key, RID) pair the record carries.
func (u pageUndoer) RedoIndexDelete(objectID uint32, key int64, value uint64) error {
	if t := u.db.tableByIndexID(objectID); t != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.indexClearLocked(key)
	}
	if s := u.db.secondaryByObjID(objectID); s != nil {
		s.table.mu.Lock()
		defer s.table.mu.Unlock()
		return s.removeLocked(key, value)
	}
	return fmt.Errorf("ipa: index record for unknown index object %d", objectID)
}

// UndoIndexInsert removes a rolled-back insertion's index entry, but only
// while key still maps to exactly the rolled-back RID — a later committed
// writer of the same key is never clobbered. Secondary entries are
// (key, RID) pairs and heap slots are never reused, so pair-exact removal
// gives the same guarantee there.
func (u pageUndoer) UndoIndexInsert(objectID uint32, key int64, value uint64) error {
	if t := u.db.tableByIndexID(objectID); t != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		if v, ok := t.pk.Get(key); !ok || v != value {
			return nil
		}
		return t.indexClearLocked(key)
	}
	if s := u.db.secondaryByObjID(objectID); s != nil {
		s.table.mu.Lock()
		defer s.table.mu.Unlock()
		return s.removeLocked(key, value)
	}
	return fmt.Errorf("ipa: index record for unknown index object %d", objectID)
}

// UndoIndexDelete restores a rolled-back deletion's index entry if the key
// is currently unmapped (a later committed writer wins otherwise). For a
// secondary index the pair itself is restored; no later writer can own it
// because heap slots are never reused.
func (u pageUndoer) UndoIndexDelete(objectID uint32, key int64, value uint64) error {
	if t := u.db.tableByIndexID(objectID); t != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		if _, ok := t.pk.Get(key); ok {
			return nil
		}
		return t.indexSetLocked(key, value)
	}
	if s := u.db.secondaryByObjID(objectID); s != nil {
		s.table.mu.Lock()
		defer s.table.mu.Unlock()
		return s.addLocked(key, value)
	}
	return fmt.Errorf("ipa: index record for unknown index object %d", objectID)
}

// tableByID returns the table owning the given heap object, or nil.
func (db *DB) tableByID(objectID uint32) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tablesByID[objectID]
}

// tableByIndexID returns the table owning the given primary-key index
// object, or nil.
func (db *DB) tableByIndexID(objectID uint32) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.indexesByID[objectID]
}

// secondaryByObjID returns the secondary index owning the given object,
// or nil.
func (db *DB) secondaryByObjID(objectID uint32) *SecondaryIndex {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.secondaryByID[objectID]
}

// Recover replays the write-ahead log against the current storage state:
// committed inserts and updates are redone and uncommitted ones undone. It
// is used by the recovery tests to demonstrate that IPA does not interfere
// with database recovery; Reopen runs the same passes after rebuilding the
// FTL mapping from a crashed Flash image.
func (db *DB) Recover() error {
	if _, err := db.recoverReplay(); err != nil {
		return err
	}
	return db.pool.FlushAll()
}

// recoverReplay runs the forward repeat-history pass (with compensation
// for pre-crash aborts) and the reverse loser-undo pass against the
// buffer pool, without the final flush. The forward pass is partitioned
// across Config.RecoveryParallelism workers by heap page / index object;
// 1 runs the serial oracle. It returns the number of redo, compensation
// and undo operations issued — O(records since the last checkpoint).
func (db *DB) recoverReplay() (int, error) {
	analysis := db.log.Analyze()
	workers := db.cfg.RecoveryParallelism
	// The checkpoint cut (from the durable catalog) bounds the replay:
	// records at or below it were force-flushed before the checkpoint
	// became durable, so redo starts there instead of LSN 1.
	n, err := db.log.Replay(analysis, pageUndoer{db: db, undo: true}, workers, db.ckptCut.Load())
	db.recoveryRedo.Store(uint64(n))
	return n, err
}
