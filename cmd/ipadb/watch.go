package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"ipa/internal/server"
)

// watchMain implements `ipadb watch`: poll a running ipaserver's
// /stats.json and redraw a terminal view of the ops gauges each tick.
// -n bounds the number of frames (CI runs `-n 1 -plain`); 0 polls until
// interrupted.
func watchMain(args []string) int {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	var (
		url      = fs.String("url", "http://127.0.0.1:6390", "ipaserver HTTP sidecar base URL")
		interval = fs.Duration("interval", time.Second, "poll period")
		frames   = fs.Int("n", 0, "number of frames to render (0 = until interrupted)")
		plain    = fs.Bool("plain", false, "no screen clearing between frames (for logs and CI)")
	)
	fs.Parse(args)

	base := strings.TrimSuffix(*url, "/")
	for i := 0; *frames <= 0 || i < *frames; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		doc, err := fetchStats(base + "/stats.json")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipadb watch: %v\n", err)
			return 1
		}
		if !*plain {
			fmt.Print("\033[H\033[2J") // cursor home + clear screen
		}
		renderWatch(os.Stdout, doc)
	}
	return 0
}

// fetchStats GETs and decodes one /stats.json document.
func fetchStats(url string) (*server.StatsDoc, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var doc server.StatsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return &doc, nil
}

// renderWatch draws one frame.
func renderWatch(w io.Writer, d *server.StatsDoc) {
	eng, ops := d.Engine, d.Ops
	state := "serving"
	if d.Draining {
		state = "DRAINING"
	}
	fmt.Fprintf(w, "ipaserver %s  %s %s  uptime %s  virtual %s\n",
		state, d.Mode, eng.Scheme,
		(time.Duration(d.UptimeSec * float64(time.Second))).Round(time.Second),
		(time.Duration(d.VirtualMS * float64(time.Millisecond))).Round(time.Millisecond))
	fmt.Fprintf(w, "conns %d (total %d)  commands %d  errors %d\n\n",
		d.Server.ConnectionsCurrent, d.Server.ConnectionsTotal,
		d.Server.CommandsTotal, d.Server.ErrorRepliesTotal)

	renderOps(w, ops)

	if len(eng.ChipStats) > 0 {
		fmt.Fprintf(w, "\nchip wear (lifetime erases)\n")
		var max uint64 = 1
		for _, c := range eng.ChipStats {
			if c.BlockErases > max {
				max = c.BlockErases
			}
		}
		for _, c := range eng.ChipStats {
			bar := strings.Repeat("#", int(c.BlockErases*40/max))
			fmt.Fprintf(w, "  chip %-2d %8d %s\n", c.Chip, c.BlockErases, bar)
		}
	}

	if len(d.Latency) > 0 {
		fmt.Fprintf(w, "\n%-12s %10s %10s %10s %10s %10s\n", "command", "count", "mean µs", "p50 µs", "p95 µs", "p99 µs")
		names := make([]string, 0, len(d.Latency))
		for name := range d.Latency {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			if d.Latency[names[i]].Count != d.Latency[names[j]].Count {
				return d.Latency[names[i]].Count > d.Latency[names[j]].Count
			}
			return names[i] < names[j]
		})
		for _, name := range names {
			l := d.Latency[name]
			fmt.Fprintf(w, "%-12s %10d %10.1f %10.1f %10.1f %10.1f\n",
				name, l.Count, l.MeanUS, l.P50US, l.P95US, l.P99US)
		}
	}
}
