// Command ipadb is a small interactive shell around the ipa storage engine,
// in the spirit of the demonstration GUI of the paper: it lets you create
// tables, insert and update rows, and watch how the Flash device reacts
// (in-place appends vs out-of-place writes, GC work, virtual time).
//
// Usage:
//
//	ipadb [-mode traditional|ssd|native] [-n 2] [-m 4] [-flash pslc|oddmlc|mlc]
//
// Commands (one per line on stdin):
//
//	create <table> <tupleSize>
//	insert <table> <key> <text>
//	get <table> <key>
//	update <table> <key> <offset> <text>
//	delete <table> <key>
//	scan <table> <from> <to>
//	index <table> <name> <offset>     create a secondary index over the
//	                                  little-endian int64 at the offset
//	indexes <table>                   list the table's secondary indexes
//	get-by <table> <index> <key>      look tuples up by secondary key
//	tables
//	stats
//	flush
//	checkpoint                        force a fuzzy checkpoint, print JSON
//	help
//	quit
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flag"

	"ipa"
)

func main() {
	var (
		mode  = flag.String("mode", "native", "write mode: traditional, ssd or native")
		n     = flag.Int("n", 2, "IPA scheme parameter N")
		m     = flag.Int("m", 4, "IPA scheme parameter M")
		flash = flag.String("flash", "pslc", "flash mode: pslc, oddmlc or mlc")
	)
	flag.Parse()

	cfg := ipa.Config{
		PageSize:        8 * 1024,
		Blocks:          128,
		PagesPerBlock:   64,
		BufferPoolPages: 128,
		Scheme:          ipa.Scheme{N: *n, M: *m},
		Analytic:        true,
	}
	switch *mode {
	case "traditional":
		cfg.WriteMode = ipa.Traditional
		cfg.Scheme = ipa.Scheme{}
	case "ssd":
		cfg.WriteMode = ipa.IPAConventionalSSD
	default:
		cfg.WriteMode = ipa.IPANativeFlash
	}
	switch *flash {
	case "oddmlc":
		cfg.FlashMode = ipa.OddMLC
	case "mlc":
		cfg.FlashMode = ipa.MLCFull
	default:
		cfg.FlashMode = ipa.PSLC
	}

	db, err := ipa.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipadb: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Printf("ipadb: %s write path, scheme %s, %s flash — type 'help' for commands\n",
		cfg.WriteMode, cfg.Scheme, cfg.FlashMode)
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if quit := execute(db, line); quit {
			return
		}
	}
}

// execute runs one shell command and reports whether the shell should exit.
func execute(db *ipa.DB, line string) bool {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	fail := func(format string, a ...any) bool {
		fmt.Printf("error: "+format+"\n", a...)
		return false
	}
	switch cmd {
	case "quit", "exit":
		return true
	case "help":
		fmt.Println("commands: create <table> <tupleSize> | insert <t> <key> <text> | get <t> <key> |")
		fmt.Println("          update <t> <key> <offset> <text> | delete <t> <key> |")
		fmt.Println("          scan <t> <from> <to> | index <t> <name> <offset> | indexes <t> |")
		fmt.Println("          get-by <t> <index> <key> | tables | stats | flush | checkpoint | quit")
	case "create":
		if len(args) != 2 {
			return fail("usage: create <table> <tupleSize>")
		}
		size, err := strconv.Atoi(args[1])
		if err != nil {
			return fail("bad tuple size: %v", err)
		}
		if _, err := db.CreateTable(args[0], size); err != nil {
			return fail("%v", err)
		}
		fmt.Printf("table %s created (%d-byte tuples)\n", args[0], size)
	case "insert", "update", "get", "delete", "scan":
		return tableCommand(db, cmd, args)
	case "index":
		if len(args) != 3 {
			return fail("usage: index <table> <name> <offset>")
		}
		table, ok := db.Table(args[0])
		if !ok {
			return fail("no such table %q", args[0])
		}
		off, err := strconv.Atoi(args[2])
		if err != nil {
			return fail("bad offset: %v", err)
		}
		if off < 0 || off+8 > table.TupleSize() {
			return fail("offset %d outside the %d-byte tuples of %s (need offset+8 <= size)", off, table.TupleSize(), args[0])
		}
		if _, err := table.CreateSecondaryIndex(args[1], ipa.Int64Field(off)); err != nil {
			return fail("%v", err)
		}
		fmt.Printf("secondary index %s.%s created (int64 at offset %d)\n", args[0], args[1], off)
	case "indexes":
		if len(args) != 1 {
			return fail("usage: indexes <table>")
		}
		table, ok := db.Table(args[0])
		if !ok {
			return fail("no such table %q", args[0])
		}
		fmt.Printf("  %-24s %8s\n", args[0]+".pk", "(primary)")
		for _, name := range table.SecondaryIndexes() {
			s, _ := table.SecondaryIndex(name)
			fmt.Printf("  %-24s %8d entries %6d keys %6d pages\n",
				args[0]+"."+name, s.Len(), s.Keys(), s.Pages())
		}
	case "get-by":
		if len(args) != 3 {
			return fail("usage: get-by <table> <index> <key>")
		}
		table, ok := db.Table(args[0])
		if !ok {
			return fail("no such table %q", args[0])
		}
		key, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fail("bad key: %v", err)
		}
		rows, err := table.GetBySecondary(args[1], key)
		if err != nil {
			return fail("%v", err)
		}
		for _, row := range rows {
			fmt.Printf("%q\n", strings.TrimRight(string(row), "\x00"))
		}
		fmt.Printf("(%d rows under %s.%s = %d)\n", len(rows), args[0], args[1], key)
	case "tables":
		for _, name := range db.Tables() {
			t, _ := db.Table(name)
			fmt.Printf("  %-24s %8d rows %6d pages\n", name, t.Count(), t.Pages())
		}
	case "stats":
		fmt.Print(db.Stats())
	case "flush":
		if err := db.FlushAll(); err != nil {
			return fail("%v", err)
		}
		fmt.Println("all dirty pages flushed")
	case "checkpoint":
		res, err := db.Checkpoint()
		if err != nil {
			return fail("%v", err)
		}
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return fail("%v", err)
		}
		fmt.Println(string(out))
	default:
		return fail("unknown command %q (try 'help')", cmd)
	}
	return false
}

func tableCommand(db *ipa.DB, cmd string, args []string) bool {
	fail := func(format string, a ...any) bool {
		fmt.Printf("error: "+format+"\n", a...)
		return false
	}
	if len(args) < 2 {
		return fail("usage: %s <table> <key> ...", cmd)
	}
	table, ok := db.Table(args[0])
	if !ok {
		return fail("no such table %q", args[0])
	}
	key, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return fail("bad key: %v", err)
	}
	switch cmd {
	case "insert":
		if len(args) < 3 {
			return fail("usage: insert <table> <key> <text>")
		}
		row := make([]byte, table.TupleSize())
		copy(row, strings.Join(args[2:], " "))
		if err := table.Insert(key, row); err != nil {
			return fail("%v", err)
		}
		fmt.Println("ok")
	case "get":
		row, err := table.Get(key)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Printf("%q\n", strings.TrimRight(string(row), "\x00"))
	case "update":
		if len(args) < 4 {
			return fail("usage: update <table> <key> <offset> <text>")
		}
		off, err := strconv.Atoi(args[2])
		if err != nil {
			return fail("bad offset: %v", err)
		}
		tx := db.Begin()
		if err := tx.UpdateAt(table, key, off, []byte(strings.Join(args[3:], " "))); err != nil {
			_ = tx.Abort()
			return fail("%v", err)
		}
		if err := tx.Commit(); err != nil {
			return fail("%v", err)
		}
		fmt.Println("ok")
	case "delete":
		tx := db.Begin()
		if err := tx.Delete(table, key); err != nil {
			_ = tx.Abort()
			return fail("%v", err)
		}
		if err := tx.Commit(); err != nil {
			return fail("%v", err)
		}
		fmt.Println("ok")
	case "scan":
		if len(args) != 3 {
			return fail("usage: scan <table> <from> <to>")
		}
		to, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fail("bad upper bound: %v", err)
		}
		rows := 0
		if err := table.ScanRange(key, to, func(k int64, row []byte) bool {
			fmt.Printf("%12d  %q\n", k, strings.TrimRight(string(row), "\x00"))
			rows++
			return true
		}); err != nil {
			return fail("%v", err)
		}
		fmt.Printf("(%d rows in [%d,%d))\n", rows, key, to)
	}
	return false
}
