// Command ipadb is a small shell around the ipa storage engine, in the
// spirit of the demonstration GUI of the paper: it lets you create
// tables, insert and update rows, and watch how the Flash device reacts
// (in-place appends vs out-of-place writes, GC work, virtual time).
//
// Usage:
//
//	ipadb [-json] [-mode traditional|ssd|native] [-n 2] [-m 4] [-flash pslc|oddmlc|mlc]
//	ipadb watch [-url http://127.0.0.1:6390] [-interval 1s] [-n 0] [-plain]
//
// Under -json every command answers with one uniform envelope per line:
//
//	{"ok":true,"cmd":"get","elapsed_ms":0.123,"data":{...}}
//	{"ok":false,"cmd":"get","elapsed_ms":0.051,"error":{"code":"NOTFOUND","msg":"..."}}
//
// Error codes are the wire codes of docs/DESIGN_SERVER.md — the same
// table ipaserver puts on the wire, so scripted callers handle one code
// set regardless of transport. The envelope schema is specified in
// docs/DESIGN_OPS.md and pinned by the golden tests in main_test.go.
//
// The watch subcommand polls a running ipaserver's /stats.json and
// renders a refreshing terminal view of the ops gauges: lifetime burn,
// time to death, windowed rates, per-chip wear and command latencies.
//
// Shell commands (one per line on stdin):
//
//	create <table> <tupleSize>
//	insert <table> <key> <text>
//	get <table> <key>
//	update <table> <key> <offset> <text>
//	delete <table> <key>
//	scan <table> <from> <to>
//	index <table> <name> <offset>     create a secondary index over the
//	                                  little-endian int64 at the offset
//	indexes <table>                   list the table's secondary indexes
//	get-by <table> <index> <key>      look tuples up by secondary key
//	tables
//	stats
//	ops                               derived gauges: burn rate, windowed rates
//	flush
//	checkpoint                        force a fuzzy checkpoint
//	help
//	quit
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ipa"
	"ipa/internal/server"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "watch" {
		os.Exit(watchMain(os.Args[2:]))
	}
	var (
		jsonOut = flag.Bool("json", false, "answer every command with a JSON envelope")
		mode    = flag.String("mode", "native", "write mode: traditional, ssd or native")
		n       = flag.Int("n", 2, "IPA scheme parameter N")
		m       = flag.Int("m", 4, "IPA scheme parameter M")
		flash   = flag.String("flash", "pslc", "flash mode: pslc, oddmlc or mlc")
	)
	flag.Parse()

	cfg := ipa.Config{
		PageSize:        8 * 1024,
		Blocks:          128,
		PagesPerBlock:   64,
		BufferPoolPages: 128,
		Scheme:          ipa.Scheme{N: *n, M: *m},
		Analytic:        true,
	}
	switch *mode {
	case "traditional":
		cfg.WriteMode = ipa.Traditional
		cfg.Scheme = ipa.Scheme{}
	case "ssd":
		cfg.WriteMode = ipa.IPAConventionalSSD
	default:
		cfg.WriteMode = ipa.IPANativeFlash
	}
	switch *flash {
	case "oddmlc":
		cfg.FlashMode = ipa.OddMLC
	case "mlc":
		cfg.FlashMode = ipa.MLCFull
	default:
		cfg.FlashMode = ipa.PSLC
	}

	db, err := ipa.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipadb: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	sh := &shell{db: db, out: os.Stdout, jsonOut: *jsonOut}
	if !sh.jsonOut {
		fmt.Printf("ipadb: %s write path, scheme %s, %s flash — type 'help' for commands\n",
			cfg.WriteMode, cfg.Scheme, cfg.FlashMode)
	}
	scanner := bufio.NewScanner(os.Stdin)
	for {
		if !sh.jsonOut {
			fmt.Print("> ")
		}
		if !scanner.Scan() {
			if !sh.jsonOut {
				fmt.Println()
			}
			return
		}
		if quit := sh.run(scanner.Text()); quit {
			return
		}
	}
}

// envelope is the uniform -json reply: exactly one per command, one per
// line. The schema is part of docs/DESIGN_OPS.md.
type envelope struct {
	OK        bool      `json:"ok"`
	Cmd       string    `json:"cmd"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Data      any       `json:"data,omitempty"`
	Error     *envError `json:"error,omitempty"`
}

// envError carries the stable wire code and the human message.
type envError struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

// cliError is a shell-level failure (bad usage, unknown command, missing
// table) already tagged with its wire code.
type cliError struct {
	code string
	msg  string
}

func (e *cliError) Error() string { return e.msg }

func clif(code, format string, a ...any) error {
	return &cliError{code: code, msg: fmt.Sprintf(format, a...)}
}

// codeOf maps any shell error onto its wire code: shell-level errors
// carry their own, engine errors go through the server's table.
func codeOf(err error) string {
	var ce *cliError
	if errors.As(err, &ce) {
		return ce.code
	}
	return server.ErrCode(err)
}

// shell executes commands against an embedded engine and renders every
// result either as prose or as a JSON envelope.
type shell struct {
	db      *ipa.DB
	out     io.Writer
	jsonOut bool

	// now stamps envelope latencies; tests replace it for stable goldens.
	now func() time.Time
}

func (sh *shell) clock() time.Time {
	if sh.now != nil {
		return sh.now()
	}
	return time.Now()
}

// run executes one input line and reports whether the shell should exit.
func (sh *shell) run(line string) (quit bool) {
	line = strings.TrimSpace(line)
	if line == "" {
		return false
	}
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	start := sh.clock()
	data, err := sh.execute(cmd, args)
	elapsed := sh.clock().Sub(start)

	if sh.jsonOut {
		env := envelope{OK: err == nil, Cmd: cmd, ElapsedMS: float64(elapsed) / float64(time.Millisecond)}
		if err != nil {
			env.Error = &envError{Code: codeOf(err), Msg: err.Error()}
		} else {
			env.Data = data
		}
		out, merr := json.Marshal(env)
		if merr != nil {
			// Marshal failure of a data payload is a bug; still answer in
			// envelope form so scripted callers never see a bare line.
			env.Data = nil
			env.OK = false
			env.Error = &envError{Code: server.CodeErr, Msg: merr.Error()}
			out, _ = json.Marshal(env)
		}
		fmt.Fprintln(sh.out, string(out))
	} else if err != nil {
		fmt.Fprintf(sh.out, "error: %s %v\n", codeOf(err), err)
	} else {
		sh.render(cmd, data)
	}
	return cmd == "quit" || cmd == "exit"
}

// Data payload shapes. Every command returns exactly one of these (or an
// engine-defined document for stats/ops/checkpoint); main_test.go pins
// each with a golden envelope.
type createResult struct {
	Table     string `json:"table"`
	TupleSize int    `json:"tuple_size"`
}
type rowKeyResult struct {
	Table string `json:"table"`
	Key   int64  `json:"key"`
}
type getResult struct {
	Table string `json:"table"`
	Key   int64  `json:"key"`
	Value string `json:"value"`
}
type updateResult struct {
	Table  string `json:"table"`
	Key    int64  `json:"key"`
	Offset int    `json:"offset"`
}
type scanRow struct {
	Key   int64  `json:"key"`
	Value string `json:"value"`
}
type scanResult struct {
	Table string    `json:"table"`
	From  int64     `json:"from"`
	To    int64     `json:"to"`
	Rows  []scanRow `json:"rows"`
	Count int       `json:"count"`
}
type indexResult struct {
	Table  string `json:"table"`
	Index  string `json:"index"`
	Offset int    `json:"offset"`
}
type indexInfo struct {
	Name    string `json:"name"`
	Entries int    `json:"entries"`
	Keys    int    `json:"keys"`
	Pages   int    `json:"pages"`
}
type indexesResult struct {
	Table     string      `json:"table"`
	Secondary []indexInfo `json:"secondary"`
}
type getByResult struct {
	Table string   `json:"table"`
	Index string   `json:"index"`
	Key   int64    `json:"key"`
	Rows  []string `json:"rows"`
	Count int      `json:"count"`
}
type tableInfo struct {
	Name  string `json:"name"`
	Rows  uint64 `json:"rows"`
	Pages int    `json:"pages"`
}
type tablesResult struct {
	Tables []tableInfo `json:"tables"`
}
type flushResult struct {
	Flushed bool `json:"flushed"`
}
type helpResult struct {
	Commands []string `json:"commands"`
}

// shellCommands lists every shell verb, for help and the golden tests.
var shellCommands = []string{
	"create", "insert", "get", "update", "delete", "scan",
	"index", "indexes", "get-by", "tables", "stats", "ops",
	"flush", "checkpoint", "help", "quit",
}

// execute runs one command and returns its data payload.
func (sh *shell) execute(cmd string, args []string) (any, error) {
	db := sh.db
	switch cmd {
	case "quit", "exit":
		return nil, nil
	case "help":
		return helpResult{Commands: shellCommands}, nil
	case "create":
		if len(args) != 2 {
			return nil, clif(server.CodeArgs, "usage: create <table> <tupleSize>")
		}
		size, err := strconv.Atoi(args[1])
		if err != nil {
			return nil, clif(server.CodeArgs, "bad tuple size: %v", err)
		}
		if _, err := db.CreateTable(args[0], size); err != nil {
			return nil, err
		}
		return createResult{Table: args[0], TupleSize: size}, nil
	case "insert", "update", "get", "delete", "scan":
		return sh.tableCommand(cmd, args)
	case "index":
		if len(args) != 3 {
			return nil, clif(server.CodeArgs, "usage: index <table> <name> <offset>")
		}
		table, err := sh.table(args[0])
		if err != nil {
			return nil, err
		}
		off, err := strconv.Atoi(args[2])
		if err != nil {
			return nil, clif(server.CodeArgs, "bad offset: %v", err)
		}
		if off < 0 || off+8 > table.TupleSize() {
			return nil, clif(server.CodeArgs,
				"offset %d outside the %d-byte tuples of %s (need offset+8 <= size)",
				off, table.TupleSize(), args[0])
		}
		if _, err := table.CreateSecondaryIndex(args[1], ipa.Int64Field(off)); err != nil {
			return nil, err
		}
		return indexResult{Table: args[0], Index: args[1], Offset: off}, nil
	case "indexes":
		if len(args) != 1 {
			return nil, clif(server.CodeArgs, "usage: indexes <table>")
		}
		table, err := sh.table(args[0])
		if err != nil {
			return nil, err
		}
		res := indexesResult{Table: args[0], Secondary: []indexInfo{}}
		for _, name := range table.SecondaryIndexes() {
			s, _ := table.SecondaryIndex(name)
			res.Secondary = append(res.Secondary, indexInfo{
				Name: name, Entries: s.Len(), Keys: s.Keys(), Pages: s.Pages(),
			})
		}
		return res, nil
	case "get-by":
		if len(args) != 3 {
			return nil, clif(server.CodeArgs, "usage: get-by <table> <index> <key>")
		}
		table, err := sh.table(args[0])
		if err != nil {
			return nil, err
		}
		key, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return nil, clif(server.CodeArgs, "bad key: %v", err)
		}
		rows, err := table.GetBySecondary(args[1], key)
		if err != nil {
			return nil, err
		}
		res := getByResult{Table: args[0], Index: args[1], Key: key, Rows: []string{}}
		for _, row := range rows {
			res.Rows = append(res.Rows, strings.TrimRight(string(row), "\x00"))
		}
		res.Count = len(res.Rows)
		return res, nil
	case "tables":
		res := tablesResult{Tables: []tableInfo{}}
		for _, name := range db.Tables() {
			t, _ := db.Table(name)
			res.Tables = append(res.Tables, tableInfo{Name: name, Rows: t.Count(), Pages: t.Pages()})
		}
		return res, nil
	case "stats":
		return db.Stats(), nil
	case "ops":
		return db.Ops(), nil
	case "flush":
		if err := db.FlushAll(); err != nil {
			return nil, err
		}
		return flushResult{Flushed: true}, nil
	case "checkpoint":
		res, err := db.Checkpoint()
		if err != nil {
			return nil, err
		}
		return res, nil
	default:
		return nil, clif(server.CodeUnknown, "unknown command %q (try 'help')", cmd)
	}
}

// table resolves a table name with the NOTABLE wire code on failure.
func (sh *shell) table(name string) (*ipa.Table, error) {
	t, ok := sh.db.Table(name)
	if !ok {
		return nil, clif(server.CodeNoTable, "no such table %q", name)
	}
	return t, nil
}

func (sh *shell) tableCommand(cmd string, args []string) (any, error) {
	if len(args) < 2 {
		return nil, clif(server.CodeArgs, "usage: %s <table> <key> ...", cmd)
	}
	table, err := sh.table(args[0])
	if err != nil {
		return nil, err
	}
	key, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return nil, clif(server.CodeArgs, "bad key: %v", err)
	}
	db := sh.db
	switch cmd {
	case "insert":
		if len(args) < 3 {
			return nil, clif(server.CodeArgs, "usage: insert <table> <key> <text>")
		}
		row := make([]byte, table.TupleSize())
		copy(row, strings.Join(args[2:], " "))
		if err := table.Insert(key, row); err != nil {
			return nil, err
		}
		return rowKeyResult{Table: args[0], Key: key}, nil
	case "get":
		row, err := table.Get(key)
		if err != nil {
			return nil, err
		}
		return getResult{Table: args[0], Key: key, Value: strings.TrimRight(string(row), "\x00")}, nil
	case "update":
		if len(args) < 4 {
			return nil, clif(server.CodeArgs, "usage: update <table> <key> <offset> <text>")
		}
		off, err := strconv.Atoi(args[2])
		if err != nil {
			return nil, clif(server.CodeArgs, "bad offset: %v", err)
		}
		tx := db.Begin()
		if err := tx.UpdateAt(table, key, off, []byte(strings.Join(args[3:], " "))); err != nil {
			_ = tx.Abort()
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		return updateResult{Table: args[0], Key: key, Offset: off}, nil
	case "delete":
		tx := db.Begin()
		if err := tx.Delete(table, key); err != nil {
			_ = tx.Abort()
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		return rowKeyResult{Table: args[0], Key: key}, nil
	case "scan":
		if len(args) != 3 {
			return nil, clif(server.CodeArgs, "usage: scan <table> <from> <to>")
		}
		to, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return nil, clif(server.CodeArgs, "bad upper bound: %v", err)
		}
		res := scanResult{Table: args[0], From: key, To: to, Rows: []scanRow{}}
		if err := table.ScanRange(key, to, func(k int64, row []byte) bool {
			res.Rows = append(res.Rows, scanRow{Key: k, Value: strings.TrimRight(string(row), "\x00")})
			return true
		}); err != nil {
			return nil, err
		}
		res.Count = len(res.Rows)
		return res, nil
	}
	return nil, clif(server.CodeUnknown, "unknown command %q", cmd)
}

// render prints one successful result as prose (the no -json view).
func (sh *shell) render(cmd string, data any) {
	w := sh.out
	switch d := data.(type) {
	case createResult:
		fmt.Fprintf(w, "table %s created (%d-byte tuples)\n", d.Table, d.TupleSize)
	case rowKeyResult:
		fmt.Fprintln(w, "ok")
	case updateResult:
		fmt.Fprintln(w, "ok")
	case getResult:
		fmt.Fprintf(w, "%q\n", d.Value)
	case scanResult:
		for _, r := range d.Rows {
			fmt.Fprintf(w, "%12d  %q\n", r.Key, r.Value)
		}
		fmt.Fprintf(w, "(%d rows in [%d,%d))\n", d.Count, d.From, d.To)
	case indexResult:
		fmt.Fprintf(w, "secondary index %s.%s created (int64 at offset %d)\n", d.Table, d.Index, d.Offset)
	case indexesResult:
		fmt.Fprintf(w, "  %-24s %8s\n", d.Table+".pk", "(primary)")
		for _, s := range d.Secondary {
			fmt.Fprintf(w, "  %-24s %8d entries %6d keys %6d pages\n",
				d.Table+"."+s.Name, s.Entries, s.Keys, s.Pages)
		}
	case getByResult:
		for _, row := range d.Rows {
			fmt.Fprintf(w, "%q\n", row)
		}
		fmt.Fprintf(w, "(%d rows under %s.%s = %d)\n", d.Count, d.Table, d.Index, d.Key)
	case tablesResult:
		for _, t := range d.Tables {
			fmt.Fprintf(w, "  %-24s %8d rows %6d pages\n", t.Name, t.Rows, t.Pages)
		}
	case ipa.Stats:
		fmt.Fprint(w, d)
	case ipa.OpsStats:
		renderOps(w, d)
	case flushResult:
		fmt.Fprintln(w, "all dirty pages flushed")
	case helpResult:
		fmt.Fprintf(w, "commands: %s\n", strings.Join(d.Commands, " | "))
	case nil:
		// quit
	default:
		out, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			fmt.Fprintf(w, "error: %s %v\n", server.CodeErr, err)
			return
		}
		fmt.Fprintln(w, string(out))
	}
}

// renderOps prints the derived gauges; shared with `ipadb watch`.
func renderOps(w io.Writer, o ipa.OpsStats) {
	fmt.Fprintf(w, "device life burned   %8.4f%%  (%d of %d erases)\n",
		o.LifeBurned*100, o.ErasesConsumed, o.EraseBudget)
	if o.TimeToDeath > 0 {
		fmt.Fprintf(w, "time to death        %8s   (virtual, at current erase rate)\n", o.TimeToDeath.Round(time.Second))
	} else {
		fmt.Fprintf(w, "time to death        %8s\n", "∞")
	}
	fmt.Fprintf(w, "erases avoided       %8d   (vs out-of-place baseline %d)\n", o.ErasesAvoided, o.BaselineErases)
	fmt.Fprintf(w, "window               %8s   virtual (%d samples)\n", o.WindowVirtual.Round(time.Millisecond), o.Samples)
	fmt.Fprintf(w, "  tps                %10.1f/s\n", o.WindowTPS)
	fmt.Fprintf(w, "  evictions          %10.1f/s\n", o.WindowEvictionsPerSec)
	fmt.Fprintf(w, "  erase rate         %10.3f/s\n", o.WindowEraseRatePerSec)
	fmt.Fprintf(w, "  in-place share     %9.1f%%\n", o.WindowInPlaceShare*100)
}
