package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"ipa"
	"ipa/internal/server"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newTestShell builds a -json shell over a small deterministic engine.
func newTestShell(t *testing.T) *shell {
	t.Helper()
	db, err := ipa.Open(ipa.Config{
		PageSize:        2048,
		Blocks:          32,
		PagesPerBlock:   16,
		BufferPoolPages: 32,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		WriteMode:       ipa.IPANativeFlash,
		FlashMode:       ipa.PSLC,
		Analytic:        true,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return &shell{db: db, jsonOut: true}
}

// elapsedRe masks the envelope latency — the only nondeterministic field.
var elapsedRe = regexp.MustCompile(`"elapsed_ms":[0-9.eE+-]+`)

func maskElapsed(s string) string {
	return elapsedRe.ReplaceAllString(s, `"elapsed_ms":"X"`)
}

// goldenScript is every shell command, success and failure paths, in one
// deterministic sequence. The map key names the golden file; each entry
// runs under its own sub-test.
var goldenScript = []struct {
	name  string
	lines []string
}{
	{"help", []string{"help"}},
	{"create", []string{
		"create users 64",
		"create users 64", // EXISTS
		"create",          // ARGS
	}},
	{"insert", []string{
		"insert users 1 alice",
		"insert users 2 bob",
		"insert users 1 alice", // DUPKEY
		"insert nosuch 1 x",    // NOTABLE
		"insert users",         // ARGS
	}},
	{"get", []string{
		"get users 1",
		"get users 99", // NOTFOUND
		"get users xx", // ARGS
	}},
	{"update", []string{
		"update users 1 0 ALICE",
		"update users 99 0 x", // NOTFOUND
	}},
	{"scan", []string{
		"scan users 0 10",
		"scan users 0", // ARGS
	}},
	{"index", []string{
		"index users byref 8",
		"index users bad 63", // ARGS: offset+8 > 64
	}},
	{"indexes", []string{
		"indexes users",
		"indexes nosuch", // NOTABLE
	}},
	{"get-by", []string{
		"get-by users byref 0",
		"get-by users nosuch 0", // NOINDEX
	}},
	{"delete", []string{
		"delete users 2",
		"delete users 2", // NOTFOUND
	}},
	{"tables", []string{"tables"}},
	{"flush", []string{"flush"}},
	{"unknown", []string{"frobnicate the flash"}}, // UNKNOWN
	{"quit", []string{"quit"}},
}

// TestGoldenEnvelopes runs the full script through one shell and compares
// each command's envelopes (elapsed_ms masked) against its golden file.
func TestGoldenEnvelopes(t *testing.T) {
	sh := newTestShell(t)
	for _, step := range goldenScript {
		t.Run(step.name, func(t *testing.T) {
			var buf bytes.Buffer
			sh.out = &buf
			for _, line := range step.lines {
				sh.run(line)
			}
			got := maskElapsed(buf.String())
			golden := filepath.Join("testdata", step.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (rerun with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("envelope mismatch for %s:\n--- got ---\n%s--- want ---\n%s", step.name, got, want)
			}
		})
	}
}

// TestEnvelopeShape checks every reply line is a well-formed envelope:
// valid JSON, ok/cmd always present, data xor error, elapsed_ms >= 0.
func TestEnvelopeShape(t *testing.T) {
	sh := newTestShell(t)
	var buf bytes.Buffer
	sh.out = &buf
	for _, step := range goldenScript {
		for _, line := range step.lines {
			sh.run(line)
		}
	}
	// stats/ops/checkpoint carry engine-defined payloads; include them in
	// the shape check even though they are not golden-pinned.
	for _, line := range []string{"stats", "ops", "checkpoint"} {
		sh.run(line)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var env struct {
			OK        *bool           `json:"ok"`
			Cmd       string          `json:"cmd"`
			ElapsedMS *float64        `json:"elapsed_ms"`
			Data      json.RawMessage `json:"data"`
			Error     *envError       `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			t.Fatalf("not an envelope: %q: %v", line, err)
		}
		if env.OK == nil || env.Cmd == "" || env.ElapsedMS == nil {
			t.Fatalf("envelope missing required fields: %q", line)
		}
		if *env.ElapsedMS < 0 {
			t.Errorf("negative elapsed_ms: %q", line)
		}
		if *env.OK && env.Error != nil {
			t.Errorf("ok envelope with error: %q", line)
		}
		if !*env.OK {
			if env.Error == nil || env.Error.Code == "" || env.Error.Msg == "" {
				t.Errorf("error envelope without code/msg: %q", line)
			}
			if len(env.Data) != 0 {
				t.Errorf("error envelope with data: %q", line)
			}
		}
	}
}

// TestEnvelopeCodesMatchWire drives each failure path and checks the
// envelope carries exactly the wire code ipaserver would answer with, and
// that every code the shell can emit exists in the server's table.
func TestEnvelopeCodesMatchWire(t *testing.T) {
	sh := newTestShell(t)
	var buf bytes.Buffer
	sh.out = &buf
	wire := make(map[string]bool)
	for _, c := range server.WireCodes() {
		wire[c] = true
	}

	cases := []struct {
		line string
		want string
	}{
		{"frobnicate", server.CodeUnknown},
		{"create", server.CodeArgs},
		{"get nosuch 1", server.CodeNoTable},
		{"create t 64", ""}, // setup
		{"create t 64", server.CodeExists},
		{"insert t 1 x", ""}, // setup
		{"insert t 1 x", server.CodeDupKey},
		{"get t 99", server.CodeNotFound},
		{"get-by t nosuch 1", server.CodeNoIndex},
		{"update t 1 zz x", server.CodeArgs},
	}
	for _, c := range cases {
		buf.Reset()
		sh.run(c.line)
		var env envelope
		envLine := strings.TrimSpace(buf.String())
		if err := json.Unmarshal([]byte(envLine), &env); err != nil {
			t.Fatalf("%q: %v", envLine, err)
		}
		if c.want == "" {
			if !env.OK {
				t.Fatalf("%q: setup failed: %s", c.line, envLine)
			}
			continue
		}
		if env.OK {
			t.Errorf("%q: expected failure with %s, got ok", c.line, c.want)
			continue
		}
		if env.Error == nil {
			t.Errorf("%q: error envelope without error object", c.line)
			continue
		}
		if env.Error.Code != c.want {
			t.Errorf("%q: code %s, want %s", c.line, env.Error.Code, c.want)
		}
		if !wire[env.Error.Code] {
			t.Errorf("%q: code %s not in the server wire-code table", c.line, env.Error.Code)
		}
	}
}

// TestWatchRender feeds a fixed /stats.json document through the watch
// fetch+render path and checks the frame carries the headline gauges.
func TestWatchRender(t *testing.T) {
	doc := server.StatsDoc{
		UptimeSec: 12,
		VirtualMS: 3456,
		Mode:      "IPANativeFlash",
		Engine: ipa.Stats{
			Scheme: ipa.Scheme{N: 2, M: 4},
			ChipStats: []ipa.ChipStat{
				{Chip: 0, BlockErases: 10},
				{Chip: 1, BlockErases: 7},
			},
		},
		Ops: ipa.OpsStats{
			EraseBudget:    96000,
			ErasesConsumed: 17,
			LifeBurned:     17.0 / 96000,
			ErasesAvoided:  5,
			WindowTPS:      123.4,
			TimeToDeath:    90 * time.Minute,
		},
		Server: server.ServerCounters{ConnectionsCurrent: 2, CommandsTotal: 99},
		Latency: map[string]server.LatencySummary{
			"GET": {Count: 50, MeanUS: 12.5, P50US: 10, P95US: 30, P99US: 44},
		},
	}
	body, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/stats.json" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}))
	defer ts.Close()

	got, err := fetchStats(ts.URL + "/stats.json")
	if err != nil {
		t.Fatalf("fetchStats: %v", err)
	}
	var frame bytes.Buffer
	renderWatch(&frame, got)
	out := frame.String()
	for _, want := range []string{
		"IPANativeFlash", "2x4", // header
		"17 of 96000",      // burn gauge
		"time to death",    // extrapolation line
		"chip 0", "chip 1", // wear bars
		"GET", "50", // latency table
		"123.4", // window tps
	} {
		if !strings.Contains(out, want) {
			t.Errorf("watch frame missing %q:\n%s", want, out)
		}
	}
}

// TestWatchFetchError checks a non-200 answer surfaces as an error, not a
// broken frame.
func TestWatchFetchError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	if _, err := fetchStats(ts.URL + "/stats.json"); err == nil {
		t.Fatal("expected error on 500")
	} else if !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestPlainModeStillWorks smoke-tests the prose renderer so -json stays
// optional.
func TestPlainModeStillWorks(t *testing.T) {
	sh := newTestShell(t)
	sh.jsonOut = false
	var buf bytes.Buffer
	sh.out = &buf
	for _, line := range []string{"create t 64", "insert t 1 hello", "get t 1", "tables"} {
		sh.run(line)
	}
	out := buf.String()
	for _, want := range []string{"table t created", "ok", `"hello"`, "1 rows"} {
		if !strings.Contains(out, want) {
			t.Errorf("plain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `"ok":`) {
		t.Errorf("plain mode leaked JSON envelopes:\n%s", out)
	}
}
