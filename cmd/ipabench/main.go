// Command ipabench regenerates the tables and figures of the paper's
// evaluation on the simulated Flash device.
//
// Usage:
//
//	ipabench -exp table1       # Table 1: TPC-B, 0x0 vs 2x4 pSLC vs 2x4 odd-MLC
//	ipabench -exp fig1         # Figure 1: DBMS write-amplification analysis
//	ipabench -exp oltp         # OLTP suite: throughput / GC reduction claims
//	ipabench -exp ipl          # IPA vs In-Page Logging comparison
//	ipabench -exp longevity    # Flash lifetime estimate
//	ipabench -exp scenarios    # demo scenarios 1/2/3 side by side
//	ipabench -exp interference # program-interference ablation (MLC modes)
//	ipabench -exp sweep        # N×M scheme ablation
//	ipabench -exp concurrent   # concurrency scaling (sharded pool, group commit)
//	ipabench -exp chips        # chip scaling (per-chip FTL partitions)
//	ipabench -exp crash        # power-cut torture: crash at every fault point
//	ipabench -exp index        # index maintenance: IPA vs out-of-place entry pages
//	ipabench -exp secondary    # secondary-index maintenance: IPA vs out-of-place
//	ipabench -exp ycsb         # YCSB A-F, cache-sized and 8x larger-than-memory
//	ipabench -exp all
//
// The -quick flag shrinks every experiment so the whole suite finishes in
// about a minute; without it the defaults match the full runs documented in
// EXPERIMENTS.md (which also maps each experiment to the paper's tables and
// figures). With -json -out FILE the run additionally writes one structured
// JSON object per experiment, which CI archives as a build artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ipa/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, fig1, oltp, ipl, longevity, scenarios, interference, sweep, concurrent, chips, crash, index, secondary, ycsb, all")
		scale    = flag.Int("scale", 0, "workload scale factor (0 = experiment default)")
		ops      = flag.Int("ops", 0, "bound runs by committed transactions (0 = use duration)")
		duration = flag.Duration("duration", 0, "bound runs by virtual device time (0 = experiment default)")
		seed     = flag.Int64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "shrink all experiments for a fast demo run")
		n        = flag.Int("n", 2, "IPA scheme parameter N")
		m        = flag.Int("m", 4, "IPA scheme parameter M")
		threads  = flag.Int("threads", 0, "concurrent experiment: fixed goroutine count (0 = ladder 1,2,4,8)")
		chips    = flag.Int("chips", 0, "chips experiment: fixed chip count (0 = ladder 1,2,4,8)")
		jsonOut  = flag.Bool("json", false, "collect machine-readable results")
		outFile  = flag.String("out", "", "file for -json results (default bench.json)")
	)
	flag.Parse()

	profile := bench.DefaultProfile
	if *quick {
		profile = bench.SmallProfile
	}
	report := &bench.Report{}

	run := func(name string, fn func() error) {
		fmt.Printf("== %s ==\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "ipabench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(completed in %s wall-clock)\n\n", time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table 1: TPC-B traditional vs IPA [2x4] pSLC / odd-MLC", func() error {
			o := bench.DefaultTable1Options()
			o.Profile = profile
			o.Seed = *seed
			o.Scheme.N, o.Scheme.M = *n, *m
			if *scale > 0 {
				o.Scale = *scale
			}
			if *ops > 0 {
				o.Ops, o.Duration = *ops, 0
			}
			if *duration > 0 {
				o.Duration, o.Ops = *duration, 0
			}
			if *quick {
				o.Duration, o.Ops = 0, 6000
				if *scale == 0 {
					// The small quick-mode device halves its capacity in
					// pSLC mode; keep the TPC-B data set within it.
					o.Scale = 1
				}
			}
			res, err := bench.Table1(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("table1", o, res)
			return nil
		})
	}
	if want("fig1") {
		run("Figure 1: DBMS write-amplification", func() error {
			o := bench.DefaultFigure1Options()
			o.Profile = profile
			o.Seed = *seed
			o.SchemeN, o.SchemeM = *n, *m
			if *scale > 0 {
				o.Scale = *scale
			}
			if *ops > 0 {
				o.Ops = *ops
			}
			if *quick {
				o.Ops = 3000
			}
			res, err := bench.Figure1(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("fig1", o, res)
			return nil
		})
	}
	var suiteRes *bench.SuiteResult
	if want("oltp") || want("longevity") {
		run("OLTP suite: TPC-B / TPC-C / TATP", func() error {
			o := bench.DefaultSuiteOptions()
			o.Profile = profile
			o.Seed = *seed
			o.SchemeN, o.SchemeM = *n, *m
			if *scale > 0 {
				o.Scale = *scale
			}
			if *ops > 0 {
				o.Ops, o.Duration = *ops, 0
			}
			if *duration > 0 {
				o.Duration, o.Ops = *duration, 0
			}
			if *quick {
				o.Duration, o.Ops = 0, 4000
			}
			res, err := bench.Suite(o)
			if err != nil {
				return err
			}
			suiteRes = &res
			res.Write(os.Stdout)
			report.Add("oltp", o, res)
			return nil
		})
	}
	if want("longevity") && suiteRes != nil {
		run("Longevity: erase budget per host write", func() error {
			rows := bench.Longevity(*suiteRes)
			bench.WriteLongevity(os.Stdout, rows)
			report.Add("longevity", nil, rows)
			return nil
		})
	}
	if want("ipl") {
		run("IPA vs In-Page Logging", func() error {
			o := bench.DefaultIPLOptions()
			o.Profile = profile
			o.Seed = *seed
			o.SchemeN, o.SchemeM = *n, *m
			if *scale > 0 {
				o.Scale = *scale
			}
			if *ops > 0 {
				o.Ops = *ops
			}
			if *quick {
				o.Ops = 3000
			}
			res, err := bench.IPLCompare(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("ipl", o, res)
			return nil
		})
	}
	if want("scenarios") {
		run("Demonstration scenarios 1/2/3", func() error {
			o := bench.DefaultScenarioOptions()
			o.Profile = profile
			o.Seed = *seed
			o.SchemeN, o.SchemeM = *n, *m
			if *scale > 0 {
				o.Scale = *scale
			}
			if *ops > 0 {
				o.Ops, o.Duration = *ops, 0
			}
			if *duration > 0 {
				o.Duration, o.Ops = *duration, 0
			}
			if *quick {
				o.Ops, o.Duration = 4000, 0
				o.Scale = 1
			}
			res, err := bench.Scenarios(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("scenarios", o, res)
			return nil
		})
	}
	if want("interference") {
		run("Program interference on MLC Flash", func() error {
			o := bench.DefaultInterferenceOptions()
			o.Profile = profile
			o.Seed = *seed
			o.SchemeN, o.SchemeM = *n, *m
			if *scale > 0 {
				o.Scale = *scale
			}
			if *ops > 0 {
				o.Ops = *ops
			}
			if *quick {
				o.Ops = 3000
				o.Scale = 1
			}
			res, err := bench.Interference(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("interference", o, res)
			return nil
		})
	}
	if want("sweep") {
		run("N×M scheme sweep", func() error {
			o := bench.DefaultSweepOptions()
			o.Profile = profile
			o.Seed = *seed
			if *scale > 0 {
				o.Scale = *scale
			}
			if *ops > 0 {
				o.Ops = *ops
			}
			if *quick {
				o.Ops = 2000
				o.Ns = []int{1, 2, 4}
				o.Ms = []int{4, 8}
			}
			res, err := bench.Sweep(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("sweep", o, res)
			return nil
		})
	}
	if want("concurrent") {
		run("Concurrency scaling: sharded pool + group-commit WAL", func() error {
			o := bench.DefaultConcurrentOptions()
			o.Profile = profile
			o.Seed = *seed
			o.SchemeN, o.SchemeM = *n, *m
			if *threads > 0 {
				o.Goroutines = []int{*threads}
			}
			if *ops > 0 {
				o.Ops = *ops
			}
			if *quick {
				o.Ops = 6000
				o.Tuples = 2048
			}
			res, err := bench.Concurrent(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("concurrent", o, res)
			return nil
		})
		run("Read-skew ladder: MVCC snapshot reads vs 2PL locked reads", func() error {
			o := bench.DefaultReadMixOptions()
			o.Profile = profile
			o.Seed = *seed
			o.SchemeN, o.SchemeM = *n, *m
			if *threads > 0 {
				o.Goroutines = *threads
			}
			if *ops > 0 {
				o.Ops = *ops
			}
			if *quick {
				o.Ops = 1500
				o.Tuples = 512
			}
			res, err := bench.ReadMix(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("readmix", o, res)
			return nil
		})
	}
	if want("chips") {
		run("Chip scaling: per-chip FTL partitions", func() error {
			o := bench.DefaultChipsOptions()
			o.Profile = profile
			o.Seed = *seed
			o.SchemeN, o.SchemeM = *n, *m
			if *chips > 0 {
				o.Chips = []int{*chips}
			}
			if *threads > 0 {
				o.Goroutines = *threads
			}
			if *ops > 0 {
				o.Ops = *ops
			}
			if *quick {
				o.Ops = 4000
				o.Tuples = 4096
			}
			res, err := bench.Chips(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("chips", o, res)
			return nil
		})
	}
	if want("crash") {
		run("Power-cut torture: crash, recover, verify", func() error {
			o := bench.DefaultCrashOptions()
			o.Seed = *seed
			if *ops > 0 {
				o.Ops = *ops
			}
			if *chips > 0 {
				o.Chips = *chips
			}
			if *quick {
				// A bounded, evenly spread sample per fault mode; the full
				// run sweeps every enumerated fault point.
				o.Sample = 12
				o.Ops = 120
			}
			res, err := bench.Crash(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("crash", o, res)
			if res.Failed() {
				return fmt.Errorf("recovery invariants violated")
			}
			return nil
		})
	}
	if want("index") {
		run("Index maintenance: IPA vs out-of-place entry pages", func() error {
			// The index experiment keeps its own small-pool profile (see
			// bench.IndexProfile): a pool big enough to cache the whole
			// index would leave no index I/O to measure.
			o := bench.DefaultIndexOptions()
			o.Seed = *seed
			o.SchemeN, o.SchemeM = *n, *m
			if *scale > 0 {
				o.Scale = *scale
			}
			if *ops > 0 {
				o.Ops, o.Duration = *ops, 0
			}
			if *duration > 0 {
				o.Duration, o.Ops = *duration, 0
			}
			if *quick {
				o.Profile = bench.SmallProfile
				o.Profile.BufferPoolPages = 16
				o.Ops = 4000
			}
			res, err := bench.Index(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("index", o, res)
			return nil
		})
	}
	if want("secondary") {
		run("Secondary indexes: IPA vs out-of-place entry pages", func() error {
			// Same small-pool profile rationale as -exp index: a pool big
			// enough to cache every entry page would leave nothing to
			// measure.
			o := bench.DefaultSecondaryOptions()
			o.Seed = *seed
			o.SchemeN, o.SchemeM = *n, *m
			if *scale > 0 {
				o.Scale = *scale
			}
			if *ops > 0 {
				o.Ops, o.Duration = *ops, 0
			}
			if *duration > 0 {
				o.Duration, o.Ops = *duration, 0
			}
			if *quick {
				o.Profile = bench.SmallProfile
				o.Profile.BufferPoolPages = 16
				o.Ops = 4000
			}
			res, err := bench.Secondary(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("secondary", o, res)
			return nil
		})
	}
	if want("ycsb") {
		run("YCSB A-F: cache-sized vs larger-than-memory", func() error {
			o := bench.DefaultYCSBOptions()
			o.Profile = profile
			o.Seed = *seed
			o.SchemeN, o.SchemeM = *n, *m
			if *ops > 0 {
				o.Ops = *ops
			}
			if *quick {
				o.Ops = 3000
			}
			res, err := bench.YCSB(o)
			if err != nil {
				return err
			}
			res.Write(os.Stdout)
			report.Add("ycsb", o, res)
			return nil
		})
	}
	if *jsonOut {
		path := *outFile
		if path == "" {
			path = "bench.json"
		}
		if err := report.WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "ipabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d experiment results to %s\n", len(report.Entries), path)
	}
}
