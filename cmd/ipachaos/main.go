// Command ipachaos runs a chaos session against a live ipaserver stack:
// it boots the engine and the wire front end in-process, drives transfer
// traffic over TCP, injects latency spikes, chip stalls and wall-clock
// power cuts, and continuously audits ledger conservation, index
// integrity and commit-timestamp monotonicity. Exit status 1 means an
// invariant was violated — the output lists each violation.
//
//	ipachaos                          # 15s, 3 power cuts
//	ipachaos -quick                   # CI smoke: ~4s, 2 cuts
//	ipachaos -duration 1m -cuts 10 -workers 8
//	ipachaos -json -out chaos.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ipa"
	"ipa/internal/chaos"
)

func main() {
	var (
		duration = flag.Duration("duration", 15*time.Second, "session length")
		cuts     = flag.Int("cuts", 3, "scheduled power cuts")
		workers  = flag.Int("workers", 4, "wire transfer connections")
		accounts = flag.Int("accounts", 4096, "ledger size")
		seed     = flag.Int64("seed", 1, "workload seed")
		quick    = flag.Bool("quick", false, "short CI session (~4s, 2 cuts)")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		out      = flag.String("out", "", "also write the JSON report to this file")
		quiet    = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	o := chaos.DefaultOptions()
	o.Duration = *duration
	o.PowerCuts = *cuts
	o.Workers = *workers
	o.Accounts = *accounts
	o.Seed = *seed
	if *quick {
		o.Duration = 4 * time.Second
		o.PowerCuts = 2
		o.AuditEvery = 120 * time.Millisecond
		o.VerifyEvery = 600 * time.Millisecond
		o.SpikeEvery = 900 * time.Millisecond
		o.StallEvery = 700 * time.Millisecond
	}
	// A device small enough that the default ledger does not fit in the
	// buffer pool: chaos is only interesting when cuts land while dirty
	// pages, deltas and GC are in flight.
	o.Engine = ipa.Config{
		PageSize:        4096,
		Blocks:          128,
		PagesPerBlock:   32,
		BufferPoolPages: 64,
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
		Chips:           4,
	}
	if !*quiet && !*jsonOut {
		o.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := chaos.Run(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipachaos: %v\n", err)
		os.Exit(2)
	}

	if *out != "" {
		buf, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ipachaos: write %s: %v\n", *out, err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		buf, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(buf))
	} else {
		fmt.Printf("chaos: %s wall, %d transfers (%d conflicts, %d retries, %d reconnects)\n",
			rep.Wall.Round(time.Millisecond), rep.Ops, rep.Conflicts, rep.Retries, rep.Reconnects)
		fmt.Printf("chaos: %d power cuts, %d restarts, %d WAL records redone\n",
			rep.PowerCuts, rep.Restarts, rep.RecoveryRedos)
		fmt.Printf("chaos: %d ledger audits, %d timestamp checks, %d integrity passes; %d spiked ops, %d stalled ops\n",
			rep.LedgerAudits, rep.TSChecks, rep.VerifyPasses, rep.SpikedOps, rep.StalledOps)
	}
	if rep.Failed() {
		fmt.Fprintf(os.Stderr, "ipachaos: %d INVARIANT VIOLATIONS\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  - %s\n", v)
		}
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("chaos: all invariants held")
	}
}
