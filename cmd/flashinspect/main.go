// Command flashinspect exercises the raw Flash device simulator and prints
// its geometry, timing and wear state. It is a small diagnostic tool for
// understanding what the substrate under the database engine does: it
// programs a few pages, appends delta records with write_delta-style
// partial programs, provokes an overwrite violation and shows the
// resulting statistics.
//
// Usage:
//
//	flashinspect [-blocks N] [-pages N] [-pagesize BYTES] [-cell slc|mlc]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ipa/internal/flashdev"
	"ipa/internal/nand"
)

func main() {
	var (
		blocks   = flag.Int("blocks", 64, "erase blocks")
		pages    = flag.Int("pages", 64, "pages per block")
		pageSize = flag.Int("pagesize", 8192, "page size in bytes")
		cell     = flag.String("cell", "mlc", "cell type: slc or mlc")
	)
	flag.Parse()

	cellType := nand.MLC
	if *cell == "slc" {
		cellType = nand.SLC
	}
	dev, err := flashdev.New(flashdev.Config{
		Chips: 1,
		Chip: nand.Config{
			Geometry: nand.Geometry{
				Blocks:        *blocks,
				PagesPerBlock: *pages,
				PageSize:      *pageSize,
				OOBSize:       128,
			},
			Cell:            cellType,
			StrictOverwrite: true,
			Seed:            1,
		},
		Latency: flashdev.DefaultLatencyModel(),
	})
	if err != nil {
		log.Fatalf("flashinspect: %v", err)
	}

	g := dev.Geometry()
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "geometry\t%d blocks × %d pages × %d bytes = %.1f MiB\n",
		g.Blocks, g.PagesPerBlock, g.PageSize, float64(g.Blocks*g.PagesPerBlock*g.PageSize)/(1<<20))
	fmt.Fprintf(w, "cell type\t%s\n", cellType)
	fmt.Fprintf(w, "OOB per page\t%d bytes (%d delta-record ECC slots)\n", g.OOBSize, g.DeltaSlots)
	fmt.Fprintf(w, "endurance\t%d program/erase cycles per block\n", dev.EnduranceCycles())
	w.Flush()

	// Exercise the command set: program a page whose tail is left erased,
	// read it back, append two delta records, then provoke the
	// erase-before-overwrite rule.
	data := make([]byte, g.PageSize)
	for i := 0; i < g.PageSize*3/4; i++ {
		data[i] = byte(i)
	}
	for i := g.PageSize * 3 / 4; i < g.PageSize; i++ {
		data[i] = 0xFF
	}
	cover := g.PageSize * 3 / 4
	if err := dev.ProgramPage(0, 1, data, cover); err != nil {
		log.Fatalf("program: %v", err)
	}
	buf := make([]byte, g.PageSize)
	if err := dev.ReadPage(0, 1, buf); err != nil {
		log.Fatalf("read: %v", err)
	}
	if _, err := dev.ProgramDelta(0, 1, cover, []byte("delta-record-1")); err != nil {
		log.Fatalf("write_delta 1: %v", err)
	}
	if _, err := dev.ProgramDelta(0, 1, cover+16, []byte("delta-record-2")); err != nil {
		log.Fatalf("write_delta 2: %v", err)
	}
	if err := dev.ReadPage(0, 1, buf); err != nil {
		log.Fatalf("read after appends (ECC): %v", err)
	}
	// An overwrite of already-programmed cells with 0->1 transitions must
	// be rejected: this is the erase-before-overwrite principle IPA works
	// around by only appending to erased cells.
	overwriteErr := dev.ProgramPage(0, 1, bytesOf(0xFF, g.PageSize), cover)
	if err := dev.EraseBlock(0); err != nil {
		log.Fatalf("erase: %v", err)
	}
	if err := dev.ProgramPage(0, 1, bytesOf(0xAB, g.PageSize), g.PageSize); err != nil {
		log.Fatalf("program after erase: %v", err)
	}

	s := dev.Stats()
	cs := dev.ChipStats()
	fmt.Println()
	fmt.Fprintf(w, "page programs\t%d\n", s.PagePrograms)
	fmt.Fprintf(w, "delta programs (write_delta)\t%d\n", s.DeltaPrograms)
	fmt.Fprintf(w, "page reads\t%d\n", s.PageReads)
	fmt.Fprintf(w, "block erases\t%d\n", s.BlockErases)
	fmt.Fprintf(w, "bytes to device\t%d\n", s.BytesToDevice)
	fmt.Fprintf(w, "overwrite attempts denied\t%d (last error: %v)\n", cs.OverwriteDenied, overwriteErr)
	fmt.Fprintf(w, "max erase count\t%d of %d\n", dev.MaxEraseCount(), dev.EnduranceCycles())
	fmt.Fprintf(w, "virtual time elapsed\t%s\n", dev.Now())
	w.Flush()
}

func bytesOf(v byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = v
	}
	return b
}
