// Command flashinspect exercises the raw Flash device simulator and prints
// its geometry, timing and wear state. It is a small diagnostic tool for
// understanding what the substrate under the database engine does: it
// programs a few pages, appends delta records with write_delta-style
// partial programs, provokes an overwrite violation and shows the
// resulting statistics. A second section demonstrates the durable catalog
// region: it runs a small database, takes a fuzzy checkpoint, cuts the
// power and prints the checkpoint state recovery finds on flash.
//
// Usage:
//
//	flashinspect [-blocks N] [-pages N] [-pagesize BYTES] [-cell slc|mlc]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"ipa"
	"ipa/internal/flashdev"
	"ipa/internal/nand"
)

func main() {
	var (
		blocks   = flag.Int("blocks", 64, "erase blocks")
		pages    = flag.Int("pages", 64, "pages per block")
		pageSize = flag.Int("pagesize", 8192, "page size in bytes")
		cell     = flag.String("cell", "mlc", "cell type: slc or mlc")
	)
	flag.Parse()

	cellType := nand.MLC
	if *cell == "slc" {
		cellType = nand.SLC
	}
	dev, err := flashdev.New(flashdev.Config{
		Chips: 1,
		Chip: nand.Config{
			Geometry: nand.Geometry{
				Blocks:        *blocks,
				PagesPerBlock: *pages,
				PageSize:      *pageSize,
				OOBSize:       128,
			},
			Cell:            cellType,
			StrictOverwrite: true,
			Seed:            1,
		},
		Latency: flashdev.DefaultLatencyModel(),
	})
	if err != nil {
		log.Fatalf("flashinspect: %v", err)
	}

	g := dev.Geometry()
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "geometry\t%d blocks × %d pages × %d bytes = %.1f MiB\n",
		g.Blocks, g.PagesPerBlock, g.PageSize, float64(g.Blocks*g.PagesPerBlock*g.PageSize)/(1<<20))
	fmt.Fprintf(w, "cell type\t%s\n", cellType)
	fmt.Fprintf(w, "OOB per page\t%d bytes (%d delta-record ECC slots)\n", g.OOBSize, g.DeltaSlots)
	fmt.Fprintf(w, "endurance\t%d program/erase cycles per block\n", dev.EnduranceCycles())
	w.Flush()

	// Exercise the command set: program a page whose tail is left erased,
	// read it back, append two delta records, then provoke the
	// erase-before-overwrite rule.
	data := make([]byte, g.PageSize)
	for i := 0; i < g.PageSize*3/4; i++ {
		data[i] = byte(i)
	}
	for i := g.PageSize * 3 / 4; i < g.PageSize; i++ {
		data[i] = 0xFF
	}
	cover := g.PageSize * 3 / 4
	if err := dev.ProgramPage(0, 1, data, cover); err != nil {
		log.Fatalf("program: %v", err)
	}
	buf := make([]byte, g.PageSize)
	if err := dev.ReadPage(0, 1, buf); err != nil {
		log.Fatalf("read: %v", err)
	}
	if _, err := dev.ProgramDelta(0, 1, cover, []byte("delta-record-1")); err != nil {
		log.Fatalf("write_delta 1: %v", err)
	}
	if _, err := dev.ProgramDelta(0, 1, cover+16, []byte("delta-record-2")); err != nil {
		log.Fatalf("write_delta 2: %v", err)
	}
	if err := dev.ReadPage(0, 1, buf); err != nil {
		log.Fatalf("read after appends (ECC): %v", err)
	}
	// An overwrite of already-programmed cells with 0->1 transitions must
	// be rejected: this is the erase-before-overwrite principle IPA works
	// around by only appending to erased cells.
	overwriteErr := dev.ProgramPage(0, 1, bytesOf(0xFF, g.PageSize), cover)
	if err := dev.EraseBlock(0); err != nil {
		log.Fatalf("erase: %v", err)
	}
	if err := dev.ProgramPage(0, 1, bytesOf(0xAB, g.PageSize), g.PageSize); err != nil {
		log.Fatalf("program after erase: %v", err)
	}

	s := dev.Stats()
	cs := dev.ChipStats()
	fmt.Println()
	fmt.Fprintf(w, "page programs\t%d\n", s.PagePrograms)
	fmt.Fprintf(w, "delta programs (write_delta)\t%d\n", s.DeltaPrograms)
	fmt.Fprintf(w, "page reads\t%d\n", s.PageReads)
	fmt.Fprintf(w, "block erases\t%d\n", s.BlockErases)
	fmt.Fprintf(w, "bytes to device\t%d\n", s.BytesToDevice)
	fmt.Fprintf(w, "overwrite attempts denied\t%d (last error: %v)\n", cs.OverwriteDenied, overwriteErr)
	fmt.Fprintf(w, "max erase count\t%d of %d\n", dev.MaxEraseCount(), dev.EnduranceCycles())
	fmt.Fprintf(w, "virtual time elapsed\t%s\n", dev.Now())
	w.Flush()

	fmt.Println()
	inspectCheckpoint(w)
}

// inspectCheckpoint demonstrates the catalog region: it commits updates on
// a small database, takes a fuzzy checkpoint, commits a few more, then
// cuts the power and shows the checkpoint state that survives on flash —
// the point recovery redoes from instead of LSN 0.
func inspectCheckpoint(w *tabwriter.Writer) {
	db, err := ipa.Open(ipa.Config{
		PageSize:        4 * 1024,
		Blocks:          64,
		PagesPerBlock:   32,
		BufferPoolPages: 64,
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
	})
	if err != nil {
		log.Fatalf("flashinspect: open: %v", err)
	}
	table, err := db.CreateTable("demo", 64)
	if err != nil {
		log.Fatalf("flashinspect: create: %v", err)
	}
	commit := func(from, to int) {
		for k := from; k < to; k++ {
			row := make([]byte, 64)
			binary.LittleEndian.PutUint64(row, uint64(k))
			tx := db.Begin()
			if err := tx.Insert(table, int64(k), row); err != nil {
				log.Fatalf("flashinspect: insert %d: %v", k, err)
			}
			if err := tx.Commit(); err != nil {
				log.Fatalf("flashinspect: commit %d: %v", k, err)
			}
		}
	}
	commit(0, 64)
	res, err := db.Checkpoint()
	if err != nil {
		log.Fatalf("flashinspect: checkpoint: %v", err)
	}
	commit(64, 80) // post-checkpoint tail: the only log recovery replays

	db2, err := ipa.Reopen(db.Crash())
	if err != nil {
		log.Fatalf("flashinspect: reopen: %v", err)
	}
	defer db2.Close()
	state, ok, err := db2.CheckpointState()
	if err != nil {
		log.Fatalf("flashinspect: catalog: %v", err)
	}
	rec := db2.RecoveryStats()

	fmt.Println("catalog region (fuzzy-checkpoint state surviving a power cut):")
	fmt.Fprintf(w, "checkpoint taken\tLSN %d, cut %d, %d pages flushed, %d WAL segments live\n",
		res.LSN, res.TruncatedLSN, res.PagesFlushed, res.WALSegments)
	if ok {
		fmt.Fprintf(w, "catalog after power cut\tLSN %d, cut %d, max commit ts %d\n",
			state.LSN, state.TruncatedLSN, state.MaxCommitTS)
	} else {
		fmt.Fprintf(w, "catalog after power cut\tmissing\n")
	}
	fmt.Fprintf(w, "recovery\t%d pages scanned (%d-way chip scan), %d records redone from LSN %d\n",
		rec.PagesScanned, rec.Parallelism, rec.RecordsRedone, rec.CheckpointLSN)
	fmt.Fprintf(w, "time to recover\t%s wall, %s virtual\n", rec.Wall.Round(time.Microsecond), rec.Virtual)
	w.Flush()
}

func bytesOf(v byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = v
	}
	return b
}
