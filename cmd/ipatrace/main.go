// Command ipatrace records the fetch/eviction trace of a benchmark run and
// analyses it: it prints the eviction-size summary behind Figure 1 and
// replays the trace against the In-Page Logging baseline, following the
// trace-driven methodology of the paper's IPA-vs-IPL comparison.
//
// Usage:
//
//	ipatrace -workload tpcb -ops 8000 -out trace.jsonl   # record + analyse
//	ipatrace -in trace.jsonl                             # analyse an existing trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ipa"
	"ipa/internal/ipl"
	"ipa/internal/trace"
	"ipa/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "tpcb", "workload to record: tpcb, tpcc, tatp, linkbench")
		ops          = flag.Int("ops", 8000, "transactions to record")
		scale        = flag.Int("scale", 1, "workload scale factor")
		out          = flag.String("out", "", "write the recorded trace to this file (JSON lines)")
		in           = flag.String("in", "", "analyse an existing trace file instead of recording")
		seed         = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var events []trace.Event
	pageSize, pagesPerBlock := 8192, 64
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("ipatrace: %v", err)
		}
		defer f.Close()
		events, err = trace.Read(f)
		if err != nil {
			log.Fatalf("ipatrace: %v", err)
		}
		fmt.Printf("loaded %d events from %s\n", len(events), *in)
	} else {
		var err error
		events, err = record(*workloadName, *scale, *ops, *seed, pageSize, pagesPerBlock)
		if err != nil {
			log.Fatalf("ipatrace: %v", err)
		}
		fmt.Printf("recorded %d events from %s (%d transactions)\n", len(events), *workloadName, *ops)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatalf("ipatrace: %v", err)
			}
			if err := trace.Write(f, events); err != nil {
				log.Fatalf("ipatrace: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("ipatrace: %v", err)
			}
			fmt.Printf("trace written to %s\n", *out)
		}
	}

	fmt.Println("\nsummary:", trace.Summarize(events))

	// Replay against the In-Page Logging baseline.
	storageEvents, err := trace.ToStorage(events)
	if err != nil {
		log.Fatalf("ipatrace: %v", err)
	}
	mgr, err := ipl.NewManager(ipl.DefaultConfig(pageSize, pagesPerBlock))
	if err != nil {
		log.Fatalf("ipatrace: %v", err)
	}
	mgr.Replay(storageEvents)
	s := mgr.Stats()
	fmt.Println("\nIn-Page Logging replay of the same trace:")
	fmt.Printf("  flash writes : %d (data %d, log sectors %d, merge rewrites %d)\n",
		s.TotalFlashWrites(), s.DataPageWrites, s.LogSectorFlush, s.MergeMigrations)
	fmt.Printf("  flash reads  : %d (data %d, log pages %d)\n", s.TotalFlashReads(), s.DataPageReads, s.LogPageReads)
	fmt.Printf("  merges/erases: %d / %d\n", s.Merges, s.Erases)
}

// record runs the workload with eviction tracing enabled and returns the
// serialisable trace.
func record(name string, scale, ops int, seed int64, pageSize, pagesPerBlock int) ([]trace.Event, error) {
	db, err := ipa.Open(ipa.Config{
		PageSize:        pageSize,
		Blocks:          128,
		PagesPerBlock:   pagesPerBlock,
		BufferPoolPages: 128,
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
		Analytic:        true,
		TraceEvictions:  true,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	var w workload.Workload
	switch name {
	case "tpcb":
		cfg := workload.DefaultTPCBConfig()
		cfg.Branches = scale
		w = workload.NewTPCB(cfg)
	case "tpcc":
		cfg := workload.DefaultTPCCConfig()
		cfg.Warehouses = scale
		w = workload.NewTPCC(cfg)
	case "tatp":
		cfg := workload.DefaultTATPConfig()
		cfg.Subscribers = scale * 10000
		w = workload.NewTATP(cfg)
	case "linkbench":
		cfg := workload.DefaultLinkBenchConfig()
		cfg.Nodes = scale * 10000
		w = workload.NewLinkBench(cfg)
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	if err := w.Load(db); err != nil {
		return nil, err
	}
	db.ResetStats()
	if _, err := workload.Run(db, w, workload.RunOptions{MaxOps: ops, Seed: seed + 1}); err != nil {
		return nil, err
	}
	if err := db.FlushAll(); err != nil {
		return nil, err
	}
	return trace.FromStorage(db.Trace()), nil
}
