// Command ipaload is a many-connection load generator for ipaserver. It
// preloads a table, then drives either a mixed UPDATE/GET workload or, with
// -ycsb A..F, one of the YCSB core workloads (zipfian/latest key skew,
// scans, inserts and read-modify-writes over the wire) from N concurrent
// connections, each pipelining commands at a configurable depth
// (-pipeline 1 measures the unpipelined round-trip cost). -conns takes a
// comma-separated sweep, so one invocation produces a whole
// connections-vs-throughput curve; -json writes the machine-readable
// results that CI uploads as bench-server.json.
//
// The exact invocations behind the published curves are recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	ipaload -addr localhost:6389 -conns 1,4,16,64,256 -pipeline 32 -duration 5s
//	ipaload -addr localhost:6389 -ycsb B -conns 16 -duration 5s
//	ipaload -addr localhost:6389 -quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/workload"
	"ipa/ipaclient"
)

type point struct {
	Conns      int     `json:"conns"`
	Pipeline   int     `json:"pipeline"`
	Ops        uint64  `json:"ops"`
	Conflicts  uint64  `json:"conflicts"`
	Errors     uint64  `json:"errors"`
	DurationS  float64 `json:"duration_s"`
	Throughput float64 `json:"tps"`
}

type report struct {
	Benchmark string  `json:"benchmark"`
	Addr      string  `json:"addr"`
	Table     string  `json:"table"`
	Keys      int     `json:"keys"`
	TupleSize int     `json:"tuple_size"`
	UpdatePct int     `json:"update_pct"`
	YCSB      string  `json:"ycsb,omitempty"`
	Points    []point `json:"points"`
}

// ycsbGen turns the YCSB mix of one letter into wire commands. Shared by
// every connection of a sweep point: the insert counter hands out unique
// keys, and the zipfian sampler is immutable. Scans use the SCAN verb,
// read-modify-writes pipeline a GET followed by an UPDATE of the same key.
type ycsbGen struct {
	mix     workload.YCSBMix
	dist    string
	zipf    *workload.Zipfian
	scanMax int
	tuple   int
	nextKey atomic.Int64 // next unused insert key == current keyspace size
}

func newYCSBGen(letter byte, keys, tuple int) (*ycsbGen, error) {
	mix, err := workload.YCSBMixFor(letter)
	if err != nil {
		return nil, err
	}
	g := &ycsbGen{
		mix:     mix,
		dist:    "zipfian",
		zipf:    workload.NewZipfian(int64(keys), workload.YCSBTheta),
		scanMax: 100,
		tuple:   tuple,
	}
	if letter == 'D' || letter == 'd' {
		g.dist = "latest"
	}
	g.nextKey.Store(int64(keys))
	return g, nil
}

// key draws a request key from the generator's distribution.
func (g *ycsbGen) key(rng *rand.Rand) int64 {
	n := g.nextKey.Load()
	rank := g.zipf.Next(rng)
	if g.dist == "latest" {
		if rank >= n {
			rank = n - 1
		}
		return n - 1 - rank
	}
	// Scrambled zipfian: the FNV spread of workload.YCSB, inlined here via
	// uniform re-draw over the live keyspace for ranks beyond the preload.
	if rank >= n {
		rank = n - 1
	}
	return scramble(rank, n)
}

// scramble spreads a zipfian rank across [0, n) (FNV-1a, as in the engine
// driver).
func scramble(rank, n int64) int64 {
	h := uint64(0xcbf29ce484222325)
	v := uint64(rank)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 0x100000001b3
		v >>= 8
	}
	return int64(h % uint64(n))
}

// gen appends the wire commands of one YCSB operation (one or, for RMW,
// two commands) and returns the updated slice.
func (g *ycsbGen) gen(cmds [][][]byte, rng *rand.Rand, tbl []byte, patchOff []byte) [][][]byte {
	keyArg := func(k int64) []byte { return []byte(strconv.FormatInt(k, 10)) }
	patch := func() []byte {
		b := make([]byte, 8)
		rng.Read(b)
		return b
	}
	p := rng.Intn(100)
	m := g.mix
	switch {
	case p < m.Read:
		return append(cmds, [][]byte{[]byte("GET"), tbl, keyArg(g.key(rng))})
	case p < m.Read+m.Update:
		return append(cmds, [][]byte{[]byte("UPDATE"), tbl, keyArg(g.key(rng)), patchOff, patch()})
	case p < m.Read+m.Update+m.Insert:
		k := g.nextKey.Add(1) - 1
		row := make([]byte, g.tuple)
		for i := range row {
			row[i] = byte('a' + i%26)
		}
		return append(cmds, [][]byte{[]byte("INSERT"), tbl, keyArg(k), row})
	case p < m.Read+m.Update+m.Insert+m.Scan:
		from := g.key(rng)
		length := int64(1 + rng.Intn(g.scanMax))
		return append(cmds, [][]byte{
			[]byte("SCAN"), tbl, keyArg(from), keyArg(from + length), keyArg(length),
		})
	default: // read-modify-write
		k := keyArg(g.key(rng))
		cmds = append(cmds, [][]byte{[]byte("GET"), tbl, k})
		return append(cmds, [][]byte{[]byte("UPDATE"), tbl, k, patchOff, patch()})
	}
}

func main() {
	var (
		addr     = flag.String("addr", "localhost:6389", "ipaserver address")
		connsArg = flag.String("conns", "16", "comma-separated connection counts to sweep")
		pipeline = flag.Int("pipeline", 32, "pipeline depth per connection (1 = unpipelined)")
		duration = flag.Duration("duration", 5*time.Second, "measurement window per sweep point")
		keys     = flag.Int("keys", 10000, "keyspace size (preloaded)")
		tuple    = flag.Int("tuple", 200, "tuple size in bytes")
		updates  = flag.Int("updates", 80, "percentage of operations that are UPDATEs (rest are GETs)")
		table    = flag.String("table", "load", "table name")
		ycsb     = flag.String("ycsb", "", "YCSB workload letter A-F (empty = legacy update/get mix)")
		quick    = flag.Bool("quick", false, "CI smoke mode: tiny sweep, sub-second windows")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON on stdout")
		outPath  = flag.String("out", "", "also write the JSON report to this file")
	)
	flag.Parse()

	if *quick {
		*connsArg = "1,4,16,64"
		*duration = 500 * time.Millisecond
		*keys = 512
	}
	conns, err := parseConns(*connsArg)
	if err != nil {
		fatal(err)
	}
	if *pipeline < 1 {
		*pipeline = 1
	}

	var gen *ycsbGen
	if *ycsb != "" {
		if len(*ycsb) != 1 {
			fatal(fmt.Errorf("bad -ycsb %q: want one letter A-F", *ycsb))
		}
		g, err := newYCSBGen((*ycsb)[0], *keys, *tuple)
		if err != nil {
			fatal(err)
		}
		gen = g
	}

	if err := preload(*addr, *table, *tuple, *keys); err != nil {
		fatal(err)
	}

	rep := report{
		Benchmark: "server",
		Addr:      *addr,
		Table:     *table,
		Keys:      *keys,
		TupleSize: *tuple,
		UpdatePct: *updates,
		YCSB:      strings.ToUpper(*ycsb),
	}
	for _, n := range conns {
		p, err := run(*addr, *table, *tuple, *keys, *updates, n, *pipeline, *duration, gen)
		if err != nil {
			fatal(err)
		}
		rep.Points = append(rep.Points, p)
		if !*jsonOut {
			fmt.Printf("conns=%-4d pipeline=%-3d  %10.0f ops/s  (%d ops, %d conflicts, %d errors, %.2fs)\n",
				p.Conns, p.Pipeline, p.Throughput, p.Ops, p.Conflicts, p.Errors, p.DurationS)
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		fmt.Println(string(out))
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ipaload: %v\n", err)
	os.Exit(1)
}

func parseConns(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -conns element %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// preload creates the table (tolerating a live server that already has
// it) and pipelines the keyspace in.
func preload(addr, table string, tuple, keys int) error {
	c, err := ipaclient.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.CreateTable(table, tuple); err != nil && !ipaclient.IsCode(err, "EXISTS") {
		return err
	}
	value := make([]byte, tuple)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	const batch = 256
	for lo := 0; lo < keys; lo += batch {
		hi := lo + batch
		if hi > keys {
			hi = keys
		}
		cmds := make([][][]byte, 0, hi-lo)
		for k := lo; k < hi; k++ {
			cmds = append(cmds, [][]byte{
				[]byte("INSERT"), []byte(table), []byte(strconv.Itoa(k)), value,
			})
		}
		replies, err := c.Batch(cmds)
		if err != nil {
			return fmt.Errorf("preload: %w", err)
		}
		for _, r := range replies {
			if code := r.ErrorCode(); code != "" && code != "DUPKEY" {
				return fmt.Errorf("preload: server: %s", r.Str)
			}
		}
	}
	return nil
}

// run measures one sweep point: n connections, each a goroutine with its
// own client, issuing pipelined batches until the window closes. With a
// non-nil gen the batches carry a YCSB mix instead of the legacy
// update/get mix.
func run(addr, table string, tuple, keys, updates, n, depth int, window time.Duration, gen *ycsbGen) (point, error) {
	clients := make([]*ipaclient.Client, n)
	for i := range clients {
		c, err := ipaclient.Dial(addr)
		if err != nil {
			return point{}, err
		}
		defer c.Close()
		clients[i] = c
	}

	var (
		ops       atomic.Uint64
		conflicts atomic.Uint64
		errs      atomic.Uint64
		stop      atomic.Bool
		wg        sync.WaitGroup
		firstErr  atomic.Value
	)
	// The tail patch lands at the end of the tuple: the engine's
	// in-place-append sweet spot.
	patchOff := tuple - 8
	if patchOff < 0 {
		patchOff = 0
	}

	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *ipaclient.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)*7919 + 1))
			patch := make([]byte, 8)
			offArg := []byte(strconv.Itoa(patchOff))
			tbl := []byte(table)
			for !stop.Load() {
				var cmds [][][]byte
				if gen != nil {
					cmds = make([][][]byte, 0, depth+1)
					for len(cmds) < depth {
						cmds = gen.gen(cmds, rng, tbl, offArg)
					}
				} else {
					cmds = make([][][]byte, depth)
					for j := range cmds {
						key := []byte(strconv.Itoa(rng.Intn(keys)))
						if rng.Intn(100) < updates {
							rng.Read(patch)
							val := make([]byte, 8)
							copy(val, patch)
							cmds[j] = [][]byte{[]byte("UPDATE"), tbl, key, offArg, val}
						} else {
							cmds[j] = [][]byte{[]byte("GET"), tbl, key}
						}
					}
				}
				replies, err := c.Batch(cmds)
				if err != nil {
					if !stop.Load() {
						firstErr.CompareAndSwap(nil, error(fmt.Errorf("conn %d: %w", i, err)))
					}
					return
				}
				for _, r := range replies {
					switch code := r.ErrorCode(); {
					case code == "":
						ops.Add(1)
					case code == "CONFLICT":
						conflicts.Add(1)
					case gen != nil && code == "NOTFOUND":
						// YCSB read-latest: a read may chase a key whose
						// INSERT is still in flight on another connection.
						// YCSB counts the miss as a completed read.
						ops.Add(1)
					default:
						errs.Add(1)
					}
				}
			}
		}(i, c)
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	if e := firstErr.Load(); e != nil {
		return point{}, e.(error)
	}
	total := ops.Load() + conflicts.Load()
	return point{
		Conns:      n,
		Pipeline:   depth,
		Ops:        ops.Load(),
		Conflicts:  conflicts.Load(),
		Errors:     errs.Load(),
		DurationS:  elapsed.Seconds(),
		Throughput: float64(total) / elapsed.Seconds(),
	}, nil
}
