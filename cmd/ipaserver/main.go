// Command ipaserver serves an ipa engine over the network: a RESP-
// compatible TCP listener (redis-cli works for the simple verbs, ipaclient
// and cmd/ipaload for everything) plus an HTTP sidecar with /healthz,
// Prometheus-style /metrics (per-command latency histograms, lifetime
// burn gauges), the /stats.json ops document and the live /dashboard.
// SIGINT/SIGTERM trigger a graceful shutdown:
// in-flight pipelines finish, a final fuzzy checkpoint is taken, the
// engine closes. The wire protocol is specified in docs/DESIGN_SERVER.md.
//
// Usage:
//
//	ipaserver -addr :6389 -http :6390 -mode native -n 2 -m 4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipa"
	"ipa/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":6389", "RESP listener address")
		httpAddr = flag.String("http", ":6390", "health/metrics sidecar address ('' disables)")
		workers  = flag.Int("workers", 0, "engine worker lanes (0 = chips × GOMAXPROCS)")
		pipeline = flag.Int("pipeline", 128, "per-connection pipeline depth")
		grace    = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain deadline")

		mode   = flag.String("mode", "native", "write mode: traditional, ssd or native")
		n      = flag.Int("n", 2, "IPA scheme parameter N")
		m      = flag.Int("m", 4, "IPA scheme parameter M")
		flash  = flag.String("flash", "pslc", "flash mode: pslc, oddmlc or mlc")
		chips  = flag.Int("chips", 4, "NAND chips (parallel recovery and GC lanes)")
		blocks = flag.Int("blocks", 0, "erase blocks per chip (0 = engine default; shrink to watch wear)")
		pages  = flag.Int("pages-per-block", 0, "pages per erase block (0 = engine default)")
		pool   = flag.Int("pool", 0, "buffer pool pages (0 = engine default)")
		ckpt   = flag.Uint64("checkpoint-bytes", 4<<20, "WAL bytes between fuzzy checkpoints (0 disables)")
		stats  = flag.Duration("stats-interval", time.Second, "ops-sampler period for windowed rates (0 disables)")
	)
	flag.Parse()

	cfg := ipa.Config{
		Chips:                *chips,
		Blocks:               *blocks,
		PagesPerBlock:        *pages,
		BufferPoolPages:      *pool,
		Scheme:               ipa.Scheme{N: *n, M: *m},
		CheckpointEveryBytes: *ckpt,
		StatsInterval:        *stats,
	}
	switch *mode {
	case "traditional":
		cfg.WriteMode = ipa.Traditional
		cfg.Scheme = ipa.Scheme{}
	case "ssd":
		cfg.WriteMode = ipa.IPAConventionalSSD
	default:
		cfg.WriteMode = ipa.IPANativeFlash
	}
	switch *flash {
	case "oddmlc":
		cfg.FlashMode = ipa.OddMLC
	case "mlc":
		cfg.FlashMode = ipa.MLCFull
	default:
		cfg.FlashMode = ipa.PSLC
	}

	db, err := ipa.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipaserver: %v\n", err)
		os.Exit(1)
	}

	srv := server.New(db, server.Config{
		Addr:          *addr,
		HTTPAddr:      *httpAddr,
		Workers:       *workers,
		PipelineDepth: *pipeline,
		Logf:          log.Printf,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "ipaserver: %v\n", err)
		db.Close()
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	log.Printf("ipaserver: %s, draining (deadline %s)", s, *grace)
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ipaserver: shutdown: %v\n", err)
		os.Exit(1)
	}
}
