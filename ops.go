package ipa

import (
	"time"
)

// This file implements the derived operational gauges behind the live ops
// surface (docs/DESIGN_OPS.md): the device-lifetime burn gauge that turns
// the paper's one-shot E5 longevity estimate into a number you can watch
// move on a running server, and the windowed rates (tps, evictions/s,
// in-place-append share, erase rate) computed from a lightweight ring of
// periodic counter snapshots.
//
// All rates are computed over *virtual* device time, the same clock
// Stats.Throughput uses — which keeps them deterministic under test (a
// virtual-clock run yields closed-form expected values) and comparable
// across write modes. Wall-clock widths are reported alongside for
// dashboard context only.

// opsRingCap bounds the snapshot ring: at the default 1s StatsInterval it
// holds about two minutes of trailing history.
const opsRingCap = 128

// OpsSample is one snapshot of the raw counters the windowed rates are
// derived from. Samples are taken by the background sampler
// (Config.StatsInterval) or explicitly via DB.SampleOps.
type OpsSample struct {
	// Wall is the wall-clock time of the snapshot; Virtual the device
	// clock (DB.Now).
	Wall    time.Time     `json:"wall"`
	Virtual time.Duration `json:"virtual"`

	// Counters as of the snapshot. Committed, DirtyEvictions,
	// InPlaceAppends and OutOfPlaceWrites follow ResetStats windows;
	// Erases is the lifetime device total (never reset).
	Committed        uint64 `json:"committed"`
	DirtyEvictions   uint64 `json:"dirty_evictions"`
	InPlaceAppends   uint64 `json:"in_place_appends"`
	OutOfPlaceWrites uint64 `json:"out_of_place_writes"`
	Erases           uint64 `json:"erases"`
}

// OpsStats is the derived ops gauge set: lifetime burn plus trailing-window
// rates. DB.Ops computes it from the two newest ring samples when the
// sampler has run, falling back to the whole ResetStats window otherwise.
type OpsStats struct {
	// EraseBudget is the total block erases the device can absorb before
	// every block reaches its endurance: blocks (across all chips) ×
	// endurance cycles per block.
	EraseBudget uint64 `json:"erase_budget"`
	// ErasesConsumed is the lifetime erase total (Stats.TotalErasesEver).
	ErasesConsumed uint64 `json:"erases_consumed"`
	// LifeBurned is ErasesConsumed / EraseBudget: the fraction of the
	// device's lifetime already spent. 1.0 means the budget is exhausted.
	LifeBurned float64 `json:"life_burned"`
	// ErasesAvoided estimates how many erases in-place appends saved over
	// the NoFTL/out-of-place baseline in the current stats window: each
	// in-place append replaced one out-of-place page write, and
	// PagesPerBlock page writes cost the device one eventual GC erase, so
	// ErasesAvoided = InPlaceAppends / PagesPerBlock. This is the live
	// form of the paper's E5 longevity estimate (first-order: it ignores
	// GC migration write amplification, which only increases the saving).
	ErasesAvoided uint64 `json:"erases_avoided"`
	// BaselineErases is what the modelled baseline would have consumed in
	// the same window: the erases actually performed plus the avoided ones.
	BaselineErases uint64 `json:"baseline_erases"`

	// WindowVirtual / WindowWall are the width of the trailing window the
	// rates below cover.
	WindowVirtual time.Duration `json:"window_virtual"`
	WindowWall    time.Duration `json:"window_wall"`
	// WindowTPS is committed transactions per virtual second in the window.
	WindowTPS float64 `json:"window_tps"`
	// WindowEvictionsPerSec is dirty page evictions per virtual second.
	WindowEvictionsPerSec float64 `json:"window_evictions_per_sec"`
	// WindowInPlaceShare is the fraction of window host writes served as
	// in-place appends (0 when the window saw no writes).
	WindowInPlaceShare float64 `json:"window_in_place_share"`
	// WindowEraseRatePerSec is block erases per virtual second in the
	// window — the burn speed.
	WindowEraseRatePerSec float64 `json:"window_erase_rate_per_sec"`
	// TimeToDeath extrapolates the remaining erase budget at the window
	// erase rate: (EraseBudget − ErasesConsumed) / WindowEraseRatePerSec,
	// in virtual time. 0 means no erase activity in the window (the
	// device is not measurably dying) or the budget is already exhausted.
	TimeToDeath time.Duration `json:"time_to_death"`
	// Samples is how many ring snapshots backed the window (0 or 1 means
	// the fallback whole-window rates were used).
	Samples int `json:"samples"`
}

// SampleOps takes one counter snapshot, pushes it onto the trailing ring
// and returns it. The background sampler (Config.StatsInterval) calls it
// periodically; tests and tools may call it explicitly — e.g. around a
// deterministic virtual-clock workload phase.
func (db *DB) SampleOps() OpsSample {
	ss := db.store.Stats()
	fs := db.ftl.Stats()
	s := OpsSample{
		Wall:             time.Now(),
		Virtual:          db.dev.Now(),
		Committed:        db.committed.Load(),
		DirtyEvictions:   ss.DirtyEvictions,
		InPlaceAppends:   fs.InPlaceAppends,
		OutOfPlaceWrites: fs.OutOfPlaceWrites,
		Erases:           db.dev.TotalErases(),
	}
	db.opsMu.Lock()
	if len(db.opsRing) == opsRingCap {
		copy(db.opsRing, db.opsRing[1:])
		db.opsRing = db.opsRing[:opsRingCap-1]
	}
	db.opsRing = append(db.opsRing, s)
	db.opsMu.Unlock()
	return s
}

// OpsWindow returns a copy of the snapshot ring, oldest first.
func (db *DB) OpsWindow() []OpsSample {
	db.opsMu.Lock()
	defer db.opsMu.Unlock()
	out := make([]OpsSample, len(db.opsRing))
	copy(out, db.opsRing)
	return out
}

// Ops computes the derived operational gauges. The trailing window is the
// span between the two newest ring snapshots; with fewer than two samples
// it degrades to the whole window since the last ResetStats, so Ops is
// meaningful even without the background sampler.
func (db *DB) Ops() OpsStats {
	geo := db.dev.Geometry()
	endurance := db.dev.EnduranceCycles()
	consumed := db.dev.TotalErases()
	fs := db.ftl.Stats()
	ds := db.dev.Stats()
	ss := db.store.Stats()
	ppb := uint64(geo.PagesPerBlock)

	o := OpsStats{
		EraseBudget:    uint64(geo.Blocks) * uint64(endurance),
		ErasesConsumed: consumed,
	}
	if o.EraseBudget > 0 {
		o.LifeBurned = float64(consumed) / float64(o.EraseBudget)
	}
	if ppb > 0 {
		o.ErasesAvoided = fs.InPlaceAppends / ppb
	}
	o.BaselineErases = ds.BlockErases + o.ErasesAvoided

	// Window deltas: newest two ring samples, or the ResetStats window.
	db.opsMu.Lock()
	n := len(db.opsRing)
	var newest, oldest OpsSample
	if n >= 2 {
		newest, oldest = db.opsRing[n-1], db.opsRing[n-2]
	}
	db.opsMu.Unlock()
	o.Samples = n

	var dVirtual time.Duration
	var dCommitted, dEvictions, dInPlace, dOutOfPlace, dErases uint64
	if n >= 2 {
		dVirtual = newest.Virtual - oldest.Virtual
		o.WindowWall = newest.Wall.Sub(oldest.Wall)
		dCommitted = sub(newest.Committed, oldest.Committed)
		dEvictions = sub(newest.DirtyEvictions, oldest.DirtyEvictions)
		dInPlace = sub(newest.InPlaceAppends, oldest.InPlaceAppends)
		dOutOfPlace = sub(newest.OutOfPlaceWrites, oldest.OutOfPlaceWrites)
		dErases = sub(newest.Erases, oldest.Erases)
	} else {
		dVirtual = db.dev.Now() - time.Duration(db.timeBase.Load())
		dCommitted = db.committed.Load()
		dEvictions = ss.DirtyEvictions
		dInPlace = fs.InPlaceAppends
		dOutOfPlace = fs.OutOfPlaceWrites
		dErases = ds.BlockErases
	}
	o.WindowVirtual = dVirtual
	if secs := dVirtual.Seconds(); secs > 0 {
		o.WindowTPS = float64(dCommitted) / secs
		o.WindowEvictionsPerSec = float64(dEvictions) / secs
		o.WindowEraseRatePerSec = float64(dErases) / secs
	}
	if writes := dInPlace + dOutOfPlace; writes > 0 {
		o.WindowInPlaceShare = float64(dInPlace) / float64(writes)
	}
	if o.WindowEraseRatePerSec > 0 && consumed < o.EraseBudget {
		remaining := float64(o.EraseBudget - consumed)
		o.TimeToDeath = time.Duration(remaining / o.WindowEraseRatePerSec * float64(time.Second))
	}
	return o
}

// sub is a - b clamped at zero: a ResetStats between two samples may move
// windowed counters backwards.
func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// startOpsSampler launches the background snapshot goroutine when the
// configuration asks for one.
func (db *DB) startOpsSampler() {
	if db.cfg.StatsInterval <= 0 {
		return
	}
	db.opsStop = make(chan struct{})
	db.opsDone = make(chan struct{})
	go func() {
		defer close(db.opsDone)
		ticker := time.NewTicker(db.cfg.StatsInterval)
		defer ticker.Stop()
		for {
			select {
			case <-db.opsStop:
				return
			case <-ticker.C:
				db.SampleOps()
			}
		}
	}()
}

// stopOpsSampler shuts the background sampler down.
func (db *DB) stopOpsSampler() {
	if db.opsStop == nil {
		return
	}
	close(db.opsStop)
	<-db.opsDone
	db.opsStop = nil
}
