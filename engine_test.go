package ipa_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"ipa"
)

// TestTableScanAndDelete covers scans, range scans and deletes through the
// public API.
func TestTableScanAndDelete(t *testing.T) {
	db, err := ipa.Open(smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", 80)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	const n = 300
	for k := int64(0); k < n; k++ {
		if err := tbl.Insert(k, fillTuple(80, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if tbl.Count() != n {
		t.Fatalf("Count = %d", tbl.Count())
	}
	// Full scan in key order.
	var prev int64 = -1
	visited := 0
	if err := tbl.Scan(func(key int64, tuple []byte) bool {
		if key <= prev {
			t.Fatalf("scan out of order: %d after %d", key, prev)
		}
		if !bytes.Equal(tuple, fillTuple(80, key)) {
			t.Fatalf("scan returned wrong tuple for %d", key)
		}
		prev = key
		visited++
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if visited != n {
		t.Fatalf("scan visited %d of %d", visited, n)
	}
	// Range scan.
	visited = 0
	if err := tbl.ScanRange(100, 110, func(key int64, tuple []byte) bool {
		visited++
		return true
	}); err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	if visited != 10 {
		t.Fatalf("range scan visited %d", visited)
	}
	// Deletes.
	if err := tbl.Delete(5); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := tbl.Get(5); !errors.Is(err, ipa.ErrKeyNotFound) {
		t.Fatalf("deleted key still readable: %v", err)
	}
	if err := tbl.Delete(5); !errors.Is(err, ipa.ErrKeyNotFound) {
		t.Fatalf("double delete must fail: %v", err)
	}
	if tbl.Exists(5) || !tbl.Exists(6) {
		t.Fatalf("Exists wrong")
	}
	// Duplicate insert.
	if err := tbl.Insert(6, fillTuple(80, 6)); !errors.Is(err, ipa.ErrDuplicateKey) {
		t.Fatalf("duplicate insert must fail: %v", err)
	}
}

// TestTxConflictAndAbort covers record-lock conflicts between concurrent
// transactions and rollback through the public API.
func TestTxConflictAndAbort(t *testing.T) {
	db, err := ipa.Open(smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", 64)
	for k := int64(0); k < 10; k++ {
		if err := tbl.Insert(k, fillTuple(64, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	tx1 := db.Begin()
	if err := tx1.UpdateAt(tbl, 3, 0, []byte{1}); err != nil {
		t.Fatalf("tx1 update: %v", err)
	}
	tx2 := db.Begin()
	if err := tx2.UpdateAt(tbl, 3, 0, []byte{2}); !errors.Is(err, ipa.ErrConflict) {
		t.Fatalf("expected lock conflict, got %v", err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatalf("tx2 abort: %v", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatalf("tx1 commit: %v", err)
	}
	// After the commit the row is updatable again.
	tx3 := db.Begin()
	if err := tx3.UpdateAt(tbl, 3, 0, []byte{3}); err != nil {
		t.Fatalf("tx3 update: %v", err)
	}
	if err := tx3.Abort(); err != nil {
		t.Fatalf("tx3 abort: %v", err)
	}
	row, _ := tbl.Get(3)
	if row[0] != 1 {
		t.Fatalf("aborted change visible or committed change lost: %d", row[0])
	}
	s := db.Stats()
	if s.CommittedTxns != 1 || s.AbortedTxns != 2 {
		t.Fatalf("txn counters wrong: %+v", s)
	}
}

// TestConcurrentTransactions runs parallel writers on disjoint key ranges to
// exercise the engine's locking and buffer pool under concurrency.
func TestConcurrentTransactions(t *testing.T) {
	cfg := smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)
	cfg.BufferPoolPages = 64
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", 100)
	const keys = 800
	for k := int64(0); k < keys; k++ {
		if err := tbl.Insert(k, fillTuple(100, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	const workers = 4
	const opsPerWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * (keys / workers)
			for i := 0; i < opsPerWorker; i++ {
				key := base + int64(i)%(keys/workers)
				tx := db.Begin()
				if err := tx.UpdateAt(tbl, key, 10, []byte{byte(i), byte(w)}); err != nil {
					_ = tx.Abort()
					errs <- fmt.Errorf("worker %d update: %w", w, err)
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- fmt.Errorf("worker %d commit: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	s := db.Stats()
	if s.CommittedTxns != workers*opsPerWorker {
		t.Fatalf("committed %d, want %d", s.CommittedTxns, workers*opsPerWorker)
	}
	// Every worker's last update must be visible.
	for w := 0; w < workers; w++ {
		base := int64(w) * (keys / workers)
		row, err := tbl.Get(base + int64(opsPerWorker-1)%(keys/workers))
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if row[11] != byte(w) {
			t.Fatalf("worker %d update lost", w)
		}
	}
}

// TestStatsDerivedMetrics sanity-checks the derived metrics of ipa.Stats.
func TestStatsDerivedMetrics(t *testing.T) {
	db, err := ipa.Open(smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", 100)
	// The table must be much larger than the buffer pool so that updates
	// are persisted by evictions rather than accumulating in memory.
	const keys = 3000
	for k := int64(0); k < keys; k++ {
		if err := tbl.Insert(k, fillTuple(100, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	db.ResetStats()
	for i := 0; i < 6000; i++ {
		if err := tbl.UpdateAt(int64(i*13)%keys, 8, []byte{byte(i)}); err != nil {
			t.Fatalf("UpdateAt: %v", err)
		}
	}
	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	s := db.Stats()
	if s.TotalHostWrites() != s.HostWrites+s.HostWriteDeltas {
		t.Fatalf("TotalHostWrites inconsistent")
	}
	if share := s.InPlaceShare(); share <= 0 || share > 1 {
		t.Fatalf("InPlaceShare out of range: %f", share)
	}
	if s.SmallEvictionShare() <= 0.5 {
		t.Fatalf("single-byte updates must yield mostly small evictions: %f", s.SmallEvictionShare())
	}
	if s.DBMSWriteAmplification() <= 1 {
		t.Fatalf("write amplification must exceed 1, got %f", s.DBMSWriteAmplification())
	}
	if len(s.EvictionSizeHistogram) != len(s.EvictionHistogramBounds)+1 {
		t.Fatalf("histogram shape wrong: %d buckets, %d bounds",
			len(s.EvictionSizeHistogram), len(s.EvictionHistogramBounds))
	}
	var histTotal uint64
	for _, c := range s.EvictionSizeHistogram {
		histTotal += c
	}
	if histTotal != s.DirtyEvictions {
		t.Fatalf("histogram does not cover all evictions: %d vs %d", histTotal, s.DirtyEvictions)
	}
	if s.Elapsed <= 0 || s.Throughput() < 0 {
		t.Fatalf("virtual time accounting broken: %v", s.Elapsed)
	}
	if s.String() == "" {
		t.Fatalf("Stats.String empty")
	}
	if s.LifetimeEstimate() < 0 {
		t.Fatalf("LifetimeEstimate negative")
	}
	_ = s.DeviceWriteAmplification()
}

// TestCreateTableValidation covers configuration errors of table creation.
func TestCreateTableValidation(t *testing.T) {
	db, err := ipa.Open(smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	if _, err := db.CreateTable("t", 0); err == nil {
		t.Fatalf("zero tuple size must be rejected")
	}
	if _, err := db.CreateTable("t", 1<<20); err == nil {
		t.Fatalf("oversized tuples must be rejected")
	}
	if _, err := db.CreateTable("ok", 64); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := db.CreateTable("ok", 64); err == nil {
		t.Fatalf("duplicate table must be rejected")
	}
	// A per-table scheme needing a larger delta area than the device format
	// must be rejected; opting out is always allowed.
	if _, err := db.CreateTableWithScheme("big", 64, ipa.Scheme{N: 8, M: 16}); err == nil {
		t.Fatalf("oversized per-table scheme must be rejected")
	}
	if _, err := db.CreateTableWithScheme("optout", 64, ipa.Scheme{}); err != nil {
		t.Fatalf("opt-out table: %v", err)
	}
	if _, ok := db.Table("nosuch"); ok {
		t.Fatalf("Table must report missing tables")
	}
	if names := db.Tables(); len(names) != 2 {
		t.Fatalf("Tables() = %v", names)
	}
	geo := db.Geometry()
	if geo.PageSize != 4096 || geo.LogicalPages <= 0 {
		t.Fatalf("Geometry wrong: %+v", geo)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := db.CreateTable("after-close", 64); !errors.Is(err, ipa.ErrClosed) {
		t.Fatalf("operations after Close must fail: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double Close must be a no-op: %v", err)
	}
}

// TestSelectiveRegionsKeepTraditionalTablesOutOfPlace verifies the NoFTL
// region behaviour end-to-end: a table that opts out of IPA never produces
// in-place appends, while an IPA table on the same database does.
func TestSelectiveRegionsKeepTraditionalTablesOutOfPlace(t *testing.T) {
	cfg := smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	hot, _ := db.CreateTable("hot", 100)
	cold, err := db.CreateTableWithScheme("cold", 100, ipa.Scheme{})
	if err != nil {
		t.Fatalf("CreateTableWithScheme: %v", err)
	}
	const keys = 1200
	for k := int64(0); k < keys; k++ {
		if err := hot.Insert(k, fillTuple(100, k)); err != nil {
			t.Fatalf("Insert hot: %v", err)
		}
		if err := cold.Insert(k, fillTuple(100, k)); err != nil {
			t.Fatalf("Insert cold: %v", err)
		}
	}
	db.ResetStats()
	// Stride the updates so consecutive updates land on different pages and
	// every buffer residency accumulates only a byte or two of changes.
	for i := 0; i < 4000; i++ {
		key := int64(i*37) % keys
		if err := hot.UpdateAt(key, 8, []byte{byte(i)}); err != nil {
			t.Fatalf("UpdateAt hot: %v", err)
		}
		if err := cold.UpdateAt(key, 8, []byte{byte(i)}); err != nil {
			t.Fatalf("UpdateAt cold: %v", err)
		}
	}
	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	s := db.Stats()
	if s.InPlaceAppends == 0 {
		t.Fatalf("the IPA table must produce appends")
	}
	// The cold table contributes only full-page writes; with both tables
	// updated equally, out-of-place writes must therefore clearly exceed
	// what the hot table alone would produce (which is about a third of
	// its evictions under the 2×4 scheme).
	if s.OutOfPlaceWrites <= s.InPlaceAppends/2 {
		t.Fatalf("expected substantial out-of-place traffic from the opt-out table: %+v", s)
	}
}
