package ipa_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ipa"
)

// multiChipConfig is smallConfig with a 4-chip device.
func multiChipConfig(mode ipa.WriteMode, scheme ipa.Scheme, flash ipa.FlashMode) ipa.Config {
	cfg := smallConfig(mode, scheme, flash)
	cfg.Chips = 4
	return cfg
}

// TestMultiChipGeometryAndStats verifies the 4-chip device geometry and the
// per-chip counters surfaced by ipa.Stats.
func TestMultiChipGeometryAndStats(t *testing.T) {
	db, err := ipa.Open(multiChipConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	geo := db.Geometry()
	if geo.Blocks != 4*64 {
		t.Fatalf("Blocks = %d, want 256 across 4 chips", geo.Blocks)
	}
	tbl, err := db.CreateTable("t", 100)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	const keys = 1500
	for k := int64(0); k < keys; k++ {
		if err := tbl.Insert(k, fillTuple(100, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for i := 0; i < 3000; i++ {
		if err := tbl.UpdateAt(int64(i*13)%keys, 8, []byte{byte(i)}); err != nil {
			t.Fatalf("UpdateAt: %v", err)
		}
	}
	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	s := db.Stats()
	if s.Chips != 4 || len(s.ChipStats) != 4 {
		t.Fatalf("Stats report %d chips, want 4", s.Chips)
	}
	for _, c := range s.ChipStats {
		if c.PagePrograms == 0 && c.DeltaPrograms == 0 {
			t.Fatalf("chip %d saw no programs — striping broken: %+v", c.Chip, s.ChipStats)
		}
		if c.Busy <= 0 {
			t.Fatalf("chip %d clock never advanced", c.Chip)
		}
	}
	if bal := s.ChipBalance(); bal < 0.2 {
		t.Fatalf("chip load badly skewed: balance %.2f (%+v)", bal, s.ChipStats)
	}
	if s.String() == "" {
		t.Fatalf("Stats.String empty")
	}
}

// TestMultiChipGCAndDurability runs an update-heavy workload on a 4-chip
// device until garbage collection runs, then verifies every row's content.
func TestMultiChipGCAndDurability(t *testing.T) {
	cfg := multiChipConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)
	cfg.Blocks = 16 // small per-chip capacity so GC must run everywhere
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", 100)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	const keys = 600
	for k := int64(0); k < keys; k++ {
		if err := tbl.Insert(k, fillTuple(100, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	last := make(map[int64]byte, keys)
	for i := 0; i < 12000; i++ {
		key := int64(i*13) % keys
		if err := tbl.UpdateAt(key, 8, []byte{byte(i)}); err != nil {
			t.Fatalf("UpdateAt %d: %v", i, err)
		}
		last[key] = byte(i)
	}
	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	s := db.Stats()
	if s.GCRuns == 0 {
		t.Fatalf("workload never triggered GC: %+v", s)
	}
	gcChips := 0
	for _, c := range s.ChipStats {
		if c.GCRuns > 0 {
			gcChips++
		}
	}
	if gcChips < 2 {
		t.Fatalf("GC confined to %d chips, want it spread: %+v", gcChips, s.ChipStats)
	}
	for key, want := range last {
		row, err := tbl.Get(key)
		if err != nil {
			t.Fatalf("Get %d: %v", key, err)
		}
		if row[8] != want {
			t.Fatalf("key %d lost its last update: got %x want %x", key, row[8], want)
		}
	}
}

// TestMultiChipRecovery replays the WAL against a 4-chip device: committed
// updates survive, aborted ones do not, exactly as on a single chip.
func TestMultiChipRecovery(t *testing.T) {
	db, err := ipa.Open(multiChipConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	for k := int64(0); k < 200; k++ {
		if err := tbl.Insert(k, fillTuple(64, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	tx := db.Begin()
	if err := tx.UpdateAt(tbl, 5, 20, []byte{0xAA, 0xBB}); err != nil {
		t.Fatalf("UpdateAt: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	tx2 := db.Begin()
	if err := tx2.UpdateAt(tbl, 6, 20, []byte{0xCC}); err != nil {
		t.Fatalf("UpdateAt: %v", err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if err := db.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	row5, err := tbl.Get(5)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if row5[20] != 0xAA || row5[21] != 0xBB {
		t.Errorf("committed update lost after recovery: % x", row5[18:24])
	}
	row6, err := tbl.Get(6)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if want := fillTuple(64, 6); row6[20] != want[20] {
		t.Errorf("aborted update survived recovery")
	}
	// The recovered state is also what's on Flash.
	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	got, err := tbl.Get(5)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got[20:22], []byte{0xAA, 0xBB}) {
		t.Fatalf("flushed state lost the committed update")
	}
}

// TestMultiChipConcurrentHammer runs transactional writers over disjoint
// key ranges of a 4-chip database; under -race it proves the whole stack —
// storage manager, chip-partitioned FTL, per-chip device state — shares no
// unsynchronised state while chips operate in parallel.
func TestMultiChipConcurrentHammer(t *testing.T) {
	cfg := multiChipConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)
	cfg.BufferPoolPages = 32
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", 100)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	const keys = 1600
	for k := int64(0); k < keys; k++ {
		if err := tbl.Insert(k, fillTuple(100, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	db.ResetStats()
	const workers = 8
	const opsPerWorker = 250
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * (keys / workers)
			for i := 0; i < opsPerWorker; i++ {
				key := base + int64(i*31)%(keys/workers)
				tx := db.Begin()
				if err := tx.UpdateAt(tbl, key, 10, []byte{byte(i), byte(w)}); err != nil {
					_ = tx.Abort()
					errs <- fmt.Errorf("worker %d update: %w", w, err)
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- fmt.Errorf("worker %d commit: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	s := db.Stats()
	if s.CommittedTxns != workers*opsPerWorker {
		t.Fatalf("committed %d, want %d", s.CommittedTxns, workers*opsPerWorker)
	}
	busy := 0
	for _, c := range s.ChipStats {
		if c.Busy > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("only %d of 4 chips saw traffic", busy)
	}
}
