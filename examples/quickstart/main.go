// Command quickstart is the smallest end-to-end example of the ipa engine:
// it opens a database on the simulated Flash device with In-Place Appends
// enabled, stores a table of counters, performs many small transactional
// updates and prints how the storage layer persisted them.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ipa"
)

func main() {
	// A small device: 96 erase blocks of 32 pages of 4 KiB, operated in
	// pSLC mode with the paper's 2×4 In-Place Appends scheme and the
	// native write_delta command.
	db, err := ipa.Open(ipa.Config{
		PageSize:        4 * 1024,
		Blocks:          96,
		PagesPerBlock:   32,
		BufferPoolPages: 32,
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer db.Close()

	counters, err := db.CreateTable("counters", 64)
	if err != nil {
		log.Fatalf("create table: %v", err)
	}

	// Load 5000 counter rows (64 bytes each).
	row := make([]byte, 64)
	for key := int64(0); key < 5000; key++ {
		if err := counters.Insert(key, row); err != nil {
			log.Fatalf("insert: %v", err)
		}
	}
	db.ResetStats() // measure only the update phase below

	// Perform 20000 transactional 2-byte updates spread over all rows. The
	// buffer pool is far smaller than the table, so pages are evicted and
	// re-fetched constantly — exactly the situation where IPA avoids
	// out-of-place page writes.
	for i := 0; i < 20000; i++ {
		key := int64(i*37) % 5000
		tx := db.Begin()
		if err := tx.UpdateAt(counters, key, 8, []byte{byte(i), byte(i >> 8)}); err != nil {
			log.Fatalf("update: %v", err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatalf("commit: %v", err)
		}
	}
	if err := db.FlushAll(); err != nil {
		log.Fatalf("flush: %v", err)
	}

	s := db.Stats()
	fmt.Println("quickstart: 20000 small updates on a 5000-row table")
	fmt.Printf("  write mode              : %s, scheme %s, flash %s\n", s.Mode, s.Scheme, s.FlashMode)
	fmt.Printf("  host writes             : %d full pages + %d write_delta commands\n", s.HostWrites, s.HostWriteDeltas)
	fmt.Printf("  in-place appends        : %d (%.0f%% of all writes)\n", s.InPlaceAppends, 100*s.InPlaceShare())
	fmt.Printf("  page invalidations      : %d\n", s.Invalidations)
	fmt.Printf("  GC migrations / erases  : %d / %d\n", s.GCMigrations, s.GCErases)
	fmt.Printf("  bytes sent to the device: %d (delta records only: %d)\n", s.HostBytesWritten, s.DeltaBytesWritten)
	fmt.Printf("  throughput              : %.0f transactions per virtual second\n", s.Throughput())
}
