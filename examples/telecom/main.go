// Command telecom runs the TATP telecom workload with In-Place Appends
// applied selectively: the update-dominated subscriber and facility tables
// use the [2×4] scheme, while the insert-only call-forwarding table opts
// out (NoFTL regions). It demonstrates why the paper's update-intensive
// read-mostly workloads profit so much from IPA: the few writes that happen
// are tiny and almost always appendable.
//
// Run it with:
//
//	go run ./examples/telecom
package main

import (
	"fmt"
	"log"

	"ipa"
	"ipa/internal/workload"
)

func main() {
	db, err := ipa.Open(ipa.Config{
		PageSize:        4 * 1024,
		Blocks:          96,
		PagesPerBlock:   32,
		BufferPoolPages: 64,
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.OddMLC, // full capacity, appends on LSB pages only
		Analytic:        true,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer db.Close()

	telecom := workload.NewTATP(workload.TATPConfig{Subscribers: 20000})
	if err := telecom.Load(db); err != nil {
		log.Fatalf("load: %v", err)
	}
	db.ResetStats()
	res, err := workload.Run(db, telecom, workload.RunOptions{MaxOps: 20000})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if err := db.FlushAll(); err != nil {
		log.Fatalf("flush: %v", err)
	}

	s := db.Stats()
	fmt.Println("telecom: TATP with selective In-Place Appends (odd-MLC mode)")
	fmt.Printf("  committed transactions     : %d\n", res.Committed)
	fmt.Printf("  host page reads            : %d\n", s.HostReads)
	fmt.Printf("  host writes                : %d (read/write ratio %.1f : 1)\n",
		s.TotalHostWrites(), float64(s.HostReads)/float64(max(1, s.TotalHostWrites())))
	fmt.Printf("  net bytes changed/eviction : %.1f\n",
		float64(s.NetChangedBytes)/float64(max(1, s.DirtyEvictions)))
	fmt.Printf("  evictions changing <100 B  : %.0f%%\n", 100*s.SmallEvictionShare())
	fmt.Printf("  in-place appends           : %d (%.0f%% of writes)\n", s.InPlaceAppends, 100*s.InPlaceShare())
	fmt.Printf("  bytes transferred          : %d (of which delta records: %d)\n", s.HostBytesWritten, s.DeltaBytesWritten)
	fmt.Printf("  GC erases                  : %d\n", s.GCErases)
	fmt.Printf("  throughput                 : %.0f tps (virtual time %s)\n", s.Throughput(), s.Elapsed)

	fmt.Println("\n  tables and their regions:")
	for _, name := range db.Tables() {
		t, _ := db.Table(name)
		fmt.Printf("    %-26s %8d rows, %5d pages\n", name, t.Count(), t.Pages())
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
