// Command ssdvsnative contrasts the two IPA deployments demonstrated in the
// paper (demo scenarios 2 and 3): IPA over the block-device interface of a
// conventional SSD, where whole pages travel to the device and the FTL
// merges them in place, versus IPA on native Flash (NoFTL), where only the
// delta records travel via the write_delta command. Both eliminate the same
// garbage-collection work; the native path additionally removes most of the
// DBMS write amplification on the host interface.
//
// Run it with:
//
//	go run ./examples/ssdvsnative
package main

import (
	"fmt"
	"log"

	"ipa"
	"ipa/internal/workload"
)

func run(mode ipa.WriteMode) ipa.Stats {
	db, err := ipa.Open(ipa.Config{
		PageSize:        4 * 1024,
		Blocks:          96,
		PagesPerBlock:   32,
		BufferPoolPages: 48,
		WriteMode:       mode,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
		Analytic:        true,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer db.Close()
	w := workload.NewLinkBench(workload.LinkBenchConfig{Nodes: 10000, LinksPerNode: 3})
	if err := w.Load(db); err != nil {
		log.Fatalf("load: %v", err)
	}
	db.ResetStats()
	if _, err := workload.Run(db, w, workload.RunOptions{MaxOps: 15000}); err != nil {
		log.Fatalf("run: %v", err)
	}
	if err := db.FlushAll(); err != nil {
		log.Fatalf("flush: %v", err)
	}
	return db.Stats()
}

func main() {
	fmt.Println("ssdvsnative: social-graph workload, IPA on a conventional SSD vs native Flash")
	baseline := run(ipa.Traditional)
	ssd := run(ipa.IPAConventionalSSD)
	native := run(ipa.IPANativeFlash)

	fmt.Printf("%-34s %16s %16s %16s\n", "", "traditional", "IPA block-device", "IPA write_delta")
	fmt.Printf("%-34s %16d %16d %16d\n", "host writes (pages / deltas)",
		baseline.TotalHostWrites(), ssd.TotalHostWrites(), native.TotalHostWrites())
	fmt.Printf("%-34s %16d %16d %16d\n", "bytes host -> device",
		baseline.HostBytesWritten, ssd.HostBytesWritten, native.HostBytesWritten)
	fmt.Printf("%-34s %16d %16d %16d\n", "in-place appends",
		baseline.InPlaceAppends, ssd.InPlaceAppends, native.InPlaceAppends)
	fmt.Printf("%-34s %16d %16d %16d\n", "page invalidations",
		baseline.Invalidations, ssd.Invalidations, native.Invalidations)
	fmt.Printf("%-34s %16d %16d %16d\n", "GC erases",
		baseline.GCErases, ssd.GCErases, native.GCErases)
	fmt.Printf("%-34s %16.0f %16.0f %16.0f\n", "throughput (tps)",
		baseline.Throughput(), ssd.Throughput(), native.Throughput())
	fmt.Printf("%-34s %16.1fx %15.1fx %15.1fx\n", "DBMS write amplification",
		baseline.DBMSWriteAmplification(), ssd.DBMSWriteAmplification(), native.DBMSWriteAmplification())
	fmt.Println("\nBoth IPA variants avoid the same page invalidations and GC work; only the")
	fmt.Println("native write_delta path also removes the host-interface write amplification.")
}
