// Command banking runs the TPC-B banking workload — the workload behind
// Table 1 of the paper — twice on identical simulated Flash devices: once
// with the traditional out-of-place write path and once with In-Place
// Appends ([2×4] scheme, pSLC mode), and prints the comparison.
//
// Run it with:
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"time"

	"ipa"
	"ipa/internal/workload"
)

func runBank(mode ipa.WriteMode, scheme ipa.Scheme, flash ipa.FlashMode) ipa.Stats {
	db, err := ipa.Open(ipa.Config{
		PageSize:        4 * 1024,
		Blocks:          96,
		PagesPerBlock:   32,
		BufferPoolPages: 48,
		WriteMode:       mode,
		Scheme:          scheme,
		FlashMode:       flash,
		Analytic:        true,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer db.Close()

	bank := workload.NewTPCB(workload.TPCBConfig{Branches: 1, AccountsPerBranch: 10000})
	if err := bank.Load(db); err != nil {
		log.Fatalf("load: %v", err)
	}
	db.ResetStats()
	// Run for two virtual seconds (the paper ran for two hours on real
	// hardware; the shape of the comparison is the same).
	if _, err := workload.Run(db, bank, workload.RunOptions{Duration: 2 * time.Second}); err != nil {
		log.Fatalf("run: %v", err)
	}
	if err := db.FlushAll(); err != nil {
		log.Fatalf("flush: %v", err)
	}
	return db.Stats()
}

func main() {
	fmt.Println("banking: TPC-B on simulated Flash, traditional vs In-Place Appends")
	base := runBank(ipa.Traditional, ipa.Scheme{}, ipa.MLCFull)
	ipaStats := runBank(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)

	rel := func(ipaV, baseV float64) string {
		if baseV == 0 {
			return "   n/a"
		}
		return fmt.Sprintf("%+6.0f%%", 100*(ipaV-baseV)/baseV)
	}
	fmt.Printf("%-32s %14s %14s %8s\n", "", "traditional", "IPA 2x4 pSLC", "change")
	fmt.Printf("%-32s %14d %14d %8s\n", "committed transactions",
		base.CommittedTxns, ipaStats.CommittedTxns, rel(float64(ipaStats.CommittedTxns), float64(base.CommittedTxns)))
	fmt.Printf("%-32s %14.0f %14.0f %8s\n", "throughput (tps)",
		base.Throughput(), ipaStats.Throughput(), rel(ipaStats.Throughput(), base.Throughput()))
	fmt.Printf("%-32s %14d %14d %8s\n", "host writes",
		base.TotalHostWrites(), ipaStats.TotalHostWrites(), rel(float64(ipaStats.TotalHostWrites()), float64(base.TotalHostWrites())))
	fmt.Printf("%-32s %14d %14d\n", "in-place appends", base.InPlaceAppends, ipaStats.InPlaceAppends)
	fmt.Printf("%-32s %14d %14d %8s\n", "page invalidations",
		base.Invalidations, ipaStats.Invalidations, rel(float64(ipaStats.Invalidations), float64(base.Invalidations)))
	fmt.Printf("%-32s %14.4f %14.4f %8s\n", "GC migrations per host write",
		base.MigrationsPerHostWrite(), ipaStats.MigrationsPerHostWrite(), rel(ipaStats.MigrationsPerHostWrite(), base.MigrationsPerHostWrite()))
	fmt.Printf("%-32s %14.4f %14.4f %8s\n", "GC erases per host write",
		base.ErasesPerHostWrite(), ipaStats.ErasesPerHostWrite(), rel(ipaStats.ErasesPerHostWrite(), base.ErasesPerHostWrite()))
	if b, i := base.ErasesPerHostWrite(), ipaStats.ErasesPerHostWrite(); b > 0 && i > 0 {
		fmt.Printf("%-32s %14s %13.2fx\n", "relative Flash lifetime", "1.00x", b/i)
	}
}
