package ipa_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"ipa"
)

func checkpointConfig() ipa.Config {
	return ipa.Config{
		PageSize:        2048,
		Blocks:          48,
		PagesPerBlock:   16,
		BufferPoolPages: 16,
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
	}
}

func ckptRow(key int64, gen byte) []byte {
	b := make([]byte, 64)
	b[0] = gen
	binary.LittleEndian.PutUint64(b[8:], uint64(key*7919))
	return b
}

func ckptInsert(t *testing.T, db *ipa.DB, tbl *ipa.Table, from, to int64) {
	t.Helper()
	for k := from; k < to; k++ {
		tx := db.Begin()
		if err := tx.Insert(tbl, k, ckptRow(k, 1)); err != nil {
			t.Fatalf("Insert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit %d: %v", k, err)
		}
	}
}

// TestRecoveryStartsAtCheckpoint pins the tentpole property: after a fuzzy
// checkpoint, restart cost is O(log since the checkpoint), not O(whole
// history). The same workload is run twice — with and without a mid-run
// checkpoint — and the checkpointed run must replay only the small
// post-checkpoint tail.
func TestRecoveryStartsAtCheckpoint(t *testing.T) {
	run := func(checkpoint bool) (ipa.RecoveryStats, *ipa.DB) {
		db, err := ipa.Open(checkpointConfig())
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		tbl, err := db.CreateTable("t", 64)
		if err != nil {
			t.Fatalf("CreateTable: %v", err)
		}
		ckptInsert(t, db, tbl, 0, 150)
		if checkpoint {
			if _, err := db.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
		ckptInsert(t, db, tbl, 150, 160)
		db2, err := ipa.Reopen(db.Crash())
		if err != nil {
			t.Fatalf("Reopen: %v", err)
		}
		return db2.RecoveryStats(), db2
	}

	base, dbBase := run(false)
	defer dbBase.Close()
	ckpt, dbCkpt := run(true)
	defer dbCkpt.Close()

	if base.CheckpointLSN != 0 {
		t.Fatalf("baseline recovered from checkpoint LSN %d, want 0", base.CheckpointLSN)
	}
	if ckpt.CheckpointLSN == 0 {
		t.Fatalf("checkpointed run did not recover from a checkpoint")
	}
	if ckpt.RecordsRedone == 0 {
		t.Fatalf("checkpointed run replayed nothing; the post-checkpoint tail is non-empty")
	}
	// 150 of 160 transactions lie below the checkpoint: the truncated log
	// must make recovery replay a small fraction of the baseline.
	if ckpt.RecordsRedone*4 > base.RecordsRedone {
		t.Fatalf("recovery did not start at the checkpoint: redid %d records, baseline %d",
			ckpt.RecordsRedone, base.RecordsRedone)
	}
	// Both recover the same data regardless of where redo started.
	for _, db := range []*ipa.DB{dbBase, dbCkpt} {
		if err := db.VerifyIntegrity(); err != nil {
			t.Fatalf("VerifyIntegrity: %v", err)
		}
		tbl, ok := db.Table("t")
		if !ok {
			t.Fatalf("table missing after reopen")
		}
		for k := int64(0); k < 160; k++ {
			got, err := tbl.Get(k)
			if err != nil {
				t.Fatalf("Get %d: %v", k, err)
			}
			if !bytes.Equal(got, ckptRow(k, 1)) {
				t.Fatalf("key %d corrupted after recovery", k)
			}
		}
	}
	// The durable catalog carries the checkpoint the restart started from.
	state, ok, err := dbCkpt.CheckpointState()
	if err != nil || !ok {
		t.Fatalf("CheckpointState: ok=%v err=%v", ok, err)
	}
	if state.LSN != ckpt.CheckpointLSN {
		t.Fatalf("catalog LSN %d, recovery used %d", state.LSN, ckpt.CheckpointLSN)
	}
}

// TestCheckpointConcurrentWithWriters takes fuzzy checkpoints while writer
// goroutines commit (run under -race in CI), then crashes and verifies the
// recovered state. The background byte-triggered checkpointer runs too.
func TestCheckpointConcurrentWithWriters(t *testing.T) {
	cfg := checkpointConfig()
	cfg.Blocks = 96
	cfg.BufferPoolPages = 32
	cfg.CheckpointEveryBytes = 16 << 10
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tbl, err := db.CreateTable("t", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}

	const writers, perWriter = 4, 80
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := int64(w*perWriter + i)
				tx := db.Begin()
				if err := tx.Insert(tbl, k, ckptRow(k, 1)); err != nil {
					errs[w] = err
					return
				}
				if err := tx.Commit(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ckpts := 0
	for {
		select {
		case <-done:
		default:
			if _, err := db.Checkpoint(); err != nil {
				t.Errorf("Checkpoint under load: %v", err)
			}
			ckpts++
			continue
		}
		break
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if ckpts == 0 {
		t.Fatalf("no checkpoint ran concurrently with the writers")
	}

	db2, err := ipa.Reopen(db.Crash())
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	defer db2.Close()
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
	tbl2, ok := db2.Table("t")
	if !ok {
		t.Fatalf("table missing after reopen")
	}
	for k := int64(0); k < writers*perWriter; k++ {
		got, err := tbl2.Get(k)
		if err != nil {
			t.Fatalf("Get %d after recovery: %v", k, err)
		}
		if !bytes.Equal(got, ckptRow(k, 1)) {
			t.Fatalf("key %d corrupted after recovery", k)
		}
	}
}

// TestDoubleCrashDuringCheckpoint cuts the power in the middle of a fuzzy
// checkpoint, recovers, cuts the power inside the next checkpoint again,
// and recovers again: a torn checkpoint (catalog program included) must
// never cost committed data, it only leaves the previous checkpoint in
// force.
func TestDoubleCrashDuringCheckpoint(t *testing.T) {
	plan := ipa.NewFaultPlan(0, ipa.CrashTorn) // passive until armed
	cfg := checkpointConfig()
	cfg.Faults = plan
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tbl, err := db.CreateTable("t", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	ckptInsert(t, db, tbl, 0, 60)

	// First power cut: mid-checkpoint, during the dirty-page flushes or
	// the catalog program (Arm restarts the op counter).
	plan.Arm(2, ipa.CrashTorn)
	if _, err := db.Checkpoint(); !errors.Is(err, ipa.ErrPowerLost) {
		t.Fatalf("checkpoint during power cut: got %v, want ErrPowerLost", err)
	}
	db2, err := ipa.Reopen(db.Crash())
	if err != nil {
		t.Fatalf("first Reopen: %v", err)
	}
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after first crash: %v", err)
	}
	tbl2, ok := db2.Table("t")
	if !ok {
		t.Fatalf("table missing after first reopen")
	}
	ckptInsert(t, db2, tbl2, 60, 90)

	// Second power cut: inside the next checkpoint of the recovered DB.
	plan.Arm(3, ipa.CrashTorn)
	if _, err := db2.Checkpoint(); !errors.Is(err, ipa.ErrPowerLost) {
		t.Fatalf("second checkpoint during power cut: got %v, want ErrPowerLost", err)
	}
	db3, err := ipa.Reopen(db2.Crash())
	if err != nil {
		t.Fatalf("second Reopen: %v", err)
	}
	defer db3.Close()
	if err := db3.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after second crash: %v", err)
	}
	tbl3, ok := db3.Table("t")
	if !ok {
		t.Fatalf("table missing after second reopen")
	}
	for k := int64(0); k < 90; k++ {
		got, err := tbl3.Get(k)
		if err != nil {
			t.Fatalf("Get %d after double crash: %v", k, err)
		}
		if !bytes.Equal(got, ckptRow(k, 1)) {
			t.Fatalf("key %d corrupted after double crash", k)
		}
	}
}

// TestWALSegmentRecycling drives sustained load through periodic
// checkpoints with tiny log segments and checks the live log stays
// bounded: truncation recycles whole segments in O(1) while the total
// bytes ever written keep growing.
func TestWALSegmentRecycling(t *testing.T) {
	cfg := checkpointConfig()
	cfg.Blocks = 96
	cfg.WALSegmentBytes = 4096
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", 256)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	row := func(k int64) []byte {
		b := make([]byte, 256)
		binary.LittleEndian.PutUint64(b, uint64(k))
		return b
	}
	lastCut := uint64(0)
	for k := int64(0); k < 200; k++ {
		tx := db.Begin()
		if err := tx.Insert(tbl, k, row(k)); err != nil {
			t.Fatalf("Insert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit %d: %v", k, err)
		}
		if (k+1)%20 != 0 {
			continue
		}
		res, err := db.Checkpoint()
		if err != nil {
			t.Fatalf("Checkpoint at %d: %v", k, err)
		}
		if res.TruncatedLSN < lastCut {
			t.Fatalf("truncation cut went backwards: %d after %d", res.TruncatedLSN, lastCut)
		}
		lastCut = res.TruncatedLSN
		if res.WALSegments > 3 {
			t.Fatalf("live log not bounded: %d segments after checkpoint (cut %d)",
				res.WALSegments, res.TruncatedLSN)
		}
		if res.WALLiveBytes > 3*4096 {
			t.Fatalf("live log not bounded: %d bytes after checkpoint", res.WALLiveBytes)
		}
	}
	if lastCut == 0 {
		t.Fatalf("checkpoints never advanced the truncation cut")
	}
	s := db.Stats()
	if s.WALBytes < 4*4096 {
		t.Fatalf("workload too small to exercise recycling: %d WAL bytes written", s.WALBytes)
	}
	if s.CheckpointLSN == 0 || s.WALSegments > 3 {
		t.Fatalf("stats gauges: CheckpointLSN=%d WALSegments=%d", s.CheckpointLSN, s.WALSegments)
	}
	if s.WALBytesSinceCheckpoint > s.WALBytes/2 {
		t.Fatalf("bytes-since-checkpoint gauge did not reset: %d of %d total",
			s.WALBytesSinceCheckpoint, s.WALBytes)
	}
}

// TestParallelRedoMatchesSerial runs the identical deterministic workload
// — inserts, updates, deletes, an abort and an in-flight loser around a
// mid-run checkpoint — under RecoveryParallelism 1 (the serial oracle) and
// 8, and requires bit-identical recovered tables.
func TestParallelRedoMatchesSerial(t *testing.T) {
	run := func(parallelism int) (*ipa.DB, ipa.RecoveryStats) {
		cfg := checkpointConfig()
		cfg.RecoveryParallelism = parallelism
		db, err := ipa.Open(cfg)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		tbl, err := db.CreateTable("t", 64)
		if err != nil {
			t.Fatalf("CreateTable: %v", err)
		}
		ckptInsert(t, db, tbl, 0, 80)
		if _, err := db.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		ckptInsert(t, db, tbl, 80, 120)
		for k := int64(0); k < 120; k += 5 {
			tx := db.Begin()
			if err := tx.UpdateAt(tbl, k, 1, []byte{9, 9, 9}); err != nil {
				t.Fatalf("UpdateAt %d: %v", k, err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("Commit update %d: %v", k, err)
			}
		}
		for k := int64(3); k < 120; k += 7 {
			tx := db.Begin()
			if err := tx.Delete(tbl, k); err != nil {
				t.Fatalf("Delete %d: %v", k, err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("Commit delete %d: %v", k, err)
			}
		}
		// An aborted transaction and an in-flight loser: compensation and
		// undo must land identically under both worker counts.
		ab := db.Begin()
		if err := ab.UpdateAt(tbl, 11, 2, []byte{7, 7}); err != nil {
			t.Fatalf("abort update: %v", err)
		}
		if err := ab.Abort(); err != nil {
			t.Fatalf("Abort: %v", err)
		}
		loser := db.Begin()
		if err := loser.Insert(tbl, 5000, ckptRow(5000, 9)); err != nil {
			t.Fatalf("loser insert: %v", err)
		}
		db2, err := ipa.Reopen(db.Crash())
		if err != nil {
			t.Fatalf("Reopen (parallelism %d): %v", parallelism, err)
		}
		return db2, db2.RecoveryStats()
	}

	serialDB, serialStats := run(1)
	defer serialDB.Close()
	parallelDB, parallelStats := run(8)
	defer parallelDB.Close()

	if serialStats.Parallelism != 1 || parallelStats.Parallelism != 8 {
		t.Fatalf("parallelism not honoured: serial=%d parallel=%d",
			serialStats.Parallelism, parallelStats.Parallelism)
	}
	if serialStats.RecordsRedone != parallelStats.RecordsRedone {
		t.Fatalf("redo counts diverge: serial=%d parallel=%d",
			serialStats.RecordsRedone, parallelStats.RecordsRedone)
	}
	for _, db := range []*ipa.DB{serialDB, parallelDB} {
		if err := db.VerifyIntegrity(); err != nil {
			t.Fatalf("VerifyIntegrity: %v", err)
		}
	}
	st, _ := serialDB.Table("t")
	pt, _ := parallelDB.Table("t")
	type rowT struct {
		k int64
		v []byte
	}
	collect := func(tbl *ipa.Table) []rowT {
		var out []rowT
		if err := tbl.ScanRange(0, 10000, func(k int64, v []byte) bool {
			out = append(out, rowT{k, append([]byte(nil), v...)})
			return true
		}); err != nil {
			t.Fatalf("ScanRange: %v", err)
		}
		return out
	}
	sr, pr := collect(st), collect(pt)
	if len(sr) != len(pr) {
		t.Fatalf("row counts diverge: serial=%d parallel=%d", len(sr), len(pr))
	}
	for i := range sr {
		if sr[i].k != pr[i].k || !bytes.Equal(sr[i].v, pr[i].v) {
			t.Fatalf("row %d diverges between serial and parallel redo (key %d vs %d)",
				i, sr[i].k, pr[i].k)
		}
	}
}

// BenchmarkReopen measures time-to-recover: a checkpointed database with a
// fresh post-checkpoint tail is crashed and reopened per iteration.
func BenchmarkReopen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := checkpointConfig()
		cfg.Blocks = 96
		db, err := ipa.Open(cfg)
		if err != nil {
			b.Fatalf("Open: %v", err)
		}
		tbl, err := db.CreateTable("t", 64)
		if err != nil {
			b.Fatalf("CreateTable: %v", err)
		}
		for k := int64(0); k < 200; k++ {
			tx := db.Begin()
			if err := tx.Insert(tbl, k, ckptRow(k, 1)); err != nil {
				b.Fatalf("Insert: %v", err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatalf("Commit: %v", err)
			}
		}
		if _, err := db.Checkpoint(); err != nil {
			b.Fatalf("Checkpoint: %v", err)
		}
		for k := int64(200); k < 220; k++ {
			tx := db.Begin()
			if err := tx.Insert(tbl, k, ckptRow(k, 1)); err != nil {
				b.Fatalf("Insert: %v", err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatalf("Commit: %v", err)
			}
		}
		img := db.Crash()
		b.StartTimer()
		db2, err := ipa.Reopen(img)
		if err != nil {
			b.Fatalf("Reopen: %v", err)
		}
		b.StopTimer()
		db2.Close()
		b.StartTimer()
	}
}
