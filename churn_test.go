package ipa_test

import (
	"math/rand"
	"testing"

	"ipa"
)

// TestLargerThanMemoryChurn pins the resource accounting of a heap ~8×
// the buffer pool under sustained update churn: thousands of evictions,
// delta merges and version-chain births later, the pool must still be
// able to walk the whole heap (no leaked frames), MVCC must have
// reclaimed every chain (no unbounded version history) and the physical
// structures must still verify.
func TestLargerThanMemoryChurn(t *testing.T) {
	const (
		tupleSize = 112
		records   = 12000 // ~387 heap pages against a 48-page pool
		updates   = 8000
	)
	db, err := ipa.Open(ipa.Config{
		PageSize:        4096,
		Blocks:          128,
		PagesPerBlock:   32,
		BufferPoolPages: 48,
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
		Chips:           2,
		Seed:            7,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()

	tbl, err := db.CreateTable("churn", tupleSize)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	row := make([]byte, tupleSize)
	for k := int64(0); k < records; k++ {
		for i := range row {
			row[i] = byte(k + int64(i))
		}
		if err := tbl.Insert(k, row); err != nil {
			t.Fatalf("Insert %d: %v", k, err)
		}
	}
	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	db.ResetStats()

	// Churn phase: uniform-random tail patches across the whole keyspace,
	// so nearly every transaction misses the pool and forces an eviction.
	// A long-lived reader pinned mid-churn keeps version chains alive for
	// a while; a delete/reinsert slice adds zombie index entries.
	rng := rand.New(rand.NewSource(11))
	patch := make([]byte, 8)
	var reader *ipa.Tx
	for i := 0; i < updates; i++ {
		if i == updates/4 {
			reader = db.Begin()
			if _, err := reader.Get(tbl, 0); err != nil { // pin the snapshot
				t.Fatalf("reader Get: %v", err)
			}
		}
		if i == updates/2 && reader != nil {
			if err := reader.Commit(); err != nil {
				t.Fatalf("reader release: %v", err)
			}
			reader = nil
		}
		key := rng.Int63n(records)
		rng.Read(patch)
		tx := db.Begin()
		if err := tx.UpdateAt(tbl, key, tupleSize-len(patch), patch); err != nil {
			t.Fatalf("UpdateAt %d: %v", key, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit %d: %v", key, err)
		}
	}
	for k := int64(0); k < 200; k++ {
		tx := db.Begin()
		if err := tx.Delete(tbl, k); err != nil {
			t.Fatalf("Delete %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit delete %d: %v", k, err)
		}
		tx = db.Begin()
		if err := tx.Insert(tbl, k, row); err != nil {
			t.Fatalf("reinsert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit reinsert %d: %v", k, err)
		}
	}

	s := db.Stats()
	if s.DirtyEvictions == 0 {
		t.Fatal("no dirty evictions — the heap fit in the pool, churn proved nothing")
	}
	if s.BufferMisses == 0 {
		t.Fatal("no buffer misses under a heap 8× the pool")
	}
	if s.InPlaceAppends == 0 {
		t.Error("tail-patch churn produced no in-place appends")
	}

	// No leaked frames: a full scan pins and releases every heap page —
	// ~8× more pages than frames — so even a handful of leaked pins would
	// starve it into ErrNoFrames.
	n := 0
	if err := tbl.Scan(func(int64, []byte) bool { n++; return true }); err != nil {
		t.Fatalf("post-churn full scan: %v", err)
	}
	if n != records {
		t.Fatalf("post-churn scan saw %d rows, want %d", n, records)
	}

	// No unbounded version chains: every transaction above has finished,
	// so MVCC must have reclaimed all history and released all zombies.
	s = db.Stats()
	if s.ActiveSnapshots != 0 || s.OldestSnapshotAge != 0 {
		t.Errorf("snapshot gauges not quiescent: active=%d age=%d", s.ActiveSnapshots, s.OldestSnapshotAge)
	}
	if s.VersionChainsLive != 0 {
		t.Errorf("VersionChainsLive = %d after quiesce, want 0", s.VersionChainsLive)
	}
	if s.ZombieEntries != 0 {
		t.Errorf("ZombieEntries = %d after quiesce, want 0", s.ZombieEntries)
	}
	if s.VersionsCreated != s.VersionsReclaimed {
		t.Errorf("version leak: created %d, reclaimed %d", s.VersionsCreated, s.VersionsReclaimed)
	}

	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
	// The accounting must also hold after draining everything to Flash.
	if err := db.FlushAll(); err != nil {
		t.Fatalf("final FlushAll: %v", err)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after FlushAll: %v", err)
	}
}
