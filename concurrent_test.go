package ipa_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"ipa"
	"ipa/internal/wal"
)

// TestParallelInsertReadUpdate runs non-transactional inserts, reads,
// updates and scans from many goroutines on disjoint key ranges and
// verifies the final table contents (run with -race).
func TestParallelInsertReadUpdate(t *testing.T) {
	cfg := smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)
	cfg.BufferPoolPages = 32
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	const workers = 8
	const keysPerWorker = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * keysPerWorker)
			// Insert this worker's keys.
			for k := int64(0); k < keysPerWorker; k++ {
				if err := tbl.Insert(base+k, fillTuple(64, base+k)); err != nil {
					t.Errorf("worker %d insert: %v", w, err)
					return
				}
			}
			// Update every key, then read it back.
			for k := int64(0); k < keysPerWorker; k++ {
				key := base + k
				if err := tbl.UpdateAt(key, 4, []byte{0xA0, byte(w)}); err != nil {
					t.Errorf("worker %d update: %v", w, err)
					return
				}
				row, err := tbl.Get(key)
				if err != nil {
					t.Errorf("worker %d get: %v", w, err)
					return
				}
				if row[4] != 0xA0 || row[5] != byte(w) {
					t.Errorf("worker %d read back wrong bytes: % x", w, row[4:6])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := tbl.Count(); got != workers*keysPerWorker {
		t.Fatalf("Count = %d, want %d", got, workers*keysPerWorker)
	}
	// Every tuple carries its worker's marker and its untouched remainder.
	for w := 0; w < workers; w++ {
		for k := int64(0); k < keysPerWorker; k++ {
			key := int64(w*keysPerWorker) + k
			row, err := tbl.Get(key)
			if err != nil {
				t.Fatalf("Get %d: %v", key, err)
			}
			want := fillTuple(64, key)
			want[4], want[5] = 0xA0, byte(w)
			if !bytes.Equal(row, want) {
				t.Fatalf("key %d corrupted", key)
			}
		}
	}
}

// TestConcurrentReadersShareAPage hammers reads of a handful of keys (all
// on one or two pages) from many goroutines while a writer updates them,
// exercising the shared/exclusive frame latches (run with -race).
func TestConcurrentReadersShareAPage(t *testing.T) {
	db, err := ipa.Open(smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", 64)
	const keys = 20
	for k := int64(0); k < keys; k++ {
		if err := tbl.Insert(k, fillTuple(64, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				row, err := tbl.Get(int64(i) % keys)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if len(row) != 64 {
					t.Errorf("short row")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			if err := tbl.UpdateAt(int64(i)%keys, 8, []byte{byte(i)}); err != nil {
				t.Errorf("UpdateAt: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestConcurrentCommitDurability checks the group-commit guarantee under
// concurrency: when Commit returns, the transaction's commit record is
// durable (FlushedLSN has passed it), no matter which goroutine led the
// flush.
func TestConcurrentCommitDurability(t *testing.T) {
	cfg := smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)
	cfg.BufferPoolPages = 64
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", 80)
	const keys = 640
	for k := int64(0); k < keys; k++ {
		if err := tbl.Insert(k, fillTuple(80, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	const workers = 8
	const opsPerWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * (keys / workers)
			for i := 0; i < opsPerWorker; i++ {
				key := base + int64(i)%(keys/workers)
				tx := db.Begin()
				if err := tx.UpdateAt(tbl, key, 4, []byte{byte(i)}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					_ = tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("worker %d commit: %v", w, err)
					return
				}
				// The commit must already be durable when Commit returns.
				if flushed := db.WAL().FlushedLSN(); flushed == 0 {
					t.Errorf("worker %d: nothing flushed after commit", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	s := db.Stats()
	if s.CommittedTxns != workers*opsPerWorker {
		t.Fatalf("CommittedTxns = %d, want %d", s.CommittedTxns, workers*opsPerWorker)
	}
	// Every commit record in the log must be durable.
	flushed := db.WAL().FlushedLSN()
	commits := 0
	for _, r := range db.WAL().Records() {
		if r.Type == wal.RecCommit {
			commits++
			if r.LSN > flushed {
				t.Fatalf("commit LSN %d beyond FlushedLSN %d", r.LSN, flushed)
			}
		}
	}
	if commits != workers*opsPerWorker {
		t.Fatalf("found %d commit records, want %d", commits, workers*opsPerWorker)
	}
	if s.WALFlushes == 0 || s.WALFlushedCommits != uint64(commits) {
		t.Fatalf("group-commit accounting wrong: %+v", s)
	}
}

// TestRecoveryAfterConcurrentCrash crashes a database mid-flight — some
// transactions committed from several goroutines, others still open — and
// verifies that recovery redoes every committed update and rolls back all
// losers, exactly as in the sequential recovery test.
func TestRecoveryAfterConcurrentCrash(t *testing.T) {
	cfg := smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)
	db, err := ipa.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", 64)
	const keys = 400
	for k := int64(0); k < keys; k++ {
		if err := tbl.Insert(k, fillTuple(64, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * (keys / workers)
			for i := 0; i < 20; i++ {
				key := base + int64(i)
				tx := db.Begin()
				if err := tx.UpdateAt(tbl, key, 20, []byte{0xAA, byte(w)}); err != nil {
					t.Errorf("worker %d update: %v", w, err)
					_ = tx.Abort()
					return
				}
				if w%2 == 0 {
					// Even workers commit; odd workers leave their
					// transactions open — the "crash" strands them as
					// losers in the log.
					if err := tx.Commit(); err != nil {
						t.Errorf("worker %d commit: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Crash and recover: replay the log against the current storage state.
	if err := db.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for w := 0; w < workers; w++ {
		base := int64(w) * (keys / workers)
		for i := 0; i < 20; i++ {
			key := base + int64(i)
			row, err := tbl.Get(key)
			if err != nil {
				t.Fatalf("Get %d: %v", key, err)
			}
			if w%2 == 0 {
				if row[20] != 0xAA || row[21] != byte(w) {
					t.Fatalf("committed update of worker %d lost on key %d: % x", w, key, row[20:22])
				}
			} else {
				want := fillTuple(64, key)
				if row[20] != want[20] || row[21] != want[21] {
					t.Fatalf("loser update of worker %d survived on key %d: % x", w, key, row[20:22])
				}
			}
		}
	}
}

// TestGetForUpdateBlocksWriters verifies that a locked read conflicts
// with a concurrent writer, and that a plain Get does not take the lock.
func TestGetForUpdateBlocksWriters(t *testing.T) {
	db, err := ipa.Open(smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", 64)
	if err := tbl.Insert(7, fillTuple(64, 7)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	reader := db.Begin()
	row, err := reader.GetForUpdate(tbl, 7)
	if err != nil {
		t.Fatalf("GetForUpdate: %v", err)
	}
	if !bytes.Equal(row, fillTuple(64, 7)) {
		t.Fatalf("GetForUpdate returned wrong tuple")
	}
	// A writer must conflict while the read lock is held.
	writer := db.Begin()
	if err := writer.UpdateAt(tbl, 7, 0, []byte{1}); !errors.Is(err, ipa.ErrConflict) {
		t.Fatalf("expected conflict against locked read, got %v", err)
	}
	_ = writer.Abort()
	// A plain Get takes no lock and proceeds.
	observer := db.Begin()
	if _, err := observer.Get(tbl, 7); err != nil {
		t.Fatalf("plain Get must not block: %v", err)
	}
	_ = observer.Abort()
	if err := reader.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// After commit the record is writable again.
	writer2 := db.Begin()
	if err := writer2.UpdateAt(tbl, 7, 0, []byte{2}); err != nil {
		t.Fatalf("update after release: %v", err)
	}
	if err := writer2.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// TestStatsAndResetRaceFree calls Stats and ResetStats continuously while
// transactions commit (run with -race: the counters must be atomic).
func TestStatsAndResetRaceFree(t *testing.T) {
	db, err := ipa.Open(smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", 64)
	const keys = 200
	for k := int64(0); k < keys; k++ {
		if err := tbl.Insert(k, fillTuple(64, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := db.Stats()
				if s.Throughput() < 0 {
					t.Errorf("negative throughput")
					return
				}
				db.ResetStats()
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			base := int64(w) * (keys / 4)
			for i := 0; i < 150; i++ {
				tx := db.Begin()
				key := base + int64(i)%(keys/4)
				if err := tx.UpdateAt(tbl, key, 8, []byte{byte(i)}); err != nil {
					if errors.Is(err, ipa.ErrConflict) {
						_ = tx.Abort()
						continue
					}
					t.Errorf("worker %d: %v", w, err)
					_ = tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("worker %d commit: %v", w, err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

// TestConflictRetryUnderConcurrency has all workers fight over the same
// tiny key set; conflicts must surface as ipa.ErrConflict and every
// retried transaction must eventually succeed.
func TestConflictRetryUnderConcurrency(t *testing.T) {
	db, err := ipa.Open(smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", 64)
	const keys = 4
	for k := int64(0); k < keys; k++ {
		if err := tbl.Insert(k, fillTuple(64, k)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	const workers = 8
	const opsPerWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				key := int64(i) % keys
				for {
					tx := db.Begin()
					err := tx.UpdateAt(tbl, key, 8, []byte{byte(w), byte(i)})
					if err == nil {
						err = tx.Commit()
					}
					if err == nil {
						break
					}
					_ = tx.Abort()
					if !errors.Is(err, ipa.ErrConflict) {
						t.Errorf("worker %d: unexpected error: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	s := db.Stats()
	if s.CommittedTxns != workers*opsPerWorker {
		t.Fatalf("CommittedTxns = %d, want %d", s.CommittedTxns, workers*opsPerWorker)
	}
	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
}
