// Package ipaclient is the Go client for ipaserver's wire protocol. It
// speaks the RESP-compatible framing of internal/proto over one TCP
// connection: Do sends a single command and waits for its reply, Batch
// pipelines many commands in one write and decodes the replies in order
// (one round trip for the whole batch). A Client is safe for concurrent
// use, but commands interleave — use one Client per goroutine (as
// cmd/ipaload does) when BEGIN…COMMIT must not interleave with other
// traffic, since the transaction is a property of the connection.
//
// The protocol itself — commands, replies and error codes — is specified
// in docs/DESIGN_SERVER.md.
package ipaclient

import (
	"fmt"
	"net"
	"sync"
	"time"

	"ipa/internal/proto"
)

// Error is an error reply from the server. Code is one of the stable wire
// codes of docs/DESIGN_SERVER.md ("NOTFOUND", "CONFLICT", ...).
type Error struct {
	Code    string
	Message string
}

func (e *Error) Error() string {
	if e.Message == "" {
		return "ipaclient: " + e.Code
	}
	return fmt.Sprintf("ipaclient: %s %s", e.Code, e.Message)
}

// IsCode reports whether err is a server Error carrying the given wire
// code.
func IsCode(err error, code string) bool {
	se, ok := err.(*Error)
	return ok && se.Code == code
}

// Client is one connection to an ipaserver.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *proto.Reader
	w    *proto.Writer
}

// Dial connects to an ipaserver at addr.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a bound on connection establishment.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ipaclient: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		r:    proto.NewReader(conn),
		w:    proto.NewWriter(conn),
	}, nil
}

// Close hangs up. A transaction left open on the connection is aborted by
// the server.
func (c *Client) Close() error { return c.conn.Close() }

// reply converts an error reply into *Error, passing other kinds through.
func reply(r proto.Reply) (proto.Reply, error) {
	if r.Kind == proto.KindError {
		e := &Error{Code: r.ErrorCode()}
		if len(e.Code) < len(r.Str) {
			e.Message = r.Str[len(e.Code)+1:]
		}
		return r, e
	}
	return r, nil
}

// Do sends one command and waits for its reply. Error replies surface as
// *Error; transport failures as ordinary errors.
func (c *Client) Do(args ...[]byte) (proto.Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.WriteCommand(args...)
	if err := c.w.Flush(); err != nil {
		return proto.Reply{}, err
	}
	r, err := c.r.ReadReply()
	if err != nil {
		return proto.Reply{}, err
	}
	return reply(r)
}

// DoStrings is Do with string arguments.
func (c *Client) DoStrings(args ...string) (proto.Reply, error) {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return c.Do(bs...)
}

// Batch pipelines every command in one write and decodes the replies in
// order: len(cmds) commands, one round trip. Error replies appear in the
// returned slice (Kind KindError), not as the error return — a batch with
// a NOTFOUND in the middle still yields all replies. The error return is
// reserved for transport failures, after which the replies decoded so far
// are returned.
func (c *Client) Batch(cmds [][][]byte) ([]proto.Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, args := range cmds {
		c.w.WriteCommand(args...)
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	replies := make([]proto.Reply, 0, len(cmds))
	for range cmds {
		r, err := c.r.ReadReply()
		if err != nil {
			return replies, err
		}
		replies = append(replies, r)
	}
	return replies, nil
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	_, err := c.DoStrings("PING")
	return err
}

// CreateTable issues CREATE table tupleSize.
func (c *Client) CreateTable(table string, tupleSize int) error {
	_, err := c.DoStrings("CREATE", table, fmt.Sprint(tupleSize))
	return err
}

// Insert issues INSERT table key value.
func (c *Client) Insert(table string, key int64, value []byte) error {
	_, err := c.Do([]byte("INSERT"), []byte(table), []byte(fmt.Sprint(key)), value)
	return err
}

// Get issues GET table key and returns the tuple.
func (c *Client) Get(table string, key int64) ([]byte, error) {
	r, err := c.DoStrings("GET", table, fmt.Sprint(key))
	if err != nil {
		return nil, err
	}
	return r.Bulk, nil
}

// GetForUpdate issues GETFU table key: a GET under the open
// transaction's record lock, so the returned tuple cannot change before
// COMMIT/ABORT. Outside a transaction the server replies NOTXN.
func (c *Client) GetForUpdate(table string, key int64) ([]byte, error) {
	r, err := c.DoStrings("GETFU", table, fmt.Sprint(key))
	if err != nil {
		return nil, err
	}
	return r.Bulk, nil
}

// Update issues UPDATE table key offset value — a tail-patch of the tuple
// at the given byte offset, the engine's in-place-append fast path.
func (c *Client) Update(table string, key int64, offset int, value []byte) error {
	_, err := c.Do([]byte("UPDATE"), []byte(table), []byte(fmt.Sprint(key)),
		[]byte(fmt.Sprint(offset)), value)
	return err
}

// Delete issues DEL table key.
func (c *Client) Delete(table string, key int64) error {
	_, err := c.DoStrings("DEL", table, fmt.Sprint(key))
	return err
}
