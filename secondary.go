package ipa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"ipa/internal/btree"
	"ipa/internal/core"
	"ipa/internal/heap"
	"ipa/internal/index"
	"ipa/internal/region"
)

// ErrIndexNotFound is returned when a named secondary index does not exist.
var ErrIndexNotFound = errors.New("ipa: secondary index not found")

// ErrIndexExists is returned when creating a secondary index whose name is
// taken on its table.
var ErrIndexExists = errors.New("ipa: secondary index already exists")

// ExtractFunc derives the secondary key of a tuple. It must be a pure
// function of the tuple bytes: the engine re-extracts keys during update
// maintenance, integrity verification and crash recovery, and all call
// sites must agree.
type ExtractFunc func(tuple []byte) int64

// Int64Field returns an ExtractFunc reading a little-endian int64 at the
// given tuple-relative offset — the common secondary-key shape of the
// benchmark schemas (TATP sub_nbr, LinkBench id2). An offset outside the
// tuple extracts key 0 for every row; callers that know the tuple size
// should validate the offset up front (cmd/ipadb does).
func Int64Field(offset int) ExtractFunc {
	return func(tuple []byte) int64 {
		if offset < 0 || offset+8 > len(tuple) {
			return 0
		}
		return int64(binary.LittleEndian.Uint64(tuple[offset:]))
	}
}

// SecondaryIndex is a transactional, persistent, non-unique secondary
// index over one table: every live tuple owns one 16-byte entry
// (extracted key, packed RID) in the index's own entry pages, which
// belong to a dedicated `<table>.<index>` NoFTL region (KindIndex) and
// reach Flash as delta appends through the same storage→FTL→device paths
// as the primary key. The sorted key directory is volatile (derivable)
// and is rebuilt from the entry pages plus the write-ahead log on Reopen,
// exactly like the primary-key B-tree — never by scanning the heap.
//
// Maintenance is fully logged: Tx.Insert, Tx.Delete and Tx.UpdateAt
// ripple into every secondary index via logical RecIndexInsert /
// RecIndexDelete records (carrying the index object id, key and RID), so
// rollback and crash recovery reverse or replay it together with the
// tuple change. Transactional removals split the two halves of the index:
// the persistent entry goes immediately (recovery sees the removal), but
// the volatile pair is retained until no snapshot predates the removal's
// commit — snapshot readers route through the retained pair into the
// version cache and re-extract the key from the version they resolve, so
// older snapshots keep finding the tuple under its old key. See
// docs/DESIGN_MVCC.md.
type SecondaryIndex struct {
	table   *Table
	name    string
	id      uint32
	extract ExtractFunc
	file    *index.Secondary

	// Volatile search structure, guarded by table.mu like the pk B-tree:
	// keys is the sorted set of live secondary keys (the stored value is
	// unused), rids the live RID set per key.
	keys *btree.Tree
	rids map[int64]map[uint64]struct{}
	// stale marks retained-historical pairs: entries kept in the volatile
	// directory only because a snapshot older than their removal's commit
	// timestamp (the stored value) may still resolve through them. A
	// re-add of the pair clears the mark (it is live again); the zombie
	// GC drops exactly the pairs whose mark still carries its timestamp.
	// Guarded by table.mu.
	stale map[secPair]uint64
}

// secPair identifies one (secondary key, packed RID) index pair.
type secPair struct {
	key int64
	rid uint64
}

// Name returns the index name (unique per table).
func (s *SecondaryIndex) Name() string { return s.name }

// ID returns the index's object identifier.
func (s *SecondaryIndex) ID() uint32 { return s.id }

// Table returns the indexed table.
func (s *SecondaryIndex) Table() *Table { return s.table }

// Pages returns the number of persistent entry pages of the index.
func (s *SecondaryIndex) Pages() int { return s.file.Pages() }

// Len returns the number of live (key, RID) entries.
func (s *SecondaryIndex) Len() int {
	s.table.mu.RLock()
	defer s.table.mu.RUnlock()
	return s.lenLocked()
}

// Keys returns the number of distinct live secondary keys.
func (s *SecondaryIndex) Keys() int {
	s.table.mu.RLock()
	defer s.table.mu.RUnlock()
	return s.keys.Len()
}

// lenLocked counts live entries. Caller holds table.mu.
func (s *SecondaryIndex) lenLocked() int {
	n := 0
	for _, set := range s.rids {
		n += len(set)
	}
	return n
}

// noteLocked records the (key, value) pair in the volatile structures
// only (used when priming from recovered entry pages). Caller holds
// table.mu. Idempotent. A pair previously retained as historical becomes
// live again, so its stale mark is cleared.
func (s *SecondaryIndex) noteLocked(key int64, value uint64) {
	set := s.rids[key]
	if set == nil {
		set = make(map[uint64]struct{})
		s.rids[key] = set
		s.keys.Insert(key, 0)
	}
	set[value] = struct{}{}
	delete(s.stale, secPair{key: key, rid: value})
}

// addLocked inserts the (key, value) pair into the persistent entry file
// and the volatile directory. Caller holds table.mu. Idempotent, so WAL
// redo can replay it.
func (s *SecondaryIndex) addLocked(key int64, value uint64) error {
	if err := s.file.Add(key, value); err != nil {
		return err
	}
	s.noteLocked(key, value)
	return nil
}

// removeLocked deletes the (key, value) pair from both structures.
// Caller holds table.mu. Removing an absent pair is a no-op.
func (s *SecondaryIndex) removeLocked(key int64, value uint64) error {
	if err := s.file.Remove(key, value); err != nil {
		return err
	}
	s.dropVolatileLocked(key, value)
	return nil
}

// removeDeferredLocked removes the (key, value) pair from the persistent
// entry file only, leaving the volatile pair in place. Transactional
// deletes and update moves use it: snapshot readers older than the change
// must keep finding the RID under its old key (the retained pair routes
// them into the version cache, which resolves the right version), so the
// volatile pair is retired only at commit (retirePair) or by the zombie
// GC. Recovery is unaffected — it rebuilds the volatile directory from
// the entry pages and the log, where the removal is already effective.
// Caller holds table.mu.
func (s *SecondaryIndex) removeDeferredLocked(key int64, value uint64) error {
	return s.file.Remove(key, value)
}

// dropVolatileLocked removes the (key, value) pair from the volatile
// directory only. Caller holds table.mu. Dropping an absent pair is a
// no-op.
func (s *SecondaryIndex) dropVolatileLocked(key int64, value uint64) {
	if set := s.rids[key]; set != nil {
		delete(set, value)
		if len(set) == 0 {
			delete(s.rids, key)
			s.keys.Delete(key)
		}
	}
	delete(s.stale, secPair{key: key, rid: value})
}

// pairsLocked appends the (key, rid) scan pairs of every key in
// [from, to) to out, keys ascending and RIDs ascending within a key.
// Caller holds table.mu.
func (s *SecondaryIndex) pairsLocked(from, to int64, out []scanPair) []scanPair {
	s.keys.AscendRange(from, to, func(k int64, _ uint64) bool {
		set := s.rids[k]
		packed := make([]uint64, 0, len(set))
		for v := range set {
			packed = append(packed, v)
		}
		sort.Slice(packed, func(i, j int) bool { return packed[i] < packed[j] })
		for _, v := range packed {
			out = append(out, scanPair{key: k, rid: heap.Unpack(v)})
		}
		return true
	})
	return out
}

// CreateSecondaryIndex builds a transactional, persistent secondary index
// named name over the table, extracting each tuple's secondary key with
// extract. The index gets its own `<table>.<name>` NoFTL region running
// the Config.IndexScheme (falling back to the table's scheme), so its
// entry pages are delta-append candidates independent of the heap.
//
// Existing rows are backfilled by one heap scan. Like Table.Insert, the
// backfilled entries are not covered by the write-ahead log — create
// indexes before loading data (all transactional maintenance is then
// logged), or call FlushAll afterwards to persist the backfill.
//
// CreateSecondaryIndex is a DDL operation: it must not run concurrently
// with writes to the table. A transaction updating a tuple while the
// backfill scans could have captured its index snapshot before this
// index existed, leaving the backfilled entry stale.
func (t *Table) CreateSecondaryIndex(name string, extract ExtractFunc) (*SecondaryIndex, error) {
	if name == "" || name == "pk" {
		return nil, fmt.Errorf("ipa: invalid secondary index name %q", name)
	}
	if extract == nil {
		return nil, fmt.Errorf("ipa: secondary index %q needs an extract function", name)
	}
	if err := t.db.acquire(); err != nil {
		return nil, err
	}
	defer t.db.release()

	db := t.db
	db.mu.Lock()
	if _, dup := db.secondaryByName[t.name+"."+name]; dup {
		db.mu.Unlock()
		return nil, fmt.Errorf("%w: %q on table %q", ErrIndexExists, name, t.name)
	}
	id := db.nextObjID
	db.nextObjID++
	idxScheme := db.cfg.IndexScheme.internal()
	if !idxScheme.Enabled() {
		idxScheme = db.regions.For(t.id).Scheme
	}
	if db.cfg.WriteMode == Traditional {
		idxScheme = core.Disabled
	}
	db.regions.Assign(id, region.Region{
		Name:      t.name + "." + name,
		Scheme:    idxScheme,
		FlashMode: db.regions.Default().FlashMode,
		Kind:      region.KindIndex,
	})
	s := newSecondaryIndex(t, name, id, extract)
	db.secondaryByID[id] = s
	db.secondaryByName[t.name+"."+name] = s
	db.mu.Unlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	// The index joins the catalog before the backfill: if the backfill
	// fails part-way (an injected power cut, a full device), entry pages
	// it already pushed to Flash must stay owned by a known object so
	// integrity checks and crash adoption keep working — the failure then
	// surfaces loudly as an incomplete index (VerifyIntegrity reports the
	// missing entries), not as orphaned pages.
	t.secondaries = append(t.secondaries, s)
	// Backfill from the live heap tuples (empty for indexes created
	// before the load phase, the recommended order).
	var backfillErr error
	err := t.heap.Scan(func(rid heap.RID, tuple []byte) bool {
		if backfillErr = s.addLocked(extract(tuple), rid.Pack()); backfillErr != nil {
			return false
		}
		return true
	})
	if err == nil {
		err = backfillErr
	}
	if err != nil {
		return nil, fmt.Errorf("ipa: backfill secondary index %q: %w", name, err)
	}
	return s, nil
}

// newSecondaryIndex constructs the in-memory object (no backfill, no
// registration); Reopen uses it to recreate crashed indexes.
func newSecondaryIndex(t *Table, name string, id uint32, extract ExtractFunc) *SecondaryIndex {
	return &SecondaryIndex{
		table:   t,
		name:    name,
		id:      id,
		extract: extract,
		file:    index.NewSecondary(t.db.store, t.db.pool, id),
		keys:    btree.New(),
		rids:    make(map[int64]map[uint64]struct{}),
		stale:   make(map[secPair]uint64),
	}
}

// SecondaryIndex returns the named secondary index of the table.
func (t *Table) SecondaryIndex(name string) (*SecondaryIndex, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, s := range t.secondaries {
		if s.name == name {
			return s, true
		}
	}
	return nil, false
}

// SecondaryIndexes returns the names of the table's secondary indexes in
// creation order.
func (t *Table) SecondaryIndexes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.secondaries))
	for i, s := range t.secondaries {
		out[i] = s.name
	}
	return out
}

// secondarySnapshot returns the current secondary indexes without holding
// the table mutex across any per-index work.
func (t *Table) secondarySnapshot() []*SecondaryIndex {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.secondaries) == 0 {
		return nil
	}
	return append([]*SecondaryIndex(nil), t.secondaries...)
}

// GetBySecondary returns copies of every tuple whose extracted key equals
// key in the named secondary index, in RID order, as of one statement
// snapshot — no record locks, uncommitted changes never visible. Each
// candidate's secondary key is re-extracted from the version actually
// resolved, so a concurrent update moving a tuple between keys is seen on
// exactly one side of the move. A key with no entries yields an empty
// result, not an error.
func (t *Table) GetBySecondary(indexName string, key int64) ([][]byte, error) {
	s, ok := t.SecondaryIndex(indexName)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrIndexNotFound, t.name, indexName)
	}
	if err := t.db.checkOpen(); err != nil {
		return nil, err
	}
	var out [][]byte
	err := t.db.snapshotted(func(snap uint64) error {
		t.mu.RLock()
		pairs := s.pairsLocked(key, key+1, nil)
		t.mu.RUnlock()
		return t.scanPairs(pairs, snap, s.extract, func(_ int64, tuple []byte) bool {
			out = append(out, tuple)
			return true
		})
	})
	return out, err
}

// ScanSecondary calls fn for every (secondary key, tuple) with a key in
// [from, to), keys ascending (RID order within one key), until fn returns
// false. Like ScanRange, the whole scan reads at one statement snapshot
// (with per-row key re-extraction, see GetBySecondary) and the close gate
// is never held across fn.
func (t *Table) ScanSecondary(indexName string, from, to int64, fn func(key int64, tuple []byte) bool) error {
	s, ok := t.SecondaryIndex(indexName)
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrIndexNotFound, t.name, indexName)
	}
	if err := t.db.checkOpen(); err != nil {
		return err
	}
	return t.db.snapshotted(func(snap uint64) error {
		t.mu.RLock()
		pairs := s.pairsLocked(from, to, nil)
		t.mu.RUnlock()
		return t.scanPairs(pairs, snap, s.extract, fn)
	})
}
