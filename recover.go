package ipa

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ipa/internal/core"
	"ipa/internal/flashdev"
	"ipa/internal/ftl"
	"ipa/internal/heap"
	"ipa/internal/nand"
	"ipa/internal/page"
	"ipa/internal/region"
	"ipa/internal/txn"
	"ipa/internal/wal"
)

// CrashImage is what survives a power cut: the Flash device contents, the
// durable prefix of the write-ahead log and the catalog description (which
// a real system would store in a system table on the device itself). It is
// produced by DB.Crash and consumed by Reopen.
type CrashImage struct {
	cfg        Config
	dev        *flashdev.Device
	records    []wal.Record
	flushedLSN uint64
	lastTxnID  uint64
	tables     []tableSpec
}

// tableSpec is the durable description of one table.
type tableSpec struct {
	name      string
	id        uint32
	tupleSize int
	scheme    core.Scheme
}

// Crash simulates the host side of a power cut: the database is poisoned
// (every subsequent operation fails with ErrClosed) WITHOUT flushing dirty
// buffers, and the surviving state — the Flash image, the durable log
// records and the catalog — is captured for Reopen. Unlike Close, nothing
// in volatile memory is saved.
//
// Reopen rebuilds the primary-key indexes from the tuples themselves, so
// crash-recoverable tables must store their int64 key little-endian in the
// first 8 tuple bytes (the convention all bundled workloads follow), and
// all data must be written through transactions so the write-ahead log
// covers it.
func (db *DB) Crash() *CrashImage {
	db.closeOnce.Do(func() {
		db.gate.Lock()
		db.closed.Store(true)
		db.gate.Unlock()
		// No flush: a power cut saves nothing.
	})
	db.mu.Lock()
	specs := make([]tableSpec, 0, len(db.tablesByID))
	for id, t := range db.tablesByID {
		specs = append(specs, tableSpec{
			name:      t.name,
			id:        id,
			tupleSize: t.tupleSize,
			scheme:    db.regions.For(id).Scheme,
		})
	}
	db.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].id < specs[j].id })
	return &CrashImage{
		cfg:        db.cfg,
		dev:        db.dev,
		records:    db.log.DurableRecords(),
		flushedLSN: db.log.FlushedLSN(),
		lastTxnID:  db.txns.LastTxnID(),
		tables:     specs,
	}
}

// Reopen opens a database on the remains of a crash: it power-cycles the
// device, rebuilds the FTL mapping from the OOB tags on Flash (newest valid
// copy of every logical page wins), scrubs pages carrying torn in-place
// appends, recreates the catalog, replays the durable write-ahead log
// (analysis, redo of committed inserts and updates, undo of losers) and
// rebuilds the primary-key indexes from the recovered heaps. On success all
// committed transactions are visible, all losers are rolled back and the
// database is fully usable.
//
// Reopen may itself be interrupted by an armed fault plan (a crash during
// recovery); recovery is idempotent, so calling Reopen on the same image
// again continues from the surviving state.
func Reopen(img *CrashImage) (*DB, error) {
	cfg := img.cfg
	if cfg.Faults != nil {
		cfg.Faults.PowerCycle()
	}
	flashMode := cfg.FlashMode.internal()
	if cfg.SLCCells {
		flashMode = nand.ModeSLC
	}
	f, report, err := ftl.Rebuild(img.dev, cfg.ftlConfig(flashMode))
	if err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	log := wal.NewFromRecords(img.records, img.flushedLSN)
	db, err := assemble(cfg, img.dev, f, log, txn.NewManagerAt(log, img.lastTxnID))
	if err != nil {
		return nil, err
	}
	// Recreate the catalog with the original object identifiers so the
	// region assignments and page ownership line up with the Flash image.
	for _, spec := range img.tables {
		db.regions.Assign(spec.id, region.Region{
			Name:      spec.name,
			Scheme:    spec.scheme,
			FlashMode: db.regions.Default().FlashMode,
		})
		t := newTable(db, spec.name, spec.id, spec.tupleSize)
		db.tables[spec.name] = t
		db.tablesByID[spec.id] = t
		if spec.id >= db.nextObjID {
			db.nextObjID = spec.id + 1
		}
	}
	// New page identifiers must not collide with any page on Flash or in
	// the log (a page the crash took before its first flush still has
	// insert records that will recreate it).
	floor := uint64(0)
	if report.MaxLBA >= 0 {
		floor = uint64(report.MaxLBA) + 1
	}
	for _, r := range img.records {
		if (r.Type == wal.RecInsert || r.Type == wal.RecUpdate) && r.PageID+1 > floor {
			floor = r.PageID + 1
		}
	}
	db.store.EnsureAllocated(floor)
	// Scrub pages whose winning copy carries a torn append before any
	// ECC-checked read touches them.
	for _, lba := range report.Scrub {
		if err := db.store.ScrubPage(uint64(lba)); err != nil {
			return nil, fmt.Errorf("ipa: reopen: %w", err)
		}
	}
	if err := db.adoptSurvivingPages(floor); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	if err := db.recoverReplay(); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	if err := db.rebuildIndexes(); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	if err := db.pool.FlushAll(); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	return db, nil
}

// adoptSurvivingPages assigns every mapped logical page to its owning
// table's heap file, in ascending page order (allocation order).
func (db *DB) adoptSurvivingPages(floor uint64) error {
	perTable := make(map[uint32][]uint64)
	buf := make([]byte, db.cfg.PageSize)
	for lba := 0; lba < db.ftl.Capacity() && uint64(lba) < floor; lba++ {
		if !db.ftl.Mapped(lba) {
			continue
		}
		if err := db.ftl.ReadPage(lba, buf); err != nil {
			return fmt.Errorf("page %d unreadable: %w", lba, err)
		}
		pg, err := page.Wrap(buf)
		if err != nil {
			return fmt.Errorf("page %d: %w", lba, err)
		}
		perTable[pg.ObjectID()] = append(perTable[pg.ObjectID()], uint64(lba))
	}
	for objID, pids := range perTable {
		t, ok := db.tablesByID[objID]
		if !ok {
			return fmt.Errorf("page(s) %v owned by unknown object %d", pids, objID)
		}
		t.heap.AdoptPages(pids)
	}
	return nil
}

// rebuildIndexes reconstructs every table's primary-key index and live
// tuple count by scanning the recovered heap pages. Keys are the first 8
// tuple bytes (little-endian int64).
func (db *DB) rebuildIndexes() error {
	db.mu.Lock()
	tables := make([]*Table, 0, len(db.tablesByID))
	for _, t := range db.tablesByID {
		tables = append(tables, t)
	}
	db.mu.Unlock()
	for _, t := range tables {
		if t.tupleSize < 8 {
			return fmt.Errorf("table %q: tuples of %d bytes cannot carry the primary key", t.name, t.tupleSize)
		}
		var count uint64
		err := t.heap.Scan(func(rid heap.RID, tuple []byte) bool {
			key := int64(binary.LittleEndian.Uint64(tuple[:8]))
			t.mu.Lock()
			t.pk.Insert(key, rid.Pack())
			t.mu.Unlock()
			count++
			return true
		})
		if err != nil {
			return fmt.Errorf("table %q: %w", t.name, err)
		}
		t.heap.SetCount(count)
	}
	return nil
}

// VerifyIntegrity checks the storage stack end to end: the FTL translation
// invariants hold, every mapped page reads back ECC-clean, carries the page
// magic and belongs to a known table. The crash-torture harness runs it
// after every recovery.
func (db *DB) VerifyIntegrity() error {
	if err := db.ftl.CheckConsistency(); err != nil {
		return fmt.Errorf("ipa: %w", err)
	}
	buf := make([]byte, db.cfg.PageSize)
	for lba := 0; lba < db.ftl.Capacity(); lba++ {
		if !db.ftl.Mapped(lba) {
			continue
		}
		if err := db.ftl.ReadPage(lba, buf); err != nil {
			return fmt.Errorf("ipa: page %d unreadable: %w", lba, err)
		}
		pg, err := page.Wrap(buf)
		if err != nil {
			return fmt.Errorf("ipa: page %d: %w", lba, err)
		}
		db.mu.Lock()
		_, known := db.tablesByID[pg.ObjectID()]
		db.mu.Unlock()
		if !known {
			return fmt.Errorf("ipa: page %d owned by unknown object %d", lba, pg.ObjectID())
		}
	}
	return nil
}
