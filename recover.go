package ipa

import (
	"fmt"
	"sort"
	"time"

	"ipa/internal/core"
	"ipa/internal/flashdev"
	"ipa/internal/ftl"
	"ipa/internal/heap"
	"ipa/internal/index"
	"ipa/internal/nand"
	"ipa/internal/page"
	"ipa/internal/region"
	"ipa/internal/txn"
	"ipa/internal/wal"
)

// CrashImage is what survives a power cut: the Flash device contents, the
// durable prefix of the write-ahead log and the catalog description (which
// a real system would store in a system table on the device itself). It is
// produced by DB.Crash and consumed by Reopen.
type CrashImage struct {
	cfg        Config
	dev        *flashdev.Device
	records    []wal.Record
	flushedLSN uint64
	lastTxnID  uint64
	tables     []tableSpec
}

// tableSpec is the durable description of one table, its primary-key
// index and its secondary indexes.
type tableSpec struct {
	name        string
	id          uint32
	idxID       uint32
	tupleSize   int
	scheme      core.Scheme
	idxScheme   core.Scheme
	secondaries []secondarySpec
}

// secondarySpec is the durable description of one secondary index. The
// extract function rides along in process memory — a real system would
// store the indexed column in a system table; the simulated crash stays
// within one process, so the function pointer survives like the rest of
// the catalog description.
type secondarySpec struct {
	name    string
	id      uint32
	scheme  core.Scheme
	extract ExtractFunc
}

// Crash simulates the host side of a power cut: the database is poisoned
// (every subsequent operation fails with ErrClosed) WITHOUT flushing dirty
// buffers, and the surviving state — the Flash image, the durable log
// records and the catalog — is captured for Reopen. Unlike Close, nothing
// in volatile memory is saved.
//
// Reopen recovers the primary-key and secondary indexes from their
// surviving entry pages plus the durable write-ahead log; it never scans
// the heaps. All data must therefore be written through transactions so
// the write-ahead log covers it — entries of non-transactional inserts
// (including secondary-index backfills over pre-existing rows) survive
// only if their entry page happened to be flushed (e.g. by Close or
// FlushAll).
func (db *DB) Crash() *CrashImage {
	db.closeOnce.Do(func() {
		db.stopCheckpointer()
		db.stopOpsSampler()
		db.gate.Lock()
		db.closed.Store(true)
		db.gate.Unlock()
		// No flush: a power cut saves nothing.
	})
	db.mu.Lock()
	specs := make([]tableSpec, 0, len(db.tablesByID))
	for id, t := range db.tablesByID {
		spec := tableSpec{
			name:      t.name,
			id:        id,
			idxID:     t.idxID,
			tupleSize: t.tupleSize,
			scheme:    db.regions.For(id).Scheme,
			idxScheme: db.regions.For(t.idxID).Scheme,
		}
		t.mu.RLock()
		for _, s := range t.secondaries {
			spec.secondaries = append(spec.secondaries, secondarySpec{
				name:    s.name,
				id:      s.id,
				scheme:  db.regions.For(s.id).Scheme,
				extract: s.extract,
			})
		}
		t.mu.RUnlock()
		specs = append(specs, spec)
	}
	db.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].id < specs[j].id })
	return &CrashImage{
		cfg:        db.cfg,
		dev:        db.dev,
		records:    db.log.DurableRecords(),
		flushedLSN: db.log.FlushedLSN(),
		lastTxnID:  db.txns.LastTxnID(),
		tables:     specs,
	}
}

// RecoveryStats describes the cost of the last crash recovery (Reopen):
// the restart time in wall-clock and virtual (device) terms, the physical
// pages the chip-parallel FTL rebuild scanned, and the redo, compensation
// and undo operations the log replay issued — O(records since the last
// checkpoint), the quantity fuzzy checkpoints bound.
type RecoveryStats struct {
	Wall          time.Duration `json:"wall_ns"`
	Virtual       time.Duration `json:"virtual_ns"`
	PagesScanned  int           `json:"pages_scanned"`
	RecordsRedone uint64        `json:"records_redone"`
	Parallelism   int           `json:"parallelism"`
	CheckpointLSN uint64        `json:"checkpoint_lsn"`
}

// RecoveryStats returns the cost of the Reopen that produced this database
// (zero for a database created by Open).
func (db *DB) RecoveryStats() RecoveryStats { return db.recoveryStats }

// Reopen opens a database on the remains of a crash: it power-cycles the
// device, rebuilds the FTL mapping from the OOB tags on Flash (newest valid
// copy of every logical page wins, one scan goroutine per chip), scrubs
// pages carrying torn in-place appends, recreates the catalog, adopts the
// surviving heap and index entry pages (primary-key and secondary alike),
// reads the durable checkpoint state from the catalog page, and replays
// the retained write-ahead log — which a fuzzy checkpoint has truncated to
// the records since the last checkpoint — across
// Config.RecoveryParallelism redo workers (analysis, forward repeat
// history with compensation, reverse undo of losers). Every index comes
// from its own entry pages plus the log — the heaps are never scanned. On
// success all committed transactions are visible, all losers are rolled
// back and the database is fully usable.
//
// Reopen may itself be interrupted by an armed fault plan (a crash during
// recovery); recovery is idempotent, so calling Reopen on the same image
// again continues from the surviving state.
func Reopen(img *CrashImage) (*DB, error) {
	wallStart := time.Now()
	virtStart := img.dev.Now()
	cfg := img.cfg
	if cfg.Faults != nil {
		cfg.Faults.PowerCycle()
	}
	flashMode := cfg.FlashMode.internal()
	if cfg.SLCCells {
		flashMode = nand.ModeSLC
	}
	f, report, err := ftl.Rebuild(img.dev, cfg.ftlConfig(flashMode))
	if err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	log := wal.NewFromRecords(img.records, img.flushedLSN)
	db, err := assemble(cfg, img.dev, f, log, txn.NewManagerAt(log, img.lastTxnID))
	if err != nil {
		return nil, err
	}
	// Restart the commit-timestamp oracle past the highest durable commit
	// timestamp (carried in each RecCommit's Key field). The version cache
	// starts empty — a crash kills every snapshot, so recovery
	// conservatively truncates all version chains to their newest
	// committed version, which is exactly the heap image the redo/undo
	// passes below produce.
	db.txns.Oracle().StartAt(wal.MaxCommitTS(img.records))
	// Recreate the catalog with the original object identifiers so the
	// region assignments and page ownership line up with the Flash image.
	for _, spec := range img.tables {
		db.regions.Assign(spec.id, region.Region{
			Name:      spec.name,
			Scheme:    spec.scheme,
			FlashMode: db.regions.Default().FlashMode,
		})
		db.regions.Assign(spec.idxID, region.Region{
			Name:      spec.name + ".pk",
			Scheme:    spec.idxScheme,
			FlashMode: db.regions.Default().FlashMode,
			Kind:      region.KindIndex,
		})
		t := newTable(db, spec.name, spec.id, spec.idxID, spec.tupleSize)
		db.tables[spec.name] = t
		db.tablesByID[spec.id] = t
		db.indexesByID[spec.idxID] = t
		for _, id := range []uint32{spec.id, spec.idxID} {
			if id >= db.nextObjID {
				db.nextObjID = id + 1
			}
		}
		for _, ss := range spec.secondaries {
			db.regions.Assign(ss.id, region.Region{
				Name:      spec.name + "." + ss.name,
				Scheme:    ss.scheme,
				FlashMode: db.regions.Default().FlashMode,
				Kind:      region.KindIndex,
			})
			s := newSecondaryIndex(t, ss.name, ss.id, ss.extract)
			t.secondaries = append(t.secondaries, s)
			db.secondaryByID[ss.id] = s
			db.secondaryByName[spec.name+"."+ss.name] = s
			if ss.id >= db.nextObjID {
				db.nextObjID = ss.id + 1
			}
		}
	}
	// New page identifiers must not collide with any page on Flash or in
	// the log (a page the crash took before its first flush still has
	// insert records that will recreate it).
	floor := uint64(0)
	if report.MaxLBA >= 0 {
		floor = uint64(report.MaxLBA) + 1
	}
	for _, r := range img.records {
		switch r.Type {
		case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
			if r.PageID+1 > floor {
				floor = r.PageID + 1
			}
		}
	}
	db.store.EnsureAllocated(floor)
	// Scrub pages whose winning copy carries a torn append before any
	// ECC-checked read touches them.
	for _, lba := range report.Scrub {
		if err := db.store.ScrubPage(uint64(lba)); err != nil {
			return nil, fmt.Errorf("ipa: reopen: %w", err)
		}
	}
	if err := db.adoptSurvivingPages(floor); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	if err := db.loadCatalog(); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	// Prime each primary-key B-tree from the index entries that reached
	// Flash; the log replay below then overlays the exact committed
	// history (redo) and strips rolled-back residue (undo). No heap scan.
	if err := db.loadIndexes(); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	if _, err := db.recoverReplay(); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	// The live-tuple counts follow from the recovered indexes: every live
	// tuple owns exactly one live index entry.
	for _, t := range db.snapshotTables() {
		t.mu.RLock()
		t.heap.SetCount(uint64(t.pk.Len()))
		t.mu.RUnlock()
	}
	if err := db.pool.FlushAll(); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	db.walBytesAtCkpt.Store(db.log.BytesWritten())
	db.recoveryStats = RecoveryStats{
		Wall:          time.Since(wallStart),
		Virtual:       db.dev.Now() - virtStart,
		PagesScanned:  report.PagesScanned,
		RecordsRedone: db.recoveryRedo.Load(),
		Parallelism:   cfg.RecoveryParallelism,
		CheckpointLSN: db.checkpointLSN.Load(),
	}
	db.startCheckpointer()
	db.startOpsSampler()
	return db, nil
}

// snapshotTables returns the current tables without holding the catalog
// mutex across any per-table work.
func (db *DB) snapshotTables() []*Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	tables := make([]*Table, 0, len(db.tablesByID))
	for _, t := range db.tablesByID {
		tables = append(tables, t)
	}
	return tables
}

// loadIndexes rebuilds every table's entry locations and volatile
// directories — the primary-key B-tree and each secondary index — from
// the index entry pages that survived on Flash.
func (db *DB) loadIndexes() error {
	for _, t := range db.snapshotTables() {
		entries, err := t.idx.Load()
		if err != nil {
			return fmt.Errorf("index of table %q: %w", t.name, err)
		}
		t.mu.Lock()
		for _, e := range entries {
			t.pk.Insert(e.Key, e.Value)
		}
		secs := append([]*SecondaryIndex(nil), t.secondaries...)
		t.mu.Unlock()
		for _, s := range secs {
			sentries, err := s.file.Load()
			if err != nil {
				return fmt.Errorf("secondary index %q of table %q: %w", s.name, t.name, err)
			}
			t.mu.Lock()
			for _, e := range sentries {
				s.noteLocked(e.Key, e.Value)
			}
			t.mu.Unlock()
		}
	}
	return nil
}

// adoptSurvivingPages assigns every mapped logical page to its owning
// table's heap file or index file, in ascending page order (allocation
// order).
func (db *DB) adoptSurvivingPages(floor uint64) error {
	perObject := make(map[uint32][]uint64)
	buf := make([]byte, db.cfg.PageSize)
	for lba := 0; lba < db.ftl.Capacity() && uint64(lba) < floor; lba++ {
		if !db.ftl.Mapped(lba) {
			continue
		}
		if err := db.ftl.ReadPage(lba, buf); err != nil {
			return fmt.Errorf("page %d unreadable: %w", lba, err)
		}
		pg, err := page.Wrap(buf)
		if err != nil {
			return fmt.Errorf("page %d: %w", lba, err)
		}
		perObject[pg.ObjectID()] = append(perObject[pg.ObjectID()], uint64(lba))
	}
	for objID, pids := range perObject {
		if objID == catalogObjectID {
			// The checkpoint catalog is a single page; remember it so the
			// checkpoint state can be decoded and later checkpoints
			// overwrite it in place.
			if len(pids) != 1 {
				return fmt.Errorf("catalog object owns %d pages, want 1", len(pids))
			}
			db.catalogPID.Store(pids[0] + 1)
			continue
		}
		if t, ok := db.tablesByID[objID]; ok {
			t.heap.AdoptPages(pids)
			continue
		}
		if t, ok := db.indexesByID[objID]; ok {
			t.idx.AdoptPages(pids)
			continue
		}
		if s, ok := db.secondaryByID[objID]; ok {
			s.file.AdoptPages(pids)
			continue
		}
		return fmt.Errorf("page(s) %v owned by unknown object %d", pids, objID)
	}
	return nil
}

// loadCatalog decodes the surviving checkpoint state (if any): the last
// checkpoint's LSN becomes the CheckpointLSN gauge and its max commit
// timestamp bumps the oracle — after truncation the retained log may hold
// no RecCommit records at all, so the catalog is the only witness of how
// far commit timestamps had advanced.
func (db *DB) loadCatalog() error {
	enc := db.catalogPID.Load()
	if enc == 0 {
		return nil
	}
	pid := enc - 1
	h, err := db.pool.Fetch(pid)
	if err != nil {
		return fmt.Errorf("catalog page %d: %w", pid, err)
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return fmt.Errorf("catalog page %d: %w", pid, err)
	}
	tuple, err := pg.Tuple(0)
	if err != nil {
		return fmt.Errorf("catalog page %d: %w", pid, err)
	}
	ckptLSN, cut, maxTS, ok := decodeCatalogTuple(tuple)
	if !ok {
		return fmt.Errorf("catalog page %d: bad magic", pid)
	}
	db.checkpointLSN.Store(ckptLSN)
	db.ckptCut.Store(cut)
	db.txns.Oracle().StartAt(maxTS)
	return nil
}

// VerifyIntegrity checks the storage stack end to end: the FTL translation
// invariants hold, every mapped page reads back ECC-clean, carries the page
// magic and belongs to a known table or index, and — the index/heap
// cross-check — every table's persistent primary-key index describes
// exactly its live heap tuples (same cardinality, every entry resolving to
// a distinct live RID) and every secondary index describes exactly the
// (extracted key, RID) pairs of the live tuples (no dangling entries, no
// missing ones). Index entries retained purely for MVCC snapshot readers
// (zombies of committed deletes, stale secondary pairs of committed moves)
// are tolerated only when the version cache can justify them; right after
// Reopen the cache is empty, so the cross-check degenerates to the exact
// bijection. The heap scan lives here, as a verification cross-check
// only; the recovery path itself never scans heaps. The crash-torture
// harness runs this after every recovery.
func (db *DB) VerifyIntegrity() error {
	if err := db.ftl.CheckConsistency(); err != nil {
		return fmt.Errorf("ipa: %w", err)
	}
	buf := make([]byte, db.cfg.PageSize)
	for lba := 0; lba < db.ftl.Capacity(); lba++ {
		if !db.ftl.Mapped(lba) {
			continue
		}
		if err := db.ftl.ReadPage(lba, buf); err != nil {
			return fmt.Errorf("ipa: page %d unreadable: %w", lba, err)
		}
		pg, err := page.Wrap(buf)
		if err != nil {
			return fmt.Errorf("ipa: page %d: %w", lba, err)
		}
		db.mu.Lock()
		_, knownTable := db.tablesByID[pg.ObjectID()]
		_, knownIndex := db.indexesByID[pg.ObjectID()]
		_, knownSecondary := db.secondaryByID[pg.ObjectID()]
		db.mu.Unlock()
		if !knownTable && !knownIndex && !knownSecondary && pg.ObjectID() != catalogObjectID {
			return fmt.Errorf("ipa: page %d owned by unknown object %d", lba, pg.ObjectID())
		}
	}
	for _, t := range db.snapshotTables() {
		if err := t.verifyIndexAgainstHeap(); err != nil {
			return fmt.Errorf("ipa: table %q: %w", t.name, err)
		}
	}
	return nil
}

// verifyIndexAgainstHeap scans the table's heap (the cross-check formerly
// performed by the index rebuild) and confirms that the primary-key index
// is a bijection onto the live tuples and that every secondary index is a
// bijection onto the pairs (extracted key, RID) of the live tuples — each
// live tuple appears under exactly its extracted key, and no entry dangles.
// Entries retained for MVCC snapshot readers are the one sanctioned
// exception: a volatile pk entry whose tuple is gone passes only when the
// version cache still carries a chain for its RID (a committed-delete
// zombie awaiting GC, or an in-flight transactional delete), and such
// entries must already be absent from the persistent file.
func (t *Table) verifyIndexAgainstHeap() error {
	secs := t.secondarySnapshot()
	live := make(map[uint64]bool)
	wantSec := make([]map[index.Entry]bool, len(secs))
	for i := range wantSec {
		wantSec[i] = make(map[index.Entry]bool)
	}
	err := t.heap.Scan(func(rid heap.RID, tuple []byte) bool {
		live[rid.Pack()] = true
		for i, s := range secs {
			wantSec[i][index.Entry{Key: s.extract(tuple), Value: rid.Pack()}] = true
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("heap scan: %w", err)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	vc := t.db.txns.Versions()
	seen := make(map[uint64]bool, len(live))
	retained, zombies := 0, 0
	var verr error
	t.pk.Ascend(func(key int64, v uint64) bool {
		if !live[v] {
			if !vc.HasChain(v) {
				verr = fmt.Errorf("key %d maps to RID %s with no live tuple", key, heap.Unpack(v))
				return false
			}
			// Snapshot-retained: a committed-delete zombie awaiting GC (its
			// persistent entry was cleared at commit) or an in-flight
			// transactional delete (persistent entry still present).
			retained++
			if vc.CommittedDeleted(v) {
				zombies++
			}
			return true
		}
		if seen[v] {
			verr = fmt.Errorf("RID %s indexed twice", heap.Unpack(v))
			return false
		}
		seen[v] = true
		return true
	})
	if verr != nil {
		return verr
	}
	if t.pk.Len() != len(live)+retained {
		return fmt.Errorf("index carries %d keys (%d snapshot-retained), heap carries %d live tuples",
			t.pk.Len(), retained, len(live))
	}
	if n := t.idx.Len(); n != t.pk.Len()-zombies {
		return fmt.Errorf("persistent index file carries %d entries, B-tree implies %d (%d committed-delete zombies)",
			n, t.pk.Len()-zombies, zombies)
	}
	for i, s := range secs {
		if err := s.verifyAgainstLocked(wantSec[i]); err != nil {
			return fmt.Errorf("secondary index %q: %w", s.name, err)
		}
	}
	return nil
}

// verifyAgainstLocked checks the secondary index against the expected
// (key, RID) pair set derived from the live heap tuples. Volatile pairs
// outside that set are tolerated only when they are retained for snapshot
// readers: stale-marked pairs of committed removals (which must already be
// gone from the persistent file) or pairs whose RID still carries an
// in-flight version chain. Caller holds the table mutex (read).
func (s *SecondaryIndex) verifyAgainstLocked(want map[index.Entry]bool) error {
	vc := s.table.db.txns.Versions()
	matched := 0
	for key, set := range s.rids {
		for v := range set {
			e := index.Entry{Key: key, Value: v}
			if want[e] {
				if !s.file.Contains(key, v) {
					return fmt.Errorf("entry (key %d, RID %s) missing from the persistent file", key, heap.Unpack(v))
				}
				matched++
				continue
			}
			if _, stale := s.stale[secPair{key: key, rid: v}]; stale {
				if s.file.Contains(key, v) {
					return fmt.Errorf("snapshot-retained entry (key %d, RID %s) still in the persistent file", key, heap.Unpack(v))
				}
				continue
			}
			if vc.HasChain(v) {
				// In-flight transactional delete or move; the pair's fate is
				// decided at commit or abort.
				continue
			}
			return fmt.Errorf("entry (key %d, RID %s) has no matching live tuple", key, heap.Unpack(v))
		}
	}
	if matched != len(want) {
		return fmt.Errorf("directory carries %d current entries, heap extraction yields %d", matched, len(want))
	}
	if n := s.file.Len(); n != len(want) {
		return fmt.Errorf("persistent entry file carries %d entries, heap extraction yields %d", n, len(want))
	}
	return nil
}
