package ipa

import (
	"fmt"
	"sort"

	"ipa/internal/core"
	"ipa/internal/flashdev"
	"ipa/internal/ftl"
	"ipa/internal/heap"
	"ipa/internal/nand"
	"ipa/internal/page"
	"ipa/internal/region"
	"ipa/internal/txn"
	"ipa/internal/wal"
)

// CrashImage is what survives a power cut: the Flash device contents, the
// durable prefix of the write-ahead log and the catalog description (which
// a real system would store in a system table on the device itself). It is
// produced by DB.Crash and consumed by Reopen.
type CrashImage struct {
	cfg        Config
	dev        *flashdev.Device
	records    []wal.Record
	flushedLSN uint64
	lastTxnID  uint64
	tables     []tableSpec
}

// tableSpec is the durable description of one table and its primary-key
// index.
type tableSpec struct {
	name      string
	id        uint32
	idxID     uint32
	tupleSize int
	scheme    core.Scheme
	idxScheme core.Scheme
}

// Crash simulates the host side of a power cut: the database is poisoned
// (every subsequent operation fails with ErrClosed) WITHOUT flushing dirty
// buffers, and the surviving state — the Flash image, the durable log
// records and the catalog — is captured for Reopen. Unlike Close, nothing
// in volatile memory is saved.
//
// Reopen recovers the primary-key indexes from their surviving entry pages
// plus the durable write-ahead log; it never scans the heaps. All data
// must therefore be written through transactions so the write-ahead log
// covers it — entries of non-transactional inserts survive only if their
// entry page happened to be flushed (e.g. by Close or FlushAll).
func (db *DB) Crash() *CrashImage {
	db.closeOnce.Do(func() {
		db.gate.Lock()
		db.closed.Store(true)
		db.gate.Unlock()
		// No flush: a power cut saves nothing.
	})
	db.mu.Lock()
	specs := make([]tableSpec, 0, len(db.tablesByID))
	for id, t := range db.tablesByID {
		specs = append(specs, tableSpec{
			name:      t.name,
			id:        id,
			idxID:     t.idxID,
			tupleSize: t.tupleSize,
			scheme:    db.regions.For(id).Scheme,
			idxScheme: db.regions.For(t.idxID).Scheme,
		})
	}
	db.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].id < specs[j].id })
	return &CrashImage{
		cfg:        db.cfg,
		dev:        db.dev,
		records:    db.log.DurableRecords(),
		flushedLSN: db.log.FlushedLSN(),
		lastTxnID:  db.txns.LastTxnID(),
		tables:     specs,
	}
}

// Reopen opens a database on the remains of a crash: it power-cycles the
// device, rebuilds the FTL mapping from the OOB tags on Flash (newest valid
// copy of every logical page wins), scrubs pages carrying torn in-place
// appends, recreates the catalog, adopts the surviving heap and index
// entry pages, and replays the durable write-ahead log (analysis, redo of
// committed inserts/updates/deletes and logical index operations, undo of
// losers). The primary-key indexes come from their own entry pages plus
// the log — the heaps are never scanned. On success all committed
// transactions are visible, all losers are rolled back and the database is
// fully usable.
//
// Reopen may itself be interrupted by an armed fault plan (a crash during
// recovery); recovery is idempotent, so calling Reopen on the same image
// again continues from the surviving state.
func Reopen(img *CrashImage) (*DB, error) {
	cfg := img.cfg
	if cfg.Faults != nil {
		cfg.Faults.PowerCycle()
	}
	flashMode := cfg.FlashMode.internal()
	if cfg.SLCCells {
		flashMode = nand.ModeSLC
	}
	f, report, err := ftl.Rebuild(img.dev, cfg.ftlConfig(flashMode))
	if err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	log := wal.NewFromRecords(img.records, img.flushedLSN)
	db, err := assemble(cfg, img.dev, f, log, txn.NewManagerAt(log, img.lastTxnID))
	if err != nil {
		return nil, err
	}
	// Recreate the catalog with the original object identifiers so the
	// region assignments and page ownership line up with the Flash image.
	for _, spec := range img.tables {
		db.regions.Assign(spec.id, region.Region{
			Name:      spec.name,
			Scheme:    spec.scheme,
			FlashMode: db.regions.Default().FlashMode,
		})
		db.regions.Assign(spec.idxID, region.Region{
			Name:      spec.name + ".pk",
			Scheme:    spec.idxScheme,
			FlashMode: db.regions.Default().FlashMode,
			Kind:      region.KindIndex,
		})
		t := newTable(db, spec.name, spec.id, spec.idxID, spec.tupleSize)
		db.tables[spec.name] = t
		db.tablesByID[spec.id] = t
		db.indexesByID[spec.idxID] = t
		for _, id := range []uint32{spec.id, spec.idxID} {
			if id >= db.nextObjID {
				db.nextObjID = id + 1
			}
		}
	}
	// New page identifiers must not collide with any page on Flash or in
	// the log (a page the crash took before its first flush still has
	// insert records that will recreate it).
	floor := uint64(0)
	if report.MaxLBA >= 0 {
		floor = uint64(report.MaxLBA) + 1
	}
	for _, r := range img.records {
		switch r.Type {
		case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
			if r.PageID+1 > floor {
				floor = r.PageID + 1
			}
		}
	}
	db.store.EnsureAllocated(floor)
	// Scrub pages whose winning copy carries a torn append before any
	// ECC-checked read touches them.
	for _, lba := range report.Scrub {
		if err := db.store.ScrubPage(uint64(lba)); err != nil {
			return nil, fmt.Errorf("ipa: reopen: %w", err)
		}
	}
	if err := db.adoptSurvivingPages(floor); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	// Prime each primary-key B-tree from the index entries that reached
	// Flash; the log replay below then overlays the exact committed
	// history (redo) and strips rolled-back residue (undo). No heap scan.
	if err := db.loadIndexes(); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	if err := db.recoverReplay(); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	// The live-tuple counts follow from the recovered indexes: every live
	// tuple owns exactly one live index entry.
	for _, t := range db.snapshotTables() {
		t.mu.RLock()
		t.heap.SetCount(uint64(t.pk.Len()))
		t.mu.RUnlock()
	}
	if err := db.pool.FlushAll(); err != nil {
		return nil, fmt.Errorf("ipa: reopen: %w", err)
	}
	return db, nil
}

// snapshotTables returns the current tables without holding the catalog
// mutex across any per-table work.
func (db *DB) snapshotTables() []*Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	tables := make([]*Table, 0, len(db.tablesByID))
	for _, t := range db.tablesByID {
		tables = append(tables, t)
	}
	return tables
}

// loadIndexes rebuilds every table's entry locations and volatile B-tree
// from the index entry pages that survived on Flash.
func (db *DB) loadIndexes() error {
	for _, t := range db.snapshotTables() {
		entries, err := t.idx.Load()
		if err != nil {
			return fmt.Errorf("index of table %q: %w", t.name, err)
		}
		t.mu.Lock()
		for _, e := range entries {
			t.pk.Insert(e.Key, e.Value)
		}
		t.mu.Unlock()
	}
	return nil
}

// adoptSurvivingPages assigns every mapped logical page to its owning
// table's heap file or index file, in ascending page order (allocation
// order).
func (db *DB) adoptSurvivingPages(floor uint64) error {
	perObject := make(map[uint32][]uint64)
	buf := make([]byte, db.cfg.PageSize)
	for lba := 0; lba < db.ftl.Capacity() && uint64(lba) < floor; lba++ {
		if !db.ftl.Mapped(lba) {
			continue
		}
		if err := db.ftl.ReadPage(lba, buf); err != nil {
			return fmt.Errorf("page %d unreadable: %w", lba, err)
		}
		pg, err := page.Wrap(buf)
		if err != nil {
			return fmt.Errorf("page %d: %w", lba, err)
		}
		perObject[pg.ObjectID()] = append(perObject[pg.ObjectID()], uint64(lba))
	}
	for objID, pids := range perObject {
		if t, ok := db.tablesByID[objID]; ok {
			t.heap.AdoptPages(pids)
			continue
		}
		if t, ok := db.indexesByID[objID]; ok {
			t.idx.AdoptPages(pids)
			continue
		}
		return fmt.Errorf("page(s) %v owned by unknown object %d", pids, objID)
	}
	return nil
}

// VerifyIntegrity checks the storage stack end to end: the FTL translation
// invariants hold, every mapped page reads back ECC-clean, carries the page
// magic and belongs to a known table or index, and — the index/heap
// cross-check — every table's persistent primary-key index describes
// exactly its live heap tuples (same cardinality, every entry resolving to
// a distinct live RID). The heap scan lives here, as a verification
// cross-check only; the recovery path itself never scans heaps. The
// crash-torture harness runs this after every recovery.
func (db *DB) VerifyIntegrity() error {
	if err := db.ftl.CheckConsistency(); err != nil {
		return fmt.Errorf("ipa: %w", err)
	}
	buf := make([]byte, db.cfg.PageSize)
	for lba := 0; lba < db.ftl.Capacity(); lba++ {
		if !db.ftl.Mapped(lba) {
			continue
		}
		if err := db.ftl.ReadPage(lba, buf); err != nil {
			return fmt.Errorf("ipa: page %d unreadable: %w", lba, err)
		}
		pg, err := page.Wrap(buf)
		if err != nil {
			return fmt.Errorf("ipa: page %d: %w", lba, err)
		}
		db.mu.Lock()
		_, knownTable := db.tablesByID[pg.ObjectID()]
		_, knownIndex := db.indexesByID[pg.ObjectID()]
		db.mu.Unlock()
		if !knownTable && !knownIndex {
			return fmt.Errorf("ipa: page %d owned by unknown object %d", lba, pg.ObjectID())
		}
	}
	for _, t := range db.snapshotTables() {
		if err := t.verifyIndexAgainstHeap(); err != nil {
			return fmt.Errorf("ipa: table %q: %w", t.name, err)
		}
	}
	return nil
}

// verifyIndexAgainstHeap scans the table's heap (the cross-check formerly
// performed by the index rebuild) and confirms the primary-key index is a
// bijection onto the live tuples.
func (t *Table) verifyIndexAgainstHeap() error {
	live := make(map[uint64]bool)
	err := t.heap.Scan(func(rid heap.RID, tuple []byte) bool {
		live[rid.Pack()] = true
		return true
	})
	if err != nil {
		return fmt.Errorf("heap scan: %w", err)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pk.Len() != len(live) {
		return fmt.Errorf("index carries %d keys, heap carries %d live tuples", t.pk.Len(), len(live))
	}
	if n := t.idx.Len(); n != t.pk.Len() {
		return fmt.Errorf("persistent index file carries %d entries, B-tree carries %d keys", n, t.pk.Len())
	}
	seen := make(map[uint64]bool, len(live))
	var verr error
	t.pk.Ascend(func(key int64, v uint64) bool {
		if !live[v] {
			verr = fmt.Errorf("key %d maps to RID %s with no live tuple", key, heap.Unpack(v))
			return false
		}
		if seen[v] {
			verr = fmt.Errorf("RID %s indexed twice", heap.Unpack(v))
			return false
		}
		seen[v] = true
		return true
	})
	return verr
}
