// Package ipa is a storage engine with In-Place Appends (IPA) on simulated
// NAND Flash: a full reproduction of "In-Place Appends for Real: DBMS
// Overwrites on Flash without Erase" (Hardock et al., EDBT 2017).
//
// The engine bundles a behavioural NAND Flash simulator, a page-mapping
// FTL with garbage collection, an NSM slotted-page storage engine with a
// buffer pool, write-ahead logging and transactions, and the three write
// paths demonstrated in the paper:
//
//   - Traditional out-of-place page writes (the baseline),
//   - IPA for conventional SSDs over a block-device interface, and
//   - IPA for native Flash using the write_delta command.
//
// A minimal session looks like this:
//
//	db, _ := ipa.Open(ipa.Config{WriteMode: ipa.IPANativeFlash, Scheme: ipa.Scheme{N: 2, M: 4}})
//	defer db.Close()
//	accounts, _ := db.CreateTable("accounts", 64)
//	_ = accounts.Insert(1, make([]byte, 64))
//	tx := db.Begin()
//	_ = tx.UpdateAt(accounts, 1, 0, []byte{42})
//	_ = tx.Commit()
//	fmt.Println(db.Stats().InPlaceAppends)
package ipa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/buffer"
	"ipa/internal/core"
	"ipa/internal/flashdev"
	"ipa/internal/ftl"
	"ipa/internal/nand"
	"ipa/internal/page"
	"ipa/internal/region"
	"ipa/internal/storage"
	"ipa/internal/txn"
	"ipa/internal/wal"
)

// Scheme is the public N×M In-Place Appends configuration: at most N delta
// records per page, at most M changed bytes per record. The zero value
// disables IPA.
type Scheme struct {
	N int
	M int
}

// String renders the scheme in the paper's [N×M] notation.
func (s Scheme) String() string { return fmt.Sprintf("%dx%d", s.N, s.M) }

// Enabled reports whether the scheme enables in-place appends.
func (s Scheme) Enabled() bool { return s.N > 0 && s.M > 0 }

func (s Scheme) internal() core.Scheme { return core.Scheme{N: s.N, M: s.M} }

// WriteMode selects the write path used on dirty page evictions. The three
// modes correspond to the paper's demonstration scenarios.
type WriteMode int

const (
	// Traditional writes whole pages out-of-place (demo scenario 1).
	Traditional WriteMode = iota
	// IPAConventionalSSD writes whole pages (body + delta-record area)
	// over a block-device interface; the FTL appends in place when
	// possible (demo scenario 2).
	IPAConventionalSSD
	// IPANativeFlash transfers only delta records with the write_delta
	// command (demo scenario 3, the NoFTL architecture).
	IPANativeFlash
)

// String names the write mode.
func (m WriteMode) String() string {
	switch m {
	case Traditional:
		return "traditional"
	case IPAConventionalSSD:
		return "ipa-ssd"
	case IPANativeFlash:
		return "ipa-native"
	default:
		return fmt.Sprintf("WriteMode(%d)", int(m))
	}
}

func (m WriteMode) internal() storage.WriteMode {
	switch m {
	case IPAConventionalSSD:
		return storage.WriteIPASSD
	case IPANativeFlash:
		return storage.WriteIPANative
	default:
		return storage.WriteTraditional
	}
}

// FlashMode selects how MLC Flash is operated (Section 3 of the paper).
type FlashMode int

const (
	// MLCFull uses all MLC pages and allows appends everywhere (subject to
	// program interference); mainly for ablation.
	MLCFull FlashMode = iota
	// PSLC (pseudo-SLC) uses only LSB pages: half the capacity, SLC-grade
	// tolerance to program interference.
	PSLC
	// OddMLC uses the full capacity but appends only to LSB (odd) pages.
	OddMLC
	// SLCMode operates an SLC chip.
	SLCMode
)

// String names the flash mode as in the paper.
func (m FlashMode) String() string {
	switch m {
	case MLCFull:
		return "MLC"
	case PSLC:
		return "pSLC"
	case OddMLC:
		return "odd-MLC"
	case SLCMode:
		return "SLC"
	default:
		return fmt.Sprintf("FlashMode(%d)", int(m))
	}
}

func (m FlashMode) internal() nand.Mode {
	switch m {
	case PSLC:
		return nand.ModePSLC
	case OddMLC:
		return nand.ModeOddMLC
	case SLCMode:
		return nand.ModeSLC
	default:
		return nand.ModeMLCFull
	}
}

// Config configures a database instance.
type Config struct {
	// PageSize is the database and Flash page size in bytes (default 8 KiB).
	PageSize int
	// Blocks is the number of erase blocks per chip (default 256).
	Blocks int
	// PagesPerBlock is the number of pages per erase block (default 128).
	PagesPerBlock int
	// Chips is the number of NAND chips (default 1).
	Chips int
	// SLCCells selects SLC instead of MLC cells.
	SLCCells bool
	// FlashMode selects the MLC operation mode (default MLCFull; ignored
	// for SLC cells).
	FlashMode FlashMode
	// WriteMode selects the eviction write path (default Traditional).
	WriteMode WriteMode
	// Scheme is the default N×M scheme applied to tables (default
	// disabled). Individual tables can override it via
	// CreateTableWithScheme (NoFTL regions).
	Scheme Scheme
	// IndexScheme is the N×M scheme applied to index entry pages —
	// primary-key and secondary alike (each index owns a NoFTL region).
	// The zero value inherits each table's scheme — index maintenance is
	// small-update dominated, so index pages are usually the strongest
	// delta-append candidates.
	IndexScheme Scheme
	// BufferPoolPages is the buffer pool capacity in pages (default 256).
	BufferPoolPages int
	// OverprovisionPct is the FTL over-provisioning fraction (default 0.08).
	OverprovisionPct float64
	// InterferenceProb is the per-reprogram probability of a program
	// interference bit flip on MLC Flash (default 0).
	InterferenceProb float64
	// TxnCPUCost is the virtual CPU time charged per committed
	// transaction (default 50µs).
	TxnCPUCost time.Duration
	// LogFlushLatency is the virtual latency of one write to the separate
	// log device, charged once per WAL flush batch (default 0: the log
	// device is not modelled, as in the paper's experiments). With a
	// non-zero latency the group-commit pipeline becomes visible:
	// concurrent commits share one flush and therefore one latency charge.
	LogFlushLatency time.Duration
	// LogFlushWallLatency makes the flush leader really wait this long per
	// WAL flush batch, modelling the wall-clock cost of a log-device sync
	// (default 0). While the leader waits, concurrently-arriving commits
	// queue up and ride the next batch — the classic group-commit
	// amortisation.
	LogFlushWallLatency time.Duration
	// Analytic enables per-eviction net-changed-byte accounting (Figure 1).
	Analytic bool
	// TraceEvictions records the fetch/eviction trace used for the IPL
	// comparison.
	TraceEvictions bool
	// Seed drives deterministic fault injection.
	Seed int64
	// DisableECC turns off ECC simulation.
	DisableECC bool
	// Faults, if non-nil, attaches a deterministic power-cut schedule to
	// the device and the log-device flush path: the K-th program, erase or
	// log flush fails (optionally torn mid-operation) and every operation
	// after it reports ErrPowerLost until the plan is power-cycled. The
	// crash-torture harness uses it to prove the engine reopens consistent
	// from any crash point; see DB.Crash and Reopen.
	Faults *FaultPlan
	// CheckpointEveryBytes starts the flush-behind checkpointer: a fuzzy
	// checkpoint is taken whenever this many WAL bytes have accumulated
	// since the last one (default 0: no background checkpointer; call
	// DB.Checkpoint explicitly).
	CheckpointEveryBytes uint64
	// CheckpointInterval additionally (or alternatively) takes a fuzzy
	// checkpoint on a wall-clock period (default 0: disabled).
	CheckpointInterval time.Duration
	// RecoveryParallelism is the number of redo workers Reopen partitions
	// the post-checkpoint log across, by heap page / index object (default
	// 4). 1 selects the serial replay used as the oracle in tests.
	RecoveryParallelism int
	// WALSegmentBytes overrides the log segment seal threshold (default
	// 64 KiB). Checkpoint truncation recycles whole segments, so smaller
	// segments give it finer grain; tests use tiny ones.
	WALSegmentBytes int
	// StatsInterval starts the background ops sampler: every interval one
	// counter snapshot is pushed onto the trailing ring that backs the
	// windowed rates and the lifetime burn gauge (DB.Ops, DB.SampleOps;
	// see docs/DESIGN_OPS.md). Default 0: no background sampler — Ops
	// falls back to whole-window rates, and tools may call SampleOps
	// explicitly.
	StatsInterval time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.PageSize <= 0 {
		c.PageSize = 8 * 1024
	}
	if c.Blocks <= 0 {
		c.Blocks = 256
	}
	if c.PagesPerBlock <= 0 {
		c.PagesPerBlock = 128
	}
	if c.Chips <= 0 {
		c.Chips = 1
	}
	if c.BufferPoolPages <= 0 {
		c.BufferPoolPages = 256
	}
	if c.OverprovisionPct <= 0 {
		c.OverprovisionPct = 0.08
	}
	if c.TxnCPUCost <= 0 {
		c.TxnCPUCost = 50 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RecoveryParallelism <= 0 {
		c.RecoveryParallelism = 4
	}
	return c
}

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("ipa: database closed")

// ErrTableExists is returned when creating a table whose name is taken.
var ErrTableExists = errors.New("ipa: table already exists")

// DB is a database instance.
//
// The engine synchronises at page granularity: the buffer pool is sharded
// and every frame carries its own latch, the WAL batches concurrent
// commits, and the lock table is striped. DB.mu therefore guards only the
// catalog (the table maps and the closed flag); it is never held across
// page access or I/O, so concurrent readers and writers on different pages
// proceed in parallel.
type DB struct {
	mu  sync.Mutex // catalog only: table and index maps, nextObjID, closed
	cfg Config

	dev     *flashdev.Device
	ftl     *ftl.FTL
	store   *storage.Manager
	pool    *buffer.Pool
	regions *region.Manager
	log     *wal.Log
	txns    *txn.Manager

	tables          map[string]*Table
	tablesByID      map[uint32]*Table
	indexesByID     map[uint32]*Table          // pk index object id -> owning table
	secondaryByID   map[uint32]*SecondaryIndex // secondary index object id
	secondaryByName map[string]*SecondaryIndex // "<table>.<index>" -> index
	nextObjID       uint32
	// closed is atomic so the hot table and transaction paths can reject
	// use-after-Close without taking the catalog mutex; gate makes Close
	// wait for in-flight operations before flushing (see acquire).
	closed    atomic.Bool
	gate      sync.RWMutex
	closeOnce sync.Once
	closeErr  error

	// Hot counters mutated by the commit path; kept atomic so Stats and
	// ResetStats are safe while transactions run.
	committed atomic.Uint64
	aborted   atomic.Uint64
	timeBase  atomic.Int64 // nanoseconds of virtual time

	// MVCC zombie queue: index entries retained for old snapshots,
	// re-checked and dropped by maybeGC (see mvcc.go).
	gcMu             sync.Mutex
	zombies          []zombieEntry
	zombiesReclaimed atomic.Uint64

	// Fuzzy-checkpoint state. ckptMu serialises checkpoints; catalogPID
	// holds the durable catalog page identifier plus one (0 = not yet
	// allocated); checkpointLSN is the LSN of the last checkpoint record;
	// walBytesAtCkpt is the log's BytesWritten at that moment, so the
	// bytes-since-checkpoint gauge and the flush-behind trigger need no
	// extra counter. recoveryRedo is the number of redo/compensation/undo
	// operations the last Reopen issued — the restart-cost metric.
	ckptMu         sync.Mutex
	catalogPID     atomic.Uint64
	checkpointLSN  atomic.Uint64
	ckptCut        atomic.Uint64
	walBytesAtCkpt atomic.Uint64
	recoveryRedo   atomic.Uint64
	recoveryStats  RecoveryStats
	ckptStop       chan struct{}
	ckptDone       chan struct{}

	// Ops sampler state: the trailing ring of counter snapshots behind
	// the windowed rates and burn gauge (see ops.go).
	opsMu   sync.Mutex
	opsRing []OpsSample
	opsStop chan struct{}
	opsDone chan struct{}
}

// Open creates a database on a freshly formatted simulated Flash device.
func Open(cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()

	cell := nand.MLC
	if cfg.SLCCells {
		cell = nand.SLC
	}
	devCfg := flashdev.Config{
		Chips: cfg.Chips,
		Chip: nand.Config{
			Geometry: nand.Geometry{
				Blocks:        cfg.Blocks,
				PagesPerBlock: cfg.PagesPerBlock,
				PageSize:      cfg.PageSize,
				OOBSize:       128,
			},
			Cell:             cell,
			InterferenceProb: cfg.InterferenceProb,
			Seed:             cfg.Seed,
			StrictOverwrite:  true,
			Faults:           cfg.Faults,
		},
		Latency:    flashdev.DefaultLatencyModel(),
		DisableECC: cfg.DisableECC,
	}
	dev, err := flashdev.New(devCfg)
	if err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}

	flashMode := cfg.FlashMode.internal()
	if cfg.SLCCells {
		flashMode = nand.ModeSLC
	}
	scheme := cfg.Scheme.internal()
	if err := scheme.Validate(); err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}
	if err := cfg.IndexScheme.internal().Validate(); err != nil {
		return nil, fmt.Errorf("ipa: index scheme: %w", err)
	}
	f, err := ftl.New(dev, cfg.ftlConfig(flashMode))
	if err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}
	log := wal.New()
	db, err := assemble(cfg, dev, f, log, txn.NewManager(log))
	if err != nil {
		return nil, err
	}
	db.startCheckpointer()
	db.startOpsSampler()
	return db, nil
}

// formatAreaSize returns the delta-record area reserved by the device's
// low-level format: the larger of the default table scheme and the index
// scheme. Index regions may run a roomier scheme than heap regions (entry
// inserts patch ~20 bytes, heap field updates often fewer), so the format
// must leave the open (delta) window wide enough for both.
func (c Config) formatAreaSize() int {
	area := 0
	if s := c.Scheme.internal(); s.Enabled() {
		area = s.AreaSize(pageMetaSize)
	}
	if s := c.IndexScheme.internal(); s.Enabled() && s.AreaSize(pageMetaSize) > area {
		area = s.AreaSize(pageMetaSize)
	}
	return area
}

// ftlConfig derives the Flash-management configuration, including the
// low-level ECC format: the initial ECC of every Flash page covers
// everything in front of the delta-record area plus the page footer behind
// it; appended delta records carry their own ECC slots (Figure 3). This is
// the "low-level format" parameter of demo scenario 2.
func (c Config) ftlConfig(flashMode nand.Mode) ftl.Config {
	area := c.formatAreaSize()
	eccCover, eccTail := c.PageSize, 0
	if area > 0 && c.WriteMode != Traditional {
		eccCover = c.PageSize - pageFooterSize - area
		eccTail = pageFooterSize
	}
	return ftl.Config{
		FlashMode:        flashMode,
		OverprovisionPct: c.OverprovisionPct,
		InPlaceMerge:     c.WriteMode == IPAConventionalSSD,
		EccCoverBytes:    eccCover,
		EccTailBytes:     eccTail,
	}
}

// assemble builds a DB around an existing device, FTL, log and transaction
// manager. Open uses it on a freshly formatted device; Reopen uses it on a
// rebuilt FTL and the durable remains of a crashed log.
func assemble(cfg Config, dev *flashdev.Device, f *ftl.FTL, log *wal.Log, txns *txn.Manager) (*DB, error) {
	flashMode := cfg.FlashMode.internal()
	if cfg.SLCCells {
		flashMode = nand.ModeSLC
	}
	regions := region.NewManager(region.Region{
		Name:      "default",
		Scheme:    cfg.Scheme.internal(),
		FlashMode: flashMode,
	})
	// The checkpoint catalog page lives in its own region: it is rewritten
	// on every checkpoint with a handful of changed bytes, so it runs the
	// index scheme (falling back to the table scheme) — both fit the
	// device format by construction.
	catScheme := cfg.IndexScheme.internal()
	if !catScheme.Enabled() {
		catScheme = cfg.Scheme.internal()
	}
	if cfg.WriteMode == Traditional {
		catScheme = core.Disabled
	}
	regions.Assign(catalogObjectID, region.Region{
		Name:      "catalog",
		Scheme:    catScheme,
		FlashMode: flashMode,
		Kind:      region.KindCatalog,
	})
	store, err := storage.New(f, storage.Config{
		Mode:           cfg.WriteMode.internal(),
		Regions:        regions,
		Analytic:       cfg.Analytic,
		TraceEvictions: cfg.TraceEvictions,
	})
	if err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}
	// Write-ahead rule: no dirty page reaches Flash before the log records
	// describing its changes are durable. Without this a crash could leave
	// flushed effects that neither redo nor undo knows about.
	store.SetWALBarrier(func() error { return log.Flush(0) })
	pool, err := buffer.New(store, cfg.BufferPoolPages)
	if err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}
	// Frames stamp the next LSN when a page first turns dirty (recLSN);
	// the checkpointer flushes dirty pages oldest-recLSN-first so the
	// truncation cut advances as far as possible.
	pool.SetLSNSource(log.NextLSN)
	log.SetSegmentBytes(cfg.WALSegmentBytes)
	if cfg.LogFlushLatency > 0 || cfg.LogFlushWallLatency > 0 || cfg.Faults != nil {
		// Model the separate log device: every flush batch costs one
		// device write — of virtual time and, optionally, of real time the
		// flush leader spends waiting — regardless of how many commits the
		// batch carries. That per-batch (not per-commit) cost is the
		// saving group commit is designed to realise. With a fault plan
		// attached, each flush is also a potential power-cut point: a cut
		// here loses the whole batch, which recovery must roll back.
		log.SetFlushHook(func(bytes int) error {
			if cfg.Faults != nil {
				if err := cfg.Faults.LogFlushPoint(); err != nil {
					return err
				}
			}
			if cfg.LogFlushLatency > 0 {
				dev.AdvanceClock(cfg.LogFlushLatency)
			}
			if cfg.LogFlushWallLatency > 0 {
				time.Sleep(cfg.LogFlushWallLatency)
			}
			return nil
		})
	}
	return &DB{
		cfg:             cfg,
		dev:             dev,
		ftl:             f,
		store:           store,
		pool:            pool,
		regions:         regions,
		log:             log,
		txns:            txns,
		tables:          make(map[string]*Table),
		tablesByID:      make(map[uint32]*Table),
		indexesByID:     make(map[uint32]*Table),
		secondaryByID:   make(map[uint32]*SecondaryIndex),
		secondaryByName: make(map[string]*SecondaryIndex),
		nextObjID:       1,
	}, nil
}

// Config returns the configuration the database was opened with (defaults
// applied).
func (db *DB) Config() Config { return db.cfg }

// Now returns the current virtual time of the Flash device. Throughput
// figures are derived from this clock.
func (db *DB) Now() time.Duration { return db.dev.Now() }

// WAL returns the write-ahead log (for recovery tests and inspection).
func (db *DB) WAL() *wal.Log { return db.log }

// CommitWatermark returns the commit-timestamp oracle's contiguous
// watermark: every commit with a timestamp at or below it has finished
// (its record flushed, its versions stamped). It is nondecreasing for the
// lifetime of a DB handle, and after a crash the recovered watermark is at
// least the MaxCommitTS of the last durable checkpoint — the monotonicity
// invariants the chaos harness audits continuously.
func (db *DB) CommitWatermark() uint64 { return db.txns.Oracle().Watermark() }

// SetDeviceOpHook installs (or, with nil, removes) a hook observing every
// Flash chip operation as it starts: the chip index and the operation
// class (OpRead, OpProgram, OpDeltaProgram, OpErase). The chaos harness
// uses it to inject transient device latency spikes and per-chip stalls;
// the hook runs on the operating goroutine and must be safe for concurrent
// use.
func (db *DB) SetDeviceOpHook(h func(chip int, op FaultOp)) {
	if h == nil {
		db.dev.SetOpHook(nil)
		return
	}
	db.dev.SetOpHook(func(chip int, op nand.FaultOp) { h(chip, op) })
}

// AdvanceClock charges extra virtual device time, shared across all chips.
// Layers above the engine (e.g. chaos latency injection) use it to model
// delays that are not chip operations.
func (db *DB) AdvanceClock(dt time.Duration) { db.dev.AdvanceClock(dt) }

// CreateTable creates a table of fixed-size tuples using the database's
// default N×M scheme.
func (db *DB) CreateTable(name string, tupleSize int) (*Table, error) {
	return db.CreateTableWithScheme(name, tupleSize, db.cfg.Scheme)
}

// CreateTableWithScheme creates a table assigned to its own NoFTL region
// with the given N×M scheme, allowing IPA to be applied selectively to
// update-dominated tables.
func (db *DB) CreateTableWithScheme(name string, tupleSize int, scheme Scheme) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	if tupleSize <= 0 || tupleSize > db.cfg.PageSize/4 {
		return nil, fmt.Errorf("ipa: unsupported tuple size %d", tupleSize)
	}
	internal := scheme.internal()
	if err := internal.Validate(); err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}
	// Under the traditional write mode every table runs without IPA,
	// regardless of the requested scheme (the baseline of the paper).
	if db.cfg.WriteMode == Traditional {
		internal = core.Disabled
	}
	// The primary-key index gets its own region: index entry pages may run
	// a different scheme than the heap pages (Config.IndexScheme), and the
	// storage manager accounts them separately.
	idxScheme := db.cfg.IndexScheme.internal()
	if !idxScheme.Enabled() {
		idxScheme = internal
	}
	if err := idxScheme.Validate(); err != nil {
		return nil, fmt.Errorf("ipa: index scheme: %w", err)
	}
	if db.cfg.WriteMode == Traditional {
		idxScheme = core.Disabled
	}
	// The low-level format fixes the ECC layout for the whole device, so a
	// table's (or its index's) delta-record area may not exceed the open
	// window the format reserved (tables may always opt out of IPA).
	formatArea := db.cfg.formatAreaSize()
	for _, part := range []struct {
		what   string
		scheme core.Scheme
	}{{"heap scheme", internal}, {"index scheme", idxScheme}} {
		if s := part.scheme; s.Enabled() && s.AreaSize(pageMetaSize) > formatArea {
			return nil, fmt.Errorf("ipa: table %q %s %s needs a %d-byte delta area, exceeding the %d bytes of the device format (Config schemes %s/%s)",
				name, part.what, s, s.AreaSize(pageMetaSize), formatArea, db.cfg.Scheme, db.cfg.IndexScheme)
		}
	}
	id := db.nextObjID
	idxID := db.nextObjID + 1
	db.nextObjID += 2
	db.regions.Assign(id, region.Region{
		Name:      name,
		Scheme:    internal,
		FlashMode: db.regions.Default().FlashMode,
	})
	db.regions.Assign(idxID, region.Region{
		Name:      name + ".pk",
		Scheme:    idxScheme,
		FlashMode: db.regions.Default().FlashMode,
		Kind:      region.KindIndex,
	})
	t := newTable(db, name, id, idxID, tupleSize)
	db.tables[name] = t
	db.tablesByID[id] = t
	db.indexesByID[idxID] = t
	return t, nil
}

// secondaryCount returns the number of secondary indexes in the catalog.
func (db *DB) secondaryCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.secondaryByID)
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	return t, ok
}

// Tables returns the names of all tables.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	return out
}

// FlushAll writes every dirty buffered page to Flash.
func (db *DB) FlushAll() error { return db.pool.FlushAll() }

// Close flushes all dirty pages and marks the database closed. Close
// waits for in-flight page operations to finish before flushing; from then
// on table operations, transactions begun earlier and db.Begin
// transactions all fail with ErrClosed, so handles held across Close
// cannot silently operate on the flushed buffer pool.
// Concurrent and repeated Close calls all wait for the one flush and
// share its result.
func (db *DB) Close() error {
	db.closeOnce.Do(func() {
		db.stopCheckpointer()
		db.stopOpsSampler()
		db.gate.Lock()
		db.closed.Store(true)
		db.gate.Unlock()
		db.closeErr = db.pool.FlushAll()
	})
	return db.closeErr
}

// checkOpen returns ErrClosed once the database has been closed.
func (db *DB) checkOpen() error {
	if db.closed.Load() {
		return ErrClosed
	}
	return nil
}

// acquire admits one page-mutating or page-reading operation: it blocks a
// concurrent Close from flushing until the operation has finished and
// fails with ErrClosed once the database is closed. Every successful
// acquire must be paired with release.
func (db *DB) acquire() error {
	db.gate.RLock()
	if db.closed.Load() {
		db.gate.RUnlock()
		return ErrClosed
	}
	return nil
}

func (db *DB) release() { db.gate.RUnlock() }

// ResetStats zeroes all performance counters and restarts the virtual-time
// window; it is typically called after a benchmark's load phase so the
// measurement covers only the workload itself. It is safe to call while
// transactions are running.
func (db *DB) ResetStats() {
	db.ftl.ResetStats()
	db.store.ResetStats()
	db.dev.ResetStats()
	db.log.ResetStats()
	db.txns.Versions().ResetStats()
	db.txns.ResetLockStats()
	db.committed.Store(0)
	db.aborted.Store(0)
	db.zombiesReclaimed.Store(0)
	// Re-baseline the checkpoint byte trigger: the log's BytesWritten just
	// went back to zero, and walBytesAtCkpt must never exceed it.
	db.walBytesAtCkpt.Store(db.log.BytesWritten())
	db.timeBase.Store(int64(db.dev.Now()))
	// Drop the ops snapshot ring: samples taken before the reset would
	// yield negative window deltas against the zeroed counters.
	db.opsMu.Lock()
	db.opsRing = db.opsRing[:0]
	db.opsMu.Unlock()
}

// Trace returns the recorded fetch/eviction trace (TraceEvictions must be
// enabled).
func (db *DB) Trace() []storage.TraceEvent { return db.store.Trace() }

// DeviceGeometry describes the simulated Flash device.
type DeviceGeometry struct {
	Blocks        int
	PagesPerBlock int
	PageSize      int
	LogicalPages  int // pages exported by the FTL
}

// Geometry returns the device and FTL geometry.
func (db *DB) Geometry() DeviceGeometry {
	g := db.dev.Geometry()
	return DeviceGeometry{
		Blocks:        g.Blocks,
		PagesPerBlock: g.PagesPerBlock,
		PageSize:      g.PageSize,
		LogicalPages:  db.ftl.Capacity(),
	}
}

// FTLDebug reports the internal occupancy state of the Flash translation
// layer (for tests and troubleshooting).
func (db *DB) FTLDebug() string { return db.ftl.DebugSummary() }

// catalogObjectID owns the single-page durable catalog region holding the
// checkpoint state. It sits at the top of the object-identifier space so it
// can never collide with table or index objects.
const catalogObjectID uint32 = 0xFFFFFFFF

// catalogMagic marks a valid catalog tuple ("IPC1").
const catalogMagic uint32 = 0x49504331

// catalogTupleSize is the encoded size of the catalog tuple: magic,
// checkpoint LSN, truncation cut, max commit timestamp.
const catalogTupleSize = 4 + 8 + 8 + 8

// encodeCatalogTuple serialises the checkpoint state written to the
// catalog page.
func encodeCatalogTuple(ckptLSN, cut, maxTS uint64) []byte {
	buf := make([]byte, catalogTupleSize)
	binary.LittleEndian.PutUint32(buf[0:], catalogMagic)
	binary.LittleEndian.PutUint64(buf[4:], ckptLSN)
	binary.LittleEndian.PutUint64(buf[12:], cut)
	binary.LittleEndian.PutUint64(buf[20:], maxTS)
	return buf
}

// decodeCatalogTuple deserialises a catalog tuple; ok is false when the
// bytes do not carry the catalog magic.
func decodeCatalogTuple(buf []byte) (ckptLSN, cut, maxTS uint64, ok bool) {
	if len(buf) < catalogTupleSize || binary.LittleEndian.Uint32(buf[0:]) != catalogMagic {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(buf[4:]),
		binary.LittleEndian.Uint64(buf[12:]),
		binary.LittleEndian.Uint64(buf[20:]), true
}

// encodeActiveTxns serialises the active-transaction table carried in a
// checkpoint record: (id, firstLSN) pairs.
func encodeActiveTxns(active []txn.ActiveTxn) []byte {
	buf := make([]byte, 16*len(active))
	for i, a := range active {
		binary.LittleEndian.PutUint64(buf[16*i:], a.ID)
		binary.LittleEndian.PutUint64(buf[16*i+8:], a.FirstLSN)
	}
	return buf
}

// CheckpointResult reports one fuzzy checkpoint.
type CheckpointResult struct {
	// LSN is the LSN of the RecCheckpoint record.
	LSN uint64 `json:"lsn"`
	// TruncatedLSN is the cut: the log was recycled up to and including
	// this LSN (segment-granular, so slightly fewer bytes may actually be
	// dropped).
	TruncatedLSN uint64 `json:"truncated_lsn"`
	// PagesFlushed is the number of dirty pages force-flushed,
	// oldest-recLSN-first.
	PagesFlushed int `json:"pages_flushed"`
	// ActiveTxns is the number of in-flight transactions recorded in the
	// checkpoint's transaction table.
	ActiveTxns int `json:"active_txns"`
	// WALSegments and WALLiveBytes describe the log after recycling.
	WALSegments  int    `json:"wal_segments"`
	WALLiveBytes uint64 `json:"wal_live_bytes"`
}

// Checkpoint takes a fuzzy checkpoint: dirty pages are force-flushed
// oldest-recLSN-first through the write-ahead barrier, a RecCheckpoint
// record carrying the truncation cut and the active-transaction table is
// appended and flushed, the durable catalog page is updated, and finally
// the log segments below the cut are recycled. Writers keep running
// throughout — the checkpoint never quiesces the engine, it only pins the
// cut below the oldest active transaction's first record.
func (db *DB) Checkpoint() (CheckpointResult, error) {
	if err := db.acquire(); err != nil {
		return CheckpointResult{}, err
	}
	defer db.release()
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()

	var res CheckpointResult
	// (1) The checkpoint covers everything appended so far. Records after
	// beginLSN belong to the next checkpoint.
	beginLSN := db.log.NextLSN() - 1
	// (2) The cut must stay below the first record of every in-flight
	// transaction: their undo information must survive recycling. A
	// transaction registered after this snapshot only has records above
	// beginLSN, so missing it cannot move the correct cut.
	active := db.txns.ActiveTxns()
	cut := beginLSN
	for _, a := range active {
		if a.FirstLSN == 0 {
			cut = 0
		} else if a.FirstLSN-1 < cut {
			cut = a.FirstLSN - 1
		}
	}
	// (3) Force-flush dirty pages, oldest recLSN first. Every flush runs
	// the write-ahead barrier, so the log is always durable ahead of the
	// page image. Pages evicted (or re-dirtied) since the snapshot are
	// fine: ErrNotCached means some eviction already wrote the frame out.
	for _, pid := range db.pool.DirtySnapshot() {
		err := db.pool.FlushPage(pid)
		switch {
		case err == nil:
			res.PagesFlushed++
		case errors.Is(err, buffer.ErrNotCached):
		default:
			return res, fmt.Errorf("ipa: checkpoint flush page %d: %w", pid, err)
		}
	}
	// (4+5) Make the checkpoint itself durable.
	ckptLSN := db.log.Append(wal.Record{
		Type:   wal.RecCheckpoint,
		PageID: cut,
		Key:    int64(beginLSN),
		New:    encodeActiveTxns(active),
	})
	if err := db.log.Flush(ckptLSN); err != nil {
		return res, fmt.Errorf("ipa: checkpoint flush: %w", err)
	}
	// (6) Program the catalog page so recovery finds the checkpoint even
	// after the log below it is recycled.
	if err := db.writeCatalog(ckptLSN, cut); err != nil {
		return res, fmt.Errorf("ipa: checkpoint catalog: %w", err)
	}
	// (7) Segment recycling is a crash point of its own: a power cut here
	// leaves a fully durable checkpoint and an over-long log — recovery
	// simply replays a few extra (idempotent) records.
	if db.cfg.Faults != nil {
		if err := db.cfg.Faults.LogFlushPoint(); err != nil {
			return res, fmt.Errorf("ipa: checkpoint recycle: %w", err)
		}
	}
	// (8) Recycle everything below the cut.
	db.log.Truncate(cut)
	// (9) Publish the gauges.
	db.checkpointLSN.Store(ckptLSN)
	db.ckptCut.Store(cut)
	db.walBytesAtCkpt.Store(db.log.BytesWritten())
	res.LSN = ckptLSN
	res.TruncatedLSN = cut
	res.ActiveTxns = len(active)
	res.WALSegments = db.log.Segments()
	res.WALLiveBytes = db.log.LiveBytes()
	return res, nil
}

// CheckpointState is the durable checkpoint record kept in the catalog
// region on flash: what a restart finds before reading any log.
type CheckpointState struct {
	// LSN is the WAL position of the last fuzzy checkpoint.
	LSN uint64 `json:"checkpoint_lsn"`
	// TruncatedLSN is the truncation cut recorded with it: redo starts
	// after this LSN.
	TruncatedLSN uint64 `json:"truncated_lsn"`
	// MaxCommitTS restarts the commit-timestamp oracle past every commit
	// the truncated log prefix may have carried.
	MaxCommitTS uint64 `json:"max_commit_ts"`
}

// CheckpointState reads the catalog region and returns the durable
// checkpoint state; ok is false when no checkpoint has ever been taken.
// Diagnostic tools (cmd/flashinspect) use it to show what survives on
// flash below the WAL.
func (db *DB) CheckpointState() (CheckpointState, bool, error) {
	enc := db.catalogPID.Load()
	if enc == 0 {
		return CheckpointState{}, false, nil
	}
	pid := enc - 1
	h, err := db.pool.Fetch(pid)
	if err != nil {
		return CheckpointState{}, false, fmt.Errorf("ipa: catalog page %d: %w", pid, err)
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return CheckpointState{}, false, fmt.Errorf("ipa: catalog page %d: %w", pid, err)
	}
	tuple, err := pg.Tuple(0)
	if err != nil {
		return CheckpointState{}, false, fmt.Errorf("ipa: catalog page %d: %w", pid, err)
	}
	ckptLSN, cut, maxTS, ok := decodeCatalogTuple(tuple)
	if !ok {
		return CheckpointState{}, false, fmt.Errorf("ipa: catalog page %d: bad magic", pid)
	}
	return CheckpointState{LSN: ckptLSN, TruncatedLSN: cut, MaxCommitTS: maxTS}, true, nil
}

// writeCatalog creates (first checkpoint) or overwrites the durable
// catalog page with the checkpoint state. The catalog is below the WAL:
// its page program is atomic on its own (single-tuple page, single-record
// delta appends, mapping-tag ECC for out-of-place writes), so a torn
// program simply leaves the previous checkpoint in force.
func (db *DB) writeCatalog(ckptLSN, cut uint64) error {
	tuple := encodeCatalogTuple(ckptLSN, cut, db.txns.Oracle().Watermark())
	if enc := db.catalogPID.Load(); enc != 0 {
		pid := enc - 1
		h, err := db.pool.Fetch(pid)
		if err != nil {
			return err
		}
		pg, err := page.Wrap(h.Data())
		if err != nil {
			h.Release()
			return err
		}
		pg.SetRecorder(h.Tracker())
		if err := pg.UpdateTupleAt(0, 0, tuple); err != nil {
			h.Release()
			return err
		}
		h.MarkDirty()
		h.Release()
		return db.pool.FlushPage(pid)
	}
	pid, err := db.store.AllocatePage(catalogObjectID)
	if err != nil {
		return err
	}
	h, err := db.pool.Create(pid, func(buf []byte) (*core.Tracker, error) {
		return db.store.InitPage(buf, pid, catalogObjectID)
	})
	if err != nil {
		return err
	}
	pg, err := page.Wrap(h.Data())
	if err != nil {
		h.Release()
		return err
	}
	pg.SetRecorder(h.Tracker())
	if _, err := pg.InsertTuple(tuple); err != nil {
		h.Release()
		return err
	}
	h.MarkDirty()
	h.Release()
	if err := db.pool.FlushPage(pid); err != nil {
		return err
	}
	db.catalogPID.Store(pid + 1)
	return nil
}

// startCheckpointer launches the flush-behind checkpointer goroutine when
// the configuration asks for one.
func (db *DB) startCheckpointer() {
	if db.cfg.CheckpointEveryBytes == 0 && db.cfg.CheckpointInterval <= 0 {
		return
	}
	db.ckptStop = make(chan struct{})
	db.ckptDone = make(chan struct{})
	go db.checkpointLoop()
}

// checkpointLoop is the flush-behind checkpointer: it polls the WAL growth
// and takes a fuzzy checkpoint whenever CheckpointEveryBytes have
// accumulated since the last one, or unconditionally every
// CheckpointInterval. It exits on Close/Crash or on the first checkpoint
// error (after a power cut every flash operation fails; recovery restarts
// a fresh checkpointer).
func (db *DB) checkpointLoop() {
	defer close(db.ckptDone)
	period := db.cfg.CheckpointInterval
	byTime := period > 0
	if !byTime {
		period = 10 * time.Millisecond // byte-threshold polling cadence
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-db.ckptStop:
			return
		case <-ticker.C:
			if !byTime && db.log.BytesWritten()-db.walBytesAtCkpt.Load() < db.cfg.CheckpointEveryBytes {
				continue
			}
			if _, err := db.Checkpoint(); err != nil {
				return
			}
		}
	}
}

// stopCheckpointer shuts the flush-behind checkpointer down and waits for
// an in-flight checkpoint to finish.
func (db *DB) stopCheckpointer() {
	if db.ckptStop == nil {
		return
	}
	close(db.ckptStop)
	<-db.ckptDone
}
