// Package ipa is a storage engine with In-Place Appends (IPA) on simulated
// NAND Flash: a full reproduction of "In-Place Appends for Real: DBMS
// Overwrites on Flash without Erase" (Hardock et al., EDBT 2017).
//
// The engine bundles a behavioural NAND Flash simulator, a page-mapping
// FTL with garbage collection, an NSM slotted-page storage engine with a
// buffer pool, write-ahead logging and transactions, and the three write
// paths demonstrated in the paper:
//
//   - Traditional out-of-place page writes (the baseline),
//   - IPA for conventional SSDs over a block-device interface, and
//   - IPA for native Flash using the write_delta command.
//
// A minimal session looks like this:
//
//	db, _ := ipa.Open(ipa.Config{WriteMode: ipa.IPANativeFlash, Scheme: ipa.Scheme{N: 2, M: 4}})
//	defer db.Close()
//	accounts, _ := db.CreateTable("accounts", 64)
//	_ = accounts.Insert(1, make([]byte, 64))
//	tx := db.Begin()
//	_ = tx.UpdateAt(accounts, 1, 0, []byte{42})
//	_ = tx.Commit()
//	fmt.Println(db.Stats().InPlaceAppends)
package ipa

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/buffer"
	"ipa/internal/core"
	"ipa/internal/flashdev"
	"ipa/internal/ftl"
	"ipa/internal/nand"
	"ipa/internal/region"
	"ipa/internal/storage"
	"ipa/internal/txn"
	"ipa/internal/wal"
)

// Scheme is the public N×M In-Place Appends configuration: at most N delta
// records per page, at most M changed bytes per record. The zero value
// disables IPA.
type Scheme struct {
	N int
	M int
}

// String renders the scheme in the paper's [N×M] notation.
func (s Scheme) String() string { return fmt.Sprintf("%dx%d", s.N, s.M) }

// Enabled reports whether the scheme enables in-place appends.
func (s Scheme) Enabled() bool { return s.N > 0 && s.M > 0 }

func (s Scheme) internal() core.Scheme { return core.Scheme{N: s.N, M: s.M} }

// WriteMode selects the write path used on dirty page evictions. The three
// modes correspond to the paper's demonstration scenarios.
type WriteMode int

const (
	// Traditional writes whole pages out-of-place (demo scenario 1).
	Traditional WriteMode = iota
	// IPAConventionalSSD writes whole pages (body + delta-record area)
	// over a block-device interface; the FTL appends in place when
	// possible (demo scenario 2).
	IPAConventionalSSD
	// IPANativeFlash transfers only delta records with the write_delta
	// command (demo scenario 3, the NoFTL architecture).
	IPANativeFlash
)

// String names the write mode.
func (m WriteMode) String() string {
	switch m {
	case Traditional:
		return "traditional"
	case IPAConventionalSSD:
		return "ipa-ssd"
	case IPANativeFlash:
		return "ipa-native"
	default:
		return fmt.Sprintf("WriteMode(%d)", int(m))
	}
}

func (m WriteMode) internal() storage.WriteMode {
	switch m {
	case IPAConventionalSSD:
		return storage.WriteIPASSD
	case IPANativeFlash:
		return storage.WriteIPANative
	default:
		return storage.WriteTraditional
	}
}

// FlashMode selects how MLC Flash is operated (Section 3 of the paper).
type FlashMode int

const (
	// MLCFull uses all MLC pages and allows appends everywhere (subject to
	// program interference); mainly for ablation.
	MLCFull FlashMode = iota
	// PSLC (pseudo-SLC) uses only LSB pages: half the capacity, SLC-grade
	// tolerance to program interference.
	PSLC
	// OddMLC uses the full capacity but appends only to LSB (odd) pages.
	OddMLC
	// SLCMode operates an SLC chip.
	SLCMode
)

// String names the flash mode as in the paper.
func (m FlashMode) String() string {
	switch m {
	case MLCFull:
		return "MLC"
	case PSLC:
		return "pSLC"
	case OddMLC:
		return "odd-MLC"
	case SLCMode:
		return "SLC"
	default:
		return fmt.Sprintf("FlashMode(%d)", int(m))
	}
}

func (m FlashMode) internal() nand.Mode {
	switch m {
	case PSLC:
		return nand.ModePSLC
	case OddMLC:
		return nand.ModeOddMLC
	case SLCMode:
		return nand.ModeSLC
	default:
		return nand.ModeMLCFull
	}
}

// Config configures a database instance.
type Config struct {
	// PageSize is the database and Flash page size in bytes (default 8 KiB).
	PageSize int
	// Blocks is the number of erase blocks per chip (default 256).
	Blocks int
	// PagesPerBlock is the number of pages per erase block (default 128).
	PagesPerBlock int
	// Chips is the number of NAND chips (default 1).
	Chips int
	// SLCCells selects SLC instead of MLC cells.
	SLCCells bool
	// FlashMode selects the MLC operation mode (default MLCFull; ignored
	// for SLC cells).
	FlashMode FlashMode
	// WriteMode selects the eviction write path (default Traditional).
	WriteMode WriteMode
	// Scheme is the default N×M scheme applied to tables (default
	// disabled). Individual tables can override it via
	// CreateTableWithScheme (NoFTL regions).
	Scheme Scheme
	// IndexScheme is the N×M scheme applied to index entry pages —
	// primary-key and secondary alike (each index owns a NoFTL region).
	// The zero value inherits each table's scheme — index maintenance is
	// small-update dominated, so index pages are usually the strongest
	// delta-append candidates.
	IndexScheme Scheme
	// BufferPoolPages is the buffer pool capacity in pages (default 256).
	BufferPoolPages int
	// OverprovisionPct is the FTL over-provisioning fraction (default 0.08).
	OverprovisionPct float64
	// InterferenceProb is the per-reprogram probability of a program
	// interference bit flip on MLC Flash (default 0).
	InterferenceProb float64
	// TxnCPUCost is the virtual CPU time charged per committed
	// transaction (default 50µs).
	TxnCPUCost time.Duration
	// LogFlushLatency is the virtual latency of one write to the separate
	// log device, charged once per WAL flush batch (default 0: the log
	// device is not modelled, as in the paper's experiments). With a
	// non-zero latency the group-commit pipeline becomes visible:
	// concurrent commits share one flush and therefore one latency charge.
	LogFlushLatency time.Duration
	// LogFlushWallLatency makes the flush leader really wait this long per
	// WAL flush batch, modelling the wall-clock cost of a log-device sync
	// (default 0). While the leader waits, concurrently-arriving commits
	// queue up and ride the next batch — the classic group-commit
	// amortisation.
	LogFlushWallLatency time.Duration
	// Analytic enables per-eviction net-changed-byte accounting (Figure 1).
	Analytic bool
	// TraceEvictions records the fetch/eviction trace used for the IPL
	// comparison.
	TraceEvictions bool
	// Seed drives deterministic fault injection.
	Seed int64
	// DisableECC turns off ECC simulation.
	DisableECC bool
	// Faults, if non-nil, attaches a deterministic power-cut schedule to
	// the device and the log-device flush path: the K-th program, erase or
	// log flush fails (optionally torn mid-operation) and every operation
	// after it reports ErrPowerLost until the plan is power-cycled. The
	// crash-torture harness uses it to prove the engine reopens consistent
	// from any crash point; see DB.Crash and Reopen.
	Faults *FaultPlan
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.PageSize <= 0 {
		c.PageSize = 8 * 1024
	}
	if c.Blocks <= 0 {
		c.Blocks = 256
	}
	if c.PagesPerBlock <= 0 {
		c.PagesPerBlock = 128
	}
	if c.Chips <= 0 {
		c.Chips = 1
	}
	if c.BufferPoolPages <= 0 {
		c.BufferPoolPages = 256
	}
	if c.OverprovisionPct <= 0 {
		c.OverprovisionPct = 0.08
	}
	if c.TxnCPUCost <= 0 {
		c.TxnCPUCost = 50 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("ipa: database closed")

// DB is a database instance.
//
// The engine synchronises at page granularity: the buffer pool is sharded
// and every frame carries its own latch, the WAL batches concurrent
// commits, and the lock table is striped. DB.mu therefore guards only the
// catalog (the table maps and the closed flag); it is never held across
// page access or I/O, so concurrent readers and writers on different pages
// proceed in parallel.
type DB struct {
	mu  sync.Mutex // catalog only: table and index maps, nextObjID, closed
	cfg Config

	dev     *flashdev.Device
	ftl     *ftl.FTL
	store   *storage.Manager
	pool    *buffer.Pool
	regions *region.Manager
	log     *wal.Log
	txns    *txn.Manager

	tables          map[string]*Table
	tablesByID      map[uint32]*Table
	indexesByID     map[uint32]*Table          // pk index object id -> owning table
	secondaryByID   map[uint32]*SecondaryIndex // secondary index object id
	secondaryByName map[string]*SecondaryIndex // "<table>.<index>" -> index
	nextObjID       uint32
	// closed is atomic so the hot table and transaction paths can reject
	// use-after-Close without taking the catalog mutex; gate makes Close
	// wait for in-flight operations before flushing (see acquire).
	closed    atomic.Bool
	gate      sync.RWMutex
	closeOnce sync.Once
	closeErr  error

	// Hot counters mutated by the commit path; kept atomic so Stats and
	// ResetStats are safe while transactions run.
	committed atomic.Uint64
	aborted   atomic.Uint64
	timeBase  atomic.Int64 // nanoseconds of virtual time

	// MVCC zombie queue: index entries retained for old snapshots,
	// re-checked and dropped by maybeGC (see mvcc.go).
	gcMu             sync.Mutex
	zombies          []zombieEntry
	zombiesReclaimed atomic.Uint64
}

// Open creates a database on a freshly formatted simulated Flash device.
func Open(cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()

	cell := nand.MLC
	if cfg.SLCCells {
		cell = nand.SLC
	}
	devCfg := flashdev.Config{
		Chips: cfg.Chips,
		Chip: nand.Config{
			Geometry: nand.Geometry{
				Blocks:        cfg.Blocks,
				PagesPerBlock: cfg.PagesPerBlock,
				PageSize:      cfg.PageSize,
				OOBSize:       128,
			},
			Cell:             cell,
			InterferenceProb: cfg.InterferenceProb,
			Seed:             cfg.Seed,
			StrictOverwrite:  true,
			Faults:           cfg.Faults,
		},
		Latency:    flashdev.DefaultLatencyModel(),
		DisableECC: cfg.DisableECC,
	}
	dev, err := flashdev.New(devCfg)
	if err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}

	flashMode := cfg.FlashMode.internal()
	if cfg.SLCCells {
		flashMode = nand.ModeSLC
	}
	scheme := cfg.Scheme.internal()
	if err := scheme.Validate(); err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}
	if err := cfg.IndexScheme.internal().Validate(); err != nil {
		return nil, fmt.Errorf("ipa: index scheme: %w", err)
	}
	f, err := ftl.New(dev, cfg.ftlConfig(flashMode))
	if err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}
	log := wal.New()
	return assemble(cfg, dev, f, log, txn.NewManager(log))
}

// formatAreaSize returns the delta-record area reserved by the device's
// low-level format: the larger of the default table scheme and the index
// scheme. Index regions may run a roomier scheme than heap regions (entry
// inserts patch ~20 bytes, heap field updates often fewer), so the format
// must leave the open (delta) window wide enough for both.
func (c Config) formatAreaSize() int {
	area := 0
	if s := c.Scheme.internal(); s.Enabled() {
		area = s.AreaSize(pageMetaSize)
	}
	if s := c.IndexScheme.internal(); s.Enabled() && s.AreaSize(pageMetaSize) > area {
		area = s.AreaSize(pageMetaSize)
	}
	return area
}

// ftlConfig derives the Flash-management configuration, including the
// low-level ECC format: the initial ECC of every Flash page covers
// everything in front of the delta-record area plus the page footer behind
// it; appended delta records carry their own ECC slots (Figure 3). This is
// the "low-level format" parameter of demo scenario 2.
func (c Config) ftlConfig(flashMode nand.Mode) ftl.Config {
	area := c.formatAreaSize()
	eccCover, eccTail := c.PageSize, 0
	if area > 0 && c.WriteMode != Traditional {
		eccCover = c.PageSize - pageFooterSize - area
		eccTail = pageFooterSize
	}
	return ftl.Config{
		FlashMode:        flashMode,
		OverprovisionPct: c.OverprovisionPct,
		InPlaceMerge:     c.WriteMode == IPAConventionalSSD,
		EccCoverBytes:    eccCover,
		EccTailBytes:     eccTail,
	}
}

// assemble builds a DB around an existing device, FTL, log and transaction
// manager. Open uses it on a freshly formatted device; Reopen uses it on a
// rebuilt FTL and the durable remains of a crashed log.
func assemble(cfg Config, dev *flashdev.Device, f *ftl.FTL, log *wal.Log, txns *txn.Manager) (*DB, error) {
	flashMode := cfg.FlashMode.internal()
	if cfg.SLCCells {
		flashMode = nand.ModeSLC
	}
	regions := region.NewManager(region.Region{
		Name:      "default",
		Scheme:    cfg.Scheme.internal(),
		FlashMode: flashMode,
	})
	store, err := storage.New(f, storage.Config{
		Mode:           cfg.WriteMode.internal(),
		Regions:        regions,
		Analytic:       cfg.Analytic,
		TraceEvictions: cfg.TraceEvictions,
	})
	if err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}
	// Write-ahead rule: no dirty page reaches Flash before the log records
	// describing its changes are durable. Without this a crash could leave
	// flushed effects that neither redo nor undo knows about.
	store.SetWALBarrier(func() error { return log.Flush(0) })
	pool, err := buffer.New(store, cfg.BufferPoolPages)
	if err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}
	if cfg.LogFlushLatency > 0 || cfg.LogFlushWallLatency > 0 || cfg.Faults != nil {
		// Model the separate log device: every flush batch costs one
		// device write — of virtual time and, optionally, of real time the
		// flush leader spends waiting — regardless of how many commits the
		// batch carries. That per-batch (not per-commit) cost is the
		// saving group commit is designed to realise. With a fault plan
		// attached, each flush is also a potential power-cut point: a cut
		// here loses the whole batch, which recovery must roll back.
		log.SetFlushHook(func(bytes int) error {
			if cfg.Faults != nil {
				if err := cfg.Faults.LogFlushPoint(); err != nil {
					return err
				}
			}
			if cfg.LogFlushLatency > 0 {
				dev.AdvanceClock(cfg.LogFlushLatency)
			}
			if cfg.LogFlushWallLatency > 0 {
				time.Sleep(cfg.LogFlushWallLatency)
			}
			return nil
		})
	}
	return &DB{
		cfg:             cfg,
		dev:             dev,
		ftl:             f,
		store:           store,
		pool:            pool,
		regions:         regions,
		log:             log,
		txns:            txns,
		tables:          make(map[string]*Table),
		tablesByID:      make(map[uint32]*Table),
		indexesByID:     make(map[uint32]*Table),
		secondaryByID:   make(map[uint32]*SecondaryIndex),
		secondaryByName: make(map[string]*SecondaryIndex),
		nextObjID:       1,
	}, nil
}

// Config returns the configuration the database was opened with (defaults
// applied).
func (db *DB) Config() Config { return db.cfg }

// Now returns the current virtual time of the Flash device. Throughput
// figures are derived from this clock.
func (db *DB) Now() time.Duration { return db.dev.Now() }

// WAL returns the write-ahead log (for recovery tests and inspection).
func (db *DB) WAL() *wal.Log { return db.log }

// CreateTable creates a table of fixed-size tuples using the database's
// default N×M scheme.
func (db *DB) CreateTable(name string, tupleSize int) (*Table, error) {
	return db.CreateTableWithScheme(name, tupleSize, db.cfg.Scheme)
}

// CreateTableWithScheme creates a table assigned to its own NoFTL region
// with the given N×M scheme, allowing IPA to be applied selectively to
// update-dominated tables.
func (db *DB) CreateTableWithScheme(name string, tupleSize int, scheme Scheme) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("ipa: table %q already exists", name)
	}
	if tupleSize <= 0 || tupleSize > db.cfg.PageSize/4 {
		return nil, fmt.Errorf("ipa: unsupported tuple size %d", tupleSize)
	}
	internal := scheme.internal()
	if err := internal.Validate(); err != nil {
		return nil, fmt.Errorf("ipa: %w", err)
	}
	// Under the traditional write mode every table runs without IPA,
	// regardless of the requested scheme (the baseline of the paper).
	if db.cfg.WriteMode == Traditional {
		internal = core.Disabled
	}
	// The primary-key index gets its own region: index entry pages may run
	// a different scheme than the heap pages (Config.IndexScheme), and the
	// storage manager accounts them separately.
	idxScheme := db.cfg.IndexScheme.internal()
	if !idxScheme.Enabled() {
		idxScheme = internal
	}
	if err := idxScheme.Validate(); err != nil {
		return nil, fmt.Errorf("ipa: index scheme: %w", err)
	}
	if db.cfg.WriteMode == Traditional {
		idxScheme = core.Disabled
	}
	// The low-level format fixes the ECC layout for the whole device, so a
	// table's (or its index's) delta-record area may not exceed the open
	// window the format reserved (tables may always opt out of IPA).
	formatArea := db.cfg.formatAreaSize()
	for _, part := range []struct {
		what   string
		scheme core.Scheme
	}{{"heap scheme", internal}, {"index scheme", idxScheme}} {
		if s := part.scheme; s.Enabled() && s.AreaSize(pageMetaSize) > formatArea {
			return nil, fmt.Errorf("ipa: table %q %s %s needs a %d-byte delta area, exceeding the %d bytes of the device format (Config schemes %s/%s)",
				name, part.what, s, s.AreaSize(pageMetaSize), formatArea, db.cfg.Scheme, db.cfg.IndexScheme)
		}
	}
	id := db.nextObjID
	idxID := db.nextObjID + 1
	db.nextObjID += 2
	db.regions.Assign(id, region.Region{
		Name:      name,
		Scheme:    internal,
		FlashMode: db.regions.Default().FlashMode,
	})
	db.regions.Assign(idxID, region.Region{
		Name:      name + ".pk",
		Scheme:    idxScheme,
		FlashMode: db.regions.Default().FlashMode,
		Kind:      region.KindIndex,
	})
	t := newTable(db, name, id, idxID, tupleSize)
	db.tables[name] = t
	db.tablesByID[id] = t
	db.indexesByID[idxID] = t
	return t, nil
}

// secondaryCount returns the number of secondary indexes in the catalog.
func (db *DB) secondaryCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.secondaryByID)
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	return t, ok
}

// Tables returns the names of all tables.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	return out
}

// FlushAll writes every dirty buffered page to Flash.
func (db *DB) FlushAll() error { return db.pool.FlushAll() }

// Close flushes all dirty pages and marks the database closed. Close
// waits for in-flight page operations to finish before flushing; from then
// on table operations, transactions begun earlier and db.Begin
// transactions all fail with ErrClosed, so handles held across Close
// cannot silently operate on the flushed buffer pool.
// Concurrent and repeated Close calls all wait for the one flush and
// share its result.
func (db *DB) Close() error {
	db.closeOnce.Do(func() {
		db.gate.Lock()
		db.closed.Store(true)
		db.gate.Unlock()
		db.closeErr = db.pool.FlushAll()
	})
	return db.closeErr
}

// checkOpen returns ErrClosed once the database has been closed.
func (db *DB) checkOpen() error {
	if db.closed.Load() {
		return ErrClosed
	}
	return nil
}

// acquire admits one page-mutating or page-reading operation: it blocks a
// concurrent Close from flushing until the operation has finished and
// fails with ErrClosed once the database is closed. Every successful
// acquire must be paired with release.
func (db *DB) acquire() error {
	db.gate.RLock()
	if db.closed.Load() {
		db.gate.RUnlock()
		return ErrClosed
	}
	return nil
}

func (db *DB) release() { db.gate.RUnlock() }

// ResetStats zeroes all performance counters and restarts the virtual-time
// window; it is typically called after a benchmark's load phase so the
// measurement covers only the workload itself. It is safe to call while
// transactions are running.
func (db *DB) ResetStats() {
	db.ftl.ResetStats()
	db.store.ResetStats()
	db.dev.ResetStats()
	db.log.ResetStats()
	db.txns.Versions().ResetStats()
	db.txns.ResetLockStats()
	db.committed.Store(0)
	db.aborted.Store(0)
	db.zombiesReclaimed.Store(0)
	db.timeBase.Store(int64(db.dev.Now()))
}

// Trace returns the recorded fetch/eviction trace (TraceEvictions must be
// enabled).
func (db *DB) Trace() []storage.TraceEvent { return db.store.Trace() }

// DeviceGeometry describes the simulated Flash device.
type DeviceGeometry struct {
	Blocks        int
	PagesPerBlock int
	PageSize      int
	LogicalPages  int // pages exported by the FTL
}

// Geometry returns the device and FTL geometry.
func (db *DB) Geometry() DeviceGeometry {
	g := db.dev.Geometry()
	return DeviceGeometry{
		Blocks:        g.Blocks,
		PagesPerBlock: g.PagesPerBlock,
		PageSize:      g.PageSize,
		LogicalPages:  db.ftl.Capacity(),
	}
}

// FTLDebug reports the internal occupancy state of the Flash translation
// layer (for tests and troubleshooting).
func (db *DB) FTLDebug() string { return db.ftl.DebugSummary() }
