package ipa_test

import (
	"errors"
	"testing"

	"ipa"
)

// TestOperationsAfterCloseFail verifies that table handles and transactions
// held across Close stop working: nothing may silently operate on the
// flushed buffer pool.
func TestOperationsAfterCloseFail(t *testing.T) {
	db, err := ipa.Open(smallConfig(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tbl, err := db.CreateTable("t", 64)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := tbl.Insert(1, fillTuple(64, 1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// Two transactions begun before Close, already holding record locks:
	// one will be committed after Close, one aborted.
	if err := tbl.Insert(2, fillTuple(64, 2)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	before := db.Begin()
	if err := before.UpdateAt(tbl, 1, 0, []byte{7}); err != nil {
		t.Fatalf("pre-Close UpdateAt: %v", err)
	}
	committer := db.Begin()
	if err := committer.UpdateAt(tbl, 2, 0, []byte{8}); err != nil {
		t.Fatalf("pre-Close UpdateAt: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// ...fails on every operation afterwards.
	if err := before.UpdateAt(tbl, 1, 0, []byte{9}); !errors.Is(err, ipa.ErrClosed) {
		t.Errorf("pre-Close tx UpdateAt after Close = %v, want ErrClosed", err)
	}
	// Commit fails but, like Abort, finishes the transaction and releases
	// its locks.
	if err := committer.Commit(); !errors.Is(err, ipa.ErrClosed) {
		t.Errorf("pre-Close tx Commit after Close = %v, want ErrClosed", err)
	}
	if err := committer.Commit(); err == nil {
		t.Errorf("second Commit must fail on a finished transaction")
	}

	// Table handles held across Close fail too.
	if err := tbl.Insert(2, fillTuple(64, 2)); !errors.Is(err, ipa.ErrClosed) {
		t.Errorf("Insert after Close = %v, want ErrClosed", err)
	}
	if _, err := tbl.Get(1); !errors.Is(err, ipa.ErrClosed) {
		t.Errorf("Get after Close = %v, want ErrClosed", err)
	}
	if err := tbl.UpdateAt(1, 0, []byte{1}); !errors.Is(err, ipa.ErrClosed) {
		t.Errorf("UpdateAt after Close = %v, want ErrClosed", err)
	}
	if err := tbl.Delete(1); !errors.Is(err, ipa.ErrClosed) {
		t.Errorf("Delete after Close = %v, want ErrClosed", err)
	}
	if err := tbl.Scan(func(int64, []byte) bool { return true }); !errors.Is(err, ipa.ErrClosed) {
		t.Errorf("Scan after Close = %v, want ErrClosed", err)
	}
	if err := tbl.ScanRange(0, 10, func(int64, []byte) bool { return true }); !errors.Is(err, ipa.ErrClosed) {
		t.Errorf("ScanRange after Close = %v, want ErrClosed", err)
	}

	// Abort still succeeds after Close: the record locks must be released
	// even though the before images can no longer reach the flushed pool.
	if err := before.Abort(); err != nil {
		t.Errorf("Abort after Close = %v, want nil (locks must be released)", err)
	}
	if err := before.Abort(); err == nil {
		t.Errorf("second Abort must fail on a finished transaction")
	}
	// Because the undo could not be applied, the transaction must remain a
	// WAL loser — no abort record — so recovery rolls its flushed,
	// uncommitted update back after a restart.
	analysis := db.WAL().Analyze()
	for _, id := range []uint64{before.ID(), committer.ID()} {
		if !analysis.Losers[id] {
			t.Errorf("post-Close txn %d must stay a WAL loser (got committed=%v aborted=%v)",
				id, analysis.Committed[id], analysis.Aborted[id])
		}
	}

	// Transactions begun after Close are inert.
	tx := db.Begin()
	if _, err := tx.Get(tbl, 1); !errors.Is(err, ipa.ErrClosed) {
		t.Errorf("post-Close tx Get = %v, want ErrClosed", err)
	}
	if err := tx.Insert(tbl, 3, fillTuple(64, 3)); !errors.Is(err, ipa.ErrClosed) {
		t.Errorf("post-Close tx Insert = %v, want ErrClosed", err)
	}
	if err := tx.Commit(); !errors.Is(err, ipa.ErrClosed) {
		t.Errorf("post-Close tx Commit = %v, want ErrClosed", err)
	}
}
