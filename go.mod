module ipa

go 1.24
