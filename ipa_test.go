package ipa_test

import (
	"fmt"
	"testing"

	"ipa"
)

// smallConfig returns a small device/engine configuration whose buffer pool
// is much smaller than the working set, so pages are evicted and re-fetched
// constantly and the write path is exercised heavily.
func smallConfig(mode ipa.WriteMode, scheme ipa.Scheme, flash ipa.FlashMode) ipa.Config {
	return ipa.Config{
		PageSize:        4096,
		Blocks:          64,
		PagesPerBlock:   32,
		BufferPoolPages: 16,
		WriteMode:       mode,
		Scheme:          scheme,
		FlashMode:       flash,
		Analytic:        true,
	}
}

// fillTuple builds a deterministic tuple of the given size.
func fillTuple(size int, seed int64) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(seed + int64(i)*7)
	}
	return b
}

func allModes() []struct {
	name   string
	mode   ipa.WriteMode
	scheme ipa.Scheme
	flash  ipa.FlashMode
} {
	return []struct {
		name   string
		mode   ipa.WriteMode
		scheme ipa.Scheme
		flash  ipa.FlashMode
	}{
		{"traditional", ipa.Traditional, ipa.Scheme{}, ipa.MLCFull},
		{"ipa-ssd-pslc", ipa.IPAConventionalSSD, ipa.Scheme{N: 2, M: 4}, ipa.PSLC},
		{"ipa-native-pslc", ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC},
		{"ipa-native-oddmlc", ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.OddMLC},
		{"ipa-native-slc", ipa.IPANativeFlash, ipa.Scheme{N: 4, M: 8}, ipa.SLCMode},
	}
}

// TestEngineInsertUpdateReadBack verifies, for every write mode, that data
// survives buffer evictions and reloads: small updates must be readable
// whether they were persisted as delta records or as whole pages.
func TestEngineInsertUpdateReadBack(t *testing.T) {
	for _, tc := range allModes() {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(tc.mode, tc.scheme, tc.flash)
			cfg.SLCCells = tc.flash == ipa.SLCMode
			db, err := ipa.Open(cfg)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer db.Close()

			table, err := db.CreateTable("t", 100)
			if err != nil {
				t.Fatalf("CreateTable: %v", err)
			}
			const keys = 600
			for k := int64(0); k < keys; k++ {
				if err := table.Insert(k, fillTuple(100, k)); err != nil {
					t.Fatalf("Insert %d: %v", k, err)
				}
			}
			// Update a small field of every tuple several times; the tiny
			// buffer pool forces evictions between rounds.
			for round := 0; round < 3; round++ {
				for k := int64(0); k < keys; k++ {
					tx := db.Begin()
					val := []byte{byte(round + 1), byte(k)}
					if err := tx.UpdateAt(table, k, 10, val); err != nil {
						t.Fatalf("UpdateAt %d: %v", k, err)
					}
					if err := tx.Commit(); err != nil {
						t.Fatalf("Commit: %v", err)
					}
				}
			}
			if err := db.FlushAll(); err != nil {
				t.Fatalf("FlushAll: %v", err)
			}
			for k := int64(0); k < keys; k++ {
				row, err := table.Get(k)
				if err != nil {
					t.Fatalf("Get %d: %v", k, err)
				}
				want := fillTuple(100, k)
				want[10], want[11] = 3, byte(k)
				if string(row) != string(want) {
					t.Fatalf("key %d: tuple mismatch after updates\n got %x\nwant %x", k, row, want)
				}
			}
			stats := db.Stats()
			if tc.mode != ipa.Traditional && stats.IPAAppendEvictions == 0 {
				t.Errorf("expected in-place append evictions in mode %s, got stats %+v", tc.mode, stats)
			}
			if tc.mode == ipa.Traditional && stats.IPAAppendEvictions != 0 {
				t.Errorf("traditional mode must not use in-place appends, got %d", stats.IPAAppendEvictions)
			}
		})
	}
}

// TestEngineGCReduction checks the paper's headline effect: under an
// update-intensive workload, IPA causes fewer page invalidations and fewer
// GC erases than the traditional out-of-place baseline.
func TestEngineGCReduction(t *testing.T) {
	run := func(mode ipa.WriteMode, scheme ipa.Scheme, flash ipa.FlashMode) ipa.Stats {
		cfg := smallConfig(mode, scheme, flash)
		db, err := ipa.Open(cfg)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer db.Close()
		table, err := db.CreateTable("t", 100)
		if err != nil {
			t.Fatalf("CreateTable: %v", err)
		}
		const keys = 2000
		for k := int64(0); k < keys; k++ {
			if err := table.Insert(k, fillTuple(100, k)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		db.ResetStats()
		for i := 0; i < 30000; i++ {
			k := int64(i*7919) % keys
			if err := table.UpdateAt(k, 8, []byte{byte(i), byte(i >> 8)}); err != nil {
				t.Fatalf("UpdateAt: %v", err)
			}
		}
		if err := db.FlushAll(); err != nil {
			t.Fatalf("FlushAll: %v", err)
		}
		return db.Stats()
	}

	base := run(ipa.Traditional, ipa.Scheme{}, ipa.MLCFull)
	ipaStats := run(ipa.IPANativeFlash, ipa.Scheme{N: 2, M: 4}, ipa.PSLC)

	if base.Invalidations == 0 {
		t.Fatalf("baseline produced no invalidations; workload too small: %+v", base)
	}
	if ipaStats.Invalidations >= base.Invalidations {
		t.Errorf("IPA should invalidate fewer pages: base=%d ipa=%d", base.Invalidations, ipaStats.Invalidations)
	}
	if base.GCErases > 0 && ipaStats.GCErases >= base.GCErases {
		t.Errorf("IPA should erase fewer blocks: base=%d ipa=%d", base.GCErases, ipaStats.GCErases)
	}
	if ipaStats.InPlaceAppends == 0 {
		t.Errorf("IPA run performed no in-place appends: %+v", ipaStats)
	}
}

// TestEngineRecovery verifies that WAL-based recovery produces the same
// state with and without IPA (the paper: "regular database functionality is
// NOT impacted").
func TestEngineRecovery(t *testing.T) {
	for _, tc := range allModes() {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(tc.mode, tc.scheme, tc.flash)
			cfg.SLCCells = tc.flash == ipa.SLCMode
			db, err := ipa.Open(cfg)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer db.Close()
			table, err := db.CreateTable("t", 64)
			if err != nil {
				t.Fatalf("CreateTable: %v", err)
			}
			for k := int64(0); k < 100; k++ {
				if err := table.Insert(k, fillTuple(64, k)); err != nil {
					t.Fatalf("Insert: %v", err)
				}
			}
			// Committed transaction.
			tx := db.Begin()
			if err := tx.UpdateAt(table, 5, 20, []byte{0xAA, 0xBB}); err != nil {
				t.Fatalf("UpdateAt: %v", err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("Commit: %v", err)
			}
			// Aborted transaction: its change must not survive.
			tx2 := db.Begin()
			if err := tx2.UpdateAt(table, 6, 20, []byte{0xCC}); err != nil {
				t.Fatalf("UpdateAt: %v", err)
			}
			if err := tx2.Abort(); err != nil {
				t.Fatalf("Abort: %v", err)
			}
			if err := db.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			row5, err := table.Get(5)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if row5[20] != 0xAA || row5[21] != 0xBB {
				t.Errorf("committed update lost after recovery: % x", row5[18:24])
			}
			row6, err := table.Get(6)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			want := fillTuple(64, 6)
			if row6[20] != want[20] {
				t.Errorf("aborted update survived recovery: got %x want %x", row6[20], want[20])
			}
		})
	}
}

// TestEngineSchemeValidation rejects nonsensical configurations.
func TestEngineSchemeValidation(t *testing.T) {
	_, err := ipa.Open(ipa.Config{Scheme: ipa.Scheme{N: 2, M: 0}, WriteMode: ipa.IPANativeFlash})
	if err == nil {
		t.Fatalf("expected error for half-enabled scheme")
	}
}

// ExampleOpen demonstrates the quickstart from the package documentation.
func ExampleOpen() {
	db, err := ipa.Open(ipa.Config{
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
		PageSize:        4096,
		Blocks:          64,
		PagesPerBlock:   32,
		BufferPoolPages: 32,
	})
	if err != nil {
		fmt.Println("open failed:", err)
		return
	}
	defer db.Close()
	accounts, _ := db.CreateTable("accounts", 64)
	_ = accounts.Insert(1, make([]byte, 64))
	tx := db.Begin()
	_ = tx.UpdateAt(accounts, 1, 0, []byte{42})
	_ = tx.Commit()
	row, _ := accounts.Get(1)
	fmt.Println(row[0])
	// Output: 42
}
