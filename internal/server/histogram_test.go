package server

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the le semantics at the edges: zero and
// negative durations land in bucket 0, a duration exactly on a bound
// lands in that bound's bucket (le is inclusive), one tick past a bound
// spills into the next, and anything beyond the largest finite bound
// lands in +Inf.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0}, // clamped by observe, but bucketOf alone also maps it to 0
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},                   // exactly on the first bound: le inclusive
		{time.Microsecond + time.Nanosecond, 1}, // one past the bound
		{2 * time.Microsecond, 1},               // exactly on the second bound
		{histBounds[histBucketCount-1], histBucketCount - 1},               // exactly on the max bound
		{histBounds[histBucketCount-1] + time.Nanosecond, histBucketCount}, // past max: +Inf
		{time.Hour, histBucketCount},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// The bounds double from 1µs.
	for i := 1; i < histBucketCount; i++ {
		if histBounds[i] != 2*histBounds[i-1] {
			t.Fatalf("bound %d = %v, want %v", i, histBounds[i], 2*histBounds[i-1])
		}
	}
}

// TestHistogramMergeOracle records a random workload twice — once through
// the sharded histogram with recorders spread over every shard, once into
// a plain serial array — and requires the merged snapshot to match the
// oracle exactly.
func TestHistogramMergeOracle(t *testing.T) {
	const shards = 7
	h := &cmdHist{shards: make([]histShard, shards)}
	rng := rand.New(rand.NewSource(41))

	var oracle [histBucketCount + 1]uint64
	var oracleSum time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		// Spread observations across nine orders of magnitude so every
		// bucket region gets traffic, including +Inf.
		d := time.Duration(rng.Int63n(int64(time.Second)))
		if i%100 == 0 {
			d = time.Second + time.Duration(rng.Int63n(int64(time.Second)))
		}
		h.observe(i%shards, d)
		oracle[bucketOf(d)]++
		oracleSum += d
	}

	s := h.snapshot()
	if s.Count != n {
		t.Fatalf("merged count = %d, want %d", s.Count, n)
	}
	if s.Sum != oracleSum {
		t.Fatalf("merged sum = %v, want %v", s.Sum, oracleSum)
	}
	if s.Counts != oracle {
		t.Fatalf("merged buckets = %v, want %v", s.Counts, oracle)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// (run under -race by CI) and checks the final snapshot accounts for
// every observation.
func TestHistogramConcurrent(t *testing.T) {
	shards := latencyShards()
	h := &cmdHist{shards: make([]histShard, shards)}
	const (
		workers = 8
		perW    = 5000
	)
	var recorders sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	// A concurrent scraper: snapshots taken mid-write must be internally
	// sane (count equals the bucket total) even while recorders run.
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.snapshot()
			var total uint64
			for _, c := range s.Counts {
				total += c
			}
			if total != s.Count {
				t.Errorf("mid-run snapshot inconsistent: bucket total %d != count %d", total, s.Count)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		recorders.Add(1)
		go func(w int) {
			defer recorders.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				h.observe(w%shards, time.Duration(rng.Int63n(int64(10*time.Millisecond))))
			}
		}(w)
	}
	recorders.Wait()
	close(stop)
	<-scraperDone

	s := h.snapshot()
	if s.Count != workers*perW {
		t.Fatalf("final count = %d, want %d", s.Count, workers*perW)
	}
}

// TestQuantileEstimate checks the interpolation on a hand-computable
// distribution: 100 observations at ~1.5µs (bucket le=2µs) and 100 at
// ~3µs (bucket le=4µs).
func TestQuantileEstimate(t *testing.T) {
	h := &cmdHist{shards: make([]histShard, 1)}
	for i := 0; i < 100; i++ {
		h.observe(0, 1500*time.Nanosecond)
		h.observe(0, 3*time.Microsecond)
	}
	s := h.snapshot()
	// p25 (rank 50) sits mid-bucket [1µs,2µs] → 1µs + (50/100)·1µs = 1.5µs.
	if got, want := s.quantile(0.25), 1500*time.Nanosecond; got != want {
		t.Errorf("p25 = %v, want %v", got, want)
	}
	// p75 (rank 150) sits mid-bucket (2µs,4µs] → 2µs + (50/100)·2µs = 3µs.
	if got, want := s.quantile(0.75), 3*time.Microsecond; got != want {
		t.Errorf("p75 = %v, want %v", got, want)
	}
	if got, want := s.mean(), (1500*time.Nanosecond+3*time.Microsecond)/2; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// +Inf observations clamp to the largest finite bound.
	h2 := &cmdHist{shards: make([]histShard, 1)}
	h2.observe(0, time.Hour)
	if got, want := h2.snapshot().quantile(0.99), histBounds[histBucketCount-1]; got != want {
		t.Errorf("+Inf quantile = %v, want clamp to %v", got, want)
	}
	// Empty histogram.
	var empty histSnapshot
	if empty.quantile(0.5) != 0 || empty.mean() != 0 {
		t.Error("empty histogram must report zero quantile and mean")
	}
}
