package server

import (
	"errors"
	"io"
	"net"
	"time"

	"ipa"
	"ipa/internal/proto"
)

// session is one client connection: a reader goroutine decodes frames
// into a bounded queue (the pipeline), and the session goroutine executes
// them strictly in order, writing replies through a buffered encoder that
// is flushed at pipeline boundaries — one syscall per batch, which is
// where pipelining's throughput comes from. In-order execution is also
// what gives BEGIN/…/COMMIT sequences their meaning on a pipelined
// connection.
type session struct {
	srv  *Server
	conn net.Conn
	r    *proto.Reader
	w    *proto.Writer

	// reqs carries decoded commands from the reader to the executor;
	// readErr holds the reader's terminal error, valid after reqs closes.
	reqs    chan [][]byte
	readErr error

	// tx is the connection's open explicit transaction, nil outside
	// BEGIN…COMMIT/ABORT. Aborted on disconnect.
	tx *ipa.Tx

	// quit is set by the QUIT command: flush and hang up.
	quit bool

	// shard is this session's lane in the latency histograms; sessions are
	// dealt shards round-robin so concurrent recorders rarely collide.
	shard int
}

func newSession(srv *Server, conn net.Conn) *session {
	r := proto.NewReader(conn)
	if srv.cfg.MaxBulk > 0 {
		r.MaxBulk = srv.cfg.MaxBulk
	}
	return &session{
		srv:   srv,
		conn:  conn,
		r:     r,
		w:     proto.NewWriter(conn),
		reqs:  make(chan [][]byte, srv.cfg.PipelineDepth),
		shard: int(srv.nextShard.Add(1)-1) % srv.lat.shards,
	}
}

// serve runs the session to completion.
func (s *session) serve() {
	defer s.srv.dropSession(s)
	defer s.conn.Close()
	go s.readLoop()

	// readerDone records that the reqs channel closed: only then has
	// readLoop finished, and only then may readErr be read (the channel
	// close is the happens-before edge). Leaving the loop by break —
	// QUIT, or a dead connection failing the flush — races the reader,
	// and a final reply could not be delivered anyway.
	readerDone := false
loop:
	for {
		args, ok := <-s.reqs
		if !ok {
			readerDone = true
			break
		}
		s.srv.workers <- struct{}{} // engine admission: chips × GOMAXPROCS lanes
		s.execute(args)
		<-s.srv.workers
		if s.quit {
			break loop
		}
		// Flush only at pipeline boundaries: while more commands are
		// queued, replies accumulate in the write buffer.
		if len(s.reqs) == 0 {
			if err := s.w.Flush(); err != nil {
				break loop
			}
		}
	}

	// The reader is done. A malformed frame cannot be resynchronised:
	// report it as the final reply, then hang up.
	if readerDone && !s.quit {
		if err := s.readErr; errors.Is(err, proto.ErrProto) || errors.Is(err, proto.ErrTooLarge) {
			s.writeError(codeProto, err.Error())
		}
	}
	s.w.Flush()
	// Half-read pipelines die with the connection, but an open explicit
	// transaction must not leak its locks: abort it.
	if s.tx != nil {
		_ = s.tx.Abort()
		s.tx = nil
	}
	// Close the connection first — it unblocks a reader parked in Read —
	// then drain the queue so the reader can never block forever on a
	// full channel after the executor stops.
	s.conn.Close()
	for range s.reqs {
	}
}

// readLoop decodes frames into the pipeline until the connection fails,
// the peer hangs up, or the frame stream turns malformed.
func (s *session) readLoop() {
	defer close(s.reqs)
	for {
		args, err := s.r.ReadCommand()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.readErr = err
			}
			return
		}
		s.reqs <- args
	}
}

// drain makes the session stop reading new frames: the in-flight read is
// unblocked by an immediate deadline, the already-queued commands run to
// completion and their replies are flushed by the executor as usual.
func (s *session) drain() {
	s.conn.SetReadDeadline(time.Now())
}

// writeError emits one error reply and counts it.
func (s *session) writeError(code, msg string) {
	s.srv.errorReplies.Add(1)
	s.w.WriteError(code, msg)
}
