package server

import (
	_ "embed"
	"net/http"
)

// The live dashboard is one self-contained HTML page — no external
// assets, no JS dependencies — embedded into the binary. It polls
// /stats.json once a second and renders the burn gauge, the trailing-
// window rate sparklines, per-chip wear balance, per-region in-place
// ratios and the per-command latency table client-side. The page
// contract (which fields it reads) is part of docs/DESIGN_OPS.md.

//go:embed dashboard.html
var dashboardHTML []byte

// handleDashboard serves the embedded page.
func (srv *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}
