package server

// Exported views of the wire error-code table, so out-of-process tooling
// (cmd/ipadb's -json envelopes) reports the same stable codes the server
// puts on the wire, and a drift test can compare the two surfaces.

// Wire error codes, exported. Values mirror the code* constants used by
// the dispatch layer; docs/DESIGN_SERVER.md documents each.
const (
	CodeErr      = codeErr
	CodeProto    = codeProto
	CodeUnknown  = codeUnknown
	CodeArgs     = codeArgs
	CodeNoTable  = codeNoTable
	CodeExists   = codeExists
	CodeNotFound = codeNotFound
	CodeDupKey   = codeDupKey
	CodeConflict = codeConflict
	CodeNoIndex  = codeNoIndex
	CodeNoTxn    = codeNoTxn
	CodeInTxn    = codeInTxn
	CodeFinished = codeFinished
	CodeClosed   = codeClosed
)

// WireCodes returns a copy of the full error-code table.
func WireCodes() []string {
	out := make([]string, len(wireCodes))
	copy(out, wireCodes)
	return out
}

// ErrCode maps an engine error onto its stable wire code, exactly as the
// server's reply path does. The mapping is total: unrecognised errors are
// CodeErr.
func ErrCode(err error) string { return errCode(err) }
