package server

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Per-command latency histograms. Recording must never serialise the hot
// path, so each histogram is split into per-worker shards of atomic
// counters: a session records into its own shard lock-free, and the
// /metrics and /stats.json scrapers merge the shards on read. The bucket
// layout is fixed — log-spaced powers of two from 1µs — so merged shards
// are always bucket-compatible and the Prometheus exposition (the
// `_bucket`/`_sum`/`_count` triple) needs no locking either.

// histBucketCount is the number of finite buckets; one +Inf catch-all
// bucket follows. Bounds run 1µs, 2µs, … 2^19µs ≈ 0.52s.
const histBucketCount = 20

// histBounds holds the inclusive (`le`) upper bound of each finite bucket.
var histBounds = func() [histBucketCount]time.Duration {
	var b [histBucketCount]time.Duration
	d := time.Microsecond
	for i := range b {
		b[i] = d
		d *= 2
	}
	return b
}()

// bucketOf returns the index of the first bucket whose bound is >= d;
// durations beyond the last finite bound land in the +Inf bucket
// (index histBucketCount). Non-positive durations land in bucket 0.
func bucketOf(d time.Duration) int {
	for i, bound := range histBounds {
		if d <= bound {
			return i
		}
	}
	return histBucketCount
}

// histShard is one worker's slice of a histogram. The trailing pad keeps
// concurrently-written shards off each other's cache lines.
type histShard struct {
	counts [histBucketCount + 1]atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	_      [48]byte
}

// cmdHist is the sharded histogram of one command.
type cmdHist struct {
	shards []histShard
}

// observe records one duration into the caller's shard.
func (h *cmdHist) observe(shard int, d time.Duration) {
	if d < 0 {
		d = 0
	}
	sh := &h.shards[shard]
	sh.counts[bucketOf(d)].Add(1)
	sh.sum.Add(int64(d))
}

// histSnapshot is a merged, point-in-time view of one histogram. Counts
// are per-bucket (not cumulative); the exposition layer accumulates.
type histSnapshot struct {
	Counts [histBucketCount + 1]uint64
	Sum    time.Duration
	Count  uint64
}

// snapshot merges all shards. Concurrent observers may land between two
// bucket reads, so a snapshot is only guaranteed to cover every
// observation that completed before the call — exactly the Prometheus
// scrape contract.
func (h *cmdHist) snapshot() histSnapshot {
	var s histSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Sum += time.Duration(sh.sum.Load())
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the owning bucket, the standard Prometheus histogram_quantile
// estimate. Observations in the +Inf bucket clamp to the largest finite
// bound. Returns 0 for an empty histogram.
func (s histSnapshot) quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= histBucketCount {
			return histBounds[histBucketCount-1]
		}
		lower := time.Duration(0)
		if i > 0 {
			lower = histBounds[i-1]
		}
		upper := histBounds[i]
		frac := (rank - prev) / float64(c)
		return lower + time.Duration(frac*float64(upper-lower))
	}
	return histBounds[histBucketCount-1]
}

// mean returns the average observed duration.
func (s histSnapshot) mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// latencies is the per-command histogram vector. The command set is the
// static dispatch registry, so the map is built once and read-only — no
// lock anywhere on the record path.
type latencies struct {
	shards int
	cmds   map[string]*cmdHist
}

// latencyShards picks the shard count: one per scheduling lane, capped so
// scrapes stay cheap.
func latencyShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

func newLatencies(shards int) *latencies {
	if shards < 1 {
		shards = 1
	}
	l := &latencies{shards: shards, cmds: make(map[string]*cmdHist, len(commandNames))}
	for _, name := range commandNames {
		l.cmds[name] = &cmdHist{shards: make([]histShard, shards)}
	}
	return l
}

// observe records one handled command. Unknown names (never in the
// registry) are dropped.
func (l *latencies) observe(cmd string, shard int, d time.Duration) {
	if h, ok := l.cmds[cmd]; ok {
		h.observe(shard, d)
	}
}

// snapshot merges every command's shards; the iteration order is
// commandNames (sorted), which keeps the exposition stable.
func (l *latencies) snapshot() map[string]histSnapshot {
	out := make(map[string]histSnapshot, len(l.cmds))
	for name, h := range l.cmds {
		out[name] = h.snapshot()
	}
	return out
}
