package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ipa"
	"ipa/internal/txn"
)

// Wire error codes. Every reply-position error the server can emit
// carries exactly one of these as its first token; docs/DESIGN_SERVER.md
// documents each (spec_test.go enforces that).
const (
	codeErr      = "ERR"      // internal or unclassified engine error
	codeProto    = "PROTO"    // malformed frame; the connection closes after this reply
	codeUnknown  = "UNKNOWN"  // unknown command name
	codeArgs     = "ARGS"     // wrong argument count or unparsable argument
	codeNoTable  = "NOTABLE"  // named table does not exist
	codeExists   = "EXISTS"   // table or index name already taken
	codeNotFound = "NOTFOUND" // primary key not present
	codeDupKey   = "DUPKEY"   // primary key already present
	codeConflict = "CONFLICT" // record lock conflict; abort and retry
	codeNoIndex  = "NOINDEX"  // named secondary index does not exist
	codeNoTxn    = "NOTXN"    // COMMIT/ABORT without an open transaction
	codeInTxn    = "INTXN"    // BEGIN while a transaction is already open
	codeFinished = "FINISHED" // operation on a finished transaction
	codeClosed   = "CLOSED"   // engine closed (server shutting down)
)

// wireCodes lists every error code for the spec drift test.
var wireCodes = []string{
	codeErr, codeProto, codeUnknown, codeArgs, codeNoTable, codeExists,
	codeNotFound, codeDupKey, codeConflict, codeNoIndex, codeNoTxn,
	codeInTxn, codeFinished, codeClosed,
}

// errCode maps an engine error onto its stable wire code. The mapping is
// total: anything unrecognised is ERR, every exported engine sentinel has
// its own code.
func errCode(err error) string {
	switch {
	case errors.Is(err, ipa.ErrClosed):
		return codeClosed
	case errors.Is(err, ipa.ErrKeyNotFound):
		return codeNotFound
	case errors.Is(err, ipa.ErrDuplicateKey):
		return codeDupKey
	case errors.Is(err, ipa.ErrConflict):
		return codeConflict
	case errors.Is(err, ipa.ErrIndexNotFound):
		return codeNoIndex
	case errors.Is(err, ipa.ErrTableExists), errors.Is(err, ipa.ErrIndexExists):
		return codeExists
	case errors.Is(err, txn.ErrFinished):
		return codeFinished
	default:
		return codeErr
	}
}

// command is one dispatch-table entry.
type command struct {
	name  string
	usage string // "GET table key" — reported on ARGS errors, checked by spec_test
	min   int    // minimum argument count (excluding the name)
	max   int    // maximum argument count, -1 = unbounded
	fn    func(s *session, args [][]byte)
}

// commands is the dispatch table; commandNames its sorted index.
var commands = map[string]command{}
var commandNames []string

func register(name, usage string, min, max int, fn func(s *session, args [][]byte)) {
	commands[name] = command{name: name, usage: usage, min: min, max: max, fn: fn}
	commandNames = append(commandNames, name)
	sort.Strings(commandNames)
}

func init() {
	register("PING", "PING", 0, 0, cmdPing)
	register("ECHO", "ECHO message", 1, 1, cmdEcho)
	register("QUIT", "QUIT", 0, 0, cmdQuit)
	register("CREATE", "CREATE table tupleSize", 2, 2, cmdCreate)
	register("TABLES", "TABLES", 0, 0, cmdTables)
	register("COUNT", "COUNT table", 1, 1, cmdCount)
	register("INSERT", "INSERT table key value", 3, 3, cmdInsert)
	register("GET", "GET table key", 2, 2, cmdGet)
	register("GETFU", "GETFU table key", 2, 2, cmdGetFU)
	register("UPDATE", "UPDATE table key offset value", 4, 4, cmdUpdate)
	register("DEL", "DEL table key", 2, 2, cmdDel)
	register("SCAN", "SCAN table from to [limit]", 3, 4, cmdScan)
	register("CINDEX", "CINDEX table index offset", 3, 3, cmdCIndex)
	register("INDEXES", "INDEXES table", 1, 1, cmdIndexes)
	register("GETBY", "GETBY table index key", 3, 3, cmdGetBy)
	register("SCANBY", "SCANBY table index from to [limit]", 4, 5, cmdScanBy)
	register("BEGIN", "BEGIN", 0, 0, cmdBegin)
	register("COMMIT", "COMMIT", 0, 0, cmdCommit)
	register("ABORT", "ABORT", 0, 0, cmdAbort)
	register("CHECKPOINT", "CHECKPOINT", 0, 0, cmdCheckpoint)
	register("STATS", "STATS [JSON]", 0, 1, cmdStats)
	register("INFO", "INFO", 0, 0, cmdInfo)
}

// execute dispatches one decoded command and writes exactly one reply.
func (s *session) execute(args [][]byte) {
	s.srv.commandsRun.Add(1)
	name := strings.ToUpper(string(args[0]))
	cmd, ok := commands[name]
	if !ok {
		s.writeError(codeUnknown, fmt.Sprintf("unknown command %q", name))
		return
	}
	rest := args[1:]
	if len(rest) < cmd.min || (cmd.max >= 0 && len(rest) > cmd.max) {
		s.writeError(codeArgs, "usage: "+cmd.usage)
		return
	}
	start := time.Now()
	cmd.fn(s, rest)
	s.srv.lat.observe(name, s.shard, time.Since(start))
}

// engineError maps err onto its wire code and writes the error reply.
func (s *session) engineError(err error) {
	s.writeError(errCode(err), err.Error())
}

// table resolves a table name argument, writing NOTABLE on failure.
func (s *session) table(name []byte) (*ipa.Table, bool) {
	t, ok := s.srv.db.Table(string(name))
	if !ok {
		s.writeError(codeNoTable, fmt.Sprintf("no such table %q", name))
	}
	return t, ok
}

// argInt parses a decimal int64 argument, writing ARGS on failure.
func (s *session) argInt(what string, b []byte) (int64, bool) {
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		s.writeError(codeArgs, fmt.Sprintf("bad %s %q", what, b))
		return 0, false
	}
	return n, true
}

// tuple pads value to the table's fixed tuple size, writing ARGS when the
// value does not fit.
func (s *session) tuple(t *ipa.Table, value []byte) ([]byte, bool) {
	if len(value) > t.TupleSize() {
		s.writeError(codeArgs, fmt.Sprintf("value of %d bytes exceeds the %d-byte tuples of %q",
			len(value), t.TupleSize(), t.Name()))
		return nil, false
	}
	tuple := make([]byte, t.TupleSize())
	copy(tuple, value)
	return tuple, true
}

// autocommit runs fn inside the session's open transaction if there is
// one, or wraps it in its own begin/commit otherwise — every write on the
// wire is transactional and WAL-logged.
func (s *session) autocommit(fn func(tx *ipa.Tx) error) error {
	if s.tx != nil {
		return fn(s.tx)
	}
	tx := s.srv.db.Begin()
	if err := fn(tx); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// scanLimit parses the optional row-count bound of SCAN/SCANBY.
const defaultScanLimit = 1000

func (s *session) scanLimit(args [][]byte, idx int) (int, bool) {
	if len(args) <= idx {
		return defaultScanLimit, true
	}
	n, ok := s.argInt("limit", args[idx])
	if !ok {
		return 0, false
	}
	if n <= 0 {
		s.writeError(codeArgs, "limit must be positive")
		return 0, false
	}
	return int(n), true
}

func cmdPing(s *session, _ [][]byte) { s.w.WriteSimple("PONG") }

func cmdEcho(s *session, args [][]byte) { s.w.WriteBulk(args[0]) }

func cmdQuit(s *session, _ [][]byte) {
	s.quit = true
	s.w.WriteSimple("OK")
}

func cmdCreate(s *session, args [][]byte) {
	size, ok := s.argInt("tuple size", args[1])
	if !ok {
		return
	}
	if _, err := s.srv.db.CreateTable(string(args[0]), int(size)); err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteSimple("OK")
}

func cmdTables(s *session, _ [][]byte) {
	names := s.srv.db.Tables()
	sort.Strings(names)
	s.w.WriteArray(len(names))
	for _, n := range names {
		s.w.WriteBulkString(n)
	}
}

func cmdCount(s *session, args [][]byte) {
	t, ok := s.table(args[0])
	if !ok {
		return
	}
	s.w.WriteInt(int64(t.Count()))
}

func cmdInsert(s *session, args [][]byte) {
	t, ok := s.table(args[0])
	if !ok {
		return
	}
	key, ok := s.argInt("key", args[1])
	if !ok {
		return
	}
	tuple, ok := s.tuple(t, args[2])
	if !ok {
		return
	}
	if err := s.autocommit(func(tx *ipa.Tx) error { return tx.Insert(t, key, tuple) }); err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteSimple("OK")
}

func cmdGet(s *session, args [][]byte) {
	t, ok := s.table(args[0])
	if !ok {
		return
	}
	key, ok := s.argInt("key", args[1])
	if !ok {
		return
	}
	var (
		tuple []byte
		err   error
	)
	if s.tx != nil {
		tuple, err = s.tx.Get(t, key) // repeatable read at the txn snapshot
	} else {
		tuple, err = t.Get(key) // fresh statement snapshot
	}
	if err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteBulk(tuple)
}

// cmdGetFU is GET under the transaction's record lock: the returned
// value cannot change (or roll back) before COMMIT/ABORT, so a
// read-modify-write built from it never loses a concurrent update. Only
// meaningful inside a transaction — the lock's lifetime is the
// transaction's — so outside one it is a NOTXN error.
func cmdGetFU(s *session, args [][]byte) {
	if s.tx == nil {
		s.writeError(codeNoTxn, "GETFU requires an open transaction")
		return
	}
	t, ok := s.table(args[0])
	if !ok {
		return
	}
	key, ok := s.argInt("key", args[1])
	if !ok {
		return
	}
	tuple, err := s.tx.GetForUpdate(t, key)
	if err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteBulk(tuple)
}

func cmdUpdate(s *session, args [][]byte) {
	t, ok := s.table(args[0])
	if !ok {
		return
	}
	key, ok := s.argInt("key", args[1])
	if !ok {
		return
	}
	offset, ok := s.argInt("offset", args[2])
	if !ok {
		return
	}
	if err := s.autocommit(func(tx *ipa.Tx) error {
		return tx.UpdateAt(t, key, int(offset), args[3])
	}); err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteSimple("OK")
}

func cmdDel(s *session, args [][]byte) {
	t, ok := s.table(args[0])
	if !ok {
		return
	}
	key, ok := s.argInt("key", args[1])
	if !ok {
		return
	}
	if err := s.autocommit(func(tx *ipa.Tx) error { return tx.Delete(t, key) }); err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteSimple("OK")
}

// scanRow is one buffered row of a range read.
type scanRow struct {
	key   int64
	tuple []byte
}

func cmdScan(s *session, args [][]byte) {
	t, ok := s.table(args[0])
	if !ok {
		return
	}
	from, ok := s.argInt("from", args[1])
	if !ok {
		return
	}
	to, ok := s.argInt("to", args[2])
	if !ok {
		return
	}
	limit, ok := s.scanLimit(args, 3)
	if !ok {
		return
	}
	rows := make([]scanRow, 0, 16)
	err := t.ScanRange(from, to, func(key int64, tuple []byte) bool {
		rows = append(rows, scanRow{key, tuple})
		return len(rows) < limit
	})
	if err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteArray(2 * len(rows))
	for _, r := range rows {
		s.w.WriteInt(r.key)
		s.w.WriteBulk(r.tuple)
	}
}

func cmdCIndex(s *session, args [][]byte) {
	t, ok := s.table(args[0])
	if !ok {
		return
	}
	offset, ok := s.argInt("offset", args[2])
	if !ok {
		return
	}
	if offset < 0 || int(offset)+8 > t.TupleSize() {
		s.writeError(codeArgs, fmt.Sprintf("offset %d outside the %d-byte tuples of %q (need offset+8 <= size)",
			offset, t.TupleSize(), t.Name()))
		return
	}
	if _, err := t.CreateSecondaryIndex(string(args[1]), ipa.Int64Field(int(offset))); err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteSimple("OK")
}

func cmdIndexes(s *session, args [][]byte) {
	t, ok := s.table(args[0])
	if !ok {
		return
	}
	names := t.SecondaryIndexes()
	s.w.WriteArray(len(names))
	for _, n := range names {
		s.w.WriteBulkString(n)
	}
}

func cmdGetBy(s *session, args [][]byte) {
	t, ok := s.table(args[0])
	if !ok {
		return
	}
	key, ok := s.argInt("key", args[2])
	if !ok {
		return
	}
	rows, err := t.GetBySecondary(string(args[1]), key)
	if err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteArray(len(rows))
	for _, row := range rows {
		s.w.WriteBulk(row)
	}
}

func cmdScanBy(s *session, args [][]byte) {
	t, ok := s.table(args[0])
	if !ok {
		return
	}
	from, ok := s.argInt("from", args[2])
	if !ok {
		return
	}
	to, ok := s.argInt("to", args[3])
	if !ok {
		return
	}
	limit, ok := s.scanLimit(args, 4)
	if !ok {
		return
	}
	rows := make([]scanRow, 0, 16)
	err := t.ScanSecondary(string(args[1]), from, to, func(key int64, tuple []byte) bool {
		rows = append(rows, scanRow{key, tuple})
		return len(rows) < limit
	})
	if err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteArray(2 * len(rows))
	for _, r := range rows {
		s.w.WriteInt(r.key)
		s.w.WriteBulk(r.tuple)
	}
}

func cmdBegin(s *session, _ [][]byte) {
	if s.tx != nil {
		s.writeError(codeInTxn, "transaction already open on this connection")
		return
	}
	s.tx = s.srv.db.Begin()
	s.w.WriteSimple("OK")
}

func cmdCommit(s *session, _ [][]byte) {
	if s.tx == nil {
		s.writeError(codeNoTxn, "no transaction open on this connection")
		return
	}
	err := s.tx.Commit()
	s.tx = nil
	if err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteSimple("OK")
}

func cmdAbort(s *session, _ [][]byte) {
	if s.tx == nil {
		s.writeError(codeNoTxn, "no transaction open on this connection")
		return
	}
	err := s.tx.Abort()
	s.tx = nil
	if err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteSimple("OK")
}

func cmdCheckpoint(s *session, _ [][]byte) {
	res, err := s.srv.db.Checkpoint()
	if err != nil {
		s.engineError(err)
		return
	}
	out, err := json.Marshal(res)
	if err != nil {
		s.engineError(err)
		return
	}
	s.w.WriteBulk(out)
}

func cmdStats(s *session, args [][]byte) {
	st := s.srv.db.Stats()
	if len(args) == 1 {
		if !strings.EqualFold(string(args[0]), "JSON") {
			s.writeError(codeArgs, "usage: STATS [JSON]")
			return
		}
		out, err := json.Marshal(st)
		if err != nil {
			s.engineError(err)
			return
		}
		s.w.WriteBulk(out)
		return
	}
	s.w.WriteBulkString(st.String())
}

func cmdInfo(s *session, _ [][]byte) {
	srv := s.srv
	var b strings.Builder
	fmt.Fprintf(&b, "addr:%s\n", srv.ln.Addr())
	fmt.Fprintf(&b, "uptime_seconds:%d\n", int64(time.Since(srv.started).Seconds()))
	fmt.Fprintf(&b, "workers:%d\n", srv.cfg.Workers)
	fmt.Fprintf(&b, "pipeline_depth:%d\n", srv.cfg.PipelineDepth)
	fmt.Fprintf(&b, "connections_current:%d\n", srv.connsCurrent.Load())
	fmt.Fprintf(&b, "connections_total:%d\n", srv.connsTotal.Load())
	fmt.Fprintf(&b, "commands_total:%d\n", srv.commandsRun.Load())
	fmt.Fprintf(&b, "error_replies_total:%d\n", srv.errorReplies.Load())
	fmt.Fprintf(&b, "draining:%v\n", srv.draining.Load())
	fmt.Fprintf(&b, "commands:%s\n", strings.Join(commandNames, ","))
	s.w.WriteBulkString(b.String())
}
