package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Prometheus text exposition (/metrics). Every family is written as a
// HELP/TYPE pair followed by its samples; histogram families follow the
// _bucket/_sum/_count convention with cumulative `le` buckets ending at
// +Inf. internal/server/metrics_test.go validates the whole scrape
// against the exposition grammar, so a malformed metric cannot ship.

// metricWriter renders one exposition document.
type metricWriter struct {
	w io.Writer
}

// family writes the HELP/TYPE header of one metric family.
func (m *metricWriter) family(name, help, typ string) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one unlabelled sample.
func (m *metricWriter) sample(name string, v any) {
	fmt.Fprintf(m.w, "%s %v\n", name, v)
}

// labelled writes one sample with a single label.
func (m *metricWriter) labelled(name, label, value string, v any) {
	fmt.Fprintf(m.w, "%s{%s=%q} %v\n", name, label, value, v)
}

// simple writes a one-sample family.
func (m *metricWriter) simple(name, help, typ string, v any) {
	m.family(name, help, typ)
	m.sample(name, v)
}

// fmtLE renders a bucket bound in seconds the way Prometheus clients
// expect ("1e-06", "0.000512", …).
func fmtLE(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// handleMetrics renders engine and server counters, the derived ops
// gauges and the per-command latency histograms in the Prometheus text
// exposition format.
func (srv *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := srv.db.Stats()
	ops := srv.db.Ops()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m := &metricWriter{w: w}

	m.simple("ipa_committed_txns_total", "Committed transactions since the last stats reset.", "counter", st.CommittedTxns)
	m.simple("ipa_aborted_txns_total", "Aborted transactions since the last stats reset.", "counter", st.AbortedTxns)
	m.simple("ipa_in_place_appends_total", "Host writes served as in-place appends.", "counter", st.InPlaceAppends)
	m.simple("ipa_out_of_place_writes_total", "Host writes served out of place.", "counter", st.OutOfPlaceWrites)
	m.simple("ipa_gc_migrations_total", "Garbage-collection page migrations.", "counter", st.GCMigrations)
	m.simple("ipa_gc_erases_total", "Garbage-collection block erases.", "counter", st.GCErases)
	m.simple("ipa_flash_erases_lifetime_total", "Block erases since device creation.", "counter", st.TotalErasesEver)
	m.simple("ipa_wal_bytes_total", "Bytes appended to the write-ahead log.", "counter", st.WALBytes)
	m.simple("ipa_wal_segments", "Live write-ahead-log segments after recycling.", "gauge", st.WALSegments)
	m.simple("ipa_wal_bytes_since_checkpoint", "Log volume accumulated since the last checkpoint (the redo bound).", "gauge", st.WALBytesSinceCheckpoint)
	m.simple("ipa_checkpoint_lsn", "LSN of the last fuzzy checkpoint (0 = never).", "gauge", st.CheckpointLSN)
	m.simple("ipa_buffer_hits_total", "Buffer pool hits.", "counter", st.BufferHits)
	m.simple("ipa_buffer_misses_total", "Buffer pool misses.", "counter", st.BufferMisses)
	m.simple("ipa_lock_conflicts_total", "No-wait record-lock denials (CONFLICT replies).", "counter", st.LockConflicts)
	m.simple("ipa_snapshot_reads_total", "Lock-free MVCC snapshot read resolutions.", "counter", st.SnapshotReads)
	m.simple("ipa_group_commit_batch_mean", "Mean commit requests served per physical WAL flush.", "gauge", st.CommitsPerFlush())

	// Derived lifetime-burn gauges (docs/DESIGN_OPS.md).
	m.simple("ipa_device_erase_budget", "Total block erases the device can absorb: blocks x endurance cycles.", "gauge", ops.EraseBudget)
	m.simple("ipa_device_life_burned_ratio", "Fraction of the erase budget already consumed (1.0 = device dead).", "gauge", ops.LifeBurned)
	m.simple("ipa_device_time_to_death_seconds", "Remaining erase budget extrapolated at the trailing-window erase rate, in virtual seconds (0 = no erase activity observed).", "gauge", ops.TimeToDeath.Seconds())
	m.simple("ipa_device_erases_avoided_total", "Erases the in-place-append path saved over the out-of-place baseline (modelled, current stats window).", "counter", ops.ErasesAvoided)
	m.simple("ipa_window_tps", "Committed transactions per virtual second over the trailing window.", "gauge", ops.WindowTPS)
	m.simple("ipa_window_evictions_per_sec", "Dirty page evictions per virtual second over the trailing window.", "gauge", ops.WindowEvictionsPerSec)
	m.simple("ipa_window_in_place_share", "Fraction of trailing-window host writes served as in-place appends.", "gauge", ops.WindowInPlaceShare)
	m.simple("ipa_window_erase_rate_per_sec", "Block erases per virtual second over the trailing window.", "gauge", ops.WindowEraseRatePerSec)

	// Per-chip wear and load, for the balance view.
	if len(st.ChipStats) > 0 {
		m.family("ipa_chip_erases_total", "Block erases per chip since device creation.", "counter")
		for _, c := range st.ChipStats {
			m.labelled("ipa_chip_erases_total", "chip", strconv.Itoa(c.Chip), c.BlockErases)
		}
		m.family("ipa_chip_busy_seconds", "Virtual busy time per chip since device creation.", "gauge")
		for _, c := range st.ChipStats {
			m.labelled("ipa_chip_busy_seconds", "chip", strconv.Itoa(c.Chip), c.Busy.Seconds())
		}
	}

	// Server wire counters.
	m.simple("ipa_server_connections_current", "Connections currently open.", "gauge", srv.connsCurrent.Load())
	m.simple("ipa_server_connections_total", "Connections accepted since start.", "counter", srv.connsTotal.Load())
	m.simple("ipa_server_commands_total", "Commands executed since start.", "counter", srv.commandsRun.Load())
	m.simple("ipa_server_error_replies_total", "Error replies sent since start.", "counter", srv.errorReplies.Load())
	m.simple("ipa_server_uptime_seconds", "Seconds since the server started.", "gauge", int64(time.Since(srv.started).Seconds()))

	// Per-command latency histograms: one family, one series set per
	// command, cumulative buckets ending at +Inf.
	m.family("ipa_server_command_seconds", "Wall-clock latency of command handling, by command.", "histogram")
	for _, name := range commandNames {
		s := srv.lat.cmds[name].snapshot()
		var cum uint64
		for i := 0; i < histBucketCount; i++ {
			cum += s.Counts[i]
			fmt.Fprintf(w, "ipa_server_command_seconds_bucket{cmd=%q,le=%q} %d\n", name, fmtLE(histBounds[i]), cum)
		}
		cum += s.Counts[histBucketCount]
		fmt.Fprintf(w, "ipa_server_command_seconds_bucket{cmd=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "ipa_server_command_seconds_sum{cmd=%q} %v\n", name, s.Sum.Seconds())
		fmt.Fprintf(w, "ipa_server_command_seconds_count{cmd=%q} %d\n", name, s.Count)
	}
}
