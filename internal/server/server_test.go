package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ipa"
	"ipa/internal/proto"
	"ipa/ipaclient"
)

// newTestServer starts a server on loopback ports over a small simulated
// device and returns it with its engine.
func newTestServer(t *testing.T) (*Server, *ipa.DB) {
	t.Helper()
	db, err := ipa.Open(ipa.Config{
		Blocks:          64,
		PagesPerBlock:   32,
		Chips:           2,
		BufferPoolPages: 64,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		WriteMode:       ipa.IPANativeFlash,
		FlashMode:       ipa.PSLC,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := New(db, Config{Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", Logf: t.Logf})
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, db
}

func dial(t *testing.T, srv *Server) *ipaclient.Client {
	t.Helper()
	c, err := ipaclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// do runs a command that must succeed.
func do(t *testing.T, c *ipaclient.Client, args ...string) proto.Reply {
	t.Helper()
	r, err := c.DoStrings(args...)
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return r
}

// doErr runs a command that must fail with the given wire code.
func doErr(t *testing.T, c *ipaclient.Client, code string, args ...string) {
	t.Helper()
	_, err := c.DoStrings(args...)
	if !ipaclient.IsCode(err, code) {
		t.Fatalf("%v: got %v, want wire code %s", args, err, code)
	}
}

// TestCommandMatrix exercises every command and every reachable error
// code over a real connection.
func TestCommandMatrix(t *testing.T) {
	srv, _ := newTestServer(t)
	c := dial(t, srv)

	if r := do(t, c, "PING"); r.Str != "PONG" {
		t.Fatalf("PING: %+v", r)
	}
	if r := do(t, c, "ECHO", "hello"); string(r.Bulk) != "hello" {
		t.Fatalf("ECHO: %+v", r)
	}

	// Tables and rows.
	do(t, c, "CREATE", "acc", "64")
	doErr(t, c, "EXISTS", "CREATE", "acc", "64")
	if r := do(t, c, "TABLES"); len(r.Elems) != 1 || string(r.Elems[0].Bulk) != "acc" {
		t.Fatalf("TABLES: %+v", r)
	}
	do(t, c, "INSERT", "acc", "1", "alice")
	doErr(t, c, "DUPKEY", "INSERT", "acc", "1", "alice")
	do(t, c, "INSERT", "acc", "2", "bob")
	if r := do(t, c, "COUNT", "acc"); r.Int != 2 {
		t.Fatalf("COUNT: %+v", r)
	}
	r := do(t, c, "GET", "acc", "1")
	if len(r.Bulk) != 64 || !strings.HasPrefix(string(r.Bulk), "alice") {
		t.Fatalf("GET: %d bytes %q", len(r.Bulk), r.Bulk)
	}
	doErr(t, c, "NOTFOUND", "GET", "acc", "99")
	doErr(t, c, "NOTABLE", "GET", "nosuch", "1")

	// A tail patch at offset 56 — the in-place-append path end to end.
	do(t, c, "UPDATE", "acc", "1", "56", "PATCHED!")
	r = do(t, c, "GET", "acc", "1")
	if got := string(r.Bulk[56:]); got != "PATCHED!" {
		t.Fatalf("UPDATE patch: %q", got)
	}

	do(t, c, "DEL", "acc", "2")
	doErr(t, c, "NOTFOUND", "GET", "acc", "2")

	// Range read: keys 10..19, scan a sub-range with a limit.
	for k := 10; k < 20; k++ {
		do(t, c, "INSERT", "acc", fmt.Sprint(k), fmt.Sprintf("row-%d", k))
	}
	r = do(t, c, "SCAN", "acc", "10", "15") // half-open: keys 10..14
	if len(r.Elems) != 10 {                 // 5 keys × (key, tuple)
		t.Fatalf("SCAN: %d elements", len(r.Elems))
	}
	if r.Elems[0].Int != 10 || !strings.HasPrefix(string(r.Elems[1].Bulk), "row-10") {
		t.Fatalf("SCAN first row: %+v %q", r.Elems[0], r.Elems[1].Bulk)
	}
	r = do(t, c, "SCAN", "acc", "10", "19", "3")
	if len(r.Elems) != 6 {
		t.Fatalf("SCAN limit: %d elements", len(r.Elems))
	}

	// Secondary index over an int64 field at offset 0 of the tuple.
	do(t, c, "CREATE", "evt", "16")
	ser := func(v int64) string {
		b := make([]byte, 16)
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i)) // little-endian, as Int64Field reads
		}
		return string(b)
	}
	for k := int64(0); k < 8; k++ {
		do(t, c, "INSERT", "evt", fmt.Sprint(k), ser(k%4))
	}
	do(t, c, "CINDEX", "evt", "byval", "0")
	doErr(t, c, "EXISTS", "CINDEX", "evt", "byval", "0")
	if r := do(t, c, "INDEXES", "evt"); len(r.Elems) != 1 || string(r.Elems[0].Bulk) != "byval" {
		t.Fatalf("INDEXES: %+v", r)
	}
	if r := do(t, c, "GETBY", "evt", "byval", "2"); len(r.Elems) != 2 {
		t.Fatalf("GETBY: %d rows", len(r.Elems))
	}
	doErr(t, c, "NOINDEX", "GETBY", "evt", "nosuch", "2")
	if r := do(t, c, "SCANBY", "evt", "byval", "1", "3"); len(r.Elems) != 8 { // values 1,2 × 2 rows × (key, tuple)
		t.Fatalf("SCANBY: %d elements", len(r.Elems))
	}

	// Transaction session: commit is visible, abort is not.
	do(t, c, "BEGIN")
	doErr(t, c, "INTXN", "BEGIN")
	do(t, c, "INSERT", "acc", "100", "committed")
	do(t, c, "COMMIT")
	doErr(t, c, "NOTXN", "COMMIT")
	r = do(t, c, "GET", "acc", "100")
	if !strings.HasPrefix(string(r.Bulk), "committed") {
		t.Fatalf("committed row: %q", r.Bulk)
	}
	do(t, c, "BEGIN")
	do(t, c, "INSERT", "acc", "101", "aborted")
	do(t, c, "ABORT")
	doErr(t, c, "NOTXN", "ABORT")
	doErr(t, c, "NOTFOUND", "GET", "acc", "101")

	// Argument and dispatch errors.
	doErr(t, c, "UNKNOWN", "FROB")
	doErr(t, c, "ARGS", "GET", "acc")
	doErr(t, c, "ARGS", "GET", "acc", "notanumber")
	doErr(t, c, "ARGS", "INSERT", "acc", "1", strings.Repeat("x", 65))
	doErr(t, c, "ARGS", "SCAN", "acc", "0", "10", "-1")
	doErr(t, c, "ARGS", "CINDEX", "acc", "late", "60") // offset+8 > 64

	// Admin.
	var ck map[string]any
	if err := json.Unmarshal(do(t, c, "CHECKPOINT").Bulk, &ck); err != nil {
		t.Fatalf("CHECKPOINT json: %v", err)
	}
	if !strings.Contains(string(do(t, c, "STATS").Bulk), "committed") {
		t.Fatalf("STATS text missing counters")
	}
	var st map[string]any
	if err := json.Unmarshal(do(t, c, "STATS", "JSON").Bulk, &st); err != nil {
		t.Fatalf("STATS JSON: %v", err)
	}
	info := string(do(t, c, "INFO").Bulk)
	if !strings.Contains(info, "commands:") || !strings.Contains(info, "connections_current:1") {
		t.Fatalf("INFO: %q", info)
	}
}

// TestGetForUpdateLocksOnTheWire pins GETFU's contract: it needs an open
// transaction, it returns the tuple, and it holds the record lock until
// COMMIT — a concurrent writer is refused with CONFLICT while the lock
// is held and succeeds after it is released.
func TestGetForUpdateLocksOnTheWire(t *testing.T) {
	srv, _ := newTestServer(t)
	c1 := dial(t, srv)
	c2 := dial(t, srv)

	do(t, c1, "CREATE", "bal", "16")
	do(t, c1, "INSERT", "bal", "7", "money-is-here!!!")

	doErr(t, c1, "NOTXN", "GETFU", "bal", "7") // lock needs a transaction

	do(t, c1, "BEGIN")
	r := do(t, c1, "GETFU", "bal", "7")
	if string(r.Bulk) != "money-is-here!!!" {
		t.Fatalf("GETFU tuple: %q", r.Bulk)
	}
	doErr(t, c1, "NOTFOUND", "GETFU", "bal", "99")

	// The locked tuple is untouchable from another connection (the lock
	// manager is no-wait: conflicts are refused, not queued)...
	doErr(t, c2, "CONFLICT", "UPDATE", "bal", "7", "0", "steal")
	do(t, c1, "UPDATE", "bal", "7", "0", "mine!")
	do(t, c1, "COMMIT")

	// ...and is free again once the transaction commits.
	do(t, c2, "UPDATE", "bal", "7", "0", "yours")
	r = do(t, c2, "GET", "bal", "7")
	if !strings.HasPrefix(string(r.Bulk), "yours") {
		t.Fatalf("post-release tuple: %q", r.Bulk)
	}
}

// TestAutocommitIsDurableOnTheWire verifies that a plain INSERT (no BEGIN)
// commits a transaction — every wire write goes through the WAL.
func TestAutocommitIsDurableOnTheWire(t *testing.T) {
	srv, db := newTestServer(t)
	c := dial(t, srv)
	before := db.Stats().CommittedTxns
	do(t, c, "CREATE", "d", "32")
	do(t, c, "INSERT", "d", "1", "x")
	do(t, c, "UPDATE", "d", "1", "0", "y")
	do(t, c, "DEL", "d", "1")
	if got := db.Stats().CommittedTxns - before; got != 3 {
		t.Fatalf("autocommit transactions: got %d, want 3", got)
	}
}

// TestConcurrentPipelinedConnections drives 64 connections, each
// pipelining batches against its own key range. Run under -race this is
// the acceptance gate for the session/worker-pool architecture.
func TestConcurrentPipelinedConnections(t *testing.T) {
	srv, _ := newTestServer(t)
	admin := dial(t, srv)
	do(t, admin, "CREATE", "load", "64")

	const (
		conns   = 64
		perConn = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := ipaclient.Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			cmds := make([][][]byte, 0, perConn)
			for j := 0; j < perConn; j++ {
				key := fmt.Sprint(i*perConn + j)
				cmds = append(cmds, [][]byte{[]byte("INSERT"), []byte("load"), []byte(key), []byte("v" + key)})
			}
			replies, err := c.Batch(cmds)
			if err != nil {
				errs <- fmt.Errorf("conn %d: %w", i, err)
				return
			}
			for _, r := range replies {
				if r.Kind == proto.KindError {
					errs <- fmt.Errorf("conn %d: %s", i, r.Str)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r := do(t, admin, "COUNT", "load"); r.Int != conns*perConn {
		t.Fatalf("COUNT after load: %d, want %d", r.Int, conns*perConn)
	}
}

// TestInlineCommands speaks the telnet dialect: bare lines, no RESP
// arrays.
func TestInlineCommands(t *testing.T) {
	srv, _ := newTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("PING\r\n\r\nECHO hi\r\n")); err != nil {
		t.Fatal(err)
	}
	r := proto.NewReader(conn)
	if rep, err := r.ReadReply(); err != nil || rep.Str != "PONG" {
		t.Fatalf("inline PING: %+v %v", rep, err)
	}
	if rep, err := r.ReadReply(); err != nil || string(rep.Bulk) != "hi" {
		t.Fatalf("inline ECHO: %+v %v", rep, err)
	}
}

// TestMalformedFrameClosesWithProtoError sends an unframeable request and
// expects one final -PROTO reply followed by EOF — not a silent drop.
func TestMalformedFrameClosesWithProtoError(t *testing.T) {
	srv, _ := newTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Element 0 of the array is not a bulk string: unrecoverable framing.
	if _, err := conn.Write([]byte("*1\r\nPING\r\n")); err != nil {
		t.Fatal(err)
	}
	r := proto.NewReader(conn)
	rep, err := r.ReadReply()
	if err != nil || rep.ErrorCode() != "PROTO" {
		t.Fatalf("want -PROTO reply, got %+v %v", rep, err)
	}
	if _, err := r.ReadReply(); err != io.EOF {
		t.Fatalf("want EOF after -PROTO, got %v", err)
	}
}

// TestQuit closes the connection after +OK.
func TestQuit(t *testing.T) {
	srv, _ := newTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("QUIT\r\n")); err != nil {
		t.Fatal(err)
	}
	r := proto.NewReader(conn)
	if rep, err := r.ReadReply(); err != nil || rep.Str != "OK" {
		t.Fatalf("QUIT: %+v %v", rep, err)
	}
	if _, err := r.ReadReply(); err != io.EOF {
		t.Fatalf("want EOF after QUIT, got %v", err)
	}
}

// TestHealthzAndMetrics exercises the HTTP sidecar.
func TestHealthzAndMetrics(t *testing.T) {
	srv, _ := newTestServer(t)
	base := "http://" + srv.HTTPAddr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// While draining the same endpoint must answer 503.
	srv.draining.Store(true)
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz draining: %d", resp.StatusCode)
	}
	srv.draining.Store(false)

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"ipa_committed_txns_total", "ipa_wal_bytes_total",
		"ipa_server_connections_current", "ipa_server_commands_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %s:\n%s", want, body)
		}
	}
}

// TestWorkerPoolDefault pins the chips × GOMAXPROCS sizing rule.
func TestWorkerPoolDefault(t *testing.T) {
	srv, db := newTestServer(t)
	want := db.Config().Chips
	if srv.cfg.Workers%want != 0 || srv.cfg.Workers < want {
		t.Fatalf("workers=%d, want a positive multiple of chips=%d", srv.cfg.Workers, want)
	}
	// Give the pool a workout far wider than its lane count.
	c := dial(t, srv)
	do(t, c, "CREATE", "w", "16")
	var wg sync.WaitGroup
	for i := 0; i < 4*srv.cfg.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc, err := ipaclient.Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cc.Close()
			if err := cc.Insert("w", int64(i), []byte("x")); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}

// TestDisconnectAbortsOpenTransaction drops a connection mid-transaction
// and verifies its locks die with it.
func TestDisconnectAbortsOpenTransaction(t *testing.T) {
	srv, db := newTestServer(t)
	c := dial(t, srv)
	do(t, c, "CREATE", "tx", "32")
	do(t, c, "INSERT", "tx", "1", "row")

	other := dial(t, srv)
	do(t, other, "BEGIN")
	do(t, other, "UPDATE", "tx", "1", "0", "lock") // write lock under the open txn
	other.Close()

	// Once the server reaps the session the abort must have freed the lock.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Update("tx", 1, 0, []byte("mine")); err == nil {
			break
		} else if !ipaclient.IsCode(err, "CONFLICT") {
			t.Fatalf("unexpected error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("lock never released after disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if db.Stats().AbortedTxns == 0 {
		t.Fatal("disconnect did not abort the open transaction")
	}
}
