package server

import (
	"context"
	"io"
	"net"
	"testing"
	"time"

	"ipa/internal/proto"
)

// TestShutdownWhilePipelining pins the drain contract: a client that has
// a full pipeline in flight when Shutdown is called gets every one of its
// already-received commands answered and flushed before the connection
// closes — nothing is dropped, nothing is cut mid-reply.
func TestShutdownWhilePipelining(t *testing.T) {
	srv, _ := newTestServer(t)
	admin := dial(t, srv)
	do(t, admin, "CREATE", "d", "32")
	admin.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// One TCP write carrying a 100-command pipeline (within the default
	// 128-deep session queue, so the reader can stage all of it).
	const k = 100
	w := proto.NewWriter(conn)
	for i := 0; i < k; i++ {
		w.WriteCommand([]byte("INSERT"), []byte("d"), []byte{byte('0' + byte(i/100)), byte('0' + byte(i/10%10)), byte('0' + byte(i%10))}, []byte("v"))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Wait (white box) until the session has received every frame — the
	// drain contract covers received commands, so the test must not race
	// the decoder.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var sess *session
		srv.mu.Lock()
		for s := range srv.sessions {
			sess = s
		}
		srv.mu.Unlock()
		if sess != nil && srv.commandsRun.Load()+uint64(len(sess.reqs)) >= k {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never staged the pipeline")
		}
		time.Sleep(time.Millisecond)
	}

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutErr <- srv.Shutdown(ctx)
	}()

	// Every pipelined command answers, in order, then EOF.
	r := proto.NewReader(conn)
	for i := 0; i < k; i++ {
		rep, err := r.ReadReply()
		if err != nil {
			t.Fatalf("reply %d/%d: %v", i, k, err)
		}
		if rep.Kind == proto.KindError {
			t.Fatalf("reply %d: %s", i, rep.Str)
		}
	}
	if _, err := r.ReadReply(); err != io.EOF {
		t.Fatalf("after drain: want EOF, got %v", err)
	}
	if err := <-shutErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestShutdownRejectsNewConnections verifies the listener is gone after
// Shutdown returns.
func TestShutdownRejectsNewConnections(t *testing.T) {
	srv, _ := newTestServer(t)
	addr := srv.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("dial succeeded after Shutdown")
	}
}

// TestShutdownIsIdempotent: repeated Shutdown/Close calls share one
// result.
func TestShutdownIsIdempotent(t *testing.T) {
	srv, _ := newTestServer(t)
	ctx := context.Background()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}

// TestEngineClosedMapsToClosedCode pins the wire behaviour when the
// engine is closed underneath live sessions (an embedder calling
// db.Close, or a command racing past the drain): commands that need the
// engine answer -CLOSED, the connection itself stays up and framed.
func TestEngineClosedMapsToClosedCode(t *testing.T) {
	srv, db := newTestServer(t)
	c := dial(t, srv)
	do(t, c, "CREATE", "t", "32")
	do(t, c, "INSERT", "t", "1", "row")

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	doErr(t, c, "CLOSED", "GET", "t", "1")
	doErr(t, c, "CLOSED", "INSERT", "t", "2", "x")
	doErr(t, c, "CLOSED", "UPDATE", "t", "1", "0", "x")
	doErr(t, c, "CLOSED", "CHECKPOINT")

	// The session survives all of it: framing is intact, non-engine
	// commands still answer.
	if r := do(t, c, "PING"); r.Str != "PONG" {
		t.Fatalf("PING after engine close: %+v", r)
	}
	if r := do(t, c, "ECHO", "still-here"); string(r.Bulk) != "still-here" {
		t.Fatalf("ECHO after engine close: %+v", r)
	}
}

// TestDrainAnswersQueuedThenHangsUp: a session idle at drain time (reader
// parked in Read) closes promptly without an error reply.
func TestDrainAnswersQueuedThenHangsUp(t *testing.T) {
	srv, _ := newTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Prove the session is up before draining it.
	if _, err := conn.Write([]byte("PING\r\n")); err != nil {
		t.Fatal(err)
	}
	r := proto.NewReader(conn)
	if rep, err := r.ReadReply(); err != nil || rep.Str != "PONG" {
		t.Fatalf("PING: %+v %v", rep, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := r.ReadReply(); err != io.EOF {
		t.Fatalf("idle session after drain: want EOF, got %v", err)
	}
}
