package server

import (
	"encoding/json"
	"net/http"
	"time"

	"ipa"
)

// /stats.json: the machine-readable ops document behind the embedded
// dashboard and `ipadb watch`. The schema is specified in
// docs/DESIGN_OPS.md; StatsDoc is exported so Go tooling (cmd/ipadb)
// decodes the same shape the server encodes.

// StatsDoc is the /stats.json document: a point-in-time view of the
// engine counters, the derived ops gauges, the wire-level counters and a
// per-command latency summary.
type StatsDoc struct {
	// Now is the wall-clock scrape time; VirtualMS the engine's virtual
	// device clock in milliseconds.
	Now       time.Time `json:"now"`
	UptimeSec float64   `json:"uptime_seconds"`
	VirtualMS float64   `json:"virtual_ms"`
	Draining  bool      `json:"draining"`
	// Mode is the engine write mode as text (Engine.Mode is its numeric
	// form), so dashboards need no mode table.
	Mode string `json:"mode"`

	// Engine is the full ipa.Stats snapshot (Go field names, the same
	// shape the STATS JSON wire command returns); Ops the derived gauges.
	Engine ipa.Stats    `json:"engine"`
	Ops    ipa.OpsStats `json:"ops"`

	Server  ServerCounters            `json:"server"`
	Latency map[string]LatencySummary `json:"latency"`
}

// ServerCounters are the wire-level counters.
type ServerCounters struct {
	ConnectionsCurrent int64  `json:"connections_current"`
	ConnectionsTotal   uint64 `json:"connections_total"`
	CommandsTotal      uint64 `json:"commands_total"`
	ErrorRepliesTotal  uint64 `json:"error_replies_total"`
}

// LatencySummary condenses one command's histogram for humans and
// dashboards; the full bucket vector stays on /metrics.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
}

// statsDoc assembles the document.
func (srv *Server) statsDoc() StatsDoc {
	doc := StatsDoc{
		Now:       time.Now(),
		UptimeSec: time.Since(srv.started).Seconds(),
		VirtualMS: float64(srv.db.Now()) / float64(time.Millisecond),
		Draining:  srv.draining.Load(),
		Mode:      srv.db.Config().WriteMode.String(),
		Engine:    srv.db.Stats(),
		Ops:       srv.db.Ops(),
		Server: ServerCounters{
			ConnectionsCurrent: srv.connsCurrent.Load(),
			ConnectionsTotal:   srv.connsTotal.Load(),
			CommandsTotal:      srv.commandsRun.Load(),
			ErrorRepliesTotal:  srv.errorReplies.Load(),
		},
		Latency: make(map[string]LatencySummary),
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for name, s := range srv.lat.snapshot() {
		if s.Count == 0 {
			continue // only commands that have actually run
		}
		doc.Latency[name] = LatencySummary{
			Count:  s.Count,
			MeanUS: us(s.mean()),
			P50US:  us(s.quantile(0.50)),
			P95US:  us(s.quantile(0.95)),
			P99US:  us(s.quantile(0.99)),
		}
	}
	return doc
}

// handleStatsJSON serves the document.
func (srv *Server) handleStatsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(srv.statsDoc()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
