package server

import (
	"os"
	"strings"
	"testing"
)

// readSpec loads docs/DESIGN_SERVER.md relative to this package.
func readSpec(t *testing.T) string {
	t.Helper()
	doc, err := os.ReadFile("../../docs/DESIGN_SERVER.md")
	if err != nil {
		t.Fatalf("wire-protocol spec missing: %v", err)
	}
	return string(doc)
}

// TestSpecDocumentsEveryCommand fails when a command exists in the
// dispatch table without an entry in docs/DESIGN_SERVER.md — the spec and
// the server cannot drift apart.
func TestSpecDocumentsEveryCommand(t *testing.T) {
	doc := readSpec(t)
	for _, name := range commandNames {
		if !strings.Contains(doc, "`"+name) {
			t.Errorf("command %s is not documented in docs/DESIGN_SERVER.md", name)
		}
		usage := commands[name].usage
		if !strings.Contains(doc, usage) {
			t.Errorf("usage %q of %s is not documented in docs/DESIGN_SERVER.md", usage, name)
		}
	}
}

// TestSpecDocumentsEveryErrorCode fails when a wire error code exists
// without an entry in the spec's error-code table.
func TestSpecDocumentsEveryErrorCode(t *testing.T) {
	doc := readSpec(t)
	for _, code := range wireCodes {
		if !strings.Contains(doc, "`"+code+"`") {
			t.Errorf("wire code %s is not documented in docs/DESIGN_SERVER.md", code)
		}
	}
}

// TestErrorCodesAreUniqueTokens guards the invariant clients parse by:
// one upper-case token, no spaces, mutually distinct.
func TestErrorCodesAreUniqueTokens(t *testing.T) {
	seen := map[string]bool{}
	for _, code := range wireCodes {
		if code == "" || strings.ToUpper(code) != code || strings.ContainsAny(code, " \r\n") {
			t.Errorf("wire code %q is not a bare upper-case token", code)
		}
		if seen[code] {
			t.Errorf("wire code %q declared twice", code)
		}
		seen[code] = true
	}
}
