// Package server implements ipaserver's network front end: a TCP listener
// speaking the RESP-compatible wire protocol of internal/proto, one
// pipelined session per connection dispatching commands onto an embedded
// ipa.DB, a worker pool bounding engine concurrency at chips × GOMAXPROCS,
// and an HTTP sidecar exposing /healthz, Prometheus-style /metrics (with
// per-command latency histograms), the machine-readable /stats.json ops
// document, and the embedded live /dashboard.
//
// The protocol — frame grammar, command set, error-code table, pipelining
// and transaction-session semantics, and the graceful-shutdown contract —
// is specified in docs/DESIGN_SERVER.md; internal/server/spec_test.go
// fails if a command or error code exists here without being documented
// there.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ipa"
)

// Config configures a Server.
type Config struct {
	// Addr is the RESP listener address (e.g. ":6389"; ":0" picks a free
	// port, which tests use).
	Addr string
	// HTTPAddr is the health/metrics sidecar address ("" disables it).
	HTTPAddr string
	// Workers bounds how many commands may execute inside the engine at
	// once, across all sessions. Default: Chips × GOMAXPROCS — one lane
	// per plane of hardware parallelism the simulated device offers.
	Workers int
	// PipelineDepth is the per-session queue of decoded, not yet executed
	// commands (default 128). A client pipelining deeper than this is
	// simply backpressured by TCP; nothing is dropped.
	PipelineDepth int
	// MaxBulk overrides the largest accepted bulk-string payload
	// (default proto.DefaultMaxBulk).
	MaxBulk int
	// Logf, when set, receives one line per lifecycle event (connections
	// are not logged individually). nil discards.
	Logf func(format string, args ...any)
}

// Server serves an ipa.DB over the wire protocol.
type Server struct {
	db  *ipa.DB
	cfg Config

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server
	workers chan struct{}

	mu       sync.Mutex
	sessions map[*session]struct{}

	// draining flips the health endpoint to 503 and marks the shutdown
	// drain; shut ensures the shutdown sequence runs once.
	draining atomic.Bool
	shut     sync.Once
	shutErr  error

	// acceptWG tracks the accept loop, sessWG every session.
	acceptWG sync.WaitGroup
	sessWG   sync.WaitGroup

	// Wire-level counters, exported via /metrics and the INFO command.
	connsTotal   atomic.Uint64
	connsCurrent atomic.Int64
	commandsRun  atomic.Uint64
	errorReplies atomic.Uint64
	started      time.Time

	// lat holds the per-command latency histograms; nextShard deals a
	// shard index to each new session so recorders spread across shards.
	lat       *latencies
	nextShard atomic.Uint64
}

// New wraps db in a Server. Start must be called to begin serving.
func New(db *ipa.DB, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = db.Config().Chips * runtime.GOMAXPROCS(0)
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 128
	}
	return &Server{
		db:       db,
		cfg:      cfg,
		workers:  make(chan struct{}, cfg.Workers),
		sessions: make(map[*session]struct{}),
		started:  time.Now(),
		lat:      newLatencies(latencyShards()),
	}
}

// logf emits one lifecycle log line, if logging is configured.
func (srv *Server) logf(format string, args ...any) {
	if srv.cfg.Logf != nil {
		srv.cfg.Logf(format, args...)
	}
}

// Start binds the listeners and begins accepting connections. It returns
// once the server is reachable; serving continues in the background until
// Shutdown or Close.
func (srv *Server) Start() error {
	ln, err := net.Listen("tcp", srv.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", srv.cfg.Addr, err)
	}
	srv.ln = ln
	if srv.cfg.HTTPAddr != "" {
		httpLn, err := net.Listen("tcp", srv.cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("server: http listen %s: %w", srv.cfg.HTTPAddr, err)
		}
		srv.httpLn = httpLn
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", srv.handleHealthz)
		mux.HandleFunc("/metrics", srv.handleMetrics)
		mux.HandleFunc("/stats.json", srv.handleStatsJSON)
		mux.HandleFunc("/dashboard", srv.handleDashboard)
		srv.httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := srv.httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				srv.logf("server: http sidecar: %v", err)
			}
		}()
	}
	srv.acceptWG.Add(1)
	go srv.acceptLoop()
	srv.logf("server: listening on %s (workers=%d pipeline=%d http=%s)",
		ln.Addr(), srv.cfg.Workers, srv.cfg.PipelineDepth, srv.cfg.HTTPAddr)
	return nil
}

// Addr returns the bound RESP listener address.
func (srv *Server) Addr() net.Addr { return srv.ln.Addr() }

// HTTPAddr returns the bound sidecar address, or nil when disabled.
func (srv *Server) HTTPAddr() net.Addr {
	if srv.httpLn == nil {
		return nil
	}
	return srv.httpLn.Addr()
}

// acceptLoop admits connections until the listener closes.
func (srv *Server) acceptLoop() {
	defer srv.acceptWG.Done()
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown/Close
		}
		if srv.draining.Load() {
			conn.Close()
			continue
		}
		srv.connsTotal.Add(1)
		srv.connsCurrent.Add(1)
		sess := newSession(srv, conn)
		srv.mu.Lock()
		srv.sessions[sess] = struct{}{}
		srv.mu.Unlock()
		srv.sessWG.Add(1)
		go sess.serve()
	}
}

// dropSession unregisters a finished session.
func (srv *Server) dropSession(s *session) {
	srv.mu.Lock()
	delete(srv.sessions, s)
	srv.mu.Unlock()
	srv.connsCurrent.Add(-1)
	srv.sessWG.Done()
}

// Shutdown stops the server gracefully: the listener closes, /healthz
// flips to 503, every session stops reading new frames and finishes the
// pipelined commands it has already received (their replies are flushed),
// open transactions of departing sessions are aborted, a final fuzzy
// checkpoint is taken, and the engine is closed. If ctx expires before
// all sessions drain, their connections are closed; commands that race
// past the engine's close answer with the CLOSED wire error instead of a
// dropped connection.
func (srv *Server) Shutdown(ctx context.Context) error {
	srv.shut.Do(func() { srv.shutErr = srv.shutdown(ctx) })
	return srv.shutErr
}

func (srv *Server) shutdown(ctx context.Context) error {
	srv.logf("server: shutting down (draining %d sessions)", srv.connsCurrent.Load())
	srv.draining.Store(true)
	srv.ln.Close()
	srv.acceptWG.Wait()

	// Ask every session to drain: stop pulling frames off the socket,
	// finish what is queued, flush, hang up.
	srv.mu.Lock()
	for s := range srv.sessions {
		s.drain()
	}
	srv.mu.Unlock()

	done := make(chan struct{})
	go func() {
		srv.sessWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Stragglers lose their connection; their in-flight engine calls
		// still finish (db.Close waits for them below).
		srv.logf("server: drain deadline expired, closing %d sessions", srv.connsCurrent.Load())
		srv.mu.Lock()
		for s := range srv.sessions {
			s.conn.Close()
		}
		srv.mu.Unlock()
		<-done
	}

	// Final checkpoint: restart cost after a clean shutdown is one catalog
	// read, not a log replay.
	var ckptErr error
	if _, err := srv.db.Checkpoint(); err != nil && !errors.Is(err, ipa.ErrClosed) {
		ckptErr = fmt.Errorf("server: final checkpoint: %w", err)
	}
	closeErr := srv.db.Close()
	if srv.httpSrv != nil {
		srv.httpSrv.Close()
	}
	srv.logf("server: shutdown complete")
	if ckptErr != nil {
		return ckptErr
	}
	return closeErr
}

// Close stops the server hard: listeners and connections close
// immediately, queued commands are abandoned, and the engine is closed
// (which still flushes). Prefer Shutdown.
func (srv *Server) Close() error {
	srv.shut.Do(func() {
		srv.draining.Store(true)
		srv.ln.Close()
		srv.acceptWG.Wait()
		srv.mu.Lock()
		for s := range srv.sessions {
			s.conn.Close()
		}
		srv.mu.Unlock()
		srv.sessWG.Wait()
		if srv.httpSrv != nil {
			srv.httpSrv.Close()
		}
		srv.shutErr = srv.db.Close()
	})
	return srv.shutErr
}

// handleHealthz reports liveness: 200 while serving, 503 once draining.
func (srv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if srv.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
