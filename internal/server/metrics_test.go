package server

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The conformance suite: every scrape of /metrics must parse under the
// Prometheus text exposition format (version 0.0.4) and satisfy the
// semantic rules the format implies — HELP/TYPE before samples, no
// duplicate series, histogram buckets cumulative and capped by +Inf ==
// _count. The suite runs against a live server that has executed real
// commands, so every family ships populated.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRe splits one sample line into name, optional label block and
	// value. Label values in our exposition never contain escaped braces.
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// expoSample is one parsed sample line.
type expoSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// expoFamily is one parsed metric family.
type expoFamily struct {
	name    string
	help    string
	typ     string
	samples []expoSample
}

// parseExposition parses a full scrape, failing the test on any grammar
// violation: samples before their family header, a HELP without a TYPE,
// unparsable values, bad names.
func parseExposition(t *testing.T, body string) map[string]*expoFamily {
	t.Helper()
	families := make(map[string]*expoFamily)
	var cur *expoFamily
	var pendingHelp string
	var pendingHelpName string

	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP line: %q", lineNo, line)
			}
			if pendingHelpName != "" {
				t.Fatalf("line %d: HELP %s follows HELP %s without a TYPE line between",
					lineNo, name, pendingHelpName)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: duplicate family %s", lineNo, name)
			}
			pendingHelp, pendingHelpName = help, name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE line: %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid metric type %q", lineNo, typ)
			}
			if name != pendingHelpName {
				t.Fatalf("line %d: TYPE %s does not follow its HELP (pending %q)",
					lineNo, name, pendingHelpName)
			}
			cur = &expoFamily{name: name, help: pendingHelp, typ: typ}
			families[name] = cur
			pendingHelp, pendingHelpName = "", ""
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q (only HELP/TYPE allowed)", lineNo, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: unparsable sample line %q", lineNo, line)
			}
			name, labelBlock, valStr := m[1], m[2], m[3]
			var value float64
			switch valStr {
			case "+Inf":
				value = math.Inf(1)
			case "-Inf":
				value = math.Inf(-1)
			case "NaN":
				value = math.NaN()
			default:
				v, err := strconv.ParseFloat(valStr, 64)
				if err != nil {
					t.Fatalf("line %d: unparsable value %q: %v", lineNo, valStr, err)
				}
				value = v
			}
			labels := make(map[string]string)
			if labelBlock != "" {
				for _, lm := range labelRe.FindAllStringSubmatch(labelBlock[1:len(labelBlock)-1], -1) {
					if !labelNameRe.MatchString(lm[1]) {
						t.Fatalf("line %d: bad label name %q", lineNo, lm[1])
					}
					if _, dup := labels[lm[1]]; dup {
						t.Fatalf("line %d: duplicate label %q", lineNo, lm[1])
					}
					labels[lm[1]] = lm[2]
				}
			}
			// Samples must belong to the family most recently declared:
			// for histograms the sample names carry a suffix.
			if cur == nil {
				t.Fatalf("line %d: sample %s before any HELP/TYPE header", lineNo, name)
			}
			base := name
			if cur.typ == "histogram" {
				for _, suf := range []string{"_bucket", "_sum", "_count"} {
					if strings.HasSuffix(name, suf) {
						base = strings.TrimSuffix(name, suf)
						break
					}
				}
			}
			if base != cur.name {
				t.Fatalf("line %d: sample %s outside its family (current family %s)", lineNo, name, cur.name)
			}
			cur.samples = append(cur.samples, expoSample{name: name, labels: labels, value: value, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if pendingHelpName != "" {
		t.Fatalf("trailing HELP %s without TYPE", pendingHelpName)
	}
	return families
}

// seriesKey identifies one time series: name plus sorted label pairs.
func seriesKey(s expoSample) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range keys {
		fmt.Fprintf(&b, `|%s=%s`, k, s.labels[k])
	}
	return b.String()
}

// scrapeMetrics fetches /metrics from a running test server.
func scrapeMetrics(t *testing.T, srv *Server) string {
	t.Helper()
	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET /metrics: content-type %q", ct)
	}
	var b strings.Builder
	if _, err := fmt.Fprint(&b, readAll(t, resp)); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return b.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	buf := new(strings.Builder)
	if _, err := bufio.NewReader(resp.Body).WriteTo(buf); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return buf.String()
}

// populate drives real traffic so counters, gauges and histograms are all
// non-trivial before the scrape.
func populateMetrics(t *testing.T, srv *Server) {
	t.Helper()
	c := dial(t, srv)
	do(t, c, "CREATE", "conf", "64")
	for i := 0; i < 50; i++ {
		do(t, c, "INSERT", "conf", strconv.Itoa(i), "payload")
	}
	for i := 0; i < 50; i++ {
		do(t, c, "GET", "conf", strconv.Itoa(i))
		do(t, c, "UPDATE", "conf", strconv.Itoa(i), "0", "x")
	}
	doErr(t, c, codeNotFound, "GET", "conf", "9999")
	do(t, c, "STATS")
}

// TestMetricsConformance validates the full scrape against the exposition
// grammar and the histogram invariants.
func TestMetricsConformance(t *testing.T) {
	srv, db := newTestServer(t)
	_ = db
	populateMetrics(t, srv)
	body := scrapeMetrics(t, srv)
	families := parseExposition(t, body)

	// Every series is unique across the whole scrape.
	seen := make(map[string]int)
	for _, fam := range families {
		for _, s := range fam.samples {
			k := seriesKey(s)
			if prev, dup := seen[k]; dup {
				t.Errorf("duplicate series %s (lines %d and %d)", k, prev, s.line)
			}
			seen[k] = s.line
		}
	}

	// Families the ops surface contracts to expose (docs/DESIGN_OPS.md).
	for _, want := range []string{
		"ipa_committed_txns_total",
		"ipa_group_commit_batch_mean",
		"ipa_device_erase_budget",
		"ipa_device_life_burned_ratio",
		"ipa_device_time_to_death_seconds",
		"ipa_device_erases_avoided_total",
		"ipa_window_tps",
		"ipa_window_evictions_per_sec",
		"ipa_window_in_place_share",
		"ipa_window_erase_rate_per_sec",
		"ipa_chip_erases_total",
		"ipa_chip_busy_seconds",
		"ipa_server_connections_total",
		"ipa_server_command_seconds",
	} {
		if _, ok := families[want]; !ok {
			t.Errorf("family %s missing from scrape", want)
		}
	}

	// Counters and gauges carry finite, non-negative values (nothing in
	// this exposition may legally go negative or NaN).
	for _, fam := range families {
		for _, s := range fam.samples {
			if math.IsNaN(s.value) || math.IsInf(s.value, 0) {
				t.Errorf("%s (line %d): non-finite value %v", s.name, s.line, s.value)
			}
			if s.value < 0 {
				t.Errorf("%s (line %d): negative value %v", s.name, s.line, s.value)
			}
		}
	}

	checkHistogramFamily(t, families["ipa_server_command_seconds"])
}

// checkHistogramFamily enforces the histogram invariants per label set:
// buckets cumulative (monotone non-decreasing in le order), a +Inf bucket
// present and equal to _count, _sum present.
func checkHistogramFamily(t *testing.T, fam *expoFamily) {
	t.Helper()
	if fam == nil {
		t.Fatal("histogram family missing")
	}
	if fam.typ != "histogram" {
		t.Fatalf("ipa_server_command_seconds: TYPE %q, want histogram", fam.typ)
	}
	type histState struct {
		bounds []float64
		counts []float64
		inf    float64
		hasInf bool
		sum    float64
		hasSum bool
		count  float64
		hasCnt bool
	}
	byCmd := make(map[string]*histState)
	get := func(cmd string) *histState {
		h, ok := byCmd[cmd]
		if !ok {
			h = &histState{}
			byCmd[cmd] = h
		}
		return h
	}
	for _, s := range fam.samples {
		cmd := s.labels["cmd"]
		if cmd == "" {
			t.Errorf("line %d: histogram sample without cmd label", s.line)
			continue
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le := s.labels["le"]
			if le == "" {
				t.Errorf("line %d: bucket without le label", s.line)
				continue
			}
			h := get(cmd)
			if le == "+Inf" {
				h.inf, h.hasInf = s.value, true
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Errorf("line %d: unparsable le %q", s.line, le)
				continue
			}
			h.bounds = append(h.bounds, bound)
			h.counts = append(h.counts, s.value)
		case strings.HasSuffix(s.name, "_sum"):
			h := get(cmd)
			h.sum, h.hasSum = s.value, true
		case strings.HasSuffix(s.name, "_count"):
			h := get(cmd)
			h.count, h.hasCnt = s.value, true
		default:
			t.Errorf("line %d: unexpected sample %s in histogram family", s.line, s.name)
		}
	}
	if len(byCmd) != len(commandNames) {
		t.Errorf("histogram exposes %d commands, registry has %d", len(byCmd), len(commandNames))
	}
	var ran int
	for cmd, h := range byCmd {
		if !h.hasInf || !h.hasSum || !h.hasCnt {
			t.Errorf("%s: incomplete histogram (inf=%v sum=%v count=%v)", cmd, h.hasInf, h.hasSum, h.hasCnt)
			continue
		}
		for i := 1; i < len(h.bounds); i++ {
			if h.bounds[i] <= h.bounds[i-1] {
				t.Errorf("%s: le bounds not strictly increasing at %v <= %v", cmd, h.bounds[i], h.bounds[i-1])
			}
			if h.counts[i] < h.counts[i-1] {
				t.Errorf("%s: bucket counts not cumulative: bucket(le=%v)=%v < bucket(le=%v)=%v",
					cmd, h.bounds[i], h.counts[i], h.bounds[i-1], h.counts[i-1])
			}
		}
		if n := len(h.counts); n > 0 && h.inf < h.counts[n-1] {
			t.Errorf("%s: +Inf bucket %v below last finite bucket %v", cmd, h.inf, h.counts[n-1])
		}
		if h.inf != h.count {
			t.Errorf("%s: +Inf bucket %v != _count %v", cmd, h.inf, h.count)
		}
		if h.count > 0 {
			ran++
			if h.sum < 0 {
				t.Errorf("%s: negative _sum %v", cmd, h.sum)
			}
		}
	}
	// populateMetrics ran CREATE/INSERT/GET/UPDATE/STATS at minimum.
	if ran < 5 {
		t.Errorf("only %d commands recorded latency; populate should have driven at least 5", ran)
	}
}

// TestMetricsStableAcrossScrapes checks that two consecutive scrapes
// expose the identical set of series (values move, the schema does not).
func TestMetricsStableAcrossScrapes(t *testing.T) {
	srv, _ := newTestServer(t)
	populateMetrics(t, srv)
	keys := func(body string) []string {
		fams := parseExposition(t, body)
		var out []string
		for _, fam := range fams {
			for _, s := range fam.samples {
				out = append(out, seriesKey(s))
			}
		}
		sort.Strings(out)
		return out
	}
	a := keys(scrapeMetrics(t, srv))
	b := keys(scrapeMetrics(t, srv))
	if len(a) != len(b) {
		t.Fatalf("series count changed across scrapes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("series set changed across scrapes: %q vs %q", a[i], b[i])
		}
	}
}
