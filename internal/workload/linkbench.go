package workload

import (
	"errors"
	"math/rand"

	"ipa"
)

// LinkBench-like tuple sizes.
const (
	lbNodeSize = 128
	lbLinkSize = 64

	// Offsets of the fields touched by the small-update operations.
	lbNodeVersionOffset = 8  // node version counter (8 bytes)
	lbNodeTimeOffset    = 16 // node update timestamp (8 bytes)
	lbLinkTimeOffset    = 16 // link timestamp (8 bytes)
	lbLinkVisOffset     = 24 // link visibility flag (1 byte)
)

// LinkBenchConfig scales the social-graph workload.
type LinkBenchConfig struct {
	// Nodes is the number of graph nodes.
	Nodes int
	// LinksPerNode is the average out-degree loaded initially.
	LinksPerNode int
	// Seed drives the load-phase generator.
	Seed int64
	// AssocByID2 switches the driver to the secondary-index variant
	// ("linkbenchsec"): links carry a secondary index on their target
	// node (id2), link reads become reverse-association lookups through
	// it, and link inserts churn the index transactionally.
	AssocByID2 bool
}

// DefaultLinkBenchConfig returns the configuration used by the experiments.
func DefaultLinkBenchConfig() LinkBenchConfig {
	return LinkBenchConfig{Nodes: 20000, LinksPerNode: 4, Seed: 17}
}

func (c LinkBenchConfig) withDefaults() LinkBenchConfig {
	if c.Nodes <= 0 {
		c.Nodes = 20000
	}
	if c.LinksPerNode <= 0 {
		c.LinksPerNode = 4
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	return c
}

// LinkBench is a social-network workload in the spirit of Facebook's
// LinkBench: a node store and a link store, with a read-dominated mix and
// small counter/timestamp updates. It is the "social network workload"
// referenced in the paper's introduction.
type LinkBench struct {
	cfg LinkBenchConfig

	nodes *ipa.Table
	links *ipa.Table

	nextLinkID int64
}

// NewLinkBench creates a LinkBench-like driver.
func NewLinkBench(cfg LinkBenchConfig) *LinkBench { return &LinkBench{cfg: cfg.withDefaults()} }

// Name implements Workload.
func (w *LinkBench) Name() string {
	if w.cfg.AssocByID2 {
		return "linkbenchsec"
	}
	return "linkbench"
}

// Config returns the effective configuration.
func (w *LinkBench) Config() LinkBenchConfig { return w.cfg }

// Load implements Workload.
func (w *LinkBench) Load(db *ipa.DB) error {
	var err error
	if w.nodes, err = db.CreateTable("lb_nodes", lbNodeSize); err != nil {
		return err
	}
	if w.links, err = db.CreateTable("lb_links", lbLinkSize); err != nil {
		return err
	}
	if w.cfg.AssocByID2 {
		// Created before any link exists, so all maintenance during the
		// measured run is transactional and WAL-covered.
		if _, err = w.links.CreateSecondaryIndex("id2", ipa.Int64Field(8)); err != nil {
			return err
		}
	}
	r := rand.New(rand.NewSource(w.cfg.Seed))
	for n := int64(0); n < int64(w.cfg.Nodes); n++ {
		row := make([]byte, lbNodeSize)
		fill(row, n+70000)
		putInt64(row, 0, n)
		putInt64(row, lbNodeVersionOffset, 1)
		if err := w.nodes.Insert(n, row); err != nil {
			return err
		}
	}
	for n := int64(0); n < int64(w.cfg.Nodes); n++ {
		for l := 0; l < w.cfg.LinksPerNode; l++ {
			w.nextLinkID++
			row := make([]byte, lbLinkSize)
			fill(row, w.nextLinkID+80000)
			putInt64(row, 0, n)
			putInt64(row, 8, randInt64(r, int64(w.cfg.Nodes)))
			row[lbLinkVisOffset] = 1
			if err := w.links.Insert(w.nextLinkID, row); err != nil {
				return err
			}
		}
	}
	return db.FlushAll()
}

// RunOne implements Workload: roughly 70% reads, 25% small updates, 5%
// link inserts (the LinkBench production mix is similarly read-heavy).
func (w *LinkBench) RunOne(db *ipa.DB, r *rand.Rand) (bool, error) {
	node := zipfNode(r, int64(w.cfg.Nodes))
	p := r.Intn(100)

	tx := db.Begin()
	abort := func(err error) (bool, error) {
		if abortErr := tx.Abort(); abortErr != nil {
			return false, abortErr
		}
		if errors.Is(err, ipa.ErrConflict) || errors.Is(err, ipa.ErrKeyNotFound) {
			return false, nil
		}
		return false, err
	}

	switch {
	case p < 55: // get node
		if _, err := tx.Get(w.nodes, node); err != nil {
			return abort(err)
		}
	case p < 70: // get link (by id, or reverse-assoc by target in the variant)
		if w.cfg.AssocByID2 {
			if _, err := w.links.GetBySecondary("id2", randInt64(r, int64(w.cfg.Nodes))); err != nil {
				return abort(err)
			}
			break
		}
		link := 1 + randInt64(r, w.nextLinkID)
		if _, err := tx.Get(w.links, link); err != nil {
			return abort(err)
		}
	case p < 85: // bump node version + timestamp (16 contiguous bytes)
		row, err := tx.Get(w.nodes, node)
		if err != nil {
			return abort(err)
		}
		version := getInt64(row, lbNodeVersionOffset) + 1
		if err := tx.UpdateAt(w.nodes, node, lbNodeVersionOffset, int64Bytes(version)); err != nil {
			return abort(err)
		}
	case p < 95: // touch a link timestamp (8 bytes) and visibility (1 byte)
		link := 1 + randInt64(r, w.nextLinkID)
		if err := tx.UpdateAt(w.links, link, lbLinkTimeOffset, int64Bytes(int64(p))); err != nil {
			return abort(err)
		}
		if err := tx.UpdateAt(w.links, link, lbLinkVisOffset, []byte{1}); err != nil {
			return abort(err)
		}
	default: // insert a new link
		w.nextLinkID++
		row := make([]byte, lbLinkSize)
		fill(row, w.nextLinkID+80000)
		putInt64(row, 0, node)
		putInt64(row, 8, randInt64(r, int64(w.cfg.Nodes)))
		row[lbLinkVisOffset] = 1
		if err := tx.Insert(w.links, w.nextLinkID, row); err != nil {
			return abort(err)
		}
	}
	if err := tx.Commit(); err != nil {
		return false, err
	}
	return true, nil
}

// zipfNode draws a node id with a mild skew (hot nodes are touched more
// often, as in real social graphs).
func zipfNode(r *rand.Rand, n int64) int64 {
	if n <= 1 {
		return 0
	}
	// Pick from a hot set of 10% of the nodes 60% of the time.
	if r.Intn(100) < 60 {
		hot := n / 10
		if hot < 1 {
			hot = 1
		}
		return r.Int63n(hot)
	}
	return r.Int63n(n)
}
