package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"ipa"
)

// TPC-B tuple sizes (bytes). TPC-B prescribes 100-byte account, teller and
// branch rows and ~50-byte history rows.
const (
	tpcbAccountSize = 100
	tpcbTellerSize  = 100
	tpcbBranchSize  = 100
	tpcbHistorySize = 50

	// Balance fields live at offset 8 of each row (after the key copy), so
	// a balance update modifies 8 bytes of a 100-byte tuple — the small
	// update pattern Figure 1 is about.
	tpcbBalanceOffset = 8

	// tpcbInitialBalance keeps balances far away from zero so the random
	// walk of TPC-B deltas normally touches only the low-order bytes of
	// the 8-byte balance (sign flips would rewrite all eight bytes and
	// artificially inflate the per-update change size).
	tpcbInitialBalance = int64(1234567890123)
)

// TPCBConfig scales the TPC-B database.
type TPCBConfig struct {
	// Branches is the scale factor (number of branches).
	Branches int
	// TellersPerBranch defaults to the TPC-B value of 10.
	TellersPerBranch int
	// AccountsPerBranch defaults to 10000 (scaled down from TPC-B's
	// 100000 to fit the simulated device).
	AccountsPerBranch int
	// Seed drives the load-phase data generator.
	Seed int64
}

// DefaultTPCBConfig returns the configuration used by the experiments.
func DefaultTPCBConfig() TPCBConfig {
	return TPCBConfig{Branches: 4, TellersPerBranch: 10, AccountsPerBranch: 10000, Seed: 7}
}

func (c TPCBConfig) withDefaults() TPCBConfig {
	if c.Branches <= 0 {
		c.Branches = 4
	}
	if c.TellersPerBranch <= 0 {
		c.TellersPerBranch = 10
	}
	if c.AccountsPerBranch <= 0 {
		c.AccountsPerBranch = 10000
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// TPCB is the TPC-B benchmark driver: every transaction updates an account,
// its teller and its branch balance and appends a history row.
type TPCB struct {
	cfg TPCBConfig

	accounts *ipa.Table
	tellers  *ipa.Table
	branches *ipa.Table
	history  *ipa.Table

	nextHistoryID int64
}

// NewTPCB creates a TPC-B driver.
func NewTPCB(cfg TPCBConfig) *TPCB { return &TPCB{cfg: cfg.withDefaults()} }

// Name implements Workload.
func (w *TPCB) Name() string { return "tpcb" }

// Config returns the effective configuration.
func (w *TPCB) Config() TPCBConfig { return w.cfg }

// Load implements Workload: it creates and populates the four TPC-B tables.
func (w *TPCB) Load(db *ipa.DB) error {
	var err error
	if w.accounts, err = db.CreateTable("tpcb_accounts", tpcbAccountSize); err != nil {
		return err
	}
	if w.tellers, err = db.CreateTable("tpcb_tellers", tpcbTellerSize); err != nil {
		return err
	}
	if w.branches, err = db.CreateTable("tpcb_branches", tpcbBranchSize); err != nil {
		return err
	}
	// History is append-only: large inserts never profit from IPA, so the
	// table is placed in a region without in-place appends, exactly the
	// selective use of NoFTL regions the paper describes.
	if w.history, err = db.CreateTableWithScheme("tpcb_history", tpcbHistorySize, ipa.Scheme{}); err != nil {
		return err
	}

	c := w.cfg
	for b := 0; b < c.Branches; b++ {
		row := make([]byte, tpcbBranchSize)
		fill(row, int64(b)+1000)
		putInt64(row, 0, int64(b))
		putInt64(row, tpcbBalanceOffset, tpcbInitialBalance)
		if err := w.branches.Insert(int64(b), row); err != nil {
			return fmt.Errorf("tpcb load branches: %w", err)
		}
	}
	for t := 0; t < c.Branches*c.TellersPerBranch; t++ {
		row := make([]byte, tpcbTellerSize)
		fill(row, int64(t)+2000)
		putInt64(row, 0, int64(t))
		putInt64(row, tpcbBalanceOffset, tpcbInitialBalance)
		if err := w.tellers.Insert(int64(t), row); err != nil {
			return fmt.Errorf("tpcb load tellers: %w", err)
		}
	}
	for a := 0; a < c.Branches*c.AccountsPerBranch; a++ {
		row := make([]byte, tpcbAccountSize)
		fill(row, int64(a)+3000)
		putInt64(row, 0, int64(a))
		putInt64(row, tpcbBalanceOffset, tpcbInitialBalance)
		if err := w.accounts.Insert(int64(a), row); err != nil {
			return fmt.Errorf("tpcb load accounts: %w", err)
		}
	}
	return db.FlushAll()
}

// RunOne implements Workload: one TPC-B transaction.
func (w *TPCB) RunOne(db *ipa.DB, r *rand.Rand) (bool, error) {
	c := w.cfg
	branch := randInt64(r, int64(c.Branches))
	teller := branch*int64(c.TellersPerBranch) + randInt64(r, int64(c.TellersPerBranch))
	// 85% of accounts belong to the home branch, 15% are remote (TPC-B).
	var account int64
	if r.Intn(100) < 85 || c.Branches == 1 {
		account = branch*int64(c.AccountsPerBranch) + randInt64(r, int64(c.AccountsPerBranch))
	} else {
		account = randInt64(r, int64(c.Branches*c.AccountsPerBranch))
	}
	delta := int64(r.Intn(1999999) - 999999)

	tx := db.Begin()
	abort := func(err error) (bool, error) {
		if abortErr := tx.Abort(); abortErr != nil {
			return false, abortErr
		}
		if err != nil && !errors.Is(err, ipa.ErrConflict) {
			return false, err
		}
		return false, nil
	}

	// Account balance.
	row, err := tx.Get(w.accounts, account)
	if err != nil {
		return abort(err)
	}
	newBal := getInt64(row, tpcbBalanceOffset) + delta
	if err := tx.UpdateAt(w.accounts, account, tpcbBalanceOffset, int64Bytes(newBal)); err != nil {
		return abort(err)
	}
	// Teller balance.
	row, err = tx.Get(w.tellers, teller)
	if err != nil {
		return abort(err)
	}
	if err := tx.UpdateAt(w.tellers, teller, tpcbBalanceOffset, int64Bytes(getInt64(row, tpcbBalanceOffset)+delta)); err != nil {
		return abort(err)
	}
	// Branch balance.
	row, err = tx.Get(w.branches, branch)
	if err != nil {
		return abort(err)
	}
	if err := tx.UpdateAt(w.branches, branch, tpcbBalanceOffset, int64Bytes(getInt64(row, tpcbBalanceOffset)+delta)); err != nil {
		return abort(err)
	}
	// History row.
	w.nextHistoryID++
	hrow := make([]byte, tpcbHistorySize)
	fill(hrow, w.nextHistoryID)
	putInt64(hrow, 0, w.nextHistoryID)
	putInt64(hrow, 8, account)
	putInt64(hrow, 16, delta)
	if err := tx.Insert(w.history, w.nextHistoryID, hrow); err != nil {
		return abort(err)
	}
	if err := tx.Commit(); err != nil {
		return false, err
	}
	return true, nil
}

// AccountBalance returns the current balance of an account (for invariant
// checks in tests).
func (w *TPCB) AccountBalance(key int64) (int64, error) {
	row, err := w.accounts.Get(key)
	if err != nil {
		return 0, err
	}
	return getInt64(row, tpcbBalanceOffset), nil
}

// BranchBalance returns the current balance of a branch.
func (w *TPCB) BranchBalance(key int64) (int64, error) {
	row, err := w.branches.Get(key)
	if err != nil {
		return 0, err
	}
	return getInt64(row, tpcbBalanceOffset), nil
}

// TellerBalance returns the current balance of a teller.
func (w *TPCB) TellerBalance(key int64) (int64, error) {
	row, err := w.tellers.Get(key)
	if err != nil {
		return 0, err
	}
	return getInt64(row, tpcbBalanceOffset), nil
}

// HistoryCount returns the number of history rows inserted so far.
func (w *TPCB) HistoryCount() uint64 { return w.history.Count() }
