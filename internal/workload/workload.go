// Package workload implements the OLTP benchmark drivers used by the
// paper's evaluation: TPC-B, a TPC-C subset (New-Order, Payment,
// Order-Status), TATP and a LinkBench-like social-graph workload.
//
// The drivers are deterministic (seeded) generators that execute their
// transactions against the ipa engine. They reproduce the property the
// paper's analysis depends on: OLTP transactions mostly perform very small
// in-place updates (a few bytes of balances, counters or timestamps) on
// large database pages, plus a minority of inserts.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"ipa"
)

// Workload is one OLTP benchmark driver.
type Workload interface {
	// Name returns the benchmark name (e.g. "tpcb").
	Name() string
	// Load populates the database (the load phase).
	Load(db *ipa.DB) error
	// RunOne executes a single transaction and reports whether it
	// committed (false means it was aborted and should be retried).
	RunOne(db *ipa.DB, r *rand.Rand) (bool, error)
}

// RunOptions bounds a measurement run. Either MaxOps or Duration (virtual
// device time) must be set; if both are set the run stops at whichever
// limit is reached first.
type RunOptions struct {
	MaxOps   int
	Duration time.Duration
	Seed     int64
}

// RunResult summarises a measurement run.
type RunResult struct {
	Committed int
	Aborted   int
	Elapsed   time.Duration // virtual time consumed by the run
}

// Run executes transactions of w against db until the limits in opts are
// reached. Statistics windows are the caller's responsibility (call
// db.ResetStats after Load).
func Run(db *ipa.DB, w Workload, opts RunOptions) (RunResult, error) {
	if opts.MaxOps <= 0 && opts.Duration <= 0 {
		return RunResult{}, fmt.Errorf("workload: RunOptions needs MaxOps or Duration")
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 42
	}
	r := rand.New(rand.NewSource(seed))
	start := db.Now()
	var res RunResult
	for {
		if opts.MaxOps > 0 && res.Committed >= opts.MaxOps {
			break
		}
		if opts.Duration > 0 && db.Now()-start >= opts.Duration {
			break
		}
		ok, err := w.RunOne(db, r)
		if err != nil {
			return res, fmt.Errorf("workload %s: %w", w.Name(), err)
		}
		if ok {
			res.Committed++
		} else {
			res.Aborted++
		}
	}
	res.Elapsed = db.Now() - start
	return res, nil
}

// randInt64 returns a uniform key in [0, n).
func randInt64(r *rand.Rand, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return r.Int63n(n)
}

// nonUniform implements the TPC-C NURand non-uniform distribution.
func nonUniform(r *rand.Rand, a, x, y int64) int64 {
	return ((r.Int63n(a+1) | (x + r.Int63n(y-x+1))) % (y - x + 1)) + x
}

// putInt64 encodes v little-endian into b[off:off+8].
func putInt64(b []byte, off int, v int64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

// getInt64 decodes a little-endian int64 from b[off:off+8].
func getInt64(b []byte, off int) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[off+i]) << (8 * i)
	}
	return v
}

// int64Bytes returns the little-endian encoding of v.
func int64Bytes(v int64) []byte {
	b := make([]byte, 8)
	putInt64(b, 0, v)
	return b
}

// fill fills a tuple with a deterministic pattern so pages are not trivially
// compressible/erased.
func fill(b []byte, seed int64) {
	x := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for i := range b {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		b[i] = byte(x * 0x2545F4914F6CDD1D >> 56)
	}
}
