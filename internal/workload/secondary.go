package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"ipa"
)

// Secondary-churn tuple layout: int64 primary key at offset 0, int64
// group (the indexed secondary attribute) at offset 8, payload behind.
const (
	scTupleSize   = 80
	scGroupOffset = 8
)

// SecondaryChurnConfig scales the secondary-churn workload.
type SecondaryChurnConfig struct {
	// Rows is the number of indexed rows.
	Rows int
	// Groups is the number of distinct secondary-key values; Rows/Groups
	// tuples share each key.
	Groups int
	// Seed drives the load-phase generator.
	Seed int64
}

// DefaultSecondaryChurnConfig returns the configuration used by the
// experiments.
func DefaultSecondaryChurnConfig() SecondaryChurnConfig {
	return SecondaryChurnConfig{Rows: 20000, Groups: 512, Seed: 23}
}

func (c SecondaryChurnConfig) withDefaults() SecondaryChurnConfig {
	if c.Rows <= 0 {
		c.Rows = 20000
	}
	if c.Groups <= 0 {
		c.Groups = 512
	}
	if c.Seed == 0 {
		c.Seed = 23
	}
	return c
}

// SecondaryChurn isolates secondary-index maintenance: a single table
// whose rows never move in the heap and whose primary keys never change,
// with a non-unique secondary index on a group attribute. The mix is 60%
// secondary lookups and 40% updates that move a row to another group —
// each move is one logical entry delete plus one insert in the secondary
// index and nothing in the primary key, so the engine's KindIndex
// counters measure (almost) pure secondary maintenance.
type SecondaryChurn struct {
	cfg   SecondaryChurnConfig
	items *ipa.Table
}

// NewSecondaryChurn creates the driver.
func NewSecondaryChurn(cfg SecondaryChurnConfig) *SecondaryChurn {
	return &SecondaryChurn{cfg: cfg.withDefaults()}
}

// Name implements Workload.
func (w *SecondaryChurn) Name() string { return "secchurn" }

// Config returns the effective configuration.
func (w *SecondaryChurn) Config() SecondaryChurnConfig { return w.cfg }

// Load implements Workload.
func (w *SecondaryChurn) Load(db *ipa.DB) error {
	var err error
	if w.items, err = db.CreateTable("sec_items", scTupleSize); err != nil {
		return err
	}
	if _, err = w.items.CreateSecondaryIndex("group", ipa.Int64Field(scGroupOffset)); err != nil {
		return err
	}
	for k := int64(0); k < int64(w.cfg.Rows); k++ {
		row := make([]byte, scTupleSize)
		fill(row, k+90000)
		putInt64(row, 0, k)
		putInt64(row, scGroupOffset, k%int64(w.cfg.Groups))
		if err := w.items.Insert(k, row); err != nil {
			return fmt.Errorf("secchurn load: %w", err)
		}
	}
	return db.FlushAll()
}

// RunOne implements Workload.
func (w *SecondaryChurn) RunOne(db *ipa.DB, r *rand.Rand) (bool, error) {
	groups := int64(w.cfg.Groups)
	if r.Intn(100) < 60 {
		// Secondary lookup: all rows currently in one group.
		if _, err := w.items.GetBySecondary("group", r.Int63n(groups)); err != nil {
			return false, err
		}
		return true, nil
	}
	// Group move: rewrite the indexed attribute of one row, relocating
	// its secondary entry (logical delete + insert, both logged).
	key := randInt64(r, int64(w.cfg.Rows))
	tx := db.Begin()
	if err := tx.UpdateAt(w.items, key, scGroupOffset, int64Bytes(r.Int63n(groups))); err != nil {
		if abortErr := tx.Abort(); abortErr != nil {
			return false, abortErr
		}
		if errors.Is(err, ipa.ErrConflict) || errors.Is(err, ipa.ErrKeyNotFound) {
			return false, nil
		}
		return false, err
	}
	if err := tx.Commit(); err != nil {
		return false, err
	}
	return true, nil
}
