package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ipa"
)

// The YCSB core workloads (Cooper et al., SoCC'10). Each letter is a fixed
// operation mix over a single keyed table:
//
//	A  update-heavy   50% read / 50% update           zipfian
//	B  read-mostly    95% read /  5% update           zipfian
//	C  read-only     100% read                        zipfian
//	D  read-latest    95% read /  5% insert           latest
//	E  short-scans    95% scan /  5% insert           zipfian start keys
//	F  read-mod-write 50% read / 50% read-modify-write zipfian
//
// Updates patch a few bytes at the tail of the tuple (UpdateBytes), the
// access pattern the paper's in-place appends absorb: a skewed stream of
// tiny modifications against pages that keep coming back dirty.

// YCSBOp is one operation class of a YCSB mix.
type YCSBOp int

// Operation classes.
const (
	YCSBRead YCSBOp = iota
	YCSBUpdate
	YCSBInsert
	YCSBScan
	YCSBRMW
)

// String names the operation class.
func (o YCSBOp) String() string {
	switch o {
	case YCSBRead:
		return "read"
	case YCSBUpdate:
		return "update"
	case YCSBInsert:
		return "insert"
	case YCSBScan:
		return "scan"
	case YCSBRMW:
		return "rmw"
	default:
		return fmt.Sprintf("YCSBOp(%d)", int(o))
	}
}

// YCSBMix is the operation mix of one workload letter, in percent. The
// fields sum to 100.
type YCSBMix struct {
	Read, Update, Insert, Scan, RMW int
}

// YCSBMixFor returns the canonical mix of a workload letter ('A'..'F').
func YCSBMixFor(letter byte) (YCSBMix, error) {
	switch letter {
	case 'A', 'a':
		return YCSBMix{Read: 50, Update: 50}, nil
	case 'B', 'b':
		return YCSBMix{Read: 95, Update: 5}, nil
	case 'C', 'c':
		return YCSBMix{Read: 100}, nil
	case 'D', 'd':
		return YCSBMix{Read: 95, Insert: 5}, nil
	case 'E', 'e':
		return YCSBMix{Scan: 95, Insert: 5}, nil
	case 'F', 'f':
		return YCSBMix{Read: 50, RMW: 50}, nil
	default:
		return YCSBMix{}, fmt.Errorf("workload: unknown YCSB letter %q", letter)
	}
}

// pick draws one operation class from the mix.
func (m YCSBMix) pick(r *rand.Rand) YCSBOp {
	p := r.Intn(100)
	if p -= m.Read; p < 0 {
		return YCSBRead
	}
	if p -= m.Update; p < 0 {
		return YCSBUpdate
	}
	if p -= m.Insert; p < 0 {
		return YCSBInsert
	}
	if p -= m.Scan; p < 0 {
		return YCSBScan
	}
	return YCSBRMW
}

// Zipfian draws ranks in [0, N) with P(rank k) ∝ 1/(k+1)^theta, using the
// rejection-free transform of Gray et al. ("Quickly generating
// billion-record synthetic databases") that YCSB's generator uses. Rank 0
// is the most popular item. The struct is immutable after construction and
// safe for concurrent use; all randomness comes from the caller's
// *rand.Rand, so a fixed seed gives a fixed sequence.
type Zipfian struct {
	n               int64
	theta           float64
	alpha, eta      float64
	zetan, zeta2    float64
	halfPowTheta    float64
	cumulativeCache []float64 // zeta(k)/zeta(n) for small k (hot-set mass)
}

// YCSBTheta is the skew constant of YCSB's zipfian generator.
const YCSBTheta = 0.99

// NewZipfian builds a zipfian sampler over [0, n) with the given theta
// (0 < theta < 1; YCSBTheta is the YCSB default).
func NewZipfian(n int64, theta float64) *Zipfian {
	if n < 1 {
		n = 1
	}
	z := &Zipfian{n: n, theta: theta}
	z.zeta2 = zetaSum(2, theta)
	z.zetan = zetaSum(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	z.halfPowTheta = 1 + math.Pow(0.5, theta)
	const cache = 64
	k := int64(cache)
	if k > n {
		k = n
	}
	z.cumulativeCache = make([]float64, k)
	sum := 0.0
	for i := int64(0); i < k; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		z.cumulativeCache[i] = sum / z.zetan
	}
	return z
}

// zetaSum computes zeta(n, theta) = sum_{i=1..n} i^-theta.
func zetaSum(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// N returns the size of the rank space.
func (z *Zipfian) N() int64 { return z.n }

// Next draws a rank in [0, N); rank 0 is the hottest.
func (z *Zipfian) Next(r *rand.Rand) int64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.halfPowTheta {
		return 1
	}
	k := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// HotSetMass returns the theoretical probability mass of the k most
// popular ranks: zeta(k)/zeta(n). Property tests compare the sampled mass
// against it.
func (z *Zipfian) HotSetMass(k int64) float64 {
	if k <= 0 {
		return 0
	}
	if k >= z.n {
		return 1
	}
	if int(k) <= len(z.cumulativeCache) {
		return z.cumulativeCache[k-1]
	}
	return zetaSum(k, z.theta) / z.zetan
}

// scrambleKey spreads a zipfian rank across the keyspace with an FNV-1a
// hash (YCSB's scrambled-zipfian), so the hot set is not one contiguous
// key range sharing heap pages. Collisions merely merge two ranks onto one
// key, exactly as in YCSB.
func scrambleKey(rank, n int64) int64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	v := uint64(rank)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	k := int64(h % uint64(n))
	if k < 0 {
		k = -k
	}
	return k
}

// YCSBConfig configures one YCSB workload instance.
type YCSBConfig struct {
	// Letter selects the mix: 'A'..'F'.
	Letter byte
	// Records is the number of preloaded rows (the insert phase).
	Records int
	// ValueSize is the tuple size in bytes.
	ValueSize int
	// UpdateBytes is the size of the tail patch an update writes.
	UpdateBytes int
	// Distribution overrides the request distribution: "zipfian",
	// "latest" or "uniform". Empty selects the letter's default (latest
	// for D, zipfian otherwise).
	Distribution string
	// Theta is the zipfian constant (0 = YCSBTheta).
	Theta float64
	// MaxScanLength bounds workload E scans (default 100).
	MaxScanLength int
	// Seed drives the load-phase generator.
	Seed int64
}

// DefaultYCSBConfig returns the configuration of one workload letter with
// YCSB-like defaults scaled to the simulated device.
func DefaultYCSBConfig(letter byte) YCSBConfig {
	return YCSBConfig{
		Letter:        letter,
		Records:       10000,
		ValueSize:     120,
		UpdateBytes:   8,
		Theta:         YCSBTheta,
		MaxScanLength: 100,
		Seed:          11,
	}
}

func (c YCSBConfig) withDefaults() YCSBConfig {
	if c.Letter == 0 {
		c.Letter = 'A'
	}
	if c.Letter >= 'a' && c.Letter <= 'z' {
		c.Letter -= 'a' - 'A'
	}
	if c.Records <= 0 {
		c.Records = 10000
	}
	if c.ValueSize <= 16 {
		c.ValueSize = 120
	}
	if c.UpdateBytes <= 0 || c.UpdateBytes > c.ValueSize-8 {
		c.UpdateBytes = 8
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		c.Theta = YCSBTheta
	}
	if c.MaxScanLength <= 0 {
		c.MaxScanLength = 100
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Distribution == "" {
		if c.Letter == 'D' {
			c.Distribution = "latest"
		} else {
			c.Distribution = "zipfian"
		}
	}
	return c
}

// YCSB is one YCSB core workload (a letter plus a key distribution)
// against a single table.
type YCSB struct {
	cfg   YCSBConfig
	mix   YCSBMix
	table *ipa.Table
	zipf  *Zipfian
	// maxKey is the highest key inserted so far (keys are dense 0..maxKey);
	// the latest distribution reads near it, inserts extend it. RunOne is
	// single-threaded per driver (like every other driver here), so a plain
	// field suffices.
	maxKey int64
}

// NewYCSB creates a YCSB driver; the configuration letter must be 'A'..'F'.
func NewYCSB(cfg YCSBConfig) (*YCSB, error) {
	cfg = cfg.withDefaults()
	mix, err := YCSBMixFor(cfg.Letter)
	if err != nil {
		return nil, err
	}
	switch cfg.Distribution {
	case "zipfian", "latest", "uniform":
	default:
		return nil, fmt.Errorf("workload: unknown YCSB distribution %q", cfg.Distribution)
	}
	return &YCSB{
		cfg:  cfg,
		mix:  mix,
		zipf: NewZipfian(int64(cfg.Records), cfg.Theta),
	}, nil
}

// Name implements Workload.
func (w *YCSB) Name() string { return "ycsb-" + string(w.cfg.Letter+'a'-'A') }

// Config returns the effective configuration.
func (w *YCSB) Config() YCSBConfig { return w.cfg }

// Mix returns the letter's operation mix.
func (w *YCSB) Mix() YCSBMix { return w.mix }

// Load implements Workload: it creates the table and inserts the dense
// keyspace [0, Records).
func (w *YCSB) Load(db *ipa.DB) error {
	var err error
	if w.table, err = db.CreateTable("ycsb", w.cfg.ValueSize); err != nil {
		return err
	}
	row := make([]byte, w.cfg.ValueSize)
	for k := 0; k < w.cfg.Records; k++ {
		fill(row, int64(k)+w.cfg.Seed)
		putInt64(row, 0, int64(k))
		if err := w.table.Insert(int64(k), row); err != nil {
			return fmt.Errorf("ycsb load: %w", err)
		}
	}
	w.maxKey = int64(w.cfg.Records) - 1
	return db.FlushAll()
}

// nextKey draws a key from the configured request distribution.
func (w *YCSB) nextKey(r *rand.Rand) int64 {
	n := w.maxKey + 1
	switch w.cfg.Distribution {
	case "uniform":
		return randInt64(r, n)
	case "latest":
		// Rank 0 = the most recently inserted key.
		rank := w.zipf.Next(r)
		if rank > w.maxKey {
			rank = w.maxKey
		}
		return w.maxKey - rank
	default: // zipfian, scrambled across the keyspace
		return scrambleKey(w.zipf.Next(r), n)
	}
}

// RunOne implements Workload: one YCSB operation as one transaction.
func (w *YCSB) RunOne(db *ipa.DB, r *rand.Rand) (bool, error) {
	op := w.mix.pick(r)
	switch op {
	case YCSBRead:
		key := w.nextKey(r)
		if _, err := w.table.Get(key); err != nil {
			return false, fmt.Errorf("ycsb read %d: %w", key, err)
		}
		return true, nil

	case YCSBScan:
		// Zipfian start key, uniform length in [1, MaxScanLength]: the
		// snapshot range read of workload E.
		start := w.nextKey(r)
		length := int64(1 + r.Intn(w.cfg.MaxScanLength))
		rows := 0
		err := w.table.ScanRange(start, start+length, func(int64, []byte) bool {
			rows++
			return true
		})
		if err != nil {
			return false, fmt.Errorf("ycsb scan [%d,%d): %w", start, start+length, err)
		}
		return true, nil

	case YCSBInsert:
		key := w.maxKey + 1
		row := make([]byte, w.cfg.ValueSize)
		fill(row, key+w.cfg.Seed)
		putInt64(row, 0, key)
		tx := db.Begin()
		if err := tx.Insert(w.table, key, row); err != nil {
			return w.abort(tx, err)
		}
		if err := tx.Commit(); err != nil {
			return false, err
		}
		w.maxKey = key
		return true, nil

	case YCSBUpdate:
		key := w.nextKey(r)
		patch := make([]byte, w.cfg.UpdateBytes)
		fill(patch, int64(r.Int63()))
		tx := db.Begin()
		if err := tx.UpdateAt(w.table, key, w.cfg.ValueSize-w.cfg.UpdateBytes, patch); err != nil {
			return w.abort(tx, err)
		}
		if err := tx.Commit(); err != nil {
			return false, err
		}
		return true, nil

	default: // YCSBRMW
		key := w.nextKey(r)
		tx := db.Begin()
		row, err := tx.Get(w.table, key)
		if err != nil {
			return w.abort(tx, err)
		}
		// Derive the patch from the read (the "modify" of read-modify-
		// write): bump a counter in the tail.
		off := w.cfg.ValueSize - w.cfg.UpdateBytes
		patch := make([]byte, w.cfg.UpdateBytes)
		copy(patch, row[off:])
		patch[0]++
		if err := tx.UpdateAt(w.table, key, off, patch); err != nil {
			return w.abort(tx, err)
		}
		if err := tx.Commit(); err != nil {
			return false, err
		}
		return true, nil
	}
}

// abort rolls the transaction back, mapping conflicts to a retryable
// outcome like every other driver.
func (w *YCSB) abort(tx *ipa.Tx, err error) (bool, error) {
	if abortErr := tx.Abort(); abortErr != nil {
		return false, abortErr
	}
	if err != nil && !errors.Is(err, ipa.ErrConflict) {
		return false, err
	}
	return false, nil
}

// Table returns the YCSB table (for invariant checks in tests).
func (w *YCSB) Table() *ipa.Table { return w.table }

// MaxKey returns the highest key inserted so far.
func (w *YCSB) MaxKey() int64 { return w.maxKey }
