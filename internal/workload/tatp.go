package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"ipa"
)

// TATP tuple sizes.
const (
	tatpSubscriberSize = 100
	tatpAccessInfoSize = 60
	tatpFacilitySize   = 60
	tatpForwardingSize = 60

	// Offsets of the fields updated by the TATP write transactions.
	tatpBitOffset     = 8  // UPDATE_SUBSCRIBER_DATA: bit_1 (1 byte)
	tatpDataAOffset   = 9  // UPDATE_SUBSCRIBER_DATA: data_a in special_facility (1 byte)
	tatpVLRLocOffset  = 16 // UPDATE_LOCATION: vlr_location (4 bytes)
	tatpEndTimeOffset = 20 // INSERT_CALL_FORWARDING: end_time (1 byte)
	// tatpSubNbrOffset holds the subscriber's sub_nbr: the non-primary
	// identifier the TATP specification routes most lookups through. The
	// secondary-index variant indexes it (and the forwarding table's
	// owning subscriber at offset 0).
	tatpSubNbrOffset = 24
)

// subNbr derives the (unique) sub_nbr of a subscriber: an injective
// permutation of s_id, so drivers can compute the lookup key without a
// table of their own.
func subNbr(s int64) int64 { return s*7919 + 13 }

// TATPConfig scales the TATP database.
type TATPConfig struct {
	// Subscribers is the number of subscriber rows.
	Subscribers int
	// Seed drives the load-phase generator.
	Seed int64
	// SecondaryLookups switches the driver to the secondary-index variant
	// ("tatpsec"): subscribers are found by sub_nbr through a secondary
	// index instead of by primary key, and call-forwarding rows are
	// additionally indexed by their owning subscriber — so the
	// insert/delete call-forwarding transactions churn a secondary index
	// transactionally.
	SecondaryLookups bool
}

// DefaultTATPConfig returns the configuration used by the experiments.
func DefaultTATPConfig() TATPConfig { return TATPConfig{Subscribers: 40000, Seed: 11} }

func (c TATPConfig) withDefaults() TATPConfig {
	if c.Subscribers <= 0 {
		c.Subscribers = 40000
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	return c
}

// TATP is the Telecom Application Transaction Processing benchmark driver:
// roughly 80% reads and 20% very small writes (single-byte flags and 4-byte
// locations), the workload where IPA shines.
type TATP struct {
	cfg TATPConfig

	subscribers *ipa.Table
	accessInfo  *ipa.Table
	facilities  *ipa.Table
	forwarding  *ipa.Table

	nextForwardID int64
}

// NewTATP creates a TATP driver.
func NewTATP(cfg TATPConfig) *TATP { return &TATP{cfg: cfg.withDefaults()} }

// Name implements Workload.
func (w *TATP) Name() string {
	if w.cfg.SecondaryLookups {
		return "tatpsec"
	}
	return "tatp"
}

// Config returns the effective configuration.
func (w *TATP) Config() TATPConfig { return w.cfg }

// accessKey builds the composite key (subscriber, ai_type).
func accessKey(sub int64, aiType int) int64 { return sub*4 + int64(aiType) }

// facilityKey builds the composite key (subscriber, sf_type).
func facilityKey(sub int64, sfType int) int64 { return sub*4 + int64(sfType) }

// Load implements Workload.
func (w *TATP) Load(db *ipa.DB) error {
	var err error
	if w.subscribers, err = db.CreateTable("tatp_subscriber", tatpSubscriberSize); err != nil {
		return err
	}
	if w.accessInfo, err = db.CreateTable("tatp_access_info", tatpAccessInfoSize); err != nil {
		return err
	}
	if w.facilities, err = db.CreateTable("tatp_special_facility", tatpFacilitySize); err != nil {
		return err
	}
	if w.forwarding, err = db.CreateTableWithScheme("tatp_call_forwarding", tatpForwardingSize, ipa.Scheme{}); err != nil {
		return err
	}
	if w.cfg.SecondaryLookups {
		// Indexes are created before any row exists, so all maintenance
		// during the measured run is transactional and WAL-covered.
		if _, err = w.subscribers.CreateSecondaryIndex("sub_nbr", ipa.Int64Field(tatpSubNbrOffset)); err != nil {
			return err
		}
		if _, err = w.forwarding.CreateSecondaryIndex("by_sub", ipa.Int64Field(0)); err != nil {
			return err
		}
	}
	r := rand.New(rand.NewSource(w.cfg.Seed))
	for s := int64(0); s < int64(w.cfg.Subscribers); s++ {
		row := make([]byte, tatpSubscriberSize)
		fill(row, s+5000)
		putInt64(row, 0, s)
		putInt64(row, tatpSubNbrOffset, subNbr(s))
		if err := w.subscribers.Insert(s, row); err != nil {
			return fmt.Errorf("tatp load subscriber: %w", err)
		}
		// 1-4 access_info rows per subscriber.
		nAI := 1 + r.Intn(4)
		for a := 0; a < nAI; a++ {
			ai := make([]byte, tatpAccessInfoSize)
			fill(ai, s*10+int64(a))
			putInt64(ai, 0, s)
			if err := w.accessInfo.Insert(accessKey(s, a), ai); err != nil {
				return fmt.Errorf("tatp load access_info: %w", err)
			}
		}
		// 1-4 special_facility rows per subscriber.
		nSF := 1 + r.Intn(4)
		for f := 0; f < nSF; f++ {
			sf := make([]byte, tatpFacilitySize)
			fill(sf, s*100+int64(f))
			putInt64(sf, 0, s)
			if err := w.facilities.Insert(facilityKey(s, f), sf); err != nil {
				return fmt.Errorf("tatp load special_facility: %w", err)
			}
		}
	}
	return db.FlushAll()
}

// RunOne implements Workload with the standard TATP transaction mix.
func (w *TATP) RunOne(db *ipa.DB, r *rand.Rand) (bool, error) {
	sub := randInt64(r, int64(w.cfg.Subscribers))
	p := r.Intn(100)
	switch {
	case p < 35:
		return w.getSubscriberData(db, sub)
	case p < 45:
		return w.getNewDestination(db, r, sub)
	case p < 80:
		return w.getAccessData(db, r, sub)
	case p < 82:
		return w.updateSubscriberData(db, r, sub)
	case p < 96:
		return w.updateLocation(db, r, sub)
	case p < 98:
		return w.insertCallForwarding(db, r, sub)
	default:
		return w.deleteCallForwarding(db)
	}
}

func (w *TATP) readCommit(db *ipa.DB, read func(tx *ipa.Tx) error) (bool, error) {
	tx := db.Begin()
	if err := read(tx); err != nil {
		if abortErr := tx.Abort(); abortErr != nil {
			return false, abortErr
		}
		if errors.Is(err, ipa.ErrKeyNotFound) || errors.Is(err, ipa.ErrConflict) {
			return false, nil
		}
		return false, err
	}
	if err := tx.Commit(); err != nil {
		return false, err
	}
	return true, nil
}

func (w *TATP) getSubscriberData(db *ipa.DB, sub int64) (bool, error) {
	return w.readCommit(db, func(tx *ipa.Tx) error {
		if w.cfg.SecondaryLookups {
			// The TATP spec routes this lookup through sub_nbr, not the
			// primary key: resolve it via the secondary index.
			rows, err := w.subscribers.GetBySecondary("sub_nbr", subNbr(sub))
			if err != nil {
				return err
			}
			if len(rows) == 0 {
				return ipa.ErrKeyNotFound
			}
			return nil
		}
		_, err := tx.Get(w.subscribers, sub)
		return err
	})
}

func (w *TATP) getNewDestination(db *ipa.DB, r *rand.Rand, sub int64) (bool, error) {
	return w.readCommit(db, func(tx *ipa.Tx) error {
		if _, err := tx.Get(w.facilities, facilityKey(sub, r.Intn(4))); err != nil {
			return err
		}
		// A matching call_forwarding row frequently does not exist; that is
		// a valid empty result, not an error.
		if w.cfg.SecondaryLookups {
			_, _ = w.forwarding.GetBySecondary("by_sub", sub)
			return nil
		}
		_, _ = tx.Get(w.forwarding, sub*8+int64(r.Intn(3)))
		return nil
	})
}

func (w *TATP) getAccessData(db *ipa.DB, r *rand.Rand, sub int64) (bool, error) {
	return w.readCommit(db, func(tx *ipa.Tx) error {
		_, err := tx.Get(w.accessInfo, accessKey(sub, r.Intn(4)))
		return err
	})
}

func (w *TATP) updateSubscriberData(db *ipa.DB, r *rand.Rand, sub int64) (bool, error) {
	return w.readCommit(db, func(tx *ipa.Tx) error {
		// bit_1 of the subscriber: a single-byte update.
		if err := tx.UpdateAt(w.subscribers, sub, tatpBitOffset, []byte{byte(r.Intn(2))}); err != nil {
			return err
		}
		// data_a of one special_facility row: another single byte.
		return tx.UpdateAt(w.facilities, facilityKey(sub, r.Intn(4)), tatpDataAOffset, []byte{byte(r.Intn(256))})
	})
}

func (w *TATP) updateLocation(db *ipa.DB, r *rand.Rand, sub int64) (bool, error) {
	return w.readCommit(db, func(tx *ipa.Tx) error {
		loc := make([]byte, 4)
		v := uint32(r.Int63())
		loc[0], loc[1], loc[2], loc[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return tx.UpdateAt(w.subscribers, sub, tatpVLRLocOffset, loc)
	})
}

func (w *TATP) insertCallForwarding(db *ipa.DB, r *rand.Rand, sub int64) (bool, error) {
	w.nextForwardID++
	key := w.nextForwardID
	return w.readCommit(db, func(tx *ipa.Tx) error {
		row := make([]byte, tatpForwardingSize)
		fill(row, key)
		putInt64(row, 0, sub)
		row[tatpEndTimeOffset] = byte(r.Intn(24))
		return tx.Insert(w.forwarding, key, row)
	})
}

func (w *TATP) deleteCallForwarding(db *ipa.DB) (bool, error) {
	// Deletes are rare and target recently inserted rows; deleting a
	// non-existent row is an acceptable no-op per the TATP specification.
	if w.nextForwardID == 0 {
		return true, nil
	}
	key := w.nextForwardID
	if w.cfg.SecondaryLookups {
		// The variant deletes transactionally so the by_sub secondary
		// maintenance is WAL-covered like the rest of its churn.
		tx := db.Begin()
		if err := tx.Delete(w.forwarding, key); err != nil {
			if abortErr := tx.Abort(); abortErr != nil {
				return false, abortErr
			}
			if errors.Is(err, ipa.ErrKeyNotFound) || errors.Is(err, ipa.ErrConflict) {
				return true, nil
			}
			return false, err
		}
		if err := tx.Commit(); err != nil {
			return false, err
		}
		w.nextForwardID--
		return true, nil
	}
	if err := w.forwarding.Delete(key); err != nil {
		if errors.Is(err, ipa.ErrKeyNotFound) {
			return true, nil
		}
		return false, err
	}
	w.nextForwardID--
	return true, nil
}
