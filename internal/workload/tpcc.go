package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"ipa"
)

// TPC-C tuple sizes (bytes). The real schema has wide rows; the driver uses
// representative fixed sizes so that tuples-per-page ratios stay realistic
// while keeping the load phase small enough for the simulated device.
const (
	tpccWarehouseSize = 100
	tpccDistrictSize  = 100
	tpccCustomerSize  = 300
	tpccItemSize      = 80
	tpccStockSize     = 120
	tpccOrderSize     = 60
	tpccOrderLineSize = 70
	tpccHistSize      = 50

	// Offsets of the small fields updated by New-Order and Payment.
	tpccYTDOffset      = 8  // warehouse/district year-to-date (8 bytes)
	tpccNextOIDOffset  = 16 // district next order id (8 bytes)
	tpccBalanceOffset  = 8  // customer balance (8 bytes)
	tpccQuantityOffset = 8  // stock quantity (4 bytes)
	tpccStockYTDOffset = 16 // stock ytd (8 bytes)

	// tpccInitialAmount keeps monetary counters away from zero so the
	// typical update touches only the low-order bytes (see the TPC-B
	// driver for the rationale).
	tpccInitialAmount = int64(1234567890123)
)

// TPCCConfig scales the TPC-C database.
type TPCCConfig struct {
	// Warehouses is the scale factor.
	Warehouses int
	// DistrictsPerWarehouse defaults to 10.
	DistrictsPerWarehouse int
	// CustomersPerDistrict defaults to 300 (scaled down from 3000).
	CustomersPerDistrict int
	// Items defaults to 2000 (scaled down from 100000).
	Items int
	// Seed drives the load-phase generator.
	Seed int64
}

// DefaultTPCCConfig returns the configuration used by the experiments.
func DefaultTPCCConfig() TPCCConfig {
	return TPCCConfig{Warehouses: 2, DistrictsPerWarehouse: 10, CustomersPerDistrict: 300, Items: 2000, Seed: 13}
}

func (c TPCCConfig) withDefaults() TPCCConfig {
	if c.Warehouses <= 0 {
		c.Warehouses = 2
	}
	if c.DistrictsPerWarehouse <= 0 {
		c.DistrictsPerWarehouse = 10
	}
	if c.CustomersPerDistrict <= 0 {
		c.CustomersPerDistrict = 300
	}
	if c.Items <= 0 {
		c.Items = 2000
	}
	if c.Seed == 0 {
		c.Seed = 13
	}
	return c
}

// TPCC is a TPC-C subset driver executing the New-Order, Payment and
// Order-Status transactions (the bulk of the standard mix).
type TPCC struct {
	cfg TPCCConfig

	warehouses *ipa.Table
	districts  *ipa.Table
	customers  *ipa.Table
	items      *ipa.Table
	stock      *ipa.Table
	orders     *ipa.Table
	orderLines *ipa.Table
	history    *ipa.Table

	nextOrderID     int64
	nextOrderLineID int64
	nextHistID      int64
}

// NewTPCC creates a TPC-C driver.
func NewTPCC(cfg TPCCConfig) *TPCC { return &TPCC{cfg: cfg.withDefaults()} }

// Name implements Workload.
func (w *TPCC) Name() string { return "tpcc" }

// Config returns the effective configuration.
func (w *TPCC) Config() TPCCConfig { return w.cfg }

func (w *TPCC) districtKey(wh, d int64) int64 { return wh*100 + d }
func (w *TPCC) customerKey(wh, d, c int64) int64 {
	return (wh*100+d)*10000 + c
}
func (w *TPCC) stockKey(wh, item int64) int64 { return wh*1000000 + item }

// Load implements Workload.
func (w *TPCC) Load(db *ipa.DB) error {
	var err error
	if w.warehouses, err = db.CreateTable("tpcc_warehouse", tpccWarehouseSize); err != nil {
		return err
	}
	if w.districts, err = db.CreateTable("tpcc_district", tpccDistrictSize); err != nil {
		return err
	}
	if w.customers, err = db.CreateTable("tpcc_customer", tpccCustomerSize); err != nil {
		return err
	}
	if w.items, err = db.CreateTable("tpcc_item", tpccItemSize); err != nil {
		return err
	}
	if w.stock, err = db.CreateTable("tpcc_stock", tpccStockSize); err != nil {
		return err
	}
	// Insert-only tables never profit from IPA; keep them in a plain
	// region (selective IPA via NoFTL regions).
	if w.orders, err = db.CreateTableWithScheme("tpcc_orders", tpccOrderSize, ipa.Scheme{}); err != nil {
		return err
	}
	if w.orderLines, err = db.CreateTableWithScheme("tpcc_order_line", tpccOrderLineSize, ipa.Scheme{}); err != nil {
		return err
	}
	if w.history, err = db.CreateTableWithScheme("tpcc_history", tpccHistSize, ipa.Scheme{}); err != nil {
		return err
	}

	c := w.cfg
	for i := int64(0); i < int64(c.Items); i++ {
		row := make([]byte, tpccItemSize)
		fill(row, i+9000)
		putInt64(row, 0, i)
		if err := w.items.Insert(i, row); err != nil {
			return fmt.Errorf("tpcc load items: %w", err)
		}
	}
	for wh := int64(0); wh < int64(c.Warehouses); wh++ {
		row := make([]byte, tpccWarehouseSize)
		fill(row, wh+9100)
		putInt64(row, 0, wh)
		putInt64(row, tpccYTDOffset, tpccInitialAmount)
		if err := w.warehouses.Insert(wh, row); err != nil {
			return fmt.Errorf("tpcc load warehouse: %w", err)
		}
		for d := int64(0); d < int64(c.DistrictsPerWarehouse); d++ {
			drow := make([]byte, tpccDistrictSize)
			fill(drow, wh*100+d+9200)
			putInt64(drow, 0, w.districtKey(wh, d))
			putInt64(drow, tpccYTDOffset, tpccInitialAmount)
			putInt64(drow, tpccNextOIDOffset, 1)
			if err := w.districts.Insert(w.districtKey(wh, d), drow); err != nil {
				return fmt.Errorf("tpcc load district: %w", err)
			}
			for cu := int64(0); cu < int64(c.CustomersPerDistrict); cu++ {
				crow := make([]byte, tpccCustomerSize)
				fill(crow, wh*1000000+d*10000+cu)
				putInt64(crow, 0, w.customerKey(wh, d, cu))
				putInt64(crow, tpccBalanceOffset, tpccInitialAmount)
				if err := w.customers.Insert(w.customerKey(wh, d, cu), crow); err != nil {
					return fmt.Errorf("tpcc load customer: %w", err)
				}
			}
		}
		for i := int64(0); i < int64(c.Items); i++ {
			srow := make([]byte, tpccStockSize)
			fill(srow, wh*10000000+i)
			putInt64(srow, 0, w.stockKey(wh, i))
			putInt64(srow, tpccQuantityOffset, 50)
			putInt64(srow, tpccStockYTDOffset, tpccInitialAmount)
			if err := w.stock.Insert(w.stockKey(wh, i), srow); err != nil {
				return fmt.Errorf("tpcc load stock: %w", err)
			}
		}
	}
	return db.FlushAll()
}

// RunOne implements Workload with the (reduced) standard mix: 45% New-Order,
// 45% Payment, 10% Order-Status.
func (w *TPCC) RunOne(db *ipa.DB, r *rand.Rand) (bool, error) {
	p := r.Intn(100)
	switch {
	case p < 45:
		return w.newOrder(db, r)
	case p < 90:
		return w.payment(db, r)
	default:
		return w.orderStatus(db, r)
	}
}

func (w *TPCC) run(db *ipa.DB, body func(tx *ipa.Tx) error) (bool, error) {
	tx := db.Begin()
	if err := body(tx); err != nil {
		if abortErr := tx.Abort(); abortErr != nil {
			return false, abortErr
		}
		if errors.Is(err, ipa.ErrConflict) || errors.Is(err, ipa.ErrKeyNotFound) {
			return false, nil
		}
		return false, err
	}
	if err := tx.Commit(); err != nil {
		return false, err
	}
	return true, nil
}

// newOrder reads the customer and district, increments the district's next
// order id, updates the quantity and ytd of 5-15 stock rows and inserts the
// order and its order lines.
func (w *TPCC) newOrder(db *ipa.DB, r *rand.Rand) (bool, error) {
	c := w.cfg
	wh := randInt64(r, int64(c.Warehouses))
	d := randInt64(r, int64(c.DistrictsPerWarehouse))
	cust := nonUniform(r, 1023, 0, int64(c.CustomersPerDistrict)-1)
	nItems := 5 + r.Intn(11)

	return w.run(db, func(tx *ipa.Tx) error {
		if _, err := tx.Get(w.customers, w.customerKey(wh, d, cust)); err != nil {
			return err
		}
		if _, err := tx.Get(w.warehouses, wh); err != nil {
			return err
		}
		drow, err := tx.Get(w.districts, w.districtKey(wh, d))
		if err != nil {
			return err
		}
		nextOID := getInt64(drow, tpccNextOIDOffset)
		if err := tx.UpdateAt(w.districts, w.districtKey(wh, d), tpccNextOIDOffset, int64Bytes(nextOID+1)); err != nil {
			return err
		}

		w.nextOrderID++
		orow := make([]byte, tpccOrderSize)
		fill(orow, w.nextOrderID)
		putInt64(orow, 0, w.nextOrderID)
		putInt64(orow, 8, w.customerKey(wh, d, cust))
		if err := tx.Insert(w.orders, w.nextOrderID, orow); err != nil {
			return err
		}

		for i := 0; i < nItems; i++ {
			item := nonUniform(r, 8191, 0, int64(c.Items)-1)
			if _, err := tx.Get(w.items, item); err != nil {
				return err
			}
			skey := w.stockKey(wh, item)
			srow, err := tx.Get(w.stock, skey)
			if err != nil {
				return err
			}
			qty := getInt64(srow, tpccQuantityOffset)
			ordered := int64(1 + r.Intn(10))
			newQty := qty - ordered
			if newQty < 10 {
				newQty += 91
			}
			if err := tx.UpdateAt(w.stock, skey, tpccQuantityOffset, int64Bytes(newQty)); err != nil {
				return err
			}
			if err := tx.UpdateAt(w.stock, skey, tpccStockYTDOffset,
				int64Bytes(getInt64(srow, tpccStockYTDOffset)+ordered)); err != nil {
				return err
			}

			w.nextOrderLineID++
			ol := make([]byte, tpccOrderLineSize)
			fill(ol, w.nextOrderLineID)
			putInt64(ol, 0, w.nextOrderLineID)
			putInt64(ol, 8, w.nextOrderID)
			putInt64(ol, 16, item)
			if err := tx.Insert(w.orderLines, w.nextOrderLineID, ol); err != nil {
				return err
			}
		}
		return nil
	})
}

// payment updates the warehouse and district year-to-date totals and the
// customer balance, and inserts a history row.
func (w *TPCC) payment(db *ipa.DB, r *rand.Rand) (bool, error) {
	c := w.cfg
	wh := randInt64(r, int64(c.Warehouses))
	d := randInt64(r, int64(c.DistrictsPerWarehouse))
	cust := nonUniform(r, 1023, 0, int64(c.CustomersPerDistrict)-1)
	amount := int64(100 + r.Intn(500000))

	return w.run(db, func(tx *ipa.Tx) error {
		wrow, err := tx.Get(w.warehouses, wh)
		if err != nil {
			return err
		}
		if err := tx.UpdateAt(w.warehouses, wh, tpccYTDOffset,
			int64Bytes(getInt64(wrow, tpccYTDOffset)+amount)); err != nil {
			return err
		}
		dkey := w.districtKey(wh, d)
		drow, err := tx.Get(w.districts, dkey)
		if err != nil {
			return err
		}
		if err := tx.UpdateAt(w.districts, dkey, tpccYTDOffset,
			int64Bytes(getInt64(drow, tpccYTDOffset)+amount)); err != nil {
			return err
		}
		ckey := w.customerKey(wh, d, cust)
		crow, err := tx.Get(w.customers, ckey)
		if err != nil {
			return err
		}
		if err := tx.UpdateAt(w.customers, ckey, tpccBalanceOffset,
			int64Bytes(getInt64(crow, tpccBalanceOffset)-amount)); err != nil {
			return err
		}
		w.nextHistID++
		hrow := make([]byte, tpccHistSize)
		fill(hrow, w.nextHistID)
		putInt64(hrow, 0, w.nextHistID)
		putInt64(hrow, 8, ckey)
		putInt64(hrow, 16, amount)
		return tx.Insert(w.history, w.nextHistID, hrow)
	})
}

// orderStatus reads a customer and its most recent order and order lines.
func (w *TPCC) orderStatus(db *ipa.DB, r *rand.Rand) (bool, error) {
	c := w.cfg
	wh := randInt64(r, int64(c.Warehouses))
	d := randInt64(r, int64(c.DistrictsPerWarehouse))
	cust := nonUniform(r, 1023, 0, int64(c.CustomersPerDistrict)-1)

	return w.run(db, func(tx *ipa.Tx) error {
		if _, err := tx.Get(w.customers, w.customerKey(wh, d, cust)); err != nil {
			return err
		}
		if w.nextOrderID > 0 {
			oid := 1 + randInt64(r, w.nextOrderID)
			// The order may belong to any customer; this is only a read.
			if _, err := tx.Get(w.orders, oid); err != nil && !errors.Is(err, ipa.ErrKeyNotFound) {
				return err
			}
		}
		return nil
	})
}
