package workload

import (
	"math"
	"math/rand"
	"testing"

	"ipa"
)

// TestZipfianHotSetMass checks the sampler against its own theory: the
// empirical probability mass of the k most popular ranks must match
// zeta(k)/zeta(n) within sampling tolerance.
func TestZipfianHotSetMass(t *testing.T) {
	const (
		n       = 10000
		samples = 200000
	)
	z := NewZipfian(n, YCSBTheta)
	r := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[z.Next(r)]++
	}
	for _, k := range []int64{1, 10, 100, 1000} {
		hot := 0
		for i := int64(0); i < k; i++ {
			hot += counts[i]
		}
		got := float64(hot) / samples
		want := z.HotSetMass(k)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("top-%d mass = %.4f, want %.4f ± 0.03", k, got, want)
		}
	}
	// Sanity on the theory itself: with theta 0.99 the hot set is heavy.
	if m := z.HotSetMass(100); m < 0.4 {
		t.Errorf("HotSetMass(100) = %.3f, suspiciously light for theta %.2f", m, YCSBTheta)
	}
}

// TestZipfianDeterminism: a fixed seed yields a fixed rank sequence.
func TestZipfianDeterminism(t *testing.T) {
	z := NewZipfian(5000, YCSBTheta)
	a := rand.New(rand.NewSource(99))
	b := rand.New(rand.NewSource(99))
	for i := 0; i < 10000; i++ {
		if x, y := z.Next(a), z.Next(b); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

// TestLatestDistributionHotSet: the latest distribution concentrates its
// mass on the most recently inserted keys.
func TestLatestDistributionHotSet(t *testing.T) {
	cfg := DefaultYCSBConfig('D')
	cfg.Records = 10000
	w, err := NewYCSB(cfg)
	if err != nil {
		t.Fatalf("NewYCSB: %v", err)
	}
	w.maxKey = int64(cfg.Records) - 1 // as after Load
	r := rand.New(rand.NewSource(2))
	const samples = 100000
	const k = 100
	hot := 0
	for i := 0; i < samples; i++ {
		key := w.nextKey(r)
		if key > w.maxKey-k {
			hot++
		}
	}
	got := float64(hot) / samples
	want := w.zipf.HotSetMass(k)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("latest top-%d mass = %.4f, want %.4f ± 0.03", k, got, want)
	}
}

// TestUniformDistribution: the uniform override really is uniform (no
// sampled key takes a zipfian-sized share).
func TestUniformDistribution(t *testing.T) {
	cfg := DefaultYCSBConfig('C')
	cfg.Records = 1000
	cfg.Distribution = "uniform"
	w, err := NewYCSB(cfg)
	if err != nil {
		t.Fatalf("NewYCSB: %v", err)
	}
	w.maxKey = int64(cfg.Records) - 1
	r := rand.New(rand.NewSource(3))
	counts := make(map[int64]int)
	const samples = 100000
	for i := 0; i < samples; i++ {
		counts[w.nextKey(r)]++
	}
	for key, c := range counts {
		if share := float64(c) / samples; share > 0.01 {
			t.Errorf("uniform key %d drew %.3f of the mass", key, share)
		}
	}
	if len(counts) < 900 {
		t.Errorf("uniform sampler only touched %d of 1000 keys", len(counts))
	}
}

// TestYCSBMixes: the drawn operation mix of every letter matches its spec
// within sampling tolerance, and the specs are the canonical ones.
func TestYCSBMixes(t *testing.T) {
	want := map[byte]YCSBMix{
		'A': {Read: 50, Update: 50},
		'B': {Read: 95, Update: 5},
		'C': {Read: 100},
		'D': {Read: 95, Insert: 5},
		'E': {Scan: 95, Insert: 5},
		'F': {Read: 50, RMW: 50},
	}
	for letter, spec := range want {
		mix, err := YCSBMixFor(letter)
		if err != nil {
			t.Fatalf("YCSBMixFor(%c): %v", letter, err)
		}
		if mix != spec {
			t.Fatalf("mix %c = %+v, want %+v", letter, mix, spec)
		}
		r := rand.New(rand.NewSource(int64(letter)))
		const samples = 100000
		counts := map[YCSBOp]int{}
		for i := 0; i < samples; i++ {
			counts[mix.pick(r)]++
		}
		check := func(op YCSBOp, pct int) {
			got := float64(counts[op]) / samples * 100
			if math.Abs(got-float64(pct)) > 1.0 {
				t.Errorf("%c: %s share %.2f%%, want %d%% ± 1", letter, op, got, pct)
			}
		}
		check(YCSBRead, spec.Read)
		check(YCSBUpdate, spec.Update)
		check(YCSBInsert, spec.Insert)
		check(YCSBScan, spec.Scan)
		check(YCSBRMW, spec.RMW)
	}
	if _, err := YCSBMixFor('Z'); err == nil {
		t.Error("YCSBMixFor('Z') succeeded, want error")
	}
}

// TestYCSBDeterminism: the same seed drives the same (op, key) request
// stream.
func TestYCSBDeterminism(t *testing.T) {
	mk := func() *YCSB {
		cfg := DefaultYCSBConfig('A')
		cfg.Records = 5000
		w, err := NewYCSB(cfg)
		if err != nil {
			t.Fatalf("NewYCSB: %v", err)
		}
		w.maxKey = int64(cfg.Records) - 1
		return w
	}
	w1, w2 := mk(), mk()
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		op1, op2 := w1.mix.pick(r1), w2.mix.pick(r2)
		if op1 != op2 {
			t.Fatalf("op %d diverged: %s vs %s", i, op1, op2)
		}
		if k1, k2 := w1.nextKey(r1), w2.nextKey(r2); k1 != k2 {
			t.Fatalf("key %d diverged: %d vs %d", i, k1, k2)
		}
	}
}

// TestYCSBRunAllLetters runs every workload letter briefly against the
// engine, exercising each operation class end to end (scans of E, inserts
// of D, read-modify-writes of F).
func TestYCSBRunAllLetters(t *testing.T) {
	for _, letter := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		t.Run(string(letter), func(t *testing.T) {
			db := testDB(t, ipa.IPANativeFlash)
			defer db.Close()
			cfg := DefaultYCSBConfig(letter)
			cfg.Records = 2000
			cfg.MaxScanLength = 20
			w, err := NewYCSB(cfg)
			if err != nil {
				t.Fatalf("NewYCSB: %v", err)
			}
			if err := w.Load(db); err != nil {
				t.Fatalf("Load: %v", err)
			}
			res, err := Run(db, w, RunOptions{MaxOps: 400, Seed: 5})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Committed != 400 {
				t.Fatalf("committed %d of 400", res.Committed)
			}
			if got := w.Table().Count(); got < uint64(cfg.Records) {
				t.Fatalf("table count %d < preload %d", got, cfg.Records)
			}
			if err := db.VerifyIntegrity(); err != nil {
				t.Fatalf("VerifyIntegrity: %v", err)
			}
		})
	}
}
