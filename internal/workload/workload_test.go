package workload

import (
	"math/rand"
	"testing"
	"time"

	"ipa"
)

// testDB opens a small database suitable for the scaled-down workloads.
func testDB(t *testing.T, mode ipa.WriteMode) *ipa.DB {
	t.Helper()
	db, err := ipa.Open(ipa.Config{
		PageSize:        4096,
		Blocks:          96,
		PagesPerBlock:   32,
		BufferPoolPages: 64,
		WriteMode:       mode,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
		Analytic:        true,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestTPCBInvariants(t *testing.T) {
	db := testDB(t, ipa.IPANativeFlash)
	defer db.Close()
	cfg := TPCBConfig{Branches: 2, AccountsPerBranch: 2000, Seed: 3}
	w := NewTPCB(cfg)
	if err := w.Load(db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := Run(db, w, RunOptions{MaxOps: 500, Seed: 5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Committed != 500 {
		t.Fatalf("committed %d of 500", res.Committed)
	}
	if w.HistoryCount() != 500 {
		t.Fatalf("history rows = %d, want 500", w.HistoryCount())
	}
	// Money conservation: the sum of all balance changes must be equal
	// across accounts, tellers and branches.
	var accounts, tellers, branches int64
	c := w.Config()
	for a := int64(0); a < int64(c.Branches*c.AccountsPerBranch); a++ {
		bal, err := w.AccountBalance(a)
		if err != nil {
			t.Fatalf("AccountBalance: %v", err)
		}
		accounts += bal - tpcbInitialBalance
	}
	for tl := int64(0); tl < int64(c.Branches*c.TellersPerBranch); tl++ {
		bal, err := w.TellerBalance(tl)
		if err != nil {
			t.Fatalf("TellerBalance: %v", err)
		}
		tellers += bal - tpcbInitialBalance
	}
	for b := int64(0); b < int64(c.Branches); b++ {
		bal, err := w.BranchBalance(b)
		if err != nil {
			t.Fatalf("BranchBalance: %v", err)
		}
		branches += bal - tpcbInitialBalance
	}
	if accounts != tellers || tellers != branches {
		t.Fatalf("money not conserved: accounts=%d tellers=%d branches=%d", accounts, tellers, branches)
	}
}

func TestTPCBDeterministicWithSeed(t *testing.T) {
	run := func() ipa.Stats {
		db := testDB(t, ipa.IPANativeFlash)
		defer db.Close()
		w := NewTPCB(TPCBConfig{Branches: 1, AccountsPerBranch: 1000, Seed: 9})
		if err := w.Load(db); err != nil {
			t.Fatalf("Load: %v", err)
		}
		db.ResetStats()
		if _, err := Run(db, w, RunOptions{MaxOps: 300, Seed: 7}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := db.FlushAll(); err != nil {
			t.Fatalf("FlushAll: %v", err)
		}
		return db.Stats()
	}
	a, b := run(), run()
	if a.HostWrites != b.HostWrites || a.InPlaceAppends != b.InPlaceAppends || a.GCErases != b.GCErases {
		t.Fatalf("same seed must give identical I/O: %+v vs %+v", a, b)
	}
}

func TestTATPRuns(t *testing.T) {
	db := testDB(t, ipa.IPANativeFlash)
	defer db.Close()
	w := NewTATP(TATPConfig{Subscribers: 3000, Seed: 5})
	if err := w.Load(db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	db.ResetStats()
	res, err := Run(db, w, RunOptions{MaxOps: 800, Seed: 11})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Committed != 800 {
		t.Fatalf("committed %d", res.Committed)
	}
	s := db.Stats()
	// TATP is read dominated: reads must clearly outnumber writes.
	if s.HostReads <= s.TotalHostWrites() {
		t.Fatalf("TATP should be read-dominated: reads=%d writes=%d", s.HostReads, s.TotalHostWrites())
	}
}

func TestTPCCRuns(t *testing.T) {
	db := testDB(t, ipa.IPANativeFlash)
	defer db.Close()
	w := NewTPCC(TPCCConfig{Warehouses: 1, CustomersPerDistrict: 100, Items: 500, Seed: 5})
	if err := w.Load(db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := Run(db, w, RunOptions{MaxOps: 300, Seed: 13})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Committed != 300 {
		t.Fatalf("committed %d", res.Committed)
	}
	// New-Order transactions must have inserted orders and order lines.
	orders, _ := db.Table("tpcc_orders")
	lines, _ := db.Table("tpcc_order_line")
	if orders.Count() == 0 || lines.Count() <= orders.Count() {
		t.Fatalf("order insertion wrong: %d orders, %d lines", orders.Count(), lines.Count())
	}
}

func TestLinkBenchRuns(t *testing.T) {
	db := testDB(t, ipa.IPANativeFlash)
	defer db.Close()
	w := NewLinkBench(LinkBenchConfig{Nodes: 2000, LinksPerNode: 2, Seed: 5})
	if err := w.Load(db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := Run(db, w, RunOptions{MaxOps: 500, Seed: 17})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Committed != 500 {
		t.Fatalf("committed %d", res.Committed)
	}
}

func TestRunByVirtualDuration(t *testing.T) {
	db := testDB(t, ipa.Traditional)
	defer db.Close()
	w := NewTPCB(TPCBConfig{Branches: 1, AccountsPerBranch: 1000, Seed: 3})
	if err := w.Load(db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	db.ResetStats()
	res, err := Run(db, w, RunOptions{Duration: 200 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Committed == 0 {
		t.Fatalf("no transactions committed within the virtual window")
	}
	if res.Elapsed < 200*time.Millisecond {
		t.Fatalf("run stopped before the virtual deadline: %v", res.Elapsed)
	}
}

func TestRunOptionValidation(t *testing.T) {
	db := testDB(t, ipa.Traditional)
	defer db.Close()
	w := NewTPCB(TPCBConfig{Branches: 1, AccountsPerBranch: 100})
	if err := w.Load(db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := Run(db, w, RunOptions{}); err == nil {
		t.Fatalf("missing limits must be rejected")
	}
}

func TestTATPSecondaryRuns(t *testing.T) {
	db := testDB(t, ipa.IPANativeFlash)
	defer db.Close()
	w := NewTATP(TATPConfig{Subscribers: 2000, Seed: 5, SecondaryLookups: true})
	if err := w.Load(db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	db.ResetStats()
	res, err := Run(db, w, RunOptions{MaxOps: 600, Seed: 11})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Committed != 600 {
		t.Fatalf("committed %d", res.Committed)
	}
	// The sub_nbr index resolves every subscriber injectively.
	subs, _ := db.Table("tatp_subscriber")
	rows, err := subs.GetBySecondary("sub_nbr", subNbr(42))
	if err != nil || len(rows) != 1 {
		t.Fatalf("sub_nbr lookup: %d rows (%v), want 1", len(rows), err)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}

func TestSecondaryChurnRuns(t *testing.T) {
	db := testDB(t, ipa.IPANativeFlash)
	defer db.Close()
	w := NewSecondaryChurn(SecondaryChurnConfig{Rows: 2000, Groups: 64, Seed: 5})
	if err := w.Load(db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	db.ResetStats()
	res, err := Run(db, w, RunOptions{MaxOps: 600, Seed: 19})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Committed != 600 {
		t.Fatalf("committed %d", res.Committed)
	}
	// Group moves must not lose entries: the index still carries one
	// entry per row.
	items, _ := db.Table("sec_items")
	s, ok := items.SecondaryIndex("group")
	if !ok || s.Len() != 2000 {
		t.Fatalf("group index carries %d entries (ok=%v), want 2000", s.Len(), ok)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}

func TestLinkBenchSecondaryRuns(t *testing.T) {
	db := testDB(t, ipa.IPANativeFlash)
	defer db.Close()
	w := NewLinkBench(LinkBenchConfig{Nodes: 1000, LinksPerNode: 2, Seed: 5, AssocByID2: true})
	if err := w.Load(db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := Run(db, w, RunOptions{MaxOps: 400, Seed: 17})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Committed != 400 {
		t.Fatalf("committed %d", res.Committed)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}

func TestWorkloadNames(t *testing.T) {
	if NewTPCB(TPCBConfig{}).Name() != "tpcb" ||
		NewTPCC(TPCCConfig{}).Name() != "tpcc" ||
		NewTATP(TATPConfig{}).Name() != "tatp" ||
		NewLinkBench(LinkBenchConfig{}).Name() != "linkbench" ||
		NewTATP(TATPConfig{SecondaryLookups: true}).Name() != "tatpsec" ||
		NewLinkBench(LinkBenchConfig{AssocByID2: true}).Name() != "linkbenchsec" ||
		NewSecondaryChurn(SecondaryChurnConfig{}).Name() != "secchurn" {
		t.Fatalf("workload names wrong")
	}
}

func TestHelperEncoding(t *testing.T) {
	b := make([]byte, 16)
	putInt64(b, 4, -123456789)
	if got := getInt64(b, 4); got != -123456789 {
		t.Fatalf("putInt64/getInt64 round trip failed: %d", got)
	}
	if got := getInt64(int64Bytes(42), 0); got != 42 {
		t.Fatalf("int64Bytes wrong: %d", got)
	}
	r := rand.New(rand.NewSource(1))
	if v := randInt64(r, 0); v != 0 {
		t.Fatalf("randInt64 with n<=0 must return 0")
	}
	for i := 0; i < 100; i++ {
		v := nonUniform(r, 255, 10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("nonUniform out of range: %d", v)
		}
	}
	buf := make([]byte, 32)
	fill(buf, 7)
	allZero := true
	for _, x := range buf {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatalf("fill produced all zeroes")
	}
}
