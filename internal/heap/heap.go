// Package heap implements heap files: RID-addressed collections of
// fixed-size tuples stored in NSM slotted pages.
//
// Heap files are the storage substrate the OLTP benchmark tables live in.
// Every mutating operation goes through the buffer pool and attaches the
// frame's change tracker to the page, so the byte-level effects of tuple
// updates are visible to the In-Place Appends machinery without the heap
// layer knowing anything about Flash.
//
// Under MVCC (internal/txn's VersionCache) a heap slot always holds the
// newest bytes of its record — superseded committed versions live only in
// the in-memory version cache, never in the heap. Slots of WAL-addressed
// heaps are never reused after a delete (Reuse is reserved for
// non-transactional callers), so a packed RID uniquely names one record
// for the lifetime of the database and can key version chains without ABA
// hazards.
package heap

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ipa/internal/buffer"
	"ipa/internal/core"
	"ipa/internal/page"
	"ipa/internal/storage"
)

// RID identifies a tuple: page identifier and slot within the page.
type RID struct {
	PageID uint64
	Slot   uint16
}

// Pack encodes the RID into a single uint64 (48-bit page, 16-bit slot) for
// use as an index value.
func (r RID) Pack() uint64 { return r.PageID<<16 | uint64(r.Slot) }

// Unpack decodes a packed RID.
func Unpack(v uint64) RID { return RID{PageID: v >> 16, Slot: uint16(v & 0xFFFF)} }

// String renders the RID.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.PageID, r.Slot) }

// ErrNotFound is returned when a RID does not address a live tuple.
var ErrNotFound = errors.New("heap: tuple not found")

// File is one heap file (one table's tuple storage).
type File struct {
	mu        sync.Mutex
	objectID  uint32
	tupleSize int
	store     *storage.Manager
	pool      *buffer.Pool
	pages     []uint64 // all pages of the file, in allocation order
	count     uint64   // live tuples
}

// New creates an empty heap file for the given object.
func New(store *storage.Manager, pool *buffer.Pool, objectID uint32, tupleSize int) *File {
	return &File{
		objectID:  objectID,
		tupleSize: tupleSize,
		store:     store,
		pool:      pool,
	}
}

// ObjectID returns the owning object identifier.
func (f *File) ObjectID() uint32 { return f.objectID }

// TupleSize returns the fixed tuple size of the file.
func (f *File) TupleSize() int { return f.tupleSize }

// PageIDs returns the identifiers of all pages of the file.
func (f *File) PageIDs() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]uint64, len(f.pages))
	copy(out, f.pages)
	return out
}

// Count returns the number of live tuples.
func (f *File) Count() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// AdoptPages installs the page list of a heap file rebuilt from a surviving
// Flash image after a crash. pids must be in ascending order (page
// identifiers are allocated sequentially, so that is allocation order).
func (f *File) AdoptPages(pids []uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pages = append([]uint64(nil), pids...)
}

// AdoptPage registers a single page recreated during recovery (a page the
// crash took before its first flush), keeping the list sorted.
func (f *File) AdoptPage(pid uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	i := sort.Search(len(f.pages), func(i int) bool { return f.pages[i] >= pid })
	if i < len(f.pages) && f.pages[i] == pid {
		return
	}
	f.pages = append(f.pages, 0)
	copy(f.pages[i+1:], f.pages[i:])
	f.pages[i] = pid
}

// SetCount installs the live-tuple count computed by an index rebuild.
func (f *File) SetCount(n uint64) {
	f.mu.Lock()
	f.count = n
	f.mu.Unlock()
}

// NoteUndoneInsert adjusts the live-tuple count after transaction rollback
// deleted an inserted tuple directly at the page level.
func (f *File) NoteUndoneInsert() {
	f.mu.Lock()
	if f.count > 0 {
		f.count--
	}
	f.mu.Unlock()
}

// NoteRestoredTuple adjusts the live-tuple count after rollback or
// recovery re-materialised a deleted tuple directly at the page level.
func (f *File) NoteRestoredTuple() {
	f.mu.Lock()
	f.count++
	f.mu.Unlock()
}

// withPage pins a page exclusively, wraps it and attaches the frame's
// tracker as the change recorder, then runs fn.
func (f *File) withPage(pid uint64, fn func(h *buffer.Handle, pg *page.Page) error) error {
	h, err := f.pool.Fetch(pid)
	if err != nil {
		return err
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return err
	}
	pg.SetRecorder(h.Tracker())
	return fn(h, pg)
}

// withPageShared pins a page with a shared latch for read-only access, so
// concurrent readers of the same page proceed in parallel. fn must not
// modify the page.
func (f *File) withPageShared(pid uint64, fn func(pg *page.Page) error) error {
	h, err := f.pool.FetchShared(pid)
	if err != nil {
		return err
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return err
	}
	return fn(pg)
}

// Insert stores a tuple and returns its RID. Tuples must have the file's
// fixed size.
func (f *File) Insert(tuple []byte) (RID, error) {
	if len(tuple) != f.tupleSize {
		return RID{}, fmt.Errorf("heap: tuple size %d, want %d", len(tuple), f.tupleSize)
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	// Try the most recently allocated page first.
	if n := len(f.pages); n > 0 {
		rid, ok, err := f.tryInsertLocked(f.pages[n-1], tuple)
		if err != nil {
			return RID{}, err
		}
		if ok {
			f.count++
			return rid, nil
		}
	}
	// Allocate a fresh page.
	pid, err := f.store.AllocatePage(f.objectID)
	if err != nil {
		return RID{}, err
	}
	h, err := f.pool.Create(pid, func(buf []byte) (*core.Tracker, error) {
		return f.store.InitPage(buf, pid, f.objectID)
	})
	if err != nil {
		return RID{}, err
	}
	defer h.Release()
	pg, err := page.Wrap(h.Data())
	if err != nil {
		return RID{}, err
	}
	pg.SetRecorder(h.Tracker())
	slot, err := pg.InsertTuple(tuple)
	if err != nil {
		return RID{}, err
	}
	h.MarkDirty()
	f.pages = append(f.pages, pid)
	f.count++
	return RID{PageID: pid, Slot: uint16(slot)}, nil
}

// tryInsertLocked attempts to insert into an existing page; ok is false if
// the page is full.
func (f *File) tryInsertLocked(pid uint64, tuple []byte) (RID, bool, error) {
	var rid RID
	var ok bool
	err := f.withPage(pid, func(h *buffer.Handle, pg *page.Page) error {
		if pg.FreeSpace() < len(tuple)+page.SlotSize {
			return nil
		}
		slot, err := pg.InsertTuple(tuple)
		if err != nil {
			return err
		}
		h.MarkDirty()
		rid = RID{PageID: pid, Slot: uint16(slot)}
		ok = true
		return nil
	})
	return rid, ok, err
}

// Get returns a copy of the tuple at rid.
func (f *File) Get(rid RID) ([]byte, error) {
	var out []byte
	err := f.withPageShared(rid.PageID, func(pg *page.Page) error {
		t, err := pg.Tuple(int(rid.Slot))
		if err != nil {
			if errors.Is(err, page.ErrDeleted) || errors.Is(err, page.ErrBadSlot) {
				return fmt.Errorf("%w: %s", ErrNotFound, rid)
			}
			return err
		}
		out = t
		return nil
	})
	return out, err
}

// UpdateAt overwrites len(data) bytes of the tuple at rid starting at the
// tuple-relative offset. This is the small in-place update IPA targets.
func (f *File) UpdateAt(rid RID, offset int, data []byte) error {
	return f.withPage(rid.PageID, func(h *buffer.Handle, pg *page.Page) error {
		if err := pg.UpdateTupleAt(int(rid.Slot), offset, data); err != nil {
			if errors.Is(err, page.ErrDeleted) || errors.Is(err, page.ErrBadSlot) {
				return fmt.Errorf("%w: %s", ErrNotFound, rid)
			}
			return err
		}
		h.MarkDirty()
		return nil
	})
}

// Update replaces the whole tuple at rid (same size).
func (f *File) Update(rid RID, tuple []byte) error {
	if len(tuple) != f.tupleSize {
		return fmt.Errorf("heap: tuple size %d, want %d", len(tuple), f.tupleSize)
	}
	return f.UpdateAt(rid, 0, tuple)
}

// Reuse re-materialises a previously deleted slot with a fresh tuple of
// the same fixed size, reclaiming its space instead of growing the file.
// The caller must know the slot is deleted (e.g. from its own free list).
//
// Heap files addressed by WAL records must NOT reuse slots — recovery's
// redo relies on a slot belonging to exactly one logged insert ever. The
// index entry files (internal/index) are exempt: their WAL records are
// logical (keyed, never slot-addressed), which is what makes entry-slot
// recycling safe there.
func (f *File) Reuse(rid RID, tuple []byte) error {
	if len(tuple) != f.tupleSize {
		return fmt.Errorf("heap: tuple size %d, want %d", len(tuple), f.tupleSize)
	}
	err := f.withPage(rid.PageID, func(h *buffer.Handle, pg *page.Page) error {
		deleted, err := pg.Deleted(int(rid.Slot))
		if err != nil {
			return err
		}
		if !deleted {
			return fmt.Errorf("heap: slot %s is live, cannot reuse", rid)
		}
		if err := pg.RestoreTuple(int(rid.Slot), tuple); err != nil {
			return err
		}
		h.MarkDirty()
		return nil
	})
	if err == nil {
		f.mu.Lock()
		f.count++
		f.mu.Unlock()
	}
	return err
}

// Delete removes the tuple at rid.
func (f *File) Delete(rid RID) error {
	err := f.withPage(rid.PageID, func(h *buffer.Handle, pg *page.Page) error {
		if err := pg.DeleteTuple(int(rid.Slot)); err != nil {
			if errors.Is(err, page.ErrDeleted) || errors.Is(err, page.ErrBadSlot) {
				return fmt.Errorf("%w: %s", ErrNotFound, rid)
			}
			return err
		}
		h.MarkDirty()
		return nil
	})
	if err == nil {
		f.mu.Lock()
		f.count--
		f.mu.Unlock()
	}
	return err
}

// Scan calls fn for every live tuple of the file, in page/slot order, until
// fn returns false or the file is exhausted. fn runs under the page's
// shared latch and must not modify the file (use Table-level scans to
// combine reading with updates).
func (f *File) Scan(fn func(rid RID, tuple []byte) bool) error {
	return f.ScanSlots(func(rid RID, tuple []byte, deleted bool) bool {
		if deleted {
			return true
		}
		return fn(rid, tuple)
	})
}

// ScanSlots calls fn for every slot of the file — live and deleted — in
// page/slot order, until fn returns false. Deleted slots are reported
// with a nil tuple. Index recovery uses it to rebuild both the live
// entries and the reusable-slot free list in one pass.
func (f *File) ScanSlots(fn func(rid RID, tuple []byte, deleted bool) bool) error {
	for _, pid := range f.PageIDs() {
		stop := false
		err := f.withPageShared(pid, func(pg *page.Page) error {
			for s := 0; s < pg.SlotCount(); s++ {
				deleted, err := pg.Deleted(s)
				if err != nil {
					return err
				}
				var t []byte
				if !deleted {
					if t, err = pg.Tuple(s); err != nil {
						return err
					}
				}
				if !fn(RID{PageID: pid, Slot: uint16(s)}, t, deleted) {
					stop = true
					return nil
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}
