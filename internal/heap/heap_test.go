package heap

import (
	"bytes"
	"errors"
	"testing"

	"ipa/internal/buffer"
	"ipa/internal/core"
	"ipa/internal/flashdev"
	"ipa/internal/ftl"
	"ipa/internal/nand"
	"ipa/internal/region"
	"ipa/internal/storage"
)

// testFile builds the full stack (device, FTL, storage, pool) and returns a
// heap file plus the pool for flushing.
func testFile(t *testing.T, tupleSize, poolFrames int) (*File, *buffer.Pool) {
	t.Helper()
	dev, err := flashdev.New(flashdev.Config{
		Chips: 1,
		Chip: nand.Config{
			Geometry:        nand.Geometry{Blocks: 32, PagesPerBlock: 16, PageSize: 2048, OOBSize: 128},
			Cell:            nand.MLC,
			StrictOverwrite: true,
			Seed:            4,
		},
		Latency: flashdev.DefaultLatencyModel(),
	})
	if err != nil {
		t.Fatalf("flashdev.New: %v", err)
	}
	scheme := core.Scheme{N: 2, M: 4}
	f, err := ftl.New(dev, ftl.Config{
		FlashMode:     nand.ModePSLC,
		EccCoverBytes: 2048 - 16 - scheme.AreaSize(48),
	})
	if err != nil {
		t.Fatalf("ftl.New: %v", err)
	}
	regions := region.NewManager(region.Region{Name: "default", Scheme: scheme, FlashMode: nand.ModePSLC})
	store, err := storage.New(f, storage.Config{Mode: storage.WriteIPANative, Regions: regions, Analytic: true})
	if err != nil {
		t.Fatalf("storage.New: %v", err)
	}
	pool, err := buffer.New(store, poolFrames)
	if err != nil {
		t.Fatalf("buffer.New: %v", err)
	}
	return New(store, pool, 1, tupleSize), pool
}

func tuple(size int, seed byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestInsertGet(t *testing.T) {
	f, _ := testFile(t, 80, 8)
	var rids []RID
	for i := 0; i < 200; i++ {
		rid, err := f.Insert(tuple(80, byte(i)))
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		rids = append(rids, rid)
	}
	if f.Count() != 200 {
		t.Fatalf("Count = %d", f.Count())
	}
	if len(f.PageIDs()) < 2 {
		t.Fatalf("200 tuples of 80 bytes must span several pages")
	}
	for i, rid := range rids {
		got, err := f.Get(rid)
		if err != nil {
			t.Fatalf("Get %v: %v", rid, err)
		}
		if !bytes.Equal(got, tuple(80, byte(i))) {
			t.Fatalf("tuple %d content wrong", i)
		}
	}
}

func TestInsertWrongSize(t *testing.T) {
	f, _ := testFile(t, 80, 8)
	if _, err := f.Insert(make([]byte, 10)); err == nil {
		t.Fatalf("wrong tuple size must be rejected")
	}
	rid, _ := f.Insert(tuple(80, 1))
	if err := f.Update(rid, make([]byte, 10)); err == nil {
		t.Fatalf("wrong update size must be rejected")
	}
}

func TestUpdateAtSurvivesEviction(t *testing.T) {
	// A pool of only 4 frames forces constant evictions.
	f, pool := testFile(t, 100, 4)
	var rids []RID
	for i := 0; i < 150; i++ {
		rid, err := f.Insert(tuple(100, byte(i)))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		if err := f.UpdateAt(rid, 20, []byte{byte(i), 0xFE}); err != nil {
			t.Fatalf("UpdateAt %v: %v", rid, err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	for i, rid := range rids {
		got, err := f.Get(rid)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got[20] != byte(i) || got[21] != 0xFE {
			t.Fatalf("update of %v lost: % x", rid, got[18:24])
		}
	}
}

func TestDelete(t *testing.T) {
	f, _ := testFile(t, 60, 8)
	rid, err := f.Insert(tuple(60, 9))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := f.Delete(rid); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := f.Get(rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted tuple still found: %v", err)
	}
	if err := f.Delete(rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete must report not found: %v", err)
	}
	if err := f.UpdateAt(rid, 0, []byte{1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update of deleted tuple must fail: %v", err)
	}
	if f.Count() != 0 {
		t.Fatalf("Count = %d", f.Count())
	}
}

func TestScan(t *testing.T) {
	f, _ := testFile(t, 64, 8)
	const n = 120
	for i := 0; i < n; i++ {
		if _, err := f.Insert(tuple(64, byte(i))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	seen := 0
	err := f.Scan(func(rid RID, tup []byte) bool {
		seen++
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if seen != n {
		t.Fatalf("Scan visited %d tuples, want %d", seen, n)
	}
	// Early termination.
	seen = 0
	_ = f.Scan(func(rid RID, tup []byte) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("Scan did not stop early: %d", seen)
	}
}

func TestRIDPackUnpack(t *testing.T) {
	r := RID{PageID: 123456, Slot: 789}
	if got := Unpack(r.Pack()); got != r {
		t.Fatalf("pack/unpack mismatch: %v vs %v", got, r)
	}
	if r.String() == "" {
		t.Fatalf("RID.String empty")
	}
}

func TestObjectIDAndTupleSize(t *testing.T) {
	f, _ := testFile(t, 77, 8)
	if f.ObjectID() != 1 || f.TupleSize() != 77 {
		t.Fatalf("accessors wrong: %d %d", f.ObjectID(), f.TupleSize())
	}
}
