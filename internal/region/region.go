// Package region implements NoFTL-style regions: named groups of database
// objects that share a Flash-management configuration.
//
// The paper applies In-Place Appends selectively, only to database objects
// dominated by small updates, by configuring the corresponding NoFTL
// region. A region carries the N×M scheme and the MLC operation mode used
// for the objects assigned to it; objects without an explicit assignment
// fall back to the default region.
package region

import (
	"fmt"
	"sort"
	"sync"

	"ipa/internal/core"
	"ipa/internal/nand"
)

// Kind classifies the database objects a region holds. Index regions let
// the storage manager account (and a deployment tune) index-page Flash
// management separately from heap pages: B-tree entry pages absorb tiny
// slot edits and are therefore the prime delta-append candidates.
type Kind int

const (
	// KindHeap regions hold tuple (heap) pages.
	KindHeap Kind = iota
	// KindIndex regions hold primary-key index entry pages.
	KindIndex
	// KindCatalog regions hold the DBMS catalog pages (checkpoint state).
	// Catalog pages are tiny and overwritten in place on every fuzzy
	// checkpoint, which makes them natural delta-append candidates.
	KindCatalog
)

// String names the region kind.
func (k Kind) String() string {
	switch k {
	case KindIndex:
		return "index"
	case KindCatalog:
		return "catalog"
	default:
		return "heap"
	}
}

// Region describes the Flash-management configuration of a group of
// database objects.
type Region struct {
	// Name identifies the region (for reporting).
	Name string
	// Scheme is the N×M In-Place Appends configuration; the zero scheme
	// disables IPA for the region's objects.
	Scheme core.Scheme
	// FlashMode is the MLC operation mode (pSLC, odd-MLC, ...) requested
	// for the region's objects.
	FlashMode nand.Mode
	// Kind classifies the region's objects (heap pages vs index pages).
	Kind Kind
}

// String renders the region for logs and reports.
func (r Region) String() string {
	return fmt.Sprintf("%s[%s,%s]", r.Name, r.Scheme, r.FlashMode)
}

// Manager maps database object identifiers to regions.
type Manager struct {
	mu       sync.RWMutex
	def      Region
	byObject map[uint32]Region
}

// NewManager creates a manager with the given default region.
func NewManager(def Region) *Manager {
	if def.Name == "" {
		def.Name = "default"
	}
	return &Manager{def: def, byObject: make(map[uint32]Region)}
}

// Default returns the default region.
func (m *Manager) Default() Region {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.def
}

// SetDefault replaces the default region.
func (m *Manager) SetDefault(r Region) {
	m.mu.Lock()
	m.def = r
	m.mu.Unlock()
}

// Assign places a database object into a region.
func (m *Manager) Assign(objectID uint32, r Region) {
	m.mu.Lock()
	m.byObject[objectID] = r
	m.mu.Unlock()
}

// Unassign removes an object's explicit region assignment; it falls back to
// the default region.
func (m *Manager) Unassign(objectID uint32) {
	m.mu.Lock()
	delete(m.byObject, objectID)
	m.mu.Unlock()
}

// For returns the region governing the given object.
func (m *Manager) For(objectID uint32) Region {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if r, ok := m.byObject[objectID]; ok {
		return r
	}
	return m.def
}

// Assignments returns the explicit object-to-region assignments sorted by
// object ID (for reporting).
func (m *Manager) Assignments() []struct {
	ObjectID uint32
	Region   Region
} {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]struct {
		ObjectID uint32
		Region   Region
	}, 0, len(m.byObject))
	for id, r := range m.byObject {
		out = append(out, struct {
			ObjectID uint32
			Region   Region
		}{id, r})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ObjectID < out[j].ObjectID })
	return out
}
