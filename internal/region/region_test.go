package region

import (
	"testing"

	"ipa/internal/core"
	"ipa/internal/nand"
)

func TestDefaultRegion(t *testing.T) {
	m := NewManager(Region{})
	def := m.Default()
	if def.Name != "default" {
		t.Fatalf("unnamed default region should be called 'default', got %q", def.Name)
	}
	if got := m.For(42); got.Name != "default" {
		t.Fatalf("unassigned object must fall back to the default region, got %+v", got)
	}
}

func TestAssignAndUnassign(t *testing.T) {
	m := NewManager(Region{Name: "base", Scheme: core.Scheme{}})
	hot := Region{Name: "hot", Scheme: core.Scheme{N: 2, M: 4}, FlashMode: nand.ModePSLC}
	m.Assign(7, hot)
	if got := m.For(7); got.Name != "hot" || !got.Scheme.Enabled() {
		t.Fatalf("assignment not effective: %+v", got)
	}
	if got := m.For(8); got.Name != "base" {
		t.Fatalf("other objects must keep the default region")
	}
	m.Unassign(7)
	if got := m.For(7); got.Name != "base" {
		t.Fatalf("unassign not effective: %+v", got)
	}
}

func TestSetDefault(t *testing.T) {
	m := NewManager(Region{Name: "a"})
	m.SetDefault(Region{Name: "b", Scheme: core.Scheme{N: 1, M: 8}})
	if got := m.For(1); got.Name != "b" || got.Scheme.N != 1 {
		t.Fatalf("SetDefault not effective: %+v", got)
	}
}

func TestAssignments(t *testing.T) {
	m := NewManager(Region{Name: "base"})
	m.Assign(3, Region{Name: "c"})
	m.Assign(1, Region{Name: "a"})
	m.Assign(2, Region{Name: "b"})
	got := m.Assignments()
	if len(got) != 3 {
		t.Fatalf("expected 3 assignments, got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ObjectID > got[i].ObjectID {
			t.Fatalf("assignments not sorted: %+v", got)
		}
	}
}

func TestRegionString(t *testing.T) {
	r := Region{Name: "accounts", Scheme: core.Scheme{N: 2, M: 4}, FlashMode: nand.ModePSLC}
	if s := r.String(); s != "accounts[2x4,pSLC]" {
		t.Fatalf("String = %q", s)
	}
}
