// Package chaos is the continuous-invariant torture harness: it boots the
// real ipaserver front end on an engine with a live fault plan, drives
// money-transfer traffic over the wire, and — while the system runs —
// injects transient faults (device latency spikes, per-chip stalls and
// wall-clock-scheduled power cuts followed by recovery and restart) as
// concurrent checker goroutines audit the invariants the paper's
// durability argument rests on:
//
//   - Ledger conservation: the sum of all account balances, read in one
//     MVCC snapshot, never changes — transfers move money, they do not
//     create it, and neither may a crash.
//   - Index bijection: VerifyIntegrity (primary key ↔ heap ↔ secondary
//     entries) holds at every quiesce point and after every recovery.
//   - Monotone commit timestamps: the commit watermark never moves
//     backwards within an epoch, and the recovered watermark is at least
//     the MaxCommitTS of the last durable checkpoint.
//
// Unlike internal/crash, which replays deterministic fault points offline,
// chaos runs in wall-clock time against the serving stack: cuts land
// mid-pipeline, recovery races reconnecting clients, and the checkers
// never stop. The fault taxonomy and the scheduling model are documented
// in docs/DESIGN_CHAOS.md.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ipa"
	"ipa/internal/server"
	"ipa/ipaclient"
)

// Options configures a chaos session.
type Options struct {
	// Duration is the wall-clock session length.
	Duration time.Duration
	// Workers is the number of wire-level transfer connections.
	Workers int
	// Accounts is the ledger size; InitialBalance the per-account seed
	// money (the conserved total is Accounts × InitialBalance).
	Accounts       int
	TupleSize      int
	InitialBalance int64
	// PowerCuts schedules this many wall-clock power cuts, evenly spread
	// across Duration. Each cut kills the device mid-traffic, crashes the
	// engine, recovers from the surviving image and restarts the server
	// on the same address.
	PowerCuts int
	// SpikeEvery injects a device-wide latency spike with this period
	// (0 disables); each spike lasts SpikeLen of wall time and charges
	// SpikeVirtual of virtual time per chip operation.
	SpikeEvery   time.Duration
	SpikeLen     time.Duration
	SpikeVirtual time.Duration
	// StallEvery freezes one chip (round-robin) for StallLen per period
	// (0 disables).
	StallEvery time.Duration
	StallLen   time.Duration
	// AuditEvery is the period of the ledger and watermark checkers;
	// VerifyEvery the period of the quiesced VerifyIntegrity checker.
	AuditEvery  time.Duration
	VerifyEvery time.Duration
	// Engine overrides the engine configuration (Faults is always
	// replaced by the session's own plan). Zero values use engine
	// defaults plus a small checkpoint interval so the durable watermark
	// floor advances during the session.
	Engine ipa.Config
	Seed   int64
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// DefaultOptions returns a session sized for a local run: ~15 seconds,
// 3 power cuts, every fault class enabled.
func DefaultOptions() Options {
	return Options{
		Duration:       15 * time.Second,
		Workers:        4,
		Accounts:       512,
		TupleSize:      96,
		InitialBalance: 1_000_000,
		PowerCuts:      3,
		SpikeEvery:     2 * time.Second,
		SpikeLen:       150 * time.Millisecond,
		SpikeVirtual:   200 * time.Microsecond,
		StallEvery:     1700 * time.Millisecond,
		StallLen:       100 * time.Millisecond,
		AuditEvery:     250 * time.Millisecond,
		VerifyEvery:    1200 * time.Millisecond,
		Seed:           1,
	}
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 15 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Accounts <= 0 {
		o.Accounts = 512
	}
	if o.TupleSize < 24 {
		o.TupleSize = 96
	}
	if o.InitialBalance == 0 {
		o.InitialBalance = 1_000_000
	}
	if o.AuditEvery <= 0 {
		o.AuditEvery = 250 * time.Millisecond
	}
	if o.VerifyEvery <= 0 {
		o.VerifyEvery = 1200 * time.Millisecond
	}
	if o.SpikeLen <= 0 {
		o.SpikeLen = 150 * time.Millisecond
	}
	if o.SpikeVirtual <= 0 {
		o.SpikeVirtual = 200 * time.Microsecond
	}
	if o.StallLen <= 0 {
		o.StallLen = 100 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Report summarises a session.
type Report struct {
	Wall          time.Duration `json:"wall_ns"`
	Ops           uint64        `json:"ops"`
	Conflicts     uint64        `json:"conflicts"`
	Retries       uint64        `json:"retries"`
	Reconnects    uint64        `json:"reconnects"`
	PowerCuts     int           `json:"power_cuts"`
	Restarts      int           `json:"restarts"`
	SpikedOps     uint64        `json:"spiked_ops"`
	StalledOps    uint64        `json:"stalled_ops"`
	LedgerAudits  int           `json:"ledger_audits"`
	TSChecks      int           `json:"ts_checks"`
	VerifyPasses  int           `json:"verify_passes"`
	RecoveryRedos uint64        `json:"recovery_redo_records"`
	Violations    []string      `json:"violations"`
	FinalStats    ipa.Stats     `json:"-"`
}

// Failed reports whether any invariant was violated.
func (r Report) Failed() bool { return len(r.Violations) > 0 }

// balanceOffset is where the 8-byte little-endian balance lives in an
// account tuple (after the key copy, like the OLTP drivers).
const balanceOffset = 8

// session is one running chaos harness.
type session struct {
	o    Options
	plan *ipa.FaultPlan

	// mu guards the (db, srv) epoch: the power-cutter holds it
	// exclusively while swapping, in-process checkers hold it shared.
	mu    sync.RWMutex
	db    *ipa.DB
	srv   *server.Server
	epoch int64

	// addr is the concrete TCP address, stable across restarts.
	addr string

	// gate is the quiesce gate: wire workers hold it shared for the
	// length of one transaction, the integrity checker holds it
	// exclusively so VerifyIntegrity never observes a worker transaction
	// in flight.
	gate sync.RWMutex

	chips int
	stop  atomic.Bool

	// Fault-injection state read by the device op hook.
	spikeUntil atomic.Int64 // wall ns
	stallChip  atomic.Int64 // chip currently stalled (-1 = none)
	stallUntil atomic.Int64 // wall ns

	// durableFloor is the highest MaxCommitTS read from a durable
	// checkpoint: the recovered watermark may never fall below it.
	durableFloor atomic.Uint64

	ops, conflicts, retries, reconnects atomic.Uint64
	spiked, stalled                     atomic.Uint64
	audits, tsChecks, verifies          atomic.Uint64

	vmu        sync.Mutex
	violations []string

	logf func(string, ...any)
}

// violate records one invariant violation.
func (s *session) violate(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.vmu.Lock()
	s.violations = append(s.violations, msg)
	s.vmu.Unlock()
	s.logf("chaos: VIOLATION: %s", msg)
}

// Run executes one chaos session and returns its report.
func Run(o Options) (Report, error) {
	o = o.withDefaults()
	s := &session{o: o, logf: o.Logf}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	s.stallChip.Store(-1)
	s.plan = ipa.NewFaultPlan(0, ipa.CrashBefore) // passive: KillPower only

	if err := s.boot(); err != nil {
		return Report{}, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(o.Seed))

	// Wire transfer workers.
	for i := 0; i < o.Workers; i++ {
		wg.Add(1)
		seed := rng.Int63()
		go func(i int, seed int64) {
			defer wg.Done()
			s.worker(i, seed)
		}(i, seed)
	}
	// Continuous checkers.
	wg.Add(3)
	go func() { defer wg.Done(); s.ledgerChecker() }()
	go func() { defer wg.Done(); s.watermarkChecker() }()
	go func() { defer wg.Done(); s.integrityChecker() }()
	// Transient-fault injectors.
	if o.SpikeEvery > 0 {
		wg.Add(1)
		go func() { defer wg.Done(); s.spiker() }()
	}
	if o.StallEvery > 0 {
		wg.Add(1)
		go func() { defer wg.Done(); s.staller() }()
	}

	// Wall-clock-scheduled power cuts, evenly spread across the session.
	rep := Report{}
	for i := 1; i <= o.PowerCuts; i++ {
		target := start.Add(o.Duration * time.Duration(i) / time.Duration(o.PowerCuts+1))
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		redo, err := s.powerCut(i)
		if err != nil {
			s.stop.Store(true)
			wg.Wait()
			return rep, err
		}
		rep.PowerCuts++
		rep.Restarts++
		rep.RecoveryRedos += redo
	}
	if d := time.Until(start.Add(o.Duration)); d > 0 {
		time.Sleep(d)
	}
	s.stop.Store(true)
	wg.Wait()

	// Final quiesced audit on the surviving epoch, then a graceful drain.
	s.mu.RLock()
	db, srv := s.db, s.srv
	s.mu.RUnlock()
	if err := db.VerifyIntegrity(); err != nil {
		s.violate("final VerifyIntegrity: %v", err)
	} else {
		s.verifies.Add(1)
	}
	if sum, n, err := s.ledgerSum(db); err != nil {
		s.violate("final ledger read: %v", err)
	} else if want := int64(o.Accounts) * o.InitialBalance; sum != want {
		s.violate("final ledger sum %d over %d accounts, want %d", sum, n, want)
	} else {
		s.audits.Add(1)
	}
	rep.FinalStats = db.Stats()
	srv.Close()

	rep.Wall = time.Since(start)
	rep.Ops = s.ops.Load()
	rep.Conflicts = s.conflicts.Load()
	rep.Retries = s.retries.Load()
	rep.Reconnects = s.reconnects.Load()
	rep.SpikedOps = s.spiked.Load()
	rep.StalledOps = s.stalled.Load()
	rep.LedgerAudits = int(s.audits.Load())
	rep.TSChecks = int(s.tsChecks.Load())
	rep.VerifyPasses = int(s.verifies.Load())
	s.vmu.Lock()
	rep.Violations = append(rep.Violations, s.violations...)
	s.vmu.Unlock()
	return rep, nil
}

// boot opens the engine, preloads the ledger durably, and starts the
// server front end.
func (s *session) boot() error {
	cfg := s.o.Engine
	cfg.Faults = s.plan
	if cfg.CheckpointEveryBytes == 0 {
		// Small enough that checkpoints (and with them the durable
		// watermark floor) advance several times per session.
		cfg.CheckpointEveryBytes = 256 << 10
	}
	if cfg.Chips == 0 {
		cfg.Chips = 4
	}
	if cfg.WriteMode == ipa.Traditional && cfg.Scheme == (ipa.Scheme{}) {
		// A zero Engine gets the paper's native-IPA write path: chaos is
		// about cuts landing mid-delta-append and mid-merge, which the
		// traditional path never executes.
		cfg.WriteMode = ipa.IPANativeFlash
		cfg.Scheme = ipa.Scheme{N: 2, M: 4}
		cfg.FlashMode = ipa.PSLC
	}
	s.chips = cfg.Chips
	db, err := ipa.Open(cfg)
	if err != nil {
		return fmt.Errorf("chaos: open: %w", err)
	}
	t, err := db.CreateTable("accounts", s.o.TupleSize)
	if err != nil {
		db.Close()
		return fmt.Errorf("chaos: create: %w", err)
	}
	row := make([]byte, s.o.TupleSize)
	for k := 0; k < s.o.Accounts; k++ {
		for i := range row {
			row[i] = byte(k + i)
		}
		putInt64(row, 0, int64(k))
		putInt64(row, balanceOffset, s.o.InitialBalance)
		if err := t.Insert(int64(k), row); err != nil {
			db.Close()
			return fmt.Errorf("chaos: preload: %w", err)
		}
	}
	// Make the preload durable (Reopen never scans heaps for rows the WAL
	// does not cover) and establish the first durable watermark floor.
	if err := db.FlushAll(); err != nil {
		db.Close()
		return fmt.Errorf("chaos: flush: %w", err)
	}
	if _, err := db.Checkpoint(); err != nil {
		db.Close()
		return fmt.Errorf("chaos: checkpoint: %w", err)
	}
	s.noteDurableFloor(db)
	s.installHook(db)

	srv := server.New(db, server.Config{Addr: "127.0.0.1:0", Logf: nil})
	if err := srv.Start(); err != nil {
		db.Close()
		return fmt.Errorf("chaos: server: %w", err)
	}
	s.db, s.srv = db, srv
	s.addr = srv.Addr().String()
	s.logf("chaos: serving on %s (%d accounts, %d workers, %d cuts over %s)",
		s.addr, s.o.Accounts, s.o.Workers, s.o.PowerCuts, s.o.Duration)
	return nil
}

// installHook wires the transient-fault injector into the device of the
// given epoch's engine.
func (s *session) installHook(db *ipa.DB) {
	db.SetDeviceOpHook(func(chip int, op ipa.FaultOp) {
		now := time.Now().UnixNano()
		if now < s.spikeUntil.Load() {
			// Device-wide latency spike: charge virtual time (visible in
			// throughput figures) and stall the op briefly in wall time.
			db.AdvanceClock(s.o.SpikeVirtual)
			time.Sleep(20 * time.Microsecond)
			s.spiked.Add(1)
		}
		if int64(chip) == s.stallChip.Load() && now < s.stallUntil.Load() {
			// Per-chip stall: only callers touching this chip wait.
			time.Sleep(50 * time.Microsecond)
			s.stalled.Add(1)
		}
	})
}

// noteDurableFloor raises the durable watermark floor from the engine's
// checkpoint state.
func (s *session) noteDurableFloor(db *ipa.DB) {
	cs, ok, err := db.CheckpointState()
	if err != nil || !ok {
		return
	}
	for {
		cur := s.durableFloor.Load()
		if cs.MaxCommitTS <= cur || s.durableFloor.CompareAndSwap(cur, cs.MaxCommitTS) {
			return
		}
	}
}

// powerCut kills the device mid-traffic, crashes the engine, recovers
// from the surviving image, re-checks every invariant on the recovered
// state and restarts the server on the same address.
func (s *session) powerCut(i int) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	floor := s.durableFloor.Load()
	s.logf("chaos: power cut %d (durable watermark floor %d)", i, floor)
	s.plan.KillPower()
	img := s.db.Crash()
	s.srv.Close() // hard close; the engine is already crashed

	db, err := ipa.Reopen(img)
	if err != nil {
		return 0, fmt.Errorf("chaos: reopen after cut %d: %w", i, err)
	}
	redo := db.RecoveryStats().RecordsRedone

	// Post-recovery invariants.
	if err := db.VerifyIntegrity(); err != nil {
		s.violate("cut %d: post-recovery VerifyIntegrity: %v", i, err)
	}
	if w := db.CommitWatermark(); w < floor {
		s.violate("cut %d: recovered watermark %d below durable floor %d", i, w, floor)
	}
	if sum, n, err := s.ledgerSum(db); err != nil {
		s.violate("cut %d: post-recovery ledger read: %v", i, err)
	} else if want := int64(s.o.Accounts) * s.o.InitialBalance; sum != want {
		s.violate("cut %d: post-recovery ledger sum %d over %d accounts, want %d", i, sum, n, want)
	}
	s.noteDurableFloor(db)
	s.installHook(db)

	// Same listen address, so clients reconnect without rediscovery. The
	// old listener is closed; retry briefly in case the port lingers.
	srv := server.New(db, server.Config{Addr: s.addr, Logf: nil})
	for attempt := 0; ; attempt++ {
		err = srv.Start()
		if err == nil {
			break
		}
		if attempt >= 50 {
			db.Close()
			return redo, fmt.Errorf("chaos: restart server after cut %d: %w", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.db, s.srv = db, srv
	s.epoch++
	s.logf("chaos: cut %d recovered (%d records redone), serving again", i, redo)
	return redo, nil
}

// putInt64 encodes v little-endian at b[off:off+8].
func putInt64(b []byte, off int, v int64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

// getInt64 decodes a little-endian int64 at b[off:off+8].
func getInt64(b []byte, off int) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[off+i]) << (8 * i)
	}
	return v
}

// worker drives money transfers over the wire: BEGIN, read two accounts,
// move a random amount between them, COMMIT. Conflicts abort and retry;
// transport failures (power cuts, restarts) reconnect.
func (s *session) worker(id int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var c *ipaclient.Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	for !s.stop.Load() {
		if c == nil {
			nc, err := ipaclient.Dial(s.addr)
			if err != nil {
				time.Sleep(25 * time.Millisecond)
				continue
			}
			c = nc
		}
		s.gate.RLock()
		ok, err := s.transferOnce(c, rng)
		s.gate.RUnlock()
		switch {
		case err != nil:
			// Transport-level failure: server down or connection killed
			// by a cut. Drop the connection and redial.
			c.Close()
			c = nil
			s.reconnects.Add(1)
		case ok:
			s.ops.Add(1)
		}
	}
}

// transferOnce runs one transfer transaction on an established
// connection. It returns (false, nil) for clean aborts (conflicts or
// engine errors surfaced as wire error replies) and a non-nil error only
// for transport failures.
func (s *session) transferOnce(c *ipaclient.Client, rng *rand.Rand) (bool, error) {
	a := int64(rng.Intn(s.o.Accounts))
	b := int64(rng.Intn(s.o.Accounts))
	if a == b {
		b = (b + 1) % int64(s.o.Accounts)
	}
	amount := int64(rng.Intn(1000) + 1)

	if _, err := c.DoStrings("BEGIN"); err != nil {
		return false, s.abortAfter(c, err)
	}
	// Locked reads: a plain GET is a lock-free snapshot read, and a
	// transfer computed from one could lose a concurrent update. GETFU
	// holds the record lock until COMMIT, so the balances below are
	// stable — lock ordering by key id avoids ABBA deadlocks.
	if a > b {
		a, b = b, a
	}
	av, err := c.GetForUpdate("accounts", a)
	if err != nil {
		return false, s.abortAfter(c, err)
	}
	bv, err := c.GetForUpdate("accounts", b)
	if err != nil {
		return false, s.abortAfter(c, err)
	}
	if err := c.Update("accounts", a, balanceOffset, int64Bytes(getInt64(av, balanceOffset)-amount)); err != nil {
		return false, s.abortAfter(c, err)
	}
	if err := c.Update("accounts", b, balanceOffset, int64Bytes(getInt64(bv, balanceOffset)+amount)); err != nil {
		return false, s.abortAfter(c, err)
	}
	if _, err := c.DoStrings("COMMIT"); err != nil {
		if isWireErr(err) {
			s.conflictOrRetry(err)
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// abortAfter cleans up a failed transfer: wire error replies roll the
// transaction back and count as a retryable abort (nil return); transport
// errors propagate.
func (s *session) abortAfter(c *ipaclient.Client, err error) error {
	if !isWireErr(err) {
		return err
	}
	s.conflictOrRetry(err)
	if _, aerr := c.DoStrings("ABORT"); aerr != nil && !isWireErr(aerr) {
		return aerr
	}
	return nil
}

func (s *session) conflictOrRetry(err error) {
	if ipaclient.IsCode(err, "CONFLICT") {
		s.conflicts.Add(1)
	} else {
		s.retries.Add(1)
	}
}

// isWireErr distinguishes server error replies (the connection is fine)
// from transport failures.
func isWireErr(err error) bool {
	var we *ipaclient.Error
	return errors.As(err, &we)
}

func int64Bytes(v int64) []byte {
	b := make([]byte, 8)
	putInt64(b, 0, v)
	return b
}
