package chaos

import (
	"errors"
	"time"

	"ipa"
)

// This file holds the continuous checkers — goroutines that audit the
// session's invariants while traffic and faults are live — and the
// transient-fault injector schedulers. Each checker loops until the
// session stops, taking the epoch lock shared so a power cut can never
// swap the engine out from under a read.

// ledgerSum reads every account balance in one MVCC snapshot and returns
// the total and the row count. Scan's single statement snapshot is what
// makes the conservation check sound: a concurrent transfer is either
// entirely visible (both legs) or entirely invisible.
func (s *session) ledgerSum(db *ipa.DB) (int64, int, error) {
	t, ok := db.Table("accounts")
	if !ok {
		return 0, 0, errNoTable
	}
	var sum int64
	var n int
	err := t.Scan(func(key int64, tuple []byte) bool {
		sum += getInt64(tuple, balanceOffset)
		n++
		return true
	})
	return sum, n, err
}

var errNoTable = errors.New("chaos: accounts table missing after recovery")

// ledgerChecker audits conservation every AuditEvery: the snapshot sum of
// all balances must equal Accounts × InitialBalance at every instant, no
// matter how many transfers, evictions, GC passes or power cuts happened.
func (s *session) ledgerChecker() {
	want := int64(s.o.Accounts) * s.o.InitialBalance
	for !s.stop.Load() {
		s.sleep(s.o.AuditEvery)
		if s.stop.Load() {
			return
		}
		s.mu.RLock()
		db := s.db
		sum, n, err := s.ledgerSum(db)
		s.mu.RUnlock()
		if err != nil {
			// ErrClosed/ErrPowerLost can surface if the scan raced the
			// first instants of a cut; anything else is a real failure.
			if isTransient(err) {
				continue
			}
			s.violate("ledger scan: %v", err)
			continue
		}
		if n != s.o.Accounts {
			s.violate("ledger scan saw %d accounts, want %d", n, s.o.Accounts)
			continue
		}
		if sum != want {
			s.violate("ledger sum %d, want %d (money %+d)", sum, want, sum-want)
			continue
		}
		s.audits.Add(1)
	}
}

// watermarkChecker audits commit-timestamp monotonicity every AuditEvery:
// within an epoch the watermark never decreases, and it never falls below
// the durable checkpoint floor (the recovered watermark after a cut is
// checked against the same floor by powerCut itself). It also advances
// the floor from the background checkpointer's progress.
func (s *session) watermarkChecker() {
	lastEpoch := int64(-1)
	var lastW uint64
	for !s.stop.Load() {
		s.sleep(s.o.AuditEvery)
		if s.stop.Load() {
			return
		}
		s.mu.RLock()
		epoch, db := s.epoch, s.db
		floor := s.durableFloor.Load() // read floor before the watermark
		w := db.CommitWatermark()
		s.noteDurableFloor(db)
		s.mu.RUnlock()
		if epoch == lastEpoch && w < lastW {
			s.violate("epoch %d: watermark moved backwards %d → %d", epoch, lastW, w)
		}
		if w < floor {
			s.violate("epoch %d: watermark %d below durable floor %d", epoch, w, floor)
		}
		lastEpoch, lastW = epoch, w
		s.tsChecks.Add(1)
	}
}

// integrityChecker runs VerifyIntegrity every VerifyEvery at a quiesce
// point: it takes the gate exclusively, so no wire worker is mid-
// transaction, then checks the pk ↔ heap ↔ secondary bijection of every
// table. Lock order is gate → mu; the power-cutter takes only mu, so the
// two can never deadlock.
func (s *session) integrityChecker() {
	for !s.stop.Load() {
		s.sleep(s.o.VerifyEvery)
		if s.stop.Load() {
			return
		}
		s.gate.Lock()
		s.mu.RLock()
		err := s.db.VerifyIntegrity()
		s.mu.RUnlock()
		s.gate.Unlock()
		if err != nil {
			if isTransient(err) {
				continue
			}
			s.violate("VerifyIntegrity: %v", err)
			continue
		}
		s.verifies.Add(1)
	}
}

// spiker schedules device-wide latency spikes: every SpikeEvery it opens
// a SpikeLen window during which the op hook charges SpikeVirtual per
// chip operation.
func (s *session) spiker() {
	for !s.stop.Load() {
		s.sleep(s.o.SpikeEvery)
		if s.stop.Load() {
			return
		}
		s.spikeUntil.Store(time.Now().Add(s.o.SpikeLen).UnixNano())
	}
}

// staller freezes one chip at a time, round-robin, for StallLen per
// StallEvery period — the single-slow-chip scenario that exercises the
// multi-chip scheduler's tail behaviour.
func (s *session) staller() {
	chip := 0
	for !s.stop.Load() {
		s.sleep(s.o.StallEvery)
		if s.stop.Load() {
			return
		}
		s.stallChip.Store(int64(chip))
		s.stallUntil.Store(time.Now().Add(s.o.StallLen).UnixNano())
		chip = (chip + 1) % s.chips
	}
}

// sleep waits d, returning early (in ≤25ms) once the session stops.
func (s *session) sleep(d time.Duration) {
	deadline := time.Now().Add(d)
	for !s.stop.Load() {
		left := time.Until(deadline)
		if left <= 0 {
			return
		}
		if left > 25*time.Millisecond {
			left = 25 * time.Millisecond
		}
		time.Sleep(left)
	}
}

// isTransient reports whether an engine error is an expected artefact of
// a concurrent power cut rather than an invariant violation.
func isTransient(err error) bool {
	return errors.Is(err, ipa.ErrClosed) || errors.Is(err, ipa.ErrPowerLost)
}
