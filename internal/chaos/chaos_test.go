package chaos

import (
	"testing"
	"time"

	"ipa"
)

// short returns a session config sized for CI: a small device, a few
// seconds of wall time, every fault class enabled and two power cuts.
func short() Options {
	o := DefaultOptions()
	o.Duration = 4 * time.Second
	o.PowerCuts = 2
	o.Workers = 3
	// Larger than the 64-page pool (~35 tuples/page → ~120 heap pages):
	// transfers continuously miss, evict and program, so the spike and
	// stall injectors see a steady device-operation stream.
	o.Accounts = 4096
	o.AuditEvery = 120 * time.Millisecond
	o.VerifyEvery = 600 * time.Millisecond
	o.SpikeEvery = 900 * time.Millisecond
	o.SpikeLen = 80 * time.Millisecond
	o.StallEvery = 700 * time.Millisecond
	o.StallLen = 60 * time.Millisecond
	o.Engine = ipa.Config{
		PageSize:        4096,
		Blocks:          96,
		PagesPerBlock:   32,
		BufferPoolPages: 64,
		WriteMode:       ipa.IPANativeFlash,
		Scheme:          ipa.Scheme{N: 2, M: 4},
		FlashMode:       ipa.PSLC,
		Chips:           4,
	}
	return o
}

// TestChaosSession is the harness's own end-to-end check: a short session
// with live traffic, latency spikes, chip stalls and two wall-clock power
// cuts must finish with zero invariant violations and must actually have
// exercised each fault class and each checker.
func TestChaosSession(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos session needs wall-clock time")
	}
	o := short()
	o.Logf = t.Logf
	rep, err := Run(o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.PowerCuts != o.PowerCuts || rep.Restarts != o.PowerCuts {
		t.Errorf("power cuts %d restarts %d, want %d each", rep.PowerCuts, rep.Restarts, o.PowerCuts)
	}
	if rep.Ops == 0 {
		t.Error("no transfers committed")
	}
	if rep.Reconnects == 0 {
		t.Error("no reconnects — power cuts did not interrupt the wire")
	}
	if rep.LedgerAudits == 0 {
		t.Error("ledger checker never completed an audit")
	}
	if rep.TSChecks == 0 {
		t.Error("watermark checker never ran")
	}
	if rep.VerifyPasses == 0 {
		t.Error("integrity checker never passed")
	}
	if rep.SpikedOps == 0 {
		t.Error("latency spikes never hit a device operation")
	}
	if rep.StalledOps == 0 {
		t.Error("chip stalls never hit a device operation")
	}
	t.Logf("ops=%d conflicts=%d retries=%d reconnects=%d redo=%d audits=%d ts=%d verify=%d spiked=%d stalled=%d",
		rep.Ops, rep.Conflicts, rep.Retries, rep.Reconnects, rep.RecoveryRedos,
		rep.LedgerAudits, rep.TSChecks, rep.VerifyPasses, rep.SpikedOps, rep.StalledOps)
}

// TestChaosNoCuts runs the same harness without power cuts: a control
// showing the checkers hold on an undisturbed system too (and that the
// spike/stall injectors alone cause no violations).
func TestChaosNoCuts(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos session needs wall-clock time")
	}
	o := short()
	o.Duration = 1500 * time.Millisecond
	o.PowerCuts = 0
	rep, err := Run(o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Ops == 0 {
		t.Error("no transfers committed")
	}
}
