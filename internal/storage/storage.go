// Package storage implements the storage manager: the layer between the
// buffer pool and the Flash translation layer that realises the three
// write paths demonstrated in the paper.
//
//   - Traditional: every dirty page eviction writes the whole page
//     out-of-place (demo scenario 1, the baseline).
//   - IPA for conventional SSDs: the page image (original body plus the
//     appended delta records) is written over the block-device interface;
//     the FTL detects that the image is programmable onto the existing
//     physical page and performs an in-place append (demo scenario 2).
//   - IPA for native Flash: only the delta records travel to the device
//     via the write_delta command (demo scenario 3).
//
// The storage manager also performs page reconstruction on fetch (applying
// delta records and Δmetadata) and collects the per-eviction statistics
// behind Figure 1 (net modified bytes, DBMS write amplification) and the
// eviction trace replayed against the In-Page Logging baseline.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ipa/internal/core"
	"ipa/internal/ftl"
	"ipa/internal/page"
	"ipa/internal/region"
)

// WriteMode selects the eviction write path.
type WriteMode int

const (
	// WriteTraditional always writes whole pages out-of-place.
	WriteTraditional WriteMode = iota
	// WriteIPASSD writes whole pages (body + delta-record area) over the
	// block-device interface; in-place appends happen inside the FTL.
	WriteIPASSD
	// WriteIPANative transfers only delta records using write_delta.
	WriteIPANative
)

// String names the write mode as used in the demo scenarios.
func (m WriteMode) String() string {
	switch m {
	case WriteTraditional:
		return "traditional"
	case WriteIPASSD:
		return "ipa-ssd"
	case WriteIPANative:
		return "ipa-native"
	default:
		return fmt.Sprintf("WriteMode(%d)", int(m))
	}
}

// SmallEvictionThreshold is the "less than 100 bytes of net data" bound the
// paper uses when characterising OLTP eviction behaviour (Figure 1).
const SmallEvictionThreshold = 100

// ErrCapacity is returned when the database outgrows the Flash device.
var ErrCapacity = errors.New("storage: out of logical page capacity")

// Config configures the storage manager.
type Config struct {
	// Mode selects the eviction write path.
	Mode WriteMode
	// Regions maps database objects to their IPA configuration.
	Regions *region.Manager
	// Analytic enables net-changed-bytes accounting for every dirty
	// eviction (needed by the Figure 1 experiment); it slightly increases
	// tracking overhead, mirroring an instrumented build.
	Analytic bool
	// TraceEvictions records a fetch/eviction trace that can be replayed
	// against the In-Page Logging baseline.
	TraceEvictions bool
}

// Stats aggregates storage-manager counters.
type Stats struct {
	PageLoads      uint64
	DirtyEvictions uint64
	CleanEvictions uint64 // dirty flag set but nothing actually changed

	IPAAppends       uint64 // evictions persisted as in-place appends
	OutOfPlaceWrites uint64 // evictions persisted as whole-page writes
	AppendFallbacks  uint64 // IPA attempted but refused by the FTL/device

	DeltaRecordsWritten uint64
	DeltaBytesWritten   uint64

	// Figure 1 accounting.
	NetChangedBytes uint64 // sum of net modified bytes over dirty evictions
	SmallEvictions  uint64 // dirty evictions with < SmallEvictionThreshold net modified bytes
	EvictedBytes    uint64 // page bytes a traditional DBMS would have written

	// EvictionSizeHistogram buckets dirty evictions by their net modified
	// bytes; HistogramBucketBounds gives the upper bound of each bucket.
	// It is the distribution behind Figure 1.
	EvictionSizeHistogram [len(histogramBounds) + 1]uint64

	// Index-page slice of the counters above (pages owned by KindIndex
	// regions — primary-key entry pages). Index maintenance is
	// small-update dominated, so the ratio IndexIPAAppends /
	// IndexDirtyEvictions shows how much of it IPA absorbs.
	IndexPageLoads        uint64
	IndexDirtyEvictions   uint64
	IndexIPAAppends       uint64
	IndexOutOfPlaceWrites uint64
	IndexDeltaRecords     uint64
	IndexDeltaBytes       uint64
}

// histogramBounds are the upper bounds (inclusive) of the eviction-size
// histogram buckets in bytes; the final implicit bucket is "larger".
var histogramBounds = [...]int{10, 25, 50, 100, 250, 1000, 4000}

// HistogramBucketBounds returns the upper bounds of the eviction-size
// histogram buckets; the last bucket of EvictionSizeHistogram counts
// evictions larger than the final bound.
func HistogramBucketBounds() []int {
	out := make([]int, len(histogramBounds))
	copy(out, histogramBounds[:])
	return out
}

// histogramBucket returns the bucket index for a net modified byte count.
func histogramBucket(n int) int {
	for i, b := range histogramBounds {
		if n <= b {
			return i
		}
	}
	return len(histogramBounds)
}

// TraceEventType distinguishes trace entries.
type TraceEventType int

const (
	// TraceFetch records a page read into the buffer pool.
	TraceFetch TraceEventType = iota
	// TraceEvict records a dirty page eviction.
	TraceEvict
)

// TraceEvent is one entry of the fetch/eviction trace.
type TraceEvent struct {
	Type         TraceEventType
	PID          uint64
	ChangedBytes int  // net modified bytes at eviction (0 for fetches)
	MetaChanged  bool // page metadata changed
	FullWrite    bool // the eviction was (or had to be) a whole-page write
}

// managerCounters are the storage statistics as atomics: evictions and
// fetches on different chips update them without ever sharing a lock.
type managerCounters struct {
	pageLoads      atomic.Uint64
	dirtyEvictions atomic.Uint64
	cleanEvictions atomic.Uint64

	ipaAppends       atomic.Uint64
	outOfPlaceWrites atomic.Uint64
	appendFallbacks  atomic.Uint64

	deltaRecordsWritten atomic.Uint64
	deltaBytesWritten   atomic.Uint64

	netChangedBytes atomic.Uint64
	smallEvictions  atomic.Uint64
	evictedBytes    atomic.Uint64

	indexPageLoads        atomic.Uint64
	indexDirtyEvictions   atomic.Uint64
	indexIPAAppends       atomic.Uint64
	indexOutOfPlaceWrites atomic.Uint64
	indexDeltaRecords     atomic.Uint64
	indexDeltaBytes       atomic.Uint64

	histogram [len(histogramBounds) + 1]atomic.Uint64
}

// Manager is the storage manager. It holds no lock on the eviction and
// fetch paths: page-identifier allocation and all counters are atomic, so
// concurrent evictions and fetches targeting different chips never
// rendezvous here. The only mutex guards the optional eviction trace.
type Manager struct {
	ftl      *ftl.FTL
	cfg      Config
	pageSize int
	nextPID  atomic.Uint64
	stats    managerCounters

	// walBarrier, if set, is invoked before any dirty page reaches Flash —
	// the write-ahead rule. The engine wires it to a WAL flush so a page
	// image on Flash never contains effects whose log records could still
	// be lost by a crash.
	walBarrier func() error

	traceMu sync.Mutex
	trace   []TraceEvent
}

// New creates a storage manager on top of an FTL.
func New(f *ftl.FTL, cfg Config) (*Manager, error) {
	if cfg.Regions == nil {
		cfg.Regions = region.NewManager(region.Region{Name: "default"})
	}
	return &Manager{
		ftl:      f,
		cfg:      cfg,
		pageSize: f.PageSize(),
	}, nil
}

// PageSize returns the database page size (equal to the Flash page size).
func (m *Manager) PageSize() int { return m.pageSize }

// SetWALBarrier installs the write-ahead barrier invoked before every dirty
// page write. It must be set before the manager is shared between
// goroutines.
func (m *Manager) SetWALBarrier(fn func() error) { m.walBarrier = fn }

// Mode returns the configured write mode.
func (m *Manager) Mode() WriteMode { return m.cfg.Mode }

// FTL returns the underlying Flash translation layer.
func (m *Manager) FTL() *ftl.FTL { return m.ftl }

// Regions returns the region manager.
func (m *Manager) Regions() *region.Manager { return m.cfg.Regions }

// Stats returns a snapshot of the storage counters.
func (m *Manager) Stats() Stats {
	s := Stats{
		PageLoads:           m.stats.pageLoads.Load(),
		DirtyEvictions:      m.stats.dirtyEvictions.Load(),
		CleanEvictions:      m.stats.cleanEvictions.Load(),
		IPAAppends:          m.stats.ipaAppends.Load(),
		OutOfPlaceWrites:    m.stats.outOfPlaceWrites.Load(),
		AppendFallbacks:     m.stats.appendFallbacks.Load(),
		DeltaRecordsWritten: m.stats.deltaRecordsWritten.Load(),
		DeltaBytesWritten:   m.stats.deltaBytesWritten.Load(),
		NetChangedBytes:     m.stats.netChangedBytes.Load(),
		SmallEvictions:      m.stats.smallEvictions.Load(),
		EvictedBytes:        m.stats.evictedBytes.Load(),

		IndexPageLoads:        m.stats.indexPageLoads.Load(),
		IndexDirtyEvictions:   m.stats.indexDirtyEvictions.Load(),
		IndexIPAAppends:       m.stats.indexIPAAppends.Load(),
		IndexOutOfPlaceWrites: m.stats.indexOutOfPlaceWrites.Load(),
		IndexDeltaRecords:     m.stats.indexDeltaRecords.Load(),
		IndexDeltaBytes:       m.stats.indexDeltaBytes.Load(),
	}
	for i := range m.stats.histogram {
		s.EvictionSizeHistogram[i] = m.stats.histogram[i].Load()
	}
	return s
}

// ResetStats clears the counters and the trace (used after load phases).
func (m *Manager) ResetStats() {
	m.stats.pageLoads.Store(0)
	m.stats.dirtyEvictions.Store(0)
	m.stats.cleanEvictions.Store(0)
	m.stats.ipaAppends.Store(0)
	m.stats.outOfPlaceWrites.Store(0)
	m.stats.appendFallbacks.Store(0)
	m.stats.deltaRecordsWritten.Store(0)
	m.stats.deltaBytesWritten.Store(0)
	m.stats.netChangedBytes.Store(0)
	m.stats.smallEvictions.Store(0)
	m.stats.evictedBytes.Store(0)
	m.stats.indexPageLoads.Store(0)
	m.stats.indexDirtyEvictions.Store(0)
	m.stats.indexIPAAppends.Store(0)
	m.stats.indexOutOfPlaceWrites.Store(0)
	m.stats.indexDeltaRecords.Store(0)
	m.stats.indexDeltaBytes.Store(0)
	for i := range m.stats.histogram {
		m.stats.histogram[i].Store(0)
	}
	m.traceMu.Lock()
	m.trace = nil
	m.traceMu.Unlock()
}

// Trace returns a copy of the recorded fetch/eviction trace.
func (m *Manager) Trace() []TraceEvent {
	m.traceMu.Lock()
	defer m.traceMu.Unlock()
	out := make([]TraceEvent, len(m.trace))
	copy(out, m.trace)
	return out
}

// effectiveScheme returns the N×M scheme in force for an object under the
// configured write mode.
func (m *Manager) effectiveScheme(objectID uint32) core.Scheme {
	if m.cfg.Mode == WriteTraditional {
		return core.Disabled
	}
	return m.cfg.Regions.For(objectID).Scheme
}

// isIndexObject reports whether objectID belongs to an index region, i.e.
// whether its pages are primary-key entry pages.
func (m *Manager) isIndexObject(objectID uint32) bool {
	return m.cfg.Regions.For(objectID).Kind == region.KindIndex
}

// isLogicalObject reports whether objectID's pages are recovered logically
// (decoded and re-interpreted) rather than byte-replayed from WAL images:
// index entry pages and the checkpoint catalog page. Such pages may only
// take single-record in-place appends, since a torn multi-record append
// could persist a byte-subset of one logical operation.
func (m *Manager) isLogicalObject(objectID uint32) bool {
	k := m.cfg.Regions.For(objectID).Kind
	return k == region.KindIndex || k == region.KindCatalog
}

// AllocatePage reserves a new page identifier for the given object. It is
// lock-free: concurrent allocations race on a compare-and-swap instead of
// a mutex. Sequential identifiers stripe across the FTL's chip partitions,
// so a multi-chip device spreads a table's pages over all chips.
func (m *Manager) AllocatePage(objectID uint32) (uint64, error) {
	for {
		cur := m.nextPID.Load()
		if int(cur) >= m.ftl.Capacity() {
			return 0, fmt.Errorf("%w: %d pages", ErrCapacity, m.ftl.Capacity())
		}
		if m.nextPID.CompareAndSwap(cur, cur+1) {
			return cur, nil
		}
	}
}

// AllocatedPages returns the number of allocated page identifiers.
func (m *Manager) AllocatedPages() uint64 {
	return m.nextPID.Load()
}

// EnsureAllocated advances the page-identifier allocator so it never hands
// out an identifier below floor. Recovery calls it after rebuilding the
// mapping from a surviving Flash image, so new pages cannot collide with
// pages that already exist on Flash or in the log.
func (m *Manager) EnsureAllocated(floor uint64) {
	for {
		cur := m.nextPID.Load()
		if cur >= floor {
			return
		}
		if m.nextPID.CompareAndSwap(cur, floor) {
			return
		}
	}
}

// ScrubPage repairs a logical page whose physical copy carries a torn
// in-place append: the surviving image is salvaged (complete delta records
// applied, the torn tail discarded via the record commit markers) and
// rewritten out of place with a clean delta area, so normal ECC-checked
// reads work again.
func (m *Manager) ScrubPage(pid uint64) error {
	buf := make([]byte, m.pageSize)
	if _, err := m.ftl.SalvageRead(int(pid), buf); err != nil {
		return fmt.Errorf("storage: scrub page %d: %w", pid, err)
	}
	pg, err := page.Wrap(buf)
	if err != nil {
		return fmt.Errorf("storage: scrub page %d: %w", pid, err)
	}
	scheme := m.effectiveScheme(pg.ObjectID())
	if scheme.Enabled() && pg.DeltaAreaSize() >= scheme.AreaSize(page.MetaSize) {
		records := core.DecodeArea(pg.DeltaArea(), scheme, page.MetaSize)
		if meta := core.ApplyRecords(buf, records); meta != nil {
			if err := pg.ApplyMeta(meta); err != nil {
				return fmt.Errorf("storage: scrub page %d: %w", pid, err)
			}
		}
		pg.ResetDeltaArea()
	}
	if err := m.ftl.RewritePage(int(pid), buf); err != nil {
		return fmt.Errorf("storage: scrub page %d: %w", pid, err)
	}
	return nil
}

// InitPage formats buf as a fresh page for the given object and returns its
// change tracker. The first eviction of a new page is always a whole-page
// write (there is nothing on Flash to append to).
func (m *Manager) InitPage(buf []byte, pid uint64, objectID uint32) (*core.Tracker, error) {
	scheme := m.effectiveScheme(objectID)
	deltaSize := 0
	if scheme.Enabled() {
		deltaSize = scheme.AreaSize(page.MetaSize)
	}
	pg, err := page.Init(buf, pid, objectID, deltaSize)
	if err != nil {
		return nil, err
	}
	// Stamp the page kind before the tracker snapshots the metadata, so the
	// flag is part of the original on-Flash header image.
	if m.isIndexObject(objectID) {
		pg.SetFlags(pg.Flags() | page.FlagIndex)
	}
	t := core.NewTracker(scheme, page.MetaSize, pg.BodyEnd(), 0)
	t.SetAnalytic(m.cfg.Analytic)
	t.SetOriginalMeta(pg.Meta())
	t.MarkOutOfPlace()
	return t, nil
}

// LoadPage implements buffer.PageIO: it reads the page image from Flash,
// applies any delta records (page reconstruction) and returns the tracker
// for the new buffer residency.
func (m *Manager) LoadPage(pid uint64, buf []byte) (*core.Tracker, error) {
	if err := m.ftl.ReadPage(int(pid), buf); err != nil {
		return nil, err
	}
	pg, err := page.Wrap(buf)
	if err != nil {
		return nil, fmt.Errorf("storage: page %d: %w", pid, err)
	}
	scheme := m.effectiveScheme(pg.ObjectID())
	// Remember the header/footer exactly as stored on Flash: the
	// conventional-SSD write path must reproduce that image when it
	// appends further delta records.
	rawMeta := pg.Meta()
	existing := 0
	if scheme.Enabled() && pg.DeltaAreaSize() >= scheme.AreaSize(page.MetaSize) {
		records := core.DecodeArea(pg.DeltaArea(), scheme, page.MetaSize)
		if len(records) > 0 {
			meta := core.ApplyRecords(buf, records)
			if meta != nil {
				if err := pg.ApplyMeta(meta); err != nil {
					return nil, fmt.Errorf("storage: page %d: %w", pid, err)
				}
			}
			existing = len(records)
		}
	}
	t := core.NewTracker(scheme, page.MetaSize, pg.BodyEnd(), existing)
	t.SetAnalytic(m.cfg.Analytic)
	t.SetOriginalMeta(rawMeta)

	m.stats.pageLoads.Add(1)
	if m.isIndexObject(pg.ObjectID()) {
		m.stats.indexPageLoads.Add(1)
	}
	if m.cfg.TraceEvictions {
		m.traceMu.Lock()
		m.trace = append(m.trace, TraceEvent{Type: TraceFetch, PID: pid})
		m.traceMu.Unlock()
	}
	return t, nil
}

// StorePage implements buffer.PageIO: it persists a dirty page using the
// configured write path and resets the tracker for the page's next buffer
// residency.
func (m *Manager) StorePage(pid uint64, buf []byte, t *core.Tracker) error {
	pg, err := page.Wrap(buf)
	if err != nil {
		return fmt.Errorf("storage: page %d: %w", pid, err)
	}
	scheme := core.Disabled
	if t != nil {
		scheme = t.Scheme()
	}

	// A page whose tracked changes all reverted needs no write at all.
	if t != nil && !t.OutOfPlace() && !t.Dirty() {
		m.stats.cleanEvictions.Add(1)
		return nil
	}

	// Write-ahead rule: the log records describing this page's changes must
	// be durable before the page image may reach Flash, otherwise a crash
	// could leave flushed effects whose log records are gone — invisible to
	// both redo and undo.
	if m.walBarrier != nil {
		if err := m.walBarrier(); err != nil {
			return fmt.Errorf("storage: WAL barrier for page %d: %w", pid, err)
		}
	}

	net := 0
	metaChanged := false
	if t != nil {
		net = t.NetChangedBytes()
		metaChanged = t.MetaChanged()
	}
	isIndex := m.isIndexObject(pg.ObjectID())
	m.stats.dirtyEvictions.Add(1)
	if isIndex {
		m.stats.indexDirtyEvictions.Add(1)
	}
	m.stats.evictedBytes.Add(uint64(len(buf)))
	m.stats.netChangedBytes.Add(uint64(net))
	if net > 0 && net < SmallEvictionThreshold {
		m.stats.smallEvictions.Add(1)
	}
	m.stats.histogram[histogramBucket(net)].Add(1)

	// IsAppendTarget is false for unmapped pages, so no separate Mapped
	// check (and partition-lock round trip) is needed.
	eligible := t != nil && scheme.Enabled() && t.Eligible() && t.Dirty() &&
		m.cfg.Mode != WriteTraditional && m.ftl.IsAppendTarget(int(pid))

	if eligible {
		outcome, err := m.storeAppend(pid, buf, pg, t, scheme, isIndex)
		if err != nil {
			return err
		}
		switch outcome {
		case appendDone:
			m.recordEvictTrace(pid, net, metaChanged, false)
			return nil
		case appendFellBack:
			// The FTL already persisted the page out-of-place.
			m.recordEvictTrace(pid, net, metaChanged, true)
			return nil
		case appendRefused:
			m.stats.appendFallbacks.Add(1)
		}
	}
	if err := m.storeOutOfPlace(pid, buf, pg, t, scheme, isIndex); err != nil {
		return err
	}
	m.recordEvictTrace(pid, net, metaChanged, true)
	return nil
}

func (m *Manager) recordEvictTrace(pid uint64, net int, metaChanged, fullWrite bool) {
	if !m.cfg.TraceEvictions {
		return
	}
	m.traceMu.Lock()
	m.trace = append(m.trace, TraceEvent{
		Type:         TraceEvict,
		PID:          pid,
		ChangedBytes: net,
		MetaChanged:  metaChanged,
		FullWrite:    fullWrite,
	})
	m.traceMu.Unlock()
}

// appendOutcome describes how storeAppend persisted (or did not persist)
// the page.
type appendOutcome int

const (
	// appendDone: the delta records were appended in place.
	appendDone appendOutcome = iota
	// appendFellBack: the FTL refused the in-place program but already
	// wrote the page out-of-place; nothing more to do.
	appendFellBack
	// appendRefused: no write happened; the caller must write the page
	// out-of-place itself.
	appendRefused
)

// storeAppend persists the tracked changes as appended delta records.
func (m *Manager) storeAppend(pid uint64, buf []byte, pg *page.Page, t *core.Tracker, scheme core.Scheme, isIndex bool) (appendOutcome, error) {
	records := t.BuildRecords(pg.Meta())
	if len(records) == 0 {
		// Nothing to persist (should have been caught as a clean page).
		t.Reset(t.Existing())
		return appendDone, nil
	}
	if m.isLogicalObject(pg.ObjectID()) && len(records) > 1 {
		// Index pages may append only when the residency's changes fit ONE
		// delta record. A record is atomic (its checksum and commit marker
		// are programmed last), but a torn append of several concatenated
		// records can persist a valid prefix — a byte-subset of one logical
		// index operation. Heap pages survive that because recovery replays
		// their bytes from the WAL images; entry pages are recovered
		// LOGICALLY (entries are decoded, keyed records replayed), so a
		// half-rewritten entry would surface as a garbage key no log record
		// ever names. The exhaustive power-cut sweep caught exactly that:
		// a secondary entry move split across two records, torn after the
		// first, decoding as an old/new key mix. Falling back to the
		// out-of-place write keeps the page atomic (mapping-tag ECC).
		return appendRefused, nil
	}
	firstSlot := t.Existing()
	recordSize := scheme.RecordSize(page.MetaSize)
	encoded := make([]byte, recordSize*len(records))
	for i := range encoded {
		encoded[i] = 0xFF
	}
	for i, rec := range records {
		if err := core.EncodeRecord(encoded[i*recordSize:(i+1)*recordSize], rec, scheme, page.MetaSize); err != nil {
			return appendRefused, fmt.Errorf("storage: page %d: %w", pid, err)
		}
	}
	areaOffset := pg.DeltaAreaStart() + firstSlot*recordSize

	switch m.cfg.Mode {
	case WriteIPANative:
		err := m.ftl.WriteDelta(int(pid), areaOffset, encoded)
		if errors.Is(err, ftl.ErrNotAppendable) {
			return appendRefused, nil
		}
		if err != nil {
			return appendRefused, fmt.Errorf("storage: write_delta page %d: %w", pid, err)
		}
	case WriteIPASSD:
		// Build the block-device image: the body and metadata exactly as
		// they are stored on Flash plus the delta-record area extended
		// with the new records. Only previously erased bytes change, so
		// the FTL can program the image onto the existing physical page.
		image := t.RestoreOriginal(buf)
		if meta := t.OriginalMeta(); len(meta) == page.MetaSize {
			copy(image[:page.HeaderSize], meta[:page.HeaderSize])
			copy(image[len(image)-page.FooterSize:], meta[page.HeaderSize:])
		}
		copy(image[areaOffset:], encoded)
		inPlace, err := m.ftl.WritePage(int(pid), image)
		if err != nil {
			return appendRefused, fmt.Errorf("storage: page %d: %w", pid, err)
		}
		if !inPlace {
			// The FTL wrote the image out-of-place (e.g. append budget
			// exhausted). The image is still correct; account it as a
			// fallback so the statistics reflect reality.
			m.syncBufferedArea(buf, pg, encoded, areaOffset)
			t.Reset(firstSlot + len(records))
			m.stats.appendFallbacks.Add(1)
			m.stats.outOfPlaceWrites.Add(1)
			if isIndex {
				m.stats.indexOutOfPlaceWrites.Add(1)
			}
			return appendFellBack, nil
		}
	default:
		return appendRefused, nil
	}

	m.syncBufferedArea(buf, pg, encoded, areaOffset)
	m.stats.ipaAppends.Add(1)
	m.stats.deltaRecordsWritten.Add(uint64(len(records)))
	m.stats.deltaBytesWritten.Add(uint64(len(encoded)))
	if isIndex {
		m.stats.indexIPAAppends.Add(1)
		m.stats.indexDeltaRecords.Add(uint64(len(records)))
		m.stats.indexDeltaBytes.Add(uint64(len(encoded)))
	}
	t.Reset(firstSlot + len(records))
	return appendDone, nil
}

// syncBufferedArea mirrors the freshly appended delta records into the
// buffered page image so the in-memory copy matches the Flash page.
func (m *Manager) syncBufferedArea(buf []byte, pg *page.Page, encoded []byte, areaOffset int) {
	copy(buf[areaOffset:areaOffset+len(encoded)], encoded)
}

// storeOutOfPlace writes the whole up-to-date page image out-of-place.
// It must never be served by an in-place merge: the image carries body
// changes, and a torn in-place body program is undetectable (only delta
// records are checksum-framed), so the write goes through WritePageOut.
func (m *Manager) storeOutOfPlace(pid uint64, buf []byte, pg *page.Page, t *core.Tracker, scheme core.Scheme, isIndex bool) error {
	if scheme.Enabled() {
		// The freshly written copy starts with an empty (erased)
		// delta-record area so it can take future in-place appends.
		pg.ResetDeltaArea()
	}
	if err := m.ftl.WritePageOut(int(pid), buf); err != nil {
		return fmt.Errorf("storage: page %d: %w", pid, err)
	}
	m.stats.outOfPlaceWrites.Add(1)
	if isIndex {
		m.stats.indexOutOfPlaceWrites.Add(1)
	}
	if t != nil {
		t.Reset(0)
		// The freshly written page now carries the current metadata.
		t.SetOriginalMeta(pg.Meta())
	}
	return nil
}
