package storage

import (
	"testing"

	"ipa/internal/core"
	"ipa/internal/nand"
	"ipa/internal/page"
	"ipa/internal/region"
)

// TestIndexAppendSingleRecordOnly pins the atomicity rule the exhaustive
// power-cut sweep enforced: an index page may be persisted as an in-place
// append only when the residency's changes fit ONE delta record. A torn
// append of several concatenated records can persist a valid prefix — a
// byte-subset of one logical index operation — which logical index
// recovery (entries decoded from the page, keyed WAL records replayed)
// cannot repair: the half-rewritten entry decodes as a garbage key no log
// record names. Heap pages are exempt because their recovery replays
// exact byte images.
func TestIndexAppendSingleRecordOnly(t *testing.T) {
	scheme := core.Scheme{N: 4, M: 4}
	for _, kind := range []region.Kind{region.KindHeap, region.KindIndex} {
		m := testStack(t, WriteIPANative, scheme, nand.ModePSLC)
		m.cfg.Regions.Assign(1, region.Region{Name: "obj", Scheme: scheme, FlashMode: nand.ModePSLC, Kind: kind})
		pid, _, _ := newPage(t, m, 5)

		// One residency changing 8 contiguous tuple bytes: needs two 4-byte
		// delta records — within the page's N=4 budget, but not atomic.
		buf, tracker := reload(t, m, pid)
		pg, _ := page.Wrap(buf)
		pg.SetRecorder(tracker)
		if err := pg.UpdateTupleAt(1, 10, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			t.Fatalf("UpdateTupleAt: %v", err)
		}
		if err := m.StorePage(pid, buf, tracker); err != nil {
			t.Fatalf("StorePage: %v", err)
		}
		s := m.Stats()
		switch kind {
		case region.KindHeap:
			if s.IPAAppends != 1 || s.DeltaRecordsWritten != 2 {
				t.Fatalf("heap page: appends=%d records=%d, want a 2-record append", s.IPAAppends, s.DeltaRecordsWritten)
			}
		case region.KindIndex:
			if s.IndexDeltaRecords != 0 || s.IndexIPAAppends != 0 {
				t.Fatalf("index page: %d records appended across %d appends, want the multi-record append refused", s.IndexDeltaRecords, s.IndexIPAAppends)
			}
			if s.IndexOutOfPlaceWrites == 0 || s.AppendFallbacks == 0 {
				t.Fatalf("index page: expected an out-of-place fallback (oop=%d fallbacks=%d)", s.IndexOutOfPlaceWrites, s.AppendFallbacks)
			}
		}

		// A residency fitting one record still appends in place on both.
		buf, tracker = reload(t, m, pid)
		pg, _ = page.Wrap(buf)
		pg.SetRecorder(tracker)
		if err := pg.UpdateTupleAt(2, 20, []byte{9, 9}); err != nil {
			t.Fatalf("UpdateTupleAt: %v", err)
		}
		if err := m.StorePage(pid, buf, tracker); err != nil {
			t.Fatalf("StorePage: %v", err)
		}
		s = m.Stats()
		if kind == region.KindIndex && (s.IndexIPAAppends != 1 || s.IndexDeltaRecords != 1) {
			t.Fatalf("index page: single-record residency must append (appends=%d records=%d)", s.IndexIPAAppends, s.IndexDeltaRecords)
		}
	}
}
