package storage

import (
	"bytes"
	"testing"

	"ipa/internal/core"
	"ipa/internal/flashdev"
	"ipa/internal/ftl"
	"ipa/internal/nand"
	"ipa/internal/page"
	"ipa/internal/region"
)

// testStack builds a device, FTL and storage manager for one write mode.
func testStack(t *testing.T, mode WriteMode, scheme core.Scheme, flashMode nand.Mode) *Manager {
	t.Helper()
	dev, err := flashdev.New(flashdev.Config{
		Chips: 1,
		Chip: nand.Config{
			Geometry:        nand.Geometry{Blocks: 32, PagesPerBlock: 16, PageSize: 2048, OOBSize: 128},
			Cell:            nand.MLC,
			StrictOverwrite: true,
			Seed:            2,
		},
		Latency: flashdev.DefaultLatencyModel(),
	})
	if err != nil {
		t.Fatalf("flashdev.New: %v", err)
	}
	eccCover := 2048
	if scheme.Enabled() {
		eccCover = 2048 - page.FooterSize - scheme.AreaSize(page.MetaSize)
	}
	f, err := ftl.New(dev, ftl.Config{
		FlashMode:     flashMode,
		InPlaceMerge:  mode == WriteIPASSD,
		EccCoverBytes: eccCover,
	})
	if err != nil {
		t.Fatalf("ftl.New: %v", err)
	}
	regions := region.NewManager(region.Region{Name: "default", Scheme: scheme, FlashMode: flashMode})
	m, err := New(f, Config{Mode: mode, Regions: regions, Analytic: true, TraceEvictions: true})
	if err != nil {
		t.Fatalf("storage.New: %v", err)
	}
	return m
}

// newPage allocates, initialises and persists a fresh page with some tuples
// and returns its pid, buffer and tracker.
func newPage(t *testing.T, m *Manager, tuples int) (uint64, []byte, *core.Tracker) {
	t.Helper()
	pid, err := m.AllocatePage(1)
	if err != nil {
		t.Fatalf("AllocatePage: %v", err)
	}
	buf := make([]byte, m.PageSize())
	tracker, err := m.InitPage(buf, pid, 1)
	if err != nil {
		t.Fatalf("InitPage: %v", err)
	}
	pg, err := page.Wrap(buf)
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	pg.SetRecorder(tracker)
	for i := 0; i < tuples; i++ {
		tuple := bytes.Repeat([]byte{byte(i + 1)}, 100)
		if _, err := pg.InsertTuple(tuple); err != nil {
			t.Fatalf("InsertTuple: %v", err)
		}
	}
	if err := m.StorePage(pid, buf, tracker); err != nil {
		t.Fatalf("StorePage: %v", err)
	}
	return pid, buf, tracker
}

// reload loads the page fresh from Flash.
func reload(t *testing.T, m *Manager, pid uint64) ([]byte, *core.Tracker) {
	t.Helper()
	buf := make([]byte, m.PageSize())
	tracker, err := m.LoadPage(pid, buf)
	if err != nil {
		t.Fatalf("LoadPage: %v", err)
	}
	return buf, tracker
}

func modesUnderTest() []struct {
	name   string
	mode   WriteMode
	scheme core.Scheme
	flash  nand.Mode
} {
	return []struct {
		name   string
		mode   WriteMode
		scheme core.Scheme
		flash  nand.Mode
	}{
		{"traditional", WriteTraditional, core.Disabled, nand.ModeMLCFull},
		{"ipa-ssd", WriteIPASSD, core.Scheme{N: 2, M: 4}, nand.ModePSLC},
		{"ipa-native", WriteIPANative, core.Scheme{N: 2, M: 4}, nand.ModePSLC},
	}
}

// TestSmallUpdateRoundTrip exercises the full fetch / modify / evict /
// reconstruct cycle for every write mode.
func TestSmallUpdateRoundTrip(t *testing.T) {
	for _, tc := range modesUnderTest() {
		t.Run(tc.name, func(t *testing.T) {
			m := testStack(t, tc.mode, tc.scheme, tc.flash)
			pid, _, _ := newPage(t, m, 5)

			// First residency: small update.
			buf, tracker := reload(t, m, pid)
			pg, _ := page.Wrap(buf)
			pg.SetRecorder(tracker)
			if err := pg.UpdateTupleAt(2, 10, []byte{0xAB, 0xCD}); err != nil {
				t.Fatalf("UpdateTupleAt: %v", err)
			}
			pg.SetLSN(101)
			if err := m.StorePage(pid, buf, tracker); err != nil {
				t.Fatalf("StorePage: %v", err)
			}

			// Second residency: the update must be visible after
			// reconstruction, and another small update must work.
			buf2, tracker2 := reload(t, m, pid)
			pg2, _ := page.Wrap(buf2)
			got, err := pg2.Tuple(2)
			if err != nil {
				t.Fatalf("Tuple: %v", err)
			}
			if got[10] != 0xAB || got[11] != 0xCD {
				t.Fatalf("first update lost after reload: % x", got[8:14])
			}
			if pg2.LSN() != 101 {
				t.Fatalf("Δmetadata not applied: LSN=%d", pg2.LSN())
			}
			pg2.SetRecorder(tracker2)
			if err := pg2.UpdateTupleAt(3, 0, []byte{0x77}); err != nil {
				t.Fatalf("UpdateTupleAt: %v", err)
			}
			if err := m.StorePage(pid, buf2, tracker2); err != nil {
				t.Fatalf("StorePage: %v", err)
			}

			buf3, _ := reload(t, m, pid)
			pg3, _ := page.Wrap(buf3)
			got2, _ := pg3.Tuple(3)
			got1, _ := pg3.Tuple(2)
			if got2[0] != 0x77 || got1[10] != 0xAB {
				t.Fatalf("updates lost after second reload")
			}

			stats := m.Stats()
			if tc.mode == WriteTraditional {
				if stats.IPAAppends != 0 {
					t.Fatalf("traditional mode must not append: %+v", stats)
				}
			} else if stats.IPAAppends == 0 {
				t.Fatalf("IPA mode performed no appends: %+v", stats)
			}
		})
	}
}

// TestAppendBudgetFallsBackToFullWrite verifies the N-record limit: after N
// appended records the next eviction rewrites the page out-of-place and the
// cycle starts over.
func TestAppendBudgetFallsBackToFullWrite(t *testing.T) {
	scheme := core.Scheme{N: 2, M: 4}
	m := testStack(t, WriteIPANative, scheme, nand.ModePSLC)
	pid, _, _ := newPage(t, m, 3)

	for round := 0; round < 5; round++ {
		buf, tracker := reload(t, m, pid)
		pg, _ := page.Wrap(buf)
		pg.SetRecorder(tracker)
		if err := pg.UpdateTupleAt(0, round, []byte{byte(0x10 + round)}); err != nil {
			t.Fatalf("UpdateTupleAt: %v", err)
		}
		if err := m.StorePage(pid, buf, tracker); err != nil {
			t.Fatalf("StorePage round %d: %v", round, err)
		}
	}
	stats := m.Stats()
	if stats.IPAAppends == 0 || stats.OutOfPlaceWrites < 2 {
		t.Fatalf("expected a mix of appends and full rewrites: %+v", stats)
	}
	// All five updates must be visible.
	buf, _ := reload(t, m, pid)
	pg, _ := page.Wrap(buf)
	tuple, _ := pg.Tuple(0)
	for round := 0; round < 5; round++ {
		if tuple[round] != byte(0x10+round) {
			t.Fatalf("round %d update lost: % x", round, tuple[:6])
		}
	}
}

// TestLargeUpdateGoesOutOfPlace: a change bigger than the N×M scheme is
// written out-of-place and still read back correctly.
func TestLargeUpdateGoesOutOfPlace(t *testing.T) {
	m := testStack(t, WriteIPANative, core.Scheme{N: 2, M: 4}, nand.ModePSLC)
	pid, _, _ := newPage(t, m, 3)
	buf, tracker := reload(t, m, pid)
	pg, _ := page.Wrap(buf)
	pg.SetRecorder(tracker)
	big := bytes.Repeat([]byte{0x5A}, 64)
	if err := pg.UpdateTupleAt(1, 0, big); err != nil {
		t.Fatalf("UpdateTupleAt: %v", err)
	}
	if err := m.StorePage(pid, buf, tracker); err != nil {
		t.Fatalf("StorePage: %v", err)
	}
	s := m.Stats()
	if s.IPAAppends != 0 || s.OutOfPlaceWrites == 0 {
		t.Fatalf("large update must go out-of-place: %+v", s)
	}
	buf2, _ := reload(t, m, pid)
	pg2, _ := page.Wrap(buf2)
	got, _ := pg2.Tuple(1)
	if !bytes.Equal(got[:64], big) {
		t.Fatalf("large update lost")
	}
}

// TestCleanEvictionSkipsWrite: a page whose changes reverted needs no write.
func TestCleanEvictionSkipsWrite(t *testing.T) {
	m := testStack(t, WriteIPANative, core.Scheme{N: 2, M: 4}, nand.ModePSLC)
	pid, _, _ := newPage(t, m, 2)
	buf, tracker := reload(t, m, pid)
	pg, _ := page.Wrap(buf)
	pg.SetRecorder(tracker)
	orig, _ := pg.Tuple(0)
	if err := pg.UpdateTupleAt(0, 0, []byte{0xEE}); err != nil {
		t.Fatalf("UpdateTupleAt: %v", err)
	}
	if err := pg.UpdateTupleAt(0, 0, orig[:1]); err != nil {
		t.Fatalf("UpdateTupleAt revert: %v", err)
	}
	before := m.FTL().Stats()
	if err := m.StorePage(pid, buf, tracker); err != nil {
		t.Fatalf("StorePage: %v", err)
	}
	after := m.FTL().Stats()
	if after.HostWrites != before.HostWrites || after.HostWriteDeltas != before.HostWriteDeltas {
		t.Fatalf("clean page must not be written")
	}
	if m.Stats().CleanEvictions == 0 {
		t.Fatalf("clean eviction not counted")
	}
}

// TestFigure1Accounting checks the statistics behind Figure 1.
func TestFigure1Accounting(t *testing.T) {
	m := testStack(t, WriteTraditional, core.Disabled, nand.ModeMLCFull)
	pid, _, _ := newPage(t, m, 4)
	// Measure only the small update below, not the initial page fill.
	m.ResetStats()
	buf, tracker := reload(t, m, pid)
	pg, _ := page.Wrap(buf)
	pg.SetRecorder(tracker)
	if err := pg.UpdateTupleAt(0, 0, []byte{1, 2, 3}); err != nil {
		t.Fatalf("UpdateTupleAt: %v", err)
	}
	if err := m.StorePage(pid, buf, tracker); err != nil {
		t.Fatalf("StorePage: %v", err)
	}
	s := m.Stats()
	if s.SmallEvictions != 1 {
		t.Fatalf("a small change must count as a small eviction: %+v", s)
	}
	// Tuple 0 is filled with 0x01, so writing {1,2,3} nets two changed bytes.
	if s.NetChangedBytes != 2 {
		t.Fatalf("NetChangedBytes = %d, want 2", s.NetChangedBytes)
	}
	if s.EvictedBytes == 0 || s.EvictedBytes%uint64(m.PageSize()) != 0 {
		t.Fatalf("EvictedBytes accounting wrong: %d", s.EvictedBytes)
	}
}

// TestTraceRecording checks the fetch/eviction trace used for the IPL
// comparison.
func TestTraceRecording(t *testing.T) {
	m := testStack(t, WriteTraditional, core.Disabled, nand.ModeMLCFull)
	pid, _, _ := newPage(t, m, 2)
	buf, tracker := reload(t, m, pid)
	pg, _ := page.Wrap(buf)
	pg.SetRecorder(tracker)
	_ = pg.UpdateTupleAt(0, 0, []byte{9})
	_ = m.StorePage(pid, buf, tracker)

	trace := m.Trace()
	var fetches, evicts int
	for _, ev := range trace {
		switch ev.Type {
		case TraceFetch:
			fetches++
		case TraceEvict:
			evicts++
			if ev.PID != pid {
				t.Fatalf("trace PID wrong")
			}
		}
	}
	if fetches == 0 || evicts < 2 {
		t.Fatalf("trace incomplete: %d fetches, %d evicts", fetches, evicts)
	}
	m.ResetStats()
	if len(m.Trace()) != 0 {
		t.Fatalf("ResetStats must clear the trace")
	}
}

// TestRegionSelectiveIPA: objects in a region without a scheme are always
// written out-of-place even though the manager runs in an IPA mode.
func TestRegionSelectiveIPA(t *testing.T) {
	m := testStack(t, WriteIPANative, core.Scheme{N: 2, M: 4}, nand.ModePSLC)
	// Object 2 lives in a region without IPA.
	m.Regions().Assign(2, region.Region{Name: "no-ipa", Scheme: core.Disabled})

	pid, err := m.AllocatePage(2)
	if err != nil {
		t.Fatalf("AllocatePage: %v", err)
	}
	buf := make([]byte, m.PageSize())
	tracker, err := m.InitPage(buf, pid, 2)
	if err != nil {
		t.Fatalf("InitPage: %v", err)
	}
	pg, _ := page.Wrap(buf)
	pg.SetRecorder(tracker)
	if pg.DeltaAreaSize() != 0 {
		t.Fatalf("no-IPA region pages must not reserve a delta area")
	}
	if _, err := pg.InsertTuple(make([]byte, 50)); err != nil {
		t.Fatalf("InsertTuple: %v", err)
	}
	if err := m.StorePage(pid, buf, tracker); err != nil {
		t.Fatalf("StorePage: %v", err)
	}
	buf2, tracker2 := reload(t, m, pid)
	pg2, _ := page.Wrap(buf2)
	pg2.SetRecorder(tracker2)
	if err := pg2.UpdateTupleAt(0, 0, []byte{1}); err != nil {
		t.Fatalf("UpdateTupleAt: %v", err)
	}
	if err := m.StorePage(pid, buf2, tracker2); err != nil {
		t.Fatalf("StorePage: %v", err)
	}
	if s := m.Stats(); s.IPAAppends != 0 {
		t.Fatalf("no-IPA region must never append: %+v", s)
	}
}

// TestAllocatePageCapacity exhausts the logical capacity.
func TestAllocatePageCapacity(t *testing.T) {
	m := testStack(t, WriteTraditional, core.Disabled, nand.ModeMLCFull)
	cap := m.FTL().Capacity()
	for i := 0; i < cap; i++ {
		if _, err := m.AllocatePage(1); err != nil {
			t.Fatalf("AllocatePage %d: %v", i, err)
		}
	}
	if _, err := m.AllocatePage(1); err == nil {
		t.Fatalf("expected capacity error")
	}
	if m.AllocatedPages() != uint64(cap) {
		t.Fatalf("AllocatedPages = %d", m.AllocatedPages())
	}
}

func TestWriteModeString(t *testing.T) {
	for _, m := range []WriteMode{WriteTraditional, WriteIPASSD, WriteIPANative, WriteMode(9)} {
		if m.String() == "" {
			t.Errorf("empty name for mode %d", m)
		}
	}
}
