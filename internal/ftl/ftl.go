// Package ftl implements the Flash management layer between the database
// storage manager and the simulated Flash device.
//
// It provides the two architectures evaluated in the paper:
//
//   - a conventional SSD exposing a block-device style page interface with
//     out-of-place updates, page-mapping address translation, greedy
//     garbage collection and wear-aware block allocation; optionally with
//     in-place write merging so that a host write whose only changes are
//     appended delta-record bytes is programmed onto the existing physical
//     page without invalidating it (IPA for conventional SSDs, demo
//     scenario 2), and
//
//   - the native-Flash path used by the NoFTL architecture, where the host
//     issues the write_delta command and only the delta bytes travel to the
//     device (IPA for native Flash, demo scenario 3).
//
// All counters that the paper reports (host reads and writes, GC page
// migrations, GC erases, in-place vs out-of-place writes) are collected
// here.
package ftl

import (
	"errors"
	"fmt"
	"sync"

	"ipa/internal/flashdev"
	"ipa/internal/nand"
)

// Errors returned by the FTL.
var (
	// ErrUnmapped is returned when reading a logical page that has never
	// been written.
	ErrUnmapped = errors.New("ftl: logical page not mapped")
	// ErrNotAppendable is returned by WriteDelta (and by the in-place
	// merge path) when the mapped physical page cannot accept an in-place
	// append; the caller must fall back to a full out-of-place write.
	ErrNotAppendable = errors.New("ftl: page cannot take an in-place append")
	// ErrDeviceFull is returned when no free block can be reclaimed.
	ErrDeviceFull = errors.New("ftl: device full (no reclaimable blocks)")
	// ErrBadLBA is returned for logical addresses outside the exported
	// capacity.
	ErrBadLBA = errors.New("ftl: logical page address out of range")
)

// Config tunes the FTL.
type Config struct {
	// FlashMode selects how MLC Flash is operated (pSLC, odd-MLC, ...).
	// It controls which physical pages are usable and which accept
	// in-place appends.
	FlashMode nand.Mode
	// OverprovisionPct is the fraction of usable pages withheld from the
	// exported capacity to give the garbage collector headroom.
	OverprovisionPct float64
	// GCLowWater triggers garbage collection when the number of free
	// blocks drops to this value.
	GCLowWater int
	// GCHighWater is the number of free blocks garbage collection tries
	// to reach before it stops.
	GCHighWater int
	// MaxAppendsPerPage caps the number of in-place appends to one
	// physical page (bounded by the device NOP budget and the OOB delta
	// ECC slots).
	MaxAppendsPerPage int
	// InPlaceMerge enables detection of host page writes that can be
	// programmed onto the already mapped physical page (IPA over the
	// block-device interface).
	InPlaceMerge bool
	// EccCoverBytes is the number of leading page bytes protected by the
	// initial ECC; the remainder is the delta-record area. Zero protects
	// the whole page (no IPA). It is set during low-level formatting.
	EccCoverBytes int
}

// DefaultConfig returns a conventional out-of-place FTL configuration.
func DefaultConfig() Config {
	return Config{
		FlashMode:         nand.ModeMLCFull,
		OverprovisionPct:  0.08,
		GCLowWater:        2,
		GCHighWater:       4,
		MaxAppendsPerPage: 0,
		InPlaceMerge:      false,
		EccCoverBytes:     0,
	}
}

// Stats are the counters the experiments report.
type Stats struct {
	HostReads        uint64 // host page reads
	HostWrites       uint64 // host full-page writes
	HostWriteDeltas  uint64 // host write_delta commands
	HostBytesRead    uint64
	HostBytesWritten uint64 // bytes transferred host -> FTL (full pages and deltas)

	InPlaceAppends   uint64 // host writes served without page invalidation
	OutOfPlaceWrites uint64 // host writes served by writing a new physical page
	Invalidations    uint64 // physical pages invalidated by host writes

	GCMigrations uint64 // valid pages copied by the garbage collector
	GCErases     uint64 // blocks erased by the garbage collector
	GCRuns       uint64
}

type blockState int

const (
	blockFree blockState = iota
	blockActive
	blockUsed
)

type blockInfo struct {
	state      blockState
	validCount int
	nextPage   int // next unwritten usable page index (for the active block)
}

// FTL is a page-mapping Flash translation layer.
type FTL struct {
	mu  sync.Mutex
	dev *flashdev.Device
	cfg Config
	geo flashdev.Geometry

	usablePerBlock int
	exportedPages  int

	l2p     []int32 // logical page -> physical page address (-1 unmapped)
	p2l     []int32 // physical page address -> logical page (-1 invalid/free)
	appends []uint8 // in-place appends performed on each physical page
	blocks  []blockInfo
	free    []int // free block stack
	active  int   // index of the active block, -1 if none

	stats Stats
}

// New creates an FTL on top of an erased device.
func New(dev *flashdev.Device, cfg Config) (*FTL, error) {
	geo := dev.Geometry()
	if cfg.GCLowWater <= 0 {
		cfg.GCLowWater = 2
	}
	if cfg.GCHighWater <= cfg.GCLowWater {
		cfg.GCHighWater = cfg.GCLowWater + 2
	}
	if cfg.OverprovisionPct <= 0 {
		cfg.OverprovisionPct = 0.08
	}
	if cfg.MaxAppendsPerPage <= 0 {
		cfg.MaxAppendsPerPage = geo.DeltaSlots
	}
	if cfg.MaxAppendsPerPage > geo.DeltaSlots && geo.DeltaSlots > 0 {
		cfg.MaxAppendsPerPage = geo.DeltaSlots
	}
	if cfg.EccCoverBytes <= 0 || cfg.EccCoverBytes > geo.PageSize {
		cfg.EccCoverBytes = geo.PageSize
	}

	usable := 0
	for p := 0; p < geo.PagesPerBlock; p++ {
		if nand.PageUsable(dev.CellType(), cfg.FlashMode, p) {
			usable++
		}
	}
	if usable == 0 {
		return nil, fmt.Errorf("ftl: flash mode %v leaves no usable pages", cfg.FlashMode)
	}
	totalUsable := usable * geo.Blocks
	reserve := int(float64(totalUsable) * cfg.OverprovisionPct)
	minReserve := (cfg.GCHighWater + 1) * usable
	if reserve < minReserve {
		reserve = minReserve
	}
	exported := totalUsable - reserve
	if exported <= 0 {
		return nil, fmt.Errorf("ftl: device too small: %d usable pages, %d reserved", totalUsable, reserve)
	}

	f := &FTL{
		dev:            dev,
		cfg:            cfg,
		geo:            geo,
		usablePerBlock: usable,
		exportedPages:  exported,
		l2p:            make([]int32, exported),
		p2l:            make([]int32, geo.Blocks*geo.PagesPerBlock),
		appends:        make([]uint8, geo.Blocks*geo.PagesPerBlock),
		blocks:         make([]blockInfo, geo.Blocks),
		active:         -1,
	}
	for i := range f.l2p {
		f.l2p[i] = -1
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	for b := geo.Blocks - 1; b >= 0; b-- {
		f.free = append(f.free, b)
	}
	return f, nil
}

// Capacity returns the number of logical pages exported to the host.
func (f *FTL) Capacity() int { return f.exportedPages }

// PageSize returns the logical and physical page size in bytes.
func (f *FTL) PageSize() int { return f.geo.PageSize }

// Config returns the effective configuration.
func (f *FTL) Config() Config { return f.cfg }

// Device returns the underlying Flash device.
func (f *FTL) Device() *flashdev.Device { return f.dev }

// Stats returns a snapshot of the FTL counters.
func (f *FTL) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// ResetStats clears all counters (used after benchmark load phases).
func (f *FTL) ResetStats() {
	f.mu.Lock()
	f.stats = Stats{}
	f.mu.Unlock()
}

// ppa helpers.
func (f *FTL) ppaOf(block, page int) int32 { return int32(block*f.geo.PagesPerBlock + page) }
func (f *FTL) blockOf(ppa int32) int       { return int(ppa) / f.geo.PagesPerBlock }
func (f *FTL) pageOf(ppa int32) int        { return int(ppa) % f.geo.PagesPerBlock }

// Mapped reports whether the logical page has been written.
func (f *FTL) Mapped(lba int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return lba >= 0 && lba < len(f.l2p) && f.l2p[lba] >= 0
}

// IsAppendTarget reports whether the physical page currently backing lba
// may accept further in-place appends (flash-mode safety and budget); it
// does not consider the content about to be appended.
func (f *FTL) IsAppendTarget(lba int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	ppa, err := f.mappedPPA(lba)
	if err != nil {
		return false
	}
	return f.appendableLocked(ppa)
}

func (f *FTL) appendableLocked(ppa int32) bool {
	if !nand.AppendSafe(f.dev.CellType(), f.cfg.FlashMode, f.pageOf(ppa)) {
		return false
	}
	return int(f.appends[ppa]) < f.cfg.MaxAppendsPerPage
}

func (f *FTL) mappedPPA(lba int) (int32, error) {
	if lba < 0 || lba >= len(f.l2p) {
		return -1, fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	ppa := f.l2p[lba]
	if ppa < 0 {
		return -1, fmt.Errorf("%w: %d", ErrUnmapped, lba)
	}
	return ppa, nil
}

// ReadPage reads the logical page into buf (PageSize bytes).
func (f *FTL) ReadPage(lba int, buf []byte) error {
	f.mu.Lock()
	ppa, err := f.mappedPPA(lba)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	f.stats.HostReads++
	f.stats.HostBytesRead += uint64(len(buf))
	block, page := f.blockOf(ppa), f.pageOf(ppa)
	f.mu.Unlock()
	return f.dev.ReadPage(block, page, buf)
}

// WritePage writes a full logical page. With InPlaceMerge enabled the FTL
// first attempts to program the new image onto the currently mapped
// physical page (possible when the only changed bits are 1->0, i.e. the
// image only gained appended delta records); otherwise the page is written
// out-of-place and the old physical page is invalidated. The first return
// value reports whether the write was served in place.
func (f *FTL) WritePage(lba int, data []byte) (bool, error) {
	if len(data) != f.geo.PageSize {
		return false, fmt.Errorf("ftl: WritePage buffer %d bytes, want %d", len(data), f.geo.PageSize)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if lba < 0 || lba >= len(f.l2p) {
		return false, fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	f.stats.HostWrites++
	f.stats.HostBytesWritten += uint64(len(data))

	if f.cfg.InPlaceMerge {
		if ppa := f.l2p[lba]; ppa >= 0 && f.appendableLocked(ppa) {
			if err := f.tryInPlaceLocked(ppa, data); err == nil {
				f.appends[ppa]++
				f.stats.InPlaceAppends++
				return true, nil
			}
		}
	}
	return false, f.writeOutOfPlaceLocked(lba, data)
}

// tryInPlaceLocked attempts to program data over the existing physical
// page. The device enforces the bit-clear-only rule, so an image that
// changed anything besides appended (previously erased) bytes fails and the
// caller falls back to an out-of-place write.
func (f *FTL) tryInPlaceLocked(ppa int32, data []byte) error {
	block, page := f.blockOf(ppa), f.pageOf(ppa)
	err := f.dev.ProgramPage(block, page, data, f.cfg.EccCoverBytes)
	if err == nil {
		return nil
	}
	if errors.Is(err, nand.ErrOverwriteViolation) || errors.Is(err, nand.ErrNOPExceeded) {
		return ErrNotAppendable
	}
	return err
}

// WriteDelta appends delta bytes at the given page offset to the physical
// page currently backing lba (the write_delta command of the native-Flash
// architecture). It fails with ErrNotAppendable when the mapped page cannot
// take the append, in which case the caller must issue a full WritePage.
func (f *FTL) WriteDelta(lba, offset int, delta []byte) error {
	f.mu.Lock()
	ppa, err := f.mappedPPA(lba)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	if !f.appendableLocked(ppa) {
		f.mu.Unlock()
		return ErrNotAppendable
	}
	f.stats.HostWriteDeltas++
	f.stats.HostBytesWritten += uint64(len(delta))
	block, page := f.blockOf(ppa), f.pageOf(ppa)
	f.mu.Unlock()

	_, err = f.dev.ProgramDelta(block, page, offset, delta)
	if err != nil {
		if errors.Is(err, nand.ErrOverwriteViolation) || errors.Is(err, nand.ErrNOPExceeded) ||
			errors.Is(err, flashdev.ErrNoDeltaSlot) {
			return ErrNotAppendable
		}
		return err
	}
	f.mu.Lock()
	f.appends[ppa]++
	f.stats.InPlaceAppends++
	f.mu.Unlock()
	return nil
}

// Trim invalidates the mapping of a logical page (e.g. when a database
// object is dropped).
func (f *FTL) Trim(lba int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if lba < 0 || lba >= len(f.l2p) {
		return fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	if ppa := f.l2p[lba]; ppa >= 0 {
		f.invalidateLocked(ppa)
		f.l2p[lba] = -1
	}
	return nil
}

// writeOutOfPlaceLocked performs a traditional out-of-place update.
func (f *FTL) writeOutOfPlaceLocked(lba int, data []byte) error {
	ppa, err := f.allocatePageLocked()
	if err != nil {
		return err
	}
	block, page := f.blockOf(ppa), f.pageOf(ppa)
	if err := f.dev.ProgramPage(block, page, data, f.cfg.EccCoverBytes); err != nil {
		return err
	}
	if old := f.l2p[lba]; old >= 0 {
		f.invalidateLocked(old)
		f.stats.Invalidations++
	}
	f.l2p[lba] = ppa
	f.p2l[ppa] = int32(lba)
	f.appends[ppa] = 0
	f.blocks[f.blockOf(ppa)].validCount++
	f.stats.OutOfPlaceWrites++
	return nil
}

func (f *FTL) invalidateLocked(ppa int32) {
	if f.p2l[ppa] >= 0 {
		f.p2l[ppa] = -1
		f.blocks[f.blockOf(ppa)].validCount--
	}
}

// allocatePageLocked returns the next writable physical page, running the
// garbage collector when free blocks run low.
func (f *FTL) allocatePageLocked() (int32, error) {
	for {
		if f.active >= 0 {
			blk := &f.blocks[f.active]
			for blk.nextPage < f.geo.PagesPerBlock {
				p := blk.nextPage
				blk.nextPage++
				if nand.PageUsable(f.dev.CellType(), f.cfg.FlashMode, p) {
					return f.ppaOf(f.active, p), nil
				}
			}
			// Active block is full.
			blk.state = blockUsed
			f.active = -1
		}
		if err := f.ensureFreeLocked(); err != nil {
			return -1, err
		}
		// Garbage collection may have installed (and partially filled) a
		// new active block for its migrations; keep using it instead of
		// leaking it.
		if f.active >= 0 {
			continue
		}
		f.active = f.popFreeLocked()
		f.blocks[f.active].state = blockActive
		f.blocks[f.active].nextPage = 0
	}
}

// popFreeLocked removes and returns the free block with the lowest erase
// count (simple wear levelling).
func (f *FTL) popFreeLocked() int {
	best, bestIdx, bestWear := -1, -1, int(^uint(0)>>1)
	for i, b := range f.free {
		wear, err := f.dev.BlockEraseCount(b)
		if err != nil {
			wear = 0
		}
		if wear < bestWear {
			best, bestIdx, bestWear = b, i, wear
		}
	}
	f.free = append(f.free[:bestIdx], f.free[bestIdx+1:]...)
	return best
}

// ensureFreeLocked runs garbage collection until the free-block pool is
// above the low-water mark.
func (f *FTL) ensureFreeLocked() error {
	if len(f.free) > f.cfg.GCLowWater {
		return nil
	}
	f.stats.GCRuns++
	for len(f.free) < f.cfg.GCHighWater {
		victim := f.pickVictimLocked()
		if victim < 0 {
			if len(f.free) > 0 {
				return nil
			}
			return ErrDeviceFull
		}
		if err := f.collectBlockLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// pickVictimLocked selects the used block with the fewest valid pages
// (greedy policy). It returns -1 when no block can be reclaimed.
func (f *FTL) pickVictimLocked() int {
	best, bestValid := -1, int(^uint(0)>>1)
	for b := range f.blocks {
		blk := &f.blocks[b]
		if blk.state != blockUsed {
			continue
		}
		if blk.validCount < bestValid {
			best, bestValid = b, blk.validCount
		}
	}
	if best >= 0 && bestValid >= f.usablePerBlock {
		// Every page of every candidate is valid: reclaiming would only
		// move data without freeing space.
		return -1
	}
	return best
}

// collectBlockLocked migrates the valid pages of the victim block and
// erases it.
func (f *FTL) collectBlockLocked(victim int) error {
	for p := 0; p < f.geo.PagesPerBlock; p++ {
		ppa := f.ppaOf(victim, p)
		lba := f.p2l[ppa]
		if lba < 0 {
			continue
		}
		dst, err := f.allocateForGCLocked(victim)
		if err != nil {
			return err
		}
		if err := f.dev.CopyPage(victim, p, f.blockOf(dst), f.pageOf(dst)); err != nil {
			return err
		}
		f.stats.GCMigrations++
		f.p2l[ppa] = -1
		f.blocks[victim].validCount--
		f.l2p[lba] = dst
		f.p2l[dst] = lba
		f.appends[dst] = f.appends[ppa]
		f.appends[ppa] = 0
		f.blocks[f.blockOf(dst)].validCount++
	}
	if err := f.dev.EraseBlock(victim); err != nil {
		return err
	}
	f.stats.GCErases++
	for p := 0; p < f.geo.PagesPerBlock; p++ {
		f.appends[f.ppaOf(victim, p)] = 0
	}
	f.blocks[victim].state = blockFree
	f.blocks[victim].validCount = 0
	f.blocks[victim].nextPage = 0
	f.free = append(f.free, victim)
	return nil
}

// allocateForGCLocked allocates a destination page for a GC migration. It
// must never trigger recursive garbage collection, so it only consumes the
// active block and the free pool.
func (f *FTL) allocateForGCLocked(victim int) (int32, error) {
	for {
		if f.active >= 0 && f.active != victim {
			blk := &f.blocks[f.active]
			for blk.nextPage < f.geo.PagesPerBlock {
				p := blk.nextPage
				blk.nextPage++
				if nand.PageUsable(f.dev.CellType(), f.cfg.FlashMode, p) {
					return f.ppaOf(f.active, p), nil
				}
			}
			blk.state = blockUsed
			f.active = -1
		}
		if f.active == victim {
			f.blocks[f.active].state = blockUsed
			f.active = -1
		}
		if len(f.free) == 0 {
			return -1, ErrDeviceFull
		}
		f.active = f.popFreeLocked()
		f.blocks[f.active].state = blockActive
		f.blocks[f.active].nextPage = 0
	}
}

// Utilization returns the fraction of exported logical pages currently
// mapped.
func (f *FTL) Utilization() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	mapped := 0
	for _, ppa := range f.l2p {
		if ppa >= 0 {
			mapped++
		}
	}
	return float64(mapped) / float64(len(f.l2p))
}

// FreeBlocks returns the current number of free blocks.
func (f *FTL) FreeBlocks() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.free)
}

// DebugSummary reports the internal occupancy state of the FTL; it exists
// for tests and troubleshooting.
func (f *FTL) DebugSummary() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	mapped := 0
	for _, ppa := range f.l2p {
		if ppa >= 0 {
			mapped++
		}
	}
	validP2L := 0
	for _, lba := range f.p2l {
		if lba >= 0 {
			validP2L++
		}
	}
	sumValid, freeBlocks, usedBlocks, activeBlocks, fullyValid := 0, 0, 0, 0, 0
	for b := range f.blocks {
		sumValid += f.blocks[b].validCount
		switch f.blocks[b].state {
		case blockFree:
			freeBlocks++
		case blockActive:
			activeBlocks++
		case blockUsed:
			usedBlocks++
			if f.blocks[b].validCount >= f.usablePerBlock {
				fullyValid++
			}
		}
	}
	return fmt.Sprintf("mapped=%d validP2L=%d sumValidCount=%d blocks[free=%d active=%d used=%d fullyValid=%d] freeList=%d usablePerBlock=%d exported=%d",
		mapped, validP2L, sumValid, freeBlocks, activeBlocks, usedBlocks, fullyValid, len(f.free), f.usablePerBlock, f.exportedPages)
}
