// Package ftl implements the Flash management layer between the database
// storage manager and the simulated Flash device.
//
// It provides the two architectures evaluated in the paper:
//
//   - a conventional SSD exposing a block-device style page interface with
//     out-of-place updates, page-mapping address translation, greedy
//     garbage collection and wear-aware block allocation; optionally with
//     in-place write merging so that a host write whose only changes are
//     appended delta-record bytes is programmed onto the existing physical
//     page without invalidating it (IPA for conventional SSDs, demo
//     scenario 2), and
//
//   - the native-Flash path used by the NoFTL architecture, where the host
//     issues the write_delta command and only the delta bytes travel to the
//     device (IPA for native Flash, demo scenario 3).
//
// The FTL is partitioned per NAND chip so device-internal parallelism is
// actually exploitable: logical pages are striped across chips (chip =
// lba mod chips), and every chip partition owns its own lock, active
// block, free-block list and garbage collector. Operations on different
// chips — including a GC run on one chip and allocations on another —
// proceed fully in parallel; the global counters are atomics.
//
// All counters that the paper reports (host reads and writes, GC page
// migrations, GC erases, in-place vs out-of-place writes) are collected
// here.
package ftl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ipa/internal/flashdev"
	"ipa/internal/nand"
)

// Errors returned by the FTL.
var (
	// ErrUnmapped is returned when reading a logical page that has never
	// been written.
	ErrUnmapped = errors.New("ftl: logical page not mapped")
	// ErrNotAppendable is returned by WriteDelta (and by the in-place
	// merge path) when the mapped physical page cannot accept an in-place
	// append; the caller must fall back to a full out-of-place write.
	ErrNotAppendable = errors.New("ftl: page cannot take an in-place append")
	// ErrDeviceFull is returned when no free block can be reclaimed.
	ErrDeviceFull = errors.New("ftl: device full (no reclaimable blocks)")
	// ErrBadLBA is returned for logical addresses outside the exported
	// capacity.
	ErrBadLBA = errors.New("ftl: logical page address out of range")
)

// Config tunes the FTL.
type Config struct {
	// FlashMode selects how MLC Flash is operated (pSLC, odd-MLC, ...).
	// It controls which physical pages are usable and which accept
	// in-place appends.
	FlashMode nand.Mode
	// OverprovisionPct is the fraction of usable pages withheld from the
	// exported capacity to give the garbage collector headroom.
	OverprovisionPct float64
	// GCLowWater triggers garbage collection on a chip when the number of
	// free blocks of that chip drops to this value.
	GCLowWater int
	// GCHighWater is the number of free blocks per chip garbage collection
	// tries to reach before it stops.
	GCHighWater int
	// MaxAppendsPerPage caps the number of in-place appends to one
	// physical page (bounded by the device NOP budget and the OOB delta
	// ECC slots).
	MaxAppendsPerPage int
	// InPlaceMerge enables detection of host page writes that can be
	// programmed onto the already mapped physical page (IPA over the
	// block-device interface).
	InPlaceMerge bool
	// EccCoverBytes is the number of leading page bytes protected by the
	// initial ECC; the remainder is the delta-record area. Zero protects
	// the whole page (no IPA). It is set during low-level formatting.
	EccCoverBytes int
	// EccTailBytes is the number of trailing page bytes (the page footer
	// behind the delta-record area) additionally protected by the initial
	// ECC, so torn whole-page programs are fully detectable.
	EccTailBytes int
}

// DefaultConfig returns a conventional out-of-place FTL configuration.
func DefaultConfig() Config {
	return Config{
		FlashMode:         nand.ModeMLCFull,
		OverprovisionPct:  0.08,
		GCLowWater:        2,
		GCHighWater:       4,
		MaxAppendsPerPage: 0,
		InPlaceMerge:      false,
		EccCoverBytes:     0,
	}
}

// Stats are the counters the experiments report.
type Stats struct {
	HostReads        uint64 // host page reads
	HostWrites       uint64 // host full-page writes
	HostWriteDeltas  uint64 // host write_delta commands
	HostBytesRead    uint64
	HostBytesWritten uint64 // bytes transferred host -> FTL (full pages and deltas)

	InPlaceAppends   uint64 // host writes served without page invalidation
	OutOfPlaceWrites uint64 // host writes served by writing a new physical page
	Invalidations    uint64 // physical pages invalidated by host writes

	GCMigrations uint64 // valid pages copied by the garbage collector
	GCErases     uint64 // blocks erased by the garbage collector
	GCRuns       uint64
}

// ChipStats reports the activity of one chip partition.
type ChipStats struct {
	Chip          int
	GCRuns        uint64
	GCMigrations  uint64
	GCErases      uint64
	FreeBlocks    int
	ExportedPages int
}

type blockState int

const (
	blockFree blockState = iota
	blockActive
	blockUsed
)

type blockInfo struct {
	state      blockState
	validCount int
	nextPage   int // next unwritten usable page index (for the active block)
	eraseCount int // cached device erase count (wear levelling without device calls)
}

// counters holds the global FTL statistics as atomics so the hot write and
// read paths of different chip partitions never rendezvous on a stats lock.
type counters struct {
	hostReads        atomic.Uint64
	hostWrites       atomic.Uint64
	hostWriteDeltas  atomic.Uint64
	hostBytesRead    atomic.Uint64
	hostBytesWritten atomic.Uint64
	inPlaceAppends   atomic.Uint64
	outOfPlaceWrites atomic.Uint64
	invalidations    atomic.Uint64
}

func (c *counters) reset() {
	c.hostReads.Store(0)
	c.hostWrites.Store(0)
	c.hostWriteDeltas.Store(0)
	c.hostBytesRead.Store(0)
	c.hostBytesWritten.Store(0)
	c.inPlaceAppends.Store(0)
	c.outOfPlaceWrites.Store(0)
	c.invalidations.Store(0)
}

// partition is the per-chip slice of the FTL: its own lock, active block,
// free-block list and garbage collector. A partition owns the blocks
// [chip*blocksPerChip, (chip+1)*blocksPerChip) of the device, every
// physical page within them, and every logical page with lba mod chips ==
// chip. All of that state is only touched under the partition lock, so
// chips never contend with each other.
type partition struct {
	mu   sync.Mutex
	f    *FTL
	chip int

	firstBlock int // global index of the partition's first block
	free       []int
	active     int // global block index, -1 if none

	gcRuns       atomic.Uint64
	gcMigrations atomic.Uint64
	gcErases     atomic.Uint64
}

// FTL is a page-mapping Flash translation layer, partitioned per chip.
type FTL struct {
	dev *flashdev.Device
	cfg Config
	geo flashdev.Geometry

	usablePerBlock  int
	exportedPages   int
	chips           int
	blocksPerChip   int
	exportedPerChip int

	// The translation state is stored in flat arrays but ownership is
	// partitioned: l2p[lba] belongs to partition lba%chips; p2l, appends
	// and blocks entries belong to the partition of the block they
	// address. Every entry is only read or written under its owner's
	// lock. Pages of a logical address always stay on their chip, so both
	// ownership rules always name the same partition.
	l2p     []int32 // logical page -> physical page address (-1 unmapped)
	p2l     []int32 // physical page address -> logical page (-1 invalid/free)
	appends []uint8 // in-place appends performed on each physical page
	blocks  []blockInfo

	parts []*partition
	stats counters

	// seq numbers every out-of-place page program. It is stored in the
	// page's OOB mapping tag, so crash recovery can order the copies of a
	// logical page found on Flash and keep only the newest.
	seq atomic.Uint64
}

// New creates an FTL on top of an erased device.
func New(dev *flashdev.Device, cfg Config) (*FTL, error) {
	f, err := newSkeleton(dev, cfg)
	if err != nil {
		return nil, err
	}
	for c := 0; c < f.chips; c++ {
		p := f.parts[c]
		for b := (c+1)*f.blocksPerChip - 1; b >= c*f.blocksPerChip; b-- {
			p.free = append(p.free, b)
		}
	}
	return f, nil
}

// newSkeleton builds an FTL with normalised configuration, computed
// capacity and empty mapping/free-list state. New fills the free lists for
// an erased device; Rebuild reconstructs them from a surviving Flash image.
func newSkeleton(dev *flashdev.Device, cfg Config) (*FTL, error) {
	geo := dev.Geometry()
	if cfg.GCLowWater <= 0 {
		cfg.GCLowWater = 2
	}
	if cfg.GCHighWater <= cfg.GCLowWater {
		cfg.GCHighWater = cfg.GCLowWater + 2
	}
	if cfg.OverprovisionPct <= 0 {
		cfg.OverprovisionPct = 0.08
	}
	if cfg.MaxAppendsPerPage <= 0 {
		cfg.MaxAppendsPerPage = geo.DeltaSlots
	}
	if cfg.MaxAppendsPerPage > geo.DeltaSlots && geo.DeltaSlots > 0 {
		cfg.MaxAppendsPerPage = geo.DeltaSlots
	}
	if cfg.EccCoverBytes <= 0 || cfg.EccCoverBytes+cfg.EccTailBytes > geo.PageSize {
		cfg.EccCoverBytes = geo.PageSize
		cfg.EccTailBytes = 0
	}
	if cfg.EccTailBytes < 0 {
		cfg.EccTailBytes = 0
	}

	usable := 0
	for p := 0; p < geo.PagesPerBlock; p++ {
		if nand.PageUsable(dev.CellType(), cfg.FlashMode, p) {
			usable++
		}
	}
	if usable == 0 {
		return nil, fmt.Errorf("ftl: flash mode %v leaves no usable pages", cfg.FlashMode)
	}
	chips := dev.Chips()
	blocksPerChip := geo.Blocks / chips
	usablePerChip := usable * blocksPerChip
	// Over-provisioning and the GC head-room reserve apply per chip: each
	// partition garbage-collects independently and needs its own free
	// blocks.
	reserve := int(float64(usablePerChip) * cfg.OverprovisionPct)
	minReserve := (cfg.GCHighWater + 1) * usable
	if reserve < minReserve {
		reserve = minReserve
	}
	exportedPerChip := usablePerChip - reserve
	if exportedPerChip <= 0 {
		return nil, fmt.Errorf("ftl: device too small: %d usable pages per chip, %d reserved", usablePerChip, reserve)
	}
	exported := exportedPerChip * chips

	f := &FTL{
		dev:             dev,
		cfg:             cfg,
		geo:             geo,
		usablePerBlock:  usable,
		exportedPages:   exported,
		chips:           chips,
		blocksPerChip:   blocksPerChip,
		exportedPerChip: exportedPerChip,
		l2p:             make([]int32, exported),
		p2l:             make([]int32, geo.Blocks*geo.PagesPerBlock),
		appends:         make([]uint8, geo.Blocks*geo.PagesPerBlock),
		blocks:          make([]blockInfo, geo.Blocks),
	}
	for i := range f.l2p {
		f.l2p[i] = -1
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	// Seed the wear cache; on a freshly created device every count is 0,
	// but re-formatting an already used device must keep wear levelling
	// accurate.
	for b := range f.blocks {
		if wear, err := dev.BlockEraseCount(b); err == nil {
			f.blocks[b].eraseCount = wear
		}
	}
	for c := 0; c < chips; c++ {
		f.parts = append(f.parts, &partition{f: f, chip: c, firstBlock: c * blocksPerChip, active: -1})
	}
	return f, nil
}

// Capacity returns the number of logical pages exported to the host.
func (f *FTL) Capacity() int { return f.exportedPages }

// PageSize returns the logical and physical page size in bytes.
func (f *FTL) PageSize() int { return f.geo.PageSize }

// Config returns the effective configuration.
func (f *FTL) Config() Config { return f.cfg }

// Device returns the underlying Flash device.
func (f *FTL) Device() *flashdev.Device { return f.dev }

// Chips returns the number of chip partitions.
func (f *FTL) Chips() int { return f.chips }

// ChipOf returns the chip partition serving a logical page address.
func (f *FTL) ChipOf(lba int) int {
	if lba < 0 {
		return -1
	}
	return lba % f.chips
}

// Stats returns a snapshot of the FTL counters.
func (f *FTL) Stats() Stats {
	s := Stats{
		HostReads:        f.stats.hostReads.Load(),
		HostWrites:       f.stats.hostWrites.Load(),
		HostWriteDeltas:  f.stats.hostWriteDeltas.Load(),
		HostBytesRead:    f.stats.hostBytesRead.Load(),
		HostBytesWritten: f.stats.hostBytesWritten.Load(),
		InPlaceAppends:   f.stats.inPlaceAppends.Load(),
		OutOfPlaceWrites: f.stats.outOfPlaceWrites.Load(),
		Invalidations:    f.stats.invalidations.Load(),
	}
	for _, p := range f.parts {
		s.GCRuns += p.gcRuns.Load()
		s.GCMigrations += p.gcMigrations.Load()
		s.GCErases += p.gcErases.Load()
	}
	return s
}

// ChipStats returns the per-chip GC activity and free-block state.
func (f *FTL) ChipStats() []ChipStats {
	out := make([]ChipStats, len(f.parts))
	for i, p := range f.parts {
		p.mu.Lock()
		free := len(p.free)
		p.mu.Unlock()
		out[i] = ChipStats{
			Chip:          i,
			GCRuns:        p.gcRuns.Load(),
			GCMigrations:  p.gcMigrations.Load(),
			GCErases:      p.gcErases.Load(),
			FreeBlocks:    free,
			ExportedPages: f.exportedPerChip,
		}
	}
	return out
}

// ResetStats clears all counters (used after benchmark load phases).
func (f *FTL) ResetStats() {
	f.stats.reset()
	for _, p := range f.parts {
		p.gcRuns.Store(0)
		p.gcMigrations.Store(0)
		p.gcErases.Store(0)
	}
}

// ppa helpers.
func (f *FTL) ppaOf(block, page int) int32 { return int32(block*f.geo.PagesPerBlock + page) }
func (f *FTL) blockOf(ppa int32) int       { return int(ppa) / f.geo.PagesPerBlock }
func (f *FTL) pageOf(ppa int32) int        { return int(ppa) % f.geo.PagesPerBlock }

// part returns the partition owning a logical page address.
func (f *FTL) part(lba int) *partition { return f.parts[lba%f.chips] }

// Mapped reports whether the logical page has been written.
func (f *FTL) Mapped(lba int) bool {
	if lba < 0 || lba >= len(f.l2p) {
		return false
	}
	p := f.part(lba)
	p.mu.Lock()
	defer p.mu.Unlock()
	return f.l2p[lba] >= 0
}

// IsAppendTarget reports whether the physical page currently backing lba
// may accept further in-place appends (flash-mode safety and budget); it
// does not consider the content about to be appended.
func (f *FTL) IsAppendTarget(lba int) bool {
	if lba < 0 || lba >= len(f.l2p) {
		return false
	}
	p := f.part(lba)
	p.mu.Lock()
	defer p.mu.Unlock()
	ppa, err := f.mappedPPA(lba)
	if err != nil {
		return false
	}
	return f.appendableLocked(ppa)
}

func (f *FTL) appendableLocked(ppa int32) bool {
	if !nand.AppendSafe(f.dev.CellType(), f.cfg.FlashMode, f.pageOf(ppa)) {
		return false
	}
	return int(f.appends[ppa]) < f.cfg.MaxAppendsPerPage
}

func (f *FTL) mappedPPA(lba int) (int32, error) {
	if lba < 0 || lba >= len(f.l2p) {
		return -1, fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	ppa := f.l2p[lba]
	if ppa < 0 {
		return -1, fmt.Errorf("%w: %d", ErrUnmapped, lba)
	}
	return ppa, nil
}

// ReadPage reads the logical page into buf (PageSize bytes). The partition
// lock is held across the device read: a same-chip GC run could otherwise
// migrate and erase the mapped page mid-read. Reads on different chips
// still proceed in parallel, and same-chip commands serialise at the chip
// anyway.
func (f *FTL) ReadPage(lba int, buf []byte) error {
	if lba < 0 || lba >= len(f.l2p) {
		return fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	p := f.part(lba)
	p.mu.Lock()
	defer p.mu.Unlock()
	ppa, err := f.mappedPPA(lba)
	if err != nil {
		return err
	}
	f.stats.hostReads.Add(1)
	f.stats.hostBytesRead.Add(uint64(len(buf)))
	return f.dev.ReadPage(f.blockOf(ppa), f.pageOf(ppa), buf)
}

// WritePage writes a full logical page. With InPlaceMerge enabled the FTL
// first attempts to program the new image onto the currently mapped
// physical page (possible when the only changed bits are 1->0, i.e. the
// image only gained appended delta records); otherwise the page is written
// out-of-place and the old physical page is invalidated. The first return
// value reports whether the write was served in place.
func (f *FTL) WritePage(lba int, data []byte) (bool, error) {
	if len(data) != f.geo.PageSize {
		return false, fmt.Errorf("ftl: WritePage buffer %d bytes, want %d", len(data), f.geo.PageSize)
	}
	if lba < 0 || lba >= len(f.l2p) {
		return false, fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	p := f.part(lba)
	p.mu.Lock()
	defer p.mu.Unlock()
	f.stats.hostWrites.Add(1)
	f.stats.hostBytesWritten.Add(uint64(len(data)))

	if f.cfg.InPlaceMerge {
		if ppa := f.l2p[lba]; ppa >= 0 && f.appendableLocked(ppa) {
			if err := f.tryInPlaceLocked(ppa, data); err == nil {
				f.appends[ppa]++
				f.stats.inPlaceAppends.Add(1)
				return true, nil
			}
		}
	}
	return false, p.writeOutOfPlaceLocked(lba, data)
}

// WritePageOut writes a full logical page strictly out-of-place, never
// attempting an in-place merge even if the image happens to be bit-wise
// programmable onto the mapped physical page. Body rewrites must use this
// path: only delta-area appends are framed by per-record checksums and
// commit markers, so only they survive a torn in-place program detectably.
// A torn in-place BODY program would keep the old mapping tag valid while
// leaving an old/new byte mix — silent corruption. (Out-of-place programs
// are safe: a torn copy never validates its tag, so recovery falls back to
// the previous complete copy.)
func (f *FTL) WritePageOut(lba int, data []byte) error {
	if len(data) != f.geo.PageSize {
		return fmt.Errorf("ftl: WritePageOut buffer %d bytes, want %d", len(data), f.geo.PageSize)
	}
	if lba < 0 || lba >= len(f.l2p) {
		return fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	p := f.part(lba)
	p.mu.Lock()
	defer p.mu.Unlock()
	f.stats.hostWrites.Add(1)
	f.stats.hostBytesWritten.Add(uint64(len(data)))
	return p.writeOutOfPlaceLocked(lba, data)
}

// tryInPlaceLocked attempts to program data over the existing physical
// page. The device enforces the bit-clear-only rule, so an image that
// changed anything besides appended (previously erased) bytes fails and the
// caller falls back to an out-of-place write.
func (f *FTL) tryInPlaceLocked(ppa int32, data []byte) error {
	block, page := f.blockOf(ppa), f.pageOf(ppa)
	// The re-program writes the same cover/tail ECC header over itself (a
	// no-op on identical bits); the mapping tag from the page's original
	// out-of-place program stays valid — an in-place merge is not a new
	// version of the logical page, only a superset of its bits.
	err := f.dev.ProgramPageCovered(block, page, data, f.cfg.EccCoverBytes, f.cfg.EccTailBytes)
	if err == nil {
		return nil
	}
	if errors.Is(err, nand.ErrOverwriteViolation) || errors.Is(err, nand.ErrNOPExceeded) {
		return ErrNotAppendable
	}
	return err
}

// WriteDelta appends delta bytes at the given page offset to the physical
// page currently backing lba (the write_delta command of the native-Flash
// architecture). It fails with ErrNotAppendable when the mapped page cannot
// take the append, in which case the caller must issue a full WritePage.
func (f *FTL) WriteDelta(lba, offset int, delta []byte) error {
	if lba < 0 || lba >= len(f.l2p) {
		return fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	// The partition lock is held across the device program so a same-chip
	// GC run cannot migrate the page out from under the append (which
	// would drop the delta and charge the append budget to a stale
	// physical page). Appends on different chips run in parallel.
	p := f.part(lba)
	p.mu.Lock()
	defer p.mu.Unlock()
	ppa, err := f.mappedPPA(lba)
	if err != nil {
		return err
	}
	if !f.appendableLocked(ppa) {
		return ErrNotAppendable
	}
	f.stats.hostWriteDeltas.Add(1)
	f.stats.hostBytesWritten.Add(uint64(len(delta)))

	_, err = f.dev.ProgramDelta(f.blockOf(ppa), f.pageOf(ppa), offset, delta)
	if err != nil {
		if errors.Is(err, nand.ErrOverwriteViolation) || errors.Is(err, nand.ErrNOPExceeded) ||
			errors.Is(err, flashdev.ErrNoDeltaSlot) {
			return ErrNotAppendable
		}
		return err
	}
	f.appends[ppa]++
	f.stats.inPlaceAppends.Add(1)
	return nil
}

// Trim invalidates the mapping of a logical page (e.g. when a database
// object is dropped).
func (f *FTL) Trim(lba int) error {
	if lba < 0 || lba >= len(f.l2p) {
		return fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	p := f.part(lba)
	p.mu.Lock()
	defer p.mu.Unlock()
	if ppa := f.l2p[lba]; ppa >= 0 {
		f.invalidateLocked(ppa)
		f.l2p[lba] = -1
	}
	return nil
}

// writeOutOfPlaceLocked performs a traditional out-of-place update within
// the partition.
func (p *partition) writeOutOfPlaceLocked(lba int, data []byte) error {
	f := p.f
	ppa, err := p.allocatePageLocked()
	if err != nil {
		return err
	}
	block, page := f.blockOf(ppa), f.pageOf(ppa)
	// Every out-of-place program carries the mapping tag (lba, seq): crash
	// recovery scans the tags to rebuild l2p and order stale copies.
	if err := f.dev.ProgramPageTagged(block, page, data, f.cfg.EccCoverBytes, f.cfg.EccTailBytes, lba, f.seq.Add(1)); err != nil {
		return err
	}
	if old := f.l2p[lba]; old >= 0 {
		f.invalidateLocked(old)
		f.stats.invalidations.Add(1)
	}
	f.l2p[lba] = ppa
	f.p2l[ppa] = int32(lba)
	f.appends[ppa] = 0
	f.blocks[f.blockOf(ppa)].validCount++
	f.stats.outOfPlaceWrites.Add(1)
	return nil
}

func (f *FTL) invalidateLocked(ppa int32) {
	if f.p2l[ppa] >= 0 {
		f.p2l[ppa] = -1
		f.blocks[f.blockOf(ppa)].validCount--
	}
}

// allocatePageLocked returns the next writable physical page of the
// partition, running the garbage collector when its free blocks run low.
func (p *partition) allocatePageLocked() (int32, error) {
	f := p.f
	for {
		if p.active >= 0 {
			blk := &f.blocks[p.active]
			for blk.nextPage < f.geo.PagesPerBlock {
				pg := blk.nextPage
				blk.nextPage++
				if nand.PageUsable(f.dev.CellType(), f.cfg.FlashMode, pg) {
					return f.ppaOf(p.active, pg), nil
				}
			}
			// Active block is full.
			blk.state = blockUsed
			p.active = -1
		}
		if err := p.ensureFreeLocked(); err != nil {
			return -1, err
		}
		// Garbage collection may have installed (and partially filled) a
		// new active block for its migrations; keep using it instead of
		// leaking it.
		if p.active >= 0 {
			continue
		}
		p.active = p.popFreeLocked()
		f.blocks[p.active].state = blockActive
		f.blocks[p.active].nextPage = 0
	}
}

// popFreeLocked removes and returns the free block with the lowest cached
// erase count (simple wear levelling). The cache is maintained on every
// erase, so no device call is needed.
func (p *partition) popFreeLocked() int {
	f := p.f
	best, bestIdx, bestWear := -1, -1, int(^uint(0)>>1)
	for i, b := range p.free {
		if wear := f.blocks[b].eraseCount; wear < bestWear {
			best, bestIdx, bestWear = b, i, wear
		}
	}
	p.free = append(p.free[:bestIdx], p.free[bestIdx+1:]...)
	return best
}

// ensureFreeLocked runs garbage collection until the partition's free-block
// pool is above the low-water mark.
func (p *partition) ensureFreeLocked() error {
	if len(p.free) > p.f.cfg.GCLowWater {
		return nil
	}
	p.gcRuns.Add(1)
	for len(p.free) < p.f.cfg.GCHighWater {
		victim := p.pickVictimLocked()
		if victim < 0 {
			if len(p.free) > 0 {
				return nil
			}
			return ErrDeviceFull
		}
		if err := p.collectBlockLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// pickVictimLocked selects the partition's used block with the fewest valid
// pages (greedy policy). It returns -1 when no block can be reclaimed.
func (p *partition) pickVictimLocked() int {
	f := p.f
	best, bestValid := -1, int(^uint(0)>>1)
	for b := p.firstBlock; b < p.firstBlock+f.blocksPerChip; b++ {
		blk := &f.blocks[b]
		if blk.state != blockUsed {
			continue
		}
		if blk.validCount < bestValid {
			best, bestValid = b, blk.validCount
		}
	}
	if best >= 0 && bestValid >= f.usablePerBlock {
		// Every page of every candidate is valid: reclaiming would only
		// move data without freeing space.
		return -1
	}
	return best
}

// collectBlockLocked migrates the valid pages of the victim block and
// erases it. All migration targets stay within the partition, so GC on one
// chip never touches — or waits for — another chip.
func (p *partition) collectBlockLocked(victim int) error {
	f := p.f
	for pg := 0; pg < f.geo.PagesPerBlock; pg++ {
		ppa := f.ppaOf(victim, pg)
		lba := f.p2l[ppa]
		if lba < 0 {
			continue
		}
		dst, err := p.allocateForGCLocked(victim)
		if err != nil {
			return err
		}
		if err := f.dev.CopyPage(victim, pg, f.blockOf(dst), f.pageOf(dst)); err != nil {
			return err
		}
		p.gcMigrations.Add(1)
		f.p2l[ppa] = -1
		f.blocks[victim].validCount--
		f.l2p[lba] = dst
		f.p2l[dst] = lba
		f.appends[dst] = f.appends[ppa]
		f.appends[ppa] = 0
		f.blocks[f.blockOf(dst)].validCount++
	}
	if err := f.dev.EraseBlock(victim); err != nil {
		return err
	}
	p.gcErases.Add(1)
	for pg := 0; pg < f.geo.PagesPerBlock; pg++ {
		f.appends[f.ppaOf(victim, pg)] = 0
	}
	f.blocks[victim].state = blockFree
	f.blocks[victim].validCount = 0
	f.blocks[victim].nextPage = 0
	f.blocks[victim].eraseCount++
	p.free = append(p.free, victim)
	return nil
}

// allocateForGCLocked allocates a destination page for a GC migration. It
// must never trigger recursive garbage collection, so it only consumes the
// partition's active block and free pool.
func (p *partition) allocateForGCLocked(victim int) (int32, error) {
	f := p.f
	for {
		if p.active >= 0 && p.active != victim {
			blk := &f.blocks[p.active]
			for blk.nextPage < f.geo.PagesPerBlock {
				pg := blk.nextPage
				blk.nextPage++
				if nand.PageUsable(f.dev.CellType(), f.cfg.FlashMode, pg) {
					return f.ppaOf(p.active, pg), nil
				}
			}
			blk.state = blockUsed
			p.active = -1
		}
		if p.active == victim {
			f.blocks[p.active].state = blockUsed
			p.active = -1
		}
		if len(p.free) == 0 {
			return -1, ErrDeviceFull
		}
		p.active = p.popFreeLocked()
		f.blocks[p.active].state = blockActive
		f.blocks[p.active].nextPage = 0
	}
}

// Utilization returns the fraction of exported logical pages currently
// mapped.
func (f *FTL) Utilization() float64 {
	mapped := 0
	for _, p := range f.parts {
		p.mu.Lock()
		for lba := p.chip; lba < len(f.l2p); lba += f.chips {
			if f.l2p[lba] >= 0 {
				mapped++
			}
		}
		p.mu.Unlock()
	}
	return float64(mapped) / float64(len(f.l2p))
}

// FreeBlocks returns the current number of free blocks across all chips.
func (f *FTL) FreeBlocks() int {
	n := 0
	for _, p := range f.parts {
		p.mu.Lock()
		n += len(p.free)
		p.mu.Unlock()
	}
	return n
}

// DebugSummary reports the internal occupancy state of the FTL; it exists
// for tests and troubleshooting.
func (f *FTL) DebugSummary() string {
	for _, p := range f.parts {
		p.mu.Lock()
	}
	defer func() {
		for _, p := range f.parts {
			p.mu.Unlock()
		}
	}()
	mapped := 0
	for _, ppa := range f.l2p {
		if ppa >= 0 {
			mapped++
		}
	}
	validP2L := 0
	for _, lba := range f.p2l {
		if lba >= 0 {
			validP2L++
		}
	}
	sumValid, freeBlocks, usedBlocks, activeBlocks, fullyValid := 0, 0, 0, 0, 0
	for b := range f.blocks {
		sumValid += f.blocks[b].validCount
		switch f.blocks[b].state {
		case blockFree:
			freeBlocks++
		case blockActive:
			activeBlocks++
		case blockUsed:
			usedBlocks++
			if f.blocks[b].validCount >= f.usablePerBlock {
				fullyValid++
			}
		}
	}
	freeList := 0
	for _, p := range f.parts {
		freeList += len(p.free)
	}
	return fmt.Sprintf("chips=%d mapped=%d validP2L=%d sumValidCount=%d blocks[free=%d active=%d used=%d fullyValid=%d] freeList=%d usablePerBlock=%d exported=%d",
		f.chips, mapped, validP2L, sumValid, freeBlocks, activeBlocks, usedBlocks, fullyValid, freeList, f.usablePerBlock, f.exportedPages)
}
