package ftl

import (
	"bytes"
	"sync"
	"testing"

	"ipa/internal/flashdev"
	"ipa/internal/nand"
)

func testMultiChipDevice(t *testing.T, chips int) *flashdev.Device {
	t.Helper()
	dev, err := flashdev.New(flashdev.Config{
		Chips: chips,
		Chip: nand.Config{
			Geometry: nand.Geometry{
				Blocks:        32,
				PagesPerBlock: 16,
				PageSize:      2048,
				OOBSize:       128,
			},
			Cell:            nand.MLC,
			StrictOverwrite: true,
			Seed:            5,
		},
		Latency: flashdev.DefaultLatencyModel(),
	})
	if err != nil {
		t.Fatalf("flashdev.New: %v", err)
	}
	return dev
}

// TestMultiChipCapacityScales verifies that the exported capacity of a
// 4-chip FTL is exactly four single-chip partitions.
func TestMultiChipCapacityScales(t *testing.T) {
	one, err := New(testMultiChipDevice(t, 1), DefaultConfig())
	if err != nil {
		t.Fatalf("New(1): %v", err)
	}
	four, err := New(testMultiChipDevice(t, 4), DefaultConfig())
	if err != nil {
		t.Fatalf("New(4): %v", err)
	}
	if four.Capacity() != 4*one.Capacity() {
		t.Fatalf("4-chip capacity %d, want 4x single-chip %d", four.Capacity(), one.Capacity())
	}
	if four.Chips() != 4 {
		t.Fatalf("Chips() = %d", four.Chips())
	}
}

// TestWritesLandOnTheirChip verifies the lba -> chip striping: the physical
// pages backing a logical page always live on chip lba mod chips.
func TestWritesLandOnTheirChip(t *testing.T) {
	dev := testMultiChipDevice(t, 4)
	f, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Write a handful of pages per chip, interleaved.
	for lba := 0; lba < 32; lba++ {
		if _, err := f.WritePage(lba, pageImage(f.PageSize(), byte(lba))); err != nil {
			t.Fatalf("WritePage %d: %v", lba, err)
		}
	}
	per := dev.PerChipStats()
	for c := 0; c < 4; c++ {
		if per[c].PagePrograms != 8 {
			t.Fatalf("chip %d got %d programs, want 8 (striping broken): %+v", c, per[c].PagePrograms, per)
		}
	}
	if f.ChipOf(5) != 1 || f.ChipOf(8) != 0 || f.ChipOf(-1) != -1 {
		t.Fatalf("ChipOf wrong")
	}
}

// TestPerChipGCIndependence overwrites only chip 2's logical pages until GC
// must run, and verifies the other partitions never garbage collect.
func TestPerChipGCIndependence(t *testing.T) {
	dev := testMultiChipDevice(t, 4)
	f, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const chip = 2
	perChip := f.Capacity() / 4
	hot := 10
	writes := perChip * 4
	for i := 0; i < writes; i++ {
		lba := chip + 4*(i%hot) // stays on chip 2
		if _, err := f.WritePage(lba, pageImage(f.PageSize(), byte(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	cs := f.ChipStats()
	if cs[chip].GCRuns == 0 || cs[chip].GCErases == 0 {
		t.Fatalf("chip %d never garbage collected: %+v", chip, cs)
	}
	for c := 0; c < 4; c++ {
		if c == chip {
			continue
		}
		if cs[c].GCRuns != 0 || cs[c].GCErases != 0 {
			t.Fatalf("idle chip %d garbage collected: %+v", c, cs)
		}
	}
	// The hot pages keep their latest content.
	got := make([]byte, f.PageSize())
	for i := writes - hot; i < writes; i++ {
		lba := chip + 4*(i%hot)
		if err := f.ReadPage(lba, got); err != nil {
			t.Fatalf("ReadPage %d: %v", lba, err)
		}
	}
	if s := f.Stats(); s.GCRuns != cs[chip].GCRuns {
		t.Fatalf("global GC stats should equal the single active chip: %+v vs %+v", s, cs)
	}
}

// TestMultiChipGCPreservesData runs the high-utilisation overwrite workload
// over all four chips and verifies every page survives GC migrations.
func TestMultiChipGCPreservesData(t *testing.T) {
	f, err := New(testMultiChipDevice(t, 4), DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	working := f.Capacity() * 7 / 10
	latest := make(map[int]byte, working)
	for lba := 0; lba < working; lba++ {
		if _, err := f.WritePage(lba, pageImage(f.PageSize(), byte(lba))); err != nil {
			t.Fatalf("populate %d: %v", lba, err)
		}
		latest[lba] = byte(lba)
	}
	x := uint32(12345)
	for i := 0; i < working*4; i++ {
		x = x*1664525 + 1013904223
		lba := int(x>>8) % working
		seed := byte(i)
		if _, err := f.WritePage(lba, pageImage(f.PageSize(), seed)); err != nil {
			t.Fatalf("rewrite %d: %v", i, err)
		}
		latest[lba] = seed
	}
	if f.Stats().GCMigrations == 0 {
		t.Fatalf("expected GC migrations under high utilisation: %+v", f.Stats())
	}
	got := make([]byte, f.PageSize())
	for lba := 0; lba < working; lba++ {
		if err := f.ReadPage(lba, got); err != nil {
			t.Fatalf("ReadPage %d: %v", lba, err)
		}
		if !bytes.Equal(got, pageImage(f.PageSize(), latest[lba])) {
			t.Fatalf("page %d lost its latest version after GC", lba)
		}
	}
}

// TestConcurrentChipHammer drives every chip from its own goroutine; under
// -race it proves partitions share no unsynchronised state even while GC
// runs on several chips at once.
func TestConcurrentChipHammer(t *testing.T) {
	dev := testMultiChipDevice(t, 4)
	f, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	perChip := f.Capacity() / 4
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			hot := 12
			writes := perChip * 3 // forces GC on every chip
			buf := make([]byte, f.PageSize())
			for i := 0; i < writes; i++ {
				lba := c + 4*(i%hot)
				if _, err := f.WritePage(lba, pageImage(f.PageSize(), byte(i+c))); err != nil {
					t.Errorf("chip %d write %d: %v", c, i, err)
					return
				}
				if i%7 == 0 {
					if err := f.ReadPage(lba, buf); err != nil {
						t.Errorf("chip %d read %d: %v", c, i, err)
						return
					}
				}
			}
		}(c)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = f.Stats()
				_ = f.FreeBlocks()
			}
		}
	}()
	wg.Wait()
	close(done)
	s := f.Stats()
	if s.GCRuns == 0 {
		t.Fatalf("hammer never triggered GC: %+v", s)
	}
	cs := f.ChipStats()
	for c := 0; c < 4; c++ {
		if cs[c].GCErases == 0 {
			t.Fatalf("chip %d never erased under hammer: %+v", c, cs)
		}
	}
}

// TestEraseCountCacheMatchesDevice verifies the satellite fix: the FTL's
// cached per-block erase counts stay in sync with the device across GC, so
// wear levelling needs no device calls.
func TestEraseCountCacheMatchesDevice(t *testing.T) {
	dev := testMultiChipDevice(t, 2)
	f, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hot := 8
	for i := 0; i < f.Capacity()*3; i++ {
		lba := i % hot
		if _, err := f.WritePage(lba, pageImage(f.PageSize(), byte(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if f.Stats().GCErases == 0 {
		t.Fatalf("workload never erased")
	}
	for b := 0; b < f.geo.Blocks; b++ {
		want, err := dev.BlockEraseCount(b)
		if err != nil {
			t.Fatalf("BlockEraseCount(%d): %v", b, err)
		}
		if got := f.blocks[b].eraseCount; got != want {
			t.Fatalf("block %d cached erase count %d, device says %d", b, got, want)
		}
	}
}
