package ftl

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ipa/internal/flashdev"
	"ipa/internal/nand"
)

// RebuildReport summarises what a crash-recovery scan found on the device.
type RebuildReport struct {
	PagesScanned int // programmed physical pages inspected
	LivePages    int // pages installed as the newest copy of a logical page
	StalePages   int // valid copies that lost the sequence race
	GarbagePages int // programmed pages with no usable content (torn programs)
	// Scrub lists the logical pages whose winning physical copy carries a
	// torn in-place append: they are readable only through SalvageRead and
	// must be rewritten out of place before normal reads resume.
	Scrub []int
	// MaxLBA is the highest logical page address found mapped (-1 if none).
	MaxLBA int
	// MaxSeq is the highest write sequence number seen on the device.
	MaxSeq uint64
	// Parallelism is the number of concurrent scan goroutines used (one
	// per chip for Rebuild, 1 for RebuildSerial).
	Parallelism int
	// ScanVirtual is the simulated duration of the device scan: the
	// chip-parallel scan drives all flash channels at once, so it costs
	// the busiest chip's read time; the serial oracle reads one chip at a
	// time and costs the sum. Their ratio is the modelled recovery
	// speedup of chip parallelism.
	ScanVirtual time.Duration
}

// rebuildPage is one candidate mapping discovered by the scan.
type rebuildPage struct {
	ppa  int32
	seq  uint64
	torn bool
	recs int
}

// Rebuild reconstructs an FTL from a surviving Flash image: it scans every
// physical page, validates the OOB mapping tags and ECC, keeps the
// highest-sequence valid copy of each logical page and rebuilds the block
// states, free lists, append budgets and the write sequence counter. It is
// the device half of the crash-recovery path: after a power cut the
// in-memory translation state is gone and the tags are all that is left.
//
// The scan runs chip-parallel: one goroutine per chip walks that chip's
// blocks. Logical pages stripe across chips (lba % chips) and the tag
// validation rejects any copy found off its chip, so the per-chip winner
// maps are disjoint and merge trivially; the result is bit-identical to
// RebuildSerial, the single-threaded oracle.
func Rebuild(dev *flashdev.Device, cfg Config) (*FTL, *RebuildReport, error) {
	return rebuild(dev, cfg, true)
}

// RebuildSerial is the single-threaded rebuild, kept as the oracle the
// equivalence tests compare the chip-parallel scan against.
func RebuildSerial(dev *flashdev.Device, cfg Config) (*FTL, *RebuildReport, error) {
	return rebuild(dev, cfg, false)
}

func rebuild(dev *flashdev.Device, cfg Config, parallel bool) (*FTL, *RebuildReport, error) {
	f, err := newSkeleton(dev, cfg)
	if err != nil {
		return nil, nil, err
	}
	report := &RebuildReport{MaxLBA: -1, Parallelism: 1}
	winners := make(map[int]rebuildPage)
	blockProgrammed := make([]bool, f.geo.Blocks)
	clocksBefore := dev.ChipClocks()

	if parallel && f.chips > 1 {
		report.Parallelism = f.chips
		partials := make([]RebuildReport, f.chips)
		maps := make([]map[int]rebuildPage, f.chips)
		errs := make([]error, f.chips)
		var wg sync.WaitGroup
		for c := 0; c < f.chips; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				maps[c] = make(map[int]rebuildPage)
				// Chips share nothing: the goroutine reads its own chip's
				// blocks and writes its own slice of blockProgrammed.
				errs[c] = f.scanBlocks(dev, c*f.blocksPerChip, (c+1)*f.blocksPerChip,
					maps[c], blockProgrammed, &partials[c])
			}(c)
		}
		wg.Wait()
		for c := 0; c < f.chips; c++ {
			if errs[c] != nil {
				return nil, nil, errs[c]
			}
			report.PagesScanned += partials[c].PagesScanned
			report.StalePages += partials[c].StalePages
			report.GarbagePages += partials[c].GarbagePages
			if partials[c].MaxSeq > report.MaxSeq {
				report.MaxSeq = partials[c].MaxSeq
			}
			for lba, w := range maps[c] {
				winners[lba] = w
			}
		}
	} else if err := f.scanBlocks(dev, 0, f.geo.Blocks, winners, blockProgrammed, report); err != nil {
		return nil, nil, err
	}

	// Charge the scan's virtual cost: the busiest channel when the chips
	// were scanned concurrently, the sum of all channels when one
	// goroutine walked them in turn.
	for i, after := range dev.ChipClocks() {
		dt := after - clocksBefore[i]
		if parallel && f.chips > 1 {
			if dt > report.ScanVirtual {
				report.ScanVirtual = dt
			}
		} else {
			report.ScanVirtual += dt
		}
	}

	// Install the winners.
	for lba, w := range winners {
		f.l2p[lba] = w.ppa
		f.p2l[w.ppa] = int32(lba)
		f.blocks[f.blockOf(w.ppa)].validCount++
		appends := w.recs
		if progs := w.progsOf(dev, f); progs-1 > appends {
			appends = progs - 1
		}
		if appends > 255 {
			appends = 255
		}
		f.appends[w.ppa] = uint8(appends)
		if lba > report.MaxLBA {
			report.MaxLBA = lba
		}
		if w.torn {
			report.Scrub = append(report.Scrub, lba)
		}
		report.LivePages++
	}
	f.seq.Store(report.MaxSeq)
	sort.Ints(report.Scrub) // deterministic scrub (and recovery fault-point) order

	// Block states and free lists: fully erased blocks are free, everything
	// that holds charge — including the partially filled block that was
	// active at the crash and blocks whose erase was interrupted — is used
	// and will be reclaimed by garbage collection.
	for c := 0; c < f.chips; c++ {
		p := f.parts[c]
		for b := (c+1)*f.blocksPerChip - 1; b >= c*f.blocksPerChip; b-- {
			if blockProgrammed[b] {
				f.blocks[b].state = blockUsed
				f.blocks[b].nextPage = f.geo.PagesPerBlock
			} else {
				f.blocks[b].state = blockFree
				f.blocks[b].nextPage = 0
				p.free = append(p.free, b)
			}
		}
	}
	return f, report, nil
}

// scanBlocks walks the physical blocks [lo, hi), validating mapping tags
// and collecting the candidate winners into the given map and the scan
// counters into report (MaxLBA/LivePages/Scrub are derived later, at
// winner installation). Concurrent calls must use disjoint block ranges
// and private winner maps/reports; blockProgrammed is shared but each call
// touches only its own indices.
func (f *FTL) scanBlocks(dev *flashdev.Device, lo, hi int, winners map[int]rebuildPage, blockProgrammed []bool, report *RebuildReport) error {
	buf := make([]byte, f.geo.PageSize)
	for b := lo; b < hi; b++ {
		for pg := 0; pg < f.geo.PagesPerBlock; pg++ {
			scan, err := dev.ScanPage(b, pg, buf)
			if err != nil {
				return fmt.Errorf("ftl: rebuild scan block %d page %d: %w", b, pg, err)
			}
			if !scan.Programmed {
				continue
			}
			blockProgrammed[b] = true
			report.PagesScanned++
			if scan.Seq > report.MaxSeq {
				report.MaxSeq = scan.Seq
			}
			if !scan.Tagged || !scan.BodyValid {
				// A torn program (or a page from before tagging): nothing
				// recoverable here; the previous copy of the logical page,
				// wherever it lives, stays authoritative.
				report.GarbagePages++
				continue
			}
			if scan.LBA < 0 || scan.LBA >= len(f.l2p) || scan.LBA%f.chips != dev.ChipOf(b) {
				// A tag that points outside the exported range or off its
				// own chip cannot be real: logical pages never change chip.
				report.GarbagePages++
				continue
			}
			cand := rebuildPage{ppa: f.ppaOf(b, pg), seq: scan.Seq, torn: scan.Torn, recs: scan.Records}
			cur, ok := winners[scan.LBA]
			switch {
			case !ok:
				winners[scan.LBA] = cand
			case cand.seq > cur.seq:
				// Newer copy wins; the old one is stale.
				winners[scan.LBA] = cand
				report.StalePages++
			default:
				// Equal sequence numbers only arise from a crash between a
				// GC copy-back and its erase; the copies are identical, the
				// first one found stays.
				report.StalePages++
			}
		}
	}
	return nil
}

// progsOf returns the program count of the winner's physical page, used to
// restore the in-place append budget on flash modes that append without
// consuming OOB slots (the conventional-SSD merge path).
func (w rebuildPage) progsOf(dev *flashdev.Device, f *FTL) int {
	progs, err := dev.PagePrograms(f.blockOf(w.ppa), f.pageOf(w.ppa))
	if err != nil {
		return 0
	}
	return progs
}

// SalvageRead reads the logical page through the tolerant recovery scan:
// unlike ReadPage it succeeds even when an interrupted append left a delta
// slot that fails its ECC. The returned image carries whatever bytes the
// power cut persisted; the delta-record commit markers let the layers above
// discard the torn tail.
func (f *FTL) SalvageRead(lba int, buf []byte) (flashdev.PageScan, error) {
	if lba < 0 || lba >= len(f.l2p) {
		return flashdev.PageScan{}, fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	p := f.part(lba)
	p.mu.Lock()
	defer p.mu.Unlock()
	ppa, err := f.mappedPPA(lba)
	if err != nil {
		return flashdev.PageScan{}, err
	}
	f.stats.hostReads.Add(1)
	f.stats.hostBytesRead.Add(uint64(len(buf)))
	return f.dev.ScanPage(f.blockOf(ppa), f.pageOf(ppa), buf)
}

// RewritePage writes a full logical page image strictly out of place,
// bypassing the in-place merge. Recovery uses it to scrub pages whose
// physical copy carries a torn append: the fresh copy gets a clean delta
// area and a new sequence tag, and the torn copy is invalidated.
func (f *FTL) RewritePage(lba int, data []byte) error {
	if len(data) != f.geo.PageSize {
		return fmt.Errorf("ftl: RewritePage buffer %d bytes, want %d", len(data), f.geo.PageSize)
	}
	if lba < 0 || lba >= len(f.l2p) {
		return fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	p := f.part(lba)
	p.mu.Lock()
	defer p.mu.Unlock()
	f.stats.hostWrites.Add(1)
	f.stats.hostBytesWritten.Add(uint64(len(data)))
	return p.writeOutOfPlaceLocked(lba, data)
}

// CheckConsistency validates the FTL's translation invariants: l2p and p2l
// are inverse on every mapped page, pages stay on their chip, and per-block
// valid counts match the mapping. It is the "FTL mapping validates" check
// of the crash-torture harness.
func (f *FTL) CheckConsistency() error {
	for _, p := range f.parts {
		p.mu.Lock()
	}
	defer func() {
		for _, p := range f.parts {
			p.mu.Unlock()
		}
	}()
	valid := make([]int, len(f.blocks))
	for lba, ppa := range f.l2p {
		if ppa < 0 {
			continue
		}
		if int(ppa) >= len(f.p2l) {
			return fmt.Errorf("ftl: lba %d maps to out-of-range ppa %d", lba, ppa)
		}
		if f.p2l[ppa] != int32(lba) {
			return fmt.Errorf("ftl: lba %d -> ppa %d but p2l says %d", lba, ppa, f.p2l[ppa])
		}
		if f.ChipOf(lba) != f.dev.ChipOf(f.blockOf(ppa)) {
			return fmt.Errorf("ftl: lba %d mapped off its chip (ppa %d)", lba, ppa)
		}
		if !nand.PageUsable(f.dev.CellType(), f.cfg.FlashMode, f.pageOf(ppa)) {
			return fmt.Errorf("ftl: lba %d mapped to unusable page %d", lba, f.pageOf(ppa))
		}
		valid[f.blockOf(ppa)]++
	}
	for ppa, lba := range f.p2l {
		if lba < 0 {
			continue
		}
		if int(lba) >= len(f.l2p) || f.l2p[lba] != int32(ppa) {
			return fmt.Errorf("ftl: ppa %d claims lba %d but l2p disagrees", ppa, lba)
		}
	}
	for b := range f.blocks {
		if f.blocks[b].validCount != valid[b] {
			return fmt.Errorf("ftl: block %d validCount %d, mapping says %d", b, f.blocks[b].validCount, valid[b])
		}
	}
	return nil
}
