package ftl

import (
	"bytes"
	"errors"
	"testing"

	"ipa/internal/flashdev"
	"ipa/internal/nand"
)

func rebuildDevice(t *testing.T, plan *nand.FaultPlan) *flashdev.Device {
	t.Helper()
	cfg := flashdev.Config{
		Chips: 2,
		Chip: nand.Config{
			Geometry:        nand.Geometry{Blocks: 16, PagesPerBlock: 8, PageSize: 1024, OOBSize: 128},
			Cell:            nand.SLC,
			StrictOverwrite: true,
			Seed:            11,
			Faults:          plan,
		},
		Latency: flashdev.DefaultLatencyModel(),
	}
	d, err := flashdev.New(cfg)
	if err != nil {
		t.Fatalf("device: %v", err)
	}
	return d
}

func rebuildConfig() Config {
	return Config{FlashMode: nand.ModeSLC, OverprovisionPct: 0.1}
}

// TestRebuildRecoversMapping writes and overwrites logical pages, then
// rebuilds a fresh FTL from the device alone and checks the newest content
// is mapped everywhere.
func TestRebuildRecoversMapping(t *testing.T) {
	dev := rebuildDevice(t, nil)
	f, err := New(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const pages = 20
	latest := make(map[int][]byte)
	for round := 0; round < 3; round++ {
		for lba := 0; lba < pages; lba++ {
			img := pageImage(1024, byte(lba*7+round))
			if _, err := f.WritePage(lba, img); err != nil {
				t.Fatalf("write lba %d round %d: %v", lba, round, err)
			}
			latest[lba] = img
		}
	}

	f2, report, err := Rebuild(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if report.LivePages != pages {
		t.Fatalf("rebuild found %d live pages, want %d", report.LivePages, pages)
	}
	if report.StalePages == 0 {
		t.Fatalf("overwrites must leave stale copies behind")
	}
	if err := f2.CheckConsistency(); err != nil {
		t.Fatalf("consistency: %v", err)
	}
	buf := make([]byte, 1024)
	for lba := 0; lba < pages; lba++ {
		if err := f2.ReadPage(lba, buf); err != nil {
			t.Fatalf("read lba %d: %v", lba, err)
		}
		if !bytes.Equal(buf, latest[lba]) {
			t.Fatalf("lba %d holds stale content after rebuild", lba)
		}
	}
	// The rebuilt FTL keeps working: more overwrites (forcing GC
	// eventually) still land.
	for round := 0; round < 6; round++ {
		for lba := 0; lba < pages; lba++ {
			if _, err := f2.WritePage(lba, pageImage(1024, byte(lba+100+round))); err != nil {
				t.Fatalf("post-rebuild write: %v", err)
			}
		}
	}
	if err := f2.CheckConsistency(); err != nil {
		t.Fatalf("consistency after post-rebuild writes: %v", err)
	}
}

// TestRebuildAfterTornWriteKeepsOldVersion tears an overwrite mid-program:
// the rebuilt mapping must fall back to the previous intact copy.
func TestRebuildAfterTornWriteKeepsOldVersion(t *testing.T) {
	plan := nand.NewFaultPlan(0, nand.CrashTorn)
	dev := rebuildDevice(t, plan)
	f, err := New(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	old := pageImage(1024, 1)
	if _, err := f.WritePage(4, old); err != nil {
		t.Fatalf("write: %v", err)
	}
	plan.Arm(1, nand.CrashTorn)
	if _, err := f.WritePage(4, pageImage(1024, 2)); !errors.Is(err, nand.ErrPowerLost) {
		t.Fatalf("expected torn overwrite to fail with power loss, got %v", err)
	}
	plan.PowerCycle()
	plan.Disarm()

	f2, report, err := Rebuild(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if err := f2.CheckConsistency(); err != nil {
		t.Fatalf("consistency: %v", err)
	}
	buf := make([]byte, 1024)
	if err := f2.ReadPage(4, buf); err != nil {
		t.Fatalf("read after torn overwrite: %v", err)
	}
	if !bytes.Equal(buf, old) {
		// Depending on the tear length the new program may have fully
		// persisted (then it wins with the higher seq) — but a partial
		// tear must never surface.
		if !bytes.Equal(buf, pageImage(1024, 2)) {
			t.Fatalf("rebuild surfaced a torn page image (garbage=%d)", report.GarbagePages)
		}
	}
}

// TestRebuildAfterInterruptedErase leaves a block half-erased and checks
// the stale survivors lose against the migrated copies.
func TestRebuildAfterInterruptedErase(t *testing.T) {
	dev := rebuildDevice(t, nil)
	f, err := New(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Fill enough to trigger GC erases organically.
	latest := make(map[int][]byte)
	for round := 0; round < 10; round++ {
		for lba := 0; lba < 24; lba++ {
			img := pageImage(1024, byte(lba+round*5))
			if _, err := f.WritePage(lba, img); err != nil {
				t.Fatalf("write: %v", err)
			}
			latest[lba] = img
		}
	}
	if f.Stats().GCErases == 0 {
		t.Skipf("calibration: GC never ran")
	}
	f2, _, err := Rebuild(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if err := f2.CheckConsistency(); err != nil {
		t.Fatalf("consistency: %v", err)
	}
	buf := make([]byte, 1024)
	for lba := 0; lba < 24; lba++ {
		if err := f2.ReadPage(lba, buf); err != nil {
			t.Fatalf("read lba %d: %v", lba, err)
		}
		if !bytes.Equal(buf, latest[lba]) {
			t.Fatalf("lba %d stale after rebuild", lba)
		}
	}
}
