package ftl

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"ipa/internal/flashdev"
	"ipa/internal/nand"
)

func rebuildDevice(t *testing.T, plan *nand.FaultPlan) *flashdev.Device {
	t.Helper()
	cfg := flashdev.Config{
		Chips: 2,
		Chip: nand.Config{
			Geometry:        nand.Geometry{Blocks: 16, PagesPerBlock: 8, PageSize: 1024, OOBSize: 128},
			Cell:            nand.SLC,
			StrictOverwrite: true,
			Seed:            11,
			Faults:          plan,
		},
		Latency: flashdev.DefaultLatencyModel(),
	}
	d, err := flashdev.New(cfg)
	if err != nil {
		t.Fatalf("device: %v", err)
	}
	return d
}

func rebuildConfig() Config {
	return Config{FlashMode: nand.ModeSLC, OverprovisionPct: 0.1}
}

// TestRebuildRecoversMapping writes and overwrites logical pages, then
// rebuilds a fresh FTL from the device alone and checks the newest content
// is mapped everywhere.
func TestRebuildRecoversMapping(t *testing.T) {
	dev := rebuildDevice(t, nil)
	f, err := New(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const pages = 20
	latest := make(map[int][]byte)
	for round := 0; round < 3; round++ {
		for lba := 0; lba < pages; lba++ {
			img := pageImage(1024, byte(lba*7+round))
			if _, err := f.WritePage(lba, img); err != nil {
				t.Fatalf("write lba %d round %d: %v", lba, round, err)
			}
			latest[lba] = img
		}
	}

	f2, report, err := Rebuild(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if report.LivePages != pages {
		t.Fatalf("rebuild found %d live pages, want %d", report.LivePages, pages)
	}
	if report.StalePages == 0 {
		t.Fatalf("overwrites must leave stale copies behind")
	}
	if err := f2.CheckConsistency(); err != nil {
		t.Fatalf("consistency: %v", err)
	}
	buf := make([]byte, 1024)
	for lba := 0; lba < pages; lba++ {
		if err := f2.ReadPage(lba, buf); err != nil {
			t.Fatalf("read lba %d: %v", lba, err)
		}
		if !bytes.Equal(buf, latest[lba]) {
			t.Fatalf("lba %d holds stale content after rebuild", lba)
		}
	}
	// The rebuilt FTL keeps working: more overwrites (forcing GC
	// eventually) still land.
	for round := 0; round < 6; round++ {
		for lba := 0; lba < pages; lba++ {
			if _, err := f2.WritePage(lba, pageImage(1024, byte(lba+100+round))); err != nil {
				t.Fatalf("post-rebuild write: %v", err)
			}
		}
	}
	if err := f2.CheckConsistency(); err != nil {
		t.Fatalf("consistency after post-rebuild writes: %v", err)
	}
}

// TestRebuildAfterTornWriteKeepsOldVersion tears an overwrite mid-program:
// the rebuilt mapping must fall back to the previous intact copy.
func TestRebuildAfterTornWriteKeepsOldVersion(t *testing.T) {
	plan := nand.NewFaultPlan(0, nand.CrashTorn)
	dev := rebuildDevice(t, plan)
	f, err := New(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	old := pageImage(1024, 1)
	if _, err := f.WritePage(4, old); err != nil {
		t.Fatalf("write: %v", err)
	}
	plan.Arm(1, nand.CrashTorn)
	if _, err := f.WritePage(4, pageImage(1024, 2)); !errors.Is(err, nand.ErrPowerLost) {
		t.Fatalf("expected torn overwrite to fail with power loss, got %v", err)
	}
	plan.PowerCycle()
	plan.Disarm()

	f2, report, err := Rebuild(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if err := f2.CheckConsistency(); err != nil {
		t.Fatalf("consistency: %v", err)
	}
	buf := make([]byte, 1024)
	if err := f2.ReadPage(4, buf); err != nil {
		t.Fatalf("read after torn overwrite: %v", err)
	}
	if !bytes.Equal(buf, old) {
		// Depending on the tear length the new program may have fully
		// persisted (then it wins with the higher seq) — but a partial
		// tear must never surface.
		if !bytes.Equal(buf, pageImage(1024, 2)) {
			t.Fatalf("rebuild surfaced a torn page image (garbage=%d)", report.GarbagePages)
		}
	}
}

// TestRebuildAfterInterruptedErase leaves a block half-erased and checks
// the stale survivors lose against the migrated copies.
func TestRebuildAfterInterruptedErase(t *testing.T) {
	dev := rebuildDevice(t, nil)
	f, err := New(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Fill enough to trigger GC erases organically.
	latest := make(map[int][]byte)
	for round := 0; round < 10; round++ {
		for lba := 0; lba < 24; lba++ {
			img := pageImage(1024, byte(lba+round*5))
			if _, err := f.WritePage(lba, img); err != nil {
				t.Fatalf("write: %v", err)
			}
			latest[lba] = img
		}
	}
	if f.Stats().GCErases == 0 {
		t.Skipf("calibration: GC never ran")
	}
	f2, _, err := Rebuild(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if err := f2.CheckConsistency(); err != nil {
		t.Fatalf("consistency: %v", err)
	}
	buf := make([]byte, 1024)
	for lba := 0; lba < 24; lba++ {
		if err := f2.ReadPage(lba, buf); err != nil {
			t.Fatalf("read lba %d: %v", lba, err)
		}
		if !bytes.Equal(buf, latest[lba]) {
			t.Fatalf("lba %d stale after rebuild", lba)
		}
	}
}

// chipDevice builds a multi-chip device for the parallel-rebuild tests.
func chipDevice(t testing.TB, chips, blocks int) *flashdev.Device {
	t.Helper()
	d, err := flashdev.New(flashdev.Config{
		Chips: chips,
		Chip: nand.Config{
			Geometry:        nand.Geometry{Blocks: blocks, PagesPerBlock: 8, PageSize: 1024, OOBSize: 128},
			Cell:            nand.SLC,
			StrictOverwrite: true,
			Seed:            11,
		},
		Latency: flashdev.DefaultLatencyModel(),
	})
	if err != nil {
		t.Fatalf("device: %v", err)
	}
	return d
}

// TestRebuildMatchesSerial proves the chip-parallel scan is bit-identical
// to the single-threaded oracle: same report, same mapping, same content,
// on a device with overwrites (stale copies), appends and torn programs.
func TestRebuildMatchesSerial(t *testing.T) {
	dev := chipDevice(t, 8, 64)
	f, err := New(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const pages = 96
	for round := 0; round < 4; round++ {
		for lba := 0; lba < pages; lba++ {
			if _, err := f.WritePage(lba, pageImage(1024, byte(lba*3+round))); err != nil {
				t.Fatalf("write lba %d round %d: %v", lba, round, err)
			}
		}
	}

	fp, rp, err := Rebuild(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	fs, rs, err := RebuildSerial(dev, rebuildConfig())
	if err != nil {
		t.Fatalf("RebuildSerial: %v", err)
	}
	if rp.Parallelism != 8 {
		t.Fatalf("parallel rebuild used %d goroutines, want 8", rp.Parallelism)
	}
	if rs.Parallelism != 1 {
		t.Fatalf("serial rebuild reports parallelism %d, want 1", rs.Parallelism)
	}
	// The virtual scan cost is the one sanctioned difference: the parallel
	// scan pays the busiest channel, the serial oracle the sum of all.
	if rp.ScanVirtual >= rs.ScanVirtual {
		t.Fatalf("chip-parallel scan not faster in virtual time: parallel %s, serial %s",
			rp.ScanVirtual, rs.ScanVirtual)
	}
	rp.Parallelism, rs.Parallelism = 0, 0
	rp.ScanVirtual, rs.ScanVirtual = 0, 0
	if !reflect.DeepEqual(rp, rs) {
		t.Fatalf("reports diverge:\nparallel: %+v\nserial:   %+v", rp, rs)
	}
	if !reflect.DeepEqual(fp.l2p, fs.l2p) {
		t.Fatalf("l2p mappings diverge")
	}
	if !reflect.DeepEqual(fp.appends, fs.appends) {
		t.Fatalf("append budgets diverge")
	}
	if err := fp.CheckConsistency(); err != nil {
		t.Fatalf("parallel consistency: %v", err)
	}
	if err := fs.CheckConsistency(); err != nil {
		t.Fatalf("serial consistency: %v", err)
	}
	bp, bs := make([]byte, 1024), make([]byte, 1024)
	for lba := 0; lba < pages; lba++ {
		if err := fp.ReadPage(lba, bp); err != nil {
			t.Fatalf("parallel read lba %d: %v", lba, err)
		}
		if err := fs.ReadPage(lba, bs); err != nil {
			t.Fatalf("serial read lba %d: %v", lba, err)
		}
		if !bytes.Equal(bp, bs) {
			t.Fatalf("lba %d content diverges between parallel and serial rebuild", lba)
		}
	}
}

// benchRebuildDevice populates a large 8-chip device once; Rebuild only
// reads, so the benchmarks share it.
func benchRebuildDevice(b *testing.B) *flashdev.Device {
	dev := chipDevice(b, 8, 128)
	f, err := New(dev, rebuildConfig())
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	const pages = 640
	for round := 0; round < 2; round++ {
		for lba := 0; lba < pages; lba++ {
			if _, err := f.WritePage(lba, pageImage(1024, byte(lba+round))); err != nil {
				b.Fatalf("write: %v", err)
			}
		}
	}
	return dev
}

// BenchmarkRebuild measures the chip-parallel recovery scan on an 8-chip
// device; compare against BenchmarkRebuildSerial for the speedup.
func BenchmarkRebuild(b *testing.B) {
	dev := benchRebuildDevice(b)
	b.ResetTimer()
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		_, report, err := Rebuild(dev, rebuildConfig())
		if err != nil {
			b.Fatalf("Rebuild: %v", err)
		}
		virtual += report.ScanVirtual
	}
	b.ReportMetric(float64(virtual.Nanoseconds())/float64(b.N), "virtual-ns/op")
}

// BenchmarkRebuildSerial is the single-threaded oracle on the same device.
func BenchmarkRebuildSerial(b *testing.B) {
	dev := benchRebuildDevice(b)
	b.ResetTimer()
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		_, report, err := RebuildSerial(dev, rebuildConfig())
		if err != nil {
			b.Fatalf("RebuildSerial: %v", err)
		}
		virtual += report.ScanVirtual
	}
	b.ReportMetric(float64(virtual.Nanoseconds())/float64(b.N), "virtual-ns/op")
}
