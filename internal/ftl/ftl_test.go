package ftl

import (
	"bytes"
	"errors"
	"testing"

	"ipa/internal/flashdev"
	"ipa/internal/nand"
)

func testDevice(t *testing.T, cell nand.CellType) *flashdev.Device {
	t.Helper()
	dev, err := flashdev.New(flashdev.Config{
		Chips: 1,
		Chip: nand.Config{
			Geometry: nand.Geometry{
				Blocks:        32,
				PagesPerBlock: 16,
				PageSize:      2048,
				OOBSize:       128,
			},
			Cell:            cell,
			StrictOverwrite: true,
			Seed:            5,
		},
		Latency: flashdev.DefaultLatencyModel(),
	})
	if err != nil {
		t.Fatalf("flashdev.New: %v", err)
	}
	return dev
}

func testFTL(t *testing.T, cfg Config) *FTL {
	t.Helper()
	dev := testDevice(t, nand.MLC)
	f, err := New(dev, cfg)
	if err != nil {
		t.Fatalf("ftl.New: %v", err)
	}
	return f
}

func pageImage(size int, seed byte) []byte {
	img := make([]byte, size)
	for i := range img {
		img[i] = byte(i)*3 + seed
	}
	return img
}

// pageWithErasedTail returns a page image whose last tail bytes are erased
// (0xFF), mimicking a database page with an empty delta-record area.
func pageWithErasedTail(size, tail int, seed byte) []byte {
	img := pageImage(size, seed)
	for i := size - tail; i < size; i++ {
		img[i] = 0xFF
	}
	return img
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := testFTL(t, DefaultConfig())
	img := pageImage(f.PageSize(), 1)
	if _, err := f.WritePage(3, img); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	got := make([]byte, f.PageSize())
	if err := f.ReadPage(3, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Fatalf("round trip mismatch")
	}
	if !f.Mapped(3) || f.Mapped(4) {
		t.Fatalf("Mapped() wrong")
	}
	s := f.Stats()
	if s.HostWrites != 1 || s.HostReads != 1 || s.OutOfPlaceWrites != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestReadUnmapped(t *testing.T) {
	f := testFTL(t, DefaultConfig())
	if err := f.ReadPage(0, make([]byte, f.PageSize())); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("expected ErrUnmapped, got %v", err)
	}
	if err := f.ReadPage(f.Capacity()+1, make([]byte, f.PageSize())); !errors.Is(err, ErrBadLBA) {
		t.Fatalf("expected ErrBadLBA, got %v", err)
	}
}

func TestOutOfPlaceUpdateInvalidates(t *testing.T) {
	f := testFTL(t, DefaultConfig())
	img := pageImage(f.PageSize(), 2)
	if _, err := f.WritePage(0, img); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	img[0] ^= 0xFF
	if _, err := f.WritePage(0, img); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	s := f.Stats()
	if s.Invalidations != 1 || s.OutOfPlaceWrites != 2 {
		t.Fatalf("stats %+v", s)
	}
	got := make([]byte, f.PageSize())
	if err := f.ReadPage(0, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Fatalf("latest version not returned")
	}
}

func TestWriteDeltaNative(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlashMode = nand.ModePSLC
	cfg.EccCoverBytes = 1024
	f := testFTL(t, cfg)
	img := pageWithErasedTail(f.PageSize(), 1024, 3)
	if _, err := f.WritePage(5, img); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	if !f.IsAppendTarget(5) {
		t.Fatalf("freshly written pSLC page must accept appends")
	}
	delta := []byte{0xDE, 0xAD}
	if err := f.WriteDelta(5, 1024, delta); err != nil {
		t.Fatalf("WriteDelta: %v", err)
	}
	got := make([]byte, f.PageSize())
	if err := f.ReadPage(5, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if got[1024] != 0xDE || got[1025] != 0xAD {
		t.Fatalf("delta not appended")
	}
	if !bytes.Equal(got[:1024], img[:1024]) {
		t.Fatalf("original content disturbed")
	}
	s := f.Stats()
	if s.HostWriteDeltas != 1 || s.InPlaceAppends != 1 || s.Invalidations != 0 {
		t.Fatalf("stats %+v", s)
	}
	// The delta write must not change the physical mapping: no GC work.
	if s.GCErases != 0 || s.GCMigrations != 0 {
		t.Fatalf("append must not cause GC work")
	}
}

func TestWriteDeltaUnmappedAndBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlashMode = nand.ModePSLC
	cfg.MaxAppendsPerPage = 1
	cfg.EccCoverBytes = 1024
	f := testFTL(t, cfg)
	if err := f.WriteDelta(9, 0, []byte{1}); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("expected ErrUnmapped, got %v", err)
	}
	img := pageWithErasedTail(f.PageSize(), 1024, 4)
	if _, err := f.WritePage(9, img); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	if err := f.WriteDelta(9, 1024, []byte{1}); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := f.WriteDelta(9, 1025, []byte{2}); !errors.Is(err, ErrNotAppendable) {
		t.Fatalf("append budget not enforced: %v", err)
	}
}

func TestOddMLCAppendsOnlyOnLSBPages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlashMode = nand.ModeOddMLC
	cfg.EccCoverBytes = 1024
	f := testFTL(t, cfg)
	// Write several pages; they land on consecutive physical pages, so some
	// are MSB (even index) and some LSB (odd index).
	appendable := 0
	total := 8
	for lba := 0; lba < total; lba++ {
		img := pageWithErasedTail(f.PageSize(), 1024, byte(lba))
		if _, err := f.WritePage(lba, img); err != nil {
			t.Fatalf("WritePage %d: %v", lba, err)
		}
		if f.IsAppendTarget(lba) {
			appendable++
			if err := f.WriteDelta(lba, 1024, []byte{byte(lba)}); err != nil {
				t.Fatalf("WriteDelta on LSB page: %v", err)
			}
		} else if err := f.WriteDelta(lba, 1024, []byte{byte(lba)}); !errors.Is(err, ErrNotAppendable) {
			t.Fatalf("append on MSB page must be refused, got %v", err)
		}
	}
	if appendable == 0 || appendable == total {
		t.Fatalf("odd-MLC should make some (not all) pages appendable: %d/%d", appendable, total)
	}
}

func TestInPlaceMergeSSDMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlashMode = nand.ModePSLC
	cfg.InPlaceMerge = true
	cfg.EccCoverBytes = 1024
	f := testFTL(t, cfg)
	img := pageWithErasedTail(f.PageSize(), 1024, 7)
	if _, err := f.WritePage(2, img); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	// Add bytes only in the previously erased tail: in-place merge possible.
	img2 := append([]byte(nil), img...)
	img2[1024] = 0x11
	inPlace, err := f.WritePage(2, img2)
	if err != nil {
		t.Fatalf("merge write: %v", err)
	}
	if !inPlace {
		t.Fatalf("expected an in-place merge")
	}
	// Changing already programmed bytes forces an out-of-place write.
	img3 := append([]byte(nil), img2...)
	img3[0] ^= 0xFF
	inPlace, err = f.WritePage(2, img3)
	if err != nil {
		t.Fatalf("out-of-place write: %v", err)
	}
	if inPlace {
		t.Fatalf("incompatible image must not be merged in place")
	}
	s := f.Stats()
	if s.InPlaceAppends != 1 || s.OutOfPlaceWrites != 2 || s.Invalidations != 1 {
		t.Fatalf("stats %+v", s)
	}
	got := make([]byte, f.PageSize())
	if err := f.ReadPage(2, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, img3) {
		t.Fatalf("latest image not returned")
	}
}

func TestGarbageCollectionReclaimsSpace(t *testing.T) {
	f := testFTL(t, DefaultConfig())
	// Use a small hot set and overwrite it many times: far more writes than
	// physical pages, so GC must reclaim invalidated space for the run to
	// finish.
	hot := 20
	writes := f.Capacity() * 3
	for i := 0; i < writes; i++ {
		lba := i % hot
		img := pageImage(f.PageSize(), byte(i))
		if _, err := f.WritePage(lba, img); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	s := f.Stats()
	if s.GCErases == 0 {
		t.Fatalf("garbage collection never ran: %+v", s)
	}
	// All hot pages must still hold their latest content.
	for lba := 0; lba < hot; lba++ {
		got := make([]byte, f.PageSize())
		if err := f.ReadPage(lba, got); err != nil {
			t.Fatalf("ReadPage %d: %v", lba, err)
		}
	}
	if f.FreeBlocks() == 0 {
		t.Fatalf("GC left no free blocks")
	}
}

func TestGCPreservesDataUnderMigration(t *testing.T) {
	f := testFTL(t, DefaultConfig())
	// A working set close to the exported capacity: GC victims then always
	// contain valid pages, so migrations must happen and must preserve the
	// latest version of every page.
	working := f.Capacity() * 7 / 10
	latest := make(map[int]byte, working)
	// Populate, then rewrite pages in a pseudo-random order: randomness
	// spreads invalid pages across blocks, so victims carry valid pages.
	for lba := 0; lba < working; lba++ {
		if _, err := f.WritePage(lba, pageImage(f.PageSize(), byte(lba))); err != nil {
			t.Fatalf("populate %d: %v", lba, err)
		}
		latest[lba] = byte(lba)
	}
	x := uint32(12345)
	for i := 0; i < working*4; i++ {
		x = x*1664525 + 1013904223
		lba := int(x>>8) % working
		seed := byte(i)
		if _, err := f.WritePage(lba, pageImage(f.PageSize(), seed)); err != nil {
			t.Fatalf("rewrite %d: %v", i, err)
		}
		latest[lba] = seed
	}
	if f.Stats().GCMigrations == 0 {
		t.Fatalf("expected GC migrations under high utilisation: %+v", f.Stats())
	}
	got := make([]byte, f.PageSize())
	for lba := 0; lba < working; lba++ {
		if err := f.ReadPage(lba, got); err != nil {
			t.Fatalf("ReadPage %d: %v", lba, err)
		}
		if !bytes.Equal(got, pageImage(f.PageSize(), latest[lba])) {
			t.Fatalf("page %d lost its latest version after GC", lba)
		}
	}
}

func TestPSLCHalvesCapacity(t *testing.T) {
	full := testFTL(t, DefaultConfig())
	cfg := DefaultConfig()
	cfg.FlashMode = nand.ModePSLC
	half := testFTL(t, cfg)
	if half.Capacity() >= full.Capacity() {
		t.Fatalf("pSLC capacity (%d) must be below MLC capacity (%d)", half.Capacity(), full.Capacity())
	}
}

func TestTrim(t *testing.T) {
	f := testFTL(t, DefaultConfig())
	if _, err := f.WritePage(1, pageImage(f.PageSize(), 9)); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	if err := f.Trim(1); err != nil {
		t.Fatalf("Trim: %v", err)
	}
	if f.Mapped(1) {
		t.Fatalf("Trim must unmap the page")
	}
	if err := f.ReadPage(1, make([]byte, f.PageSize())); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("expected ErrUnmapped after Trim, got %v", err)
	}
	if err := f.Trim(1); err != nil {
		t.Fatalf("Trim of unmapped page must be a no-op: %v", err)
	}
}

func TestUtilizationAndDebugSummary(t *testing.T) {
	f := testFTL(t, DefaultConfig())
	if f.Utilization() != 0 {
		t.Fatalf("fresh FTL utilization should be 0")
	}
	for lba := 0; lba < 10; lba++ {
		if _, err := f.WritePage(lba, pageImage(f.PageSize(), byte(lba))); err != nil {
			t.Fatalf("WritePage: %v", err)
		}
	}
	if f.Utilization() <= 0 {
		t.Fatalf("utilization should grow")
	}
	if f.DebugSummary() == "" {
		t.Fatalf("DebugSummary empty")
	}
	f.ResetStats()
	if f.Stats().HostWrites != 0 {
		t.Fatalf("ResetStats failed")
	}
}

func TestWritePageValidation(t *testing.T) {
	f := testFTL(t, DefaultConfig())
	if _, err := f.WritePage(0, make([]byte, 10)); err == nil {
		t.Fatalf("short buffer must be rejected")
	}
	if _, err := f.WritePage(-1, make([]byte, f.PageSize())); !errors.Is(err, ErrBadLBA) {
		t.Fatalf("negative LBA must be rejected")
	}
	if _, err := f.WritePage(f.Capacity(), make([]byte, f.PageSize())); !errors.Is(err, ErrBadLBA) {
		t.Fatalf("LBA beyond capacity must be rejected")
	}
}
