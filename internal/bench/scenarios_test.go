package bench

import (
	"strings"
	"testing"

	"ipa"
)

func TestScenariosSmallRun(t *testing.T) {
	res, err := Scenarios(ScenarioOptions{
		Workload: "tpcb",
		Scale:    1,
		Ops:      600,
		Profile:  tinyProfile,
		SchemeN:  2, SchemeM: 4,
		Seed: 1,
	})
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	base, ssd, native := res.Baseline, res.SSD, res.Native
	if base.InPlaceAppends != 0 {
		t.Fatalf("scenario 1 must not append in place")
	}
	if ssd.InPlaceAppends == 0 || native.InPlaceAppends == 0 {
		t.Fatalf("scenarios 2 and 3 must append in place")
	}
	// Scenario 3 transfers far fewer bytes than scenario 2 for the same work.
	if native.HostBytesWritten >= ssd.HostBytesWritten {
		t.Fatalf("write_delta must reduce transferred bytes: %d vs %d",
			native.HostBytesWritten, ssd.HostBytesWritten)
	}
	// Both IPA scenarios invalidate fewer pages than the baseline.
	if ssd.Invalidations >= base.Invalidations || native.Invalidations >= base.Invalidations {
		t.Fatalf("IPA scenarios must reduce invalidations: base=%d ssd=%d native=%d",
			base.Invalidations, ssd.Invalidations, native.Invalidations)
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "scenario") {
		t.Fatalf("rendering wrong")
	}
}

func TestInterferenceSmallRun(t *testing.T) {
	res, err := Interference(InterferenceOptions{
		Workload: "tpcb",
		Scale:    1,
		Ops:      800,
		Profile:  tinyProfile,
		SchemeN:  2, SchemeM: 4,
		InterferenceProb: 0.5,
		Seed:             1,
	})
	if err != nil {
		t.Fatalf("Interference: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected rows for MLC, odd-MLC and pSLC")
	}
	byMode := map[ipa.FlashMode]InterferenceRow{}
	for _, row := range res.Rows {
		byMode[row.Mode] = row
	}
	if byMode[ipa.PSLC].InterferenceBits != 0 {
		t.Fatalf("pSLC must not suffer interference, got %d bits", byMode[ipa.PSLC].InterferenceBits)
	}
	if byMode[ipa.MLCFull].InterferenceBits == 0 {
		t.Fatalf("MLC-full with fault injection must show interference")
	}
	if byMode[ipa.OddMLC].InterferenceBits > byMode[ipa.MLCFull].InterferenceBits {
		t.Fatalf("odd-MLC must suffer less interference than MLC-full: %d vs %d",
			byMode[ipa.OddMLC].InterferenceBits, byMode[ipa.MLCFull].InterferenceBits)
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "interference") {
		t.Fatalf("rendering wrong")
	}
}
