package bench

import "testing"

// TestYCSBSweepSmall runs a tiny two-letter sweep end to end: the
// larger-than-memory sizing must actually exceed the pool and force
// evictions, and the update-heavy letter must profit from in-place appends.
func TestYCSBSweepSmall(t *testing.T) {
	o := DefaultYCSBOptions()
	o.Letters = []byte{'A', 'C'}
	o.HeapFactors = []float64{0.5, 8}
	o.Ops = 1500
	o.Profile = SmallProfile
	res, err := YCSB(o)
	if err != nil {
		t.Fatalf("YCSB: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	byKey := map[string]YCSBRow{}
	for _, r := range res.Rows {
		if r.Committed == 0 {
			t.Errorf("%s %gx committed no ops", r.Workload, r.HeapFactor)
		}
		byKey[r.Workload+keyFactor(r.HeapFactor)] = r
	}
	small := byKey["ycsb-a|0.5"]
	large := byKey["ycsb-a|8"]
	if large.Records <= small.Records {
		t.Errorf("8x records %d not larger than cache-sized %d", large.Records, small.Records)
	}
	if large.DirtyEvicts == 0 {
		t.Error("larger-than-memory A run evicted nothing — pool not under pressure")
	}
	if large.IPASharePct <= 0 {
		t.Error("update-heavy A run recorded no in-place appends")
	}
	if c := byKey["ycsb-c|8"]; c.DirtyEvicts != 0 {
		t.Errorf("read-only C run evicted %d dirty pages", c.DirtyEvicts)
	}
}

func keyFactor(f float64) string {
	if f < 1 {
		return "|0.5"
	}
	return "|8"
}

// TestNewWorkloadYCSB covers the Experiment-API entry point.
func TestNewWorkloadYCSB(t *testing.T) {
	w, err := NewWorkload("ycsb-f", 1, 3)
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	if w.Name() != "ycsb-f" {
		t.Fatalf("name = %q", w.Name())
	}
	if _, err := NewWorkload("ycsb-z", 1, 3); err == nil {
		t.Fatal("ycsb-z accepted")
	}
}
