package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ipa"
)

// ReadMixOptions configures the read-skew ladder: N goroutines run
// transactions of OpsPerTxn point operations over one SHARED keyspace (no
// partitioning — readers and writers collide on purpose), with the read
// fraction swept across ReadPcts. Every mix runs twice:
//
//   - snapshot: reads go through Tx.Get — lock-free MVCC snapshot reads;
//   - locked:   reads go through Tx.GetForUpdate — the strict-2PL baseline
//     where every read takes a record lock and conflicts abort.
//
// The gap between the two rows of a mix is the benefit of multi-version
// readers; it widens with the read share because under 2PL read locks are
// what most transactions collide on.
type ReadMixOptions struct {
	// Goroutines is the worker count (default 8).
	Goroutines int
	// ReadPcts is the ladder of read percentages (default 50, 90, 99).
	ReadPcts []int
	// Tuples is the shared keyspace size (default 1024 — small enough to
	// make collisions common).
	Tuples int
	// TupleSize is the row size in bytes (default 100).
	TupleSize int
	// Ops is the number of committed transactions per run, split across
	// the goroutines (default 4000).
	Ops int
	// OpsPerTxn is the number of point operations per transaction
	// (default 4).
	OpsPerTxn int
	// HotKeys and HotOpPct skew the access pattern: HotOpPct percent of
	// operations land on the first HotKeys keys (defaults 16 and 25).
	// The hot set is where the two read modes diverge — under 2PL even
	// two readers of the same hot key conflict (locks are exclusive),
	// while snapshot readers never do.
	HotKeys  int
	HotOpPct int
	// Mode, SchemeN/M and Flash configure the write path under test.
	Mode             ipa.WriteMode
	SchemeN, SchemeM int
	Flash            ipa.FlashMode
	// LogFlushLatency / LogFlushWallLatency mirror ConcurrentOptions.
	LogFlushLatency     time.Duration
	LogFlushWallLatency time.Duration
	Profile             DeviceProfile
	Seed                int64
}

// DefaultReadMixOptions returns the configuration used by cmd/ipabench.
func DefaultReadMixOptions() ReadMixOptions {
	return ReadMixOptions{
		Goroutines: 8,
		ReadPcts:   []int{50, 90, 99},
		Tuples:     1024,
		TupleSize:  100,
		Ops:        4000,
		OpsPerTxn:  8,
		HotKeys:    16,
		HotOpPct:   40,
		Mode:       ipa.IPANativeFlash,
		SchemeN:    2,
		SchemeM:    4,
		Flash:      ipa.PSLC,
		// A fast log device (vs the concurrency-scaling scenario's 50µs):
		// this ladder is about lock contention, not group commit, so the
		// flush must not dominate the per-transaction cost.
		LogFlushLatency:     20 * time.Microsecond,
		LogFlushWallLatency: 5 * time.Microsecond,
		Profile:             DefaultProfile,
		Seed:                1,
	}
}

// ReadMixRow is the outcome of one (read percentage, read mode) cell.
type ReadMixRow struct {
	ReadPct   int
	Locked    bool // true = GetForUpdate baseline, false = snapshot reads
	Committed uint64
	Retries   uint64 // transactions re-run after ErrConflict
	Wall      time.Duration
	OpsPerSec float64

	// Lock-table pressure and MVCC activity for the run.
	LockAcquisitions uint64
	LockConflicts    uint64
	SnapshotReads    uint64
	VersionReads     uint64

	Stats ipa.Stats
}

// ReadMixResult bundles the ladder; rows come in (snapshot, locked) pairs
// per read percentage.
type ReadMixResult struct {
	Options ReadMixOptions
	Rows    []ReadMixRow
}

func (o ReadMixOptions) withDefaults() ReadMixOptions {
	d := DefaultReadMixOptions()
	if o.Goroutines <= 0 {
		o.Goroutines = d.Goroutines
	}
	if len(o.ReadPcts) == 0 {
		o.ReadPcts = d.ReadPcts
	}
	if o.Tuples <= 0 {
		o.Tuples = d.Tuples
	}
	if o.TupleSize <= 0 {
		o.TupleSize = d.TupleSize
	}
	if o.Ops <= 0 {
		o.Ops = d.Ops
	}
	if o.OpsPerTxn <= 0 {
		o.OpsPerTxn = d.OpsPerTxn
	}
	if o.HotKeys <= 0 {
		o.HotKeys = d.HotKeys
	}
	if o.HotKeys > o.Tuples {
		o.HotKeys = o.Tuples
	}
	if o.HotOpPct <= 0 {
		o.HotOpPct = d.HotOpPct
	}
	if o.SchemeN == 0 && o.SchemeM == 0 {
		o.SchemeN, o.SchemeM = d.SchemeN, d.SchemeM
		if o.Mode == ipa.Traditional {
			o.Mode = d.Mode
			o.Flash = d.Flash
		}
	}
	if o.LogFlushLatency == 0 {
		o.LogFlushLatency = d.LogFlushLatency
	}
	if o.LogFlushWallLatency == 0 {
		o.LogFlushWallLatency = d.LogFlushWallLatency
	}
	if o.Profile == (DeviceProfile{}) {
		o.Profile = d.Profile
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// ReadMix runs the read-skew ladder.
func ReadMix(o ReadMixOptions) (ReadMixResult, error) {
	o = o.withDefaults()
	out := ReadMixResult{Options: o}
	for _, pct := range o.ReadPcts {
		if pct < 0 || pct > 100 {
			return out, fmt.Errorf("bench: invalid read percentage %d", pct)
		}
		for _, locked := range []bool{false, true} {
			row, err := runReadMix(o, pct, locked)
			if err != nil {
				return out, err
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// runReadMix measures one cell on a fresh database.
func runReadMix(o ReadMixOptions, readPct int, locked bool) (ReadMixRow, error) {
	cfg := ipa.Config{
		PageSize:            o.Profile.PageSize,
		Blocks:              o.Profile.Blocks,
		PagesPerBlock:       o.Profile.PagesPerBlock,
		BufferPoolPages:     o.Profile.BufferPoolPages,
		WriteMode:           o.Mode,
		Scheme:              ipa.Scheme{N: o.SchemeN, M: o.SchemeM},
		FlashMode:           o.Flash,
		LogFlushLatency:     o.LogFlushLatency,
		LogFlushWallLatency: o.LogFlushWallLatency,
		Seed:                o.Seed,
	}
	db, err := ipa.Open(cfg)
	if err != nil {
		return ReadMixRow{}, fmt.Errorf("bench: readmix: %w", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("readmix", o.TupleSize)
	if err != nil {
		return ReadMixRow{}, err
	}
	row := make([]byte, o.TupleSize)
	for k := int64(0); k < int64(o.Tuples); k++ {
		if err := tbl.Insert(k, row); err != nil {
			return ReadMixRow{}, fmt.Errorf("bench: readmix load: %w", err)
		}
	}
	db.ResetStats()

	perWorker, extraOps := o.Ops/o.Goroutines, o.Ops%o.Goroutines
	var retries atomic.Uint64
	errs := make(chan error, o.Goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Goroutines; w++ {
		ops := perWorker
		if w < extraOps {
			ops++
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(o.Seed + int64(w)*7919))
			patch := []byte{byte(w), 0, 0}
			for i := 0; i < ops; i++ {
				for {
					err := runMixTxn(db, tbl, r, o, readPct, locked, patch)
					if err == nil {
						break
					}
					if ipaConflict(err) {
						retries.Add(1)
						continue
					}
					errs <- fmt.Errorf("bench: readmix worker %d: %w", w, err)
					return
				}
			}
		}(w, ops)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return ReadMixRow{}, err
	}
	if err := db.FlushAll(); err != nil {
		return ReadMixRow{}, err
	}
	s := db.Stats()
	out := ReadMixRow{
		ReadPct:          readPct,
		Locked:           locked,
		Committed:        s.CommittedTxns,
		Retries:          retries.Load(),
		Wall:             wall,
		LockAcquisitions: s.LockAcquisitions,
		LockConflicts:    s.LockConflicts,
		SnapshotReads:    s.SnapshotReads,
		VersionReads:     s.VersionReads,
		Stats:            s,
	}
	if wall > 0 {
		out.OpsPerSec = float64(s.CommittedTxns) / wall.Seconds()
	}
	return out, nil
}

// runMixTxn executes one transaction of the mix: OpsPerTxn point
// operations on uniformly random keys of the shared keyspace, each a read
// with probability readPct%.
func runMixTxn(db *ipa.DB, tbl *ipa.Table, r *rand.Rand, o ReadMixOptions, readPct int, locked bool, patch []byte) error {
	tx := db.Begin()
	for j := 0; j < o.OpsPerTxn; j++ {
		var key int64
		if r.Intn(100) < o.HotOpPct {
			key = int64(r.Intn(o.HotKeys))
		} else {
			key = int64(r.Intn(o.Tuples))
		}
		if r.Intn(100) < readPct {
			var err error
			if locked {
				_, err = tx.GetForUpdate(tbl, key)
			} else {
				_, err = tx.Get(tbl, key)
			}
			if err != nil {
				_ = tx.Abort()
				return err
			}
			continue
		}
		if _, err := tx.GetForUpdate(tbl, key); err != nil {
			_ = tx.Abort()
			return err
		}
		if err := tx.UpdateAt(tbl, key, 8, patch); err != nil {
			_ = tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// Write renders the read-skew table.
func (r ReadMixResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Read-skew ladder: %d goroutines, %d-op txns over %d shared keys, %d%% of ops on %d hot keys (snapshot = MVCC Tx.Get, locked = 2PL GetForUpdate)\n",
		r.Options.Goroutines, r.Options.OpsPerTxn, r.Options.Tuples, r.Options.HotOpPct, r.Options.HotKeys)
	fmt.Fprintf(w, "%-6s %-9s %10s %9s %12s %9s %11s %11s %10s %9s\n",
		"read%", "reads", "committed", "retries", "wall", "ops/s", "lock acq", "lock confl", "snapReads", "verReads")
	var prev float64
	for _, row := range r.Rows {
		mode := "snapshot"
		if row.Locked {
			mode = "locked"
		}
		fmt.Fprintf(w, "%-6d %-9s %10d %9d %12s %9.0f %11d %11d %10d %9d",
			row.ReadPct, mode, row.Committed, row.Retries, row.Wall.Round(time.Millisecond),
			row.OpsPerSec, row.LockAcquisitions, row.LockConflicts, row.SnapshotReads, row.VersionReads)
		if row.Locked && prev > 0 && row.OpsPerSec > 0 {
			fmt.Fprintf(w, "  (snapshot %+.0f%%)", (prev/row.OpsPerSec-1)*100)
		}
		fmt.Fprintln(w)
		prev = row.OpsPerSec
	}
}
