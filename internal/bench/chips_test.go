package bench

import (
	"strings"
	"testing"
	"time"
)

// chipTestOptions is a shrunken ladder that still forces Flash traffic:
// the working set is several times the buffer pool.
func chipTestOptions(chips []int) ChipsOptions {
	return ChipsOptions{
		Chips:      chips,
		Goroutines: 4,
		Tuples:     4096,
		TupleSize:  64,
		Ops:        1200,
		Profile:    SmallProfile,
		TxnCPUCost: time.Microsecond,
		Seed:       1,
	}
}

// TestChipsScenario checks the accounting of every row of a short ladder.
func TestChipsScenario(t *testing.T) {
	res, err := Chips(chipTestOptions([]int{1, 2}))
	if err != nil {
		t.Fatalf("Chips: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Committed != 1200 {
			t.Errorf("chips=%d committed %d, want 1200", row.Chips, row.Committed)
		}
		if row.VirtualTPS <= 0 || row.WallPerSec <= 0 {
			t.Errorf("chips=%d reported no throughput", row.Chips)
		}
		if row.Stats.Chips != row.Chips || len(row.Stats.ChipStats) != row.Chips {
			t.Errorf("chips=%d stats report %d chips", row.Chips, row.Stats.Chips)
		}
		if row.Balance <= 0 || row.Balance > 1 {
			t.Errorf("chips=%d implausible balance %f", row.Chips, row.Balance)
		}
	}
	if res.Rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %f, want 1", res.Rows[0].Speedup)
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "chips") {
		t.Errorf("Write produced no table:\n%s", sb.String())
	}
}

// TestChipScalingImprovesVirtualThroughput is the acceptance check of the
// chip-parallel flash stack: the same work finishes in less virtual device
// time on a 4-chip device than on a single chip, because the device clock
// is the busiest chip's clock and the load stripes across the partitions.
func TestChipScalingImprovesVirtualThroughput(t *testing.T) {
	res, err := Chips(chipTestOptions([]int{1, 4}))
	if err != nil {
		t.Fatalf("Chips: %v", err)
	}
	one, four := res.Rows[0], res.Rows[1]
	if four.Virtual >= one.Virtual*7/10 {
		t.Fatalf("4 chips should cut virtual time well below 1 chip: 1-chip=%s 4-chip=%s",
			one.Virtual, four.Virtual)
	}
	if four.Speedup < 1.5 {
		t.Fatalf("4-chip virtual throughput speedup %.2fx, want >= 1.5x", four.Speedup)
	}
	// The stripe must actually use all chips.
	if four.Balance < 0.25 {
		t.Fatalf("chip load badly skewed: balance %.2f", four.Balance)
	}
}

// BenchmarkChipScaling reports wall and virtual throughput for a ladder of
// chip counts (run with -benchtime to extend the ladder's op count).
func BenchmarkChipScaling(b *testing.B) {
	for _, chips := range []int{1, 2, 4} {
		b.Run(benchName(chips), func(b *testing.B) {
			o := chipTestOptions([]int{chips})
			o.Ops = 400 * b.N
			res, err := Chips(o)
			if err != nil {
				b.Fatalf("Chips: %v", err)
			}
			row := res.Rows[0]
			b.ReportMetric(row.WallPerSec, "wall-tps")
			b.ReportMetric(row.VirtualTPS, "virtual-tps")
		})
	}
}

func benchName(chips int) string {
	return "chips-" + string(rune('0'+chips))
}
