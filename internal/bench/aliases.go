package bench

import "ipa"

// Short aliases keep the experiment definitions close to the notation used
// in the paper.
var (
	modeTraditional = ipa.Traditional
	modeSSD         = ipa.IPAConventionalSSD
	modeNative      = ipa.IPANativeFlash

	flashMLC    = ipa.MLCFull
	flashPSLC   = ipa.PSLC
	flashOddMLC = ipa.OddMLC
)

// ipaScheme builds an N×M scheme.
func ipaScheme(n, m int) ipa.Scheme { return ipa.Scheme{N: n, M: m} }
