package bench

import (
	"fmt"
	"io"

	"ipa"
)

// SweepOptions configures the N×M scheme sweep ablation (experiment E6):
// how the delta-record-area size trades off against the fraction of
// evictions that IPA can serve in place, and the resulting GC work.
type SweepOptions struct {
	// Workload to sweep (default "tpcb"; "tatp" is also interesting since
	// its updates are even smaller).
	Workload string
	Scale    int
	Ops      int
	Profile  DeviceProfile
	// Ns and Ms are the parameter grids (defaults: N ∈ {1,2,4,8},
	// M ∈ {2,4,8,16}).
	Ns []int
	Ms []int
	// Flash is the MLC mode used for the IPA runs.
	Flash ipa.FlashMode
	Seed  int64
}

// DefaultSweepOptions returns the configuration used by cmd/ipabench.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{
		Workload: "tpcb",
		Scale:    2,
		Ops:      6000,
		Profile:  DefaultProfile,
		Ns:       []int{1, 2, 4, 8},
		Ms:       []int{2, 4, 8, 16},
		Flash:    flashPSLC,
		Seed:     1,
	}
}

// SweepRow is the outcome of one N×M configuration.
type SweepRow struct {
	Scheme          ipa.Scheme
	AreaBytes       int     // delta-record area per page
	SpaceOverhead   float64 // area / page size
	InPlaceShare    float64 // host writes served in place
	AppendFallbacks uint64
	MigPerWrite     float64
	ErasePerWrite   float64
	Throughput      float64
}

// SweepResult is the grid of results, plus the baseline for reference.
type SweepResult struct {
	Workload string
	Baseline SweepRow // 0×0
	Rows     []SweepRow
	PageSize int
}

// Sweep runs the N×M grid.
func Sweep(o SweepOptions) (SweepResult, error) {
	if o.Workload == "" {
		o.Workload = "tpcb"
	}
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Ops <= 0 {
		o.Ops = 6000
	}
	if len(o.Ns) == 0 {
		o.Ns = []int{1, 2, 4, 8}
	}
	if len(o.Ms) == 0 {
		o.Ms = []int{2, 4, 8, 16}
	}
	if o.Flash == flashMLC {
		o.Flash = flashPSLC
	}
	profile := o.Profile
	if profile == (DeviceProfile{}) {
		profile = DefaultProfile
	}
	out := SweepResult{Workload: o.Workload, PageSize: profile.PageSize}

	baseExp := Experiment{
		Name: "sweep-baseline", Workload: o.Workload, Scale: o.Scale,
		Mode: modeTraditional, Flash: flashMLC, Ops: o.Ops, Seed: o.Seed, Analytic: true,
	}.ApplyProfile(profile)
	baseRes, err := Run(baseExp)
	if err != nil {
		return out, err
	}
	out.Baseline = makeSweepRow(ipa.Scheme{}, baseRes, profile.PageSize)

	for _, n := range o.Ns {
		for _, m := range o.Ms {
			scheme := ipaScheme(n, m)
			exp := Experiment{
				Name:     fmt.Sprintf("sweep-%s", scheme),
				Workload: o.Workload, Scale: o.Scale,
				Mode: modeNative, Scheme: scheme, Flash: o.Flash,
				Ops: o.Ops, Seed: o.Seed, Analytic: true,
			}.ApplyProfile(profile)
			res, err := Run(exp)
			if err != nil {
				return out, err
			}
			out.Rows = append(out.Rows, makeSweepRow(scheme, res, profile.PageSize))
		}
	}
	return out, nil
}

func makeSweepRow(scheme ipa.Scheme, res Result, pageSize int) SweepRow {
	s := res.Stats
	area := 0
	if scheme.Enabled() {
		// Mirror core.Scheme.AreaSize: N × (1 + 3·M + Δmetadata) with the
		// 48-byte header+footer Δmetadata of the page layout.
		area = scheme.N * (1 + 3*scheme.M + 48)
	}
	row := SweepRow{
		Scheme:          scheme,
		AreaBytes:       area,
		InPlaceShare:    s.InPlaceShare(),
		AppendFallbacks: s.AppendFallbacks,
		MigPerWrite:     s.MigrationsPerHostWrite(),
		ErasePerWrite:   s.ErasesPerHostWrite(),
		Throughput:      s.Throughput(),
	}
	if pageSize > 0 {
		row.SpaceOverhead = float64(area) / float64(pageSize)
	}
	return row
}

// Write renders the sweep.
func (r SweepResult) Write(w io.Writer) {
	fmt.Fprintf(w, "N×M scheme sweep (%s), page size %d bytes\n", r.Workload, r.PageSize)
	fmt.Fprintf(w, "%-8s %10s %10s %12s %12s %14s %14s %12s\n",
		"scheme", "area [B]", "overhead", "in-place", "fallbacks", "migr/write", "erases/write", "tps")
	rows := append([]SweepRow{r.Baseline}, r.Rows...)
	for _, row := range rows {
		fmt.Fprintf(w, "%-8s %10d %9.1f%% %11.1f%% %12d %14.4f %14.4f %12.1f\n",
			row.Scheme, row.AreaBytes, 100*row.SpaceOverhead, 100*row.InPlaceShare,
			row.AppendFallbacks, row.MigPerWrite, row.ErasePerWrite, row.Throughput)
	}
}
