package bench

import (
	"fmt"
	"io"
	"time"
)

// SuiteOptions configures the OLTP suite backing the paper's headline
// claims (E3): up to 45% higher throughput, up to ~67-85% fewer page
// invalidations/migrations and up to ~53-80% fewer erases across TPC-B,
// TPC-C and TATP, plus the derived longevity estimate (E5).
type SuiteOptions struct {
	Workloads []string
	Scale     int
	Duration  time.Duration
	Ops       int
	Profile   DeviceProfile
	SchemeN   int
	SchemeM   int
	Flash     int // 0 = pSLC, 1 = odd-MLC
	Seed      int64
}

// DefaultSuiteOptions returns the configuration used by cmd/ipabench.
func DefaultSuiteOptions() SuiteOptions {
	return SuiteOptions{
		Workloads: []string{"tpcb", "tpcc", "tatp"},
		Scale:     2,
		Duration:  3 * time.Second,
		Profile:   DefaultProfile,
		SchemeN:   2,
		SchemeM:   4,
		Seed:      1,
	}
}

// SuiteRow compares baseline and IPA for one workload.
type SuiteRow struct {
	Workload string
	Baseline Result
	IPA      Result

	ThroughputGainPct    float64
	InvalidationDropPct  float64
	MigrationDropPct     float64
	EraseDropPct         float64
	LongevityImprovement float64 // ratio of host writes per erase (IPA / baseline)
}

// SuiteResult is the full comparison.
type SuiteResult struct {
	Rows []SuiteRow
}

// Suite runs baseline vs IPA for every workload.
func Suite(o SuiteOptions) (SuiteResult, error) {
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"tpcb", "tpcc", "tatp"}
	}
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Duration <= 0 && o.Ops <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.SchemeN == 0 && o.SchemeM == 0 {
		o.SchemeN, o.SchemeM = 2, 4
	}
	flash := flashPSLC
	if o.Flash == 1 {
		flash = flashOddMLC
	}
	var out SuiteResult
	for _, wl := range o.Workloads {
		base := Experiment{
			Name: "suite-" + wl + "-baseline", Workload: wl, Scale: o.Scale,
			Mode: modeTraditional, Flash: flashMLC,
			Ops: o.Ops, Duration: o.Duration, Seed: o.Seed, Analytic: true,
		}.ApplyProfile(o.Profile)
		ipaExp := Experiment{
			Name: "suite-" + wl + "-ipa", Workload: wl, Scale: o.Scale,
			Mode: modeNative, Scheme: ipaScheme(o.SchemeN, o.SchemeM), Flash: flash,
			Ops: o.Ops, Duration: o.Duration, Seed: o.Seed, Analytic: true,
		}.ApplyProfile(o.Profile)

		baseRes, err := Run(base)
		if err != nil {
			return out, err
		}
		ipaRes, err := Run(ipaExp)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, makeSuiteRow(wl, baseRes, ipaRes))
	}
	return out, nil
}

func makeSuiteRow(wl string, baseRes, ipaRes Result) SuiteRow {
	bs, is := baseRes.Stats, ipaRes.Stats
	row := SuiteRow{Workload: wl, Baseline: baseRes, IPA: ipaRes}
	if bt := bs.Throughput(); bt > 0 {
		row.ThroughputGainPct = 100 * (is.Throughput() - bt) / bt
	}
	row.InvalidationDropPct = dropPctPerWrite(bs.Invalidations, bs.TotalHostWrites(), is.Invalidations, is.TotalHostWrites())
	row.MigrationDropPct = dropPctPerWrite(bs.GCMigrations, bs.TotalHostWrites(), is.GCMigrations, is.TotalHostWrites())
	row.EraseDropPct = dropPctPerWrite(bs.GCErases, bs.TotalHostWrites(), is.GCErases, is.TotalHostWrites())
	be := bs.ErasesPerHostWrite()
	ie := is.ErasesPerHostWrite()
	if ie > 0 && be > 0 {
		row.LongevityImprovement = be / ie
	}
	return row
}

// dropPctPerWrite compares two counters normalised by the work performed
// (host writes), returning the percentage reduction.
func dropPctPerWrite(baseCnt, baseWork, ipaCnt, ipaWork uint64) float64 {
	if baseWork == 0 || ipaWork == 0 || baseCnt == 0 {
		return 0
	}
	baseRate := float64(baseCnt) / float64(baseWork)
	ipaRate := float64(ipaCnt) / float64(ipaWork)
	return 100 * (1 - ipaRate/baseRate)
}

// Write renders the suite comparison.
func (r SuiteResult) Write(w io.Writer) {
	fmt.Fprintf(w, "OLTP suite: traditional [0x0] vs IPA\n")
	fmt.Fprintf(w, "%-10s %14s %14s %12s %12s %12s %12s %10s\n",
		"workload", "base tps", "ipa tps", "tps gain", "inval drop", "migr drop", "erase drop", "lifetime")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %14.1f %14.1f %+11.1f%% %+11.1f%% %+11.1f%% %+11.1f%% %9.2fx\n",
			row.Workload, row.Baseline.Throughput(), row.IPA.Throughput(),
			row.ThroughputGainPct, row.InvalidationDropPct, row.MigrationDropPct,
			row.EraseDropPct, row.LongevityImprovement)
	}
}

// LongevityRow summarises device-lifetime projections (experiment E5).
type LongevityRow struct {
	Label            string
	ErasesPerWrite   float64
	EnduranceCycles  int
	RelativeLifetime float64 // normalised to the baseline row
}

// Longevity derives lifetime estimates from a suite result: the fewer
// erases each host write causes, the more host writes fit into the erase
// budget of the Flash device.
func Longevity(r SuiteResult) []LongevityRow {
	var rows []LongevityRow
	for _, s := range r.Rows {
		base := LongevityRow{
			Label:           s.Workload + " 0x0",
			ErasesPerWrite:  s.Baseline.Stats.ErasesPerHostWrite(),
			EnduranceCycles: s.Baseline.Stats.EnduranceCycles,
		}
		ipaRow := LongevityRow{
			Label:           s.Workload + " " + s.IPA.Experiment.Scheme.String(),
			ErasesPerWrite:  s.IPA.Stats.ErasesPerHostWrite(),
			EnduranceCycles: s.IPA.Stats.EnduranceCycles,
		}
		base.RelativeLifetime = 1
		if ipaRow.ErasesPerWrite > 0 && base.ErasesPerWrite > 0 {
			ipaRow.RelativeLifetime = base.ErasesPerWrite / ipaRow.ErasesPerWrite
		}
		rows = append(rows, base, ipaRow)
	}
	return rows
}

// WriteLongevity renders the longevity rows.
func WriteLongevity(w io.Writer, rows []LongevityRow) {
	fmt.Fprintf(w, "Flash longevity (erase budget per host write)\n")
	fmt.Fprintf(w, "%-20s %16s %12s %14s\n", "configuration", "erases/write", "endurance", "rel. lifetime")
	for _, r := range rows {
		lifetime := "n/a"
		if r.RelativeLifetime > 0 {
			lifetime = fmt.Sprintf("%.2fx", r.RelativeLifetime)
		}
		fmt.Fprintf(w, "%-20s %16.5f %12d %14s\n", r.Label, r.ErasesPerWrite, r.EnduranceCycles, lifetime)
	}
}
