package bench

import (
	"strings"
	"testing"
	"time"
)

// TestConcurrentScenario runs a shrunken goroutine ladder and checks the
// accounting of every row.
func TestConcurrentScenario(t *testing.T) {
	res, err := Concurrent(ConcurrentOptions{
		Goroutines:          []int{1, 4},
		Tuples:              512,
		TupleSize:           64,
		Ops:                 400,
		Profile:             SmallProfile,
		LogFlushLatency:     10 * time.Microsecond,
		LogFlushWallLatency: time.Microsecond,
		Seed:                1,
	})
	if err != nil {
		t.Fatalf("Concurrent: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Committed != 400 {
			t.Errorf("goroutines=%d committed %d, want 400", row.Goroutines, row.Committed)
		}
		if row.OpsPerSec <= 0 {
			t.Errorf("goroutines=%d reported no throughput", row.Goroutines)
		}
		if row.WALFlushes == 0 || row.WALFlushes > row.Committed {
			t.Errorf("goroutines=%d implausible flush count %d", row.Goroutines, row.WALFlushes)
		}
		if row.CommitsPerFlush < 1 {
			t.Errorf("goroutines=%d commits/flush %f < 1", row.Goroutines, row.CommitsPerFlush)
		}
		if row.Stats.BufferShards < 2 {
			t.Errorf("expected a sharded pool, got %d shards", row.Stats.BufferShards)
		}
	}
	if res.Rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %f, want 1", res.Rows[0].Speedup)
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "goroutines") {
		t.Errorf("Write produced no table:\n%s", sb.String())
	}
}
