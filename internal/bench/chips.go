package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ipa"
)

// ChipsOptions configures the chip-scaling scenario: the same concurrent
// update-heavy workload (a fixed number of goroutines, a working set
// deliberately larger than the buffer pool so every transaction drives
// Flash I/O) is run against devices with an increasing number of NAND
// chips. With the chip-parallel flash stack, logical pages stripe across
// chips and operations on different chips proceed in parallel, so the
// virtual-time throughput — committed transactions per second of device
// time — rises with the chip count; before the per-chip partitioning it
// was flat. Virtual time models per-chip command pipelining (the device
// clock is the busiest chip's busy time, see internal/flashdev), so the
// reported scaling is the device-side ceiling; the workload keeps many
// operations in flight so that ceiling is actually driven.
type ChipsOptions struct {
	// Chips is the ladder of chip counts (default 1, 2, 4, 8).
	Chips []int
	// Goroutines is the fixed worker count applying the load (default 8).
	Goroutines int
	// Tuples is the number of rows loaded before the measurement (default
	// 16384 — several times the default buffer pool, so updates constantly
	// fetch and evict).
	Tuples int
	// TupleSize is the row size in bytes (default 100).
	TupleSize int
	// Ops is the total number of committed update transactions per run,
	// split evenly across the goroutines (default 8000).
	Ops int
	// Mode, SchemeN/M and Flash configure the write path under test
	// (default IPA native Flash with the paper's 2×4 scheme on pSLC).
	Mode             ipa.WriteMode
	SchemeN, SchemeM int
	Flash            ipa.FlashMode
	// TxnCPUCost is the virtual CPU time charged per commit (default 5µs;
	// kept small so device time, not the serial CPU charge, dominates the
	// clock and the chip scaling is visible).
	TxnCPUCost time.Duration
	// Profile supplies the per-chip device sizing.
	Profile DeviceProfile
	Seed    int64
}

// DefaultChipsOptions returns the configuration used by cmd/ipabench.
func DefaultChipsOptions() ChipsOptions {
	return ChipsOptions{
		Chips:      []int{1, 2, 4, 8},
		Goroutines: 8,
		Tuples:     16384,
		TupleSize:  100,
		Ops:        8000,
		Mode:       ipa.IPANativeFlash,
		SchemeN:    2,
		SchemeM:    4,
		Flash:      ipa.PSLC,
		TxnCPUCost: 5 * time.Microsecond,
		Profile:    DefaultProfile,
		Seed:       1,
	}
}

func (o ChipsOptions) withDefaults() ChipsOptions {
	d := DefaultChipsOptions()
	if len(o.Chips) == 0 {
		o.Chips = d.Chips
	}
	if o.Goroutines <= 0 {
		o.Goroutines = d.Goroutines
	}
	if o.Tuples <= 0 {
		o.Tuples = d.Tuples
	}
	if o.TupleSize <= 0 {
		o.TupleSize = d.TupleSize
	}
	if o.Ops <= 0 {
		o.Ops = d.Ops
	}
	if o.SchemeN == 0 && o.SchemeM == 0 {
		o.SchemeN, o.SchemeM = d.SchemeN, d.SchemeM
		if o.Mode == ipa.Traditional {
			o.Mode = d.Mode
			o.Flash = d.Flash
		}
	}
	if o.TxnCPUCost <= 0 {
		o.TxnCPUCost = d.TxnCPUCost
	}
	if o.Profile == (DeviceProfile{}) {
		o.Profile = d.Profile
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// ChipsRow is the outcome of one chip count.
type ChipsRow struct {
	Chips     int
	Committed uint64
	Conflicts uint64

	Wall       time.Duration
	WallPerSec float64

	// Virtual-time figures: the device clock is the busiest chip's clock,
	// so parallel chips shorten the elapsed virtual time of the same work.
	Virtual    time.Duration
	VirtualTPS float64
	Speedup    float64 // VirtualTPS relative to the first row

	// Balance is the least/most busy chip-clock ratio (1 = even striping).
	Balance float64

	Stats ipa.Stats
}

// ChipsResult bundles the whole chip ladder.
type ChipsResult struct {
	Options ChipsOptions
	Rows    []ChipsRow
}

// Chips runs the chip-scaling scenario.
func Chips(o ChipsOptions) (ChipsResult, error) {
	o = o.withDefaults()
	out := ChipsResult{Options: o}
	for _, chips := range o.Chips {
		if chips <= 0 {
			return out, fmt.Errorf("bench: invalid chip count %d", chips)
		}
		row, err := runChips(o, chips)
		if err != nil {
			return out, err
		}
		if len(out.Rows) > 0 && out.Rows[0].VirtualTPS > 0 {
			row.Speedup = row.VirtualTPS / out.Rows[0].VirtualTPS
		} else {
			row.Speedup = 1
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// runChips measures one chip count on a fresh database.
func runChips(o ChipsOptions, chips int) (ChipsRow, error) {
	cfg := ipa.Config{
		PageSize:        o.Profile.PageSize,
		Blocks:          o.Profile.Blocks,
		PagesPerBlock:   o.Profile.PagesPerBlock,
		Chips:           chips,
		BufferPoolPages: o.Profile.BufferPoolPages,
		WriteMode:       o.Mode,
		Scheme:          ipa.Scheme{N: o.SchemeN, M: o.SchemeM},
		FlashMode:       o.Flash,
		TxnCPUCost:      o.TxnCPUCost,
		Seed:            o.Seed,
	}
	db, err := ipa.Open(cfg)
	if err != nil {
		return ChipsRow{}, fmt.Errorf("bench: chips=%d: %w", chips, err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("chips", o.TupleSize)
	if err != nil {
		return ChipsRow{}, err
	}
	row := make([]byte, o.TupleSize)
	for k := int64(0); k < int64(o.Tuples); k++ {
		if err := tbl.Insert(k, row); err != nil {
			return ChipsRow{}, fmt.Errorf("bench: chips load: %w", err)
		}
	}
	if err := db.FlushAll(); err != nil {
		return ChipsRow{}, err
	}
	db.ResetStats()
	virtualStart := db.Now()

	perWorker, extraOps := o.Ops/o.Goroutines, o.Ops%o.Goroutines
	keysPerWorker := o.Tuples / o.Goroutines
	if keysPerWorker == 0 {
		keysPerWorker = 1
	}
	var conflicts atomic.Uint64
	errs := make(chan error, o.Goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Goroutines; w++ {
		ops := perWorker
		if w < extraOps {
			ops++
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			// Each worker strides through its own key slice with a large
			// prime step, so consecutive transactions land on different
			// pages — and, with sequential page identifiers striped across
			// chips, on different chips.
			base := int64(w * keysPerWorker)
			for i := 0; i < ops; i++ {
				key := base + int64(i*1031)%int64(keysPerWorker)
				patch := []byte{byte(i), byte(i >> 8), byte(w)}
				for {
					tx := db.Begin()
					err := tx.UpdateAt(tbl, key, 8, patch)
					if err == nil {
						err = tx.Commit()
					}
					if err == nil {
						break
					}
					_ = tx.Abort()
					if ipaConflict(err) {
						conflicts.Add(1)
						continue
					}
					errs <- fmt.Errorf("bench: chips worker %d: %w", w, err)
					return
				}
			}
		}(w, ops)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return ChipsRow{}, err
	}
	if err := db.FlushAll(); err != nil {
		return ChipsRow{}, err
	}
	s := db.Stats()
	virtual := db.Now() - virtualStart
	r := ChipsRow{
		Chips:     chips,
		Committed: s.CommittedTxns,
		Conflicts: conflicts.Load(),
		Wall:      wall,
		Virtual:   virtual,
		Balance:   s.ChipBalance(),
		Stats:     s,
	}
	if wall > 0 {
		r.WallPerSec = float64(s.CommittedTxns) / wall.Seconds()
	}
	if virtual > 0 {
		r.VirtualTPS = float64(s.CommittedTxns) / virtual.Seconds()
	}
	return r, nil
}

// Write renders the scaling table.
func (r ChipsResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Chip scaling: %s, %d goroutines, %d ops, working set > buffer pool (per-chip FTL partitions)\n",
		r.Options.Mode, r.Options.Goroutines, r.Options.Ops)
	fmt.Fprintf(w, "%-6s %10s %10s %12s %11s %12s %12s %9s %8s\n",
		"chips", "committed", "conflicts", "wall", "wall tps", "virtual", "virtual tps", "balance", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6d %10d %10d %12s %11.0f %12s %12.0f %9.2f %7.2fx\n",
			row.Chips, row.Committed, row.Conflicts, row.Wall.Round(time.Millisecond),
			row.WallPerSec, row.Virtual.Round(time.Millisecond), row.VirtualTPS,
			row.Balance, row.Speedup)
	}
}
