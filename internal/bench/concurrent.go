package bench

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ipa"
)

// ConcurrentOptions configures the concurrency-scaling scenario: the same
// update-heavy workload is applied by an increasing number of goroutines
// against one database, and the aggregate wall-clock throughput is
// reported. The scenario exercises the sharded buffer pool (goroutines on
// different pages take different shard latches) and the group-commit WAL
// (concurrent commits share log flushes).
type ConcurrentOptions struct {
	// Goroutines is the ladder of worker counts (default 1, 2, 4, 8).
	Goroutines []int
	// Tuples is the number of rows loaded before the measurement
	// (default 4096); workers update disjoint slices of the key space.
	Tuples int
	// TupleSize is the row size in bytes (default 100).
	TupleSize int
	// Ops is the total number of committed update transactions per run,
	// split evenly across the goroutines (default 8000).
	Ops int
	// Mode, SchemeN/M and Flash configure the write path under test
	// (default IPA native Flash with the paper's 2×4 scheme on pSLC).
	Mode             ipa.WriteMode
	SchemeN, SchemeM int
	Flash            ipa.FlashMode
	// LogFlushLatency models the separate log device (default 100µs of
	// virtual time per WAL flush batch) so the group-commit saving is
	// visible in the virtual clock as well as in the batch statistics.
	LogFlushLatency time.Duration
	// LogFlushWallLatency is the real time the flush leader waits per WAL
	// flush batch (default 50µs), modelling the wall-clock cost of the
	// log-device sync. This is what lets concurrent commits actually pile
	// up into shared batches.
	LogFlushWallLatency time.Duration
	// Profile supplies the device sizing.
	Profile DeviceProfile
	Seed    int64
}

// DefaultConcurrentOptions returns the configuration used by cmd/ipabench.
func DefaultConcurrentOptions() ConcurrentOptions {
	return ConcurrentOptions{
		Goroutines:          []int{1, 2, 4, 8},
		Tuples:              4096,
		TupleSize:           100,
		Ops:                 8000,
		Mode:                ipa.IPANativeFlash,
		SchemeN:             2,
		SchemeM:             4,
		Flash:               ipa.PSLC,
		LogFlushLatency:     100 * time.Microsecond,
		LogFlushWallLatency: 50 * time.Microsecond,
		Profile:             DefaultProfile,
		Seed:                1,
	}
}

// ConcurrentRow is the outcome of one worker count.
type ConcurrentRow struct {
	Goroutines int
	Committed  uint64
	Conflicts  uint64 // transactions retried after a lock conflict
	Wall       time.Duration
	OpsPerSec  float64 // committed transactions per wall-clock second
	Speedup    float64 // relative to the first row of the ladder

	// Group-commit effectiveness.
	WALFlushes      uint64
	CommitsPerFlush float64
	MaxCommitBatch  uint64

	Stats ipa.Stats
}

// ConcurrentResult bundles the whole goroutine ladder.
type ConcurrentResult struct {
	Options ConcurrentOptions
	Rows    []ConcurrentRow
}

func (o ConcurrentOptions) withDefaults() ConcurrentOptions {
	d := DefaultConcurrentOptions()
	if len(o.Goroutines) == 0 {
		o.Goroutines = d.Goroutines
	}
	if o.Tuples <= 0 {
		o.Tuples = d.Tuples
	}
	if o.TupleSize <= 0 {
		o.TupleSize = d.TupleSize
	}
	if o.Ops <= 0 {
		o.Ops = d.Ops
	}
	if o.SchemeN == 0 && o.SchemeM == 0 {
		o.SchemeN, o.SchemeM = d.SchemeN, d.SchemeM
		if o.Mode == ipa.Traditional {
			o.Mode = d.Mode
			o.Flash = d.Flash
		}
	}
	if o.LogFlushLatency == 0 {
		o.LogFlushLatency = d.LogFlushLatency
	}
	if o.LogFlushWallLatency == 0 {
		o.LogFlushWallLatency = d.LogFlushWallLatency
	}
	if o.Profile == (DeviceProfile{}) {
		o.Profile = d.Profile
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Concurrent runs the concurrency-scaling scenario.
func Concurrent(o ConcurrentOptions) (ConcurrentResult, error) {
	o = o.withDefaults()
	out := ConcurrentResult{Options: o}
	for _, g := range o.Goroutines {
		if g <= 0 {
			return out, fmt.Errorf("bench: invalid goroutine count %d", g)
		}
		row, err := runConcurrent(o, g)
		if err != nil {
			return out, err
		}
		if len(out.Rows) > 0 && out.Rows[0].OpsPerSec > 0 {
			row.Speedup = row.OpsPerSec / out.Rows[0].OpsPerSec
		} else {
			row.Speedup = 1
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// runConcurrent measures one worker count on a fresh database.
func runConcurrent(o ConcurrentOptions, goroutines int) (ConcurrentRow, error) {
	cfg := ipa.Config{
		PageSize:            o.Profile.PageSize,
		Blocks:              o.Profile.Blocks,
		PagesPerBlock:       o.Profile.PagesPerBlock,
		BufferPoolPages:     o.Profile.BufferPoolPages,
		WriteMode:           o.Mode,
		Scheme:              ipa.Scheme{N: o.SchemeN, M: o.SchemeM},
		FlashMode:           o.Flash,
		LogFlushLatency:     o.LogFlushLatency,
		LogFlushWallLatency: o.LogFlushWallLatency,
		Seed:                o.Seed,
	}
	db, err := ipa.Open(cfg)
	if err != nil {
		return ConcurrentRow{}, fmt.Errorf("bench: concurrent: %w", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("concurrent", o.TupleSize)
	if err != nil {
		return ConcurrentRow{}, err
	}
	row := make([]byte, o.TupleSize)
	for k := int64(0); k < int64(o.Tuples); k++ {
		if err := tbl.Insert(k, row); err != nil {
			return ConcurrentRow{}, fmt.Errorf("bench: concurrent load: %w", err)
		}
	}
	db.ResetStats()

	perWorker, extraOps := o.Ops/goroutines, o.Ops%goroutines
	keysPerWorker := o.Tuples / goroutines
	if keysPerWorker == 0 {
		keysPerWorker = 1
	}
	var conflicts atomic.Uint64
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		ops := perWorker
		if w < extraOps {
			ops++
		}
		wg.Add(1)
		go func(w, perWorker int) {
			defer wg.Done()
			// Each worker owns a disjoint key slice and strides through it
			// so consecutive transactions land on different pages (and
			// therefore different buffer pool shards).
			base := int64(w * keysPerWorker)
			for i := 0; i < perWorker; i++ {
				key := base + int64(i*17)%int64(keysPerWorker)
				patch := []byte{byte(i), byte(i >> 8), byte(w)}
				for {
					tx := db.Begin()
					err := tx.UpdateAt(tbl, key, 8, patch)
					if err == nil {
						err = tx.Commit()
					}
					if err == nil {
						break
					}
					_ = tx.Abort()
					if ipaConflict(err) {
						conflicts.Add(1)
						continue
					}
					errs <- fmt.Errorf("bench: concurrent worker %d: %w", w, err)
					return
				}
			}
		}(w, ops)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return ConcurrentRow{}, err
	}
	if err := db.FlushAll(); err != nil {
		return ConcurrentRow{}, err
	}
	s := db.Stats()
	r := ConcurrentRow{
		Goroutines:      goroutines,
		Committed:       s.CommittedTxns,
		Conflicts:       conflicts.Load(),
		Wall:            wall,
		WALFlushes:      s.WALFlushes,
		CommitsPerFlush: s.CommitsPerFlush(),
		MaxCommitBatch:  s.WALMaxCommitBatch,
		Stats:           s,
	}
	if wall > 0 {
		r.OpsPerSec = float64(s.CommittedTxns) / wall.Seconds()
	}
	return r, nil
}

// ipaConflict reports whether err is a record-lock conflict (retryable).
func ipaConflict(err error) bool {
	return errors.Is(err, ipa.ErrConflict)
}

// Write renders the scaling table.
func (r ConcurrentResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Concurrency scaling: %s, %d ops over disjoint keys (sharded pool + group-commit WAL)\n",
		r.Options.Mode, r.Options.Ops)
	fmt.Fprintf(w, "%-11s %10s %10s %12s %9s %12s %14s %9s\n",
		"goroutines", "committed", "conflicts", "wall", "ops/s", "wal flushes", "commits/flush", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-11d %10d %10d %12s %9.0f %12d %14.2f %8.2fx\n",
			row.Goroutines, row.Committed, row.Conflicts, row.Wall.Round(time.Millisecond),
			row.OpsPerSec, row.WALFlushes, row.CommitsPerFlush, row.Speedup)
	}
}
