// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation:
//
//   - Figure 1: DBMS write-amplification of the traditional write path vs
//     In-Place Appends (net modified bytes per evicted dirty page).
//   - Table 1: TPC-B under the traditional approach [0×0] and IPA [2×4] in
//     pSLC and odd-MLC modes (host I/O, GC work, throughput).
//   - The OLTP suite backing the throughput/erase/migration claims for
//     TPC-B, TPC-C and TATP.
//   - The IPA vs In-Page Logging comparison (trace replay).
//   - The longevity estimate and the N×M scheme sweep ablation.
//
// Every experiment returns structured results and can render itself as a
// plain-text table comparable with the paper.
package bench

import (
	"fmt"
	"time"

	"ipa"
	"ipa/internal/workload"
)

// Experiment describes one benchmark run.
type Experiment struct {
	// Name labels the run in reports.
	Name string
	// Workload selects the driver: "tpcb", "tpcc", "tatp", "linkbench",
	// a YCSB letter ("ycsb-a" .. "ycsb-f"), or a secondary-index variant
	// — "tatpsec" (sub_nbr lookups), "linkbenchsec" (assoc-by-id2) or
	// "secchurn" (isolated secondary-entry churn).
	Workload string
	// Scale is the workload scale factor (branches, warehouses,
	// subscribers/10000, nodes/10000 depending on the driver).
	Scale int

	// Mode, Scheme and Flash configure the write path under test.
	Mode   ipa.WriteMode
	Scheme ipa.Scheme
	Flash  ipa.FlashMode
	// IndexScheme overrides the N×M scheme of index entry pages (zero
	// inherits Scheme); see ipa.Config.IndexScheme.
	IndexScheme ipa.Scheme

	// Ops bounds the measurement by committed transactions; Duration
	// bounds it by virtual device time. At least one must be set.
	Ops      int
	Duration time.Duration

	// Device sizing (zero values select the defaults of DeviceProfile).
	PageSize        int
	Blocks          int
	PagesPerBlock   int
	BufferPoolPages int

	// Analytic enables per-eviction byte accounting; TraceEvictions
	// records the trace needed for the IPL comparison.
	Analytic       bool
	TraceEvictions bool

	Seed int64
}

// DeviceProfile selects the default device sizing of the harness: a scaled-
// down OpenSSD-like device that is large enough for GC to matter but small
// enough to simulate quickly.
type DeviceProfile struct {
	PageSize        int
	Blocks          int
	PagesPerBlock   int
	BufferPoolPages int
}

// DefaultProfile is used when an Experiment leaves the sizing fields zero.
var DefaultProfile = DeviceProfile{
	PageSize:        8 * 1024,
	Blocks:          128,
	PagesPerBlock:   64,
	BufferPoolPages: 128,
}

// SmallProfile is a reduced sizing for unit tests and Go benchmarks. It is
// large enough that the pSLC configurations (which halve the capacity)
// still have ample headroom over the scale-1/2 data sets.
var SmallProfile = DeviceProfile{
	PageSize:        4 * 1024,
	Blocks:          96,
	PagesPerBlock:   32,
	BufferPoolPages: 48,
}

// Result bundles the outcome of one experiment.
type Result struct {
	Experiment Experiment
	Stats      ipa.Stats
	Run        workload.RunResult
	LoadTime   time.Duration // virtual time consumed by the load phase
}

// Throughput returns committed transactions per virtual second.
func (r Result) Throughput() float64 { return r.Stats.Throughput() }

// NewWorkload instantiates the driver named by the experiment.
func NewWorkload(name string, scale int, seed int64) (workload.Workload, error) {
	if scale <= 0 {
		scale = 1
	}
	switch name {
	case "tpcb":
		cfg := workload.DefaultTPCBConfig()
		cfg.Branches = scale
		cfg.Seed = seed
		return workload.NewTPCB(cfg), nil
	case "tpcc":
		cfg := workload.DefaultTPCCConfig()
		cfg.Warehouses = scale
		cfg.Seed = seed
		return workload.NewTPCC(cfg), nil
	case "tatp", "tatpsec":
		cfg := workload.DefaultTATPConfig()
		cfg.Subscribers = scale * 5000
		cfg.Seed = seed
		cfg.SecondaryLookups = name == "tatpsec"
		return workload.NewTATP(cfg), nil
	case "linkbench", "linkbenchsec":
		cfg := workload.DefaultLinkBenchConfig()
		cfg.Nodes = scale * 5000
		cfg.Seed = seed
		cfg.AssocByID2 = name == "linkbenchsec"
		return workload.NewLinkBench(cfg), nil
	case "secchurn":
		cfg := workload.DefaultSecondaryChurnConfig()
		cfg.Rows = scale * 10000
		cfg.Seed = seed
		return workload.NewSecondaryChurn(cfg), nil
	case "ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f":
		cfg := workload.DefaultYCSBConfig(name[len("ycsb-")])
		cfg.Records = scale * 5000
		cfg.Seed = seed
		return workload.NewYCSB(cfg)
	default:
		return nil, fmt.Errorf("bench: unknown workload %q", name)
	}
}

// config builds the engine configuration for an experiment.
func (e Experiment) config() ipa.Config {
	p := DefaultProfile
	if e.PageSize > 0 {
		p.PageSize = e.PageSize
	}
	if e.Blocks > 0 {
		p.Blocks = e.Blocks
	}
	if e.PagesPerBlock > 0 {
		p.PagesPerBlock = e.PagesPerBlock
	}
	if e.BufferPoolPages > 0 {
		p.BufferPoolPages = e.BufferPoolPages
	}
	return ipa.Config{
		PageSize:        p.PageSize,
		Blocks:          p.Blocks,
		PagesPerBlock:   p.PagesPerBlock,
		BufferPoolPages: p.BufferPoolPages,
		WriteMode:       e.Mode,
		Scheme:          e.Scheme,
		IndexScheme:     e.IndexScheme,
		FlashMode:       e.Flash,
		Analytic:        e.Analytic,
		TraceEvictions:  e.TraceEvictions,
		Seed:            e.Seed,
	}
}

// ApplyProfile fills the sizing fields of e from p (explicit fields win).
func (e Experiment) ApplyProfile(p DeviceProfile) Experiment {
	if e.PageSize == 0 {
		e.PageSize = p.PageSize
	}
	if e.Blocks == 0 {
		e.Blocks = p.Blocks
	}
	if e.PagesPerBlock == 0 {
		e.PagesPerBlock = p.PagesPerBlock
	}
	if e.BufferPoolPages == 0 {
		e.BufferPoolPages = p.BufferPoolPages
	}
	return e
}

// Run executes one experiment: open a fresh database, load the workload,
// reset the counters and run the measurement phase.
func Run(e Experiment) (Result, error) {
	if e.Ops <= 0 && e.Duration <= 0 {
		return Result{}, fmt.Errorf("bench: experiment %q needs Ops or Duration", e.Name)
	}
	db, err := ipa.Open(e.config())
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s: %w", e.Name, err)
	}
	defer db.Close()

	w, err := NewWorkload(e.Workload, e.Scale, e.Seed)
	if err != nil {
		return Result{}, err
	}
	loadStart := db.Now()
	if err := w.Load(db); err != nil {
		return Result{}, fmt.Errorf("bench: %s load: %w", e.Name, err)
	}
	loadTime := db.Now() - loadStart
	db.ResetStats()

	run, err := workload.Run(db, w, workload.RunOptions{
		MaxOps:   e.Ops,
		Duration: e.Duration,
		Seed:     e.Seed + 1,
	})
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s run: %w", e.Name, err)
	}
	if err := db.FlushAll(); err != nil {
		return Result{}, fmt.Errorf("bench: %s flush: %w", e.Name, err)
	}
	return Result{
		Experiment: e,
		Stats:      db.Stats(),
		Run:        run,
		LoadTime:   loadTime,
	}, nil
}

// RunWithDB is like Run but gives the caller access to the database after
// the measurement (e.g. to fetch the eviction trace).
func RunWithDB(e Experiment, use func(db *ipa.DB, res Result) error) (Result, error) {
	if e.Ops <= 0 && e.Duration <= 0 {
		return Result{}, fmt.Errorf("bench: experiment %q needs Ops or Duration", e.Name)
	}
	db, err := ipa.Open(e.config())
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s: %w", e.Name, err)
	}
	defer db.Close()
	w, err := NewWorkload(e.Workload, e.Scale, e.Seed)
	if err != nil {
		return Result{}, err
	}
	loadStart := db.Now()
	if err := w.Load(db); err != nil {
		return Result{}, fmt.Errorf("bench: %s load: %w", e.Name, err)
	}
	loadTime := db.Now() - loadStart
	db.ResetStats()
	run, err := workload.Run(db, w, workload.RunOptions{MaxOps: e.Ops, Duration: e.Duration, Seed: e.Seed + 1})
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s run: %w", e.Name, err)
	}
	if err := db.FlushAll(); err != nil {
		return Result{}, fmt.Errorf("bench: %s flush: %w", e.Name, err)
	}
	res := Result{Experiment: e, Stats: db.Stats(), Run: run, LoadTime: loadTime}
	if use != nil {
		if err := use(db, res); err != nil {
			return res, err
		}
	}
	return res, nil
}
