package bench

import (
	"fmt"
	"io"
	"time"
)

// ScenarioOptions configures the three-way comparison of the paper's
// demonstration scenarios on the same workload:
//
//	scenario 1 — traditional out-of-place writes (baseline),
//	scenario 2 — IPA for conventional SSDs (block-device interface),
//	scenario 3 — IPA for native Flash (write_delta command).
//
// Scenarios 2 and 3 avoid the same page invalidations and GC work; the
// native path additionally removes the DBMS write amplification on the
// host interface because only the delta records are transferred.
type ScenarioOptions struct {
	Workload string
	Scale    int
	Ops      int
	Duration time.Duration
	Profile  DeviceProfile
	SchemeN  int
	SchemeM  int
	Seed     int64
}

// DefaultScenarioOptions returns the configuration used by cmd/ipabench.
func DefaultScenarioOptions() ScenarioOptions {
	return ScenarioOptions{
		Workload: "tpcb",
		Scale:    2,
		Ops:      8000,
		Profile:  DefaultProfile,
		SchemeN:  2,
		SchemeM:  4,
		Seed:     1,
	}
}

// ScenarioRow is one demonstration scenario.
type ScenarioRow struct {
	Label            string
	Result           Result
	HostWrites       uint64
	HostBytesWritten uint64
	InPlaceAppends   uint64
	Invalidations    uint64
	GCErases         uint64
	Throughput       float64
	WriteAmp         float64
}

// ScenarioResult bundles the three scenarios.
type ScenarioResult struct {
	Baseline ScenarioRow
	SSD      ScenarioRow
	Native   ScenarioRow
}

// Rows returns the scenarios in presentation order.
func (r ScenarioResult) Rows() []ScenarioRow { return []ScenarioRow{r.Baseline, r.SSD, r.Native} }

func makeScenarioRow(label string, res Result) ScenarioRow {
	s := res.Stats
	return ScenarioRow{
		Label:            label,
		Result:           res,
		HostWrites:       s.TotalHostWrites(),
		HostBytesWritten: s.HostBytesWritten,
		InPlaceAppends:   s.InPlaceAppends,
		Invalidations:    s.Invalidations,
		GCErases:         s.GCErases,
		Throughput:       s.Throughput(),
		WriteAmp:         s.DBMSWriteAmplification(),
	}
}

// Scenarios runs the three demonstration scenarios.
func Scenarios(o ScenarioOptions) (ScenarioResult, error) {
	if o.Workload == "" {
		o.Workload = "tpcb"
	}
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Ops <= 0 && o.Duration <= 0 {
		o.Ops = 8000
	}
	if o.SchemeN == 0 && o.SchemeM == 0 {
		o.SchemeN, o.SchemeM = 2, 4
	}
	scheme := ipaScheme(o.SchemeN, o.SchemeM)
	var out ScenarioResult

	base := Experiment{
		Name: "scenario1-baseline", Workload: o.Workload, Scale: o.Scale,
		Mode: modeTraditional, Flash: flashMLC,
		Ops: o.Ops, Duration: o.Duration, Seed: o.Seed, Analytic: true,
	}.ApplyProfile(o.Profile)
	ssd := Experiment{
		Name: "scenario2-ipa-ssd", Workload: o.Workload, Scale: o.Scale,
		Mode: modeSSD, Scheme: scheme, Flash: flashPSLC,
		Ops: o.Ops, Duration: o.Duration, Seed: o.Seed, Analytic: true,
	}.ApplyProfile(o.Profile)
	native := Experiment{
		Name: "scenario3-ipa-native", Workload: o.Workload, Scale: o.Scale,
		Mode: modeNative, Scheme: scheme, Flash: flashPSLC,
		Ops: o.Ops, Duration: o.Duration, Seed: o.Seed, Analytic: true,
	}.ApplyProfile(o.Profile)

	baseRes, err := Run(base)
	if err != nil {
		return out, err
	}
	out.Baseline = makeScenarioRow("1: traditional", baseRes)
	ssdRes, err := Run(ssd)
	if err != nil {
		return out, err
	}
	out.SSD = makeScenarioRow("2: IPA conventional SSD", ssdRes)
	nativeRes, err := Run(native)
	if err != nil {
		return out, err
	}
	out.Native = makeScenarioRow("3: IPA native Flash", nativeRes)
	return out, nil
}

// Write renders the comparison.
func (r ScenarioResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Demonstration scenarios: traditional vs IPA (conventional SSD) vs IPA (native Flash)\n")
	fmt.Fprintf(w, "%-26s %12s %16s %12s %14s %10s %12s %10s\n",
		"scenario", "host writes", "bytes to device", "in-place", "invalidations", "erases", "tps", "write-amp")
	for _, row := range r.Rows() {
		fmt.Fprintf(w, "%-26s %12d %16d %12d %14d %10d %12.1f %9.1fx\n",
			row.Label, row.HostWrites, row.HostBytesWritten, row.InPlaceAppends,
			row.Invalidations, row.GCErases, row.Throughput, row.WriteAmp)
	}
}
