package bench

import (
	"fmt"
	"io"
	"time"
)

// Table1Options configures the Table 1 reproduction: TPC-B under the
// traditional approach [0×0] and under IPA [2×4] in pSLC and odd-MLC modes,
// all running for the same amount of (virtual) time, exactly like the
// two-hour runs of the paper.
type Table1Options struct {
	// Scale is the TPC-B scale factor (branches).
	Scale int
	// Duration is the virtual run time per configuration. The paper used
	// two hours on real hardware; the demo used 5-10 minutes.
	Duration time.Duration
	// Ops optionally bounds the run by committed transactions instead.
	Ops int
	// Profile sizes the simulated device.
	Profile DeviceProfile
	// Scheme is the IPA configuration (the paper uses 2×4).
	Scheme struct{ N, M int }
	Seed   int64
}

// DefaultTable1Options returns the configuration used by cmd/ipabench.
func DefaultTable1Options() Table1Options {
	o := Table1Options{
		Scale:    4,
		Duration: 12 * time.Second,
		Profile:  DefaultProfile,
		Seed:     1,
	}
	o.Scheme.N, o.Scheme.M = 2, 4
	return o
}

// Table1Row is one column of the paper's Table 1 (one configuration).
type Table1Row struct {
	Label      string
	Result     Result
	HostReads  uint64
	HostWrites uint64
	// OOPvsIPA is the percentage split of out-of-place writes vs in-place
	// appends (the "33/67" style row).
	OutOfPlacePct float64
	InPlacePct    float64
	GCMigrations  uint64
	GCErases      uint64
	MigPerWrite   float64
	ErasePerWrite float64
	Throughput    float64
}

// Table1Result bundles the three configurations.
type Table1Result struct {
	Baseline Table1Row // [0×0] traditional
	PSLC     Table1Row // [2×4] pSLC
	OddMLC   Table1Row // [2×4] odd-MLC
}

// Rows returns the rows in presentation order.
func (t Table1Result) Rows() []Table1Row { return []Table1Row{t.Baseline, t.PSLC, t.OddMLC} }

// Table1RowFromResult derives the Table 1 metrics from any experiment
// result; the Go benchmarks in bench_test.go use it to report single
// configurations.
func Table1RowFromResult(res Result) Table1Row {
	label := res.Experiment.Scheme.String()
	if res.Experiment.Name != "" {
		label = res.Experiment.Name
	}
	return makeTable1Row(label, res)
}

func makeTable1Row(label string, res Result) Table1Row {
	s := res.Stats
	total := s.InPlaceAppends + s.OutOfPlaceWrites
	row := Table1Row{
		Label:         label,
		Result:        res,
		HostReads:     s.HostReads,
		HostWrites:    s.TotalHostWrites(),
		GCMigrations:  s.GCMigrations,
		GCErases:      s.GCErases,
		MigPerWrite:   s.MigrationsPerHostWrite(),
		ErasePerWrite: s.ErasesPerHostWrite(),
		Throughput:    s.Throughput(),
	}
	if total > 0 {
		row.OutOfPlacePct = 100 * float64(s.OutOfPlaceWrites) / float64(total)
		row.InPlacePct = 100 * float64(s.InPlaceAppends) / float64(total)
	}
	return row
}

// Table1 runs the three configurations of the paper's Table 1 and returns
// the comparison.
func Table1(o Table1Options) (Table1Result, error) {
	if o.Scale <= 0 {
		o.Scale = 4
	}
	if o.Duration <= 0 && o.Ops <= 0 {
		o.Duration = 4 * time.Second
	}
	if o.Scheme.N == 0 && o.Scheme.M == 0 {
		o.Scheme.N, o.Scheme.M = 2, 4
	}
	scheme := ipaScheme(o.Scheme.N, o.Scheme.M)

	base := Experiment{
		Name: "table1-0x0", Workload: "tpcb", Scale: o.Scale,
		Mode: modeTraditional, Flash: flashMLC,
		Ops: o.Ops, Duration: o.Duration, Seed: o.Seed, Analytic: true,
	}.ApplyProfile(o.Profile)
	pslc := Experiment{
		Name: "table1-2x4-pslc", Workload: "tpcb", Scale: o.Scale,
		Mode: modeNative, Scheme: scheme, Flash: flashPSLC,
		Ops: o.Ops, Duration: o.Duration, Seed: o.Seed, Analytic: true,
	}.ApplyProfile(o.Profile)
	odd := Experiment{
		Name: "table1-2x4-oddmlc", Workload: "tpcb", Scale: o.Scale,
		Mode: modeNative, Scheme: scheme, Flash: flashOddMLC,
		Ops: o.Ops, Duration: o.Duration, Seed: o.Seed, Analytic: true,
	}.ApplyProfile(o.Profile)

	var out Table1Result
	baseRes, err := Run(base)
	if err != nil {
		return out, err
	}
	out.Baseline = makeTable1Row("0x0", baseRes)
	pslcRes, err := Run(pslc)
	if err != nil {
		return out, err
	}
	out.PSLC = makeTable1Row(fmt.Sprintf("%s pSLC", scheme), pslcRes)
	oddRes, err := Run(odd)
	if err != nil {
		return out, err
	}
	out.OddMLC = makeTable1Row(fmt.Sprintf("%s odd-MLC", scheme), oddRes)
	return out, nil
}

// Write renders the result in the layout of the paper's Table 1: absolute
// values per configuration plus the change relative to the baseline.
func (t Table1Result) Write(w io.Writer) {
	b, p, o := t.Baseline, t.PSLC, t.OddMLC
	rel := func(v, base float64) string {
		if base == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.0f%%", 100*(v-base)/base)
	}
	fmt.Fprintf(w, "TPC-B: traditional [0x0] vs IPA [%s]\n", p.Result.Experiment.Scheme)
	fmt.Fprintf(w, "%-34s %14s %14s %9s %14s %9s\n", "", "0x0", "pSLC", "rel", "odd-MLC", "rel")
	row := func(name string, bv, pv, ov float64, format string) {
		fmt.Fprintf(w, "%-34s "+format+" "+format+" %9s "+format+" %9s\n",
			name, bv, pv, rel(pv, bv), ov, rel(ov, bv))
	}
	row("Host Reads (pages)", float64(b.HostReads), float64(p.HostReads), float64(o.HostReads), "%14.0f")
	row("Host Writes (pages+deltas)", float64(b.HostWrites), float64(p.HostWrites), float64(o.HostWrites), "%14.0f")
	fmt.Fprintf(w, "%-34s %10.0f/%.0f %10.0f/%.0f %9s %10.0f/%.0f %9s\n",
		"Out-of-Place vs In-Place [%]",
		b.OutOfPlacePct, b.InPlacePct, p.OutOfPlacePct, p.InPlacePct, "",
		o.OutOfPlacePct, o.InPlacePct, "")
	row("GC Page Migrations", float64(b.GCMigrations), float64(p.GCMigrations), float64(o.GCMigrations), "%14.0f")
	row("GC Erases", float64(b.GCErases), float64(p.GCErases), float64(o.GCErases), "%14.0f")
	row("Page Migrations per Host Write", b.MigPerWrite, p.MigPerWrite, o.MigPerWrite, "%14.4f")
	row("GC Erases per Host Write", b.ErasePerWrite, p.ErasePerWrite, o.ErasePerWrite, "%14.4f")
	row("Transactional Throughput (tps)", b.Throughput, p.Throughput, o.Throughput, "%14.1f")
}
