package bench

import (
	"fmt"
	"io"
	"time"

	"ipa"
	"ipa/internal/crash"
)

// CrashOptions configures the crash-torture experiment: a deterministic
// power-cut sweep across every write path.
type CrashOptions struct {
	// Modes are the write paths tortured (default: all three).
	Modes []ipa.WriteMode
	// Ops is the number of transactions per run (0 = harness default).
	Ops int
	// Sample bounds the fault points tested per fault mode (0 = every
	// enumerated point, the exhaustive sweep).
	Sample int
	// Chips is the device chip count (0 = 1).
	Chips int
	Seed  int64
}

// DefaultCrashOptions returns the exhaustive single-chip sweep.
func DefaultCrashOptions() CrashOptions {
	return CrashOptions{
		Modes: []ipa.WriteMode{ipa.Traditional, ipa.IPAConventionalSSD, ipa.IPANativeFlash},
		Seed:  7,
	}
}

// CrashRow is the outcome of one write path's sweep, including the
// aggregated time-to-recover of every successful Reopen: wall and virtual
// recovery time, physical pages scanned by the chip-parallel FTL rebuild
// and WAL records redone — the quantities fuzzy checkpoints bound.
type CrashRow struct {
	Mode        ipa.WriteMode         `json:"mode"`
	FaultPoints int                   `json:"fault_points"`
	Runs        int                   `json:"runs"`
	Crashes     int                   `json:"crashes"`
	GCCovered   bool                  `json:"gc_covered"`
	Checkpoints int                   `json:"checkpoints"`
	CkptCovered bool                  `json:"checkpoint_covered"`
	Recovery    crash.RecoverySummary `json:"recovery"`
	Failures    []string              `json:"failures"`
}

// CrashResult is the full torture outcome.
type CrashResult struct {
	Rows []CrashRow
}

// Failed reports whether any write path violated a recovery invariant.
func (r CrashResult) Failed() bool {
	for _, row := range r.Rows {
		if len(row.Failures) > 0 {
			return true
		}
	}
	return false
}

// Crash runs the power-cut torture sweep for every requested write path.
func Crash(o CrashOptions) (CrashResult, error) {
	if len(o.Modes) == 0 {
		o.Modes = []ipa.WriteMode{ipa.Traditional, ipa.IPAConventionalSSD, ipa.IPANativeFlash}
	}
	var out CrashResult
	for _, mode := range o.Modes {
		co := crash.DefaultOptions()
		co.DB.WriteMode = mode
		if o.Chips > 0 {
			co.DB.Chips = o.Chips
		}
		if o.Ops > 0 {
			co.Ops = o.Ops
		}
		if o.Seed != 0 {
			co.Seed = o.Seed
		}
		co.Sample = o.Sample
		res, err := crash.Sweep(co)
		if err != nil {
			return out, fmt.Errorf("bench: crash sweep (%s): %w", mode, err)
		}
		out.Rows = append(out.Rows, CrashRow{
			Mode:        mode,
			FaultPoints: res.FaultPoints,
			Runs:        res.Runs,
			Crashes:     res.Crashes,
			GCCovered:   res.GCCovered,
			Checkpoints: res.Checkpoints,
			CkptCovered: res.CkptCovered,
			Recovery:    res.Recovery,
			Failures:    res.Failures,
		})
	}
	return out, nil
}

// Write renders the torture outcome, including the mean time-to-recover.
func (r CrashResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Power-cut torture: crash at every fault point, reopen, verify\n")
	fmt.Fprintf(w, "%-14s %12s %10s %10s %10s %10s %10s\n",
		"write path", "fault points", "runs", "crashes", "gc hit", "ckpt hit", "failures")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %12d %10d %10d %10v %10v %10d\n",
			row.Mode, row.FaultPoints, row.Runs, row.Crashes, row.GCCovered, row.CkptCovered, len(row.Failures))
	}
	fmt.Fprintf(w, "Time-to-recover (mean per Reopen):\n")
	fmt.Fprintf(w, "%-14s %12s %12s %12s %14s %14s %14s\n",
		"write path", "recoveries", "from ckpt", "wall", "virtual", "pages scanned", "records redone")
	for _, row := range r.Rows {
		rec := row.Recovery
		if rec.Recoveries == 0 {
			continue
		}
		n := time.Duration(rec.Recoveries)
		fmt.Fprintf(w, "%-14s %12d %12d %12s %14s %14.0f %14.1f\n",
			row.Mode, rec.Recoveries, rec.FromCheckpoint,
			(rec.Wall / n).Round(time.Microsecond), (rec.Virtual / n).Round(time.Microsecond),
			float64(rec.PagesScanned)/float64(rec.Recoveries),
			float64(rec.RecordsRedone)/float64(rec.Recoveries))
	}
	for _, row := range r.Rows {
		for _, f := range row.Failures {
			fmt.Fprintf(w, "FAIL [%s] %s\n", row.Mode, f)
		}
	}
}
