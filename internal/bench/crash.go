package bench

import (
	"fmt"
	"io"

	"ipa"
	"ipa/internal/crash"
)

// CrashOptions configures the crash-torture experiment: a deterministic
// power-cut sweep across every write path.
type CrashOptions struct {
	// Modes are the write paths tortured (default: all three).
	Modes []ipa.WriteMode
	// Ops is the number of transactions per run (0 = harness default).
	Ops int
	// Sample bounds the fault points tested per fault mode (0 = every
	// enumerated point, the exhaustive sweep).
	Sample int
	// Chips is the device chip count (0 = 1).
	Chips int
	Seed  int64
}

// DefaultCrashOptions returns the exhaustive single-chip sweep.
func DefaultCrashOptions() CrashOptions {
	return CrashOptions{
		Modes: []ipa.WriteMode{ipa.Traditional, ipa.IPAConventionalSSD, ipa.IPANativeFlash},
		Seed:  7,
	}
}

// CrashRow is the outcome of one write path's sweep.
type CrashRow struct {
	Mode        ipa.WriteMode
	FaultPoints int
	Runs        int
	Crashes     int
	GCCovered   bool
	Failures    []string
}

// CrashResult is the full torture outcome.
type CrashResult struct {
	Rows []CrashRow
}

// Failed reports whether any write path violated a recovery invariant.
func (r CrashResult) Failed() bool {
	for _, row := range r.Rows {
		if len(row.Failures) > 0 {
			return true
		}
	}
	return false
}

// Crash runs the power-cut torture sweep for every requested write path.
func Crash(o CrashOptions) (CrashResult, error) {
	if len(o.Modes) == 0 {
		o.Modes = []ipa.WriteMode{ipa.Traditional, ipa.IPAConventionalSSD, ipa.IPANativeFlash}
	}
	var out CrashResult
	for _, mode := range o.Modes {
		co := crash.DefaultOptions()
		co.DB.WriteMode = mode
		if o.Chips > 0 {
			co.DB.Chips = o.Chips
		}
		if o.Ops > 0 {
			co.Ops = o.Ops
		}
		if o.Seed != 0 {
			co.Seed = o.Seed
		}
		co.Sample = o.Sample
		res, err := crash.Sweep(co)
		if err != nil {
			return out, fmt.Errorf("bench: crash sweep (%s): %w", mode, err)
		}
		out.Rows = append(out.Rows, CrashRow{
			Mode:        mode,
			FaultPoints: res.FaultPoints,
			Runs:        res.Runs,
			Crashes:     res.Crashes,
			GCCovered:   res.GCCovered,
			Failures:    res.Failures,
		})
	}
	return out, nil
}

// Write renders the torture outcome.
func (r CrashResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Power-cut torture: crash at every fault point, reopen, verify\n")
	fmt.Fprintf(w, "%-14s %12s %10s %10s %10s %10s\n",
		"write path", "fault points", "runs", "crashes", "gc hit", "failures")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %12d %10d %10d %10v %10d\n",
			row.Mode, row.FaultPoints, row.Runs, row.Crashes, row.GCCovered, len(row.Failures))
	}
	for _, row := range r.Rows {
		for _, f := range row.Failures {
			fmt.Fprintf(w, "FAIL [%s] %s\n", row.Mode, f)
		}
	}
}
