package bench

import (
	"fmt"
	"io"
)

// Figure1Options configures the write-amplification analysis behind
// Figure 1 of the paper: for each OLTP workload, how many bytes does the
// DBMS actually modify per evicted dirty page, how much does the
// traditional approach write, and how much does IPA (write_delta) transfer
// instead.
type Figure1Options struct {
	// Workloads to analyse (default: the four from the paper).
	Workloads []string
	// Scale and Ops size each run.
	Scale int
	Ops   int
	// Profile sizes the simulated device.
	Profile DeviceProfile
	// Scheme is the IPA configuration used for the delta-transfer
	// comparison (default 2×4).
	SchemeN, SchemeM int
	Seed             int64
}

// DefaultFigure1Options returns the configuration used by cmd/ipabench.
func DefaultFigure1Options() Figure1Options {
	return Figure1Options{
		Workloads: []string{"tpcb", "tpcc", "tatp", "linkbench"},
		Scale:     2,
		Ops:       8000,
		Profile:   DefaultProfile,
		SchemeN:   2,
		SchemeM:   4,
		Seed:      1,
	}
}

// Figure1Row summarises one workload.
type Figure1Row struct {
	Workload string

	// Traditional write path.
	DirtyEvictions     uint64
	SmallEvictionShare float64 // fraction of dirty evictions changing < 100 bytes
	AvgChangedBytes    float64 // net modified bytes per dirty eviction
	PageBytesWritten   uint64  // bytes the traditional approach transfers
	WriteAmplification float64 // transferred / modified
	// Histogram is the distribution of net modified bytes per dirty
	// eviction; HistogramBounds holds the inclusive upper bound of each
	// bucket (the last histogram entry counts larger evictions).
	Histogram       []uint64
	HistogramBounds []int

	// IPA (native) write path on the same workload.
	IPABytesWritten  uint64  // bytes transferred with write_delta available
	IPAReductionPct  float64 // transfer reduction vs traditional
	IPAInPlaceShare  float64 // fraction of host writes served in place
	DeltaBytes       uint64  // bytes carried inside delta records
	IPAAppendedPages uint64  // evictions served as appends
}

// Figure1Result is the full analysis.
type Figure1Result struct {
	Rows []Figure1Row
}

// Figure1 runs the analysis for every requested workload.
func Figure1(o Figure1Options) (Figure1Result, error) {
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"tpcb", "tpcc", "tatp", "linkbench"}
	}
	if o.Ops <= 0 {
		o.Ops = 8000
	}
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.SchemeN == 0 && o.SchemeM == 0 {
		o.SchemeN, o.SchemeM = 2, 4
	}
	var out Figure1Result
	for _, wl := range o.Workloads {
		trad := Experiment{
			Name: "fig1-" + wl + "-traditional", Workload: wl, Scale: o.Scale,
			Mode: modeTraditional, Flash: flashMLC,
			Ops: o.Ops, Seed: o.Seed, Analytic: true,
		}.ApplyProfile(o.Profile)
		native := Experiment{
			Name: "fig1-" + wl + "-ipa", Workload: wl, Scale: o.Scale,
			Mode: modeNative, Scheme: ipaScheme(o.SchemeN, o.SchemeM), Flash: flashPSLC,
			Ops: o.Ops, Seed: o.Seed, Analytic: true,
		}.ApplyProfile(o.Profile)

		tradRes, err := Run(trad)
		if err != nil {
			return out, err
		}
		ipaRes, err := Run(native)
		if err != nil {
			return out, err
		}

		ts, is := tradRes.Stats, ipaRes.Stats
		row := Figure1Row{
			Workload:           wl,
			DirtyEvictions:     ts.DirtyEvictions,
			SmallEvictionShare: ts.SmallEvictionShare(),
			PageBytesWritten:   ts.HostBytesWritten,
			WriteAmplification: ts.DBMSWriteAmplification(),
			Histogram:          ts.EvictionSizeHistogram,
			HistogramBounds:    ts.EvictionHistogramBounds,
			IPABytesWritten:    is.HostBytesWritten,
			IPAInPlaceShare:    is.InPlaceShare(),
			DeltaBytes:         is.DeltaBytesWritten,
			IPAAppendedPages:   is.IPAAppendEvictions,
		}
		if ts.DirtyEvictions > 0 {
			row.AvgChangedBytes = float64(ts.NetChangedBytes) / float64(ts.DirtyEvictions)
		}
		if ts.HostBytesWritten > 0 {
			// Normalise the IPA transfer volume by the work performed, so
			// runs with different committed-transaction counts compare
			// fairly.
			tradPerTxn := float64(ts.HostBytesWritten) / float64(maxU64(1, ts.CommittedTxns))
			ipaPerTxn := float64(is.HostBytesWritten) / float64(maxU64(1, is.CommittedTxns))
			row.IPAReductionPct = 100 * (1 - ipaPerTxn/tradPerTxn)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Write renders the analysis.
func (r Figure1Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Figure 1: DBMS write-amplification, traditional vs In-Place Appends\n")
	fmt.Fprintf(w, "%-10s %10s %12s %12s %10s %14s %12s\n",
		"workload", "evictions", "<100B share", "avg changed", "write-amp", "IPA transfer", "in-place")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %10d %11.1f%% %11.1fB %9.1fx %13.1f%% %11.1f%%\n",
			row.Workload, row.DirtyEvictions, 100*row.SmallEvictionShare, row.AvgChangedBytes,
			row.WriteAmplification, row.IPAReductionPct, 100*row.IPAInPlaceShare)
	}
	fmt.Fprintf(w, "\nDistribution of net modified bytes per evicted dirty page:\n")
	for _, row := range r.Rows {
		if row.DirtyEvictions == 0 || len(row.Histogram) == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-10s", row.Workload)
		for i, count := range row.Histogram {
			label := "more"
			if i < len(row.HistogramBounds) {
				label = fmt.Sprintf("<=%dB", row.HistogramBounds[i])
			}
			fmt.Fprintf(w, " %s:%.1f%%", label, 100*float64(count)/float64(row.DirtyEvictions))
		}
		fmt.Fprintln(w)
	}
}
