package bench

import (
	"fmt"
	"io"
	"time"
)

// SecondaryOptions configures the secondary-index experiment: the same
// secondary-heavy workloads run with traditional out-of-place index
// persistence and with IPA-native delta appends, comparing the physical
// Flash writes caused by secondary-index maintenance.
//
// "secchurn" is the isolation workload — its primary keys never change
// during the run, so the KindIndex counters measure (almost) pure
// secondary churn; "tatpsec" (sub_nbr lookups + call-forwarding churn)
// and "linkbenchsec" (assoc-by-id2) add realistic shapes.
type SecondaryOptions struct {
	// Workloads are the drivers compared (default secchurn + tatpsec +
	// linkbenchsec).
	Workloads []string
	Scale     int
	Ops       int
	Duration  time.Duration
	// Profile is the device sizing (default bench.IndexProfile: small
	// pool, so index maintenance reaches Flash).
	Profile DeviceProfile
	SchemeN int
	SchemeM int
	// IndexN/IndexM size the index-region scheme applied to both the
	// primary-key and secondary entry pages (Config.IndexScheme).
	IndexN int
	IndexM int
	Seed   int64
}

// DefaultSecondaryOptions returns the configuration used by cmd/ipabench.
func DefaultSecondaryOptions() SecondaryOptions {
	return SecondaryOptions{
		Workloads: []string{"secchurn", "tatpsec", "linkbenchsec"},
		Scale:     1,
		Ops:       20000,
		Profile:   IndexProfile,
		SchemeN:   2,
		SchemeM:   4,
		IndexN:    4,
		IndexM:    20,
		Seed:      1,
	}
}

// SecondaryResult bundles the comparison rows in presentation order. The
// rows reuse the index-experiment shape: the KindIndex counters cover the
// secondary entry pages (plus the mostly idle primary key).
type SecondaryResult struct {
	Rows []IndexRow
}

// Secondary runs the secondary-index maintenance comparison.
func Secondary(o SecondaryOptions) (SecondaryResult, error) {
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"secchurn", "tatpsec", "linkbenchsec"}
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Ops <= 0 && o.Duration <= 0 {
		o.Ops = 8000
	}
	if o.SchemeN == 0 && o.SchemeM == 0 {
		o.SchemeN, o.SchemeM = 2, 4
	}
	if o.IndexN == 0 && o.IndexM == 0 {
		o.IndexN, o.IndexM = 4, 20
	}
	scheme := ipaScheme(o.SchemeN, o.SchemeM)
	idxScheme := ipaScheme(o.IndexN, o.IndexM)
	var out SecondaryResult
	for _, w := range o.Workloads {
		base := Experiment{
			Name: "secondary-oop-" + w, Workload: w, Scale: o.Scale,
			Mode: modeTraditional, Flash: flashMLC,
			Ops: o.Ops, Duration: o.Duration, Seed: o.Seed,
		}.ApplyProfile(o.Profile)
		native := Experiment{
			Name: "secondary-ipa-" + w, Workload: w, Scale: o.Scale,
			Mode: modeNative, Scheme: scheme, IndexScheme: idxScheme, Flash: flashPSLC,
			Ops: o.Ops, Duration: o.Duration, Seed: o.Seed,
		}.ApplyProfile(o.Profile)
		baseRes, err := Run(base)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, makeIndexRow(w, "out-of-place", baseRes))
		nativeRes, err := Run(native)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, makeIndexRow(w, fmt.Sprintf("IPA %s", idxScheme), nativeRes))
	}
	return out, nil
}

// Write renders the comparison.
func (r SecondaryResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Secondary-index maintenance: out-of-place vs IPA delta appends (entry pages)\n")
	fmt.Fprintf(w, "%-13s %-12s %12s %12s %14s %12s %14s %10s\n",
		"workload", "write path", "idx evicts", "idx appends", "idx page wr", "idx deltas", "deltas/merge", "tps")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-13s %-12s %12d %12d %14d %12d %14.1f %10.1f\n",
			row.Workload, row.Label, row.IndexPageWrites, row.IndexInPlace,
			row.IndexOutOfPlace, row.IndexDeltas, row.DeltasPerMerge, row.Throughput)
	}
}
