package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// JSONEntry is one machine-readable experiment result: the experiment name,
// the options it ran with and the full structured result (including the
// engine Stats every metric derives from). cmd/ipabench -json collects one
// entry per experiment and writes them as a JSON array, which CI uploads as
// a build artifact so benchmark trajectories can be tracked across commits.
type JSONEntry struct {
	Experiment string `json:"experiment"`
	Config     any    `json:"config,omitempty"`
	Result     any    `json:"result"`
}

// Report accumulates the JSON entries of one ipabench invocation.
type Report struct {
	Entries []JSONEntry
}

// Add records one experiment outcome.
func (r *Report) Add(experiment string, config, result any) {
	r.Entries = append(r.Entries, JSONEntry{Experiment: experiment, Config: config, Result: result})
}

// WriteFile writes the collected entries as an indented JSON array.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r.Entries, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode JSON report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write JSON report: %w", err)
	}
	return nil
}
