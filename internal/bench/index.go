package bench

import (
	"fmt"
	"io"
	"time"
)

// IndexOptions configures the index-maintenance experiment: the same
// workload run with traditional out-of-place index persistence and with
// IPA-native delta appends, comparing the physical Flash writes caused by
// primary-key index maintenance.
//
// TATP is the headline workload (its insert/delete call-forwarding ops
// churn the forwarding index in ~4 % of transactions); LinkBench adds a
// second, insert-heavier shape.
type IndexOptions struct {
	// Workloads are the drivers compared (default tatp + linkbench).
	Workloads []string
	Scale     int
	Ops       int
	Duration  time.Duration
	Profile   DeviceProfile
	SchemeN   int
	SchemeM   int
	// IndexN/IndexM size the index-region scheme. An index entry insert
	// patches ~20 body bytes (entry + slot), so index pages want wider
	// records than heap pages (whose OLTP field updates are a few bytes).
	IndexN int
	IndexM int
	Seed   int64
}

// IndexProfile is the device sizing of the index experiment: the default
// device with a deliberately small buffer pool, so index maintenance
// actually reaches Flash instead of being absorbed by the cache (a cache
// big enough to hold every index page would leave nothing to measure).
var IndexProfile = DeviceProfile{
	PageSize:        8 * 1024,
	Blocks:          128,
	PagesPerBlock:   64,
	BufferPoolPages: 24,
}

// DefaultIndexOptions returns the configuration used by cmd/ipabench.
func DefaultIndexOptions() IndexOptions {
	return IndexOptions{
		Workloads: []string{"tatp", "linkbench"},
		Scale:     1,
		Ops:       20000,
		Profile:   IndexProfile,
		SchemeN:   2,
		SchemeM:   4,
		IndexN:    4,
		IndexM:    20,
		Seed:      1,
	}
}

// IndexRow is one (workload, write path) measurement.
type IndexRow struct {
	Workload string
	Label    string
	Result   Result

	// IndexPageWrites is the number of dirty index-page evictions;
	// IndexOutOfPlace of them were physical whole-page programs and
	// IndexInPlace were delta appends onto the existing physical page.
	IndexPageWrites uint64
	IndexInPlace    uint64
	IndexOutOfPlace uint64
	IndexDeltas     uint64
	// DeltasPerMerge is how many delta appends one full index-page rewrite
	// (merge) amortises.
	DeltasPerMerge float64
	Throughput     float64
}

// IndexResult bundles the comparison rows in presentation order.
type IndexResult struct {
	Rows []IndexRow
}

func makeIndexRow(workload, label string, res Result) IndexRow {
	s := res.Stats
	return IndexRow{
		Workload:        workload,
		Label:           label,
		Result:          res,
		IndexPageWrites: s.IndexPageWrites,
		IndexInPlace:    s.IndexInPlaceAppends,
		IndexOutOfPlace: s.IndexOutOfPlaceWrites,
		IndexDeltas:     s.IndexDeltaRecords,
		DeltasPerMerge:  s.IndexDeltasPerMerge(),
		Throughput:      s.Throughput(),
	}
}

// Index runs the index-maintenance comparison.
func Index(o IndexOptions) (IndexResult, error) {
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"tatp", "linkbench"}
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Ops <= 0 && o.Duration <= 0 {
		o.Ops = 8000
	}
	if o.SchemeN == 0 && o.SchemeM == 0 {
		o.SchemeN, o.SchemeM = 2, 4
	}
	if o.IndexN == 0 && o.IndexM == 0 {
		o.IndexN, o.IndexM = 4, 20
	}
	scheme := ipaScheme(o.SchemeN, o.SchemeM)
	idxScheme := ipaScheme(o.IndexN, o.IndexM)
	var out IndexResult
	for _, w := range o.Workloads {
		base := Experiment{
			Name: "index-oop-" + w, Workload: w, Scale: o.Scale,
			Mode: modeTraditional, Flash: flashMLC,
			Ops: o.Ops, Duration: o.Duration, Seed: o.Seed,
		}.ApplyProfile(o.Profile)
		native := Experiment{
			Name: "index-ipa-" + w, Workload: w, Scale: o.Scale,
			Mode: modeNative, Scheme: scheme, IndexScheme: idxScheme, Flash: flashPSLC,
			Ops: o.Ops, Duration: o.Duration, Seed: o.Seed,
		}.ApplyProfile(o.Profile)
		baseRes, err := Run(base)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, makeIndexRow(w, "out-of-place", baseRes))
		nativeRes, err := Run(native)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, makeIndexRow(w, fmt.Sprintf("IPA %s", idxScheme), nativeRes))
	}
	return out, nil
}

// Write renders the comparison.
func (r IndexResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Index maintenance: out-of-place vs IPA delta appends (primary-key entry pages)\n")
	fmt.Fprintf(w, "%-10s %-12s %12s %12s %14s %12s %14s %10s\n",
		"workload", "write path", "idx evicts", "idx appends", "idx page wr", "idx deltas", "deltas/merge", "tps")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-12s %12d %12d %14d %12d %14.1f %10.1f\n",
			row.Workload, row.Label, row.IndexPageWrites, row.IndexInPlace,
			row.IndexOutOfPlace, row.IndexDeltas, row.DeltasPerMerge, row.Throughput)
	}
}
