package bench

import (
	"strings"
	"testing"
	"time"
)

// TestReadMixScenario runs a shrunken read-skew ladder and checks the
// accounting of every (mix, mode) cell — in particular that the snapshot
// rows are lock-free in proportion to their read share and the locked
// rows are not.
func TestReadMixScenario(t *testing.T) {
	res, err := ReadMix(ReadMixOptions{
		Goroutines:          4,
		ReadPcts:            []int{100},
		Tuples:              256,
		TupleSize:           64,
		Ops:                 200,
		OpsPerTxn:           4,
		Profile:             SmallProfile,
		LogFlushLatency:     10 * time.Microsecond,
		LogFlushWallLatency: time.Microsecond,
		Seed:                1,
	})
	if err != nil {
		t.Fatalf("ReadMix: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (snapshot + locked)", len(res.Rows))
	}
	snap, lock := res.Rows[0], res.Rows[1]
	if snap.Locked || !lock.Locked {
		t.Fatalf("row order = (%v, %v), want (snapshot, locked)", snap.Locked, lock.Locked)
	}
	for _, row := range res.Rows {
		if row.Committed != 200 {
			t.Errorf("locked=%v committed %d, want 200", row.Locked, row.Committed)
		}
		if row.OpsPerSec <= 0 {
			t.Errorf("locked=%v reported no throughput", row.Locked)
		}
	}
	// A 100%-read snapshot run takes no record locks at all; the locked
	// baseline takes one per read.
	if snap.LockAcquisitions != 0 {
		t.Errorf("snapshot run acquired %d record locks, want 0", snap.LockAcquisitions)
	}
	if snap.SnapshotReads == 0 {
		t.Errorf("snapshot run recorded no snapshot reads")
	}
	if lock.LockAcquisitions == 0 {
		t.Errorf("locked run acquired no record locks")
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "read%") {
		t.Errorf("Write produced no table:\n%s", sb.String())
	}
}
