package bench

import (
	"fmt"
	"io"
	"math/rand"

	"ipa"
	"ipa/internal/workload"
)

// InterferenceOptions configures the program-interference ablation of
// Section 3 of the paper: applying IPA on MLC Flash without the pSLC or
// odd-MLC precautions exposes appends on MSB-paired wordlines to parasitic
// capacitance coupling. The experiment injects interference faults into the
// NAND simulator and measures how many bit errors each MLC operation mode
// accumulates (and whether the ECC can still hide them).
type InterferenceOptions struct {
	Workload string
	Scale    int
	Ops      int
	Profile  DeviceProfile
	SchemeN  int
	SchemeM  int
	// InterferenceProb is the per-reprogram probability of disturbing the
	// paired page (default 0.2, deliberately aggressive so short runs show
	// the effect).
	InterferenceProb float64
	Seed             int64
}

// DefaultInterferenceOptions returns the configuration used by cmd/ipabench.
func DefaultInterferenceOptions() InterferenceOptions {
	return InterferenceOptions{
		Workload:         "tpcb",
		Scale:            2,
		Ops:              6000,
		Profile:          DefaultProfile,
		SchemeN:          2,
		SchemeM:          4,
		InterferenceProb: 0.2,
		Seed:             1,
	}
}

// InterferenceRow is the outcome for one MLC operation mode.
type InterferenceRow struct {
	Mode             ipa.FlashMode
	InPlaceAppends   uint64
	InterferenceBits uint64 // bit flips injected into paired pages
	CorrectedBits    uint64 // bit errors the ECC repaired on reads
	Uncorrectable    uint64 // reads that failed ECC verification
	Throughput       float64
}

// InterferenceResult is the comparison across modes.
type InterferenceResult struct {
	Rows []InterferenceRow
}

// Interference runs the ablation for MLC-full, odd-MLC and pSLC modes.
func Interference(o InterferenceOptions) (InterferenceResult, error) {
	if o.Workload == "" {
		o.Workload = "tpcb"
	}
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Ops <= 0 {
		o.Ops = 6000
	}
	if o.SchemeN == 0 && o.SchemeM == 0 {
		o.SchemeN, o.SchemeM = 2, 4
	}
	if o.InterferenceProb <= 0 {
		o.InterferenceProb = 0.2
	}
	var out InterferenceResult
	for _, mode := range []ipa.FlashMode{ipa.MLCFull, ipa.OddMLC, ipa.PSLC} {
		row, err := interferenceOne(o, mode)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func interferenceOne(o InterferenceOptions, mode ipa.FlashMode) (InterferenceRow, error) {
	profile := o.Profile
	if profile == (DeviceProfile{}) {
		profile = DefaultProfile
	}
	db, err := ipa.Open(ipa.Config{
		PageSize:         profile.PageSize,
		Blocks:           profile.Blocks,
		PagesPerBlock:    profile.PagesPerBlock,
		BufferPoolPages:  profile.BufferPoolPages,
		WriteMode:        ipa.IPANativeFlash,
		Scheme:           ipa.Scheme{N: o.SchemeN, M: o.SchemeM},
		FlashMode:        mode,
		InterferenceProb: o.InterferenceProb,
		Analytic:         true,
		Seed:             o.Seed,
	})
	if err != nil {
		return InterferenceRow{}, err
	}
	defer db.Close()

	w, err := NewWorkload(o.Workload, o.Scale, o.Seed)
	if err != nil {
		return InterferenceRow{}, err
	}
	if err := w.Load(db); err != nil {
		return InterferenceRow{}, fmt.Errorf("bench: interference %s load: %w", mode, err)
	}
	db.ResetStats()
	runTolerant(db, w, o.Ops, o.Seed+1)
	_ = db.FlushAll() // a corrupted page may surface here; keep the stats
	s := db.Stats()
	return InterferenceRow{
		Mode:             mode,
		InPlaceAppends:   s.InPlaceAppends,
		InterferenceBits: s.InterferenceBits,
		CorrectedBits:    s.CorrectedBits,
		Uncorrectable:    s.UncorrectableReads,
		Throughput:       s.Throughput(),
	}, nil
}

// runTolerant executes up to ops transactions but, unlike workload.Run,
// tolerates transaction failures caused by uncorrectable data corruption —
// the very effect this experiment provokes on unsafe MLC modes.
func runTolerant(db *ipa.DB, w workload.Workload, ops int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	failures := 0
	for committed := 0; committed < ops && failures < ops; {
		ok, err := w.RunOne(db, r)
		if err != nil {
			failures++
			continue
		}
		if ok {
			committed++
		} else {
			failures++
		}
	}
}

// Write renders the ablation.
func (r InterferenceResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Program interference on MLC Flash (fault injection enabled)\n")
	fmt.Fprintf(w, "%-10s %14s %18s %16s %16s %12s\n",
		"mode", "appends", "interference bits", "ECC corrected", "uncorrectable", "tps")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %14d %18d %16d %16d %12.1f\n",
			row.Mode, row.InPlaceAppends, row.InterferenceBits, row.CorrectedBits, row.Uncorrectable, row.Throughput)
	}
}
