package bench

import (
	"fmt"
	"io"

	"ipa"
	"ipa/internal/workload"
)

// YCSBOptions configures the YCSB workload family (A–F) in two heap
// sizings: cache-sized (the working set fits in the buffer pool) and
// larger-than-memory (the heap is HeapFactor × the buffer pool, so every
// hot page cycles through eviction → delta-merge → GC → wear-levelling).
type YCSBOptions struct {
	// Letters selects the workloads ('A'..'F'; empty = all six).
	Letters []byte
	// HeapFactors sizes each run's heap as a multiple of the buffer pool
	// capacity. Values < 1 are cache-sized; the paper-motivated
	// larger-than-memory point is ≥ 8. Empty = {0.5, 8}.
	HeapFactors []float64
	// ValueSize is the tuple size in bytes; UpdateBytes the tail-patch
	// size of updates and read-modify-writes.
	ValueSize   int
	UpdateBytes int
	// Ops bounds each run by committed operations.
	Ops int
	// Mode/Scheme/Flash configure the write path (default IPA native
	// flash [N×M] on pSLC).
	Mode    ipa.WriteMode
	SchemeN int
	SchemeM int
	Flash   ipa.FlashMode
	Profile DeviceProfile
	Seed    int64
}

// DefaultYCSBOptions returns the configuration used by cmd/ipabench.
func DefaultYCSBOptions() YCSBOptions {
	return YCSBOptions{
		Letters:     []byte{'A', 'B', 'C', 'D', 'E', 'F'},
		HeapFactors: []float64{0.5, 8},
		ValueSize:   120,
		UpdateBytes: 8,
		Ops:         20000,
		Mode:        modeNative,
		SchemeN:     2,
		SchemeM:     4,
		Flash:       flashPSLC,
		Profile:     DefaultProfile,
		Seed:        1,
	}
}

// YCSBRow is the outcome of one (workload, heap sizing) run.
type YCSBRow struct {
	Workload     string  `json:"workload"`
	Distribution string  `json:"distribution"`
	HeapFactor   float64 `json:"heap_factor"` // heap bytes / buffer pool bytes
	Records      int     `json:"records"`
	Committed    int     `json:"committed"`
	Aborted      int     `json:"aborted"`
	// TPS is committed operations per virtual device second. Reads are
	// lock-free snapshot reads, not transactions, so this is derived from
	// the run's op count, not from Stats.CommittedTxns. 0 means the run
	// consumed no virtual device time at all (fully cached reads).
	TPS         float64 `json:"tps"`
	Erases      uint64  `json:"erases"`
	GCErases    uint64  `json:"gc_erases"`
	IPASharePct float64 `json:"ipa_share_pct"` // in-place appends / (appends + out-of-place)
	HitRatePct  float64 `json:"buffer_hit_pct"`
	DirtyEvicts uint64  `json:"dirty_evictions"`
	ErasesPerOp float64 `json:"erases_per_host_write"`
}

// YCSBResult is the full family sweep.
type YCSBResult struct {
	Rows []YCSBRow `json:"rows"`
}

// ycsbRecords sizes the keyspace so the heap is roughly factor × the
// buffer pool. Tuples per heap page are estimated conservatively (page
// header + per-slot overhead), which is accurate enough for the sizing's
// purpose: factor < 1 keeps the working set resident, factor ≥ 8 forces
// continuous eviction.
func ycsbRecords(p DeviceProfile, valueSize int, factor float64) int {
	perPage := (p.PageSize - 128) / (valueSize + 16)
	if perPage < 1 {
		perPage = 1
	}
	records := int(factor * float64(p.BufferPoolPages) * float64(perPage))
	if records < 256 {
		records = 256
	}
	// Keep the heap within half the device (GC needs free-block headroom,
	// and pSLC halves the capacity).
	maxRecords := p.Blocks * p.PagesPerBlock / 4 * perPage
	if records > maxRecords {
		records = maxRecords
	}
	return records
}

// YCSB runs every requested workload letter at every heap factor.
func YCSB(o YCSBOptions) (YCSBResult, error) {
	if len(o.Letters) == 0 {
		o.Letters = []byte{'A', 'B', 'C', 'D', 'E', 'F'}
	}
	if len(o.HeapFactors) == 0 {
		o.HeapFactors = []float64{0.5, 8}
	}
	if o.ValueSize == 0 {
		o.ValueSize = 120
	}
	if o.Ops <= 0 {
		o.Ops = 20000
	}
	if o.SchemeN == 0 && o.SchemeM == 0 {
		o.SchemeN, o.SchemeM = 2, 4
	}
	p := o.Profile
	if p.PageSize == 0 {
		p = DefaultProfile
	}

	var out YCSBResult
	for _, letter := range o.Letters {
		for _, factor := range o.HeapFactors {
			cfg := workload.DefaultYCSBConfig(letter)
			cfg.Records = ycsbRecords(p, o.ValueSize, factor)
			cfg.ValueSize = o.ValueSize
			cfg.UpdateBytes = o.UpdateBytes
			cfg.Seed = o.Seed + int64(letter)
			w, err := workload.NewYCSB(cfg)
			if err != nil {
				return out, err
			}

			db, err := ipa.Open(ipa.Config{
				PageSize:        p.PageSize,
				Blocks:          p.Blocks,
				PagesPerBlock:   p.PagesPerBlock,
				BufferPoolPages: p.BufferPoolPages,
				WriteMode:       o.Mode,
				Scheme:          ipaScheme(o.SchemeN, o.SchemeM),
				FlashMode:       o.Flash,
				Seed:            o.Seed,
			})
			if err != nil {
				return out, fmt.Errorf("bench: ycsb-%c: %w", letter, err)
			}
			if err := w.Load(db); err != nil {
				db.Close()
				return out, fmt.Errorf("bench: ycsb-%c load: %w", letter, err)
			}
			db.ResetStats()
			run, err := workload.Run(db, w, workload.RunOptions{MaxOps: o.Ops, Seed: o.Seed + 1})
			if err != nil {
				db.Close()
				return out, fmt.Errorf("bench: ycsb-%c run: %w", letter, err)
			}
			if err := db.FlushAll(); err != nil {
				db.Close()
				return out, fmt.Errorf("bench: ycsb-%c flush: %w", letter, err)
			}
			s := db.Stats()
			db.Close()

			hitRate := 0.0
			if tot := s.BufferHits + s.BufferMisses; tot > 0 {
				hitRate = 100 * float64(s.BufferHits) / float64(tot)
			}
			tps := 0.0
			if run.Elapsed > 0 {
				tps = float64(run.Committed) / run.Elapsed.Seconds()
			}
			out.Rows = append(out.Rows, YCSBRow{
				Workload:     w.Name(),
				Distribution: w.Config().Distribution,
				HeapFactor:   factor,
				Records:      cfg.Records,
				Committed:    run.Committed,
				Aborted:      run.Aborted,
				TPS:          tps,
				Erases:       s.FlashBlockErases,
				GCErases:     s.GCErases,
				IPASharePct:  100 * s.InPlaceShare(),
				HitRatePct:   hitRate,
				DirtyEvicts:  s.DirtyEvictions,
				ErasesPerOp:  s.ErasesPerHostWrite(),
			})
		}
	}
	return out, nil
}

// Write renders the sweep as a plain-text table.
func (r YCSBResult) Write(w io.Writer) {
	fmt.Fprintf(w, "%-8s %-8s %6s %8s %10s %8s %8s %7s %7s %9s\n",
		"workload", "dist", "heap", "records", "tps", "erases", "gc-er", "ipa%", "hit%", "evictions")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %-8s %5.1fx %8d %10.0f %8d %8d %6.1f%% %6.1f%% %9d\n",
			row.Workload, row.Distribution, row.HeapFactor, row.Records,
			row.TPS, row.Erases, row.GCErases, row.IPASharePct, row.HitRatePct, row.DirtyEvicts)
	}
}
