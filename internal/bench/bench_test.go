package bench

import (
	"strings"
	"testing"
)

// tinyProfile keeps the harness tests fast.
var tinyProfile = DeviceProfile{
	PageSize:        4 * 1024,
	Blocks:          96,
	PagesPerBlock:   32,
	BufferPoolPages: 48,
}

func TestNewWorkloadNames(t *testing.T) {
	for _, name := range []string{"tpcb", "tpcc", "tatp", "linkbench", "tatpsec", "linkbenchsec", "secchurn"} {
		w, err := NewWorkload(name, 1, 1)
		if err != nil {
			t.Fatalf("NewWorkload(%s): %v", name, err)
		}
		if w.Name() != name {
			t.Fatalf("driver name %q != %q", w.Name(), name)
		}
	}
	if _, err := NewWorkload("nosuch", 1, 1); err == nil {
		t.Fatalf("unknown workload must be rejected")
	}
}

func TestRunNeedsALimit(t *testing.T) {
	if _, err := Run(Experiment{Name: "x", Workload: "tpcb"}); err == nil {
		t.Fatalf("experiments without Ops or Duration must be rejected")
	}
}

func TestRunBaselineVsIPA(t *testing.T) {
	base := Experiment{
		Name: "t-base", Workload: "tpcb", Scale: 1,
		Mode: modeTraditional, Flash: flashMLC,
		Ops: 600, Seed: 1, Analytic: true,
	}.ApplyProfile(tinyProfile)
	ipaExp := Experiment{
		Name: "t-ipa", Workload: "tpcb", Scale: 1,
		Mode: modeNative, Scheme: ipaScheme(2, 4), Flash: flashPSLC,
		Ops: 600, Seed: 1, Analytic: true,
	}.ApplyProfile(tinyProfile)

	baseRes, err := Run(base)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	ipaRes, err := Run(ipaExp)
	if err != nil {
		t.Fatalf("ipa run: %v", err)
	}
	if baseRes.Run.Committed != 600 || ipaRes.Run.Committed != 600 {
		t.Fatalf("both runs must commit 600 transactions")
	}
	bs, is := baseRes.Stats, ipaRes.Stats
	if bs.InPlaceAppends != 0 {
		t.Fatalf("baseline must not append in place")
	}
	if is.InPlaceAppends == 0 {
		t.Fatalf("IPA run must append in place")
	}
	if is.Invalidations >= bs.Invalidations {
		t.Fatalf("IPA must invalidate fewer pages: %d vs %d", is.Invalidations, bs.Invalidations)
	}
	if ipaRes.Throughput() <= baseRes.Throughput() {
		t.Fatalf("IPA throughput (%.1f) must exceed the baseline (%.1f)", ipaRes.Throughput(), baseRes.Throughput())
	}
}

func TestFigure1SmallRun(t *testing.T) {
	res, err := Figure1(Figure1Options{
		Workloads: []string{"tpcb"},
		Scale:     1,
		Ops:       400,
		Profile:   tinyProfile,
		SchemeN:   2, SchemeM: 4,
		Seed: 1,
	})
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("expected one row")
	}
	row := res.Rows[0]
	if row.DirtyEvictions == 0 {
		t.Fatalf("no dirty evictions observed")
	}
	if row.SmallEvictionShare < 0.5 {
		t.Fatalf("OLTP evictions should be dominated by small changes, got %.2f", row.SmallEvictionShare)
	}
	if row.WriteAmplification < 10 {
		t.Fatalf("traditional write amplification should be large, got %.1f", row.WriteAmplification)
	}
	if row.IPAReductionPct <= 0 {
		t.Fatalf("IPA must reduce the transferred bytes, got %.1f%%", row.IPAReductionPct)
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "tpcb") {
		t.Fatalf("report rendering missing workload name")
	}
}

func TestTable1SmallRun(t *testing.T) {
	o := Table1Options{
		Scale:   1,
		Ops:     800,
		Profile: tinyProfile,
		Seed:    1,
	}
	o.Scheme.N, o.Scheme.M = 2, 4
	res, err := Table1(o)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if res.Baseline.InPlacePct != 0 {
		t.Fatalf("baseline must have no in-place appends")
	}
	if res.PSLC.InPlacePct <= res.OddMLC.InPlacePct {
		t.Fatalf("pSLC must serve more appends than odd-MLC: %.1f vs %.1f",
			res.PSLC.InPlacePct, res.OddMLC.InPlacePct)
	}
	if res.PSLC.Throughput <= res.Baseline.Throughput {
		t.Fatalf("IPA pSLC throughput must exceed the baseline")
	}
	var sb strings.Builder
	res.Write(&sb)
	out := sb.String()
	for _, want := range []string{"Host Reads", "GC Erases", "Transactional Throughput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 rendering missing %q", want)
		}
	}
}

func TestIPLCompareSmallRun(t *testing.T) {
	res, err := IPLCompare(IPLOptions{
		Workloads: []string{"tpcb"},
		Scale:     1,
		Ops:       400,
		Profile:   tinyProfile,
		SchemeN:   2, SchemeM: 4,
		Seed: 1,
	})
	if err != nil {
		t.Fatalf("IPLCompare: %v", err)
	}
	row := res.Rows[0]
	if row.IPLFlashReads <= row.IPAFlashReads {
		t.Fatalf("IPL must read more pages than IPA (read amplification): %d vs %d",
			row.IPLFlashReads, row.IPAFlashReads)
	}
	if row.IPAFlashWrites == 0 || row.IPLFlashWrites == 0 {
		t.Fatalf("write counters missing")
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "In-Page Logging") {
		t.Fatalf("IPL rendering wrong")
	}
}

func TestSweepSmallRun(t *testing.T) {
	res, err := Sweep(SweepOptions{
		Workload: "tpcb",
		Scale:    1,
		Ops:      300,
		Profile:  tinyProfile,
		Ns:       []int{1, 2},
		Ms:       []int{4},
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 grid points, got %d", len(res.Rows))
	}
	// A larger N must not lower the in-place share.
	if res.Rows[1].InPlaceShare < res.Rows[0].InPlaceShare {
		t.Fatalf("in-place share should grow with N: %.2f then %.2f",
			res.Rows[0].InPlaceShare, res.Rows[1].InPlaceShare)
	}
	if res.Rows[0].AreaBytes >= res.Rows[1].AreaBytes {
		t.Fatalf("area size should grow with N")
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "scheme") {
		t.Fatalf("sweep rendering wrong")
	}
}

func TestSuiteAndLongevitySmallRun(t *testing.T) {
	res, err := Suite(SuiteOptions{
		Workloads: []string{"tpcb"},
		Scale:     1,
		Ops:       600,
		Profile:   tinyProfile,
		SchemeN:   2, SchemeM: 4,
		Seed: 1,
	})
	if err != nil {
		t.Fatalf("Suite: %v", err)
	}
	row := res.Rows[0]
	if row.ThroughputGainPct <= 0 {
		t.Fatalf("IPA should improve throughput, got %+.1f%%", row.ThroughputGainPct)
	}
	if row.InvalidationDropPct <= 0 {
		t.Fatalf("IPA should reduce invalidations, got %+.1f%%", row.InvalidationDropPct)
	}
	rows := Longevity(res)
	if len(rows) != 2 {
		t.Fatalf("expected 2 longevity rows")
	}
	var sb strings.Builder
	res.Write(&sb)
	WriteLongevity(&sb, rows)
	if !strings.Contains(sb.String(), "longevity") {
		t.Fatalf("longevity rendering wrong")
	}
}
