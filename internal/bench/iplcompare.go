package bench

import (
	"fmt"
	"io"

	"ipa"
	"ipa/internal/ipl"
	"ipa/internal/storage"
)

// IPLOptions configures the IPA vs In-Page Logging comparison (experiment
// E4). Following footnote 1 of the paper, the comparison replays the
// fetch/eviction trace of a benchmark run against the IPL simulator and
// compares the resulting Flash writes, reads and erases with the IPA run
// of the same trace.
type IPLOptions struct {
	Workloads []string
	Scale     int
	Ops       int
	Profile   DeviceProfile
	SchemeN   int
	SchemeM   int
	Seed      int64
}

// DefaultIPLOptions returns the configuration used by cmd/ipabench.
func DefaultIPLOptions() IPLOptions {
	return IPLOptions{
		Workloads: []string{"tpcb", "tpcc", "tatp"},
		Scale:     2,
		Ops:       8000,
		Profile:   DefaultProfile,
		SchemeN:   2,
		SchemeM:   4,
		Seed:      1,
	}
}

// IPLRow compares IPA and IPL for one workload.
type IPLRow struct {
	Workload string

	// IPA side (from the engine run with write_delta).
	IPAFlashWrites uint64 // physical page programs + delta programs
	IPAFlashReads  uint64
	IPAErases      uint64

	// IPL side (from the trace replay).
	IPLFlashWrites uint64
	IPLFlashReads  uint64
	IPLErases      uint64
	IPLStats       ipl.Stats

	WriteReductionPct float64 // fewer writes with IPA
	EraseReductionPct float64
	ReadOverheadPct   float64 // extra reads IPL needs vs IPA
}

// IPLResult is the full comparison.
type IPLResult struct {
	Rows []IPLRow
}

// IPLCompare runs the comparison for every workload.
func IPLCompare(o IPLOptions) (IPLResult, error) {
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"tpcb", "tpcc", "tatp"}
	}
	if o.Ops <= 0 {
		o.Ops = 8000
	}
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.SchemeN == 0 && o.SchemeM == 0 {
		o.SchemeN, o.SchemeM = 2, 4
	}
	var out IPLResult
	for _, wl := range o.Workloads {
		row, err := iplCompareOne(wl, o)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func iplCompareOne(wl string, o IPLOptions) (IPLRow, error) {
	exp := Experiment{
		Name: "ipl-" + wl, Workload: wl, Scale: o.Scale,
		Mode: modeNative, Scheme: ipaScheme(o.SchemeN, o.SchemeM), Flash: flashPSLC,
		Ops: o.Ops, Seed: o.Seed, Analytic: true, TraceEvictions: true,
	}.ApplyProfile(o.Profile)

	var trace []storage.TraceEvent
	res, err := RunWithDB(exp, func(db *ipa.DB, _ Result) error {
		trace = db.Trace()
		return nil
	})
	if err != nil {
		return IPLRow{}, err
	}

	iplCfg := ipl.DefaultConfig(exp.PageSize, exp.PagesPerBlock)
	mgr, err := ipl.NewManager(iplCfg)
	if err != nil {
		return IPLRow{}, err
	}
	mgr.Replay(trace)
	is := mgr.Stats()
	s := res.Stats

	row := IPLRow{
		Workload:       wl,
		IPAFlashWrites: s.FlashPagePrograms + s.FlashDeltaPrograms,
		IPAFlashReads:  s.FlashPageReads,
		IPAErases:      s.FlashBlockErases,
		IPLFlashWrites: is.TotalFlashWrites(),
		IPLFlashReads:  is.TotalFlashReads(),
		IPLErases:      is.Erases,
		IPLStats:       is,
	}
	if row.IPLFlashWrites > 0 {
		row.WriteReductionPct = 100 * (1 - float64(row.IPAFlashWrites)/float64(row.IPLFlashWrites))
	}
	if row.IPLErases > 0 {
		row.EraseReductionPct = 100 * (1 - float64(row.IPAErases)/float64(row.IPLErases))
	}
	if row.IPAFlashReads > 0 {
		row.ReadOverheadPct = 100 * (float64(row.IPLFlashReads)/float64(row.IPAFlashReads) - 1)
	}
	return row, nil
}

// Write renders the comparison.
func (r IPLResult) Write(w io.Writer) {
	fmt.Fprintf(w, "IPA vs In-Page Logging (trace replay)\n")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %12s %12s %12s %12s %12s\n",
		"workload", "ipa writes", "ipl writes", "write red.", "ipa erases", "ipl erases", "erase red.",
		"ipa reads", "ipl reads", "read ovh.")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %12d %12d %+11.1f%% %12d %12d %+11.1f%% %12d %12d %+11.1f%%\n",
			row.Workload, row.IPAFlashWrites, row.IPLFlashWrites, row.WriteReductionPct,
			row.IPAErases, row.IPLErases, row.EraseReductionPct,
			row.IPAFlashReads, row.IPLFlashReads, row.ReadOverheadPct)
	}
}
