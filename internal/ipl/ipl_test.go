package ipl

import (
	"testing"

	"ipa/internal/storage"
)

func testManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(DefaultConfig(4096, 64))
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(8192, 128)
	if cfg.LogPagesPerBlock <= 0 || cfg.LogPagesPerBlock >= cfg.PagesPerBlock {
		t.Fatalf("bad log region size: %+v", cfg)
	}
	if cfg.SectorSize != 512 {
		t.Fatalf("sector size %d", cfg.SectorSize)
	}
	small := DefaultConfig(2048, 8)
	if small.LogPagesPerBlock < 1 {
		t.Fatalf("log region must have at least one page")
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{PageSize: 0, PagesPerBlock: 8}); err == nil {
		t.Fatalf("zero page size must be rejected")
	}
	if _, err := NewManager(Config{PageSize: 4096, PagesPerBlock: 8, LogPagesPerBlock: 8}); err == nil {
		t.Fatalf("log region covering the whole block must be rejected")
	}
}

func TestFirstEvictionWritesDataPage(t *testing.T) {
	m := testManager(t)
	m.Evict(1, 10, false)
	s := m.Stats()
	if s.DataPageWrites != 1 || s.LogSectorFlush != 0 {
		t.Fatalf("first eviction must write the data page: %+v", s)
	}
}

func TestSubsequentEvictionsWriteLogSectors(t *testing.T) {
	m := testManager(t)
	m.Evict(1, 10, false) // initial data page write
	for i := 0; i < 5; i++ {
		m.Evict(1, 10, true)
	}
	s := m.Stats()
	if s.DataPageWrites != 1 {
		t.Fatalf("data page must not be rewritten: %+v", s)
	}
	if s.LogSectorFlush != 5 {
		t.Fatalf("each eviction must flush one log sector, got %d", s.LogSectorFlush)
	}
	if s.LogBytesWritten == 0 {
		t.Fatalf("log byte accounting missing")
	}
}

func TestReadAmplification(t *testing.T) {
	m := testManager(t)
	m.Evict(1, 20, false)
	// Before any log sectors exist, a fetch reads only the data page.
	m.Fetch(1)
	s := m.Stats()
	if s.DataPageReads != 1 || s.LogPageReads != 0 {
		t.Fatalf("clean fetch stats wrong: %+v", s)
	}
	// Accumulate log sectors, then fetch again: the log pages must be read
	// on top of the data page.
	for i := 0; i < 12; i++ {
		m.Evict(1, 200, false)
	}
	m.Fetch(1)
	s = m.Stats()
	if s.LogPageReads == 0 {
		t.Fatalf("expected log-page read amplification: %+v", s)
	}
	if s.TotalFlashReads() != s.DataPageReads+s.LogPageReads {
		t.Fatalf("TotalFlashReads inconsistent")
	}
}

func TestMergeOnFullLogRegion(t *testing.T) {
	cfg := DefaultConfig(4096, 64)
	cfg.LogPagesPerBlock = 1 // a tiny log region fills quickly
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	// Two pages in the same block, updated repeatedly with large deltas.
	m.Evict(1, 100, false)
	m.Evict(2, 100, false)
	for i := 0; i < 50; i++ {
		m.Evict(1, 2000, true)
		m.Evict(2, 2000, true)
	}
	s := m.Stats()
	if s.Merges == 0 || s.Erases == 0 {
		t.Fatalf("log-region overflow must trigger merges: %+v", s)
	}
	if s.MergeMigrations < 2*s.Merges {
		t.Fatalf("each merge must rewrite the block's valid pages: %+v", s)
	}
	if s.TotalFlashWrites() <= s.DataPageWrites {
		t.Fatalf("TotalFlashWrites must include log flushes and migrations")
	}
}

func TestPagesSpreadAcrossBlocks(t *testing.T) {
	cfg := DefaultConfig(4096, 8) // 7 data slots + 1 log page per block
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	for pid := uint64(0); pid < 20; pid++ {
		m.Evict(pid, 10, false)
	}
	if len(m.blocks) < 3 {
		t.Fatalf("20 pages with 7 data slots per block must span >= 3 blocks, got %d", len(m.blocks))
	}
	// Updates of a page in one block must not affect another block's log.
	m.Evict(0, 50, true)
	m.Evict(19, 50, true)
	b0 := m.blocks[m.pageToBlok[0]]
	b19 := m.blocks[m.pageToBlok[19]]
	if b0 == b19 {
		t.Fatalf("pages 0 and 19 should live in different blocks")
	}
}

func TestReplayTrace(t *testing.T) {
	m := testManager(t)
	trace := []storage.TraceEvent{
		{Type: storage.TraceEvict, PID: 1, ChangedBytes: 0, FullWrite: true},
		{Type: storage.TraceFetch, PID: 1},
		{Type: storage.TraceEvict, PID: 1, ChangedBytes: 12, MetaChanged: true},
		{Type: storage.TraceFetch, PID: 1},
		{Type: storage.TraceEvict, PID: 2, ChangedBytes: 3},
	}
	m.Replay(trace)
	s := m.Stats()
	if s.PageFetches != 2 || s.Evictions != 3 {
		t.Fatalf("replay counts wrong: %+v", s)
	}
	if s.DataPageWrites != 2 { // first writes of pages 1 and 2
		t.Fatalf("DataPageWrites = %d", s.DataPageWrites)
	}
	if s.LogSectorFlush != 1 {
		t.Fatalf("LogSectorFlush = %d", s.LogSectorFlush)
	}
}

func TestUnknownChangeSizeUsesDefaultEntry(t *testing.T) {
	m := testManager(t)
	m.Evict(7, 0, false) // initial write
	m.Evict(7, 0, false) // unknown change size
	if m.Stats().LogBytesWritten == 0 {
		t.Fatalf("unknown change sizes must still produce a log entry")
	}
}
