// Package ipl implements the In-Page Logging (IPL) baseline of Lee & Moon
// (SIGMOD'07), the closest competitor of In-Place Appends.
//
// IPL divides every Flash erase block into a data-page region and a small
// log region. Updates to buffered database pages are captured as
// physiological log entries in a per-block in-memory log buffer; when a
// dirty page is evicted (or the buffer fills) the log entries are flushed
// into log sectors of the block holding the page. The data page itself is
// not rewritten. Reading a page therefore requires reading the data page
// plus every log sector of the block that may hold entries for it (read
// amplification). When a block's log region is full, the block is merged:
// all valid data pages are combined with their log entries and rewritten
// into a fresh erase block, and the old block is erased.
//
// Following the paper's methodology (footnote 1), the comparison is
// trace-driven: the storage manager records a fetch/eviction trace of a
// benchmark run and this package replays it, producing write, read and
// erase counts comparable with the IPA and traditional numbers.
package ipl

import (
	"fmt"

	"ipa/internal/storage"
)

// Config describes the IPL layout, following the configuration of the
// original IPL paper scaled to the simulated device geometry.
type Config struct {
	// PageSize is the Flash/database page size in bytes.
	PageSize int
	// PagesPerBlock is the number of Flash pages per erase block.
	PagesPerBlock int
	// LogPagesPerBlock is the number of Flash pages per block reserved for
	// the log region.
	LogPagesPerBlock int
	// SectorSize is the log sector size (the flush granularity).
	SectorSize int
	// EntryOverhead is the per-log-entry header size (page id, offset,
	// length) in bytes.
	EntryOverhead int
	// InMemoryBufferBytes is the per-block in-memory log buffer size; when
	// an eviction fills it, a sector flush is forced.
	InMemoryBufferBytes int
}

// DefaultConfig mirrors the IPL configuration of Lee & Moon (512-byte log
// sectors, 8 KiB log region per block) adapted to the given geometry.
func DefaultConfig(pageSize, pagesPerBlock int) Config {
	logPages := pagesPerBlock / 16
	if logPages < 1 {
		logPages = 1
	}
	return Config{
		PageSize:            pageSize,
		PagesPerBlock:       pagesPerBlock,
		LogPagesPerBlock:    logPages,
		SectorSize:          512,
		EntryOverhead:       12,
		InMemoryBufferBytes: 512,
	}
}

// Stats are the counters produced by a trace replay.
type Stats struct {
	// Host-visible operations.
	PageFetches uint64 // page fetches in the trace
	Evictions   uint64 // dirty evictions in the trace

	// Flash reads.
	DataPageReads uint64 // reads of data pages
	LogPageReads  uint64 // additional reads of log pages (read amplification)

	// Flash writes.
	DataPageWrites uint64 // initial data page writes and merge rewrites
	LogSectorFlush uint64 // log sectors flushed
	LogPageWrites  uint64 // physical page programs carrying log sectors

	// Merges.
	Merges          uint64 // blocks merged because their log region filled
	MergeMigrations uint64 // valid data pages rewritten during merges
	Erases          uint64 // block erases caused by merges

	LogBytesWritten uint64
}

// TotalFlashReads returns data + log page reads.
func (s Stats) TotalFlashReads() uint64 { return s.DataPageReads + s.LogPageReads }

// TotalFlashWrites returns all physical program operations: data page
// writes, log sector flushes (each flush is a partial program of a log
// page) and the page rewrites performed by merges.
func (s Stats) TotalFlashWrites() uint64 {
	return s.DataPageWrites + s.LogSectorFlush + s.MergeMigrations
}

// blockState tracks one IPL erase block during replay.
type blockState struct {
	pages          map[uint64]bool // logical pages resident in the block (written at least once)
	logBytesUsed   int             // bytes of the on-Flash log region in use
	logSectorsUsed int
	logPagesUsed   int
	memBuffer      int            // bytes buffered in memory for this block
	entriesPerPage map[uint64]int // log entries per logical page
}

// Manager replays a fetch/eviction trace under In-Page Logging.
type Manager struct {
	cfg        Config
	dataPages  int // data page slots per block
	logBytes   int // log region capacity per block
	blocks     map[int]*blockState
	pageToBlok map[uint64]int
	nextBlock  int
	nextSlot   int
	stats      Stats
}

// NewManager creates a replay manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.PageSize <= 0 || cfg.PagesPerBlock <= 1 {
		return nil, fmt.Errorf("ipl: invalid geometry %d/%d", cfg.PageSize, cfg.PagesPerBlock)
	}
	if cfg.LogPagesPerBlock <= 0 || cfg.LogPagesPerBlock >= cfg.PagesPerBlock {
		return nil, fmt.Errorf("ipl: invalid log region of %d pages", cfg.LogPagesPerBlock)
	}
	if cfg.SectorSize <= 0 {
		cfg.SectorSize = 512
	}
	if cfg.EntryOverhead <= 0 {
		cfg.EntryOverhead = 12
	}
	if cfg.InMemoryBufferBytes <= 0 {
		cfg.InMemoryBufferBytes = cfg.SectorSize
	}
	return &Manager{
		cfg:        cfg,
		dataPages:  cfg.PagesPerBlock - cfg.LogPagesPerBlock,
		logBytes:   cfg.LogPagesPerBlock * cfg.PageSize,
		blocks:     make(map[int]*blockState),
		pageToBlok: make(map[uint64]int),
	}, nil
}

// Config returns the replay configuration.
func (m *Manager) Config() Config { return m.cfg }

// Stats returns the counters accumulated so far.
func (m *Manager) Stats() Stats { return m.stats }

// Replay processes a complete trace.
func (m *Manager) Replay(trace []storage.TraceEvent) {
	for _, ev := range trace {
		switch ev.Type {
		case storage.TraceFetch:
			m.Fetch(ev.PID)
		case storage.TraceEvict:
			m.Evict(ev.PID, ev.ChangedBytes, ev.MetaChanged)
		}
	}
}

// blockFor returns the block state holding pid, assigning the page to a
// block on first use (pages are co-located in allocation order, as IPL
// places logically contiguous pages in the same block).
func (m *Manager) blockFor(pid uint64) *blockState {
	if b, ok := m.pageToBlok[pid]; ok {
		return m.blocks[b]
	}
	if m.nextSlot >= m.dataPages {
		m.nextBlock++
		m.nextSlot = 0
	}
	b := m.nextBlock
	m.nextSlot++
	blk, ok := m.blocks[b]
	if !ok {
		blk = newBlockState()
		m.blocks[b] = blk
	}
	m.pageToBlok[pid] = b
	blk.pages[pid] = false
	return blk
}

func newBlockState() *blockState {
	return &blockState{
		pages:          make(map[uint64]bool),
		entriesPerPage: make(map[uint64]int),
	}
}

// Fetch accounts a page read: the data page plus every log page of its
// block that currently holds flushed entries.
func (m *Manager) Fetch(pid uint64) {
	blk := m.blockFor(pid)
	m.stats.PageFetches++
	m.stats.DataPageReads++
	m.stats.LogPageReads += uint64(blk.logPagesUsed)
}

// Evict accounts a dirty page eviction: the changed bytes become log
// entries in the block's in-memory buffer, which is flushed into log
// sectors; a full log region triggers a merge. The very first eviction of
// a page writes the data page itself (the page did not exist on Flash yet).
func (m *Manager) Evict(pid uint64, changedBytes int, metaChanged bool) {
	blk := m.blockFor(pid)
	m.stats.Evictions++

	if written := blk.pages[pid]; !written {
		// Initial write of the data page into its slot.
		blk.pages[pid] = true
		m.stats.DataPageWrites++
		return
	}
	entry := changedBytes + m.cfg.EntryOverhead
	if metaChanged {
		entry += m.cfg.EntryOverhead
	}
	if changedBytes <= 0 && !metaChanged {
		// Unknown change size (non-analytic trace); assume one small entry.
		entry = m.cfg.EntryOverhead + 16
	}
	if entry > m.cfg.PageSize {
		entry = m.cfg.PageSize
	}
	blk.memBuffer += entry
	blk.entriesPerPage[pid]++
	m.stats.LogBytesWritten += uint64(entry)

	// Flush full in-memory buffers to log sectors on Flash.
	for blk.memBuffer >= m.cfg.InMemoryBufferBytes {
		blk.memBuffer -= m.cfg.InMemoryBufferBytes
		m.flushSector(blk)
	}
	// Eviction of the page forces its buffered entries out as well (the
	// buffer pool frame disappears).
	if blk.memBuffer > 0 {
		blk.memBuffer = 0
		m.flushSector(blk)
	}
}

// flushSector writes one log sector to the block's log region, merging the
// block if the region is full.
func (m *Manager) flushSector(blk *blockState) {
	if blk.logBytesUsed+m.cfg.SectorSize > m.logBytes {
		m.merge(blk)
	}
	prevPages := blk.logPagesUsed
	blk.logBytesUsed += m.cfg.SectorSize
	blk.logSectorsUsed++
	blk.logPagesUsed = (blk.logBytesUsed + m.cfg.PageSize - 1) / m.cfg.PageSize
	m.stats.LogSectorFlush++
	if blk.logPagesUsed > prevPages {
		m.stats.LogPageWrites++
	}
}

// merge rewrites all valid data pages of the block (applying their log
// entries) into a fresh block and erases the old one.
func (m *Manager) merge(blk *blockState) {
	m.stats.Merges++
	m.stats.Erases++
	for pid, written := range blk.pages {
		if !written {
			continue
		}
		// Read the data page and its log entries, write the merged page.
		m.stats.DataPageReads++
		m.stats.MergeMigrations++
		_ = pid
	}
	m.stats.LogPageReads += uint64(blk.logPagesUsed)
	blk.logBytesUsed = 0
	blk.logSectorsUsed = 0
	blk.logPagesUsed = 0
	blk.memBuffer = 0
	for pid := range blk.entriesPerPage {
		delete(blk.entriesPerPage, pid)
	}
}
