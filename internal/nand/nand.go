// Package nand implements a behavioural simulator of NAND Flash memory.
//
// The simulator models the properties of NAND Flash that the In-Place
// Appends (IPA) approach depends on:
//
//   - The erased state of every cell is logical 1 (bytes read 0xFF).
//   - Programming a page can only move bits from 1 to 0 (charge can only be
//     added via ISPP); moving a bit from 0 back to 1 requires erasing the
//     whole block.
//   - Pages can be partially programmed several times between erases, up to
//     a configurable NOP (number of partial programs) budget.
//   - On MLC Flash every wordline carries an LSB page and an MSB page.
//     Re-programming a page can disturb its paired page (program
//     interference); the simulator can inject such faults.
//   - Blocks wear out after a configurable number of program/erase cycles.
//
// The chip exposes raw page read, full and partial page program, and block
// erase operations together with an out-of-band (OOB) area per page. Timing
// is not simulated here; the flashdev package attaches a virtual clock on
// top of the chip model.
package nand

import (
	"errors"
	"fmt"
)

// CellType identifies the physical cell technology of a chip.
type CellType int

const (
	// SLC stores one bit per cell. Large voltage margins make it tolerant
	// to program interference, so in-place appends are safe on every page.
	SLC CellType = iota
	// MLC stores two bits per cell. Each wordline holds an LSB and an MSB
	// page; re-programming is only safe on LSB pages (pSLC / odd-MLC modes).
	MLC
)

// String returns the conventional name of the cell technology.
func (c CellType) String() string {
	switch c {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// Mode selects how an MLC chip is operated by the layers above the chip.
// It mirrors the configuration modes proposed in the paper for applying IPA
// on MLC Flash.
type Mode int

const (
	// ModeSLC operates an SLC chip (or treats the chip as SLC). In-place
	// appends are allowed on every page.
	ModeSLC Mode = iota
	// ModeMLCFull uses the whole MLC capacity and allows appends on every
	// page. Appends on MSB pages are subject to program interference; this
	// mode exists for ablation experiments only.
	ModeMLCFull
	// ModePSLC (pseudo-SLC) uses only the LSB pages of an MLC chip. The
	// capacity is halved but the chip becomes as tolerant to program
	// interference as SLC.
	ModePSLC
	// ModeOddMLC uses the whole MLC capacity but allows in-place appends
	// only on LSB (odd-numbered) pages; MSB pages are always written
	// out-of-place by the layers above.
	ModeOddMLC
)

// String returns the name used in the paper for the mode.
func (m Mode) String() string {
	switch m {
	case ModeSLC:
		return "SLC"
	case ModeMLCFull:
		return "MLC-full"
	case ModePSLC:
		return "pSLC"
	case ModeOddMLC:
		return "odd-MLC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Geometry describes the physical organisation of a chip.
type Geometry struct {
	// Blocks is the number of erase units on the chip.
	Blocks int
	// PagesPerBlock is the number of Flash pages in each erase unit.
	PagesPerBlock int
	// PageSize is the number of data bytes per Flash page.
	PageSize int
	// OOBSize is the number of out-of-band (spare) bytes per Flash page,
	// used for ECC and per-delta-record metadata.
	OOBSize int
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Blocks <= 0:
		return errors.New("nand: geometry requires at least one block")
	case g.PagesPerBlock <= 0:
		return errors.New("nand: geometry requires at least one page per block")
	case g.PagesPerBlock%2 != 0:
		return errors.New("nand: pages per block must be even (LSB/MSB pairing)")
	case g.PageSize <= 0:
		return errors.New("nand: page size must be positive")
	case g.OOBSize < 0:
		return errors.New("nand: OOB size must not be negative")
	}
	return nil
}

// TotalPages returns the number of Flash pages on the chip.
func (g Geometry) TotalPages() int { return g.Blocks * g.PagesPerBlock }

// TotalBytes returns the data capacity of the chip in bytes.
func (g Geometry) TotalBytes() int64 {
	return int64(g.TotalPages()) * int64(g.PageSize)
}

// Config configures a simulated chip.
type Config struct {
	Geometry Geometry
	// Cell selects the cell technology.
	Cell CellType
	// MaxProgramsPerPage is the NOP budget: the maximum number of program
	// operations (full or partial) a page accepts between erases. Zero
	// selects a technology-dependent default.
	MaxProgramsPerPage int
	// EnduranceCycles is the number of program/erase cycles a block
	// survives before it is marked worn out. Zero selects a default.
	EnduranceCycles int
	// InterferenceProb is the probability that re-programming an MLC page
	// flips one bit in its paired page (parasitic capacitance coupling).
	// It only applies when the paired page is already programmed and the
	// chip is MLC.
	InterferenceProb float64
	// Seed drives the deterministic pseudo-random fault injection.
	Seed int64
	// StrictOverwrite controls what happens when a program operation
	// attempts a forbidden 0->1 transition. If true the operation fails
	// with ErrOverwriteViolation; if false the offending bits silently
	// remain 0 (which is what the physical device would produce).
	StrictOverwrite bool
	// Faults, if non-nil, is the deterministic power-cut schedule consulted
	// before every program and erase. All chips of a device share one plan
	// so fault points are numbered across the whole device.
	Faults *FaultPlan
}

// DefaultGeometry mirrors (at reduced scale) the Samsung K9LCG08U1M modules
// of the OpenSSD Jasmine board used in the paper: 128 pages per erase unit.
func DefaultGeometry() Geometry {
	return Geometry{
		Blocks:        256,
		PagesPerBlock: 128,
		PageSize:      8 * 1024,
		OOBSize:       128,
	}
}

// DefaultConfig returns an MLC chip configuration with defaults suitable
// for the experiments in the paper.
func DefaultConfig() Config {
	return Config{
		Geometry:           DefaultGeometry(),
		Cell:               MLC,
		MaxProgramsPerPage: 0,
		EnduranceCycles:    0,
		InterferenceProb:   0,
		Seed:               1,
		StrictOverwrite:    true,
	}
}

// withDefaults fills zero fields with technology-dependent defaults.
func (c Config) withDefaults() Config {
	if c.MaxProgramsPerPage == 0 {
		// SLC NAND traditionally allows 4 partial programs per page;
		// IPA re-programs the same page once per appended delta record,
		// so we grant a generous budget that the FTL can restrict.
		if c.Cell == SLC {
			c.MaxProgramsPerPage = 8
		} else {
			c.MaxProgramsPerPage = 8
		}
	}
	if c.EnduranceCycles == 0 {
		if c.Cell == SLC {
			c.EnduranceCycles = 100000
		} else {
			c.EnduranceCycles = 5000
		}
	}
	return c
}

// IsLSBPage reports whether the page index within a block addresses an LSB
// page. Following the paper, odd-numbered pages are LSB pages and
// even-numbered pages are MSB pages on MLC Flash. On SLC chips every page
// is reported as LSB.
func IsLSBPage(cell CellType, pageInBlock int) bool {
	if cell == SLC {
		return true
	}
	return pageInBlock%2 == 1
}

// PairedPage returns the index (within the block) of the page sharing the
// wordline with pageInBlock on MLC Flash.
func PairedPage(pageInBlock int) int { return pageInBlock ^ 1 }

// AppendSafe reports whether in-place appends to the given page are safe
// from program interference under the given operation mode.
func AppendSafe(cell CellType, mode Mode, pageInBlock int) bool {
	if cell == SLC {
		return true
	}
	switch mode {
	case ModeSLC:
		return true
	case ModeMLCFull:
		return true // allowed, but interference may corrupt the paired page
	case ModePSLC, ModeOddMLC:
		return IsLSBPage(cell, pageInBlock)
	default:
		return false
	}
}

// PageUsable reports whether a page may hold data at all under the given
// mode. In pSLC mode only LSB pages are usable (the capacity is halved).
func PageUsable(cell CellType, mode Mode, pageInBlock int) bool {
	if cell == SLC || mode != ModePSLC {
		return true
	}
	return IsLSBPage(cell, pageInBlock)
}
