package nand

import (
	"bytes"
	"errors"
	"testing"
)

func faultChip(t *testing.T, plan *FaultPlan) *Chip {
	t.Helper()
	cfg := Config{
		Geometry:        Geometry{Blocks: 4, PagesPerBlock: 8, PageSize: 256, OOBSize: 32},
		Cell:            SLC,
		StrictOverwrite: true,
		Seed:            5,
		Faults:          plan,
	}
	c, err := NewChip(cfg)
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	return c
}

func TestFaultPlanCountsOps(t *testing.T) {
	plan := NewFaultPlan(0, CrashBefore)
	c := faultChip(t, plan)
	data := make([]byte, 256)
	for i := 0; i < 3; i++ {
		if err := c.Program(0, i, data, nil); err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
	}
	if err := c.Erase(1); err != nil {
		t.Fatalf("erase: %v", err)
	}
	if got := plan.Ops(); got != 4 {
		t.Fatalf("counted %d ops, want 4", got)
	}
	if plan.Tripped() || plan.Dead() {
		t.Fatalf("passive plan must never fire")
	}
}

func TestCrashBeforeLeavesNoTrace(t *testing.T) {
	plan := NewFaultPlan(2, CrashBefore)
	c := faultChip(t, plan)
	data := bytes.Repeat([]byte{0xA0}, 256)
	if err := c.Program(0, 0, data, nil); err != nil {
		t.Fatalf("first program: %v", err)
	}
	if err := c.Program(0, 1, data, nil); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("expected power loss, got %v", err)
	}
	// The faulted page must stay erased; further operations stay dead.
	if err := c.Program(0, 2, data, nil); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("chip must be dead, got %v", err)
	}
	if err := c.ReadPage(0, 0, make([]byte, 256), nil); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("reads must fail while dead, got %v", err)
	}
	plan.PowerCycle()
	got := make([]byte, 256)
	if err := c.ReadPage(0, 1, got, nil); err != nil {
		t.Fatalf("read after power cycle: %v", err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatalf("crash-before page must read erased")
		}
	}
}

func TestTornProgramPersistsPrefixOnly(t *testing.T) {
	plan := NewFaultPlan(1, CrashTorn)
	c := faultChip(t, plan)
	data := bytes.Repeat([]byte{0x00}, 256)
	oob := bytes.Repeat([]byte{0x00}, 32)
	if err := c.Program(2, 3, data, oob); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("torn program must report power loss, got %v", err)
	}
	plan.PowerCycle()
	gotData := make([]byte, 256)
	gotOOB := make([]byte, 32)
	if err := c.ReadPage(2, 3, gotData, gotOOB); err != nil {
		t.Fatalf("read: %v", err)
	}
	// The persisted bytes must be a strict prefix pattern: some prefix is
	// programmed (0x00), the rest still erased (0xFF), never interleaved.
	checkPrefix := func(name string, b []byte) int {
		n := 0
		for n < len(b) && b[n] == 0x00 {
			n++
		}
		for i := n; i < len(b); i++ {
			if b[i] != 0xFF {
				t.Fatalf("%s: non-prefix tear at byte %d", name, i)
			}
		}
		return n
	}
	nd := checkPrefix("data", gotData)
	no := checkPrefix("oob", gotOOB)
	if nd == len(gotData) && no == len(gotOOB) {
		t.Fatalf("torn program persisted everything (lengths should be partial for this seed)")
	}
}

func TestCrashAfterPersistsEverything(t *testing.T) {
	plan := NewFaultPlan(1, CrashAfter)
	c := faultChip(t, plan)
	data := bytes.Repeat([]byte{0x42 & 0x0F}, 256)
	if err := c.Program(1, 1, data, nil); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("crash-after must report power loss, got %v", err)
	}
	plan.PowerCycle()
	got := make([]byte, 256)
	if err := c.ReadPage(1, 1, got, nil); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("crash-after page must hold the full program")
	}
}

func TestTornEraseResetsPrefixOfPages(t *testing.T) {
	plan := NewFaultPlan(0, CrashBefore) // passive during setup
	c := faultChip(t, plan)
	data := bytes.Repeat([]byte{0x00}, 256)
	for p := 0; p < 8; p++ {
		if err := c.Program(0, p, data, nil); err != nil {
			t.Fatalf("setup program: %v", err)
		}
	}
	plan.Arm(1, CrashTorn)
	plan.SetKinds(OpErase)
	if err := c.Erase(0); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("torn erase must report power loss, got %v", err)
	}
	plan.PowerCycle()
	erased, kept := 0, 0
	for p := 0; p < 8; p++ {
		info, err := c.PageStatus(0, p)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if info.State == PageErased {
			erased++
			if kept > 0 {
				t.Fatalf("erase tear must be a page prefix")
			}
		} else {
			kept++
		}
	}
	if n, err := c.EraseCount(0); err != nil || n != 1 {
		t.Fatalf("interrupted erase still wears the block: count=%d err=%v", n, err)
	}
	t.Logf("torn erase reset %d of 8 pages", erased)
}

func TestLogFlushPoint(t *testing.T) {
	plan := NewFaultPlan(2, CrashBefore)
	plan.SetKinds(OpLogFlush)
	if err := plan.LogFlushPoint(); err != nil {
		t.Fatalf("first flush: %v", err)
	}
	if err := plan.LogFlushPoint(); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("second flush must fail, got %v", err)
	}
	if err := plan.LogFlushPoint(); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("dead plan must keep failing, got %v", err)
	}
}
