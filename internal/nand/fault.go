package nand

import (
	"errors"
	"fmt"
	"sync"
)

// ErrPowerLost is returned by every chip operation once an injected power
// cut has fired (and, for the tripping operation itself, by that operation).
// Layers above must treat it as a crash: the in-memory state is gone, only
// the Flash image and the durable log survive.
var ErrPowerLost = errors.New("nand: power lost (injected fault)")

// FaultOp classifies the device operations that can host a fault point.
// Every program, erase and log-device flush executed while a FaultPlan is
// attached is one fault point, numbered in execution order, so a sweep can
// crash the system at each of them exactly once.
type FaultOp int

const (
	// OpProgram is a full-page program.
	OpProgram FaultOp = 1 << iota
	// OpDeltaProgram is a partial-page program (an in-place append).
	OpDeltaProgram
	// OpErase is a block erase.
	OpErase
	// OpLogFlush is a write to the separate log device (counted via
	// FaultPlan.LogFlushPoint by the WAL flush hook, not by the chips).
	OpLogFlush

	// OpAll selects every operation kind.
	OpAll = OpProgram | OpDeltaProgram | OpErase | OpLogFlush
)

// OpRead classifies page reads for device operation hooks (latency
// injection, chaos observation). Reads are never fault points — a power
// cut during a read loses nothing durable — so OpRead is deliberately not
// part of OpAll and never counts toward a FaultPlan's crash schedule.
const OpRead FaultOp = 1 << 4

// String names the operation kind (single kinds only).
func (o FaultOp) String() string {
	switch o {
	case OpProgram:
		return "program"
	case OpDeltaProgram:
		return "delta-program"
	case OpErase:
		return "erase"
	case OpLogFlush:
		return "log-flush"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("FaultOp(%d)", int(o))
	}
}

// FaultMode selects what happens at the chosen fault point.
type FaultMode int

const (
	// CrashBefore loses power before the operation touches any cell: the
	// operation has no effect.
	CrashBefore FaultMode = iota
	// CrashTorn loses power mid-operation: a program persists only a
	// prefix of the data and OOB bytes, an erase resets only a prefix of
	// the block's pages. This is the torn-write case the paper's
	// delta-append durability argument must survive.
	CrashTorn
	// CrashAfter completes the operation and loses power immediately
	// afterwards.
	CrashAfter
)

// String names the fault mode.
func (m FaultMode) String() string {
	switch m {
	case CrashBefore:
		return "crash-before"
	case CrashTorn:
		return "torn"
	case CrashAfter:
		return "crash-after"
	default:
		return fmt.Sprintf("FaultMode(%d)", int(m))
	}
}

// FaultPlan is a deterministic power-cut schedule shared by all chips of a
// device (and by the WAL flush hook). It counts matching operations; when
// the K-th one arrives it injects the configured fault and from then on
// every operation fails with ErrPowerLost until PowerCycle is called.
//
// A plan with CrashAt == 0 never fires and merely counts: running a
// workload once against such a plan enumerates its fault points, so a sweep
// can then re-run the workload once per point.
type FaultPlan struct {
	mu      sync.Mutex
	kinds   FaultOp
	crashAt uint64 // 1-based index of the op to fault; 0 = count only
	mode    FaultMode
	ops     uint64 // matching operations seen since the last Arm
	dead    bool
	tripped bool
	rng     prng
}

// NewFaultPlan creates a plan that faults the crashAt-th operation (1-based)
// with the given mode, counting every operation kind. crashAt == 0 creates a
// passive, counting-only plan.
func NewFaultPlan(crashAt uint64, mode FaultMode) *FaultPlan {
	return &FaultPlan{kinds: OpAll, crashAt: crashAt, mode: mode, rng: prng{state: crashAt*0x9E3779B97F4A7C15 + 0x1234567}}
}

// SetKinds restricts which operation kinds count as fault points (and can
// trip the fault). Non-matching operations pass through uncounted — but
// still fail once the plan is dead.
func (p *FaultPlan) SetKinds(kinds FaultOp) {
	p.mu.Lock()
	p.kinds = kinds
	p.mu.Unlock()
}

// Arm re-targets the plan: the op counter restarts at zero, the plan is
// alive again and the crashAt-th matching operation from now on faults.
func (p *FaultPlan) Arm(crashAt uint64, mode FaultMode) {
	p.mu.Lock()
	p.crashAt = crashAt
	p.mode = mode
	p.ops = 0
	p.dead = false
	p.tripped = false
	p.rng = prng{state: crashAt*0x9E3779B97F4A7C15 + 0x1234567}
	p.mu.Unlock()
}

// Disarm turns the plan into a passive counter (no further faults fire).
// The dead flag is not touched; use PowerCycle to revive a dead device.
func (p *FaultPlan) Disarm() {
	p.mu.Lock()
	p.crashAt = 0
	p.mu.Unlock()
}

// PowerCycle clears the power-lost state so a reopened database can use the
// surviving Flash image. The plan stays disabled for the ops already
// counted (a tripped plan does not fire twice); Arm re-enables it.
func (p *FaultPlan) PowerCycle() {
	p.mu.Lock()
	p.dead = false
	p.mu.Unlock()
}

// KillPower cuts power NOW, independently of the operation counter: the
// plan trips immediately and every subsequent operation fails with
// ErrPowerLost until PowerCycle. It is the wall-clock-scheduled power cut
// of the chaos harness — unlike Arm, which schedules a cut at the K-th
// future operation, KillPower needs no cooperating operation stream, so it
// can fire from a timer goroutine while the engine is mid-transaction.
func (p *FaultPlan) KillPower() {
	p.mu.Lock()
	p.dead = true
	p.tripped = true
	p.mu.Unlock()
}

// Ops returns the number of matching operations counted since the last Arm.
func (p *FaultPlan) Ops() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ops
}

// Tripped reports whether the fault has fired since the last Arm.
func (p *FaultPlan) Tripped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tripped
}

// Dead reports whether the simulated device is currently without power.
func (p *FaultPlan) Dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// faultAction tells the chip how to execute (or not execute) an operation.
type faultAction int

const (
	actProceed faultAction = iota
	actTorn                // apply a prefix, then report power loss
	actAfter               // apply fully, then report power loss
)

// alive returns ErrPowerLost once the plan is dead. It gates read-type
// operations, which are never fault points themselves.
func (p *FaultPlan) alive() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return ErrPowerLost
	}
	return nil
}

// step records one matching operation and decides its fate. The second
// return value is non-nil when the operation must fail immediately
// (dead device, or crash-before at the fault point).
func (p *FaultPlan) step(op FaultOp) (faultAction, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return actProceed, ErrPowerLost
	}
	if p.kinds&op == 0 {
		return actProceed, nil
	}
	p.ops++
	if p.crashAt == 0 || p.tripped || p.ops != p.crashAt {
		return actProceed, nil
	}
	p.tripped = true
	p.dead = true
	switch p.mode {
	case CrashTorn:
		return actTorn, nil
	case CrashAfter:
		return actAfter, nil
	default:
		return actProceed, ErrPowerLost
	}
}

// tornLen picks how many of n bytes (or pages) a torn operation persists.
// It is deterministic for a given (crashAt, call sequence).
func (p *FaultPlan) tornLen(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return int(p.rng.next() % uint64(n+1))
}

// LogFlushPoint is called by the WAL flush hook once per physical flush to
// the (otherwise unmodelled) log device. A crash at this point loses the
// whole flush batch: the commit records were never made durable, so every
// transaction in the batch must be rolled back by recovery.
func (p *FaultPlan) LogFlushPoint() error {
	act, err := p.step(OpLogFlush)
	if err != nil {
		return err
	}
	if act != actProceed {
		// A torn or crash-after log write still fails the flush: the log
		// device's own atomicity (sector checksum) discards the batch.
		return ErrPowerLost
	}
	return nil
}
