package nand

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{
		Geometry: Geometry{
			Blocks:        8,
			PagesPerBlock: 16,
			PageSize:      512,
			OOBSize:       32,
		},
		Cell:            MLC,
		StrictOverwrite: true,
		Seed:            1,
	}
}

func mustChip(t *testing.T, cfg Config) *Chip {
	t.Helper()
	c, err := NewChip(cfg)
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	return c
}

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		name string
		g    Geometry
		ok   bool
	}{
		{"valid", Geometry{Blocks: 1, PagesPerBlock: 2, PageSize: 512, OOBSize: 16}, true},
		{"no blocks", Geometry{PagesPerBlock: 2, PageSize: 512}, false},
		{"no pages", Geometry{Blocks: 1, PageSize: 512}, false},
		{"odd pages", Geometry{Blocks: 1, PagesPerBlock: 3, PageSize: 512}, false},
		{"no page size", Geometry{Blocks: 1, PagesPerBlock: 2}, false},
		{"negative oob", Geometry{Blocks: 1, PagesPerBlock: 2, PageSize: 512, OOBSize: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.g.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Errorf("expected error for %+v", tc.g)
			}
		})
	}
}

func TestGeometryTotals(t *testing.T) {
	g := Geometry{Blocks: 4, PagesPerBlock: 8, PageSize: 2048, OOBSize: 64}
	if g.TotalPages() != 32 {
		t.Errorf("TotalPages = %d, want 32", g.TotalPages())
	}
	if g.TotalBytes() != 32*2048 {
		t.Errorf("TotalBytes = %d, want %d", g.TotalBytes(), 32*2048)
	}
}

func TestErasedPageReadsFF(t *testing.T) {
	c := mustChip(t, testConfig())
	data := make([]byte, 512)
	oob := make([]byte, 32)
	if err := c.ReadPage(0, 0, data, oob); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	for i, b := range data {
		if b != 0xFF {
			t.Fatalf("erased data byte %d = %#x, want 0xFF", i, b)
		}
	}
	for i, b := range oob {
		if b != 0xFF {
			t.Fatalf("erased oob byte %d = %#x, want 0xFF", i, b)
		}
	}
}

func TestProgramAndRead(t *testing.T) {
	c := mustChip(t, testConfig())
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i)
	}
	oob := []byte{1, 2, 3, 4}
	if err := c.Program(2, 5, data, oob); err != nil {
		t.Fatalf("Program: %v", err)
	}
	got := make([]byte, 512)
	gotOOB := make([]byte, 32)
	if err := c.ReadPage(2, 5, got, gotOOB); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("data mismatch")
	}
	if !bytes.Equal(gotOOB[:4], oob) {
		t.Fatalf("oob mismatch: %v", gotOOB[:4])
	}
	for _, b := range gotOOB[4:] {
		if b != 0xFF {
			t.Fatalf("unprogrammed oob should stay erased")
		}
	}
	info, err := c.PageStatus(2, 5)
	if err != nil {
		t.Fatalf("PageStatus: %v", err)
	}
	if info.State != PageProgrammed || info.Programs != 1 {
		t.Fatalf("unexpected page info %+v", info)
	}
}

func TestOverwriteViolation(t *testing.T) {
	c := mustChip(t, testConfig())
	if err := c.Program(0, 0, []byte{0x00}, nil); err != nil {
		t.Fatalf("Program: %v", err)
	}
	// 0x00 -> 0x01 needs a 0->1 transition.
	err := c.Program(0, 0, []byte{0x01}, nil)
	if !errors.Is(err, ErrOverwriteViolation) {
		t.Fatalf("expected ErrOverwriteViolation, got %v", err)
	}
	if c.Stats().OverwriteDenied != 1 {
		t.Fatalf("OverwriteDenied = %d, want 1", c.Stats().OverwriteDenied)
	}
	// Clearing more bits (0xF0 over 0xFF elsewhere) is allowed.
	if err := c.Program(0, 0, []byte{0x00, 0xF0}, nil); err != nil {
		t.Fatalf("legal re-program rejected: %v", err)
	}
}

func TestNonStrictOverwriteANDsBits(t *testing.T) {
	cfg := testConfig()
	cfg.StrictOverwrite = false
	c := mustChip(t, cfg)
	if err := c.Program(0, 0, []byte{0x0F}, nil); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if err := c.Program(0, 0, []byte{0xF1}, nil); err != nil {
		t.Fatalf("Program: %v", err)
	}
	got := make([]byte, 1)
	if err := c.ReadPage(0, 0, got, nil); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if got[0] != 0x0F&0xF1 {
		t.Fatalf("got %#x, want %#x (AND of programs)", got[0], 0x0F&0xF1)
	}
}

func TestPartialProgramAppend(t *testing.T) {
	c := mustChip(t, testConfig())
	base := make([]byte, 512)
	for i := 0; i < 256; i++ {
		base[i] = byte(i)
	}
	for i := 256; i < 512; i++ {
		base[i] = 0xFF // leave the append area erased
	}
	if err := c.Program(1, 1, base, nil); err != nil {
		t.Fatalf("Program: %v", err)
	}
	delta := []byte{0xAA, 0xBB, 0xCC}
	if err := c.ProgramPartial(1, 1, 256, delta, 10, []byte{0x42}); err != nil {
		t.Fatalf("ProgramPartial: %v", err)
	}
	got := make([]byte, 512)
	oob := make([]byte, 32)
	if err := c.ReadPage(1, 1, got, oob); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got[:256], base[:256]) {
		t.Fatalf("original data disturbed by append")
	}
	if !bytes.Equal(got[256:259], delta) {
		t.Fatalf("append not visible: %v", got[256:259])
	}
	if oob[10] != 0x42 {
		t.Fatalf("oob append not visible")
	}
	s := c.Stats()
	if s.PagePrograms != 1 || s.PartialPrograms != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestNOPBudgetExceeded(t *testing.T) {
	cfg := testConfig()
	cfg.MaxProgramsPerPage = 2
	c := mustChip(t, cfg)
	if err := c.Program(0, 0, []byte{0xF0}, nil); err != nil {
		t.Fatalf("program 1: %v", err)
	}
	if err := c.ProgramPartial(0, 0, 1, []byte{0x0F}, 0, nil); err != nil {
		t.Fatalf("program 2: %v", err)
	}
	err := c.ProgramPartial(0, 0, 2, []byte{0x0F}, 0, nil)
	if !errors.Is(err, ErrNOPExceeded) {
		t.Fatalf("expected ErrNOPExceeded, got %v", err)
	}
}

func TestEraseResetsPagesAndCountsWear(t *testing.T) {
	c := mustChip(t, testConfig())
	if err := c.Program(3, 0, []byte{0x00, 0x01}, nil); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if err := c.Erase(3); err != nil {
		t.Fatalf("Erase: %v", err)
	}
	got := make([]byte, 2)
	if err := c.ReadPage(3, 0, got, nil); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if got[0] != 0xFF || got[1] != 0xFF {
		t.Fatalf("erase did not reset page: %v", got)
	}
	n, err := c.EraseCount(3)
	if err != nil || n != 1 {
		t.Fatalf("EraseCount = %d, %v", n, err)
	}
	if c.TotalErases() != 1 || c.MaxEraseCount() != 1 {
		t.Fatalf("wear accounting wrong: total=%d max=%d", c.TotalErases(), c.MaxEraseCount())
	}
	// The page can be programmed again after the erase.
	if err := c.Program(3, 0, []byte{0xAB}, nil); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

func TestEnduranceWearOut(t *testing.T) {
	cfg := testConfig()
	cfg.EnduranceCycles = 3
	c := mustChip(t, cfg)
	for i := 0; i < 3; i++ {
		if err := c.Erase(0); err != nil {
			t.Fatalf("erase %d: %v", i, err)
		}
	}
	worn, err := c.WornOut(0)
	if err != nil || !worn {
		t.Fatalf("block should be worn out: %v %v", worn, err)
	}
	if err := c.Erase(0); !errors.Is(err, ErrWornOut) {
		t.Fatalf("expected ErrWornOut, got %v", err)
	}
	if err := c.Program(0, 0, []byte{0}, nil); !errors.Is(err, ErrWornOut) {
		t.Fatalf("expected ErrWornOut on program, got %v", err)
	}
}

func TestOutOfRangeAddresses(t *testing.T) {
	c := mustChip(t, testConfig())
	if err := c.ReadPage(100, 0, nil, nil); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("block out of range not detected: %v", err)
	}
	if err := c.ReadPage(0, 100, nil, nil); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("page out of range not detected: %v", err)
	}
	if err := c.Program(0, 0, make([]byte, 1024), nil); !errors.Is(err, ErrBadLength) {
		t.Errorf("oversized buffer not detected: %v", err)
	}
	if err := c.Erase(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative block not detected: %v", err)
	}
}

func TestProgramInterferenceInjection(t *testing.T) {
	cfg := testConfig()
	cfg.InterferenceProb = 1.0 // always disturb on MSB re-programs
	c := mustChip(t, cfg)
	// Program the LSB page (index 1) and its paired MSB page (index 0).
	lsb := bytes.Repeat([]byte{0xFF}, 512)
	lsb[0] = 0x0F
	if err := c.Program(0, 1, lsb, nil); err != nil {
		t.Fatalf("Program LSB: %v", err)
	}
	msb := bytes.Repeat([]byte{0xFF}, 512)
	msb[0] = 0xF0
	if err := c.Program(0, 0, msb, nil); err != nil {
		t.Fatalf("Program MSB: %v", err)
	}
	// Re-programming the MSB page must disturb the paired LSB page with
	// probability 1.
	if err := c.ProgramPartial(0, 0, 10, []byte{0x00}, 0, nil); err != nil {
		t.Fatalf("ProgramPartial: %v", err)
	}
	if c.Stats().InterferenceBits == 0 {
		t.Fatalf("expected interference bit flips")
	}
	got := make([]byte, 512)
	if err := c.ReadPage(0, 1, got, nil); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if bytes.Equal(got, lsb) {
		t.Fatalf("paired page should have been disturbed")
	}
	// Re-programming an LSB page couples much more weakly: with the same
	// settings a single LSB append must not (deterministically) disturb
	// its neighbour the way the MSB re-program above did.
	before := c.Stats().InterferenceBits
	if err := c.ProgramPartial(0, 1, 10, []byte{0x00}, 0, nil); err != nil {
		t.Fatalf("ProgramPartial LSB: %v", err)
	}
	if c.Stats().InterferenceBits > before+1 {
		t.Fatalf("LSB re-program disturbed more than expected")
	}
}

func TestModeHelpers(t *testing.T) {
	if !IsLSBPage(SLC, 0) || !IsLSBPage(SLC, 7) {
		t.Errorf("every SLC page is an LSB page")
	}
	if IsLSBPage(MLC, 0) || !IsLSBPage(MLC, 1) {
		t.Errorf("odd MLC pages are LSB pages")
	}
	if PairedPage(4) != 5 || PairedPage(5) != 4 {
		t.Errorf("PairedPage wrong")
	}
	if !AppendSafe(MLC, ModePSLC, 1) || AppendSafe(MLC, ModePSLC, 2) {
		t.Errorf("pSLC append safety wrong")
	}
	if !AppendSafe(MLC, ModeOddMLC, 1) || AppendSafe(MLC, ModeOddMLC, 2) {
		t.Errorf("odd-MLC append safety wrong")
	}
	if !AppendSafe(MLC, ModeMLCFull, 2) {
		t.Errorf("MLC-full allows appends everywhere")
	}
	if !PageUsable(MLC, ModeOddMLC, 2) || PageUsable(MLC, ModePSLC, 2) || !PageUsable(MLC, ModePSLC, 1) {
		t.Errorf("PageUsable wrong")
	}
	if SLC.String() != "SLC" || MLC.String() != "MLC" {
		t.Errorf("CellType.String wrong")
	}
	for _, m := range []Mode{ModeSLC, ModeMLCFull, ModePSLC, ModeOddMLC} {
		if m.String() == "" {
			t.Errorf("empty mode name")
		}
	}
}

// TestProgramMonotonicityProperty checks the fundamental NAND property the
// whole paper builds on: no sequence of program operations can ever turn a
// 0 bit back into a 1; only erase can.
func TestProgramMonotonicityProperty(t *testing.T) {
	cfg := testConfig()
	cfg.StrictOverwrite = false
	f := func(images [][]byte) bool {
		c, err := NewChip(cfg)
		if err != nil {
			return false
		}
		expected := byte(0xFF)
		for _, img := range images {
			if len(img) == 0 {
				continue
			}
			b := img[0]
			if err := c.Program(0, 0, []byte{b}, nil); err != nil {
				// NOP budget may be exhausted; stop programming.
				break
			}
			expected &= b
		}
		got := make([]byte, 1)
		if err := c.ReadPage(0, 0, got, nil); err != nil {
			return false
		}
		// The stored value must be the AND of everything programmed and, in
		// particular, must never have a 1 where expected has a 0.
		return got[0] == expected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("monotonicity property violated: %v", err)
	}
}

func TestViolatesOverwriteProperty(t *testing.T) {
	// violatesOverwrite(old, new) must be true exactly when new has a 1 bit
	// where old has a 0 bit.
	f := func(old, new byte) bool {
		got := violatesOverwrite([]byte{old}, []byte{new})
		want := new&^old != 0
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatalf("violatesOverwrite property: %v", err)
	}
}

func TestDefaultConfigDefaults(t *testing.T) {
	cfg := DefaultConfig().withDefaults()
	if cfg.MaxProgramsPerPage <= 0 || cfg.EnduranceCycles <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	slc := Config{Geometry: DefaultGeometry(), Cell: SLC}.withDefaults()
	if slc.EnduranceCycles <= cfg.EnduranceCycles {
		t.Fatalf("SLC endurance should exceed MLC endurance")
	}
}
