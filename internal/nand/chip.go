package nand

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by chip operations.
var (
	// ErrOverwriteViolation is returned by Program when the new data would
	// require a 0->1 bit transition (charge removal) and the chip is
	// configured with StrictOverwrite.
	ErrOverwriteViolation = errors.New("nand: program requires 0->1 transition (erase needed)")
	// ErrNOPExceeded is returned when a page has exhausted its partial
	// program budget.
	ErrNOPExceeded = errors.New("nand: partial program budget (NOP) exceeded")
	// ErrWornOut is returned when a block has exceeded its endurance.
	ErrWornOut = errors.New("nand: block exceeded endurance (worn out)")
	// ErrOutOfRange is returned for addresses outside the chip geometry.
	ErrOutOfRange = errors.New("nand: address out of range")
	// ErrBadLength is returned for buffers that do not fit the geometry.
	ErrBadLength = errors.New("nand: buffer length out of range")
)

// PageState describes the lifecycle state of a Flash page.
type PageState int

const (
	// PageErased means the page has not been programmed since the last
	// block erase; it reads as all 0xFF.
	PageErased PageState = iota
	// PageProgrammed means the page holds data.
	PageProgrammed
)

// page is the state of one physical Flash page.
type page struct {
	data     []byte // nil while erased
	oob      []byte // nil while erased
	state    PageState
	programs int // number of program operations since the last erase
}

// block is one erase unit.
type block struct {
	pages      []page
	eraseCount int
	wornOut    bool
}

// Stats aggregates the raw operation counters of a chip.
type Stats struct {
	PageReads        uint64
	PagePrograms     uint64 // full page programs
	PartialPrograms  uint64 // partial (in-place append) programs
	BlockErases      uint64
	InterferenceBits uint64 // bits flipped by injected program interference
	OverwriteDenied  uint64 // programs rejected due to 0->1 transitions
}

// Chip simulates a single NAND Flash chip.
type Chip struct {
	mu     sync.Mutex
	cfg    Config
	blocks []block
	stats  Stats
	rng    *prng
}

// NewChip creates a chip in the fully erased state.
func NewChip(cfg Config) (*Chip, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Chip{
		cfg:    cfg,
		blocks: make([]block, cfg.Geometry.Blocks),
		rng:    newPRNG(uint64(cfg.Seed) + 0x9e3779b97f4a7c15),
	}
	for i := range c.blocks {
		c.blocks[i].pages = make([]page, cfg.Geometry.PagesPerBlock)
	}
	return c, nil
}

// Config returns the configuration the chip was created with (with defaults
// applied).
func (c *Chip) Config() Config { return c.cfg }

// Geometry returns the chip geometry.
func (c *Chip) Geometry() Geometry { return c.cfg.Geometry }

// Stats returns a snapshot of the operation counters.
func (c *Chip) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// EraseCount returns the number of erase cycles block b has seen.
func (c *Chip) EraseCount(b int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b < 0 || b >= len(c.blocks) {
		return 0, ErrOutOfRange
	}
	return c.blocks[b].eraseCount, nil
}

// MaxEraseCount returns the highest erase count across all blocks.
func (c *Chip) MaxEraseCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := 0
	for i := range c.blocks {
		if c.blocks[i].eraseCount > max {
			max = c.blocks[i].eraseCount
		}
	}
	return max
}

// TotalErases returns the sum of erase counts across all blocks.
func (c *Chip) TotalErases() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum uint64
	for i := range c.blocks {
		sum += uint64(c.blocks[i].eraseCount)
	}
	return sum
}

// PageInfo describes the observable state of a page.
type PageInfo struct {
	State    PageState
	Programs int
}

// PageStatus returns the lifecycle state of the addressed page.
func (c *Chip) PageStatus(b, p int) (PageInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pg, err := c.page(b, p)
	if err != nil {
		return PageInfo{}, err
	}
	return PageInfo{State: pg.state, Programs: pg.programs}, nil
}

func (c *Chip) page(b, p int) (*page, error) {
	if b < 0 || b >= len(c.blocks) {
		return nil, fmt.Errorf("%w: block %d", ErrOutOfRange, b)
	}
	if p < 0 || p >= c.cfg.Geometry.PagesPerBlock {
		return nil, fmt.Errorf("%w: page %d", ErrOutOfRange, p)
	}
	return &c.blocks[b].pages[p], nil
}

// ReadPage copies the data and OOB contents of the addressed page into the
// supplied buffers. Buffers may be nil to skip the respective area; a
// shorter buffer receives a prefix. Erased pages read as 0xFF.
func (c *Chip) ReadPage(b, p int, data, oob []byte) error {
	if c.cfg.Faults != nil {
		if err := c.cfg.Faults.alive(); err != nil {
			return err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pg, err := c.page(b, p)
	if err != nil {
		return err
	}
	if len(data) > c.cfg.Geometry.PageSize || len(oob) > c.cfg.Geometry.OOBSize {
		return ErrBadLength
	}
	c.stats.PageReads++
	fillRead(data, pg.data)
	fillRead(oob, pg.oob)
	return nil
}

// fillRead copies src into dst, padding with 0xFF where src is shorter or nil.
func fillRead(dst, src []byte) {
	if dst == nil {
		return
	}
	n := copy(dst, src)
	for i := n; i < len(dst); i++ {
		dst[i] = 0xFF
	}
}

// Program writes a full page (data and OOB). The operation obeys the
// physics of NAND programming: every bit may only stay or transition from
// 1 to 0. Programming an already programmed page is allowed as long as the
// constraint holds and the NOP budget is not exhausted; this is the
// mechanism In-Place Appends builds on.
func (c *Chip) Program(b, p int, data, oob []byte) error {
	return c.program(b, p, 0, data, 0, oob, false)
}

// ProgramPartial programs only the byte range [dataOff, dataOff+len(data))
// of the page and [oobOff, oobOff+len(oob)) of the OOB area, leaving all
// other cells untouched. This models the append of a delta record to the
// reserved area of an already programmed Flash page.
func (c *Chip) ProgramPartial(b, p, dataOff int, data []byte, oobOff int, oob []byte) error {
	return c.program(b, p, dataOff, data, oobOff, oob, true)
}

func (c *Chip) program(b, p, dataOff int, data []byte, oobOff int, oob []byte, partial bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	pg, err := c.page(b, p)
	if err != nil {
		return err
	}
	blk := &c.blocks[b]
	g := c.cfg.Geometry
	if dataOff < 0 || dataOff+len(data) > g.PageSize {
		return fmt.Errorf("%w: data [%d,%d)", ErrBadLength, dataOff, dataOff+len(data))
	}
	if oobOff < 0 || oobOff+len(oob) > g.OOBSize {
		return fmt.Errorf("%w: oob [%d,%d)", ErrBadLength, oobOff, oobOff+len(oob))
	}
	act := actProceed
	if c.cfg.Faults != nil {
		op := OpProgram
		if partial {
			op = OpDeltaProgram
		}
		act, err = c.cfg.Faults.step(op)
		if err != nil {
			return err
		}
		if act == actTorn {
			return c.tornProgram(pg, dataOff, data, oobOff, oob, partial)
		}
	}
	if blk.wornOut {
		return fmt.Errorf("%w: block %d", ErrWornOut, b)
	}
	if pg.programs >= c.cfg.MaxProgramsPerPage {
		return fmt.Errorf("%w: page %d/%d has %d programs", ErrNOPExceeded, b, p, pg.programs)
	}
	// Materialise the page arrays lazily (erased pages hold no storage).
	if pg.data == nil {
		pg.data = erasedBytes(g.PageSize)
	}
	if pg.oob == nil && g.OOBSize > 0 {
		pg.oob = erasedBytes(g.OOBSize)
	}
	// Check the bit-clear-only constraint before touching any cell so the
	// operation is atomic under StrictOverwrite.
	if c.cfg.StrictOverwrite {
		if violatesOverwrite(pg.data[dataOff:dataOff+len(data)], data) ||
			violatesOverwrite(pg.oob[oobOff:oobOff+len(oob)], oob) {
			c.stats.OverwriteDenied++
			return fmt.Errorf("%w: block %d page %d", ErrOverwriteViolation, b, p)
		}
	}
	programBits(pg.data[dataOff:dataOff+len(data)], data)
	if len(oob) > 0 {
		programBits(pg.oob[oobOff:oobOff+len(oob)], oob)
	}
	pg.state = PageProgrammed
	pg.programs++
	if partial {
		c.stats.PartialPrograms++
	} else {
		c.stats.PagePrograms++
	}
	// Program interference: re-programming an MLC page may disturb the
	// page sharing its wordline if that page already carries data.
	if c.cfg.Cell == MLC && pg.programs > 1 && c.cfg.InterferenceProb > 0 {
		c.maybeDisturbPaired(b, p)
	}
	if act == actAfter {
		// The cells hold the full program, but power died before the
		// device could acknowledge: the host sees a failed command.
		return ErrPowerLost
	}
	return nil
}

// tornProgram applies a power-cut-interrupted program: deterministic
// prefixes of the data and OOB bytes reach the cells (with the physical AND
// semantics, no StrictOverwrite policing — the bits land wherever the
// charge pump got to), everything else stays untouched. The caller holds
// the chip mutex.
func (c *Chip) tornProgram(pg *page, dataOff int, data []byte, oobOff int, oob []byte, partial bool) error {
	g := c.cfg.Geometry
	kd := c.cfg.Faults.tornLen(len(data))
	ko := c.cfg.Faults.tornLen(len(oob))
	if kd == 0 && ko == 0 {
		return ErrPowerLost
	}
	if pg.data == nil {
		pg.data = erasedBytes(g.PageSize)
	}
	if pg.oob == nil && g.OOBSize > 0 {
		pg.oob = erasedBytes(g.OOBSize)
	}
	programBits(pg.data[dataOff:dataOff+kd], data[:kd])
	if ko > 0 {
		programBits(pg.oob[oobOff:oobOff+ko], oob[:ko])
	}
	pg.state = PageProgrammed
	pg.programs++
	if partial {
		c.stats.PartialPrograms++
	} else {
		c.stats.PagePrograms++
	}
	return ErrPowerLost
}

// violatesOverwrite reports whether programming new over old would require
// any 0->1 transition.
func violatesOverwrite(old, new []byte) bool {
	for i := range new {
		// A violation exists where new has a 1 bit in a position where
		// old already has a 0 bit.
		if new[i]&^old[i] != 0 {
			return true
		}
	}
	return false
}

// programBits applies the physical programming rule: the stored value is
// the bitwise AND of the existing charge state and the new data.
func programBits(dst, src []byte) {
	for i := range src {
		dst[i] &= src[i]
	}
}

// maybeDisturbPaired injects a program-interference fault into the page
// paired with (b, p) with the configured probability. Interference only
// adds charge, i.e. flips a 1 bit to 0. Re-programming an LSB page moves
// charges in much smaller ISPP steps than programming the MSB page of the
// wordline, so its coupling on the neighbour is an order of magnitude
// weaker — this is what makes the paper's odd-MLC mode safe in practice.
func (c *Chip) maybeDisturbPaired(b, p int) {
	pp := PairedPage(p)
	if pp == p || pp >= c.cfg.Geometry.PagesPerBlock {
		return
	}
	paired := &c.blocks[b].pages[pp]
	if paired.state != PageProgrammed || paired.data == nil {
		return
	}
	prob := c.cfg.InterferenceProb
	if IsLSBPage(c.cfg.Cell, p) {
		prob /= 10
	}
	if c.rng.float64() >= prob {
		return
	}
	// Pick a random 1 bit and clear it.
	byteIdx := int(c.rng.next() % uint64(len(paired.data)))
	for tries := 0; tries < len(paired.data); tries++ {
		i := (byteIdx + tries) % len(paired.data)
		if paired.data[i] == 0 {
			continue
		}
		bit := uint(c.rng.next() % 8)
		for b := uint(0); b < 8; b++ {
			mask := byte(1) << ((bit + b) % 8)
			if paired.data[i]&mask != 0 {
				paired.data[i] &^= mask
				c.stats.InterferenceBits++
				return
			}
		}
	}
}

// Erase resets every page of the block to the erased state and increments
// the block's wear counter. Erasing past the endurance limit marks the
// block as worn out and fails.
func (c *Chip) Erase(b int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b < 0 || b >= len(c.blocks) {
		return fmt.Errorf("%w: block %d", ErrOutOfRange, b)
	}
	blk := &c.blocks[b]
	act := actProceed
	if c.cfg.Faults != nil {
		var err error
		act, err = c.cfg.Faults.step(OpErase)
		if err != nil {
			return err
		}
	}
	if blk.wornOut {
		return fmt.Errorf("%w: block %d", ErrWornOut, b)
	}
	pages := len(blk.pages)
	if act == actTorn {
		// An interrupted erase resets only a prefix of the block's pages;
		// the rest keep their (stale) contents. The wear still happened.
		pages = c.cfg.Faults.tornLen(pages)
	}
	for i := 0; i < pages; i++ {
		blk.pages[i] = page{}
	}
	blk.eraseCount++
	c.stats.BlockErases++
	if blk.eraseCount >= c.cfg.EnduranceCycles {
		blk.wornOut = true
	}
	if act != actProceed {
		return ErrPowerLost
	}
	return nil
}

// WornOut reports whether block b has exceeded its endurance.
func (c *Chip) WornOut(b int) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b < 0 || b >= len(c.blocks) {
		return false, ErrOutOfRange
	}
	return c.blocks[b].wornOut, nil
}

// erasedBytes returns a fresh buffer in the erased (all 0xFF) state.
func erasedBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = 0xFF
	}
	return b
}

// prng is a small deterministic xorshift* generator used for fault
// injection so experiments are reproducible. math/rand is avoided to keep
// the chip's behaviour stable across Go releases.
type prng struct{ state uint64 }

func newPRNG(seed uint64) *prng {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	return &prng{state: seed}
}

func (r *prng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

func (r *prng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
