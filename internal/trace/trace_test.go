package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ipa/internal/storage"
)

func sampleStorageTrace() []storage.TraceEvent {
	return []storage.TraceEvent{
		{Type: storage.TraceFetch, PID: 1},
		{Type: storage.TraceEvict, PID: 1, ChangedBytes: 12, MetaChanged: true},
		{Type: storage.TraceFetch, PID: 2},
		{Type: storage.TraceEvict, PID: 2, ChangedBytes: 4096, FullWrite: true},
		{Type: storage.TraceEvict, PID: 3, ChangedBytes: 2},
	}
}

func TestFromToStorageRoundTrip(t *testing.T) {
	orig := sampleStorageTrace()
	events := FromStorage(orig)
	if len(events) != len(orig) {
		t.Fatalf("lost events: %d vs %d", len(events), len(orig))
	}
	back, err := ToStorage(events)
	if err != nil {
		t.Fatalf("ToStorage: %v", err)
	}
	if !reflect.DeepEqual(back, orig) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back, orig)
	}
}

func TestToStorageRejectsUnknownKind(t *testing.T) {
	if _, err := ToStorage([]Event{{Kind: "bogus"}}); err == nil {
		t.Fatalf("unknown kinds must be rejected")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	events := FromStorage(sampleStorageTrace())
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(events) {
		t.Fatalf("expected one JSON line per event, got %d lines", got)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Fatalf("file round trip mismatch")
	}
}

func TestReadBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Fatalf("malformed input must be rejected")
	}
	events, err := Read(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Fatalf("empty input must give an empty trace: %v %v", events, err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(FromStorage(sampleStorageTrace()))
	if s.Fetches != 2 || s.Evictions != 3 || s.FullWrites != 1 {
		t.Fatalf("summary counts wrong: %+v", s)
	}
	if s.SmallEvictions != 2 {
		t.Fatalf("SmallEvictions = %d", s.SmallEvictions)
	}
	if s.DistinctPages != 3 {
		t.Fatalf("DistinctPages = %d", s.DistinctPages)
	}
	if s.AvgChangedBytes() <= 0 || s.SmallEvictionShare() <= 0 {
		t.Fatalf("derived metrics wrong: %+v", s)
	}
	if s.String() == "" {
		t.Fatalf("String empty")
	}
	var empty Summary
	if empty.AvgChangedBytes() != 0 || empty.SmallEvictionShare() != 0 {
		t.Fatalf("empty summary must not divide by zero")
	}
}

// TestSerialisationProperty: every storage trace survives the
// storage -> Event -> JSON -> Event -> storage round trip unchanged.
func TestSerialisationProperty(t *testing.T) {
	f := func(pids []uint64, changed []uint16, evict []bool) bool {
		var orig []storage.TraceEvent
		for i, pid := range pids {
			ev := storage.TraceEvent{PID: pid, Type: storage.TraceFetch}
			if i < len(evict) && evict[i] {
				ev.Type = storage.TraceEvict
				if i < len(changed) {
					ev.ChangedBytes = int(changed[i])
				}
				ev.FullWrite = i%2 == 0
				ev.MetaChanged = i%3 == 0
			}
			orig = append(orig, ev)
		}
		var buf bytes.Buffer
		if err := Write(&buf, FromStorage(orig)); err != nil {
			return false
		}
		events, err := Read(&buf)
		if err != nil {
			return false
		}
		back, err := ToStorage(events)
		if err != nil {
			return false
		}
		if len(orig) == 0 {
			return len(back) == 0
		}
		return reflect.DeepEqual(back, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatalf("serialisation property: %v", err)
	}
}
