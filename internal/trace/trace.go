// Package trace persists and analyses fetch/eviction traces.
//
// The paper's IPA-vs-IPL comparison (footnote 1) is trace driven: a
// benchmark run is recorded once and then replayed against different
// storage managers. The storage package produces such traces in memory;
// this package adds a stable on-disk representation (JSON lines), summary
// statistics, and helpers to load a trace back for replay, so experiments
// can be recorded once and analysed many times (cmd/ipatrace).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ipa/internal/storage"
)

// Event is the serialised form of one trace entry.
type Event struct {
	// Kind is "fetch" or "evict".
	Kind string `json:"kind"`
	// PID is the logical page identifier.
	PID uint64 `json:"pid"`
	// ChangedBytes is the number of net modified bytes at eviction.
	ChangedBytes int `json:"changed,omitempty"`
	// MetaChanged reports whether page metadata changed.
	MetaChanged bool `json:"meta,omitempty"`
	// FullWrite reports whether the eviction was a whole-page write.
	FullWrite bool `json:"full,omitempty"`
}

const (
	kindFetch = "fetch"
	kindEvict = "evict"
)

// FromStorage converts storage trace events into their serialised form.
func FromStorage(events []storage.TraceEvent) []Event {
	out := make([]Event, 0, len(events))
	for _, ev := range events {
		e := Event{PID: ev.PID}
		switch ev.Type {
		case storage.TraceFetch:
			e.Kind = kindFetch
		case storage.TraceEvict:
			e.Kind = kindEvict
			e.ChangedBytes = ev.ChangedBytes
			e.MetaChanged = ev.MetaChanged
			e.FullWrite = ev.FullWrite
		default:
			continue
		}
		out = append(out, e)
	}
	return out
}

// ToStorage converts serialised events back into storage trace events,
// ready to be replayed (e.g. against the In-Page Logging manager).
func ToStorage(events []Event) ([]storage.TraceEvent, error) {
	out := make([]storage.TraceEvent, 0, len(events))
	for i, ev := range events {
		switch ev.Kind {
		case kindFetch:
			out = append(out, storage.TraceEvent{Type: storage.TraceFetch, PID: ev.PID})
		case kindEvict:
			out = append(out, storage.TraceEvent{
				Type:         storage.TraceEvict,
				PID:          ev.PID,
				ChangedBytes: ev.ChangedBytes,
				MetaChanged:  ev.MetaChanged,
				FullWrite:    ev.FullWrite,
			})
		default:
			return nil, fmt.Errorf("trace: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	return out, nil
}

// Write serialises events as JSON lines (one event per line).
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines trace.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decoding event %d: %w", len(out), err)
		}
		out = append(out, ev)
	}
}

// Summary aggregates a trace the way Figure 1 looks at eviction behaviour.
type Summary struct {
	Fetches        int
	Evictions      int
	FullWrites     int
	SmallEvictions int // evictions changing fewer than 100 bytes
	ChangedBytes   int64
	DistinctPages  int
}

// Summarize computes summary statistics for a trace.
func Summarize(events []Event) Summary {
	var s Summary
	pages := make(map[uint64]struct{})
	for _, ev := range events {
		pages[ev.PID] = struct{}{}
		switch ev.Kind {
		case kindFetch:
			s.Fetches++
		case kindEvict:
			s.Evictions++
			s.ChangedBytes += int64(ev.ChangedBytes)
			if ev.FullWrite {
				s.FullWrites++
			}
			if ev.ChangedBytes > 0 && ev.ChangedBytes < storage.SmallEvictionThreshold {
				s.SmallEvictions++
			}
		}
	}
	s.DistinctPages = len(pages)
	return s
}

// AvgChangedBytes returns the average net modified bytes per eviction.
func (s Summary) AvgChangedBytes() float64 {
	if s.Evictions == 0 {
		return 0
	}
	return float64(s.ChangedBytes) / float64(s.Evictions)
}

// SmallEvictionShare returns the fraction of evictions changing fewer than
// 100 bytes.
func (s Summary) SmallEvictionShare() float64 {
	if s.Evictions == 0 {
		return 0
	}
	return float64(s.SmallEvictions) / float64(s.Evictions)
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("fetches=%d evictions=%d fullWrites=%d distinctPages=%d avgChanged=%.1fB small=%.1f%%",
		s.Fetches, s.Evictions, s.FullWrites, s.DistinctPages, s.AvgChangedBytes(), 100*s.SmallEvictionShare())
}
