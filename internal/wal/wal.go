// Package wal implements a write-ahead log with physiological undo/redo
// records.
//
// The paper stresses that In-Place Appends does not interfere with regular
// database functionality such as recovery: delta records are a storage
// representation of the very same in-place updates the WAL already
// describes. The log here exists to demonstrate exactly that — the engine
// logs every tuple update before it happens, the recovery test replays the
// log against a crashed storage state, and the result is identical whether
// pages were persisted with in-place appends or with traditional
// out-of-place writes.
//
// Log records are kept in memory (the experiments place the log on a
// separate device, as DBMSs commonly do) but are fully serialisable so
// that log volume can be accounted and recovery can be tested end to end.
// Records live in fixed-size segments: appends go to the active tail
// segment, sealed segments are immutable, and checkpoint truncation drops
// whole sealed segments in O(1) and recycles their backing arrays for new
// tails, so a long-running engine's log memory stays bounded by the
// checkpoint interval instead of growing with history.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// RecordType enumerates log record kinds.
type RecordType uint8

const (
	// RecUpdate describes an in-place byte-range update of a tuple.
	RecUpdate RecordType = iota + 1
	// RecInsert describes a tuple insertion.
	RecInsert
	// RecDelete describes a tuple deletion.
	RecDelete
	// RecCommit marks a transaction as committed. Its Key field carries
	// the MVCC commit timestamp (Key is part of every record's fixed
	// header, so reusing it keeps the log format unchanged); recovery
	// restarts the timestamp oracle past the highest durable one.
	RecCommit
	// RecAbort marks a transaction as rolled back.
	RecAbort
	// RecCheckpoint marks a fuzzy checkpoint. PageID carries the
	// truncation cut (the LSN below which the log may be discarded), Key
	// the LSN at which the checkpoint began and New the encoded
	// active-transaction table captured while the checkpoint ran.
	RecCheckpoint
	// RecIndexInsert describes a logical index insertion: ObjectID names
	// the index (primary-key or secondary), Key the indexed key and New
	// the 8-byte little-endian packed RID of the indexed tuple.
	RecIndexInsert
	// RecIndexDelete describes a logical index deletion; Old carries the
	// packed RID of the removed entry. The primary key ignores the RID on
	// redo (keys are unique); non-unique secondary indexes need it to name
	// which of a key's entries is removed.
	RecIndexDelete
)

// String returns a short name for the record type.
func (t RecordType) String() string {
	switch t {
	case RecUpdate:
		return "UPDATE"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecIndexInsert:
		return "IDX-INSERT"
	case RecIndexDelete:
		return "IDX-DELETE"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one write-ahead log record.
type Record struct {
	LSN      uint64
	TxnID    uint64
	Type     RecordType
	PageID   uint64
	Slot     uint16
	Offset   uint16 // tuple-relative offset for updates
	ObjectID uint32 // owning table (inserts/deletes) or index (index records)
	Key      int64  // indexed key (index records) or commit timestamp (RecCommit)
	Old      []byte // before image (undo)
	New      []byte // after image (redo)
}

// CommitTS returns the MVCC commit timestamp carried by a RecCommit
// record (0 for other record types).
func (r Record) CommitTS() uint64 {
	if r.Type != RecCommit {
		return 0
	}
	return uint64(r.Key)
}

// MaxCommitTS returns the highest commit timestamp among the given
// records — recovery restarts the timestamp oracle past it.
func MaxCommitTS(records []Record) uint64 {
	var max uint64
	for _, r := range records {
		if ts := r.CommitTS(); ts > max {
			max = ts
		}
	}
	return max
}

// headerSize is the fixed encoded size of a record before the images.
const headerSize = 8 + 8 + 1 + 8 + 2 + 2 + 4 + 8 + 4 + 4

// EncodedSize returns the serialised size of the record in bytes.
func (r Record) EncodedSize() int { return headerSize + len(r.Old) + len(r.New) }

// Encode serialises the record.
func (r Record) Encode() []byte {
	buf := make([]byte, r.EncodedSize())
	binary.LittleEndian.PutUint64(buf[0:], r.LSN)
	binary.LittleEndian.PutUint64(buf[8:], r.TxnID)
	buf[16] = byte(r.Type)
	binary.LittleEndian.PutUint64(buf[17:], r.PageID)
	binary.LittleEndian.PutUint16(buf[25:], r.Slot)
	binary.LittleEndian.PutUint16(buf[27:], r.Offset)
	binary.LittleEndian.PutUint32(buf[29:], r.ObjectID)
	binary.LittleEndian.PutUint64(buf[33:], uint64(r.Key))
	binary.LittleEndian.PutUint32(buf[41:], uint32(len(r.Old)))
	binary.LittleEndian.PutUint32(buf[45:], uint32(len(r.New)))
	copy(buf[headerSize:], r.Old)
	copy(buf[headerSize+len(r.Old):], r.New)
	return buf
}

// ErrShortRecord is returned when decoding a truncated record buffer.
var ErrShortRecord = errors.New("wal: truncated record")

// Decode parses one record from buf and returns it together with the
// number of bytes consumed.
func Decode(buf []byte) (Record, int, error) {
	if len(buf) < headerSize {
		return Record{}, 0, ErrShortRecord
	}
	var r Record
	r.LSN = binary.LittleEndian.Uint64(buf[0:])
	r.TxnID = binary.LittleEndian.Uint64(buf[8:])
	r.Type = RecordType(buf[16])
	r.PageID = binary.LittleEndian.Uint64(buf[17:])
	r.Slot = binary.LittleEndian.Uint16(buf[25:])
	r.Offset = binary.LittleEndian.Uint16(buf[27:])
	r.ObjectID = binary.LittleEndian.Uint32(buf[29:])
	r.Key = int64(binary.LittleEndian.Uint64(buf[33:]))
	oldLen := int(binary.LittleEndian.Uint32(buf[41:]))
	newLen := int(binary.LittleEndian.Uint32(buf[45:]))
	total := headerSize + oldLen + newLen
	if len(buf) < total {
		return Record{}, 0, ErrShortRecord
	}
	if oldLen > 0 {
		r.Old = append([]byte(nil), buf[headerSize:headerSize+oldLen]...)
	}
	if newLen > 0 {
		r.New = append([]byte(nil), buf[headerSize+oldLen:total]...)
	}
	return r, total, nil
}

// commitWaiter is one caller waiting for the log to become durable up to
// its LSN. Waiters queue up while a flush is in flight; the leader absorbs
// the whole queue into a single log-device write and wakes every follower.
// commit marks transaction commits (counted in the group-commit batch
// statistics) as opposed to stand-alone Flush callers.
type commitWaiter struct {
	lsn    uint64
	commit bool
	done   chan struct{}
	err    error // set before done is closed when the log-device write failed
}

// GroupCommitStats describes how effectively concurrent commits were
// batched into shared flushes.
type GroupCommitStats struct {
	// Flushes is the number of physical log flushes.
	Flushes uint64
	// FlushedCommits is the number of commit requests those flushes served;
	// FlushedCommits / Flushes is the average group-commit batch size.
	FlushedCommits uint64
	// MaxBatch is the largest number of commits served by one flush.
	MaxBatch uint64
}

// CommitsPerFlush returns the average group-commit batch size.
func (s GroupCommitStats) CommitsPerFlush() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.FlushedCommits) / float64(s.Flushes)
}

// DefaultSegmentBytes is the seal threshold of a log segment: once the
// active tail accumulates this many encoded bytes it is sealed and a new
// tail (recycled from a previously truncated segment when possible) takes
// over. Checkpoint truncation drops whole sealed segments.
const DefaultSegmentBytes = 64 << 10

// maxRecycledSegments bounds the free list of truncated segment arrays
// kept for reuse as future tails.
const maxRecycledSegments = 4

// segment is one run of consecutive log records. Only the last segment of
// a log accepts appends; earlier segments are sealed and immutable, which
// is what makes whole-segment truncation and array recycling safe.
type segment struct {
	records []Record
	bytes   int // sum of EncodedSize over records
}

func (s *segment) firstLSN() uint64 {
	if len(s.records) == 0 {
		return 0
	}
	return s.records[0].LSN
}

func (s *segment) lastLSN() uint64 {
	if len(s.records) == 0 {
		return 0
	}
	return s.records[len(s.records)-1].LSN
}

// Log is an in-memory write-ahead log with byte accounting and a
// group-commit pipeline: concurrently-arriving commit flushes are batched
// into a single log append, amortising the latency of the separate log
// device the paper's experimental setup assumes. Records are stored in
// sealed segments plus one active tail so checkpoint truncation is O(1)
// per dropped segment rather than a full-log rewrite.
type Log struct {
	mu           sync.Mutex
	segs         []*segment // LSN order; the last segment is the active tail
	segBytes     int
	free         [][]Record // recycled arrays from truncated segments
	liveBytes    uint64
	truncatedLSN uint64 // highest LSN discarded by Truncate
	nextLSN      uint64
	flushedLSN   uint64
	bytesWritten uint64

	// Group-commit state: waiters queue while a leader's flush is in
	// flight; the leader drains the queue batch by batch.
	waiters  []*commitWaiter
	flushing bool
	gcStats  GroupCommitStats

	// flushHook, if set, models the log-device write: it is called once
	// per flush batch (outside the log mutex) with the number of bytes
	// made durable. Group commit pays this cost once per batch instead of
	// once per transaction. A hook error means the write never reached
	// the log device (e.g. an injected power cut): the batch does not
	// become durable and every waiter riding it receives the error.
	flushHook func(bytes int) error
}

// New creates an empty log. LSNs start at 1.
func New() *Log {
	return &Log{nextLSN: 1, segBytes: DefaultSegmentBytes, segs: []*segment{{}}}
}

// NewFromRecords creates a log pre-loaded with the records that survived a
// crash (the durable prefix of a previous log, in LSN order). New appends
// continue after the highest surviving LSN.
func NewFromRecords(records []Record, flushedLSN uint64) *Log {
	l := New()
	l.flushedLSN = flushedLSN
	for _, r := range records {
		l.appendSealedLocked(r)
		if r.LSN >= l.nextLSN {
			l.nextLSN = r.LSN + 1
		}
	}
	if flushedLSN >= l.nextLSN {
		l.nextLSN = flushedLSN + 1
	}
	if len(records) > 0 {
		l.truncatedLSN = records[0].LSN - 1
	}
	return l
}

// SetFlushHook installs fn as the simulated log-device write, invoked once
// per flush batch with the flushed byte count. It must be set before the
// log is shared between goroutines.
func (l *Log) SetFlushHook(fn func(bytes int) error) { l.flushHook = fn }

// SetSegmentBytes overrides the segment seal threshold (tests use small
// segments to exercise truncation). It must be called before the log is
// shared between goroutines.
func (l *Log) SetSegmentBytes(n int) {
	if n <= 0 {
		n = DefaultSegmentBytes
	}
	l.mu.Lock()
	l.segBytes = n
	l.mu.Unlock()
}

// sealLocked closes the active tail and opens a fresh one, reusing a
// truncated segment's array when one is available.
func (l *Log) sealLocked() {
	var recs []Record
	if n := len(l.free); n > 0 {
		recs = l.free[n-1]
		l.free = l.free[:n-1]
	}
	l.segs = append(l.segs, &segment{records: recs})
}

// appendSealedLocked appends a record (which already carries its LSN) to
// the tail segment, sealing it when full.
func (l *Log) appendSealedLocked(r Record) {
	tail := l.segs[len(l.segs)-1]
	tail.records = append(tail.records, r)
	sz := r.EncodedSize()
	tail.bytes += sz
	l.liveBytes += uint64(sz)
	if tail.bytes >= l.segBytes {
		l.sealLocked()
	}
}

// Append adds a record and returns its LSN.
func (l *Log) Append(r Record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.nextLSN
	l.nextLSN++
	l.appendSealedLocked(r)
	return r.LSN
}

// pendingBytesLocked sums the encoded size of the records in
// (flushedLSN, upTo]. Records are appended in LSN order, so whole
// already-flushed segments are skipped and the first unflushed record in
// the boundary segment is found by binary search. The caller holds the
// log mutex.
func (l *Log) pendingBytesLocked(upTo uint64) int {
	bytes := 0
	for _, s := range l.segs {
		if len(s.records) == 0 || s.lastLSN() <= l.flushedLSN {
			continue
		}
		recs := s.records
		if s.firstLSN() <= l.flushedLSN {
			lo, hi := 0, len(recs)
			for lo < hi {
				mid := (lo + hi) / 2
				if recs[mid].LSN <= l.flushedLSN {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			recs = recs[lo:]
		}
		for _, r := range recs {
			if r.LSN > upTo {
				return bytes
			}
			bytes += r.EncodedSize()
		}
	}
	return bytes
}

// clampLocked resolves upTo == 0 / out-of-range to the last appended LSN.
func (l *Log) clampLocked(upTo uint64) uint64 {
	if upTo == 0 || upTo >= l.nextLSN {
		return l.nextLSN - 1
	}
	return upTo
}

// Flush makes all appended records durable up to the given LSN (or all
// records if upTo is zero) and accounts the flushed bytes. It is the
// stand-alone flush used by checkpoints, the eviction write-ahead barrier
// and recovery tests; transaction commits go through CommitFlush. Both
// share one flush pipeline, so concurrent callers never account the same
// records twice. A non-nil error means the log device failed (power cut)
// and the records are NOT durable.
func (l *Log) Flush(upTo uint64) error { return l.flush(upTo, false) }

// CommitFlush makes the log durable at least up to lsn, batching
// concurrently-arriving commits into one flush. The first caller becomes
// the leader and writes the log device on behalf of every transaction that
// queued up in the meantime (followers merely wait); each additional
// follower rides along for free, which is exactly how a DBMS amortises
// the latency of a dedicated log device. An error means the commit record
// never became durable: the transaction must be treated as rolled back.
func (l *Log) CommitFlush(lsn uint64) error { return l.flush(lsn, true) }

// flush is the shared leader/follower pipeline behind Flush and
// CommitFlush. Only commit callers count towards the group-commit batch
// statistics.
func (l *Log) flush(lsn uint64, commit bool) error {
	l.mu.Lock()
	lsn = l.clampLocked(lsn)
	if lsn <= l.flushedLSN {
		l.mu.Unlock()
		return nil
	}
	w := &commitWaiter{lsn: lsn, commit: commit, done: make(chan struct{})}
	l.waiters = append(l.waiters, w)
	if l.flushing {
		// A leader is already writing the log device; it will pick this
		// waiter up in its next batch.
		l.mu.Unlock()
		<-w.done
		return w.err
	}
	l.flushing = true
	for {
		batch := l.waiters
		l.waiters = nil
		target := uint64(0)
		commits := uint64(0)
		for _, bw := range batch {
			if bw.lsn > target {
				target = bw.lsn
			}
			if bw.commit {
				commits++
			}
		}
		bytes := l.pendingBytesLocked(target)
		hook := l.flushHook
		l.mu.Unlock()
		// One log-device write for the whole batch. New callers arriving
		// during this write queue behind l.flushing and join the next
		// batch.
		var hookErr error
		if hook != nil {
			hookErr = hook(bytes)
		}
		l.mu.Lock()
		if hookErr == nil {
			l.bytesWritten += uint64(bytes)
			if target > l.flushedLSN {
				l.flushedLSN = target
			}
		} else {
			// The write never reached the log device: the whole batch is
			// lost. Every waiter learns its records are not durable.
			for _, bw := range batch {
				bw.err = hookErr
			}
		}
		// Waiters that queued during the write but whose records were
		// already covered by an earlier flush (their LSN is at or below
		// flushedLSN) are served now instead of triggering a redundant
		// zero-byte device write.
		pending := l.waiters[:0]
		for _, bw := range l.waiters {
			if bw.lsn <= l.flushedLSN {
				if bw.commit {
					commits++
				}
				batch = append(batch, bw)
			} else {
				pending = append(pending, bw)
			}
		}
		l.waiters = pending
		if hookErr == nil {
			l.gcStats.Flushes++
			l.gcStats.FlushedCommits += commits
			if commits > l.gcStats.MaxBatch {
				l.gcStats.MaxBatch = commits
			}
		}
		for _, bw := range batch {
			close(bw.done)
		}
		if len(l.waiters) == 0 {
			l.flushing = false
			l.mu.Unlock()
			return w.err
		}
	}
}

// ResetStats zeroes the flushed-byte and group-commit counters (the
// durability state — flushedLSN, records — is untouched). Used by
// DB.ResetStats to restart the measurement window after a load phase.
func (l *Log) ResetStats() {
	l.mu.Lock()
	l.bytesWritten = 0
	l.gcStats = GroupCommitStats{}
	l.mu.Unlock()
}

// GroupCommitStats returns a snapshot of the group-commit counters.
func (l *Log) GroupCommitStats() GroupCommitStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gcStats
}

// PendingCommits returns the number of commit waiters queued behind the
// current flush leader (for tests and monitoring).
func (l *Log) PendingCommits() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.waiters)
}

// FlushedLSN returns the highest durable LSN.
func (l *Log) FlushedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushedLSN
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// BytesWritten returns the number of log bytes made durable so far.
func (l *Log) BytesWritten() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesWritten
}

// LiveBytes returns the encoded size of all records currently retained by
// the log — the volume recovery would have to replay. Checkpoint
// truncation is what keeps it bounded.
func (l *Log) LiveBytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.liveBytes
}

// Segments returns the number of live segments (sealed plus the active
// tail).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// TruncatedLSN returns the highest LSN discarded by Truncate (0 when the
// log still reaches back to LSN 1). Recovery must start strictly above it.
func (l *Log) TruncatedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncatedLSN
}

// DurableRecords returns a copy of the records that have been made durable
// (LSN at or below the flushed LSN), in LSN order. This is exactly what a
// crash preserves: records still in the volatile log buffer are gone.
func (l *Log) DurableRecords() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, s := range l.segs {
		for _, r := range s.records {
			if r.LSN > l.flushedLSN {
				return out
			}
			out = append(out, r)
		}
	}
	return out
}

// Records returns a copy of all retained records in LSN order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, s := range l.segs {
		n += len(s.records)
	}
	out := make([]Record, 0, n)
	for _, s := range l.segs {
		out = append(out, s.records...)
	}
	return out
}

// RecordsFor returns all retained records of one transaction in LSN order.
func (l *Log) RecordsFor(txnID uint64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, s := range l.segs {
		for _, r := range s.records {
			if r.TxnID == txnID {
				out = append(out, r)
			}
		}
	}
	return out
}

// Truncate discards whole segments whose records all have LSN <= upTo
// (checkpointing: upTo is the cut below the oldest undo any recovery could
// need). Truncation is segment-granular — a segment straddling the cut is
// retained in full, which is safe because replay is idempotent — and O(1)
// per dropped segment; dropped arrays are recycled as future tails.
func (l *Log) Truncate(upTo uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if tail := l.segs[len(l.segs)-1]; len(tail.records) > 0 && tail.lastLSN() <= upTo {
		l.sealLocked()
	}
	for len(l.segs) > 1 {
		s := l.segs[0]
		if len(s.records) == 0 || s.lastLSN() > upTo {
			break
		}
		l.truncatedLSN = s.lastLSN()
		l.liveBytes -= uint64(s.bytes)
		if len(l.free) < maxRecycledSegments {
			l.free = append(l.free, s.records[:0])
		}
		l.segs = l.segs[1:]
	}
}

// Analysis is the result of scanning the log during recovery.
type Analysis struct {
	Committed map[uint64]bool // transactions with a COMMIT record
	Aborted   map[uint64]bool
	Losers    map[uint64]bool // transactions without COMMIT/ABORT
}

// Analyze performs the analysis pass of recovery.
func (l *Log) Analyze() Analysis {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := Analysis{
		Committed: make(map[uint64]bool),
		Aborted:   make(map[uint64]bool),
		Losers:    make(map[uint64]bool),
	}
	for _, s := range l.segs {
		for _, r := range s.records {
			switch r.Type {
			case RecCommit:
				a.Committed[r.TxnID] = true
				delete(a.Losers, r.TxnID)
			case RecAbort:
				a.Aborted[r.TxnID] = true
				delete(a.Losers, r.TxnID)
			case RecCheckpoint:
			default:
				if !a.Committed[r.TxnID] && !a.Aborted[r.TxnID] {
					a.Losers[r.TxnID] = true
				}
			}
		}
	}
	return a
}

// Applier applies redo, undo and compensation images during recovery.
type Applier interface {
	// ApplyUpdate installs image at the byte offset of the tuple in slot
	// on page pid.
	ApplyUpdate(pid uint64, slot uint16, offset uint16, image []byte) error
	// CompensateUpdate rolls back an aborted transaction's update during
	// the forward replay pass, conditionally: the before image old is
	// installed only if the current page bytes still equal the after
	// image new. The condition makes compensation idempotent against
	// pages that were flushed after the in-memory rollback (the bytes
	// already hold old, or a later committed value that must stand).
	CompensateUpdate(pid uint64, slot uint16, offset uint16, old, new []byte) error
	// RedoInsert (re)materialises the tuple in slot on page pid, creating
	// the page for objectID if the crash lost it before its first flush.
	RedoInsert(objectID uint32, pid uint64, slot uint16, tuple []byte) error
	// UndoInsert removes the tuple in slot on page pid if it is present.
	UndoInsert(pid uint64, slot uint16) error
	// RedoDelete re-applies a committed tuple deletion (idempotent: a
	// slot that is already deleted or never reached Flash is a no-op).
	RedoDelete(objectID uint32, pid uint64, slot uint16) error
	// UndoDelete restores the before image of a deleted tuple, if the
	// page survived and the slot is still marked deleted.
	UndoDelete(objectID uint32, pid uint64, slot uint16, tuple []byte) error
	// RedoIndexInsert re-applies a committed logical index insertion:
	// key maps to value in the index identified by objectID.
	RedoIndexInsert(objectID uint32, key int64, value uint64) error
	// RedoIndexDelete re-applies a committed logical index deletion.
	// value is the packed RID of the removed entry: unique indexes may
	// ignore it, non-unique ones use it to select the entry.
	RedoIndexDelete(objectID uint32, key int64, value uint64) error
	// UndoIndexInsert removes a loser's index entry if (and only if) key
	// still maps to value.
	UndoIndexInsert(objectID uint32, key int64, value uint64) error
	// UndoIndexDelete restores a loser's deleted index entry if the key
	// is currently unmapped.
	UndoIndexDelete(objectID uint32, key int64, value uint64) error
}

// ValueOf decodes the packed RID carried in an index record image.
func ValueOf(image []byte) uint64 {
	if len(image) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(image)
}

// ValueImage encodes a packed RID as the 8-byte image of an index record.
func ValueImage(value uint64) []byte {
	img := make([]byte, 8)
	binary.LittleEndian.PutUint64(img, value)
	return img
}

// replayOp is one unit of work in the forward repeat-history pass: either
// the redo of a committed record or the compensation of an aborted one
// (positioned at the transaction's RecAbort, in reverse record order, just
// as the original rollback ran).
type replayOp struct {
	rec  Record
	comp bool
}

// lane assigns an op to a replay worker. Ops on the same entity — the
// same heap page, or the same index object — always hash to the same
// lane, so per-entity order is preserved under parallel replay; distinct
// entities commute.
func (op replayOp) lane(workers int) int {
	var key uint64
	switch op.rec.Type {
	case RecIndexInsert, RecIndexDelete:
		key = uint64(op.rec.ObjectID)*2 + 1
	default:
		key = op.rec.PageID * 2
	}
	key *= 0x9E3779B97F4A7C15 // spread sequential IDs across lanes
	return int(key % uint64(workers))
}

// buildReplayOps linearises the forward pass: committed records replay in
// LSN order; each aborted transaction's updates, deletes and index
// deletes replay as compensations at its RecAbort position in reverse
// order. Aborted inserts and index inserts are NOT compensated here —
// a slot or entry belongs to exactly one insert ever, so they are removed
// by the final reverse undo pass alongside the losers'.
func buildReplayOps(recs []Record, a Analysis) []replayOp {
	var ops []replayOp
	pending := make(map[uint64][]Record)
	for _, r := range recs {
		switch {
		case a.Committed[r.TxnID]:
			switch r.Type {
			case RecUpdate, RecInsert, RecDelete, RecIndexInsert, RecIndexDelete:
				ops = append(ops, replayOp{rec: r})
			}
		case a.Aborted[r.TxnID]:
			switch r.Type {
			case RecUpdate, RecDelete, RecIndexDelete:
				pending[r.TxnID] = append(pending[r.TxnID], r)
			case RecAbort:
				undo := pending[r.TxnID]
				for i := len(undo) - 1; i >= 0; i-- {
					ops = append(ops, replayOp{rec: undo[i], comp: true})
				}
				delete(pending, r.TxnID)
			}
		}
	}
	return ops
}

// applyReplayOp dispatches one forward-pass op to the applier.
func applyReplayOp(ap Applier, op replayOp) error {
	r := op.rec
	if op.comp {
		switch r.Type {
		case RecUpdate:
			if err := ap.CompensateUpdate(r.PageID, r.Slot, r.Offset, r.Old, r.New); err != nil {
				return fmt.Errorf("wal: compensate update LSN %d: %w", r.LSN, err)
			}
		case RecDelete:
			if err := ap.UndoDelete(r.ObjectID, r.PageID, r.Slot, r.Old); err != nil {
				return fmt.Errorf("wal: compensate delete LSN %d: %w", r.LSN, err)
			}
		case RecIndexDelete:
			if err := ap.UndoIndexDelete(r.ObjectID, r.Key, ValueOf(r.Old)); err != nil {
				return fmt.Errorf("wal: compensate index delete LSN %d: %w", r.LSN, err)
			}
		}
		return nil
	}
	switch r.Type {
	case RecUpdate:
		if err := ap.ApplyUpdate(r.PageID, r.Slot, r.Offset, r.New); err != nil {
			return fmt.Errorf("wal: redo LSN %d: %w", r.LSN, err)
		}
	case RecInsert:
		if err := ap.RedoInsert(r.ObjectID, r.PageID, r.Slot, r.New); err != nil {
			return fmt.Errorf("wal: redo insert LSN %d: %w", r.LSN, err)
		}
	case RecDelete:
		if err := ap.RedoDelete(r.ObjectID, r.PageID, r.Slot); err != nil {
			return fmt.Errorf("wal: redo delete LSN %d: %w", r.LSN, err)
		}
	case RecIndexInsert:
		if err := ap.RedoIndexInsert(r.ObjectID, r.Key, ValueOf(r.New)); err != nil {
			return fmt.Errorf("wal: redo index insert LSN %d: %w", r.LSN, err)
		}
	case RecIndexDelete:
		if err := ap.RedoIndexDelete(r.ObjectID, r.Key, ValueOf(r.Old)); err != nil {
			return fmt.Errorf("wal: redo index delete LSN %d: %w", r.LSN, err)
		}
	}
	return nil
}

// undoRecords runs the final reverse pass: losers' updates, deletes and
// index deletes are rolled back, and inserts (heap and index) of both
// losers and pre-crash-aborted transactions are removed — their rollback
// happened only in the buffer pool, so the flushed Flash image may still
// carry the entry as live. Insert removal is conditional on the slot or
// mapping, so a later committed writer is never clobbered. It returns the
// number of undo operations issued.
func undoRecords(recs []Record, a Analysis, ap Applier) (int, error) {
	n := 0
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		switch {
		case r.Type == RecUpdate && a.Losers[r.TxnID]:
			n++
			if err := ap.ApplyUpdate(r.PageID, r.Slot, r.Offset, r.Old); err != nil {
				return n, fmt.Errorf("wal: undo LSN %d: %w", r.LSN, err)
			}
		case r.Type == RecInsert && (a.Losers[r.TxnID] || a.Aborted[r.TxnID]):
			n++
			if err := ap.UndoInsert(r.PageID, r.Slot); err != nil {
				return n, fmt.Errorf("wal: undo insert LSN %d: %w", r.LSN, err)
			}
		case r.Type == RecDelete && a.Losers[r.TxnID]:
			n++
			if err := ap.UndoDelete(r.ObjectID, r.PageID, r.Slot, r.Old); err != nil {
				return n, fmt.Errorf("wal: undo delete LSN %d: %w", r.LSN, err)
			}
		case r.Type == RecIndexInsert && (a.Losers[r.TxnID] || a.Aborted[r.TxnID]):
			n++
			if err := ap.UndoIndexInsert(r.ObjectID, r.Key, ValueOf(r.New)); err != nil {
				return n, fmt.Errorf("wal: undo index insert LSN %d: %w", r.LSN, err)
			}
		case r.Type == RecIndexDelete && a.Losers[r.TxnID]:
			n++
			if err := ap.UndoIndexDelete(r.ObjectID, r.Key, ValueOf(r.Old)); err != nil {
				return n, fmt.Errorf("wal: undo index delete LSN %d: %w", r.LSN, err)
			}
		}
	}
	return n, nil
}

// Replay performs crash recovery over the retained records: a forward
// "repeat history" pass re-applies committed work in LSN order and rolls
// back each pre-crash-aborted transaction at its RecAbort position via
// conditional compensation, then a reverse pass undoes the losers (and
// removes aborted inserts).
//
// cut is the last checkpoint's truncation LSN (0 = replay everything):
// records at or below it are skipped even when they physically survive —
// segment recycling only drops whole leading segments, so the tail
// segment usually still carries pre-checkpoint records. Skipping is safe
// because the checkpoint force-flushed every page those records touched
// before it became durable, and the cut sits below the first LSN of every
// transaction that was still active, so no loser or pending abort loses
// records to it.
//
// workers > 1 partitions the forward pass across goroutines by entity
// (heap page / index object); ops on the same entity stay ordered because
// they always land on the same worker, and ops on different entities
// commute, so the result is identical to the serial pass (workers <= 1,
// the oracle used by tests). The final undo pass is serial either way.
//
// It returns the number of redo, compensation and undo operations issued,
// which is O(records since the last checkpoint) — the restart-cost metric.
func (l *Log) Replay(a Analysis, ap Applier, workers int, cut uint64) (int, error) {
	recs := l.Records()
	// Records are in LSN order: drop the pre-checkpoint prefix.
	lo := sort.Search(len(recs), func(i int) bool { return recs[i].LSN > cut })
	recs = recs[lo:]
	ops := buildReplayOps(recs, a)
	if workers <= 1 || len(ops) == 0 {
		for _, op := range ops {
			if err := applyReplayOp(ap, op); err != nil {
				return len(ops), err
			}
		}
	} else {
		lanes := make([][]replayOp, workers)
		for _, op := range ops {
			w := op.lane(workers)
			lanes[w] = append(lanes[w], op)
		}
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := range lanes {
			if len(lanes[w]) == 0 {
				continue
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, op := range lanes[w] {
					if err := applyReplayOp(ap, op); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return len(ops), err
			}
		}
	}
	undone, err := undoRecords(recs, a, ap)
	return len(ops) + undone, err
}
