// Package wal implements a write-ahead log with physiological undo/redo
// records.
//
// The paper stresses that In-Place Appends does not interfere with regular
// database functionality such as recovery: delta records are a storage
// representation of the very same in-place updates the WAL already
// describes. The log here exists to demonstrate exactly that — the engine
// logs every tuple update before it happens, the recovery test replays the
// log against a crashed storage state, and the result is identical whether
// pages were persisted with in-place appends or with traditional
// out-of-place writes.
//
// Log records are kept in memory (the experiments place the log on a
// separate device, as DBMSs commonly do) but are fully serialisable so
// that log volume can be accounted and recovery can be tested end to end.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// RecordType enumerates log record kinds.
type RecordType uint8

const (
	// RecUpdate describes an in-place byte-range update of a tuple.
	RecUpdate RecordType = iota + 1
	// RecInsert describes a tuple insertion.
	RecInsert
	// RecDelete describes a tuple deletion.
	RecDelete
	// RecCommit marks a transaction as committed.
	RecCommit
	// RecAbort marks a transaction as rolled back.
	RecAbort
	// RecCheckpoint marks a fuzzy checkpoint.
	RecCheckpoint
)

// String returns a short name for the record type.
func (t RecordType) String() string {
	switch t {
	case RecUpdate:
		return "UPDATE"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCheckpoint:
		return "CHECKPOINT"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one write-ahead log record.
type Record struct {
	LSN    uint64
	TxnID  uint64
	Type   RecordType
	PageID uint64
	Slot   uint16
	Offset uint16 // tuple-relative offset for updates
	Old    []byte // before image (undo)
	New    []byte // after image (redo)
}

// headerSize is the fixed encoded size of a record before the images.
const headerSize = 8 + 8 + 1 + 8 + 2 + 2 + 4 + 4

// EncodedSize returns the serialised size of the record in bytes.
func (r Record) EncodedSize() int { return headerSize + len(r.Old) + len(r.New) }

// Encode serialises the record.
func (r Record) Encode() []byte {
	buf := make([]byte, r.EncodedSize())
	binary.LittleEndian.PutUint64(buf[0:], r.LSN)
	binary.LittleEndian.PutUint64(buf[8:], r.TxnID)
	buf[16] = byte(r.Type)
	binary.LittleEndian.PutUint64(buf[17:], r.PageID)
	binary.LittleEndian.PutUint16(buf[25:], r.Slot)
	binary.LittleEndian.PutUint16(buf[27:], r.Offset)
	binary.LittleEndian.PutUint32(buf[29:], uint32(len(r.Old)))
	binary.LittleEndian.PutUint32(buf[33:], uint32(len(r.New)))
	copy(buf[headerSize:], r.Old)
	copy(buf[headerSize+len(r.Old):], r.New)
	return buf
}

// ErrShortRecord is returned when decoding a truncated record buffer.
var ErrShortRecord = errors.New("wal: truncated record")

// Decode parses one record from buf and returns it together with the
// number of bytes consumed.
func Decode(buf []byte) (Record, int, error) {
	if len(buf) < headerSize {
		return Record{}, 0, ErrShortRecord
	}
	var r Record
	r.LSN = binary.LittleEndian.Uint64(buf[0:])
	r.TxnID = binary.LittleEndian.Uint64(buf[8:])
	r.Type = RecordType(buf[16])
	r.PageID = binary.LittleEndian.Uint64(buf[17:])
	r.Slot = binary.LittleEndian.Uint16(buf[25:])
	r.Offset = binary.LittleEndian.Uint16(buf[27:])
	oldLen := int(binary.LittleEndian.Uint32(buf[29:]))
	newLen := int(binary.LittleEndian.Uint32(buf[33:]))
	total := headerSize + oldLen + newLen
	if len(buf) < total {
		return Record{}, 0, ErrShortRecord
	}
	if oldLen > 0 {
		r.Old = append([]byte(nil), buf[headerSize:headerSize+oldLen]...)
	}
	if newLen > 0 {
		r.New = append([]byte(nil), buf[headerSize+oldLen:total]...)
	}
	return r, total, nil
}

// Log is an in-memory write-ahead log with byte accounting.
type Log struct {
	mu           sync.Mutex
	records      []Record
	nextLSN      uint64
	flushedLSN   uint64
	bytesWritten uint64
	flushes      uint64
}

// New creates an empty log. LSNs start at 1.
func New() *Log { return &Log{nextLSN: 1} }

// Append adds a record and returns its LSN.
func (l *Log) Append(r Record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.nextLSN
	l.nextLSN++
	l.records = append(l.records, r)
	return r.LSN
}

// Flush makes all appended records durable up to the given LSN (or all
// records if upTo is zero) and accounts the flushed bytes.
func (l *Log) Flush(upTo uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if upTo == 0 || upTo >= l.nextLSN {
		upTo = l.nextLSN - 1
	}
	for _, r := range l.records {
		if r.LSN > l.flushedLSN && r.LSN <= upTo {
			l.bytesWritten += uint64(r.EncodedSize())
		}
	}
	if upTo > l.flushedLSN {
		l.flushedLSN = upTo
	}
	l.flushes++
}

// FlushedLSN returns the highest durable LSN.
func (l *Log) FlushedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushedLSN
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// BytesWritten returns the number of log bytes made durable so far.
func (l *Log) BytesWritten() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesWritten
}

// Records returns a copy of all appended records in LSN order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// RecordsFor returns all records of one transaction in LSN order.
func (l *Log) RecordsFor(txnID uint64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.records {
		if r.TxnID == txnID {
			out = append(out, r)
		}
	}
	return out
}

// Truncate discards records with LSN <= upTo (checkpointing).
func (l *Log) Truncate(upTo uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := l.records[:0]
	for _, r := range l.records {
		if r.LSN > upTo {
			keep = append(keep, r)
		}
	}
	l.records = keep
}

// Analysis is the result of scanning the log during recovery.
type Analysis struct {
	Committed map[uint64]bool // transactions with a COMMIT record
	Aborted   map[uint64]bool
	Losers    map[uint64]bool // transactions without COMMIT/ABORT
}

// Analyze performs the analysis pass of recovery.
func (l *Log) Analyze() Analysis {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := Analysis{
		Committed: make(map[uint64]bool),
		Aborted:   make(map[uint64]bool),
		Losers:    make(map[uint64]bool),
	}
	for _, r := range l.records {
		switch r.Type {
		case RecCommit:
			a.Committed[r.TxnID] = true
			delete(a.Losers, r.TxnID)
		case RecAbort:
			a.Aborted[r.TxnID] = true
			delete(a.Losers, r.TxnID)
		case RecCheckpoint:
		default:
			if !a.Committed[r.TxnID] && !a.Aborted[r.TxnID] {
				a.Losers[r.TxnID] = true
			}
		}
	}
	return a
}

// Applier applies redo or undo images during recovery.
type Applier interface {
	// ApplyUpdate installs image at the byte offset of the tuple in slot
	// on page pid.
	ApplyUpdate(pid uint64, slot uint16, offset uint16, image []byte) error
}

// Redo re-applies the after images of all committed transactions.
func (l *Log) Redo(a Analysis, ap Applier) error {
	for _, r := range l.Records() {
		if r.Type != RecUpdate || !a.Committed[r.TxnID] {
			continue
		}
		if err := ap.ApplyUpdate(r.PageID, r.Slot, r.Offset, r.New); err != nil {
			return fmt.Errorf("wal: redo LSN %d: %w", r.LSN, err)
		}
	}
	return nil
}

// Undo rolls back the updates of loser transactions in reverse LSN order.
func (l *Log) Undo(a Analysis, ap Applier) error {
	recs := l.Records()
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.Type != RecUpdate || !a.Losers[r.TxnID] {
			continue
		}
		if err := ap.ApplyUpdate(r.PageID, r.Slot, r.Offset, r.Old); err != nil {
			return fmt.Errorf("wal: undo LSN %d: %w", r.LSN, err)
		}
	}
	return nil
}
