// Package wal implements a write-ahead log with physiological undo/redo
// records.
//
// The paper stresses that In-Place Appends does not interfere with regular
// database functionality such as recovery: delta records are a storage
// representation of the very same in-place updates the WAL already
// describes. The log here exists to demonstrate exactly that — the engine
// logs every tuple update before it happens, the recovery test replays the
// log against a crashed storage state, and the result is identical whether
// pages were persisted with in-place appends or with traditional
// out-of-place writes.
//
// Log records are kept in memory (the experiments place the log on a
// separate device, as DBMSs commonly do) but are fully serialisable so
// that log volume can be accounted and recovery can be tested end to end.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// RecordType enumerates log record kinds.
type RecordType uint8

const (
	// RecUpdate describes an in-place byte-range update of a tuple.
	RecUpdate RecordType = iota + 1
	// RecInsert describes a tuple insertion.
	RecInsert
	// RecDelete describes a tuple deletion.
	RecDelete
	// RecCommit marks a transaction as committed. Its Key field carries
	// the MVCC commit timestamp (Key is part of every record's fixed
	// header, so reusing it keeps the log format unchanged); recovery
	// restarts the timestamp oracle past the highest durable one.
	RecCommit
	// RecAbort marks a transaction as rolled back.
	RecAbort
	// RecCheckpoint marks a fuzzy checkpoint.
	RecCheckpoint
	// RecIndexInsert describes a logical index insertion: ObjectID names
	// the index (primary-key or secondary), Key the indexed key and New
	// the 8-byte little-endian packed RID of the indexed tuple.
	RecIndexInsert
	// RecIndexDelete describes a logical index deletion; Old carries the
	// packed RID of the removed entry. The primary key ignores the RID on
	// redo (keys are unique); non-unique secondary indexes need it to name
	// which of a key's entries is removed.
	RecIndexDelete
)

// String returns a short name for the record type.
func (t RecordType) String() string {
	switch t {
	case RecUpdate:
		return "UPDATE"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecIndexInsert:
		return "IDX-INSERT"
	case RecIndexDelete:
		return "IDX-DELETE"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one write-ahead log record.
type Record struct {
	LSN      uint64
	TxnID    uint64
	Type     RecordType
	PageID   uint64
	Slot     uint16
	Offset   uint16 // tuple-relative offset for updates
	ObjectID uint32 // owning table (inserts/deletes) or index (index records)
	Key      int64  // indexed key (index records) or commit timestamp (RecCommit)
	Old      []byte // before image (undo)
	New      []byte // after image (redo)
}

// CommitTS returns the MVCC commit timestamp carried by a RecCommit
// record (0 for other record types).
func (r Record) CommitTS() uint64 {
	if r.Type != RecCommit {
		return 0
	}
	return uint64(r.Key)
}

// MaxCommitTS returns the highest commit timestamp among the given
// records — recovery restarts the timestamp oracle past it.
func MaxCommitTS(records []Record) uint64 {
	var max uint64
	for _, r := range records {
		if ts := r.CommitTS(); ts > max {
			max = ts
		}
	}
	return max
}

// headerSize is the fixed encoded size of a record before the images.
const headerSize = 8 + 8 + 1 + 8 + 2 + 2 + 4 + 8 + 4 + 4

// EncodedSize returns the serialised size of the record in bytes.
func (r Record) EncodedSize() int { return headerSize + len(r.Old) + len(r.New) }

// Encode serialises the record.
func (r Record) Encode() []byte {
	buf := make([]byte, r.EncodedSize())
	binary.LittleEndian.PutUint64(buf[0:], r.LSN)
	binary.LittleEndian.PutUint64(buf[8:], r.TxnID)
	buf[16] = byte(r.Type)
	binary.LittleEndian.PutUint64(buf[17:], r.PageID)
	binary.LittleEndian.PutUint16(buf[25:], r.Slot)
	binary.LittleEndian.PutUint16(buf[27:], r.Offset)
	binary.LittleEndian.PutUint32(buf[29:], r.ObjectID)
	binary.LittleEndian.PutUint64(buf[33:], uint64(r.Key))
	binary.LittleEndian.PutUint32(buf[41:], uint32(len(r.Old)))
	binary.LittleEndian.PutUint32(buf[45:], uint32(len(r.New)))
	copy(buf[headerSize:], r.Old)
	copy(buf[headerSize+len(r.Old):], r.New)
	return buf
}

// ErrShortRecord is returned when decoding a truncated record buffer.
var ErrShortRecord = errors.New("wal: truncated record")

// Decode parses one record from buf and returns it together with the
// number of bytes consumed.
func Decode(buf []byte) (Record, int, error) {
	if len(buf) < headerSize {
		return Record{}, 0, ErrShortRecord
	}
	var r Record
	r.LSN = binary.LittleEndian.Uint64(buf[0:])
	r.TxnID = binary.LittleEndian.Uint64(buf[8:])
	r.Type = RecordType(buf[16])
	r.PageID = binary.LittleEndian.Uint64(buf[17:])
	r.Slot = binary.LittleEndian.Uint16(buf[25:])
	r.Offset = binary.LittleEndian.Uint16(buf[27:])
	r.ObjectID = binary.LittleEndian.Uint32(buf[29:])
	r.Key = int64(binary.LittleEndian.Uint64(buf[33:]))
	oldLen := int(binary.LittleEndian.Uint32(buf[41:]))
	newLen := int(binary.LittleEndian.Uint32(buf[45:]))
	total := headerSize + oldLen + newLen
	if len(buf) < total {
		return Record{}, 0, ErrShortRecord
	}
	if oldLen > 0 {
		r.Old = append([]byte(nil), buf[headerSize:headerSize+oldLen]...)
	}
	if newLen > 0 {
		r.New = append([]byte(nil), buf[headerSize+oldLen:total]...)
	}
	return r, total, nil
}

// commitWaiter is one caller waiting for the log to become durable up to
// its LSN. Waiters queue up while a flush is in flight; the leader absorbs
// the whole queue into a single log-device write and wakes every follower.
// commit marks transaction commits (counted in the group-commit batch
// statistics) as opposed to stand-alone Flush callers.
type commitWaiter struct {
	lsn    uint64
	commit bool
	done   chan struct{}
	err    error // set before done is closed when the log-device write failed
}

// GroupCommitStats describes how effectively concurrent commits were
// batched into shared flushes.
type GroupCommitStats struct {
	// Flushes is the number of physical log flushes.
	Flushes uint64
	// FlushedCommits is the number of commit requests those flushes served;
	// FlushedCommits / Flushes is the average group-commit batch size.
	FlushedCommits uint64
	// MaxBatch is the largest number of commits served by one flush.
	MaxBatch uint64
}

// CommitsPerFlush returns the average group-commit batch size.
func (s GroupCommitStats) CommitsPerFlush() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.FlushedCommits) / float64(s.Flushes)
}

// Log is an in-memory write-ahead log with byte accounting and a
// group-commit pipeline: concurrently-arriving commit flushes are batched
// into a single log append, amortising the latency of the separate log
// device the paper's experimental setup assumes.
type Log struct {
	mu           sync.Mutex
	records      []Record
	nextLSN      uint64
	flushedLSN   uint64
	bytesWritten uint64

	// Group-commit state: waiters queue while a leader's flush is in
	// flight; the leader drains the queue batch by batch.
	waiters  []*commitWaiter
	flushing bool
	gcStats  GroupCommitStats

	// flushHook, if set, models the log-device write: it is called once
	// per flush batch (outside the log mutex) with the number of bytes
	// made durable. Group commit pays this cost once per batch instead of
	// once per transaction. A hook error means the write never reached
	// the log device (e.g. an injected power cut): the batch does not
	// become durable and every waiter riding it receives the error.
	flushHook func(bytes int) error
}

// New creates an empty log. LSNs start at 1.
func New() *Log { return &Log{nextLSN: 1} }

// NewFromRecords creates a log pre-loaded with the records that survived a
// crash (the durable prefix of a previous log, in LSN order). New appends
// continue after the highest surviving LSN.
func NewFromRecords(records []Record, flushedLSN uint64) *Log {
	l := &Log{nextLSN: 1, flushedLSN: flushedLSN}
	l.records = append(l.records, records...)
	if n := len(records); n > 0 && records[n-1].LSN >= l.nextLSN {
		l.nextLSN = records[n-1].LSN + 1
	}
	if flushedLSN >= l.nextLSN {
		l.nextLSN = flushedLSN + 1
	}
	return l
}

// SetFlushHook installs fn as the simulated log-device write, invoked once
// per flush batch with the flushed byte count. It must be set before the
// log is shared between goroutines.
func (l *Log) SetFlushHook(fn func(bytes int) error) { l.flushHook = fn }

// Append adds a record and returns its LSN.
func (l *Log) Append(r Record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.nextLSN
	l.nextLSN++
	l.records = append(l.records, r)
	return r.LSN
}

// pendingBytesLocked sums the encoded size of the records in
// (flushedLSN, upTo]. Records are appended in LSN order, so the first
// unflushed record is found by binary search instead of a full scan.
// The caller holds the log mutex.
func (l *Log) pendingBytesLocked(upTo uint64) int {
	lo, hi := 0, len(l.records)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.records[mid].LSN <= l.flushedLSN {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	bytes := 0
	for _, r := range l.records[lo:] {
		if r.LSN > upTo {
			break
		}
		bytes += r.EncodedSize()
	}
	return bytes
}

// clampLocked resolves upTo == 0 / out-of-range to the last appended LSN.
func (l *Log) clampLocked(upTo uint64) uint64 {
	if upTo == 0 || upTo >= l.nextLSN {
		return l.nextLSN - 1
	}
	return upTo
}

// Flush makes all appended records durable up to the given LSN (or all
// records if upTo is zero) and accounts the flushed bytes. It is the
// stand-alone flush used by checkpoints, the eviction write-ahead barrier
// and recovery tests; transaction commits go through CommitFlush. Both
// share one flush pipeline, so concurrent callers never account the same
// records twice. A non-nil error means the log device failed (power cut)
// and the records are NOT durable.
func (l *Log) Flush(upTo uint64) error { return l.flush(upTo, false) }

// CommitFlush makes the log durable at least up to lsn, batching
// concurrently-arriving commits into one flush. The first caller becomes
// the leader and writes the log device on behalf of every transaction that
// queued up in the meantime (followers merely wait); each additional
// follower rides along for free, which is exactly how a DBMS amortises
// the latency of a dedicated log device. An error means the commit record
// never became durable: the transaction must be treated as rolled back.
func (l *Log) CommitFlush(lsn uint64) error { return l.flush(lsn, true) }

// flush is the shared leader/follower pipeline behind Flush and
// CommitFlush. Only commit callers count towards the group-commit batch
// statistics.
func (l *Log) flush(lsn uint64, commit bool) error {
	l.mu.Lock()
	lsn = l.clampLocked(lsn)
	if lsn <= l.flushedLSN {
		l.mu.Unlock()
		return nil
	}
	w := &commitWaiter{lsn: lsn, commit: commit, done: make(chan struct{})}
	l.waiters = append(l.waiters, w)
	if l.flushing {
		// A leader is already writing the log device; it will pick this
		// waiter up in its next batch.
		l.mu.Unlock()
		<-w.done
		return w.err
	}
	l.flushing = true
	for {
		batch := l.waiters
		l.waiters = nil
		target := uint64(0)
		commits := uint64(0)
		for _, bw := range batch {
			if bw.lsn > target {
				target = bw.lsn
			}
			if bw.commit {
				commits++
			}
		}
		bytes := l.pendingBytesLocked(target)
		hook := l.flushHook
		l.mu.Unlock()
		// One log-device write for the whole batch. New callers arriving
		// during this write queue behind l.flushing and join the next
		// batch.
		var hookErr error
		if hook != nil {
			hookErr = hook(bytes)
		}
		l.mu.Lock()
		if hookErr == nil {
			l.bytesWritten += uint64(bytes)
			if target > l.flushedLSN {
				l.flushedLSN = target
			}
		} else {
			// The write never reached the log device: the whole batch is
			// lost. Every waiter learns its records are not durable.
			for _, bw := range batch {
				bw.err = hookErr
			}
		}
		// Waiters that queued during the write but whose records were
		// already covered by an earlier flush (their LSN is at or below
		// flushedLSN) are served now instead of triggering a redundant
		// zero-byte device write.
		pending := l.waiters[:0]
		for _, bw := range l.waiters {
			if bw.lsn <= l.flushedLSN {
				if bw.commit {
					commits++
				}
				batch = append(batch, bw)
			} else {
				pending = append(pending, bw)
			}
		}
		l.waiters = pending
		if hookErr == nil {
			l.gcStats.Flushes++
			l.gcStats.FlushedCommits += commits
			if commits > l.gcStats.MaxBatch {
				l.gcStats.MaxBatch = commits
			}
		}
		for _, bw := range batch {
			close(bw.done)
		}
		if len(l.waiters) == 0 {
			l.flushing = false
			l.mu.Unlock()
			return w.err
		}
	}
}

// ResetStats zeroes the flushed-byte and group-commit counters (the
// durability state — flushedLSN, records — is untouched). Used by
// DB.ResetStats to restart the measurement window after a load phase.
func (l *Log) ResetStats() {
	l.mu.Lock()
	l.bytesWritten = 0
	l.gcStats = GroupCommitStats{}
	l.mu.Unlock()
}

// GroupCommitStats returns a snapshot of the group-commit counters.
func (l *Log) GroupCommitStats() GroupCommitStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gcStats
}

// PendingCommits returns the number of commit waiters queued behind the
// current flush leader (for tests and monitoring).
func (l *Log) PendingCommits() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.waiters)
}

// FlushedLSN returns the highest durable LSN.
func (l *Log) FlushedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushedLSN
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// BytesWritten returns the number of log bytes made durable so far.
func (l *Log) BytesWritten() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesWritten
}

// DurableRecords returns a copy of the records that have been made durable
// (LSN at or below the flushed LSN), in LSN order. This is exactly what a
// crash preserves: records still in the volatile log buffer are gone.
func (l *Log) DurableRecords() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.records {
		if r.LSN > l.flushedLSN {
			break
		}
		out = append(out, r)
	}
	return out
}

// Records returns a copy of all appended records in LSN order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// RecordsFor returns all records of one transaction in LSN order.
func (l *Log) RecordsFor(txnID uint64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.records {
		if r.TxnID == txnID {
			out = append(out, r)
		}
	}
	return out
}

// Truncate discards records with LSN <= upTo (checkpointing).
func (l *Log) Truncate(upTo uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := l.records[:0]
	for _, r := range l.records {
		if r.LSN > upTo {
			keep = append(keep, r)
		}
	}
	l.records = keep
}

// Analysis is the result of scanning the log during recovery.
type Analysis struct {
	Committed map[uint64]bool // transactions with a COMMIT record
	Aborted   map[uint64]bool
	Losers    map[uint64]bool // transactions without COMMIT/ABORT
}

// Analyze performs the analysis pass of recovery.
func (l *Log) Analyze() Analysis {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := Analysis{
		Committed: make(map[uint64]bool),
		Aborted:   make(map[uint64]bool),
		Losers:    make(map[uint64]bool),
	}
	for _, r := range l.records {
		switch r.Type {
		case RecCommit:
			a.Committed[r.TxnID] = true
			delete(a.Losers, r.TxnID)
		case RecAbort:
			a.Aborted[r.TxnID] = true
			delete(a.Losers, r.TxnID)
		case RecCheckpoint:
		default:
			if !a.Committed[r.TxnID] && !a.Aborted[r.TxnID] {
				a.Losers[r.TxnID] = true
			}
		}
	}
	return a
}

// Applier applies redo or undo images during recovery.
type Applier interface {
	// ApplyUpdate installs image at the byte offset of the tuple in slot
	// on page pid.
	ApplyUpdate(pid uint64, slot uint16, offset uint16, image []byte) error
	// RedoInsert (re)materialises the tuple in slot on page pid, creating
	// the page for objectID if the crash lost it before its first flush.
	RedoInsert(objectID uint32, pid uint64, slot uint16, tuple []byte) error
	// UndoInsert removes the tuple in slot on page pid if it is present.
	UndoInsert(pid uint64, slot uint16) error
	// RedoDelete re-applies a committed tuple deletion (idempotent: a
	// slot that is already deleted or never reached Flash is a no-op).
	RedoDelete(objectID uint32, pid uint64, slot uint16) error
	// UndoDelete restores the before image of a deleted tuple, if the
	// page survived and the slot is still marked deleted.
	UndoDelete(objectID uint32, pid uint64, slot uint16, tuple []byte) error
	// RedoIndexInsert re-applies a committed logical index insertion:
	// key maps to value in the index identified by objectID.
	RedoIndexInsert(objectID uint32, key int64, value uint64) error
	// RedoIndexDelete re-applies a committed logical index deletion.
	// value is the packed RID of the removed entry: unique indexes may
	// ignore it, non-unique ones use it to select the entry.
	RedoIndexDelete(objectID uint32, key int64, value uint64) error
	// UndoIndexInsert removes a loser's index entry if (and only if) key
	// still maps to value.
	UndoIndexInsert(objectID uint32, key int64, value uint64) error
	// UndoIndexDelete restores a loser's deleted index entry if the key
	// is currently unmapped.
	UndoIndexDelete(objectID uint32, key int64, value uint64) error
}

// ValueOf decodes the packed RID carried in an index record image.
func ValueOf(image []byte) uint64 {
	if len(image) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(image)
}

// ValueImage encodes a packed RID as the 8-byte image of an index record.
func ValueImage(value uint64) []byte {
	img := make([]byte, 8)
	binary.LittleEndian.PutUint64(img, value)
	return img
}

// Redo replays the effects of all committed transactions in LSN order:
// tuple inserts are rematerialised (recreating pages the crash took before
// their first flush), update after-images are re-applied, deletes are
// re-marked and logical index operations are re-applied. Redo is
// unconditional and idempotent; because every committed insert carries the
// full tuple, replaying it also erases any flushed residue of transactions
// that were rolled back in memory before the crash.
func (l *Log) Redo(a Analysis, ap Applier) error {
	for _, r := range l.Records() {
		if !a.Committed[r.TxnID] {
			continue
		}
		switch r.Type {
		case RecUpdate:
			if err := ap.ApplyUpdate(r.PageID, r.Slot, r.Offset, r.New); err != nil {
				return fmt.Errorf("wal: redo LSN %d: %w", r.LSN, err)
			}
		case RecInsert:
			if err := ap.RedoInsert(r.ObjectID, r.PageID, r.Slot, r.New); err != nil {
				return fmt.Errorf("wal: redo insert LSN %d: %w", r.LSN, err)
			}
		case RecDelete:
			if err := ap.RedoDelete(r.ObjectID, r.PageID, r.Slot); err != nil {
				return fmt.Errorf("wal: redo delete LSN %d: %w", r.LSN, err)
			}
		case RecIndexInsert:
			if err := ap.RedoIndexInsert(r.ObjectID, r.Key, ValueOf(r.New)); err != nil {
				return fmt.Errorf("wal: redo index insert LSN %d: %w", r.LSN, err)
			}
		case RecIndexDelete:
			if err := ap.RedoIndexDelete(r.ObjectID, r.Key, ValueOf(r.Old)); err != nil {
				return fmt.Errorf("wal: redo index delete LSN %d: %w", r.LSN, err)
			}
		}
	}
	return nil
}

// Undo rolls back loser transactions in reverse LSN order: update before
// images are restored and inserted tuples are deleted. Inserts of
// transactions that aborted before the crash are also removed — their
// rollback happened only in the buffer pool, so the flushed Flash image may
// still carry the tuple as live.
//
// Updates of pre-crash-aborted transactions are deliberately NOT undone:
// redo already rewrote every tuple from its committed insert forward
// (repeating committed history), which erases any flushed residue of an
// aborted update. Re-applying an aborted transaction's before image here
// would be wrong — a transaction that committed AFTER the abort may have
// overwritten the same bytes, and its redone value must stand. Inserts are
// different: a slot belongs to exactly one insert ever (slots are never
// reused), so deleting an aborted insert's slot can never clobber another
// transaction's work.
func (l *Log) Undo(a Analysis, ap Applier) error {
	recs := l.Records()
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		switch {
		case r.Type == RecUpdate && a.Losers[r.TxnID]:
			if err := ap.ApplyUpdate(r.PageID, r.Slot, r.Offset, r.Old); err != nil {
				return fmt.Errorf("wal: undo LSN %d: %w", r.LSN, err)
			}
		case r.Type == RecInsert && (a.Losers[r.TxnID] || a.Aborted[r.TxnID]):
			if err := ap.UndoInsert(r.PageID, r.Slot); err != nil {
				return fmt.Errorf("wal: undo insert LSN %d: %w", r.LSN, err)
			}
		case r.Type == RecDelete && a.Losers[r.TxnID]:
			// Deletes of transactions that aborted BEFORE the crash need no
			// undo here: redo repeated the committed insert of the slot,
			// which re-materialises the tuple (mirroring how aborted
			// updates are repaired — see the package comment above).
			if err := ap.UndoDelete(r.ObjectID, r.PageID, r.Slot, r.Old); err != nil {
				return fmt.Errorf("wal: undo delete LSN %d: %w", r.LSN, err)
			}
		case r.Type == RecIndexInsert && (a.Losers[r.TxnID] || a.Aborted[r.TxnID]):
			// Like heap inserts, index entries flushed on behalf of a
			// transaction that rolled back (before or by the crash) are
			// removed; the operation is conditional on the mapping so a
			// later committed writer of the same key is never clobbered.
			if err := ap.UndoIndexInsert(r.ObjectID, r.Key, ValueOf(r.New)); err != nil {
				return fmt.Errorf("wal: undo index insert LSN %d: %w", r.LSN, err)
			}
		case r.Type == RecIndexDelete && a.Losers[r.TxnID]:
			if err := ap.UndoIndexDelete(r.ObjectID, r.Key, ValueOf(r.Old)); err != nil {
				return fmt.Errorf("wal: undo index delete LSN %d: %w", r.LSN, err)
			}
		}
	}
	return nil
}
