package wal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	l := New()
	var last uint64
	for i := 0; i < 10; i++ {
		lsn := l.Append(Record{TxnID: 1, Type: RecUpdate})
		if lsn <= last {
			t.Fatalf("LSNs must be strictly increasing: %d after %d", lsn, last)
		}
		last = lsn
	}
	if l.NextLSN() != last+1 {
		t.Fatalf("NextLSN = %d, want %d", l.NextLSN(), last+1)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rec := Record{
		LSN:    7,
		TxnID:  3,
		Type:   RecUpdate,
		PageID: 99,
		Slot:   4,
		Offset: 16,
		Old:    []byte{1, 2, 3},
		New:    []byte{4, 5, 6, 7},
	}
	buf := rec.Encode()
	if len(buf) != rec.EncodedSize() {
		t.Fatalf("encoded size mismatch: %d vs %d", len(buf), rec.EncodedSize())
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	if got.LSN != rec.LSN || got.TxnID != rec.TxnID || got.Type != rec.Type ||
		got.PageID != rec.PageID || got.Slot != rec.Slot || got.Offset != rec.Offset ||
		!bytes.Equal(got.Old, rec.Old) || !bytes.Equal(got.New, rec.New) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrShortRecord) {
		t.Fatalf("expected ErrShortRecord, got %v", err)
	}
	rec := Record{Type: RecUpdate, Old: []byte{1, 2, 3, 4}}
	buf := rec.Encode()
	if _, _, err := Decode(buf[:len(buf)-2]); !errors.Is(err, ErrShortRecord) {
		t.Fatalf("truncated image not detected: %v", err)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(txn uint64, pid uint64, slot, off uint16, old, new []byte) bool {
		rec := Record{TxnID: txn, Type: RecUpdate, PageID: pid, Slot: slot, Offset: off, Old: old, New: new}
		got, n, err := Decode(rec.Encode())
		if err != nil || n != rec.EncodedSize() {
			return false
		}
		return got.TxnID == txn && got.PageID == pid && got.Slot == slot && got.Offset == off &&
			bytes.Equal(got.Old, old) && bytes.Equal(got.New, new)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("encode/decode property: %v", err)
	}
}

func TestFlushAccountsBytes(t *testing.T) {
	l := New()
	r1 := Record{TxnID: 1, Type: RecUpdate, Old: []byte{1}, New: []byte{2}}
	r2 := Record{TxnID: 1, Type: RecCommit}
	l.Append(r1)
	lsn2 := l.Append(r2)
	if l.BytesWritten() != 0 {
		t.Fatalf("nothing flushed yet")
	}
	l.Flush(lsn2)
	want := uint64(r1.EncodedSize() + r2.EncodedSize())
	if l.BytesWritten() != want {
		t.Fatalf("BytesWritten = %d, want %d", l.BytesWritten(), want)
	}
	if l.FlushedLSN() != lsn2 {
		t.Fatalf("FlushedLSN = %d", l.FlushedLSN())
	}
	// Flushing again must not double count.
	l.Flush(0)
	if l.BytesWritten() != want {
		t.Fatalf("double flush double counted")
	}
}

func TestAnalyze(t *testing.T) {
	l := New()
	l.Append(Record{TxnID: 1, Type: RecUpdate})
	l.Append(Record{TxnID: 1, Type: RecCommit})
	l.Append(Record{TxnID: 2, Type: RecUpdate})
	l.Append(Record{TxnID: 3, Type: RecUpdate})
	l.Append(Record{TxnID: 3, Type: RecAbort})
	a := l.Analyze()
	if !a.Committed[1] || a.Losers[1] {
		t.Errorf("txn 1 must be committed")
	}
	if !a.Losers[2] {
		t.Errorf("txn 2 must be a loser")
	}
	if !a.Aborted[3] || a.Losers[3] {
		t.Errorf("txn 3 must be aborted and not a loser")
	}
}

// applier records redo/undo applications in memory.
type applier struct {
	pages map[uint64][]byte
}

func newApplier() *applier { return &applier{pages: make(map[uint64][]byte)} }

func (a *applier) ApplyUpdate(pid uint64, slot uint16, offset uint16, image []byte) error {
	p, ok := a.pages[pid]
	if !ok {
		p = make([]byte, 64)
		a.pages[pid] = p
	}
	copy(p[int(offset):], image)
	return nil
}

func (a *applier) RedoInsert(objectID uint32, pid uint64, slot uint16, tuple []byte) error {
	return a.ApplyUpdate(pid, slot, 0, tuple)
}

func (a *applier) UndoInsert(pid uint64, slot uint16) error {
	delete(a.pages, pid)
	return nil
}

func (a *applier) RedoDelete(objectID uint32, pid uint64, slot uint16) error {
	delete(a.pages, pid)
	return nil
}

func (a *applier) UndoDelete(objectID uint32, pid uint64, slot uint16, tuple []byte) error {
	return a.ApplyUpdate(pid, slot, 0, tuple)
}

func (a *applier) RedoIndexInsert(objectID uint32, key int64, value uint64) error { return nil }

func (a *applier) RedoIndexDelete(objectID uint32, key int64, value uint64) error { return nil }

func (a *applier) UndoIndexInsert(objectID uint32, key int64, value uint64) error { return nil }

func (a *applier) UndoIndexDelete(objectID uint32, key int64, value uint64) error { return nil }

func TestRedoUndo(t *testing.T) {
	l := New()
	// Committed transaction writes 0xAA at offset 0 of page 1.
	l.Append(Record{TxnID: 1, Type: RecUpdate, PageID: 1, Offset: 0, Old: []byte{0x00}, New: []byte{0xAA}})
	l.Append(Record{TxnID: 1, Type: RecCommit})
	// Loser transaction writes 0xBB at offset 1 of page 1.
	l.Append(Record{TxnID: 2, Type: RecUpdate, PageID: 1, Offset: 1, Old: []byte{0x11}, New: []byte{0xBB}})

	a := l.Analyze()
	ap := newApplier()
	if err := l.Redo(a, ap); err != nil {
		t.Fatalf("Redo: %v", err)
	}
	if ap.pages[1][0] != 0xAA {
		t.Fatalf("redo did not apply the committed update")
	}
	if ap.pages[1][1] == 0xBB {
		t.Fatalf("redo must not apply loser updates")
	}
	if err := l.Undo(a, ap); err != nil {
		t.Fatalf("Undo: %v", err)
	}
	if ap.pages[1][1] != 0x11 {
		t.Fatalf("undo did not restore the before image")
	}
}

func TestRecordsForAndTruncate(t *testing.T) {
	l := New()
	l.Append(Record{TxnID: 1, Type: RecUpdate})
	l.Append(Record{TxnID: 2, Type: RecUpdate})
	lsn := l.Append(Record{TxnID: 1, Type: RecCommit})
	if got := l.RecordsFor(1); len(got) != 2 {
		t.Fatalf("RecordsFor(1) = %d records", len(got))
	}
	l.Truncate(lsn)
	if len(l.Records()) != 0 {
		t.Fatalf("Truncate left %d records", len(l.Records()))
	}
}

func TestRecordTypeString(t *testing.T) {
	types := []RecordType{RecUpdate, RecInsert, RecDelete, RecCommit, RecAbort, RecCheckpoint, RecordType(99)}
	for _, ty := range types {
		if ty.String() == "" {
			t.Errorf("empty name for %d", ty)
		}
	}
}
