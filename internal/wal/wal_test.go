package wal

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	l := New()
	var last uint64
	for i := 0; i < 10; i++ {
		lsn := l.Append(Record{TxnID: 1, Type: RecUpdate})
		if lsn <= last {
			t.Fatalf("LSNs must be strictly increasing: %d after %d", lsn, last)
		}
		last = lsn
	}
	if l.NextLSN() != last+1 {
		t.Fatalf("NextLSN = %d, want %d", l.NextLSN(), last+1)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rec := Record{
		LSN:    7,
		TxnID:  3,
		Type:   RecUpdate,
		PageID: 99,
		Slot:   4,
		Offset: 16,
		Old:    []byte{1, 2, 3},
		New:    []byte{4, 5, 6, 7},
	}
	buf := rec.Encode()
	if len(buf) != rec.EncodedSize() {
		t.Fatalf("encoded size mismatch: %d vs %d", len(buf), rec.EncodedSize())
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	if got.LSN != rec.LSN || got.TxnID != rec.TxnID || got.Type != rec.Type ||
		got.PageID != rec.PageID || got.Slot != rec.Slot || got.Offset != rec.Offset ||
		!bytes.Equal(got.Old, rec.Old) || !bytes.Equal(got.New, rec.New) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrShortRecord) {
		t.Fatalf("expected ErrShortRecord, got %v", err)
	}
	rec := Record{Type: RecUpdate, Old: []byte{1, 2, 3, 4}}
	buf := rec.Encode()
	if _, _, err := Decode(buf[:len(buf)-2]); !errors.Is(err, ErrShortRecord) {
		t.Fatalf("truncated image not detected: %v", err)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(txn uint64, pid uint64, slot, off uint16, old, new []byte) bool {
		rec := Record{TxnID: txn, Type: RecUpdate, PageID: pid, Slot: slot, Offset: off, Old: old, New: new}
		got, n, err := Decode(rec.Encode())
		if err != nil || n != rec.EncodedSize() {
			return false
		}
		return got.TxnID == txn && got.PageID == pid && got.Slot == slot && got.Offset == off &&
			bytes.Equal(got.Old, old) && bytes.Equal(got.New, new)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("encode/decode property: %v", err)
	}
}

func TestFlushAccountsBytes(t *testing.T) {
	l := New()
	r1 := Record{TxnID: 1, Type: RecUpdate, Old: []byte{1}, New: []byte{2}}
	r2 := Record{TxnID: 1, Type: RecCommit}
	l.Append(r1)
	lsn2 := l.Append(r2)
	if l.BytesWritten() != 0 {
		t.Fatalf("nothing flushed yet")
	}
	l.Flush(lsn2)
	want := uint64(r1.EncodedSize() + r2.EncodedSize())
	if l.BytesWritten() != want {
		t.Fatalf("BytesWritten = %d, want %d", l.BytesWritten(), want)
	}
	if l.FlushedLSN() != lsn2 {
		t.Fatalf("FlushedLSN = %d", l.FlushedLSN())
	}
	// Flushing again must not double count.
	l.Flush(0)
	if l.BytesWritten() != want {
		t.Fatalf("double flush double counted")
	}
}

func TestAnalyze(t *testing.T) {
	l := New()
	l.Append(Record{TxnID: 1, Type: RecUpdate})
	l.Append(Record{TxnID: 1, Type: RecCommit})
	l.Append(Record{TxnID: 2, Type: RecUpdate})
	l.Append(Record{TxnID: 3, Type: RecUpdate})
	l.Append(Record{TxnID: 3, Type: RecAbort})
	a := l.Analyze()
	if !a.Committed[1] || a.Losers[1] {
		t.Errorf("txn 1 must be committed")
	}
	if !a.Losers[2] {
		t.Errorf("txn 2 must be a loser")
	}
	if !a.Aborted[3] || a.Losers[3] {
		t.Errorf("txn 3 must be aborted and not a loser")
	}
}

// applier records redo/undo applications in memory. It is locked like the
// real applier (the buffer pool latches pages): parallel replay workers
// call it concurrently.
type applier struct {
	mu    sync.Mutex
	pages map[uint64][]byte
}

func newApplier() *applier { return &applier{pages: make(map[uint64][]byte)} }

func (a *applier) ApplyUpdate(pid uint64, slot uint16, offset uint16, image []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pages[pid]
	if !ok {
		p = make([]byte, 64)
		a.pages[pid] = p
	}
	copy(p[int(offset):], image)
	return nil
}

func (a *applier) CompensateUpdate(pid uint64, slot uint16, offset uint16, old, new []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pages[pid]
	if !ok {
		return nil
	}
	if bytes.Equal(p[int(offset):int(offset)+len(new)], new) {
		copy(p[int(offset):], old)
	}
	return nil
}

func (a *applier) RedoInsert(objectID uint32, pid uint64, slot uint16, tuple []byte) error {
	return a.ApplyUpdate(pid, slot, 0, tuple)
}

func (a *applier) UndoInsert(pid uint64, slot uint16) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.pages, pid)
	return nil
}

func (a *applier) RedoDelete(objectID uint32, pid uint64, slot uint16) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.pages, pid)
	return nil
}

func (a *applier) UndoDelete(objectID uint32, pid uint64, slot uint16, tuple []byte) error {
	return a.ApplyUpdate(pid, slot, 0, tuple)
}

func (a *applier) RedoIndexInsert(objectID uint32, key int64, value uint64) error { return nil }

func (a *applier) RedoIndexDelete(objectID uint32, key int64, value uint64) error { return nil }

func (a *applier) UndoIndexInsert(objectID uint32, key int64, value uint64) error { return nil }

func (a *applier) UndoIndexDelete(objectID uint32, key int64, value uint64) error { return nil }

func TestReplayRedoAndLoserUndo(t *testing.T) {
	l := New()
	// Committed transaction writes 0xAA at offset 0 of page 1.
	l.Append(Record{TxnID: 1, Type: RecUpdate, PageID: 1, Offset: 0, Old: []byte{0x00}, New: []byte{0xAA}})
	l.Append(Record{TxnID: 1, Type: RecCommit})
	// Loser transaction writes 0xBB at offset 1 of page 1.
	l.Append(Record{TxnID: 2, Type: RecUpdate, PageID: 1, Offset: 1, Old: []byte{0x11}, New: []byte{0xBB}})

	a := l.Analyze()
	ap := newApplier()
	n, err := l.Replay(a, ap, 1, 0)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != 2 { // one committed redo + one loser undo
		t.Fatalf("Replay issued %d ops, want 2", n)
	}
	if ap.pages[1][0] != 0xAA {
		t.Fatalf("replay did not apply the committed update")
	}
	if ap.pages[1][1] != 0x11 {
		t.Fatalf("replay did not restore the loser's before image")
	}
}

func TestReplayCompensatesAbortedResidue(t *testing.T) {
	l := New()
	// Aborted transaction's update residue reached "flash": the applier
	// page carries the after image, but the abort happened before the
	// crash, so replay must roll it back at the RecAbort position.
	l.Append(Record{TxnID: 5, Type: RecUpdate, PageID: 3, Offset: 0, Old: []byte{0x01}, New: []byte{0x99}})
	l.Append(Record{TxnID: 5, Type: RecAbort})

	a := l.Analyze()
	ap := newApplier()
	ap.pages[3] = make([]byte, 64)
	ap.pages[3][0] = 0x99 // flushed residue of the aborted update
	if _, err := l.Replay(a, ap, 1, 0); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if ap.pages[3][0] != 0x01 {
		t.Fatalf("compensation did not restore the before image: %#x", ap.pages[3][0])
	}

	// When the page does NOT carry the residue (the rollback was flushed,
	// or a later committed write replaced the bytes), compensation must
	// leave it alone.
	ap2 := newApplier()
	ap2.pages[3] = make([]byte, 64)
	ap2.pages[3][0] = 0x42
	if _, err := l.Replay(a, ap2, 1, 0); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if ap2.pages[3][0] != 0x42 {
		t.Fatalf("conditional compensation clobbered unrelated bytes: %#x", ap2.pages[3][0])
	}
}

func TestParallelReplayMatchesSerial(t *testing.T) {
	build := func() *Log {
		l := New()
		// Interleave committed, aborted and loser transactions across
		// many pages and two index objects.
		for i := 0; i < 40; i++ {
			pid := uint64(i % 7)
			txn := uint64(100 + i%5)
			l.Append(Record{TxnID: txn, Type: RecUpdate, PageID: pid, Offset: uint16(i % 8), Old: []byte{byte(i)}, New: []byte{byte(i + 1)}})
			if i%3 == 0 {
				l.Append(Record{TxnID: txn, Type: RecIndexInsert, ObjectID: uint32(2 + i%2), Key: int64(i), New: ValueImage(uint64(i))})
			}
		}
		l.Append(Record{TxnID: 100, Type: RecCommit})
		l.Append(Record{TxnID: 101, Type: RecCommit})
		l.Append(Record{TxnID: 102, Type: RecAbort})
		// txns 103, 104 stay losers.
		return l
	}
	serial, parallel := newApplier(), newApplier()
	l := build()
	a := l.Analyze()
	n1, err := l.Replay(a, serial, 1, 0)
	if err != nil {
		t.Fatalf("serial Replay: %v", err)
	}
	n2, err := l.Replay(a, parallel, 4, 0)
	if err != nil {
		t.Fatalf("parallel Replay: %v", err)
	}
	if n1 != n2 {
		t.Fatalf("op counts differ: serial %d, parallel %d", n1, n2)
	}
	if len(serial.pages) != len(parallel.pages) {
		t.Fatalf("page sets differ: %d vs %d", len(serial.pages), len(parallel.pages))
	}
	for pid, p := range serial.pages {
		if !bytes.Equal(p, parallel.pages[pid]) {
			t.Fatalf("page %d differs between serial and parallel replay", pid)
		}
	}
}

func TestSegmentsSealTruncateAndRecycle(t *testing.T) {
	l := New()
	l.SetSegmentBytes(200) // a few records per segment
	var lsns []uint64
	for i := 0; i < 40; i++ {
		lsns = append(lsns, l.Append(Record{TxnID: 1, Type: RecUpdate, PageID: uint64(i), Old: []byte{1}, New: []byte{2}}))
	}
	if l.Segments() < 3 {
		t.Fatalf("expected several sealed segments, got %d", l.Segments())
	}
	before := l.LiveBytes()
	if before == 0 {
		t.Fatalf("LiveBytes must account appended records")
	}
	l.Flush(0)
	cut := lsns[20]
	l.Truncate(cut)
	if got := l.TruncatedLSN(); got == 0 || got > cut {
		t.Fatalf("TruncatedLSN = %d, want (0, %d]", got, cut)
	}
	if l.LiveBytes() >= before {
		t.Fatalf("truncation did not shrink LiveBytes: %d -> %d", before, l.LiveBytes())
	}
	recs := l.Records()
	if len(recs) == 0 {
		t.Fatalf("truncation dropped the whole log")
	}
	if first := recs[0].LSN; first != l.TruncatedLSN()+1 {
		t.Fatalf("records must restart right above the truncated LSN: first %d, truncated %d", first, l.TruncatedLSN())
	}
	// Appends after truncation continue with fresh LSNs and reuse
	// recycled segment arrays.
	segsBefore := l.Segments()
	lsn := l.Append(Record{TxnID: 2, Type: RecCommit})
	if lsn != lsns[len(lsns)-1]+1 {
		t.Fatalf("LSN sequence broken after truncation: %d", lsn)
	}
	if l.Segments() > segsBefore+1 {
		t.Fatalf("append after truncation grew segments unexpectedly")
	}
	// DurableRecords still honours flushedLSN across segments.
	if got := l.DurableRecords(); got[len(got)-1].LSN != lsns[len(lsns)-1] {
		t.Fatalf("DurableRecords lost the flushed suffix")
	}
}

func TestRecordsForAndTruncate(t *testing.T) {
	l := New()
	l.Append(Record{TxnID: 1, Type: RecUpdate})
	l.Append(Record{TxnID: 2, Type: RecUpdate})
	lsn := l.Append(Record{TxnID: 1, Type: RecCommit})
	if got := l.RecordsFor(1); len(got) != 2 {
		t.Fatalf("RecordsFor(1) = %d records", len(got))
	}
	l.Truncate(lsn)
	if len(l.Records()) != 0 {
		t.Fatalf("Truncate left %d records", len(l.Records()))
	}
}

func TestRecordTypeString(t *testing.T) {
	types := []RecordType{RecUpdate, RecInsert, RecDelete, RecCommit, RecAbort, RecCheckpoint, RecordType(99)}
	for _, ty := range types {
		if ty.String() == "" {
			t.Errorf("empty name for %d", ty)
		}
	}
}
