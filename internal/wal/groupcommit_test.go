package wal

import (
	"sync"
	"testing"
	"time"
)

// appendCommit appends a commit record for txn and returns its LSN.
func appendCommit(l *Log, txn uint64) uint64 {
	return l.Append(Record{TxnID: txn, Type: RecCommit})
}

// TestCommitFlushMakesDurable checks the single-caller fast path.
func TestCommitFlushMakesDurable(t *testing.T) {
	l := New()
	lsn := appendCommit(l, 1)
	l.CommitFlush(lsn)
	if l.FlushedLSN() != lsn {
		t.Fatalf("FlushedLSN = %d, want %d", l.FlushedLSN(), lsn)
	}
	if l.BytesWritten() == 0 {
		t.Fatalf("flushed bytes not accounted")
	}
	// Flushing an already-durable LSN is a no-op.
	before := l.GroupCommitStats()
	l.CommitFlush(lsn)
	after := l.GroupCommitStats()
	if after.Flushes != before.Flushes {
		t.Fatalf("no-op commit flush must not write: %+v -> %+v", before, after)
	}
}

// TestGroupCommitBatchesFollowers drives the leader/follower pipeline
// deterministically: while the leader is writing the log device (blocked
// inside the flush hook), followers queue up and must be served by a
// single shared flush.
func TestGroupCommitBatchesFollowers(t *testing.T) {
	const followers = 5
	l := New()
	entered := make(chan struct{}, followers+2)
	release := make(chan struct{})
	l.SetFlushHook(func(int) error {
		entered <- struct{}{}
		<-release
		return nil
	})

	var wg sync.WaitGroup
	leaderLSN := appendCommit(l, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.CommitFlush(leaderLSN)
	}()
	// Wait for the leader to start writing the log device.
	<-entered

	var maxLSN uint64
	for i := 0; i < followers; i++ {
		lsn := appendCommit(l, uint64(2+i))
		if lsn > maxLSN {
			maxLSN = lsn
		}
		wg.Add(1)
		go func(lsn uint64) {
			defer wg.Done()
			l.CommitFlush(lsn)
		}(lsn)
	}
	// Wait until every follower has queued behind the in-flight flush.
	deadline := time.Now().Add(5 * time.Second)
	for l.PendingCommits() < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers queued", l.PendingCommits(), followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if l.FlushedLSN() < maxLSN {
		t.Fatalf("FlushedLSN = %d, want >= %d", l.FlushedLSN(), maxLSN)
	}
	s := l.GroupCommitStats()
	if s.Flushes != 2 {
		t.Fatalf("expected 2 flushes (leader + one shared batch), got %d", s.Flushes)
	}
	if s.FlushedCommits != followers+1 {
		t.Fatalf("FlushedCommits = %d, want %d", s.FlushedCommits, followers+1)
	}
	if s.MaxBatch != followers {
		t.Fatalf("MaxBatch = %d, want %d", s.MaxBatch, followers)
	}
	if s.CommitsPerFlush() <= 1 {
		t.Fatalf("commits/flush must exceed 1, got %f", s.CommitsPerFlush())
	}
}

// TestFlushDoesNotCountAsCommit: stand-alone Flush calls share the flush
// pipeline but must not inflate the group-commit batch statistics.
func TestFlushDoesNotCountAsCommit(t *testing.T) {
	l := New()
	l.Append(Record{TxnID: 1, Type: RecUpdate, New: []byte{1}})
	l.Flush(0)
	s := l.GroupCommitStats()
	if s.Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1", s.Flushes)
	}
	if s.FlushedCommits != 0 || s.MaxBatch != 0 {
		t.Fatalf("stand-alone Flush counted as a commit: %+v", s)
	}
	lsn := appendCommit(l, 1)
	l.CommitFlush(lsn)
	s = l.GroupCommitStats()
	if s.FlushedCommits != 1 || s.MaxBatch != 1 {
		t.Fatalf("commit not counted: %+v", s)
	}
}

// TestResetStatsClearsWindowNotDurability verifies that ResetStats zeroes
// the accounting counters while preserving the durability state.
func TestResetStatsClearsWindowNotDurability(t *testing.T) {
	l := New()
	lsn := appendCommit(l, 1)
	l.CommitFlush(lsn)
	if l.BytesWritten() == 0 {
		t.Fatalf("nothing accounted before reset")
	}
	l.ResetStats()
	if l.BytesWritten() != 0 {
		t.Fatalf("BytesWritten survived reset")
	}
	if s := l.GroupCommitStats(); s != (GroupCommitStats{}) {
		t.Fatalf("group-commit stats survived reset: %+v", s)
	}
	if l.FlushedLSN() != lsn {
		t.Fatalf("reset must not touch durability: FlushedLSN = %d", l.FlushedLSN())
	}
	// Records flushed before the reset must not be re-accounted.
	lsn2 := appendCommit(l, 2)
	l.CommitFlush(lsn2)
	if want := uint64(Record{TxnID: 2, Type: RecCommit, LSN: lsn2}.EncodedSize()); l.BytesWritten() != want {
		t.Fatalf("BytesWritten after reset = %d, want %d", l.BytesWritten(), want)
	}
}

// TestConcurrentCommitFlushStress hammers CommitFlush from many goroutines
// and checks the accounting invariants (run with -race).
func TestConcurrentCommitFlushStress(t *testing.T) {
	const workers = 8
	const commitsPerWorker = 200
	l := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < commitsPerWorker; i++ {
				lsn := l.Append(Record{TxnID: uint64(w*commitsPerWorker + i + 1), Type: RecCommit})
				l.CommitFlush(lsn)
				if l.FlushedLSN() < lsn {
					t.Errorf("commit %d not durable after CommitFlush", lsn)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := l.GroupCommitStats()
	if s.FlushedCommits != workers*commitsPerWorker {
		t.Fatalf("FlushedCommits = %d, want %d", s.FlushedCommits, workers*commitsPerWorker)
	}
	if s.Flushes == 0 || s.Flushes > s.FlushedCommits {
		t.Fatalf("implausible flush count: %+v", s)
	}
	// Every record is a commit, and each was flushed exactly once.
	var want uint64
	for _, r := range l.Records() {
		want += uint64(r.EncodedSize())
	}
	if l.BytesWritten() != want {
		t.Fatalf("BytesWritten = %d, want %d (no double accounting)", l.BytesWritten(), want)
	}
}
