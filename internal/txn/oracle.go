package txn

import "sync"

// Oracle is the global commit-timestamp authority of the MVCC layer. It
// hands out commit timestamps, tracks which of them have finished
// committing, and registers reader snapshots.
//
// The visibility contract is: a snapshot S sees exactly the versions whose
// commit timestamp is <= S. To make that sound with concurrent commits,
// the watermark (the timestamp new snapshots read) advances only
// contiguously: timestamp T becomes visible when every commit <= T has
// either stamped its versions or been abandoned. A transaction calls
// BeginCommit before its commit record is flushed and EndCommit after its
// version chains are stamped (or after the flush failed and the
// transaction became a loser), so no snapshot can ever observe a
// timestamp whose versions are not yet readable.
type Oracle struct {
	mu        sync.Mutex
	last      uint64          // highest timestamp handed out by BeginCommit
	watermark uint64          // every commit <= watermark has finished
	pending   map[uint64]bool // handed out, not yet ended
	active    map[uint64]int  // snapshot timestamp -> reference count
}

// NewOracle creates an oracle starting at timestamp zero (the timestamp of
// all pre-existing, non-transactional data — visible to every snapshot).
func NewOracle() *Oracle {
	return &Oracle{
		pending: make(map[uint64]bool),
		active:  make(map[uint64]int),
	}
}

// StartAt restarts the oracle after a crash: timestamps resume past ts,
// the highest commit timestamp found in the durable log. All surviving
// state is visible (committed at or before ts) and no snapshots exist.
func (o *Oracle) StartAt(ts uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if ts > o.last {
		o.last = ts
	}
	if ts > o.watermark {
		o.watermark = ts
	}
}

// BeginCommit allocates the next commit timestamp and marks it pending.
// The caller must invoke EndCommit with the same timestamp exactly once,
// on success and failure alike — an unpaired BeginCommit stalls the
// watermark forever.
func (o *Oracle) BeginCommit() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.last++
	o.pending[o.last] = true
	return o.last
}

// EndCommit retires a commit timestamp and advances the watermark over
// every contiguously finished commit.
func (o *Oracle) EndCommit(ts uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.pending, ts)
	for o.watermark < o.last && !o.pending[o.watermark+1] {
		o.watermark++
	}
}

// Watermark returns the timestamp a snapshot acquired now would read.
func (o *Oracle) Watermark() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.watermark
}

// AcquireSnapshot registers a reader at the current watermark and returns
// its snapshot timestamp. Registration and watermark read happen under one
// lock, so garbage collection can never reclaim a version between the two.
// Every AcquireSnapshot must be paired with ReleaseSnapshot.
func (o *Oracle) AcquireSnapshot() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.active[o.watermark]++
	return o.watermark
}

// ReleaseSnapshot unregisters a reader.
func (o *Oracle) ReleaseSnapshot(ts uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if n := o.active[ts]; n > 1 {
		o.active[ts] = n - 1
	} else {
		delete(o.active, ts)
	}
}

// OldestActive returns the oldest registered snapshot timestamp, or the
// current watermark if no snapshot is active. Versions and index entries
// superseded at or before this timestamp are invisible to every present
// and future reader and may be reclaimed.
func (o *Oracle) OldestActive() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.oldestLocked()
}

func (o *Oracle) oldestLocked() uint64 {
	oldest := o.watermark
	for ts := range o.active {
		if ts < oldest {
			oldest = ts
		}
	}
	return oldest
}

// NoActiveBefore reports whether no active snapshot predates ts — i.e.
// whether state superseded at ts can be dropped immediately instead of
// being parked for the version garbage collector.
func (o *Oracle) NoActiveBefore(ts uint64) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.oldestLocked() >= ts
}

// ActiveSnapshots returns the number of registered reader snapshots.
func (o *Oracle) ActiveSnapshots() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, c := range o.active {
		n += c
	}
	return n
}

// SnapshotAge returns the distance, in commit timestamps, between the
// watermark and the oldest active snapshot (0 with no active readers) —
// a direct measure of how much version history must be retained.
func (o *Oracle) SnapshotAge() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.watermark - o.oldestLocked()
}
