package txn

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The version cache gives every record a version chain keyed by its packed
// RID (RIDs are globally unique: page IDs are never reused across tables
// and heap slots of WAL-covered tables are never recycled). The heap slot
// always holds the NEWEST bytes of a record — uncommitted while a writer
// is pending, the latest committed state otherwise — and the chain holds
// the commit-timestamp metadata plus the superseded committed versions
// that older snapshots still need. A record with no chain is in its only
// committed state, timestamp zero (pre-transactional data, or history
// fully reclaimed by GC).
//
// The cache is volatile by design: after a crash all snapshots are dead,
// so recovery conservatively truncates every chain to its newest committed
// version — which is exactly the heap image the WAL redo/undo pass
// produces. Only the commit timestamps themselves are durable (carried in
// the Key field of each RecCommit record) so the oracle can restart past
// them.

// ResKind classifies how a snapshot read resolves against a chain.
type ResKind uint8

const (
	// ResHeap: the heap slot's current bytes are the visible version.
	ResHeap ResKind = iota
	// ResData: an older version's bytes (returned inline) are visible.
	ResData
	// ResAbsent: the record does not exist at the snapshot.
	ResAbsent
)

// Resolution is the outcome of VersionCache.Resolve.
type Resolution struct {
	Kind ResKind
	Data []byte // valid when Kind == ResData; owned by the cache, do not modify
}

// version is one superseded committed state of a record.
type version struct {
	ts      uint64 // commit timestamp of this state
	deleted bool   // the record did not exist in this state
	data    []byte
}

// chain is the version metadata of one record. The head fields describe
// the state of the heap slot; olds lists superseded committed versions,
// newest first.
type chain struct {
	writer        uint64 // txn holding the heap slot uncommitted; 0 = committed
	inserted      bool   // writer created the record (no committed state exists)
	pendingDelete bool   // writer's uncommitted change is a delete
	pushed        bool   // writer pushed olds[0] (false for adopted dead-writer chains)
	headTS        uint64 // commit timestamp of the heap bytes (writer == 0)
	headDeleted   bool   // the committed head state is a delete (zombie)
	olds          []version
}

const versionStripes = 64

type vstripe struct {
	mu     sync.Mutex
	seq    atomic.Uint64 // bumped on every chain mutation in this stripe
	chains map[uint64]*chain
}

// gcMark parks one chain for trimming once no snapshot predates ts.
type gcMark struct {
	ts  uint64
	rid uint64
}

// VersionCache is the engine-global store of version chains, striped for
// concurrency. Writers mutate chains under their record locks (plus the
// stripe mutex); readers resolve lock-free via a per-stripe sequence
// number (see Resolve/Validate).
type VersionCache struct {
	stripes [versionStripes]vstripe

	txMu   sync.Mutex
	txRIDs map[uint64][]uint64 // txn id -> packed RIDs it has written

	gcMu    sync.Mutex
	gcQueue []gcMark

	chainsLive        atomic.Int64
	versionsCreated   atomic.Uint64
	versionsReclaimed atomic.Uint64
	resolves          atomic.Uint64
	versionReads      atomic.Uint64
}

// NewVersionCache creates an empty cache.
func NewVersionCache() *VersionCache {
	c := &VersionCache{txRIDs: make(map[uint64][]uint64)}
	for i := range c.stripes {
		c.stripes[i].chains = make(map[uint64]*chain)
	}
	return c
}

func (c *VersionCache) stripe(rid uint64) *vstripe {
	// Same multiplicative hash as the lock table, over the packed RID.
	h := rid * 0x9E3779B97F4A7C15
	return &c.stripes[h>>58&(versionStripes-1)]
}

func (c *VersionCache) noteTxn(txnID, rid uint64) {
	c.txMu.Lock()
	c.txRIDs[txnID] = append(c.txRIDs[txnID], rid)
	c.txMu.Unlock()
}

func (c *VersionCache) takeTxn(txnID uint64) []uint64 {
	c.txMu.Lock()
	rids := c.txRIDs[txnID]
	delete(c.txRIDs, txnID)
	c.txMu.Unlock()
	return rids
}

// OnInsert registers a freshly inserted record: the heap slot holds
// txnID's uncommitted bytes and no committed state exists, so the record
// is invisible to every other transaction. The caller holds the record
// lock; rid must be a fresh heap slot (never previously used).
func (c *VersionCache) OnInsert(rid, txnID uint64) {
	s := c.stripe(rid)
	s.mu.Lock()
	s.chains[rid] = &chain{writer: txnID, inserted: true}
	s.seq.Add(1)
	s.mu.Unlock()
	c.chainsLive.Add(1)
	c.noteTxn(txnID, rid)
}

// OnWrite registers an update (del=false) or delete (del=true) of a
// committed record: prev is the committed tuple image being superseded
// (the cache keeps its own copy). The caller holds the record lock and
// must call OnWrite BEFORE overwriting or deleting the heap slot, so
// readers never see the new bytes attributed to the old version.
//
// If the chain still carries a dead writer (a transaction whose commit
// flush failed, leaving its heap bytes uncommitted forever), the new
// writer adopts the chain without pushing a pre-image: olds[0] already
// holds the last committed state, and prev — read from the heap — is the
// dead writer's residue, not a committed version.
func (c *VersionCache) OnWrite(rid, txnID uint64, prev []byte, del bool) {
	s := c.stripe(rid)
	s.mu.Lock()
	defer func() {
		s.seq.Add(1)
		s.mu.Unlock()
	}()
	ch := s.chains[rid]
	if ch == nil {
		ch = &chain{}
		s.chains[rid] = ch
		c.chainsLive.Add(1)
	}
	if ch.writer == txnID {
		// Second write by the same transaction: the pre-image pushed by
		// the first write stays the rollback target.
		ch.pendingDelete = del
		return
	}
	if ch.writer != 0 {
		ch.writer = txnID
		ch.inserted = false
		ch.pendingDelete = del
		ch.pushed = false
		c.noteTxn(txnID, rid)
		return
	}
	ch.olds = append([]version{{ts: ch.headTS, deleted: ch.headDeleted, data: append([]byte(nil), prev...)}}, ch.olds...)
	ch.writer = txnID
	ch.inserted = false
	ch.pendingDelete = del
	ch.pushed = true
	c.versionsCreated.Add(1)
	c.noteTxn(txnID, rid)
}

// CommitTxn stamps every chain written by txnID with its commit timestamp
// and parks each for garbage collection. Must run after the commit record
// is durable and BEFORE the transaction's record locks are released and
// before Oracle.EndCommit(ts) — otherwise a reader could acquire a
// snapshot >= ts while the chains still look uncommitted.
func (c *VersionCache) CommitTxn(txnID, ts uint64) {
	rids := c.takeTxn(txnID)
	if len(rids) == 0 {
		return
	}
	marks := make([]gcMark, 0, len(rids))
	for _, rid := range rids {
		s := c.stripe(rid)
		s.mu.Lock()
		if ch := s.chains[rid]; ch != nil && ch.writer == txnID {
			ch.writer = 0
			ch.headTS = ts
			ch.headDeleted = ch.pendingDelete
			ch.pendingDelete = false
			ch.inserted = false
			ch.pushed = false
			s.seq.Add(1)
			marks = append(marks, gcMark{ts: ts, rid: rid})
		}
		s.mu.Unlock()
	}
	c.gcMu.Lock()
	c.gcQueue = append(c.gcQueue, marks...)
	c.gcMu.Unlock()
}

// AbortTxn rolls the chains written by txnID back to their committed
// state. The caller must restore the heap slots (undo) BEFORE calling
// AbortTxn and must still hold the record locks, so a chain flipping back
// to "heap is committed" always points at restored bytes.
func (c *VersionCache) AbortTxn(txnID uint64) {
	for _, rid := range c.takeTxn(txnID) {
		s := c.stripe(rid)
		s.mu.Lock()
		ch := s.chains[rid]
		if ch == nil || ch.writer != txnID {
			s.mu.Unlock()
			continue
		}
		switch {
		case ch.inserted:
			// The undo removed the inserted tuple; no committed state ever
			// existed, so the whole chain goes.
			delete(s.chains, rid)
			c.chainsLive.Add(-1)
		case ch.pushed:
			// The undo restored the pre-image into the heap slot; pop it
			// back off the chain.
			head := ch.olds[0]
			ch.olds = ch.olds[1:]
			ch.writer = 0
			ch.headTS = head.ts
			ch.headDeleted = head.deleted
			ch.pendingDelete = false
			ch.pushed = false
			c.versionsReclaimed.Add(1)
		default:
			// Adopted dead-writer chain: the heap bytes were never a
			// committed state, so the chain stays pending forever and
			// readers keep resolving to olds[0]. (Only reachable after a
			// commit-flush failure, which poisons the engine anyway.)
		}
		s.seq.Add(1)
		s.mu.Unlock()
	}
}

// AbandonTxn forgets txnID's write set without touching the chains. Used
// when a transaction detaches (commit-flush failure, engine close): the
// heap keeps its uncommitted bytes, the chains stay pending, and readers
// keep resolving to the last committed version.
func (c *VersionCache) AbandonTxn(txnID uint64) {
	c.takeTxn(txnID)
}

// Resolve reads the chain of rid at snapshot snap and returns how the
// read resolves plus the stripe sequence observed. self is the reading
// transaction's id (0 for table-level reads): a transaction always sees
// its own uncommitted writes.
//
// When Kind == ResHeap the caller fetches the heap slot WITHOUT holding
// any cache lock and then calls Validate(rid, seq): if the sequence is
// unchanged the chain did not move while the heap was read, so the bytes
// belong to the resolved version. On a sequence change, retry (or fall
// back to ResolveFenced).
func (c *VersionCache) Resolve(rid, snap, self uint64) (Resolution, uint64) {
	s := c.stripe(rid)
	s.mu.Lock()
	seq := s.seq.Load()
	res := c.resolveLocked(s, rid, snap, self)
	s.mu.Unlock()
	return res, seq
}

func (c *VersionCache) resolveLocked(s *vstripe, rid, snap, self uint64) Resolution {
	c.resolves.Add(1)
	ch := s.chains[rid]
	if ch == nil {
		// No chain: committed at timestamp zero, visible to any snapshot.
		return Resolution{Kind: ResHeap}
	}
	if self != 0 && ch.writer == self {
		if ch.pendingDelete {
			return Resolution{Kind: ResAbsent}
		}
		return Resolution{Kind: ResHeap}
	}
	if ch.writer == 0 && ch.headTS <= snap {
		if ch.headDeleted {
			return Resolution{Kind: ResAbsent}
		}
		return Resolution{Kind: ResHeap}
	}
	// The heap state is invisible (uncommitted by another txn, or too
	// new): chase the chain for the newest version at or before snap.
	for i := range ch.olds {
		v := &ch.olds[i]
		if v.ts <= snap {
			if v.deleted {
				return Resolution{Kind: ResAbsent}
			}
			c.versionReads.Add(1)
			return Resolution{Kind: ResData, Data: v.data}
		}
	}
	// Record did not exist at snap (created later, or pending insert).
	return Resolution{Kind: ResAbsent}
}

// Validate reports whether the stripe of rid is unchanged since seq.
func (c *VersionCache) Validate(rid, seq uint64) bool {
	return c.stripe(rid).seq.Load() == seq
}

// ResolveFenced is the contended-path fallback: it resolves rid under the
// stripe mutex and, for a ResHeap outcome, invokes fetch while STILL
// holding the mutex, so no chain mutation can slip between resolution and
// heap read. fetch must not call back into the cache.
func (c *VersionCache) ResolveFenced(rid, snap, self uint64, fetch func(Resolution) error) error {
	s := c.stripe(rid)
	s.mu.Lock()
	defer s.mu.Unlock()
	return fetch(c.resolveLocked(s, rid, snap, self))
}

// CommittedLive reports whether the latest COMMITTED state of rid is a
// live tuple — the visibility rule of Table.Exists: pending writes by
// other transactions do not count, committed deletes (zombies) do.
func (c *VersionCache) CommittedLive(rid uint64) bool {
	s := c.stripe(rid)
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[rid]
	if ch == nil {
		return true
	}
	if ch.writer != 0 {
		return len(ch.olds) > 0 && !ch.olds[0].deleted
	}
	return !ch.headDeleted
}

// CommittedDeleted reports whether rid's latest committed state is a
// delete — i.e. the record is a zombie whose index entries survive only
// for older snapshots. Insert-over-delete uses this to allow overwriting
// such an entry.
func (c *VersionCache) CommittedDeleted(rid uint64) bool {
	s := c.stripe(rid)
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[rid]
	return ch != nil && ch.writer == 0 && ch.headDeleted
}

// HasChain reports whether rid currently has a version chain — integrity
// verification uses it to justify index entries retained for old
// snapshots (a retained entry without a chain is a leak).
func (c *VersionCache) HasChain(rid uint64) bool {
	s := c.stripe(rid)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chains[rid] != nil
}

// GC trims every parked chain whose commit timestamp is invisible to all
// snapshots older than oldest (= Oracle.OldestActive): superseded
// versions at or before oldest are dropped, and chains whose newest
// committed state is itself at or before oldest collapse entirely —
// committed-deleted chains vanish (the heap slot is gone; a chainless
// miss reads as absent) and live ones become chainless heap records.
func (c *VersionCache) GC(oldest uint64) {
	c.gcMu.Lock()
	if len(c.gcQueue) == 0 {
		c.gcMu.Unlock()
		return
	}
	var ready, keep []gcMark
	for _, m := range c.gcQueue {
		if m.ts <= oldest {
			ready = append(ready, m)
		} else {
			keep = append(keep, m)
		}
	}
	c.gcQueue = keep
	c.gcMu.Unlock()

	for _, m := range ready {
		s := c.stripe(m.rid)
		s.mu.Lock()
		ch := s.chains[m.rid]
		if ch == nil {
			s.mu.Unlock()
			continue
		}
		reclaimed := 0
		if ch.writer == 0 && ch.headTS <= oldest {
			// The head itself satisfies every snapshot: the whole history
			// — and for still-live records the chain itself — can go.
			reclaimed = len(ch.olds)
			delete(s.chains, m.rid)
			c.chainsLive.Add(-1)
		} else {
			// Keep everything newer than oldest plus the one boundary
			// version a snapshot at exactly `oldest` resolves to.
			cut := sort.Search(len(ch.olds), func(i int) bool { return ch.olds[i].ts <= oldest })
			if cut < len(ch.olds)-1 {
				reclaimed = len(ch.olds) - cut - 1
				ch.olds = ch.olds[: cut+1 : cut+1]
			}
		}
		if reclaimed > 0 {
			c.versionsReclaimed.Add(uint64(reclaimed))
		}
		s.seq.Add(1)
		s.mu.Unlock()
	}
}

// VersionStats is a point-in-time snapshot of the cache counters.
type VersionStats struct {
	ChainsLive        uint64 // gauge: records with version metadata
	VersionsCreated   uint64 // superseded committed versions materialized
	VersionsReclaimed uint64 // versions dropped by GC or rollback
	SnapshotReads     uint64 // chain resolutions on behalf of readers
	VersionReads      uint64 // reads served from a superseded version's bytes
}

// Stats returns the current counter values.
func (c *VersionCache) Stats() VersionStats {
	live := c.chainsLive.Load()
	if live < 0 {
		live = 0
	}
	return VersionStats{
		ChainsLive:        uint64(live),
		VersionsCreated:   c.versionsCreated.Load(),
		VersionsReclaimed: c.versionsReclaimed.Load(),
		SnapshotReads:     c.resolves.Load(),
		VersionReads:      c.versionReads.Load(),
	}
}

// ResetStats zeroes the monotonic counters (gauges are left alone).
func (c *VersionCache) ResetStats() {
	c.versionsCreated.Store(0)
	c.versionsReclaimed.Store(0)
	c.resolves.Store(0)
	c.versionReads.Store(0)
}
