package txn

import (
	"errors"
	"testing"

	"ipa/internal/wal"
)

// memUndoer applies before images to an in-memory page map.
type memUndoer struct {
	pages map[uint64][]byte
}

func newMemUndoer() *memUndoer { return &memUndoer{pages: make(map[uint64][]byte)} }

func (u *memUndoer) ApplyUpdate(pid uint64, slot uint16, offset uint16, image []byte) error {
	p, ok := u.pages[pid]
	if !ok {
		p = make([]byte, 64)
		u.pages[pid] = p
	}
	copy(p[int(offset):], image)
	return nil
}

func (u *memUndoer) UndoInsert(pid uint64, slot uint16) error {
	delete(u.pages, pid)
	return nil
}

func (u *memUndoer) UndoDelete(objectID uint32, pid uint64, slot uint16, tuple []byte) error {
	p := make([]byte, 64)
	copy(p, tuple)
	u.pages[pid] = p
	return nil
}

func (u *memUndoer) UndoIndexInsert(objectID uint32, key int64, value uint64) error { return nil }

func (u *memUndoer) UndoIndexDelete(objectID uint32, key int64, value uint64) error { return nil }

func TestBeginAssignsUniqueIDs(t *testing.T) {
	m := NewManager(wal.New())
	t1 := m.Begin()
	t2 := m.Begin()
	if t1.ID() == t2.ID() {
		t.Fatalf("transaction ids must be unique")
	}
	if t1.Status() != Active {
		t.Fatalf("new transaction must be active")
	}
}

func TestLockConflictAndRelease(t *testing.T) {
	m := NewManager(wal.New())
	t1 := m.Begin()
	t2 := m.Begin()
	key := LockKey{PageID: 1, Slot: 2}
	if err := t1.Lock(key); err != nil {
		t.Fatalf("first lock: %v", err)
	}
	// Re-acquiring the same lock in the same transaction is fine.
	if err := t1.Lock(key); err != nil {
		t.Fatalf("re-entrant lock: %v", err)
	}
	if err := t2.Lock(key); !errors.Is(err, ErrConflict) {
		t.Fatalf("expected ErrConflict, got %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if m.HeldLocks() != 0 {
		t.Fatalf("locks must be released on commit")
	}
	if err := t2.Lock(key); err != nil {
		t.Fatalf("lock after release: %v", err)
	}
}

func TestCommitWritesAndFlushesLog(t *testing.T) {
	log := wal.New()
	m := NewManager(log)
	tx := m.Begin()
	if _, err := tx.LogUpdate(5, 0, 8, []byte{1}, []byte{2}); err != nil {
		t.Fatalf("LogUpdate: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if tx.Status() != Committed {
		t.Fatalf("status = %v", tx.Status())
	}
	if log.BytesWritten() == 0 {
		t.Fatalf("commit must flush the log")
	}
	a := log.Analyze()
	if !a.Committed[tx.ID()] {
		t.Fatalf("commit record missing")
	}
	// Operations after commit fail.
	if err := tx.Commit(); !errors.Is(err, ErrFinished) {
		t.Fatalf("double commit must fail")
	}
	if _, err := tx.LogUpdate(5, 0, 8, []byte{1}, []byte{2}); !errors.Is(err, ErrFinished) {
		t.Fatalf("logging after commit must fail")
	}
	if err := tx.Lock(LockKey{}); !errors.Is(err, ErrFinished) {
		t.Fatalf("locking after commit must fail")
	}
}

func TestAbortRollsBackInReverseOrder(t *testing.T) {
	log := wal.New()
	m := NewManager(log)
	u := newMemUndoer()
	// Simulate the forward updates.
	u.pages[1] = make([]byte, 64)
	tx := m.Begin()
	if err := tx.Lock(LockKey{PageID: 1, Slot: 0}); err != nil {
		t.Fatalf("Lock: %v", err)
	}
	// Two updates of the same byte: offset 0 goes 0 -> 1 -> 2.
	if _, err := tx.LogUpdate(1, 0, 0, []byte{0}, []byte{1}); err != nil {
		t.Fatalf("LogUpdate: %v", err)
	}
	u.pages[1][0] = 1
	if _, err := tx.LogUpdate(1, 0, 0, []byte{1}, []byte{2}); err != nil {
		t.Fatalf("LogUpdate: %v", err)
	}
	u.pages[1][0] = 2
	if err := tx.Abort(u); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if u.pages[1][0] != 0 {
		t.Fatalf("rollback must restore the oldest before image, got %d", u.pages[1][0])
	}
	if tx.Status() != Aborted {
		t.Fatalf("status = %v", tx.Status())
	}
	if m.HeldLocks() != 0 {
		t.Fatalf("locks must be released on abort")
	}
	a := log.Analyze()
	if !a.Aborted[tx.ID()] {
		t.Fatalf("abort record missing")
	}
}

func TestLogInsert(t *testing.T) {
	log := wal.New()
	m := NewManager(log)
	tx := m.Begin()
	if _, err := tx.LogInsert(7, 3, 1, []byte{1, 2, 3}); err != nil {
		t.Fatalf("LogInsert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	recs := log.RecordsFor(tx.ID())
	if len(recs) != 2 || recs[0].Type != wal.RecInsert {
		t.Fatalf("unexpected log records: %+v", recs)
	}
}

func TestAbortWithoutUndoer(t *testing.T) {
	m := NewManager(wal.New())
	tx := m.Begin()
	if _, err := tx.LogUpdate(1, 0, 0, []byte{0}, []byte{1}); err != nil {
		t.Fatalf("LogUpdate: %v", err)
	}
	if err := tx.Abort(nil); err != nil {
		t.Fatalf("Abort with nil undoer must still succeed: %v", err)
	}
}
