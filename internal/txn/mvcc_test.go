package txn

import (
	"bytes"
	"testing"

	"ipa/internal/wal"
)

func TestOracleWatermarkAdvancesContiguously(t *testing.T) {
	o := NewOracle()
	t1 := o.BeginCommit()
	t2 := o.BeginCommit()
	t3 := o.BeginCommit()
	if t1 != 1 || t2 != 2 || t3 != 3 {
		t.Fatalf("timestamps = %d,%d,%d, want 1,2,3", t1, t2, t3)
	}
	// Finishing out of order must not expose t3 before t1 retires: a
	// snapshot acquired now would otherwise miss t1's still-pending writes.
	o.EndCommit(t3)
	if w := o.Watermark(); w != 0 {
		t.Fatalf("watermark = %d with ts 1,2 pending, want 0", w)
	}
	o.EndCommit(t1)
	if w := o.Watermark(); w != 1 {
		t.Fatalf("watermark = %d after ts 1 retired, want 1", w)
	}
	o.EndCommit(t2)
	if w := o.Watermark(); w != 3 {
		t.Fatalf("watermark = %d after all retired, want 3", w)
	}
}

func TestOracleSnapshotsPinHistory(t *testing.T) {
	o := NewOracle()
	o.EndCommit(o.BeginCommit()) // ts 1
	s1 := o.AcquireSnapshot()
	if s1 != 1 {
		t.Fatalf("snapshot = %d, want 1", s1)
	}
	o.EndCommit(o.BeginCommit()) // ts 2
	s2 := o.AcquireSnapshot()
	if s2 != 2 {
		t.Fatalf("snapshot = %d, want 2", s2)
	}
	if got := o.OldestActive(); got != 1 {
		t.Fatalf("OldestActive = %d, want 1", got)
	}
	if o.NoActiveBefore(2) {
		t.Fatalf("NoActiveBefore(2) with snapshot 1 active")
	}
	if age := o.SnapshotAge(); age != 1 {
		t.Fatalf("SnapshotAge = %d, want 1", age)
	}
	o.ReleaseSnapshot(s1)
	if got := o.OldestActive(); got != 2 {
		t.Fatalf("OldestActive = %d after release, want 2", got)
	}
	if !o.NoActiveBefore(2) {
		t.Fatalf("NoActiveBefore(2) must hold once snapshot 1 is gone")
	}
	o.ReleaseSnapshot(s2)
	if got, n := o.OldestActive(), o.ActiveSnapshots(); got != 2 || n != 0 {
		t.Fatalf("idle oracle: OldestActive=%d active=%d, want 2,0", got, n)
	}
}

func TestOracleStartAt(t *testing.T) {
	o := NewOracle()
	o.StartAt(41)
	if w := o.Watermark(); w != 41 {
		t.Fatalf("watermark = %d after StartAt(41), want 41", w)
	}
	if ts := o.BeginCommit(); ts != 42 {
		t.Fatalf("first timestamp after restart = %d, want 42", ts)
	}
}

func TestVersionCacheResolveMatrix(t *testing.T) {
	c := NewVersionCache()
	const rid, writer, reader = 7, 10, 11

	// No chain: any snapshot reads the heap.
	if res, _ := c.Resolve(rid, 0, reader); res.Kind != ResHeap {
		t.Fatalf("chainless resolve = %v, want ResHeap", res.Kind)
	}

	// Uncommitted insert: visible only to the writer.
	c.OnInsert(rid, writer)
	if res, _ := c.Resolve(rid, 99, reader); res.Kind != ResAbsent {
		t.Fatalf("pending insert visible to another txn: %v", res.Kind)
	}
	if res, _ := c.Resolve(rid, 0, writer); res.Kind != ResHeap {
		t.Fatalf("pending insert invisible to its writer: %v", res.Kind)
	}
	c.CommitTxn(writer, 5)

	// Committed at 5: snapshots before 5 miss it, later ones read the heap.
	if res, _ := c.Resolve(rid, 4, reader); res.Kind != ResAbsent {
		t.Fatalf("snapshot 4 sees insert committed at 5: %v", res.Kind)
	}
	if res, _ := c.Resolve(rid, 5, reader); res.Kind != ResHeap {
		t.Fatalf("snapshot 5 misses insert committed at 5: %v", res.Kind)
	}

	// Pending update: other snapshots read the pushed pre-image.
	old := []byte("v1")
	c.OnWrite(rid, writer, old, false)
	res, _ := c.Resolve(rid, 9, reader)
	if res.Kind != ResData || !bytes.Equal(res.Data, old) {
		t.Fatalf("snapshot read during pending update = %v %q, want pre-image", res.Kind, res.Data)
	}
	if res, _ := c.Resolve(rid, 9, writer); res.Kind != ResHeap {
		t.Fatalf("writer must see its own update: %v", res.Kind)
	}
	c.CommitTxn(writer, 9)

	// Committed update: old snapshots keep the superseded version.
	if res, _ := c.Resolve(rid, 8, reader); res.Kind != ResData || !bytes.Equal(res.Data, old) {
		t.Fatalf("snapshot 8 after commit at 9 = %v %q, want v1", res.Kind, res.Data)
	}
	if res, _ := c.Resolve(rid, 9, reader); res.Kind != ResHeap {
		t.Fatalf("snapshot 9 after commit at 9 = %v, want ResHeap", res.Kind)
	}

	// Committed delete: new snapshots see absent, old ones the last value.
	c.OnWrite(rid, writer, []byte("v2"), true)
	c.CommitTxn(writer, 12)
	if res, _ := c.Resolve(rid, 12, reader); res.Kind != ResAbsent {
		t.Fatalf("snapshot 12 sees deleted record: %v", res.Kind)
	}
	if res, _ := c.Resolve(rid, 11, reader); res.Kind != ResData || string(res.Data) != "v2" {
		t.Fatalf("snapshot 11 after delete at 12 = %v %q, want v2", res.Kind, res.Data)
	}
	if !c.CommittedDeleted(rid) || c.CommittedLive(rid) {
		t.Fatalf("committed delete must read as zombie")
	}
}

func TestVersionCacheAbortRestoresHead(t *testing.T) {
	c := NewVersionCache()
	const rid, writer = 3, 20
	c.OnInsert(rid, writer)
	c.CommitTxn(writer, 1)

	c.OnWrite(rid, writer, []byte("committed"), false)
	c.AbortTxn(writer)
	if res, _ := c.Resolve(rid, 1, 0); res.Kind != ResHeap {
		t.Fatalf("aborted update left chain pending: %v", res.Kind)
	}
	if got := c.Stats().VersionsReclaimed; got != 1 {
		t.Fatalf("VersionsReclaimed = %d after abort, want 1", got)
	}

	// Aborted insert on a fresh rid: the whole chain disappears.
	c.OnInsert(4, writer)
	before := c.Stats().ChainsLive
	c.AbortTxn(writer)
	if got := c.Stats().ChainsLive; got != before-1 {
		t.Fatalf("ChainsLive = %d after aborted insert, want %d", got, before-1)
	}
}

func TestVersionCacheGCTrims(t *testing.T) {
	c := NewVersionCache()
	const rid, writer = 9, 30
	c.OnInsert(rid, writer)
	c.CommitTxn(writer, 1)
	for i, ts := range []uint64{3, 5, 7} {
		c.OnWrite(rid, writer, []byte{byte(i)}, false)
		c.CommitTxn(writer, ts)
	}
	// Three superseded versions (ts 1, 3, 5). A snapshot at 4 needs the
	// boundary version at 3; GC(4) may only reclaim ts 1.
	c.GC(4)
	if res, _ := c.Resolve(rid, 4, 0); res.Kind != ResData || res.Data[0] != 1 {
		t.Fatalf("snapshot 4 after GC(4) = %v, want version committed at 3", res.Kind)
	}
	if got := c.Stats().VersionsReclaimed; got != 1 {
		t.Fatalf("VersionsReclaimed = %d after GC(4), want 1 (only ts 1)", got)
	}
	// No snapshot predates the head: the chain collapses entirely.
	c.GC(7)
	if got := c.Stats().ChainsLive; got != 0 {
		t.Fatalf("ChainsLive = %d after full GC, want 0", got)
	}
	if res, _ := c.Resolve(rid, 7, 0); res.Kind != ResHeap {
		t.Fatalf("chainless record after GC = %v, want ResHeap", res.Kind)
	}
}

// TestCommitCarriesTimestamp checks the txn-manager integration: a commit
// allocates an oracle timestamp, stamps it into the WAL commit record and
// flips the written chains to committed.
func TestCommitCarriesTimestamp(t *testing.T) {
	log := wal.New()
	m := NewManager(log)
	tx := m.Begin()
	m.Versions().OnInsert(77, tx.ID())
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if tx.CommitTS() != 1 {
		t.Fatalf("CommitTS = %d, want 1", tx.CommitTS())
	}
	if got := wal.MaxCommitTS(log.Records()); got != 1 {
		t.Fatalf("MaxCommitTS over the log = %d, want 1", got)
	}
	if !m.Versions().CommittedLive(77) {
		t.Fatalf("chain still pending after commit")
	}
	if got := m.Oracle().Watermark(); got != 1 {
		t.Fatalf("watermark = %d after commit, want 1", got)
	}
}
