// Package txn implements transactions with record-level locking and
// WAL-based rollback.
//
// The transaction layer is part of the Shore-MT-like substrate the paper's
// prototype runs on. In-Place Appends is transparent to it: transactions
// update buffered pages in place exactly as before; only the eviction path
// in the storage manager changes. The tests in this package and in the
// engine verify that locking, commit and abort behave identically with and
// without IPA.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"ipa/internal/wal"
)

// Errors returned by the transaction manager.
var (
	// ErrConflict is returned when a lock is held by another transaction
	// and the manager is configured not to wait.
	ErrConflict = errors.New("txn: lock conflict")
	// ErrFinished is returned when operating on a committed or aborted
	// transaction.
	ErrFinished = errors.New("txn: transaction already finished")
)

// Status of a transaction.
type Status int

const (
	// Active transactions may acquire locks and log updates.
	Active Status = iota
	// Committed transactions are durable.
	Committed
	// Aborted transactions have been rolled back.
	Aborted
)

// LockKey identifies a lockable record (page, slot).
type LockKey struct {
	PageID uint64
	Slot   uint16
}

// Manager coordinates transactions.
type Manager struct {
	mu     sync.Mutex
	nextID uint64
	locks  map[LockKey]uint64 // key -> owning transaction
	log    *wal.Log
}

// NewManager creates a transaction manager writing to log.
func NewManager(log *wal.Log) *Manager {
	return &Manager{nextID: 1, locks: make(map[LockKey]uint64), log: log}
}

// Log returns the write-ahead log used by the manager.
func (m *Manager) Log() *wal.Log { return m.log }

// Txn is one transaction.
type Txn struct {
	mgr    *Manager
	id     uint64
	status Status
	locks  []LockKey
	undo   []wal.Record
}

// Begin starts a new transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	m.mu.Unlock()
	return &Txn{mgr: m, id: id}
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// Status returns the transaction status.
func (t *Txn) Status() Status { return t.status }

// Lock acquires an exclusive record lock. Locks are held until commit or
// abort (strict two-phase locking). A conflict with another transaction
// returns ErrConflict; the OLTP drivers retry the transaction.
func (t *Txn) Lock(key LockKey) error {
	if t.status != Active {
		return ErrFinished
	}
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	owner, held := m.locks[key]
	if held && owner != t.id {
		return fmt.Errorf("%w: page %d slot %d held by txn %d", ErrConflict, key.PageID, key.Slot, owner)
	}
	if !held {
		m.locks[key] = t.id
		t.locks = append(t.locks, key)
	}
	return nil
}

// LogUpdate appends an update record (before and after image) to the WAL
// and remembers it for rollback.
func (t *Txn) LogUpdate(pageID uint64, slot, offset uint16, old, new []byte) (uint64, error) {
	if t.status != Active {
		return 0, ErrFinished
	}
	rec := wal.Record{
		TxnID:  t.id,
		Type:   wal.RecUpdate,
		PageID: pageID,
		Slot:   slot,
		Offset: offset,
		Old:    append([]byte(nil), old...),
		New:    append([]byte(nil), new...),
	}
	lsn := t.mgr.log.Append(rec)
	rec.LSN = lsn
	t.undo = append(t.undo, rec)
	return lsn, nil
}

// LogInsert appends an insert record to the WAL.
func (t *Txn) LogInsert(pageID uint64, slot uint16, tuple []byte) (uint64, error) {
	if t.status != Active {
		return 0, ErrFinished
	}
	rec := wal.Record{
		TxnID:  t.id,
		Type:   wal.RecInsert,
		PageID: pageID,
		Slot:   slot,
		New:    append([]byte(nil), tuple...),
	}
	return t.mgr.log.Append(rec), nil
}

// Commit flushes the log up to the commit record and releases all locks.
func (t *Txn) Commit() error {
	if t.status != Active {
		return ErrFinished
	}
	lsn := t.mgr.log.Append(wal.Record{TxnID: t.id, Type: wal.RecCommit})
	t.mgr.log.Flush(lsn)
	t.status = Committed
	t.releaseLocks()
	return nil
}

// Undoer applies before images during rollback; the storage/heap layer
// implements it.
type Undoer interface {
	ApplyUpdate(pid uint64, slot uint16, offset uint16, image []byte) error
}

// Abort rolls back the transaction by applying the before images of its
// updates in reverse order, writes an abort record and releases all locks.
func (t *Txn) Abort(u Undoer) error {
	if t.status != Active {
		return ErrFinished
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		r := t.undo[i]
		if u != nil {
			if err := u.ApplyUpdate(r.PageID, r.Slot, r.Offset, r.Old); err != nil {
				return fmt.Errorf("txn: rollback LSN %d: %w", r.LSN, err)
			}
		}
	}
	t.mgr.log.Append(wal.Record{TxnID: t.id, Type: wal.RecAbort})
	t.status = Aborted
	t.releaseLocks()
	return nil
}

func (t *Txn) releaseLocks() {
	m := t.mgr
	m.mu.Lock()
	for _, k := range t.locks {
		if m.locks[k] == t.id {
			delete(m.locks, k)
		}
	}
	m.mu.Unlock()
	t.locks = nil
}

// HeldLocks returns the number of locks currently held (for tests).
func (m *Manager) HeldLocks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.locks)
}
