// Package txn implements transactions with record-level locking for
// writers, WAL-based rollback, and multi-version concurrency control for
// readers: a commit-timestamp Oracle and a VersionCache of superseded
// tuple versions let snapshot reads run without touching the lock table
// while writers keep strict two-phase locking among themselves.
//
// The transaction layer is part of the Shore-MT-like substrate the paper's
// prototype runs on. In-Place Appends is transparent to it: transactions
// update buffered pages in place exactly as before; only the eviction path
// in the storage manager changes. The tests in this package and in the
// engine verify that locking, commit and abort behave identically with and
// without IPA.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ipa/internal/wal"
)

// Errors returned by the transaction manager.
var (
	// ErrConflict is returned when a lock is held by another transaction
	// and the manager is configured not to wait.
	ErrConflict = errors.New("txn: lock conflict")
	// ErrFinished is returned when operating on a committed or aborted
	// transaction.
	ErrFinished = errors.New("txn: transaction already finished")
)

// Status of a transaction.
type Status int

const (
	// Active transactions may acquire locks and log updates.
	Active Status = iota
	// Committed transactions are durable.
	Committed
	// Aborted transactions have been rolled back.
	Aborted
)

// LockKey identifies a lockable record (page, slot).
type LockKey struct {
	PageID uint64
	Slot   uint16
}

// lockStripes is the number of independently-latched partitions of the
// lock table. Record locks hash onto a stripe by page and slot, so
// transactions touching different records rarely contend on the same
// mutex.
const lockStripes = 64

// lockStripe is one partition of the lock table.
type lockStripe struct {
	mu    sync.Mutex
	locks map[LockKey]uint64 // key -> owning transaction
}

// Manager coordinates transactions. Transaction identifiers are handed out
// with an atomic counter and the lock table is striped, so Begin and Lock
// scale with concurrent transactions. The manager also owns the two MVCC
// singletons — the commit-timestamp Oracle and the VersionCache — which
// commit and abort keep in lockstep with the lock table.
type Manager struct {
	nextID  atomic.Uint64
	stripes [lockStripes]lockStripe
	log     *wal.Log
	oracle  *Oracle
	cache   *VersionCache

	// active tracks transactions that have logged at least one record and
	// whose effects are not yet fully applied: id -> a conservative lower
	// bound of the transaction's first LSN. The fuzzy checkpoint's
	// truncation cut never advances past the oldest entry, so every
	// record recovery could need for undo (or for redo of still-pending
	// physical index retirement) stays in the log.
	activeMu sync.Mutex
	active   map[uint64]uint64

	lockAcquisitions atomic.Uint64
	lockConflicts    atomic.Uint64
}

// NewManager creates a transaction manager writing to log.
func NewManager(log *wal.Log) *Manager {
	m := &Manager{log: log, oracle: NewOracle(), cache: NewVersionCache(), active: make(map[uint64]uint64)}
	for i := range m.stripes {
		m.stripes[i].locks = make(map[LockKey]uint64)
	}
	return m
}

// NewManagerAt is NewManager with the identifier counter advanced past
// lastID, so a manager recreated after a crash never reuses a transaction
// identifier that still appears in the surviving log.
func NewManagerAt(log *wal.Log, lastID uint64) *Manager {
	m := NewManager(log)
	m.nextID.Store(lastID)
	return m
}

// LastTxnID returns the highest transaction identifier handed out so far.
func (m *Manager) LastTxnID() uint64 { return m.nextID.Load() }

// stripeFor returns the lock-table stripe responsible for key. The slot is
// mixed with its own multiplier before the avalanche shift so that
// different slots of the same (hot) page land on different stripes.
func (m *Manager) stripeFor(key LockKey) *lockStripe {
	h := key.PageID*0x9E3779B97F4A7C15 ^ (uint64(key.Slot)+1)*0xC2B2AE3D27D4EB4F
	return &m.stripes[(h>>32)%lockStripes]
}

// Log returns the write-ahead log used by the manager.
func (m *Manager) Log() *wal.Log { return m.log }

// Oracle returns the commit-timestamp oracle.
func (m *Manager) Oracle() *Oracle { return m.oracle }

// Versions returns the version cache.
func (m *Manager) Versions() *VersionCache { return m.cache }

// ActiveTxn is one entry of the active-transaction table: a transaction
// with logged records whose effects may still need the log.
type ActiveTxn struct {
	ID       uint64
	FirstLSN uint64 // conservative lower bound of the txn's first record
}

// ActiveTxns returns a snapshot of the active-transaction table. The
// checkpoint records it and uses the minimum FirstLSN to bound the WAL
// truncation cut.
func (m *Manager) ActiveTxns() []ActiveTxn {
	m.activeMu.Lock()
	defer m.activeMu.Unlock()
	out := make([]ActiveTxn, 0, len(m.active))
	for id, lsn := range m.active {
		out = append(out, ActiveTxn{ID: id, FirstLSN: lsn})
	}
	return out
}

// Deregister removes a transaction from the active table. The engine
// calls it once the transaction's outcome is durable AND all its physical
// effects (including deferred index entry retirement) have been applied,
// so the log below its first record is no longer needed. Abort
// deregisters itself after its RecAbort record; successful commits are
// deregistered by the caller after index retirement.
func (m *Manager) Deregister(id uint64) {
	m.activeMu.Lock()
	delete(m.active, id)
	m.activeMu.Unlock()
}

// register adds the transaction to the active table before its first
// record is appended. The stored bound is read from the log BEFORE the
// append, so it never exceeds the record's actual LSN: a checkpoint that
// reads its begin-LSN and then the table either sees the transaction or
// none of its records lie below the begin-LSN.
func (t *Txn) register() {
	if t.registered {
		return
	}
	t.registered = true
	lb := t.mgr.log.NextLSN()
	t.mgr.activeMu.Lock()
	t.mgr.active[t.id] = lb
	t.mgr.activeMu.Unlock()
}

// LockStats returns the cumulative record-lock acquisition and conflict
// counts — the evidence that snapshot readers take zero record locks.
func (m *Manager) LockStats() (acquisitions, conflicts uint64) {
	return m.lockAcquisitions.Load(), m.lockConflicts.Load()
}

// ResetLockStats zeroes the lock counters.
func (m *Manager) ResetLockStats() {
	m.lockAcquisitions.Store(0)
	m.lockConflicts.Store(0)
}

// Txn is one transaction.
type Txn struct {
	mgr        *Manager
	id         uint64
	status     Status
	locks      []LockKey
	undo       []wal.Record
	commitTS   uint64
	registered bool // present in the manager's active-transaction table
}

// Begin starts a new transaction.
func (m *Manager) Begin() *Txn {
	return &Txn{mgr: m, id: m.nextID.Add(1)}
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// Status returns the transaction status.
func (t *Txn) Status() Status { return t.status }

// Lock acquires an exclusive record lock. Locks are held until commit or
// abort (strict two-phase locking). A conflict with another transaction
// returns ErrConflict; the OLTP drivers retry the transaction.
func (t *Txn) Lock(key LockKey) error {
	if t.status != Active {
		return ErrFinished
	}
	s := t.mgr.stripeFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	owner, held := s.locks[key]
	if held && owner != t.id {
		t.mgr.lockConflicts.Add(1)
		return fmt.Errorf("%w: page %d slot %d held by txn %d", ErrConflict, key.PageID, key.Slot, owner)
	}
	t.mgr.lockAcquisitions.Add(1)
	if !held {
		s.locks[key] = t.id
		t.locks = append(t.locks, key)
	}
	return nil
}

// LogUpdate appends an update record (before and after image) to the WAL
// and remembers it for rollback.
func (t *Txn) LogUpdate(pageID uint64, slot, offset uint16, old, new []byte) (uint64, error) {
	if t.status != Active {
		return 0, ErrFinished
	}
	rec := wal.Record{
		TxnID:  t.id,
		Type:   wal.RecUpdate,
		PageID: pageID,
		Slot:   slot,
		Offset: offset,
		Old:    append([]byte(nil), old...),
		New:    append([]byte(nil), new...),
	}
	t.register()
	lsn := t.mgr.log.Append(rec)
	rec.LSN = lsn
	t.undo = append(t.undo, rec)
	return lsn, nil
}

// LogInsert appends an insert record (with the owning object, so recovery
// can recreate lost pages) to the WAL and remembers it for rollback.
func (t *Txn) LogInsert(objectID uint32, pageID uint64, slot uint16, tuple []byte) (uint64, error) {
	if t.status != Active {
		return 0, ErrFinished
	}
	rec := wal.Record{
		TxnID:    t.id,
		Type:     wal.RecInsert,
		PageID:   pageID,
		Slot:     slot,
		ObjectID: objectID,
		New:      append([]byte(nil), tuple...),
	}
	t.register()
	lsn := t.mgr.log.Append(rec)
	rec.LSN = lsn
	t.undo = append(t.undo, rec)
	return lsn, nil
}

// LogDelete appends a delete record (with the owning object and the full
// before image, so recovery and rollback can restore the tuple) to the WAL
// and remembers it for rollback.
func (t *Txn) LogDelete(objectID uint32, pageID uint64, slot uint16, old []byte) (uint64, error) {
	if t.status != Active {
		return 0, ErrFinished
	}
	rec := wal.Record{
		TxnID:    t.id,
		Type:     wal.RecDelete,
		PageID:   pageID,
		Slot:     slot,
		ObjectID: objectID,
		Old:      append([]byte(nil), old...),
	}
	t.register()
	lsn := t.mgr.log.Append(rec)
	rec.LSN = lsn
	t.undo = append(t.undo, rec)
	return lsn, nil
}

// LogIndexInsert appends a logical index-insertion record: key now maps to
// the packed RID value in the index identified by objectID.
func (t *Txn) LogIndexInsert(objectID uint32, key int64, value uint64) (uint64, error) {
	if t.status != Active {
		return 0, ErrFinished
	}
	rec := wal.Record{
		TxnID:    t.id,
		Type:     wal.RecIndexInsert,
		ObjectID: objectID,
		Key:      key,
		New:      wal.ValueImage(value),
	}
	t.register()
	lsn := t.mgr.log.Append(rec)
	rec.LSN = lsn
	t.undo = append(t.undo, rec)
	return lsn, nil
}

// LogIndexDelete appends a logical index-deletion record; old is the packed
// RID the key mapped to (the undo image).
func (t *Txn) LogIndexDelete(objectID uint32, key int64, old uint64) (uint64, error) {
	if t.status != Active {
		return 0, ErrFinished
	}
	rec := wal.Record{
		TxnID:    t.id,
		Type:     wal.RecIndexDelete,
		ObjectID: objectID,
		Key:      key,
		Old:      wal.ValueImage(old),
	}
	t.register()
	lsn := t.mgr.log.Append(rec)
	rec.LSN = lsn
	t.undo = append(t.undo, rec)
	return lsn, nil
}

// Commit allocates a commit timestamp from the oracle, appends the commit
// record carrying it (in the Key field — part of every record's fixed
// header, so the log format is unchanged and the timestamp is durable),
// makes the log durable through the group-commit pipeline (concurrent
// commits share one log flush), stamps the transaction's version chains,
// and releases all locks.
//
// Ordering matters: chains are stamped BEFORE EndCommit retires the
// timestamp and before the locks drop, so no snapshot can read at or past
// the new timestamp while any chain still looks uncommitted, and no new
// writer can touch a still-pending chain.
//
// If the log device fails (power cut during the leader flush) the commit
// record is not durable: the timestamp is retired WITHOUT stamping — the
// chains keep their pending writer forever and readers keep resolving to
// the last committed version — and the transaction is finished as rolled
// back; recovery will undo it.
func (t *Txn) Commit() error {
	if t.status != Active {
		return ErrFinished
	}
	ts := t.mgr.oracle.BeginCommit()
	lsn := t.mgr.log.Append(wal.Record{TxnID: t.id, Type: wal.RecCommit, Key: int64(ts)})
	if err := t.mgr.log.CommitFlush(lsn); err != nil {
		t.mgr.cache.AbandonTxn(t.id)
		t.mgr.oracle.EndCommit(ts)
		t.status = Aborted
		t.releaseLocks()
		return fmt.Errorf("txn: commit flush: %w", err)
	}
	t.mgr.cache.CommitTxn(t.id, ts)
	t.commitTS = ts
	t.status = Committed
	t.mgr.oracle.EndCommit(ts)
	t.mgr.cache.GC(t.mgr.oracle.OldestActive())
	t.releaseLocks()
	return nil
}

// CommitTS returns the commit timestamp of a committed transaction
// (0 before Commit succeeds).
func (t *Txn) CommitTS() uint64 { return t.commitTS }

// Undoer applies before images during rollback; the storage/heap layer
// implements it.
type Undoer interface {
	ApplyUpdate(pid uint64, slot uint16, offset uint16, image []byte) error
	UndoInsert(pid uint64, slot uint16) error
	UndoDelete(objectID uint32, pid uint64, slot uint16, tuple []byte) error
	UndoIndexInsert(objectID uint32, key int64, value uint64) error
	UndoIndexDelete(objectID uint32, key int64, value uint64) error
}

// Abort rolls back the transaction in reverse order — update before images
// are restored, inserted tuples are deleted, deleted tuples and index
// entries are restored — then writes an abort record and releases all
// locks.
func (t *Txn) Abort(u Undoer) error {
	if t.status != Active {
		return ErrFinished
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		r := t.undo[i]
		if u == nil {
			continue
		}
		var err error
		switch r.Type {
		case wal.RecInsert:
			err = u.UndoInsert(r.PageID, r.Slot)
		case wal.RecDelete:
			err = u.UndoDelete(r.ObjectID, r.PageID, r.Slot, r.Old)
		case wal.RecIndexInsert:
			err = u.UndoIndexInsert(r.ObjectID, r.Key, wal.ValueOf(r.New))
		case wal.RecIndexDelete:
			err = u.UndoIndexDelete(r.ObjectID, r.Key, wal.ValueOf(r.Old))
		default:
			err = u.ApplyUpdate(r.PageID, r.Slot, r.Offset, r.Old)
		}
		if err != nil {
			return fmt.Errorf("txn: rollback LSN %d: %w", r.LSN, err)
		}
	}
	// The undo above restored the heap slots; now flip the version chains
	// back to their committed state, still under the record locks.
	t.mgr.cache.AbortTxn(t.id)
	t.mgr.log.Append(wal.Record{TxnID: t.id, Type: wal.RecAbort})
	t.status = Aborted
	// The rollback is fully applied and the abort record is in the log
	// (a checkpoint cut that keeps any of this transaction's records also
	// keeps the RecAbort, because truncation never splits the undurable
	// tail), so the transaction no longer pins the truncation cut.
	t.mgr.Deregister(t.id)
	t.releaseLocks()
	return nil
}

// Detach abandons the transaction without applying undo and without
// writing an abort record: locks are released and the transaction stays a
// loser in the WAL, so recovery rolls its updates back. It is used when
// the before images can no longer be applied in place (e.g. the database
// was closed while the transaction was in flight).
func (t *Txn) Detach() error {
	if t.status != Active {
		return ErrFinished
	}
	// The heap keeps the uncommitted bytes, so the version chains must
	// stay pending: readers keep resolving to the last committed version.
	t.mgr.cache.AbandonTxn(t.id)
	t.status = Aborted
	t.releaseLocks()
	return nil
}

func (t *Txn) releaseLocks() {
	for _, k := range t.locks {
		s := t.mgr.stripeFor(k)
		s.mu.Lock()
		if s.locks[k] == t.id {
			delete(s.locks, k)
		}
		s.mu.Unlock()
	}
	t.locks = nil
}

// HeldLocks returns the number of locks currently held (for tests).
func (m *Manager) HeldLocks() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		n += len(s.locks)
		s.mu.Unlock()
	}
	return n
}
