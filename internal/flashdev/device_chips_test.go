package flashdev

import (
	"sync"
	"testing"
	"time"

	"ipa/internal/nand"
)

// TestPerChipClocksMerge verifies that the device clock is the maximum of
// the per-chip clocks (chips operate in parallel), not their sum.
func TestPerChipClocksMerge(t *testing.T) {
	cfg := testConfig()
	cfg.Chips = 2
	d := mustDevice(t, cfg)

	// Two programs on chip 0 (blocks 0..7), one on chip 1 (blocks 8..15),
	// all MSB pages of equal latency and size.
	data := pattern(2048, 1)
	if err := d.ProgramPage(0, 0, data, 2048); err != nil {
		t.Fatalf("chip0 program 1: %v", err)
	}
	if err := d.ProgramPage(1, 0, data, 2048); err != nil {
		t.Fatalf("chip0 program 2: %v", err)
	}
	if err := d.ProgramPage(8, 0, data, 2048); err != nil {
		t.Fatalf("chip1 program: %v", err)
	}
	clocks := d.ChipClocks()
	if len(clocks) != 2 {
		t.Fatalf("ChipClocks length %d, want 2", len(clocks))
	}
	if clocks[0] != 2*clocks[1] {
		t.Fatalf("chip clocks %v: chip0 should carry twice chip1's time", clocks)
	}
	if d.Now() != clocks[0] {
		t.Fatalf("Now() = %v, want the busiest chip clock %v (not the sum)", d.Now(), clocks[0])
	}

	// AdvanceClock is a shared adjustment on top of the merge.
	d.AdvanceClock(time.Millisecond)
	if d.Now() != clocks[0]+time.Millisecond {
		t.Fatalf("AdvanceClock not merged: %v", d.Now())
	}
}

// TestPerChipStats verifies that operations are attributed to the right
// chip.
func TestPerChipStats(t *testing.T) {
	cfg := testConfig()
	cfg.Chips = 2
	d := mustDevice(t, cfg)
	data := pattern(2048, 2)
	if err := d.ProgramPage(0, 0, data, 2048); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	if err := d.ProgramPage(8, 0, data, 2048); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	if err := d.ReadPage(8, 0, make([]byte, 2048)); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if err := d.EraseBlock(0); err != nil {
		t.Fatalf("EraseBlock: %v", err)
	}
	per := d.PerChipStats()
	if per[0].PagePrograms != 1 || per[1].PagePrograms != 1 {
		t.Fatalf("program attribution wrong: %+v", per)
	}
	if per[0].BlockErases != 1 || per[1].BlockErases != 0 {
		t.Fatalf("erase attribution wrong: %+v", per)
	}
	if per[1].PageReads == 0 || per[0].PageReads != 0 {
		t.Fatalf("read attribution wrong: %+v", per)
	}
	if d.ChipOf(0) != 0 || d.ChipOf(8) != 1 || d.ChipOf(16) != -1 || d.ChipOf(-1) != -1 {
		t.Fatalf("ChipOf wrong")
	}
}

// TestChipsRaceFreedom hammers distinct chips from concurrent goroutines;
// run under -race it proves reads, programs, erases and clock reads on
// different chips share no unsynchronised state.
func TestChipsRaceFreedom(t *testing.T) {
	cfg := testConfig()
	cfg.Chips = 4
	cfg.Chip.Cell = nand.SLC
	d := mustDevice(t, cfg)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			first := c * 8 // first block of the chip
			buf := make([]byte, 2048)
			for i := 0; i < 50; i++ {
				blk := first + i/16 // each page is programmed exactly once
				pg := i % 16
				if err := d.ProgramPage(blk, pg, pattern(2048, byte(i)), 2048); err != nil {
					t.Errorf("chip %d program: %v", c, err)
					return
				}
				if err := d.ReadPage(blk, pg, buf); err != nil {
					t.Errorf("chip %d read: %v", c, err)
					return
				}
				if pg == 15 {
					if err := d.EraseBlock(blk); err != nil {
						t.Errorf("chip %d erase: %v", c, err)
						return
					}
				}
			}
		}(c)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = d.Now()
				_ = d.Stats()
			}
		}
	}()
	wg.Wait()
	close(done)
	s := d.Stats()
	if s.PagePrograms != 200 {
		t.Fatalf("programs %d, want 200", s.PagePrograms)
	}
}
