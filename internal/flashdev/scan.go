package flashdev

import (
	"encoding/binary"
	"fmt"

	"ipa/internal/ecc"
	"ipa/internal/nand"
)

// PageScan classifies one physical page during a crash-recovery scan.
type PageScan struct {
	// Programmed reports that the page holds charge (it is not erased).
	Programmed bool
	// Tagged reports that a valid FTL mapping tag was found; LBA and Seq
	// are only meaningful when it is set.
	Tagged bool
	LBA    int
	Seq    uint64
	// BodyValid reports that the initially programmed region verified
	// against its ECC (single-bit errors corrected in buf). With data ECC
	// disabled it is true for every programmed page.
	BodyValid bool
	// Records is the number of delta-record OOB slots holding a verified
	// append (the valid prefix).
	Records int
	// Torn reports that some programmed content failed verification: a
	// corrupt mapping tag, a failed initial-region ECC or a delta slot
	// whose append was interrupted mid-program. Recovery treats untagged
	// or body-invalid pages as garbage and scrubs live pages with torn
	// delta slots by rewriting them out of place.
	Torn bool
	// Programs is the page's program count since the last block erase.
	Programs int
}

// ScanPage reads a physical page for crash recovery. Unlike ReadPage it
// never fails on corruption — it reports what survived the power cut. buf
// (PageSize bytes) receives the raw page image, with single-bit errors in
// the regions that verify corrected in place.
func (d *Device) ScanPage(block, page int, buf []byte) (PageScan, error) {
	chipIdx, chip, b, err := d.locate(block)
	if err != nil {
		return PageScan{}, err
	}
	g := d.cfg.Chip.Geometry
	if len(buf) != g.PageSize {
		return PageScan{}, fmt.Errorf("flashdev: ScanPage buffer %d bytes, want %d", len(buf), g.PageSize)
	}
	info, err := chip.PageStatus(b, page)
	if err != nil {
		return PageScan{}, err
	}
	scan := PageScan{Programs: info.Programs}
	if info.State != nand.PageProgrammed {
		for i := range buf {
			buf[i] = 0xFF
		}
		return scan, nil
	}
	scan.Programmed = true
	oob := make([]byte, g.OOBSize)
	if err := chip.ReadPage(b, page, buf, oob); err != nil {
		return PageScan{}, err
	}
	d.pageReads.Add(1)
	d.bytesFromDevice.Add(uint64(len(buf)))
	d.advance(chipIdx, d.cfg.Latency.PageRead+d.cfg.Latency.transfer(len(buf)))

	if g.OOBSize < oobSlotsOff {
		// No room for a mapping tag on this geometry: nothing recoverable.
		scan.BodyValid = d.cfg.DisableECC
		return scan, nil
	}

	// Mapping tag.
	tag := make([]byte, TagSize)
	copy(tag, oob[oobTagOff:oobTagOff+TagSize])
	if !ecc.Blank(tag) {
		if _, err := ecc.Decode(tag[:tagBody], tag[tagBody:]); err != nil {
			scan.Torn = true
		} else {
			scan.Tagged = true
			scan.LBA = int(binary.LittleEndian.Uint32(tag[0:4]))
			scan.Seq = binary.LittleEndian.Uint64(tag[4:12])
		}
	}

	// Initially programmed region (leading cover plus trailing tail).
	if d.cfg.DisableECC {
		scan.BodyValid = true
	} else {
		coverLen := int(binary.LittleEndian.Uint16(oob[0:oobCoverLenSize]))
		tailLen := int(binary.LittleEndian.Uint16(oob[oobCoverLenSize:oobInitialOff]))
		code := oob[oobInitialOff : oobInitialOff+ecc.CodeSize]
		switch {
		case coverLen == blankLen || tailLen == blankLen || ecc.Blank(code):
			// The program never finished writing its header: torn.
			scan.Torn = true
		case coverLen+tailLen > len(buf):
			scan.Torn = true
		default:
			region := coveredRegion(buf, coverLen, tailLen)
			if res, err := ecc.Decode(region, code); err != nil {
				scan.Torn = true
			} else {
				scan.BodyValid = true
				if res.Corrected > 0 && tailLen > 0 {
					copy(buf[:coverLen], region[:coverLen])
					copy(buf[len(buf)-tailLen:], region[coverLen:])
				}
				d.countCorrected(res.Corrected)
			}
		}
	}

	// Delta-record slots: count the verified prefix; anything programmed
	// at or after the first invalid slot marks the page torn.
	if !d.cfg.DisableECC {
		geo := d.Geometry()
		for s := 0; s < geo.DeltaSlots; s++ {
			off := oobSlotsOff + s*DeltaSlotSize
			slot := oob[off : off+DeltaSlotSize]
			if ecc.Blank(slot) {
				continue
			}
			if s != scan.Records {
				// Programmed slot after an invalid/blank one.
				scan.Torn = true
				continue
			}
			dOff := int(binary.LittleEndian.Uint16(slot[0:2]))
			dLen := int(binary.LittleEndian.Uint16(slot[2:4]))
			if dOff+dLen > len(buf) {
				scan.Torn = true
				continue
			}
			res, err := ecc.Decode(buf[dOff:dOff+dLen], slot[deltaSlotHeader:])
			if err != nil {
				scan.Torn = true
				continue
			}
			d.countCorrected(res.Corrected)
			scan.Records++
		}
	}
	return scan, nil
}
