package flashdev

import (
	"bytes"
	"errors"
	"testing"

	"ipa/internal/nand"
)

func scanConfig(plan *nand.FaultPlan) Config {
	cfg := testConfig()
	cfg.Chip.Faults = plan
	return cfg
}

func TestScanPageClassifiesErasedAndTagged(t *testing.T) {
	d := mustDevice(t, testConfig())
	buf := make([]byte, 2048)
	scan, err := d.ScanPage(0, 0, buf)
	if err != nil {
		t.Fatalf("scan erased: %v", err)
	}
	if scan.Programmed || scan.Tagged || scan.Torn {
		t.Fatalf("erased page misclassified: %+v", scan)
	}

	data := pattern(2048, 1)
	cover := 1024
	for i := cover; i < 2048-16; i++ {
		data[i] = 0xFF
	}
	if err := d.ProgramPageTagged(1, 2, data, cover, 16, 77, 12345); err != nil {
		t.Fatalf("program tagged: %v", err)
	}
	scan, err = d.ScanPage(1, 2, buf)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if !scan.Programmed || !scan.Tagged || !scan.BodyValid || scan.Torn {
		t.Fatalf("tagged page misclassified: %+v", scan)
	}
	if scan.LBA != 77 || scan.Seq != 12345 {
		t.Fatalf("tag round trip wrong: lba=%d seq=%d", scan.LBA, scan.Seq)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("scan image differs from programmed data")
	}
}

func TestScanPagePreservedByCopyBack(t *testing.T) {
	d := mustDevice(t, testConfig())
	data := pattern(2048, 2)
	cover := 1024
	for i := cover; i < 2048-16; i++ {
		data[i] = 0xFF
	}
	if err := d.ProgramPageTagged(0, 0, data, cover, 16, 9, 42); err != nil {
		t.Fatalf("program: %v", err)
	}
	if _, err := d.ProgramDelta(0, 0, cover, []byte{1, 2, 3}); err != nil {
		t.Fatalf("delta: %v", err)
	}
	if err := d.CopyPage(0, 0, 3, 5); err != nil {
		t.Fatalf("copy: %v", err)
	}
	buf := make([]byte, 2048)
	scan, err := d.ScanPage(3, 5, buf)
	if err != nil {
		t.Fatalf("scan copy: %v", err)
	}
	if !scan.Tagged || scan.LBA != 9 || scan.Seq != 42 || scan.Records != 1 || scan.Torn {
		t.Fatalf("copy-back lost tag/slots: %+v", scan)
	}
}

func TestScanPageDetectsTornProgram(t *testing.T) {
	plan := nand.NewFaultPlan(1, nand.CrashTorn)
	d := mustDevice(t, scanConfig(plan))
	data := pattern(2048, 3)
	err := d.ProgramPageTagged(2, 1, data, 2048, 0, 5, 7)
	if !errors.Is(err, nand.ErrPowerLost) {
		t.Fatalf("expected power loss, got %v", err)
	}
	plan.PowerCycle()
	buf := make([]byte, 2048)
	scan, serr := d.ScanPage(2, 1, buf)
	if serr != nil {
		t.Fatalf("scan: %v", serr)
	}
	if !scan.Programmed {
		// A zero-length tear leaves the page erased; that is fine too.
		return
	}
	if scan.Tagged && scan.BodyValid && !scan.Torn {
		t.Fatalf("torn program classified fully valid: %+v", scan)
	}
}

func TestScanPageDetectsTornDeltaAppend(t *testing.T) {
	plan := nand.NewFaultPlan(0, nand.CrashTorn)
	d := mustDevice(t, scanConfig(plan))
	cover := 1024
	data := pattern(2048, 4)
	for i := cover; i < 2048; i++ {
		data[i] = 0xFF
	}
	if err := d.ProgramPageTagged(1, 1, data, cover, 0, 3, 9); err != nil {
		t.Fatalf("program: %v", err)
	}
	delta := bytes.Repeat([]byte{0x21}, 64)
	plan.Arm(1, nand.CrashTorn)
	plan.SetKinds(nand.OpDeltaProgram)
	_, err := d.ProgramDelta(1, 1, cover, delta)
	if !errors.Is(err, nand.ErrPowerLost) {
		t.Fatalf("expected power loss, got %v", err)
	}
	plan.PowerCycle()
	buf := make([]byte, 2048)
	scan, serr := d.ScanPage(1, 1, buf)
	if serr != nil {
		t.Fatalf("scan: %v", serr)
	}
	if !scan.Tagged || !scan.BodyValid {
		t.Fatalf("initial content must survive a torn append: %+v", scan)
	}
	if scan.Records != 0 {
		t.Fatalf("torn append counted as a valid record: %+v", scan)
	}
	// Depending on the tear length the slot may be fully blank (no OOB
	// bytes persisted) or torn; a persisted OOB prefix must flag Torn.
	t.Logf("torn append scan: %+v", scan)
}
