package flashdev

import "time"

// LatencyModel describes the timing of the simulated Flash device. The
// device maintains a virtual clock that advances by these amounts for every
// operation; transactional throughput in the experiments is derived from
// that clock, which makes results deterministic and hardware independent.
type LatencyModel struct {
	// PageRead is the array-to-register sensing time of one Flash page.
	PageRead time.Duration
	// PageProgramSLC is the program time of an SLC page.
	PageProgramSLC time.Duration
	// PageProgramLSB is the program time of an MLC LSB page.
	PageProgramLSB time.Duration
	// PageProgramMSB is the program time of an MLC MSB page.
	PageProgramMSB time.Duration
	// BlockErase is the erase time of one block.
	BlockErase time.Duration
	// BusPerByte is the host-interface transfer time per byte.
	BusPerByte time.Duration
}

// DefaultLatencyModel returns timings representative of the MLC NAND used
// on the OpenSSD Jasmine board (order-of-magnitude values from datasheets).
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		PageRead:       70 * time.Microsecond,
		PageProgramSLC: 250 * time.Microsecond,
		PageProgramLSB: 400 * time.Microsecond,
		PageProgramMSB: 1300 * time.Microsecond,
		BlockErase:     3500 * time.Microsecond,
		BusPerByte:     3 * time.Nanosecond,
	}
}

// programTime returns the program latency of a page depending on the cell
// technology and whether the page is an LSB page.
func (m LatencyModel) programTime(slc, lsb bool) time.Duration {
	if slc {
		return m.PageProgramSLC
	}
	if lsb {
		return m.PageProgramLSB
	}
	return m.PageProgramMSB
}

// transfer returns the bus time for n bytes.
func (m LatencyModel) transfer(n int) time.Duration {
	return time.Duration(n) * m.BusPerByte
}
